package vconf

import (
	"io"

	"vconf/internal/confsim"
	"vconf/internal/core"
	"vconf/internal/experiments"
	"vconf/internal/model"
)

// SaveScenario serializes a scenario to w as versioned JSON, suitable for
// checking workloads into a repository or sharing failing instances.
func SaveScenario(sc *Scenario, w io.Writer) error { return sc.WriteJSON(w) }

// LoadScenario deserializes a scenario written by SaveScenario, running full
// validation.
func LoadScenario(r io.Reader) (*Scenario, error) { return model.ReadJSON(r) }

// Engine is the virtual-time simulator of the Markov approximation chain.
// Obtain a configured one from Solver.Engine; use ScheduleArrival /
// ScheduleDeparture for session dynamics and Run to advance virtual time.
type Engine = core.Engine

// Bootstrapper installs one session's initial assignment (see
// Solver.Bootstrapper).
type Bootstrapper = core.Bootstrapper

// HopResult describes one executed hop of the chain.
type HopResult = core.HopResult

// Engine builds a virtual-time engine configured with the solver's β,
// objective scale, countdown and seed. Sessions start inactive: activate
// them with Engine.ActivateSession(sid, solver.Bootstrapper()) or schedule
// arrivals.
func (s *Solver) Engine() (*Engine, error) {
	return core.NewEngine(s.ev, s.coreConfig())
}

// Bootstrapper returns the solver's per-session bootstrap hook (AgRank or
// nearest, per WithInit).
func (s *Solver) Bootstrapper() Bootstrapper { return s.bootstrapper() }

// Runtime is the simulated conferencing data plane: frame relay,
// transcoding, and dual-feed migrations (see the confsim package).
type Runtime = confsim.Runtime

// RuntimeConfig tunes the data plane.
type RuntimeConfig = confsim.Config

// Telemetry is one data-plane tick measurement.
type Telemetry = confsim.Telemetry

// DefaultRuntimeConfig matches the paper's prototype: 30 fps, 30 ms
// dual-feed migration overlap, 2% measurement jitter.
func DefaultRuntimeConfig(seed int64) RuntimeConfig { return confsim.DefaultConfig(seed) }

// NewRuntime builds a data-plane runtime for the scenario using the solver's
// objective parameters for traffic accounting.
func (s *Solver) NewRuntime(cfg RuntimeConfig) (*Runtime, error) {
	return confsim.New(s.sc, s.params, cfg)
}

// Fig2Scenario builds the paper's motivating example (Fig. 2): one session
// of four users (CA, BR, JP, HK) over four agents (Oregon, Tokyo, Singapore,
// São Paulo) with the measured latencies printed in the paper.
func Fig2Scenario() (*Scenario, error) { return experiments.BuildFig2Scenario() }

// ParallelEngine is the concurrent deployment of Alg. 1: one goroutine per
// session with the paper's FREEZE/UNFREEZE mutual exclusion.
type ParallelEngine = core.Parallel

// OptimisticEngine extends the FREEZE protocol with optimistic concurrency:
// sessions evaluate hop candidates in parallel against a ledger snapshot and
// revalidate at commit (see the core package documentation).
type OptimisticEngine = core.OptimisticParallel

// NewParallelEngine builds the lock-per-hop concurrent engine from a
// complete assignment (e.g. the result of Solver.Bootstrap).
func (s *Solver) NewParallelEngine(a *Assignment) (*ParallelEngine, error) {
	return core.NewParallel(s.ev, s.coreConfig(), a)
}

// NewOptimisticEngine builds the optimistic concurrent engine from a
// complete assignment.
func (s *Solver) NewOptimisticEngine(a *Assignment) (*OptimisticEngine, error) {
	return core.NewOptimisticParallel(s.ev, s.coreConfig(), a)
}

func (s *Solver) coreConfig() core.Config {
	return core.Config{
		Beta:           s.beta,
		ObjectiveScale: s.scale,
		MeanCountdownS: s.countdownS,
		Mode:           core.PaperHop,
		Seed:           s.seed,
	}
}
