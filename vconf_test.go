package vconf

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

func smallScenario(t *testing.T, seed int64) *Scenario {
	t.Helper()
	wl := LargeScaleWorkload(seed)
	wl.NumUsers = 25
	wl.NumUserNodes = 64
	sc, err := GenerateWorkload(wl)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestSolverOptimizeImproves(t *testing.T) {
	sc := smallScenario(t, 1)
	solver, err := NewSolver(sc, WithSeed(1), WithInit(InitNearest, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Optimize(120)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Objective > res.Initial.Objective {
		t.Fatalf("objective rose: %v → %v", res.Initial.Objective, res.Report.Objective)
	}
	if res.Hops == 0 {
		t.Fatal("no hops")
	}
	if err := solver.CheckFeasible(res.Assignment); err != nil {
		t.Fatalf("final assignment infeasible: %v", err)
	}
	if len(res.Samples) < 2 {
		t.Fatal("missing samples")
	}
}

func TestSolverAgRankBootstrapBeatsNearest(t *testing.T) {
	sc := smallScenario(t, 2)
	ag, err := NewSolver(sc, WithSeed(2)) // default: AgRank#2
	if err != nil {
		t.Fatal(err)
	}
	nrst, err := NewSolver(sc, WithSeed(2), WithInit(InitNearest, 0))
	if err != nil {
		t.Fatal(err)
	}
	aAg, err := ag.Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	aNrst, err := nrst.Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	if ag.Evaluate(aAg).InterTraffic >= nrst.Evaluate(aNrst).InterTraffic {
		t.Fatalf("AgRank bootstrap traffic %.1f not below Nrst %.1f",
			ag.Evaluate(aAg).InterTraffic, nrst.Evaluate(aNrst).InterTraffic)
	}
}

func TestSolverOptionValidation(t *testing.T) {
	sc := smallScenario(t, 3)
	bad := [][]Option{
		{WithBeta(0)},
		{WithBeta(-5)},
		{WithObjectiveScale(0)},
		{WithCountdown(0)},
		{WithInit(InitAgRank, 0)},
		{WithInit(InitPolicy(99), 1)},
		{WithParams(Params{})},
	}
	for i, opts := range bad {
		if _, err := NewSolver(sc, opts...); err == nil {
			t.Fatalf("case %d: invalid option accepted", i)
		}
	}
	s, err := NewSolver(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Optimize(0); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestSolverParamsPresets(t *testing.T) {
	for _, p := range []Params{DefaultParams(), TrafficOnlyParams(), DelayOnlyParams()} {
		if err := p.Validate(); err != nil {
			t.Fatalf("preset invalid: %v", err)
		}
	}
}

func TestScenarioBuilderRoundTrip(t *testing.T) {
	b := NewScenarioBuilder(nil)
	reps := b.Reps()
	r720, ok := reps.ByName("720p")
	if !ok {
		t.Fatal("720p missing from default set")
	}
	b.AddAgent(Agent{Name: "A", Upload: 100, Download: 100, TranscodeSlots: 2})
	b.AddAgent(Agent{Name: "B", Upload: 100, Download: 100, TranscodeSlots: 2})
	s := b.AddSession("demo")
	b.AddUser("alice", s, r720, nil)
	b.AddUser("bob", s, r720, nil)
	b.SetInterAgentDelays([][]float64{{0, 20}, {20, 0}})
	b.SetAgentUserDelays([][]float64{{5, 40}, {40, 5}})
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	solver, err := NewSolver(sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Optimize(60)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignment.Complete() {
		t.Fatal("result incomplete")
	}
	if !res.Report.AllDelayOK {
		t.Fatal("delays over cap")
	}
}

func TestSolverDeterministicAcrossRuns(t *testing.T) {
	sc := smallScenario(t, 4)
	run := func() float64 {
		s, err := NewSolver(sc, WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Optimize(80)
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.Objective
	}
	if run() != run() {
		t.Fatal("identical seeds produced different results")
	}
}

func TestPackageDocMentionsPaper(t *testing.T) {
	// Guard against the doc comment drifting away from the paper reference.
	// (Compile-time presence is enough; this is a smoke check of the public
	// constants.)
	if InitAgRank == InitNearest {
		t.Fatal("init policies must differ")
	}
	if !strings.Contains("ICDCS", "ICDCS") {
		t.Fatal("unreachable")
	}
}

func TestSaveLoadScenarioRoundTrip(t *testing.T) {
	sc := smallScenario(t, 8)
	var buf bytes.Buffer
	if err := SaveScenario(sc, &buf); err != nil {
		t.Fatalf("SaveScenario: %v", err)
	}
	got, err := LoadScenario(&buf)
	if err != nil {
		t.Fatalf("LoadScenario: %v", err)
	}
	if got.NumUsers() != sc.NumUsers() || got.ThetaSum() != sc.ThetaSum() {
		t.Fatal("scenario changed through save/load")
	}
	// The reloaded scenario must be solvable identically.
	s1, err := NewSolver(sc, WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSolver(got, WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s1.Optimize(60)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Optimize(60)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Report.Objective != r2.Report.Objective {
		t.Fatalf("objective differs after reload: %v vs %v",
			r1.Report.Objective, r2.Report.Objective)
	}
}

func TestConcurrentEnginesViaFacade(t *testing.T) {
	sc := smallScenario(t, 9)
	solver, err := NewSolver(sc, WithSeed(9), WithInit(InitNearest, 0), WithCountdown(3))
	if err != nil {
		t.Fatal(err)
	}
	start, err := solver.Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	pe, err := solver.NewParallelEngine(start)
	if err != nil {
		t.Fatal(err)
	}
	if err := pe.Run(context.Background(), 150*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	final, hops, _ := pe.Snapshot()
	if hops == 0 {
		t.Fatal("parallel engine made no hops")
	}
	if err := solver.CheckFeasible(final); err != nil {
		t.Fatalf("parallel engine result infeasible: %v", err)
	}

	oe, err := solver.NewOptimisticEngine(start)
	if err != nil {
		t.Fatal(err)
	}
	if err := oe.Run(context.Background(), 150*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ofinal, ohops, _, _ := oe.Snapshot()
	if ohops == 0 {
		t.Fatal("optimistic engine made no hops")
	}
	if err := solver.CheckFeasible(ofinal); err != nil {
		t.Fatalf("optimistic engine result infeasible: %v", err)
	}
}

func TestFig2ScenarioFacade(t *testing.T) {
	sc, err := Fig2Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumUsers() != 4 || sc.NumAgents() != 4 {
		t.Fatalf("fig2 shape %d users %d agents", sc.NumUsers(), sc.NumAgents())
	}
	if sc.D(1, 0) != 67 {
		t.Fatalf("D(TO,OR) = %v, want 67", sc.D(1, 0))
	}
}

func TestRuntimeViaFacade(t *testing.T) {
	sc := smallScenario(t, 10)
	solver, err := NewSolver(sc, WithSeed(10))
	if err != nil {
		t.Fatal(err)
	}
	a, err := solver.Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := solver.NewRuntime(DefaultRuntimeConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	rt.SetAssignment(a)
	tel, err := rt.Tick(1)
	if err != nil {
		t.Fatal(err)
	}
	if tel.ActiveSessions != sc.NumSessions() {
		t.Fatalf("active sessions = %d, want %d", tel.ActiveSessions, sc.NumSessions())
	}
	if tel.FramesRelayed == 0 {
		t.Fatal("no frames relayed")
	}
}
