// Geo: the paper's Fig. 2 motivating scenario — four users on four
// continents, four cloud agents with real measured latencies. Shows why the
// nearest-agent policy is suboptimal: the Hong Kong user's nearest agent is
// Singapore, but subscribing it to Tokyo cuts both the end-to-end delay
// toward the Californian peer and the provider's inter-agent traffic.
package main

import (
	"fmt"
	"log"
	"strings"

	"vconf"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sc, err := vconf.Fig2Scenario()
	if err != nil {
		return err
	}

	fmt.Println("Fig. 2 scenario: 1 session, 4 users (CA, BR, JP, HK), 4 agents (OR, TO, SG, SP)")
	hk := vconf.UserID(3)
	to, sg, or := vconf.AgentID(1), vconf.AgentID(2), vconf.AgentID(0)
	fmt.Printf("HK user: nearest agent is SG (H=%.0f ms) but TO (H=%.0f ms) is better connected:\n",
		sc.H(sg, hk), sc.H(to, hk))
	fmt.Printf("  flow HK→CA via TO ≥ %.0f + %.0f = %.0f ms\n", sc.H(to, hk), sc.D(to, or), sc.H(to, hk)+sc.D(to, or))
	fmt.Printf("  flow HK→CA via SG ≥ %.0f + %.0f = %.0f ms (paper: 94 vs 137)\n\n",
		sc.H(sg, hk), sc.D(sg, or), sc.H(sg, hk)+sc.D(sg, or))

	label := func(name string) string {
		// "1 [CA]" → "CA"
		if i := strings.IndexByte(name, '['); i >= 0 && strings.HasSuffix(name, "]") {
			return name[i+1 : len(name)-1]
		}
		return name
	}
	report := func(name string, a *vconf.Assignment, rep vconf.SystemReport) {
		fmt.Printf("%-22s", name)
		for u := 0; u < sc.NumUsers(); u++ {
			uid := vconf.UserID(u)
			fmt.Printf(" %s→%s", label(sc.User(uid).Name), sc.Agent(a.UserAgent(uid)).Name)
		}
		fmt.Printf(" | traffic %6.2f Mbps | delay %6.1f ms\n", rep.InterTraffic, rep.MeanDelayMS)
	}

	// Nearest policy (Airlift / vSkyConf baseline).
	nrstSolver, err := vconf.NewSolver(sc, vconf.WithInit(vconf.InitNearest, 0))
	if err != nil {
		return err
	}
	nrst, err := nrstSolver.Bootstrap()
	if err != nil {
		return err
	}
	report("nearest (baseline):", nrst, nrstSolver.Evaluate(nrst))

	// AgRank bootstrap.
	agSolver, err := vconf.NewSolver(sc, vconf.WithInit(vconf.InitAgRank, 2))
	if err != nil {
		return err
	}
	ag, err := agSolver.Bootstrap()
	if err != nil {
		return err
	}
	report("AgRank#2 bootstrap:", ag, agSolver.Evaluate(ag))

	// Full optimization.
	res, err := agSolver.Optimize(200)
	if err != nil {
		return err
	}
	report("after Alg. 1 (200s):", res.Assignment, res.Report)

	fmt.Printf("\ntraffic reduction vs nearest: %.0f%%, delay change: %+.1f ms\n",
		100*(1-res.Report.InterTraffic/nrstSolver.Evaluate(nrst).InterTraffic),
		res.Report.MeanDelayMS-nrstSolver.Evaluate(nrst).MeanDelayMS)
	return nil
}
