// Churn: the online orchestrator under continuous Poisson session churn.
// A seeded schedule of arrivals and departures drives event-by-event
// incremental re-optimization on a sharded solver pool; accepted moves run
// the dual-feed migration protocol on the attached data plane, and the
// final objective is compared against a from-scratch re-solve oracle over
// the same live session set.
package main

import (
	"fmt"
	"log"

	"vconf"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	wl := vconf.PrototypeWorkload(5)
	sc, err := vconf.GenerateWorkload(wl)
	if err != nil {
		return err
	}
	solver, err := vconf.NewSolver(sc, vconf.WithSeed(5))
	if err != nil {
		return err
	}

	const horizonS = 300
	events, err := vconf.GenerateChurn(vconf.ChurnConfig{
		Seed:            5,
		HorizonS:        horizonS,
		ArrivalRatePerS: 0.08, // a session arrives every ~12 virtual seconds
		MeanHoldS:       100,
		NumSessions:     sc.NumSessions(),
	})
	if err != nil {
		return err
	}
	fmt.Printf("churn schedule: %d events over %.0f virtual seconds, pool of %d sessions\n",
		len(events), float64(horizonS), sc.NumSessions())

	orc, err := solver.NewOrchestrator(vconf.DefaultOrchestratorConfig(5))
	if err != nil {
		return err
	}
	defer orc.Close()
	rt, err := solver.NewRuntime(vconf.DefaultRuntimeConfig(5))
	if err != nil {
		return err
	}
	orc.AttachRuntime(rt) // committed re-optimizations become dual-feed migrations

	reports, err := orc.Run(events, horizonS)
	if err != nil {
		return err
	}
	for _, rep := range reports {
		kind := "arrive"
		if rep.Event.Kind == vconf.ChurnDeparture {
			kind = "depart"
		}
		note := ""
		if !rep.Admitted {
			note = " (skipped)"
		}
		fmt.Printf("t=%6.1fs %s session %2d%s: reopt %d sessions, %d commits, %v, Φ=%.1f, live=%d\n",
			rep.Event.TimeS, kind, rep.Event.Session, note,
			len(rep.Reopt), rep.Commits, rep.Latency.Round(100_000), rep.Objective, rep.ActiveSessions)
	}

	st := orc.Stats()
	rts := rt.Stats()
	fmt.Printf("orchestrator: %d arrivals, %d departures, %d tasks, %d commits, %d rejects\n",
		st.Arrivals, st.Departures, st.Tasks, st.Commits, st.Rejects)
	fmt.Printf("data plane: %d dual-feed migrations, %.2f Mbps·s redundant overhead\n",
		rts.Migrations, rts.TotalOverheadMbpsS)

	active := orc.ActiveSessions()
	if len(active) == 0 {
		fmt.Println("no live sessions at horizon")
		return nil
	}
	_, oraclePhi, err := solver.FullResolve(active, 200)
	if err != nil {
		return err
	}
	online := orc.Objective()
	fmt.Printf("final: online Φ=%.1f vs from-scratch oracle Φ=%.1f (%+.1f%%) over %d live sessions\n",
		online, oraclePhi, 100*(online-oraclePhi)/oraclePhi, len(active))
	if err := orc.CheckInvariants(); err != nil {
		return fmt.Errorf("final state infeasible: %w", err)
	}
	fmt.Println("final state feasible: capacities and delay caps hold")
	return nil
}
