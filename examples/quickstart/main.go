// Quickstart: build a small two-session conferencing scenario by hand,
// bootstrap it with AgRank, optimize with the Markov approximation engine,
// and print the assignment and its cost/delay report.
package main

import (
	"fmt"
	"log"

	"vconf"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	b := vconf.NewScenarioBuilder(nil)
	reps := b.Reps()
	r360, _ := reps.ByName("360p")
	r720, _ := reps.ByName("720p")
	r1080, _ := reps.ByName("1080p")

	// Three cloud agents: a well-connected hub and two edge sites.
	b.AddAgent(vconf.Agent{Name: "hub", Upload: 500, Download: 500, TranscodeSlots: 8})
	b.AddAgent(vconf.Agent{Name: "west", Upload: 200, Download: 200, TranscodeSlots: 2})
	b.AddAgent(vconf.Agent{Name: "east", Upload: 200, Download: 200, TranscodeSlots: 2})

	// Session 1: a 1080p presenter whose stream two mobile viewers want
	// downscaled to 360p.
	s1 := b.AddSession("standup")
	presenter := b.AddUser("presenter", s1, r1080, nil)
	mob1 := b.AddUser("mobile-1", s1, r720, nil)
	mob2 := b.AddUser("mobile-2", s1, r720, nil)
	b.DemandFrom(mob1, presenter, r360)
	b.DemandFrom(mob2, presenter, r360)

	// Session 2: two 720p peers, no transcoding.
	s2 := b.AddSession("one-on-one")
	b.AddUser("alice", s2, r720, nil)
	b.AddUser("bob", s2, r720, nil)

	// Measured one-way delays in ms.
	b.SetInterAgentDelays([][]float64{
		{0, 40, 45},
		{40, 0, 80},
		{45, 80, 0},
	})
	b.SetAgentUserDelays([][]float64{
		// hub   is moderately close to everyone.
		{25, 30, 30, 28, 28},
		// west  is next to the presenter and mobile-1.
		{8, 10, 60, 70, 70},
		// east  is next to mobile-2, alice and bob.
		{70, 65, 9, 12, 11},
	})
	sc, err := b.Build()
	if err != nil {
		return err
	}

	solver, err := vconf.NewSolver(sc,
		vconf.WithSeed(42),
		vconf.WithInit(vconf.InitAgRank, 2),
	)
	if err != nil {
		return err
	}

	initial, err := solver.Bootstrap()
	if err != nil {
		return err
	}
	fmt.Println("AgRank bootstrap:")
	printAssignment(sc, initial, solver.Evaluate(initial))

	res, err := solver.Optimize(120)
	if err != nil {
		return err
	}
	fmt.Println("\nAfter 120 virtual seconds of Markov optimization:")
	printAssignment(sc, res.Assignment, res.Report)
	fmt.Printf("\nchain activity: %d hops, %d migrations\n", res.Hops, res.Moves)
	return nil
}

func printAssignment(sc *vconf.Scenario, a *vconf.Assignment, rep vconf.SystemReport) {
	for u := 0; u < sc.NumUsers(); u++ {
		uid := vconf.UserID(u)
		fmt.Printf("  %-10s → agent %s\n", sc.User(uid).Name, sc.Agent(a.UserAgent(uid)).Name)
	}
	for _, f := range a.Flows() {
		if m, ok := a.FlowAgent(f); ok {
			fmt.Printf("  transcode %s→%s at agent %s\n",
				sc.User(f.Src).Name, sc.User(f.Dst).Name, sc.Agent(m).Name)
		}
	}
	fmt.Printf("  inter-agent traffic %.1f Mbps | mean delay %.1f ms | objective %.2f | delays ok: %v\n",
		rep.InterTraffic, rep.MeanDelayMS, rep.Objective, rep.AllDelayOK)
}
