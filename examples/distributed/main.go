// Distributed: Alg. 1 deployed as an actual network protocol — a
// coordinator process-equivalent owning the authoritative assignment, and
// one session runner per conference, all exchanging FREEZE / GRANTED /
// COMMIT / COMMITTED frames over loopback TCP. This is the deployment shape
// §IV-A describes: hops are computed at the session initiator's agent from
// fetched residual capacities and committed under the freeze.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"vconf"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	wl := vconf.LargeScaleWorkload(11)
	wl.NumUsers = 40
	wl.NumUserNodes = 64
	sc, err := vconf.GenerateWorkload(wl)
	if err != nil {
		return err
	}
	solver, err := vconf.NewSolver(sc,
		vconf.WithSeed(11),
		vconf.WithInit(vconf.InitNearest, 0),
		vconf.WithCountdown(2),
	)
	if err != nil {
		return err
	}
	start, err := solver.Bootstrap()
	if err != nil {
		return err
	}
	initial := solver.Evaluate(start)

	coord, err := solver.NewCoordinator(start, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer coord.Close()
	fmt.Printf("coordinator listening on %s; %d sessions, %d users, %d agents\n",
		coord.Addr(), sc.NumSessions(), sc.NumUsers(), sc.NumAgents())
	fmt.Printf("initial: traffic %.1f Mbps, delay %.1f ms, Φ=%.1f\n",
		initial.InterTraffic, initial.MeanDelayMS, initial.Objective)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	hopCounts := make([]int, sc.NumSessions())
	for s := 0; s < sc.NumSessions(); s++ {
		runner, err := solver.NewSessionRunner(vconf.SessionID(s))
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(i int, r *vconf.SessionRunner) {
			defer wg.Done()
			hops, err := r.Run(ctx, coord.Addr(), 20) // ≤ 20 hops per session
			if err != nil {
				log.Printf("runner %d: %v", i, err)
			}
			hopCounts[i] = hops
		}(s, runner)
	}
	wg.Wait()

	total := 0
	for _, h := range hopCounts {
		total += h
	}
	commits, stays, rejects := coord.Stats()
	final := solver.Evaluate(coord.Assignment())
	fmt.Printf("protocol: %d hops over TCP (%d commits, %d stays, %d rejected)\n",
		total, commits, stays, rejects)
	fmt.Printf("final:   traffic %.1f Mbps, delay %.1f ms, Φ=%.1f\n",
		final.InterTraffic, final.MeanDelayMS, final.Objective)
	if err := solver.CheckFeasible(coord.Assignment()); err != nil {
		return fmt.Errorf("final assignment infeasible: %w", err)
	}
	fmt.Println("authoritative assignment feasible: constraints (1)-(8) hold")
	return nil
}
