// Conference: the full stack end to end — control plane (AgRank + Markov
// approximation) steering a simulated data plane that relays 30 fps frame
// streams, transcodes, and live-migrates users between cloud agents with the
// paper's dual-feed protocol (no frozen frames, small redundant-traffic
// cost).
package main

import (
	"fmt"
	"log"

	"vconf"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sc, err := vconf.GenerateWorkload(vconf.PrototypeWorkload(3))
	if err != nil {
		return err
	}
	solver, err := vconf.NewSolver(sc, vconf.WithSeed(3), vconf.WithInit(vconf.InitNearest, 0))
	if err != nil {
		return err
	}
	eng, err := solver.Engine()
	if err != nil {
		return err
	}
	rt, err := solver.NewRuntime(vconf.DefaultRuntimeConfig(3))
	if err != nil {
		return err
	}

	// Wire control-plane hops into data-plane migrations.
	eng.OnHop = func(timeS float64, s vconf.SessionID, r vconf.HopResult) {
		if !r.Moved {
			return
		}
		if err := rt.Migrate(timeS, r.Decision); err != nil {
			log.Printf("migrate: %v", err)
			return
		}
		fmt.Printf("t=%6.1fs  session %2d migrates (%s), dual-feeding 30 ms\n",
			timeS, s, r.Decision)
	}

	boot := solver.Bootstrapper()
	for s := 0; s < sc.NumSessions(); s++ {
		if err := eng.ActivateSession(vconf.SessionID(s), boot); err != nil {
			return err
		}
	}
	fmt.Printf("conference: %d users, %d sessions, %d agents (nearest-assignment start)\n",
		sc.NumUsers(), sc.NumSessions(), sc.NumAgents())

	for t := 10.0; t <= 120; t += 10 {
		if _, err := eng.Run(t, 0); err != nil {
			return err
		}
		rt.SetAssignment(eng.Assignment())
		tel, err := rt.Tick(10)
		if err != nil {
			return err
		}
		fmt.Printf("t=%6.1fs  traffic %7.2f Mbps (overhead %.3f) delay %6.1f ms  %d frames relayed\n",
			t, tel.InterAgentMbps, tel.OverheadMbps, tel.MeanDelayMS, tel.FramesRelayed)
	}

	st := rt.Stats()
	fmt.Printf("\ndata plane totals: %d frames relayed, %d transcoded, %d migrations, %d frozen frames, %.2f Mbps·s redundant\n",
		st.FramesRelayed, st.FramesTranscoded, st.Migrations, st.FrozenFrames, st.TotalOverheadMbpsS)
	if st.FrozenFrames != 0 {
		return fmt.Errorf("dual-feed migration should never freeze frames")
	}
	return nil
}
