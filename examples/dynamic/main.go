// Dynamic: session arrival and departure under continuous optimization —
// the Fig. 5 experiment as a library program. Six sessions start, four more
// arrive at t = 40 s, three depart at t = 80 s; the Markov approximation
// chain re-converges after each change.
package main

import (
	"fmt"
	"log"

	"vconf"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	wl := vconf.PrototypeWorkload(7)
	wl.NumUsers = 44 // enough users for 10+ sessions
	sc, err := vconf.GenerateWorkload(wl)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d users in %d sessions over %d agents\n",
		sc.NumUsers(), sc.NumSessions(), sc.NumAgents())
	if sc.NumSessions() < 10 {
		return fmt.Errorf("workload produced %d sessions, want ≥ 10", sc.NumSessions())
	}

	solver, err := vconf.NewSolver(sc, vconf.WithSeed(7))
	if err != nil {
		return err
	}
	eng, err := solver.Engine()
	if err != nil {
		return err
	}
	boot := solver.Bootstrapper()

	// Six sessions at t = 0.
	for s := 0; s < 6; s++ {
		if err := eng.ActivateSession(vconf.SessionID(s), boot); err != nil {
			return err
		}
	}
	// Four arrivals at t = 40 s, three departures at t = 80 s.
	for s := 6; s < 10; s++ {
		eng.ScheduleArrival(40, vconf.SessionID(s), boot)
	}
	for s := 0; s < 3; s++ {
		eng.ScheduleDeparture(80, vconf.SessionID(s))
	}

	samples, err := eng.Run(120, 5)
	if err != nil {
		return err
	}
	// Keep the last sample per 5-second boundary (several samples share a
	// timestamp when a batch of events fires at once).
	byBoundary := make(map[int]vconf.EngineSample)
	for _, smp := range samples {
		if smp.TimeS != float64(int(smp.TimeS)) || int(smp.TimeS)%5 != 0 {
			continue
		}
		byBoundary[int(smp.TimeS)] = smp
	}
	for t := 0; t <= 120; t += 5 {
		smp, ok := byBoundary[t]
		if !ok {
			continue
		}
		marker := ""
		switch t {
		case 40:
			marker = "  ← 4 sessions arrived"
		case 80:
			marker = "  ← 3 sessions departed"
		}
		fmt.Printf("t=%5.0fs sessions=%2d traffic=%7.2f Mbps delay=%6.1f ms%s\n",
			smp.TimeS, smp.ActiveSessions, smp.TrafficMbps, smp.MeanDelayMS, marker)
	}
	hops, moves := eng.Hops()
	fmt.Printf("chain activity: %d hops, %d migrations\n", hops, moves)
	return nil
}
