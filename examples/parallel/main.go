// Parallel: the decentralized deployment of Alg. 1 on real goroutines — one
// per session — comparing the paper's global FREEZE/UNFREEZE protocol with
// this library's optimistic-concurrency extension (parallel candidate
// evaluation, commit-time revalidation). Both must land on feasible,
// comparable-quality assignments; the optimistic engine reports how many
// commits had to abort because a concurrent session claimed capacity first.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"vconf"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	wl := vconf.LargeScaleWorkload(5)
	wl.NumUsers = 60
	wl.NumUserNodes = 128
	sc, err := vconf.GenerateWorkload(wl)
	if err != nil {
		return err
	}
	solver, err := vconf.NewSolver(sc,
		vconf.WithSeed(5),
		vconf.WithInit(vconf.InitNearest, 0),
		vconf.WithCountdown(5), // 5 virtual s ≈ 5 ms wall per hop interval
	)
	if err != nil {
		return err
	}
	start, err := solver.Bootstrap()
	if err != nil {
		return err
	}
	initial := solver.Evaluate(start)
	fmt.Printf("workload: %d users, %d sessions, %d agents\n",
		sc.NumUsers(), sc.NumSessions(), sc.NumAgents())
	fmt.Printf("Nrst start: traffic %.1f Mbps, delay %.1f ms, Φ=%.1f\n\n",
		initial.InterTraffic, initial.MeanDelayMS, initial.Objective)

	// Paper protocol: the whole HOP runs under the freeze.
	frozen, err := solver.NewParallelEngine(start)
	if err != nil {
		return err
	}
	t0 := time.Now()
	if err := frozen.Run(context.Background(), 500*time.Millisecond); err != nil {
		return err
	}
	_, fHops, fMoves := frozen.Snapshot()
	fRep := frozen.Report()
	fmt.Printf("FREEZE/UNFREEZE: %4d hops %4d moves in %v → traffic %.1f Mbps, Φ=%.1f\n",
		fHops, fMoves, time.Since(t0).Round(time.Millisecond), fRep.InterTraffic, fRep.Objective)

	// Optimistic extension: evaluation off-lock, commit revalidated.
	optimistic, err := solver.NewOptimisticEngine(start)
	if err != nil {
		return err
	}
	t0 = time.Now()
	if err := optimistic.Run(context.Background(), 500*time.Millisecond); err != nil {
		return err
	}
	_, oHops, oMoves, aborts := optimistic.Snapshot()
	oRep := optimistic.Report()
	fmt.Printf("optimistic:      %4d hops %4d moves (%d aborts) in %v → traffic %.1f Mbps, Φ=%.1f\n",
		oHops, oMoves, aborts, time.Since(t0).Round(time.Millisecond), oRep.InterTraffic, oRep.Objective)

	for name, rep := range map[string]vconf.SystemReport{"frozen": fRep, "optimistic": oRep} {
		if rep.Objective > initial.Objective {
			return fmt.Errorf("%s engine worsened the objective", name)
		}
		if !rep.AllDelayOK {
			return fmt.Errorf("%s engine violated the delay cap", name)
		}
	}
	fmt.Println("\nboth engines feasible and improved from the Nrst start")
	return nil
}
