module vconf

go 1.24
