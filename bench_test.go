// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V), one testing.B target per artifact, plus micro-benchmarks of the hot
// paths and ablation benches for the design choices called out in DESIGN.md.
//
// The figure/table benches run the same experiment code as cmd/vcbench at a
// reduced scale so `go test -bench=. -benchmem` stays fast; the full-scale
// runs are `go run ./cmd/vcbench -run all`. Domain results (traffic
// reduction, success rates, optimality gaps) are attached to each bench via
// b.ReportMetric, so the bench output doubles as a results table.
package vconf_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"vconf"
	"vconf/internal/agrank"
	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/exact"
	"vconf/internal/experiments"
	"vconf/internal/model"
	"vconf/internal/workload"
)

// benchWorkload shrinks the Internet-scale workload for bench time budgets.
func benchWorkload(seed int64) workload.Config {
	wl := workload.LargeScale(seed)
	wl.NumUsers = 40
	wl.NumUserNodes = 64
	return wl
}

// ---------------------------------------------------------------------------
// Figure / table benches

func BenchmarkFig2Motivation(b *testing.B) {
	var last *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.NearestRep.InterTraffic, "nrst-traffic-mbps")
	b.ReportMetric(last.OptimalRep.InterTraffic, "opt-traffic-mbps")
}

func BenchmarkFig3Chain(b *testing.B) {
	var last *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(400, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.NumStates), "states")
}

func BenchmarkFig4Evolution(b *testing.B) {
	var last *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(1, 100)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Beta400.Initial.TrafficMbps, "init-traffic-mbps")
	b.ReportMetric(last.Beta400.Final.TrafficMbps, "final-traffic-mbps")
}

func BenchmarkFig5Dynamics(b *testing.B) {
	var last *experiments.EvolutionResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(1, 120)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Moves), "migrations")
}

func BenchmarkFig6AgRankInit(b *testing.B) {
	var last *experiments.EvolutionResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(1, 100)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Initial.TrafficMbps, "agrank-init-traffic-mbps")
	b.ReportMetric(last.Final.TrafficMbps, "final-traffic-mbps")
}

func BenchmarkFig7PerSession(b *testing.B) {
	var last *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(1, 100)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(len(last.Sessions)), "sessions-traced")
}

func BenchmarkTable2AlphaSweep(b *testing.B) {
	cfg := experiments.SweepConfig{Seed: 1, NumScenarios: 2, DurationS: 60, Workload: benchWorkload}
	var last *experiments.AlphaSweepResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAlphaSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	nrstInit := meanOf(last.Cell("Nrst", "Init").Traffic)
	opt := meanOf(last.Cell("AgRank#2", "a1=a2").Traffic)
	if nrstInit > 0 {
		b.ReportMetric(100*(1-opt/nrstInit), "traffic-reduction-pct")
	}
}

func BenchmarkFig8DelayBoxplot(b *testing.B) {
	cfg := experiments.SweepConfig{Seed: 2, NumScenarios: 2, DurationS: 60, Workload: benchWorkload}
	var rows []string
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAlphaSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rows = res.Fig8Rows()
	}
	b.ReportMetric(float64(len(rows)), "boxplots")
}

func BenchmarkFig9SuccessRate(b *testing.B) {
	cfg := experiments.Fig9Config{
		Seed:                1,
		NumScenarios:        4,
		BandwidthPointsMbps: []float64{60, 120, 1000},
		TranscodePoints:     []int{1, 8},
		Workload:            benchWorkload,
	}
	var last *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	// Success share of AgRank#3 at the tightest bandwidth point.
	b.ReportMetric(100*last.BandwidthSuccess[0][0], "agrank3-success-pct")
	b.ReportMetric(100*last.BandwidthSuccess[0][2], "nrst-success-pct")
}

func BenchmarkFig10Nngbr(b *testing.B) {
	cfg := experiments.Fig10Config{
		Seed:         1,
		NumScenarios: 3,
		NNgbrValues:  []int{1, 2, 4, 7},
		Workload:     benchWorkload,
	}
	var last *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.TrafficMbps[0], "nngbr1-traffic-mbps")
	b.ReportMetric(last.TrafficMbps[1], "nngbr2-traffic-mbps")
}

func BenchmarkThm1Gap(b *testing.B) {
	cfg := experiments.DefaultThm1Config(1)
	cfg.Betas = []float64{10, 50}
	cfg.HorizonS = 3000
	var last *experiments.Thm1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunThm1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Entries[0].AnalyticGap, "gap-beta10")
	b.ReportMetric(last.Entries[1].AnalyticGap, "gap-beta50")
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the hot paths

func benchScenario(b *testing.B, seed int64) (*cost.Evaluator, *assign.Assignment, *cost.Ledger) {
	b.Helper()
	sc, err := workload.Generate(benchWorkload(seed))
	if err != nil {
		b.Fatal(err)
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		b.Fatal(err)
	}
	a := assign.New(sc)
	ledger := cost.NewLedger(sc)
	if err := baseline.Assign(a, p, ledger); err != nil {
		b.Fatal(err)
	}
	return ev, a, ledger
}

// fleetScenario builds the ≥100-agent synthetic fleet the hop-pipeline
// acceptance benchmarks run on.
func fleetScenario(b *testing.B, seed int64) (*cost.Evaluator, *assign.Assignment, *cost.Ledger) {
	b.Helper()
	sc, err := workload.GenerateSyntheticFleet(workload.DefaultFleetConfig(seed))
	if err != nil {
		b.Fatal(err)
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		b.Fatal(err)
	}
	a := assign.New(sc)
	ledger := cost.NewLedger(sc)
	if err := baseline.Assign(a, p, ledger); err != nil {
		b.Fatal(err)
	}
	return ev, a, ledger
}

// BenchmarkHopSession measures one HOP of Alg. 1 on a 100-agent fleet:
// "sparse-warm" is the production delta pipeline with the persistent
// per-session delay cache (target: 0 allocs/op), "sparse-rebuild" the same
// pipeline rebuilding the delay base every hop (the pre-cache path behind
// core.Config.RebuildDelayBase), "dense" the reference implementation both
// replaced, and "sparse-7agents" the classic paper-scale workload for
// continuity with older baselines. The "warm-hop"/"rebuild-hop" pair runs
// the N_ngbr = 1 candidate window (Fig. 10's tightest pruning), where the
// once-per-hop BeginSession is a large share of the hop and the warm cache
// pays off most — the acceptance series recorded in BENCH_5.json.
func BenchmarkHopSession(b *testing.B) {
	run := func(b *testing.B, ev *cost.Evaluator, a *assign.Assignment, ledger *cost.Ledger, cfg core.Config) {
		rng := rand.New(rand.NewSource(1))
		scr := core.NewHopScratch(ev)
		sessions := ev.Scenario().NumSessions()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.HopSessionWith(a, model.SessionID(i%sessions), ev, ledger, cfg, rng, scr); err != nil {
				b.Fatal(err)
			}
		}
	}
	shape := func(dense, rebuild bool, window int) core.Config {
		cfg := core.DefaultConfig(1)
		cfg.DenseEval = dense
		cfg.RebuildDelayBase = rebuild
		cfg.NeighborWindow = window
		return cfg
	}
	b.Run("sparse-warm", func(b *testing.B) {
		ev, a, ledger := fleetScenario(b, 1)
		run(b, ev, a, ledger, shape(false, false, 0))
	})
	b.Run("sparse-rebuild", func(b *testing.B) {
		ev, a, ledger := fleetScenario(b, 1)
		run(b, ev, a, ledger, shape(false, true, 0))
	})
	// The acceptance pair: the N_ngbr = 1 windowed chain (Fig. 10's
	// tightest pruning), where every hop's BeginSession lands on the entry
	// its previous commit re-synchronized — a pure warm hit.
	b.Run("warm-hop", func(b *testing.B) {
		ev, a, ledger := fleetScenario(b, 1)
		run(b, ev, a, ledger, shape(false, false, 1))
	})
	b.Run("rebuild-hop", func(b *testing.B) {
		ev, a, ledger := fleetScenario(b, 1)
		run(b, ev, a, ledger, shape(false, true, 1))
	})
	b.Run("dense", func(b *testing.B) {
		ev, a, ledger := fleetScenario(b, 1)
		run(b, ev, a, ledger, shape(true, false, 0))
	})
	b.Run("sparse-7agents", func(b *testing.B) {
		ev, a, ledger := benchScenario(b, 1)
		run(b, ev, a, ledger, shape(false, false, 0))
	})
}

func BenchmarkSessionLoad(b *testing.B) {
	ev, a, _ := benchScenario(b, 2)
	p := ev.Params()
	sessions := ev.Scenario().NumSessions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.SessionLoadOf(a, model.SessionID(i%sessions))
	}
}

// BenchmarkSessionObjective compares the dense Φ_s evaluation (fresh load
// vectors + from-scratch delays) against the sparse scratch-based one, with
// and without the persistent delay cache: the "warm" series evaluates
// unchanged sessions, so it isolates what the cache saves on the
// once-per-hop BeginSession term (signature compare vs full delay-base
// rebuild).
func BenchmarkSessionObjective(b *testing.B) {
	b.Run("dense", func(b *testing.B) {
		ev, a, _ := benchScenario(b, 3)
		sessions := ev.Scenario().NumSessions()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = ev.SessionObjective(a, model.SessionID(i%sessions))
		}
	})
	b.Run("sparse", func(b *testing.B) {
		ev, a, _ := benchScenario(b, 3)
		sessions := ev.Scenario().NumSessions()
		scr := ev.NewScratch()
		scr.SetDelayCacheEnabled(false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = ev.BeginSession(a, model.SessionID(i%sessions), scr).Phi
		}
	})
	b.Run("sparse-warm", func(b *testing.B) {
		ev, a, _ := benchScenario(b, 3)
		sessions := ev.Scenario().NumSessions()
		scr := ev.NewScratch()
		for s := 0; s < sessions; s++ { // warm every entry
			_ = ev.BeginSession(a, model.SessionID(s), scr).Phi
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = ev.BeginSession(a, model.SessionID(i%sessions), scr).Phi
		}
	})
}

func BenchmarkAgRankBootstrap(b *testing.B) {
	sc, err := workload.Generate(benchWorkload(4))
	if err != nil {
		b.Fatal(err)
	}
	p := cost.DefaultParams()
	opts := agrank.DefaultOptions(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := assign.New(sc)
		ledger := cost.NewLedger(sc)
		if err := agrank.Bootstrap(a, p, ledger, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNearestBootstrap(b *testing.B) {
	sc, err := workload.Generate(benchWorkload(5))
	if err != nil {
		b.Fatal(err)
	}
	p := cost.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := assign.New(sc)
		ledger := cost.NewLedger(sc)
		if err := baseline.Assign(a, p, ledger); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumerateFig3(b *testing.B) {
	sc, err := experiments.BuildFig3Scenario()
	if err != nil {
		b.Fatal(err)
	}
	ev, err := cost.NewEvaluator(sc, cost.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.Enumerate(ev, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(workload.LargeScale(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverOptimize(b *testing.B) {
	sc, err := vconf.GenerateWorkload(benchWorkload(6))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res *vconf.Result
	for i := 0; i < b.N; i++ {
		solver, err := vconf.NewSolver(sc, vconf.WithSeed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		res, err = solver.Optimize(60)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Initial.InterTraffic-res.Report.InterTraffic, "traffic-saved-mbps")
}

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md §3 design choices)

// BenchmarkAblationTrafficModel compares the paper-strict μ formula against
// the flow-conserving variant on the configuration where they diverge:
// source and destination co-located at agent A while a remote agent B
// transcodes. The strict formula's (1−λ_lu) factor drops the transcoded
// return edge B→A; the conserving variant counts it.
func BenchmarkAblationTrafficModel(b *testing.B) {
	builder := model.NewBuilder(nil)
	rs := builder.Reps()
	r360, _ := rs.ByName("360p")
	r1080, _ := rs.ByName("1080p")
	for i := 0; i < 2; i++ {
		builder.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 4})
	}
	s := builder.AddSession("s")
	src := builder.AddUser("src", s, r1080, nil)
	dst := builder.AddUser("dst", s, r1080, nil)
	builder.DemandFrom(dst, src, r360)
	sc, err := builder.Build()
	if err != nil {
		b.Fatal(err)
	}
	a := assign.New(sc)
	a.SetUserAgent(src, 0)
	a.SetUserAgent(dst, 0)
	if err := a.SetFlowAgent(model.Flow{Src: src, Dst: dst}, 1); err != nil {
		b.Fatal(err)
	}
	strict := cost.DefaultParams()
	loose := cost.DefaultParams()
	loose.StrictPaperTraffic = false
	var strictT, looseT float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strictT = strict.SessionLoadOf(a, 0).TotalInterTraffic()
		looseT = loose.SessionLoadOf(a, 0).TotalInterTraffic()
	}
	b.ReportMetric(strictT, "strict-traffic-mbps")
	b.ReportMetric(looseT, "conserving-traffic-mbps")
}

// BenchmarkAblationAgRankIteration compares the damped personalized rank
// iteration (default) against the paper's literal normalized power
// iteration: bootstrap quality on the same workloads.
func BenchmarkAblationAgRankIteration(b *testing.B) {
	sc, err := workload.Generate(benchWorkload(8))
	if err != nil {
		b.Fatal(err)
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		b.Fatal(err)
	}
	run := func(damping float64) float64 {
		opts := agrank.DefaultOptions(2)
		opts.Damping = damping
		a := assign.New(sc)
		if err := agrank.Bootstrap(a, p, cost.NewLedger(sc), opts); err != nil {
			b.Fatal(err)
		}
		return ev.ReportSystem(a).InterTraffic
	}
	var damped, plain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		damped = run(0.85)
		plain = run(0)
	}
	b.ReportMetric(damped, "damped-traffic-mbps")
	b.ReportMetric(plain, "plain-traffic-mbps")
}

// BenchmarkAblationHopMode compares PaperHop and ExactCTMC timing on the
// same instance.
func BenchmarkAblationHopMode(b *testing.B) {
	for _, mode := range []struct {
		name string
		mode core.HopMode
	}{{"paper", core.PaperHop}, {"exact-ctmc", core.ExactCTMC}} {
		b.Run(mode.name, func(b *testing.B) {
			sc, err := experiments.BuildFig3Scenario()
			if err != nil {
				b.Fatal(err)
			}
			ev, err := cost.NewEvaluator(sc, cost.DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.Config{Beta: 20, ObjectiveScale: 0.01, MeanCountdownS: 1, Mode: mode.mode, Seed: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := core.NewEngine(ev, cfg)
				if err != nil {
					b.Fatal(err)
				}
				boot := func(a *assign.Assignment, s model.SessionID, ledger cost.LedgerAPI) error {
					return baseline.AssignSessionNearest(a, s, cost.DefaultParams(), ledger)
				}
				if err := eng.ActivateSession(0, boot); err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(100, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Online churn orchestrator benches

// churnFixture builds the orchestrator stack and a seeded Poisson schedule.
func churnFixture(b *testing.B, seed int64) (*vconf.Solver, []vconf.ChurnEvent) {
	b.Helper()
	sc, err := vconf.GenerateWorkload(vconf.PrototypeWorkload(seed))
	if err != nil {
		b.Fatal(err)
	}
	solver, err := vconf.NewSolver(sc, vconf.WithSeed(seed))
	if err != nil {
		b.Fatal(err)
	}
	events, err := vconf.GenerateChurn(vconf.ChurnConfig{
		Seed:            seed,
		HorizonS:        300,
		ArrivalRatePerS: 0.1,
		MeanHoldS:       90,
		NumSessions:     sc.NumSessions(),
	})
	if err != nil {
		b.Fatal(err)
	}
	return solver, events
}

// BenchmarkOrchestratorChurn drives the online orchestrator over a seeded
// churn schedule: events/sec throughput, mean re-optimization latency per
// event, and final-objective drift vs a from-scratch re-solve oracle on the
// same live session set.
func BenchmarkOrchestratorChurn(b *testing.B) {
	solver, events := churnFixture(b, 1)
	var drift, meanLatencyMS float64
	var processed int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		orc, err := solver.NewOrchestrator(vconf.DefaultOrchestratorConfig(1))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		// Only the event-processing loop is timed; construction and the
		// oracle yardstick below are setup/measurement, not throughput.
		if _, err := orc.Run(events, 300); err != nil {
			orc.Close()
			b.Fatal(err)
		}
		b.StopTimer()
		st := orc.Stats()
		processed += st.Events
		if st.Events > 0 {
			meanLatencyMS = float64(st.ReoptTotal.Microseconds()) / float64(st.Events) / 1e3
		}
		active := orc.ActiveSessions()
		online := orc.Objective()
		orc.Close()
		if len(active) > 0 {
			_, oraclePhi, err := solver.FullResolve(active, 200)
			if err != nil {
				b.Fatal(err)
			}
			if oraclePhi > 0 {
				drift = 100 * (online - oraclePhi) / oraclePhi
			}
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(processed)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(meanLatencyMS, "reopt-latency-ms")
	b.ReportMetric(drift, "oracle-drift-pct")
}

// BenchmarkOrchestratorEvent isolates the per-event hot path (admission +
// sharded incremental re-optimization) at steady state.
func BenchmarkOrchestratorEvent(b *testing.B) {
	solver, events := churnFixture(b, 2)
	orc, err := solver.NewOrchestrator(vconf.DefaultOrchestratorConfig(2))
	if err != nil {
		b.Fatal(err)
	}
	defer orc.Close()
	// Cyclic replay desyncs the schedule from the live set; flip desynced
	// arrivals into departures so every event stays valid.
	active := make(map[int]bool)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := events[i%len(events)]
		if e.Kind == vconf.ChurnArrival && active[e.Session] {
			e.Kind = vconf.ChurnDeparture
		}
		if _, err := orc.HandleEvent(e); err != nil {
			b.Fatal(err)
		}
		active[e.Session] = e.Kind == vconf.ChurnArrival
	}
}

// BenchmarkEventPipeline drives the pipelined event scheduler over a seeded
// churn schedule through the facade (Pipeline on, several events in
// flight), reporting events/sec and the scheduler's overlap telemetry —
// the streaming counterpart of BenchmarkOrchestratorChurn's barrier path.
func BenchmarkEventPipeline(b *testing.B) {
	solver, events := churnFixture(b, 3)
	cfg := vconf.DefaultOrchestratorConfig(3)
	cfg.Pipeline = true
	cfg.MaxInFlight = 4
	cfg.Core.NeighborWindow = 4
	var processed, inFlightPeak int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		orc, err := solver.NewOrchestrator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := orc.Run(events, 300); err != nil {
			orc.Close()
			b.Fatal(err)
		}
		b.StopTimer()
		st := orc.Stats()
		orc.Close()
		processed += st.Events
		if st.InFlightPeak > inFlightPeak {
			inFlightPeak = st.InFlightPeak
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(processed)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(inFlightPeak), "in-flight-peak")
}

// BenchmarkChaosRecovery drives the pipelined orchestrator over Poisson
// churn merged with a seeded fault schedule (agent failures, a regional
// outage process, partial degradations, flash crowds) on a regional fleet:
// events/sec with healing barriers in the stream, incidents and orphans
// healed per run, and the p99 time-to-recovery across incidents.
func BenchmarkChaosRecovery(b *testing.B) {
	const agents, regions = 24, 4
	fc := workload.DefaultFleetConfig(11)
	fc.NumAgents = agents
	fc.NumUsers = 4 * agents
	fc.Regions = regions
	fc.AgentBandwidthMbps = 500
	fc.AgentTranscodeSlots = 16
	sc, homes, err := workload.GenerateSyntheticFleetRegions(fc)
	if err != nil {
		b.Fatal(err)
	}
	solver, err := vconf.NewSolver(sc, vconf.WithSeed(11))
	if err != nil {
		b.Fatal(err)
	}
	// Churn draws from the front of the session pool; flash crowds burst
	// from per-region reserves at the back so the two never double-arrive.
	nChurn := len(homes) * 3 / 5
	churn, err := vconf.GenerateChurn(vconf.ChurnConfig{
		Seed:            11,
		HorizonS:        200,
		ArrivalRatePerS: 0.3,
		MeanHoldS:       90,
		NumSessions:     nChurn,
	})
	if err != nil {
		b.Fatal(err)
	}
	pools := make([][]int, regions)
	for s := nChurn; s < len(homes); s++ {
		pools[homes[s]] = append(pools[homes[s]], s)
	}
	flt, err := vconf.GenerateFaults(vconf.FaultConfig{
		Seed:           12,
		HorizonS:       200,
		NumAgents:      agents,
		AgentRegion:    vconf.AgentRegions(agents, regions),
		AgentMTBFS:     400,
		AgentMTTRS:     50,
		RegionMTBFS:    500,
		RegionMTTRS:    40,
		DegradeMTBFS:   300,
		DegradeMTTRS:   50,
		DegradeFloor:   0.4,
		FlashMTBFS:     250,
		FlashIntensity: 3,
		FlashHoldS:     40,
		FlashSessions:  pools,
	})
	if err != nil {
		b.Fatal(err)
	}
	events := vconf.MergeSchedules(churn, flt)

	cfg := vconf.DefaultOrchestratorConfig(11)
	cfg.Pipeline = true
	cfg.MaxInFlight = 4
	cfg.Core.NeighborWindow = 4
	cfg.AgentRegion = vconf.AgentRegions(agents, regions)
	var processed, incidents, orphans int
	var recoverP99 time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		orc, err := solver.NewOrchestrator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := orc.Run(events, 300); err != nil {
			orc.Close()
			b.Fatal(err)
		}
		b.StopTimer()
		if err := orc.CheckInvariants(); err != nil {
			orc.Close()
			b.Fatal(err)
		}
		st := orc.Stats()
		orc.Close()
		processed += st.Events
		incidents += st.Incidents
		orphans += st.Orphans
		if st.RecoverP99 > recoverP99 {
			recoverP99 = st.RecoverP99
		}
		b.StartTimer()
	}
	b.StopTimer()
	if incidents == 0 {
		b.Fatal("fault schedule injected no incidents")
	}
	b.ReportMetric(float64(processed)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(incidents)/float64(b.N), "incidents/run")
	b.ReportMetric(float64(orphans)/float64(b.N), "orphans/run")
	b.ReportMetric(float64(recoverP99)/1e6, "recover-p99-ms")
}

// BenchmarkDeltaVsFullObjective compares delta-evaluated objective queries
// (the orchestrator hot path) against full-scenario re-evaluation.
func BenchmarkDeltaVsFullObjective(b *testing.B) {
	ev, a, _ := benchScenario(b, 7)
	cache := cost.NewObjectiveCache(ev)
	sessions := ev.Scenario().NumSessions()
	for s := 0; s < sessions; s++ {
		cache.SetActive(model.SessionID(s), true)
	}
	cache.TotalObjective(a)
	b.Run("delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache.Invalidate(model.SessionID(i % sessions))
			_ = cache.TotalObjective(a)
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = ev.TotalObjective(a)
		}
	})
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// BenchmarkSolverCompare runs the §IV-A-3 comparator panel (greedy descent,
// simulated annealing, Markov approximation, single-agent topology control)
// on identical Nrst starts.
func BenchmarkSolverCompare(b *testing.B) {
	cfg := experiments.SolverCompareConfig{
		Seed:             1,
		NumScenarios:     1,
		DurationS:        60,
		AnnealIterations: 4000,
		Workload:         benchWorkload,
	}
	var last *experiments.SolverCompareResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSolverCompare(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(meanOf(last.Objective[0]), "nrst-phi")
	b.ReportMetric(meanOf(last.Objective[3]), "markov-phi")
}

// BenchmarkAblationFreezeProtocol compares the paper's global-freeze
// concurrent engine with the optimistic-commit extension on identical
// workloads and wall budgets: hops achieved per engine.
func BenchmarkAblationFreezeProtocol(b *testing.B) {
	sc, err := workload.Generate(benchWorkload(9))
	if err != nil {
		b.Fatal(err)
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		b.Fatal(err)
	}
	start := assign.New(sc)
	if err := baseline.Assign(start, p, cost.NewLedger(sc)); err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(9)
	cfg.MeanCountdownS = 2
	var frozenHops, optimisticHops int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frozen, err := core.NewParallel(ev, cfg, start)
		if err != nil {
			b.Fatal(err)
		}
		if err := frozen.Run(context.Background(), 50*time.Millisecond); err != nil {
			b.Fatal(err)
		}
		_, frozenHops, _ = frozen.Snapshot()

		optim, err := core.NewOptimisticParallel(ev, cfg, start)
		if err != nil {
			b.Fatal(err)
		}
		if err := optim.Run(context.Background(), 50*time.Millisecond); err != nil {
			b.Fatal(err)
		}
		_, optimisticHops, _, _ = optim.Snapshot()
	}
	b.ReportMetric(float64(frozenHops), "frozen-hops")
	b.ReportMetric(float64(optimisticHops), "optimistic-hops")
}

// ---------------------------------------------------------------------------
// Sim-core benches (virtual-clock engine vs eager materialization)

// simCoreBenchConfigs is a scenario-independent virtual-hour chaos mix:
// Poisson churn plus the full fault processes, sized to a few thousand
// merged events per iteration.
func simCoreBenchConfigs() (vconf.ChurnConfig, vconf.FaultConfig) {
	const (
		regions = 4
		agents  = 60
		pool    = 300
	)
	ccfg := vconf.ChurnConfig{
		Seed:            1,
		HorizonS:        1800,
		ArrivalRatePerS: 2,
		MeanHoldS:       60,
		NumSessions:     pool,
	}
	pools := make([][]int, regions)
	for s := pool; s < pool+8*regions; s++ {
		pools[s%regions] = append(pools[s%regions], s)
	}
	fcfg := vconf.FaultConfig{
		Seed:           2,
		HorizonS:       1800,
		NumAgents:      agents,
		AgentRegion:    vconf.AgentRegions(agents, regions),
		AgentMTBFS:     600,
		AgentMTTRS:     60,
		RegionMTBFS:    1200,
		RegionMTTRS:    90,
		DegradeMTBFS:   900,
		DegradeMTTRS:   90,
		DegradeFloor:   0.4,
		FlashMTBFS:     600,
		FlashIntensity: 3,
		FlashHoldS:     60,
		FlashSessions:  pools,
	}
	return ccfg, fcfg
}

// BenchmarkSimCoreEagerSlice materializes and merges the whole schedule,
// the pre-engine path: O(horizon) memory, sort-dominated.
func BenchmarkSimCoreEagerSlice(b *testing.B) {
	ccfg, fcfg := simCoreBenchConfigs()
	total := 0
	for i := 0; i < b.N; i++ {
		ch, err := vconf.GenerateChurn(ccfg)
		if err != nil {
			b.Fatal(err)
		}
		fl, err := vconf.GenerateFaults(fcfg)
		if err != nil {
			b.Fatal(err)
		}
		total += len(vconf.MergeSchedules(ch, fl))
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkSimCoreLazyEngine streams the identical event sequence through
// the virtual-clock engine: O(in-flight) memory, no sort.
func BenchmarkSimCoreLazyEngine(b *testing.B) {
	ccfg, fcfg := simCoreBenchConfigs()
	total := 0
	for i := 0; i < b.N; i++ {
		cs, err := vconf.NewChurnEventSource(ccfg)
		if err != nil {
			b.Fatal(err)
		}
		fs, err := vconf.NewFaultEventSource(fcfg)
		if err != nil {
			b.Fatal(err)
		}
		eng := vconf.NewSimEngine(cs, fs)
		for {
			if _, ok := eng.Next(); !ok {
				break
			}
			total++
		}
		if err := eng.Err(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "events/s")
}
