package vconf

import (
	"vconf/internal/dist"
)

// Coordinator owns the authoritative assignment state of a distributed
// deployment and serializes hops through the FREEZE/UNFREEZE protocol over
// TCP (see the internal/dist package documentation).
type Coordinator = dist.Coordinator

// SessionRunner executes one session's WAIT/HOP loop against a remote
// Coordinator.
type SessionRunner = dist.Runner

// NewCoordinator starts a coordinator listening on addr ("127.0.0.1:0"
// selects a free port) with the given complete initial assignment.
func (s *Solver) NewCoordinator(a *Assignment, addr string) (*Coordinator, error) {
	return dist.NewCoordinator(s.ev, a, addr)
}

// NewSessionRunner builds the runner for one session, configured with the
// solver's β, objective scale, countdown and seed.
func (s *Solver) NewSessionRunner(session SessionID) (*SessionRunner, error) {
	return dist.NewRunner(s.ev, session, s.coreConfig())
}
