package vconf

import (
	"vconf/internal/telemetry"
)

// TelemetrySink is the unified observability sink the orchestrator can
// carry (OrchestratorConfig.Telemetry): a concurrency-safe metrics registry
// with per-worker sharded counters, a bounded per-decision trace ring, and
// live Prometheus/JSON/Chrome-trace exposition. A nil *TelemetrySink is the
// disabled state — every instrumentation site reduces to a pointer test
// with zero allocation, so hot paths carry no overhead when observability
// is off. (Telemetry, without the suffix, is the data plane's per-tick
// measurement in runtime.go — a different thing.)
type TelemetrySink = telemetry.Sink

// TelemetryConfig sizes a telemetry sink: counter shard width (≈ solver
// worker count), trace-ring capacity, and the optional session→region map
// that labels per-region metric series.
type TelemetryConfig = telemetry.Config

// DecisionRecord is one churn event's structured trace record: virtual and
// wall time, admission and outcome counts, per-phase durations, delay-cache
// behavior, the chosen agent, and the counterfactual-k gap to the runner-up
// candidate (the regret had the 2nd-best hop been taken).
type DecisionRecord = telemetry.DecisionRecord

// TelemetryServer is a live exposition endpoint started by ServeTelemetry.
type TelemetryServer = telemetry.Server

// NewTelemetry builds an enabled telemetry sink. Pass it via
// OrchestratorConfig.Telemetry; leave the field nil to disable
// instrumentation entirely.
func NewTelemetry(cfg TelemetryConfig) *TelemetrySink {
	return telemetry.New(cfg)
}

// ServeTelemetry serves the sink's exposition surface (/metrics,
// /metrics.json, /trace.jsonl, /trace.chrome.json, /debug/pprof/...) on
// addr in a background goroutine; close the returned server to stop. A nil
// sink serves 503s, so the endpoint can be mounted unconditionally.
func ServeTelemetry(s *TelemetrySink, addr string) (*TelemetryServer, error) {
	return telemetry.Serve(s, addr)
}
