// Package measure implements the active delay-measurement service the paper
// assumes (§II: "the VC provider obtains agent-to-user and inter-agent
// delays through active measurements"; §V-B: RTTs measured "at a granularity
// of one ping per second" for 5 weeks).
//
// A Prober pings a ground-truth latency oracle (in production, the real
// network; here, a netsim-generated truth) and maintains exponentially
// weighted moving-average (EWMA) estimates of the one-way D and H matrices.
// Individual probes carry multiplicative jitter; the EWMA damps it to a
// bounded steady-state error — exactly the bounded measurement perturbation
// Theorem 1 models (the noise package quantizes it for the chain analysis).
package measure

import (
	"fmt"
	"math"
	"math/rand"
)

// Config tunes the prober.
type Config struct {
	// Seed drives probe jitter.
	Seed int64
	// JitterFrac bounds per-probe multiplicative noise: a probe of a
	// true delay d returns d × (1 + U(−JitterFrac, +JitterFrac)).
	JitterFrac float64
	// Alpha is the EWMA weight of each new sample, in (0, 1]. Smaller
	// values smooth harder (steady-state error ≈ jitter·√(α/(2−α))).
	Alpha float64
}

// DefaultConfig smooths 10% probe jitter down to ≈2% steady-state error.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, JitterFrac: 0.10, Alpha: 0.08}
}

func (c Config) validate() error {
	if c.JitterFrac < 0 || c.JitterFrac >= 1 {
		return fmt.Errorf("measure: jitter %v outside [0, 1)", c.JitterFrac)
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("measure: alpha %v outside (0, 1]", c.Alpha)
	}
	return nil
}

// Prober maintains delay estimates over a fixed ground truth.
type Prober struct {
	cfg    Config
	truthD [][]float64
	truthH [][]float64
	estD   [][]float64
	estH   [][]float64
	rounds int
	rng    *rand.Rand
}

// NewProber builds a prober over ground-truth matrices (truthD: L×L
// symmetric with zero diagonal; truthH: L×U). Estimates start at the first
// probe round's raw samples.
func NewProber(cfg Config, truthD, truthH [][]float64) (*Prober, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(truthD) == 0 {
		return nil, fmt.Errorf("measure: empty inter-agent truth")
	}
	for i, row := range truthD {
		if len(row) != len(truthD) {
			return nil, fmt.Errorf("measure: truth D not square at row %d", i)
		}
	}
	if len(truthH) != len(truthD) {
		return nil, fmt.Errorf("measure: truth H rows %d ≠ agents %d", len(truthH), len(truthD))
	}
	p := &Prober{
		cfg:    cfg,
		truthD: truthD,
		truthH: truthH,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	return p, nil
}

// Rounds returns the number of completed probe rounds.
func (p *Prober) Rounds() int { return p.rounds }

// ProbeRound sends one probe per pair (every agent↔agent and agent↔user
// path) and folds the samples into the EWMA estimates. D estimates are kept
// symmetric by averaging the two probe directions, mirroring the paper's
// "RTT divided by 2" derivation.
func (p *Prober) ProbeRound() {
	L := len(p.truthD)
	if p.estD == nil {
		p.estD = zeros(L, L)
		p.estH = zeros(L, len(p.truthH[0]))
	}
	for l := 0; l < L; l++ {
		for k := l + 1; k < L; k++ {
			// Two directional probes → one RTT/2-style symmetric sample.
			s1 := p.sample(p.truthD[l][k])
			s2 := p.sample(p.truthD[k][l])
			obs := (s1 + s2) / 2
			v := p.fold(p.estD[l][k], obs)
			p.estD[l][k] = v
			p.estD[k][l] = v
		}
	}
	for l := 0; l < L; l++ {
		for u := range p.truthH[l] {
			p.estH[l][u] = p.fold(p.estH[l][u], p.sample(p.truthH[l][u]))
		}
	}
	p.rounds++
}

// fold applies the EWMA update, seeding from the first observation.
func (p *Prober) fold(cur, obs float64) float64 {
	if p.rounds == 0 {
		return obs
	}
	return (1-p.cfg.Alpha)*cur + p.cfg.Alpha*obs
}

// sample draws one noisy probe of a true delay.
func (p *Prober) sample(truth float64) float64 {
	jitter := 1 + (2*p.rng.Float64()-1)*p.cfg.JitterFrac
	return truth * jitter
}

// EstimatedD returns a copy of the current inter-agent estimate (zero
// diagonal, symmetric). It panics if no round has run; probe first.
func (p *Prober) EstimatedD() [][]float64 { return clone(p.estD) }

// EstimatedH returns a copy of the current agent-to-user estimate.
func (p *Prober) EstimatedH() [][]float64 { return clone(p.estH) }

// MaxRelativeError returns the worst relative deviation of any estimate from
// its ground truth (0 entries are skipped).
func (p *Prober) MaxRelativeError() float64 {
	worst := 0.0
	for l := range p.truthD {
		for k := range p.truthD[l] {
			if p.truthD[l][k] <= 0 {
				continue
			}
			if e := math.Abs(p.estD[l][k]-p.truthD[l][k]) / p.truthD[l][k]; e > worst {
				worst = e
			}
		}
	}
	for l := range p.truthH {
		for u := range p.truthH[l] {
			if p.truthH[l][u] <= 0 {
				continue
			}
			if e := math.Abs(p.estH[l][u]-p.truthH[l][u]) / p.truthH[l][u]; e > worst {
				worst = e
			}
		}
	}
	return worst
}

func zeros(rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
	}
	return m
}

func clone(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = append([]float64(nil), row...)
	}
	return out
}
