package measure

import (
	"testing"

	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/netsim"
	"vconf/internal/workload"
)

func truthMatrices(t *testing.T) ([][]float64, [][]float64) {
	t.Helper()
	users := netsim.GenerateUserNodes(1, 12)
	net, err := netsim.Generate(netsim.DefaultConfig(1), netsim.EC2Sites()[:4], users)
	if err != nil {
		t.Fatal(err)
	}
	return net.DMS, net.HMS
}

func TestProberConvergesUnderJitter(t *testing.T) {
	d, h := truthMatrices(t)
	p, err := NewProber(DefaultConfig(7), d, h)
	if err != nil {
		t.Fatal(err)
	}
	p.ProbeRound()
	early := p.MaxRelativeError()
	if early > 0.101 {
		t.Fatalf("single-round error %.3f exceeds probe jitter bound", early)
	}
	for i := 0; i < 400; i++ {
		p.ProbeRound()
	}
	late := p.MaxRelativeError()
	// EWMA steady state: jitter·√(α/(2−α)) ≈ 0.10·0.2 ≈ 2%; allow slack.
	if late > 0.05 {
		t.Fatalf("steady-state error %.3f, want ≤ 0.05", late)
	}
	if p.Rounds() != 401 {
		t.Fatalf("rounds = %d", p.Rounds())
	}
}

func TestProberZeroJitterIsExact(t *testing.T) {
	d, h := truthMatrices(t)
	cfg := DefaultConfig(1)
	cfg.JitterFrac = 0
	p, err := NewProber(cfg, d, h)
	if err != nil {
		t.Fatal(err)
	}
	p.ProbeRound()
	if got := p.MaxRelativeError(); got != 0 {
		t.Fatalf("zero-jitter error = %v, want 0", got)
	}
}

func TestProberEstimatesSymmetricZeroDiagonal(t *testing.T) {
	d, h := truthMatrices(t)
	p, err := NewProber(DefaultConfig(3), d, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p.ProbeRound()
	}
	est := p.EstimatedD()
	for l := range est {
		if est[l][l] != 0 {
			t.Fatalf("diagonal [%d][%d] = %v", l, l, est[l][l])
		}
		for k := range est[l] {
			if est[l][k] != est[k][l] {
				t.Fatalf("estimate asymmetric at (%d,%d)", l, k)
			}
		}
	}
	// Returned copies are defensive.
	est[0][1] = 12345
	if p.EstimatedD()[0][1] == 12345 {
		t.Fatal("EstimatedD leaked internal storage")
	}
}

func TestProberValidation(t *testing.T) {
	d, h := truthMatrices(t)
	bad := []Config{
		{Seed: 1, JitterFrac: -0.1, Alpha: 0.1},
		{Seed: 1, JitterFrac: 1.0, Alpha: 0.1},
		{Seed: 1, JitterFrac: 0.1, Alpha: 0},
		{Seed: 1, JitterFrac: 0.1, Alpha: 1.5},
	}
	for i, cfg := range bad {
		if _, err := NewProber(cfg, d, h); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewProber(DefaultConfig(1), nil, nil); err == nil {
		t.Fatal("empty truth accepted")
	}
	if _, err := NewProber(DefaultConfig(1), [][]float64{{0, 1}}, h); err == nil {
		t.Fatal("non-square D accepted")
	}
	if _, err := NewProber(DefaultConfig(1), d, h[:1]); err == nil {
		t.Fatal("mismatched H accepted")
	}
}

// TestMeasuredScenarioStillOptimizes closes the loop the paper assumes: a
// scenario built from *estimated* (noisy) delay matrices must still
// bootstrap feasibly, and the resulting assignment — evaluated against the
// TRUE delays — must stay close to the assignment computed with perfect
// knowledge (Theorem 1's robustness claim on the real pipeline).
func TestMeasuredScenarioStillOptimizes(t *testing.T) {
	wl := workload.LargeScale(5)
	wl.NumUsers = 20
	wl.NumUserNodes = 40
	truthSc, err := workload.Generate(wl)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProber(DefaultConfig(5), truthSc.DMS, truthSc.HMS)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p.ProbeRound()
	}

	// Rebuild the scenario with estimated matrices.
	estSc, err := model.NewScenario(truthSc.Reps,
		append([]model.User(nil), truthSc.Users...),
		append([]model.Session(nil), truthSc.Sessions...),
		append([]model.Agent(nil), truthSc.Agents...),
		p.EstimatedD(), p.EstimatedH(), truthSc.DMaxMS)
	if err != nil {
		t.Fatal(err)
	}

	params := cost.DefaultParams()
	evTruth, err := cost.NewEvaluator(truthSc, params)
	if err != nil {
		t.Fatal(err)
	}

	bootstrapOn := func(sc *model.Scenario) *assign.Assignment {
		a := assign.New(sc)
		if err := baseline.Assign(a, params, cost.NewLedger(sc)); err != nil {
			t.Fatalf("bootstrap: %v", err)
		}
		return a
	}
	aTruth := bootstrapOn(truthSc)
	aEst := bootstrapOn(estSc)

	// Evaluate both against the TRUTH. The estimated-knowledge assignment
	// must be feasible and within a modest factor of the perfect-knowledge
	// one (delay estimates within a few percent rarely flip decisions).
	rebuilt := assign.New(truthSc)
	for u := 0; u < truthSc.NumUsers(); u++ {
		rebuilt.SetUserAgent(model.UserID(u), aEst.UserAgent(model.UserID(u)))
	}
	for _, f := range rebuilt.Flows() {
		m, _ := aEst.FlowAgent(f)
		if err := rebuilt.SetFlowAgent(f, m); err != nil {
			t.Fatal(err)
		}
	}
	if err := evTruth.CheckFeasible(rebuilt); err != nil {
		t.Fatalf("estimate-driven assignment infeasible on the true network: %v", err)
	}
	truthPhi := evTruth.TotalObjective(aTruth)
	estPhi := evTruth.TotalObjective(rebuilt)
	if estPhi > truthPhi*1.25 {
		t.Fatalf("estimate-driven Φ %.1f more than 25%% above perfect-knowledge Φ %.1f",
			estPhi, truthPhi)
	}
}
