package orchestrator

import (
	"testing"
	"time"
)

// TestLatencyHistPercentileEmpty pins the empty-histogram contract:
// ReoptP50/ReoptP99 must read 0 when no samples were recorded, not the
// first bucket's bound.
func TestLatencyHistPercentileEmpty(t *testing.T) {
	var h latencyHist
	if p := h.percentile(0.50); p != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", p)
	}
	if p := h.percentile(0.99); p != 0 {
		t.Fatalf("empty histogram p99 = %v, want 0", p)
	}
}

// TestLatencyHistPercentileZeroSamples pins the zero-duration case: events
// with no re-optimization set record a 0 latency; a histogram holding only
// those must still read 0 (bucket 0's lower bound), not 1ns.
func TestLatencyHistPercentileZeroSamples(t *testing.T) {
	var h latencyHist
	for i := 0; i < 10; i++ {
		h.add(0)
	}
	if p := h.percentile(0.50); p != 0 {
		t.Fatalf("all-zero histogram p50 = %v, want 0", p)
	}
	if p := h.percentile(0.99); p != 0 {
		t.Fatalf("all-zero histogram p99 = %v, want 0", p)
	}
}

// TestLatencyHistPercentileSingleSample pins the single-sample case: every
// percentile lands in the sample's bucket, whose lower bound is positive
// and no larger than the sample.
func TestLatencyHistPercentileSingleSample(t *testing.T) {
	var h latencyHist
	d := 100 * time.Microsecond
	h.add(d)
	p50 := h.percentile(0.50)
	p99 := h.percentile(0.99)
	if p50 != p99 {
		t.Fatalf("single-sample percentiles differ: p50 %v, p99 %v", p50, p99)
	}
	if p50 <= 0 || p50 > d {
		t.Fatalf("single-sample p50 = %v, want in (0, %v]", p50, d)
	}
	// Quarter-octave bucketing: 100µs falls in the [98304ns, 114688ns)
	// bucket, so the reported lower bound is exactly 98304ns.
	if want := 98304 * time.Nanosecond; p50 != want {
		t.Fatalf("single-sample p50 = %v, want %v", p50, want)
	}
	// A mixed histogram keeps the ordering p50 ≤ p99.
	for i := 0; i < 99; i++ {
		h.add(time.Millisecond)
	}
	if p50, p99 := h.percentile(0.50), h.percentile(0.99); p50 > p99 {
		t.Fatalf("percentiles inverted: p50 %v > p99 %v", p50, p99)
	}
}
