package orchestrator

import (
	"fmt"

	"vconf/internal/assign"
	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/model"
)

// Oracle runs a from-scratch re-solve over a fixed active-session set: every
// session is bootstrapped fresh and the full Markov-approximation engine
// runs for durationS virtual seconds. It is the quality yardstick for the
// incremental orchestrator — tests and benchmarks assert the online
// objective stays within a bound of this offline solution on the same
// session set.
func Oracle(
	ev *cost.Evaluator,
	active []model.SessionID,
	boot core.Bootstrapper,
	cfg core.Config,
	durationS float64,
) (*assign.Assignment, float64, error) {
	return OracleDegraded(ev, active, boot, cfg, durationS, nil)
}

// OracleDegraded is Oracle over a degraded fleet: scales[l] is agent l's
// effective capacity scale (nil ⇒ all healthy), matching
// Orchestrator.CapacityScales — so the yardstick re-solves from scratch on
// the *surviving* fleet, which is what a healed post-incident state must be
// compared against.
func OracleDegraded(
	ev *cost.Evaluator,
	active []model.SessionID,
	boot core.Bootstrapper,
	cfg core.Config,
	durationS float64,
	scales []float64,
) (*assign.Assignment, float64, error) {
	eng, err := core.NewEngine(ev, cfg)
	if err != nil {
		return nil, 0, err
	}
	for l, f := range scales {
		if f != 1 {
			if err := eng.DegradeAgent(model.AgentID(l), f); err != nil {
				return nil, 0, err
			}
		}
	}
	for _, s := range active {
		if err := eng.ActivateSession(s, boot); err != nil {
			return nil, 0, fmt.Errorf("orchestrator: oracle bootstrap session %d: %w", s, err)
		}
	}
	if durationS > 0 {
		if _, err := eng.Run(durationS, 0); err != nil {
			return nil, 0, err
		}
	}
	a := eng.Assignment()
	phi := 0.0
	for _, s := range active {
		phi += ev.SessionObjective(a, s)
	}
	return a, phi, nil
}
