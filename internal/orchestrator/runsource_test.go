package orchestrator

import (
	"bytes"
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"vconf/internal/faults"
	"vconf/internal/sim"
	"vconf/internal/telemetry"
	"vconf/internal/workload"
)

// chaosGenConfigs builds the churn and fault generator configs of the
// standard chaos mix (same shape as chaosSchedule: churn over the first
// ~60% of the pool, faults with flash crowds over per-region reserved
// pools), so eager slices and lazy sources can be constructed from one
// spec.
func chaosGenConfigs(seed int64, fc workload.FleetConfig, homes []int, horizonS, rate float64) (workload.ChurnConfig, faults.Config) {
	nChurn := len(homes) * 3 / 5
	ccfg := workload.ChurnConfig{
		Seed:            seed,
		HorizonS:        horizonS,
		ArrivalRatePerS: rate,
		MeanHoldS:       120,
		NumSessions:     nChurn,
	}
	pools := make([][]int, fc.Regions)
	for s := nChurn; s < len(homes); s++ {
		pools[homes[s]] = append(pools[homes[s]], s)
	}
	fcfg := faults.Config{
		Seed:           seed + 1,
		HorizonS:       horizonS,
		NumAgents:      fc.NumAgents,
		AgentRegion:    workload.AgentRegions(fc.NumAgents, fc.Regions),
		AgentMTBFS:     600,
		AgentMTTRS:     80,
		RegionMTBFS:    500,
		RegionMTTRS:    60,
		DegradeMTBFS:   400,
		DegradeMTTRS:   70,
		DegradeFloor:   0.4,
		FlashMTBFS:     300,
		FlashIntensity: 3,
		FlashHoldS:     60,
		FlashSessions:  pools,
	}
	return ccfg, fcfg
}

// chaosEngine builds the lazy virtual-clock engine for the same spec.
func chaosEngine(t *testing.T, ccfg workload.ChurnConfig, fcfg faults.Config) *sim.Engine {
	t.Helper()
	cs, err := workload.NewChurnSource(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := faults.NewSource(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim.New(cs, fs)
}

// normalizeReport strips the wall-clock and overlap-timing fields that
// legitimately differ across runs (same convention as coreStats and the
// telemetry differential).
func normalizeReport(r EventReport) EventReport {
	r.Latency = 0
	r.Conflicts = 0
	return r
}

// normalizeRecord strips the wall-clock/timing fields of a decision record;
// everything else must be bit-identical across eager and lazy runs.
func normalizeRecord(r telemetry.DecisionRecord) telemetry.DecisionRecord {
	r.WallNs = 0
	r.LatencyNs = 0
	r.SnapshotNs = 0
	r.WalkNs = 0
	r.CommitNs = 0
	r.Conflicts = 0
	r.Stalled = false
	return r
}

// TestRunSourceDifferentialAllPaths is the tentpole proof: driving the
// orchestrator from the lazy virtual-clock engine is bit-identical to the
// eager pre-materialized Run — final assignment, objective bits, Stats
// counters, per-event reports and the telemetry decision-record stream —
// across the serial, single-lock and pipelined (in-flight 1) paths.
func TestRunSourceDifferentialAllPaths(t *testing.T) {
	fc := chaosFleet(61)
	_, _, homes := chaosStack(t, fc)
	ccfg, fcfg := chaosGenConfigs(61, fc, homes, 400, 0.15)
	ch, err := workload.PoissonSchedule(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := faults.Schedule(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	events := faults.Merge(ch, fl)

	type result struct {
		enc     string
		phi     float64
		stats   Stats
		reports []EventReport
		records []telemetry.DecisionRecord
	}
	run := func(cfg Config, lazy bool) result {
		ev, boot, _ := chaosStack(t, fc)
		cfg.Telemetry = telemetry.New(telemetry.Config{Workers: cfg.Shards, TraceCapacity: len(events) + 8})
		o, err := New(ev, boot, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer o.Close()
		var reports []EventReport
		if lazy {
			err = o.RunSource(chaosEngine(t, ccfg, fcfg), 1e18, func(rep EventReport) error {
				reports = append(reports, rep)
				return nil
			})
		} else {
			reports, err = o.Run(events, 1e18)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := o.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return result{o.Assignment().Encode(), o.Objective(), o.Stats(), reports,
			cfg.Telemetry.Recorder().Records()}
	}

	paths := []struct {
		name string
		tune func(cfg *Config)
	}{
		{"serial", func(cfg *Config) {}},
		{"single-lock", func(cfg *Config) { cfg.LedgerShards = -1 }},
		{"pipelined", func(cfg *Config) {
			cfg.Pipeline = true
			cfg.MaxInFlight = 1
		}},
	}
	for _, tc := range paths {
		t.Run(tc.name, func(t *testing.T) {
			cfg := chaosConfig(61, fc)
			tc.tune(&cfg)
			eager := run(cfg, false)
			cfg = chaosConfig(61, fc)
			tc.tune(&cfg)
			lazy := run(cfg, true)

			if lazy.enc != eager.enc {
				t.Fatal("final assignment diverged between eager Run and lazy RunSource")
			}
			if math.Float64bits(lazy.phi) != math.Float64bits(eager.phi) {
				t.Fatalf("objective diverged: eager %v lazy %v", eager.phi, lazy.phi)
			}
			if coreStats(lazy.stats) != coreStats(eager.stats) {
				t.Fatalf("stats diverged:\n eager %+v\n lazy  %+v",
					coreStats(eager.stats), coreStats(lazy.stats))
			}
			if len(lazy.reports) != len(eager.reports) {
				t.Fatalf("report counts diverged: eager %d lazy %d", len(eager.reports), len(lazy.reports))
			}
			for i := range eager.reports {
				a, b := normalizeReport(eager.reports[i]), normalizeReport(lazy.reports[i])
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("report %d diverged:\n eager %+v\n lazy  %+v", i, a, b)
				}
			}
			if len(lazy.records) != len(eager.records) {
				t.Fatalf("decision-record counts diverged: eager %d lazy %d",
					len(eager.records), len(lazy.records))
			}
			for i := range eager.records {
				a, b := normalizeRecord(eager.records[i]), normalizeRecord(lazy.records[i])
				if a != b {
					t.Fatalf("decision record %d diverged:\n eager %+v\n lazy  %+v", i, a, b)
				}
			}
		})
	}
}

// TestRunSourceRecordReplay pins the trace loop: record a lazy chaos run,
// replay it through a fresh orchestrator with the divergence checker
// engaged, and the decision stream must verify digest-for-digest with the
// same final state; a second recording of the replay must be byte-identical
// to the original trace.
func TestRunSourceRecordReplay(t *testing.T) {
	fc := chaosFleet(67)
	_, _, homes := chaosStack(t, fc)
	ccfg, fcfg := chaosGenConfigs(67, fc, homes, 300, 0.12)

	record := func(src EventSource, rec *sim.Recorder) (string, float64) {
		ev, boot, _ := chaosStack(t, fc)
		o, err := New(ev, boot, chaosConfig(67, fc))
		if err != nil {
			t.Fatal(err)
		}
		defer o.Close()
		err = o.RunSource(src, 1e18, func(rep EventReport) error {
			return rec.Record(rep.Event, sim.Digest{Phi: rep.Objective, Active: rep.ActiveSessions, Commits: rep.Commits})
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.Flush(); err != nil {
			t.Fatal(err)
		}
		return o.Assignment().Encode(), o.Objective()
	}

	var traceA bytes.Buffer
	recA, err := sim.NewRecorder(&traceA)
	if err != nil {
		t.Fatal(err)
	}
	encA, phiA := record(chaosEngine(t, ccfg, fcfg), recA)
	if recA.Recorded() == 0 {
		t.Fatal("empty recording")
	}

	// Replay with the divergence checker, re-recording as we go.
	rp, err := sim.NewReplayer(bytes.NewReader(traceA.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ev, boot, _ := chaosStack(t, fc)
	o, err := New(ev, boot, chaosConfig(67, fc))
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	var traceB bytes.Buffer
	recB, err := sim.NewRecorder(&traceB)
	if err != nil {
		t.Fatal(err)
	}
	err = o.RunSource(rp, 1e18, func(rep EventReport) error {
		d := sim.Digest{Phi: rep.Objective, Active: rep.ActiveSessions, Commits: rep.Commits}
		if div := rp.Check(d); div != nil {
			return div
		}
		return recB.Record(rep.Event, d)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := recB.Flush(); err != nil {
		t.Fatal(err)
	}
	if rp.Checked() != recA.Recorded() {
		t.Fatalf("replay checked %d of %d decisions", rp.Checked(), recA.Recorded())
	}
	if enc := o.Assignment().Encode(); enc != encA {
		t.Fatal("replayed final assignment diverged")
	}
	if math.Float64bits(o.Objective()) != math.Float64bits(phiA) {
		t.Fatalf("replayed objective diverged: %v vs %v", o.Objective(), phiA)
	}
	if !bytes.Equal(traceA.Bytes(), traceB.Bytes()) {
		t.Fatal("re-recorded replay trace is not byte-identical to the original")
	}
}

// TestRunHorizonEdgeCases pins Run's boundary behavior: an empty schedule
// is a no-op success, an event exactly at horizonS is processed, and
// out-of-order input is rejected (serial and pipelined) instead of
// silently regressing the clock.
func TestRunHorizonEdgeCases(t *testing.T) {
	build := func(pipelined bool) *Orchestrator {
		ev, boot := testStack(t, workload.Prototype(21))
		cfg := DefaultConfig(21)
		cfg.Shards = 2
		if pipelined {
			cfg.Pipeline = true
			cfg.MaxInFlight = 2
		}
		o, err := New(ev, boot, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(o.Close)
		return o
	}
	for _, pipelined := range []bool{false, true} {
		o := build(pipelined)
		reports, err := o.Run(nil, 100)
		if err != nil || len(reports) != 0 {
			t.Fatalf("pipelined=%v: empty schedule: reports=%d err=%v", pipelined, len(reports), err)
		}
		// An event exactly at the horizon belongs to the schedule: Run
		// processes every listed event; horizonS only pads the data plane.
		reports, err = o.Run([]workload.Event{{TimeS: 100, Kind: workload.EventArrival, Session: 0}}, 100)
		if err != nil || len(reports) != 1 || !reports[0].Admitted {
			t.Fatalf("pipelined=%v: horizon-edge event: reports=%+v err=%v", pipelined, reports, err)
		}
		if o.Now() != 100 {
			t.Fatalf("pipelined=%v: clock %v after horizon-edge event", pipelined, o.Now())
		}
		bad := []workload.Event{
			{TimeS: 120, Kind: workload.EventArrival, Session: 1},
			{TimeS: 110, Kind: workload.EventArrival, Session: 2},
		}
		if _, err := o.Run(bad, 200); err == nil {
			t.Fatalf("pipelined=%v: out-of-order schedule accepted", pipelined)
		}
		// The rejection happens before the offending event applies, so the
		// orchestrator keeps working.
		if err := o.CheckInvariants(); err != nil {
			t.Fatalf("pipelined=%v: %v", pipelined, err)
		}
		o2 := build(pipelined)
		if err := o2.RunSource(sim.NewSliceSource(bad), 200, nil); err == nil {
			t.Fatalf("pipelined=%v: RunSource accepted out-of-order stream", pipelined)
		}
	}
}

// TestRunSourcePipelinedStorm races the streaming path end to end: a lazy
// chaos engine feeding the pipelined scheduler at in-flight 4, reports
// counted from the retire goroutine, invariants checked at the end. Run
// under -race in CI.
func TestRunSourcePipelinedStorm(t *testing.T) {
	fc := chaosFleet(71)
	_, _, homes := chaosStack(t, fc)
	ccfg, fcfg := chaosGenConfigs(71, fc, homes, 400, 0.2)
	cfg := chaosConfig(71, fc)
	cfg.Shards = 4
	cfg.LedgerShards = 4
	cfg.Pipeline = true
	cfg.MaxInFlight = 4
	ev, boot, _ := chaosStack(t, fc)
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	var n atomic.Int64
	if err := o.RunSource(chaosEngine(t, ccfg, fcfg), 1e18, func(rep EventReport) error {
		n.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n.Load() == 0 {
		t.Fatal("storm emitted no reports")
	}
	if got := int64(o.Stats().Events); got != n.Load() {
		t.Fatalf("emitted %d reports for %d events", n.Load(), got)
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
