package orchestrator

// This file is the pipelined event path (Config.Pipeline): HandleEvent/Run
// reworked onto the dependency-aware scheduler in internal/pipeline, so
// independent churn events overlap end-to-end instead of barriering one at
// a time.
//
// Consistency story (what makes overlap safe):
//
//   - Session ownership. An event's footprint session set is the trigger
//     plus its re-optimization set, fixed at admission; the scheduler
//     guarantees (a) no two events owning a common session ever execute
//     concurrently and (b) an event's admission never runs while an
//     in-flight event claims its trigger. Since session variables live in
//     disjoint slice ranges (internal/assign) and refinement tasks touch
//     only their own session, all unlocked assignment accesses stay
//     single-owner — the same invariant the per-event barrier used to
//     provide globally, now scoped per footprint.
//   - Touched-set consistency. Admissions must discover which sessions
//     share agents with the trigger *without* reading in-flight sessions'
//     assignment state. touchIdx[s] — the committed agent set per active
//     session, updated under o.mu at bootstrap, commit and departure — is
//     that read-only-under-mu mirror; overlap tests against it match the
//     serial path's SessionLoad/OverlapsAgents predicate exactly on
//     quiesced state (the cap-1 differential tests pin bit-identity).
//   - Objective consistency. The objective cache is never left dirty in
//     pipelined mode: arrivals refresh their session at admission,
//     committing workers Prime it from their own evaluation, departures
//     deactivate it. Retire-time objective sums therefore never recompute
//     from the shared assignment.
//   - Capacity. Unchanged: the lock-striped shard ledger validates every
//     commit against live usage, and the epoch-stamped Conflict/retry path
//     absorbs whatever footprint under-estimation admits (walks evaluated
//     on snapshots another in-flight event has since invalidated).

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"vconf/internal/agrank"
	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/model"
	"vconf/internal/pipeline"
	"vconf/internal/shard"
	"vconf/internal/telemetry"
	"vconf/internal/workload"
)

// eventState carries one pipelined event across its scheduler stages. The
// report pointer is stable; callers read it after the retire channel
// closes.
type eventState struct {
	o     *Orchestrator
	e     workload.Event
	seq   int
	rep   *EventReport
	reopt []model.SessionID
	tally eventTally
	// stalled records whether this event's admission waited in the
	// scheduler (the OnAdmit hook), for the decision record.
	stalled bool
	// admitErr records this event's admission failure (written in the
	// dispatcher before the retire channel closes), so HandleEvent can tell
	// "this event never happened" from errors surfaced by other machinery.
	admitErr error
	// span traces the event from submission to retirement; task spans nest
	// under it (zero when telemetry is off).
	span telemetry.Span
	// sink, when non-nil, receives the finished report at retire (Run's
	// in-order collection; retires are serialized by the scheduler).
	sink *[]EventReport
	// emit, when non-nil, streams the finished report at retire
	// (RunSource's O(in-flight) alternative to sink; same serialization).
	emit func(EventReport)
}

// submitEvent validates e and hands it to the scheduler. The returned
// state's report is filled in across the event's stages and complete once
// the channel closes.
func (o *Orchestrator) submitEvent(e workload.Event, sink *[]EventReport, emit func(EventReport)) (*eventState, <-chan struct{}, error) {
	if e.Session < 0 || e.Session >= o.sc.NumSessions() {
		return nil, nil, fmt.Errorf("orchestrator: event session %d outside [0, %d)", e.Session, o.sc.NumSessions())
	}
	if e.Kind != workload.EventArrival && e.Kind != workload.EventDeparture {
		return nil, nil, fmt.Errorf("orchestrator: invalid event kind %d", e.Kind)
	}
	st := &eventState{
		o:     o,
		e:     e,
		seq:   o.eventIdx,
		rep:   &EventReport{Event: e, Admitted: true},
		tally: eventTally{chosenAgent: -1},
		sink:  sink,
		emit:  emit,
	}
	// In-flight events overlap, so each gets its own trace lane (reused
	// modulo pipelineLanes — far above any realistic MaxInFlight, so live
	// events never share one). The span opens at submission: queue wait is
	// part of the event's story.
	st.span = o.tel.StartRoot(eventSpanName(e.Kind), "event", 1+int32(st.seq%pipelineLanes))
	o.eventIdx++
	ch, err := o.pipe.Submit(pipeline.Exec{
		Trigger: int32(e.Session),
		OnAdmit: func(stalled bool) { st.stalled = stalled },
		Admit:   st.admit,
		Reopt:   st.reoptStage,
		Retire:  st.retire,
	})
	if err != nil {
		return nil, nil, err
	}
	return st, ch, nil
}

// handleEventPipelined submits one event and blocks until it retires.
// Because retirement follows arrival order, returning also means every
// earlier event has retired — the orchestrator is quiesced.
func (o *Orchestrator) handleEventPipelined(e workload.Event) (EventReport, error) {
	if err := o.takeRefErr(); err != nil {
		return EventReport{}, err
	}
	if e.Kind.IsFault() {
		// A fault is a full barrier: healing re-assigns sessions that
		// in-flight events may own, so drain the scheduler first, then heal
		// with exclusive ownership of the whole state.
		if err := o.pipe.Drain(); err != nil {
			return EventReport{}, err
		}
		return o.handleFault(e)
	}
	st, ch, err := o.submitEvent(e, nil, nil)
	if err != nil {
		return EventReport{}, err
	}
	rep := st.rep
	<-ch
	// Drain (a no-op wait here: our event retiring means the queue is
	// empty under the single-caller discipline) surfaces and clears any
	// stream error, so a failed event reports once and the orchestrator
	// keeps working — the serial path's error semantics.
	if err := o.pipe.Drain(); err != nil {
		// A failed admission never happened: release its event index, as
		// the serial path does by erroring before its increment — this is
		// what keeps task seeds (and so cap-1 bit-identity) aligned across
		// streams containing recovered errors. Safe under the single-caller
		// discipline: st.seq is necessarily the last index assigned.
		if st.admitErr != nil {
			o.eventIdx = st.seq
		}
		return *rep, err
	}
	if err := o.takeRefErr(); err != nil {
		return *rep, err
	}
	return *rep, nil
}

// runPipelined streams the schedule into the scheduler, letting events with
// disjoint footprints overlap, and returns the reports in schedule order.
// With a runtime attached, data-plane ticks interleave with in-flight
// migrations under the state lock, so telemetry stays race-free (tick
// timing relative to overlapping events is approximate by construction).
func (o *Orchestrator) runPipelined(events []workload.Event, horizonS float64) ([]EventReport, error) {
	reports := make([]EventReport, 0, len(events))
	for i, e := range events {
		if i > 0 && e.TimeS < events[i-1].TimeS {
			o.pipe.Drain()
			return reports, fmt.Errorf("orchestrator: out-of-order event %d at t=%v after t=%v",
				i, e.TimeS, events[i-1].TimeS)
		}
		if rt := o.runtime(); rt != nil {
			o.mu.Lock()
			var err error
			if dt := e.TimeS - rt.Now(); dt > 1e-9 {
				_, err = rt.Tick(dt)
			}
			o.mu.Unlock()
			if err != nil {
				o.pipe.Drain()
				return reports, err
			}
		}
		// Worker/runtime errors surface mid-stream, like the serial path's
		// per-event takeRefErr — not only after the whole schedule drained.
		if err := o.takeRefErr(); err != nil {
			o.pipe.Drain()
			return reports, err
		}
		if e.Kind.IsFault() {
			// Fault barrier: drain so every prior report has retired (and
			// appended itself to reports), heal, then append in order.
			if err := o.pipe.Drain(); err != nil {
				return reports, err
			}
			rep, err := o.handleFault(e)
			if err != nil {
				return reports, err
			}
			reports = append(reports, rep)
			continue
		}
		if _, _, err := o.submitEvent(e, &reports, nil); err != nil {
			if derr := o.pipe.Drain(); derr != nil {
				err = derr
			}
			return reports, err
		}
	}
	if err := o.pipe.Drain(); err != nil {
		return reports, err
	}
	if rt := o.runtime(); rt != nil {
		o.mu.Lock()
		var err error
		if dt := horizonS - rt.Now(); dt > 1e-9 {
			_, err = rt.Tick(dt)
		}
		o.mu.Unlock()
		if err != nil {
			return reports, err
		}
	}
	if err := o.takeRefErr(); err != nil {
		return reports, err
	}
	return reports, nil
}

// admit runs the admission stage, recording any failure in admitErr so the
// submitter can distinguish "this event never happened" (and release its
// event index) from asynchronously surfaced errors.
func (st *eventState) admit() (pipeline.Footprint, error) {
	fp, err := st.applyAdmission()
	if err != nil {
		st.admitErr = err
	}
	return fp, err
}

// applyAdmission is the event's serialized admission stage: apply the
// arrival or departure against the authoritative state and derive the
// conflict footprint. The scheduler guarantees the trigger session is
// unclaimed, so every trigger-session access here is single-owner;
// everything else goes through the stripe-locked ledger, the
// committed-agents index, or o.mu.
func (st *eventState) applyAdmission() (pipeline.Footprint, error) {
	o := st.o
	s := model.SessionID(st.e.Session)
	o.mu.Lock()
	defer o.mu.Unlock()
	o.advanceClock(st.e.TimeS)
	switch st.e.Kind {
	case workload.EventArrival:
		o.stats.Arrivals++
		if o.cache.Active(s) {
			return pipeline.Footprint{}, fmt.Errorf("orchestrator: arrival for already-active session %d", s)
		}
		if err := o.boot(o.a, s, o.ledger); err != nil {
			if errors.Is(err, agrank.ErrInfeasible) || errors.Is(err, baseline.ErrInfeasible) {
				o.stats.Dropped++
				if o.impaired > 0 {
					o.stats.DegradedRejects++
					o.tel.DegradedReject(o.tel.RegionOf(int(s)))
				}
				st.rep.Admitted = false
				return pipeline.Footprint{}, nil
			}
			return pipeline.Footprint{}, fmt.Errorf("orchestrator: bootstrap session %d: %w", s, err)
		}
		o.cache.SetActive(s, true)
		if o.rt != nil {
			if err := o.rt.ActivateSession(s, o.a); err != nil {
				return pipeline.Footprint{}, err
			}
		}
		// SessionLoad refreshes the cache entry here, under mu, while the
		// admission owns the session — leaving it clean for retire-time
		// objective sums.
		load := o.cache.SessionLoad(o.a, s)
		o.touchIdx[s] = load.AppendAgents(nil)
		touched := o.touchedIndexed(s, o.agentsOf(load))
		st.reopt = o.capReopt(s, touched)
	case workload.EventDeparture:
		o.stats.Departures++
		if !o.cache.Active(s) {
			o.stats.Skipped++
			st.rep.Admitted = false
			return pipeline.Footprint{}, nil
		}
		load := o.cache.SessionLoad(o.a, s)
		agents := o.agentsOf(load)
		o.ledger.RemoveSparse(load)
		for _, u := range o.sc.Session(s).Users {
			o.a.SetUserAgent(u, assign.Unassigned)
		}
		for _, f := range o.a.SessionFlows(s) {
			if err := o.a.SetFlowAgent(f, assign.Unassigned); err != nil {
				return pipeline.Footprint{}, err
			}
		}
		// Clearing the committed-agents index entry is also the delay-cache
		// invalidation point for pipelined mode: SetActive drops the
		// objective cache's delay entry, the commit scratch drops its own,
		// and because the departed session leaves touchIdx (and so every
		// future footprint and touched set), no in-flight evaluation can
		// leak its stale variables into a warm cache — worker entries
		// re-validate by signature the next time the session is owned.
		o.cache.SetActive(s, false)
		o.scr.InvalidateDelay(s)
		o.touchIdx[s] = nil
		if o.rt != nil {
			o.rt.DeactivateSession(s)
		}
		// The departed session freed capacity on its agents: sessions
		// loading those agents may now have better moves available.
		touched := o.touchedIndexed(s, agents)
		st.reopt = o.capReopt(model.SessionID(-1), touched)
	}
	st.rep.Reopt = st.reopt
	return o.footprintLocked(s, st.reopt), nil
}

// reoptStage feeds the event's re-optimization tasks to the shared worker
// pool and waits for them — the per-event (not global) barrier.
func (st *eventState) reoptStage() error {
	o := st.o
	if len(st.reopt) == 0 {
		o.observeDelay(&st.tally, st.e, st.rep.Admitted)
		return nil
	}
	start := time.Now()
	var wg sync.WaitGroup
	for _, s := range st.reopt {
		wg.Add(1)
		o.tasks <- reoptTask{
			session: s,
			seed:    taskSeed(o.cfg.Core.Seed, s, st.seq),
			wg:      &wg,
			tally:   &st.tally,
			parent:  st.span,
		}
	}
	wg.Wait()
	st.rep.Latency = time.Since(start)
	// Read the trigger's delay now, while this event still owns its
	// footprint — the scheduler releases it when this stage returns, before
	// retire runs.
	o.observeDelay(&st.tally, st.e, st.rep.Admitted)
	o.mu.Lock()
	o.stats.Tasks += len(st.reopt)
	o.mu.Unlock()
	return nil
}

// retire finalizes the event's report in arrival order: per-event outcome
// tallies, the post-event objective (every cache entry is clean by the
// pipelined-mode invariant, so this never reads in-flight assignment
// state), and the aggregate latency telemetry. At MaxInFlight > 1 the
// Objective/ActiveSessions fields sample whatever admissions have applied
// by retire time — deterministic in order, timing-dependent in value; the
// cap-1 differential tests pin the values bit-for-bit.
func (st *eventState) retire() {
	o := st.o
	o.mu.Lock()
	o.stats.Events++
	o.stats.ReoptTotal += st.rep.Latency
	if st.rep.Latency > o.stats.ReoptMax {
		o.stats.ReoptMax = st.rep.Latency
	}
	o.lat.ObserveDuration(st.rep.Latency)
	st.rep.Commits = st.tally.commits
	st.rep.Rejects = st.tally.rejects
	st.rep.NoChange = st.tally.noChange
	st.rep.Conflicts = st.tally.conflicts
	st.rep.Objective = o.cache.TotalObjective(o.a)
	st.rep.ActiveSessions = o.cache.NumActive()
	o.mu.Unlock()
	st.span.EndArg(int64(st.e.Session))
	o.emitRecord(st.rep, &st.tally, st.stalled)
	if st.sink != nil {
		*st.sink = append(*st.sink, *st.rep)
	}
	if st.emit != nil {
		st.emit(*st.rep)
	}
}

// touchedIndexed mirrors touchedLocked over the committed-agents index:
// active sessions (≠ trigger) whose committed load touches any marked
// agent, ascending. Reading the index instead of cached session loads is
// what keeps admissions from recomputing sessions another in-flight event
// owns. Caller holds o.mu.
func (o *Orchestrator) touchedIndexed(trigger model.SessionID, agents []bool) []model.SessionID {
	var out []model.SessionID
	for _, s := range o.cache.ActiveSessions() {
		if s == trigger {
			continue
		}
		for _, l := range o.touchIdx[s] {
			if agents[l] {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// footprintLocked derives an event's conflict footprint: the owned session
// set (trigger + re-optimization set) and the ledger stripes those
// sessions' walks can read or commit to — each session's committed agents
// plus its members' candidate windows, widened by FootprintSlack. Without a
// candidate window a walk can move a session onto any agent, so the
// footprint claims every stripe (correct, but serializing: windows are what
// unlock event-level parallelism). Caller holds o.mu.
func (o *Orchestrator) footprintLocked(trigger model.SessionID, reopt []model.SessionID) pipeline.Footprint {
	fp := pipeline.Footprint{Sessions: make([]int32, 0, len(reopt)+1)}
	fp.Sessions = append(fp.Sessions, int32(trigger))
	for _, s := range reopt {
		if s != trigger {
			fp.Sessions = append(fp.Sessions, int32(s))
		}
	}
	if o.nbrIdx == nil || o.cfg.FootprintSlack < 0 {
		fp.Shards = make([]int32, o.shl.NumShards())
		for i := range fp.Shards {
			fp.Shards[i] = int32(i)
		}
		return fp
	}
	var agents []model.AgentID
	for _, s32 := range fp.Sessions {
		s := model.SessionID(s32)
		agents = append(agents, o.touchIdx[s]...)
		if s == trigger && o.touchIdx[s] == nil {
			continue // departed trigger: owned but never walked
		}
		for _, u := range o.sc.Session(s).Users {
			agents = append(agents, o.nbrIdx.UserWindow(u)...)
		}
	}
	var r shard.Route
	o.shl.ResetRoute(&r)
	o.shl.RouteAgents(&r, agents)
	o.shl.ExpandRoute(&r, o.cfg.FootprintSlack)
	fp.Shards = append(fp.Shards, r.Shards()...)
	return fp
}
