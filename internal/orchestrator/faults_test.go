package orchestrator

import (
	"math"
	"testing"

	"vconf/internal/agrank"
	"vconf/internal/assign"
	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/faults"
	"vconf/internal/model"
	"vconf/internal/workload"
)

// chaosFleet is the shared regional fleet the fault tests run against:
// finite capacities with per-region skew, so whole-region outages force real
// evacuations into the surviving regions.
func chaosFleet(seed int64) workload.FleetConfig {
	fc := workload.DefaultFleetConfig(seed)
	fc.NumAgents = 16
	fc.NumUsers = 64
	fc.Regions = 4
	fc.AgentBandwidthMbps = 500
	fc.AgentTranscodeSlots = 16
	return fc
}

// chaosStack builds the evaluator and AgRank bootstrapper for a regional
// fleet and returns each session's home region alongside.
func chaosStack(t testing.TB, fc workload.FleetConfig) (*cost.Evaluator, core.Bootstrapper, []int) {
	t.Helper()
	sc, homes, err := workload.GenerateSyntheticFleetRegions(fc)
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	opts := agrank.DefaultOptions(3)
	boot := func(a *assign.Assignment, s model.SessionID, ledger cost.LedgerAPI) error {
		_, err := agrank.BootstrapSession(a, s, p, ledger, opts)
		return err
	}
	return ev, boot, homes
}

// chaosSchedule interleaves Poisson churn over the first ~60% of the session
// pool with a fault schedule (agent failures, regional outages, partial
// degradations, flash crowds drawing from the remaining per-region reserved
// pools). The two generators draw from disjoint session pools so a burst
// session can never double-arrive.
func chaosSchedule(t testing.TB, seed int64, fc workload.FleetConfig, homes []int, horizonS, rate float64) []workload.Event {
	t.Helper()
	nChurn := len(homes) * 3 / 5
	ch, err := workload.PoissonSchedule(workload.ChurnConfig{
		Seed:            seed,
		HorizonS:        horizonS,
		ArrivalRatePerS: rate,
		MeanHoldS:       120,
		NumSessions:     nChurn,
	})
	if err != nil {
		t.Fatal(err)
	}
	pools := make([][]int, fc.Regions)
	for s := nChurn; s < len(homes); s++ {
		pools[homes[s]] = append(pools[homes[s]], s)
	}
	fl, err := faults.Schedule(faults.Config{
		Seed:           seed + 1,
		HorizonS:       horizonS,
		NumAgents:      fc.NumAgents,
		AgentRegion:    workload.AgentRegions(fc.NumAgents, fc.Regions),
		AgentMTBFS:     600,
		AgentMTTRS:     80,
		RegionMTBFS:    500,
		RegionMTTRS:    60,
		DegradeMTBFS:   400,
		DegradeMTTRS:   70,
		DegradeFloor:   0.4,
		FlashMTBFS:     300,
		FlashIntensity: 3,
		FlashHoldS:     60,
		FlashSessions:  pools,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fl) == 0 {
		t.Fatal("fault schedule drew no events; lower the MTBFs")
	}
	return faults.Merge(ch, fl)
}

// runChaos drives one fresh orchestrator over a merged churn+fault schedule
// against a fresh copy of the regional fleet.
func runChaos(t *testing.T, fc workload.FleetConfig, events []workload.Event, cfg Config) (string, float64, Stats) {
	t.Helper()
	ev, boot, _ := chaosStack(t, fc)
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := o.Run(events, 1e18); err != nil {
		t.Fatal(err)
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return o.Assignment().Encode(), o.Objective(), o.Stats()
}

// chaosConfig is the common single-worker configuration the differential
// tests mutate per engine path.
func chaosConfig(seed int64, fc workload.FleetConfig) Config {
	cfg := DefaultConfig(seed)
	cfg.Shards = 1
	cfg.LedgerShards = 1
	cfg.AgentRegion = workload.AgentRegions(fc.NumAgents, fc.Regions)
	return cfg
}

// TestFaultDifferentialAllPaths replays one merged churn+fault schedule
// through all three orchestrator engine paths — serial sharded, single-lock
// legacy (dense clones + optimistic revalidation), and pipelined at
// in-flight 1 — plus a second serial run for across-run determinism. Final
// assignment encoding, objective bits and every activity counter (incidents,
// orphans, evacuations, degraded rejects included) must match exactly:
// fault handling is a barrier on every path, so healing must not introduce
// any path-dependent state.
func TestFaultDifferentialAllPaths(t *testing.T) {
	fc := chaosFleet(41)
	_, _, homes := chaosStack(t, fc)
	events := chaosSchedule(t, 41, fc, homes, 400, 0.15)

	serial := chaosConfig(41, fc)
	encWant, phiWant, stWant := runChaos(t, fc, events, serial)
	if stWant.Incidents == 0 || stWant.Orphans == 0 {
		t.Fatalf("schedule exercised no healing: %+v", stWant)
	}

	paths := []struct {
		name string
		tune func(cfg *Config)
	}{
		{"serial-rerun", func(cfg *Config) {}},
		{"single-lock", func(cfg *Config) { cfg.LedgerShards = -1 }},
		{"pipelined", func(cfg *Config) {
			cfg.Pipeline = true
			cfg.MaxInFlight = 1
		}},
	}
	for _, tc := range paths {
		t.Run(tc.name, func(t *testing.T) {
			cfg := chaosConfig(41, fc)
			tc.tune(&cfg)
			enc, phi, st := runChaos(t, fc, events, cfg)
			if enc != encWant {
				t.Fatal("final assignment diverged from the serial reference")
			}
			if math.Float64bits(phi) != math.Float64bits(phiWant) {
				t.Fatalf("objective diverged: %v vs %v", phi, phiWant)
			}
			if coreStats(st) != coreStats(stWant) {
				t.Fatalf("stats diverged:\n got  %+v\n want %+v", coreStats(st), coreStats(stWant))
			}
		})
	}
}

// TestFaultHealingInvariants steps a merged schedule event by event and runs
// the full invariant checker — capacity (zero-cap agents hold zero load),
// session completeness, delay feasibility, exact ledger reconciliation —
// after every single event, so each incident is validated in its immediate
// aftermath, not just at the horizon. At the end the healed objective must
// sit within the standard oracle drift bound of a from-scratch re-solve on
// the surviving (degraded) fleet.
func TestFaultHealingInvariants(t *testing.T) {
	fc := chaosFleet(43)
	ev, boot, homes := chaosStack(t, fc)
	events := chaosSchedule(t, 43, fc, homes, 400, 0.15)

	cfg := chaosConfig(43, fc)
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	for _, e := range events {
		rep, err := o.HandleEvent(e)
		if err != nil {
			t.Fatalf("event %+v: %v", e, err)
		}
		if err := o.CheckInvariants(); err != nil {
			t.Fatalf("after event %+v: %v", e, err)
		}
		if rep.Evacuated+rep.EvacRejects != rep.Orphans {
			t.Fatalf("event %+v: %d evacuated + %d rejected != %d orphans",
				e, rep.Evacuated, rep.EvacRejects, rep.Orphans)
		}
	}

	st := o.Stats()
	if st.Incidents == 0 || st.Orphans == 0 || st.Evacuated == 0 {
		t.Fatalf("schedule exercised no healing: %+v", st)
	}
	if st.Evacuated+st.EvacRejects != st.Orphans {
		t.Fatalf("orphan accounting broken: %+v", st)
	}
	if st.DegradedRejects > st.Dropped {
		t.Fatalf("degraded rejects %d exceed total drops %d", st.DegradedRejects, st.Dropped)
	}
	if st.RecoverP99 < st.RecoverP50 || st.RecoverP50 <= 0 {
		t.Fatalf("time-to-recovery percentiles malformed: p50 %v p99 %v", st.RecoverP50, st.RecoverP99)
	}

	active := o.ActiveSessions()
	if len(active) == 0 {
		t.Fatal("no active sessions at horizon; pick a longer hold time")
	}
	// The yardstick re-solves from scratch on the *surviving* fleet: the
	// oracle engine is degraded with the orchestrator's effective capacity
	// scales before bootstrapping.
	_, oraclePhi, err := OracleDegraded(ev, active, boot, core.DefaultConfig(43), 200, o.CapacityScales())
	if err != nil {
		t.Fatal(err)
	}
	online := o.Objective()
	if online > oraclePhi*1.10 {
		t.Fatalf("healed objective %.2f exceeds 110%% of degraded oracle %.2f", online, oraclePhi)
	}
	t.Logf("healing: %d incidents, %d orphans (%d evacuated, %d rejected), ttr p50 %v p99 %v, online/oracle %.4f",
		st.Incidents, st.Orphans, st.Evacuated, st.EvacRejects, st.RecoverP50, st.RecoverP99, online/oraclePhi)
}

// TestDelayCacheFaultDifferential is the failure-path extension of the
// warm-vs-rebuild differential: across a schedule full of agent failures,
// regional outages and recoveries, the persistent delay cache must produce
// bit-identical results to the per-hop delay-base rebuild. Eviction-driven
// invalidation is exactly what is under test — a warm entry surviving its
// agent's failure would resurface a stale delay base on the session's next
// bootstrap and diverge here.
func TestDelayCacheFaultDifferential(t *testing.T) {
	fc := chaosFleet(47)
	_, _, homes := chaosStack(t, fc)
	events := chaosSchedule(t, 47, fc, homes, 400, 0.15)

	for _, mode := range []struct {
		name string
		tune func(cfg *Config)
	}{
		{"serial", func(cfg *Config) {}},
		{"pipelined", func(cfg *Config) {
			cfg.Pipeline = true
			cfg.MaxInFlight = 1
		}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			cached := chaosConfig(47, fc)
			mode.tune(&cached)
			encC, phiC, stC := runChaos(t, fc, events, cached)
			if stC.Incidents == 0 || stC.Orphans == 0 {
				t.Fatalf("schedule exercised no healing: %+v", stC)
			}

			rebuild := cached
			rebuild.Core.RebuildDelayBase = true
			encR, phiR, stR := runChaos(t, fc, events, rebuild)

			if encC != encR {
				t.Fatal("cached and rebuild delay paths diverged under faults")
			}
			if math.Float64bits(phiC) != math.Float64bits(phiR) {
				t.Fatalf("objectives diverged: %v vs %v", phiC, phiR)
			}
			if coreStats(stC) != coreStats(stR) {
				t.Fatalf("stats diverged:\n cached  %+v\n rebuild %+v", coreStats(stC), coreStats(stR))
			}
		})
	}
}

// TestOrchestratorChaosStorm is the concurrency storm for the fault engine:
// a pipelined regional fleet with six workers overlapping arrivals and
// departures while agent failures, regional outages, degradations and flash
// crowds land as drain barriers between them. Chunked execution runs the
// full invariant checker repeatedly mid-flight; CI runs this under -race.
func TestOrchestratorChaosStorm(t *testing.T) {
	fc := chaosFleet(53)
	fc.NumAgents = 24
	fc.NumUsers = 90
	ev, boot, homes := chaosStack(t, fc)
	events := chaosSchedule(t, 53, fc, homes, 300, 0.4)

	cfg := DefaultConfig(53)
	cfg.Shards = 8
	cfg.LedgerShards = fc.NumAgents
	cfg.HopBudget = 12
	cfg.MaxReoptSessions = 8
	cfg.Core.NeighborWindow = 6
	cfg.Pipeline = true
	cfg.MaxInFlight = 6
	cfg.AgentRegion = workload.AgentRegions(fc.NumAgents, fc.Regions)
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	const chunk = 40
	for i := 0; i < len(events); i += chunk {
		end := i + chunk
		if end > len(events) {
			end = len(events)
		}
		if _, err := o.Run(events[i:end], 0); err != nil {
			t.Fatalf("chunk [%d,%d): %v", i, end, err)
		}
		if err := o.CheckInvariants(); err != nil {
			t.Fatalf("after chunk [%d,%d): %v", i, end, err)
		}
	}
	st := o.Stats()
	if st.Events != len(events) {
		t.Fatalf("processed %d events, want %d", st.Events, len(events))
	}
	if st.Incidents == 0 || st.Orphans == 0 || st.Commits == 0 {
		t.Fatalf("storm exercised no healing or commits: %+v", st)
	}
	t.Logf("chaos storm: %d events, %d incidents, %d orphans (%d evacuated), %d commits, %d conflicts, in-flight peak %d",
		st.Events, st.Incidents, st.Orphans, st.Evacuated, st.Commits, st.Conflicts, st.InFlightPeak)
}
