package orchestrator

import (
	"math"
	"testing"

	"vconf/internal/agrank"
	"vconf/internal/assign"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/workload"
)

// runSchedule drives one fresh orchestrator over a schedule and returns the
// final assignment encoding, objective and stats.
func runSchedule(t *testing.T, wl workload.Config, events []workload.Event, cfg Config) (string, float64, Stats) {
	t.Helper()
	ev, boot := testStack(t, wl)
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := o.Run(events, 1e18); err != nil {
		t.Fatal(err)
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return o.Assignment().Encode(), o.Objective(), o.Stats()
}

// coreStats strips the wall-clock fields (and the scheduler telemetry
// derived from timing), which legitimately differ across runs.
func coreStats(s Stats) Stats {
	s.ReoptTotal = 0
	s.ReoptMax = 0
	s.ReoptP50 = 0
	s.ReoptP99 = 0
	s.RecoverP50 = 0
	s.RecoverP99 = 0
	s.AdmissionStalls = 0
	s.ReoptWaits = 0
	s.QueueDepthPeak = 0
	s.InFlightPeak = 0
	return s
}

// TestShardedBitIdenticalToSingleLock replays identical churn schedules
// through the legacy single-lock commit path (LedgerShards = -1) and the
// sharded pipeline at P = 1, with one worker so task order is fully
// deterministic even under finite capacities: final assignment, objective
// bits and every activity counter must match exactly.
func TestShardedBitIdenticalToSingleLock(t *testing.T) {
	cases := []struct {
		name   string
		window int
		wl     func() workload.Config
	}{
		{"unconstrained", 0, func() workload.Config { return workload.Prototype(11) }},
		{"constrained", 0, func() workload.Config {
			wl := workload.Prototype(12)
			wl.MeanBandwidthMbps = 220
			wl.MeanTranscodeSlots = 6
			return wl
		}},
		// With a candidate window the sharded path takes route-restricted
		// snapshots (only the shards the walk can read); the single-lock
		// path clones the full ledger. Results must still match bit for
		// bit.
		{"windowed-partial-snapshots", 3, func() workload.Config { return workload.Prototype(14) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ev, _ := testStack(t, tc.wl())
			events := churn(t, ev, 13, 300, 0.1, 90)

			legacy := DefaultConfig(13)
			legacy.Shards = 1
			legacy.LedgerShards = -1
			legacy.Core.NeighborWindow = tc.window
			encL, phiL, stL := runSchedule(t, tc.wl(), events, legacy)

			sharded := DefaultConfig(13)
			sharded.Shards = 1
			sharded.LedgerShards = 1
			sharded.Core.NeighborWindow = tc.window
			encS, phiS, stS := runSchedule(t, tc.wl(), events, sharded)

			if encL != encS {
				t.Fatal("single-lock and P=1 sharded paths diverged in the final assignment")
			}
			if math.Float64bits(phiL) != math.Float64bits(phiS) {
				t.Fatalf("objectives diverged: %v vs %v", phiL, phiS)
			}
			if coreStats(stL) != coreStats(stS) {
				t.Fatalf("stats diverged:\n single-lock %+v\n sharded     %+v", coreStats(stL), coreStats(stS))
			}
			if stS.Conflicts != 0 {
				t.Fatalf("one worker cannot race itself, got %d conflicts", stS.Conflicts)
			}
		})
	}
}

// TestShardedShardCountInvariant pins that on capacity-unconstrained
// workloads (where commit validation never depends on interleaving) the
// final state is independent of both the ledger shard count and the worker
// count, and identical to the single-lock path.
func TestShardedShardCountInvariant(t *testing.T) {
	wl := func() workload.Config { return workload.Prototype(21) }
	ev, _ := testStack(t, wl())
	events := churn(t, ev, 21, 250, 0.1, 90)

	legacy := DefaultConfig(21)
	legacy.Shards = 4
	legacy.LedgerShards = -1
	encWant, phiWant, stWant := runSchedule(t, wl(), events, legacy)

	for _, shards := range []int{1, 2, 6} {
		cfg := DefaultConfig(21)
		cfg.Shards = 4
		cfg.LedgerShards = shards
		enc, phi, st := runSchedule(t, wl(), events, cfg)
		if enc != encWant {
			t.Fatalf("ledger shards=%d diverged from the single-lock assignment", shards)
		}
		if math.Float64bits(phi) != math.Float64bits(phiWant) {
			t.Fatalf("ledger shards=%d objective %v, want %v", shards, phi, phiWant)
		}
		if got, want := coreStats(st), coreStats(stWant); got.Commits != want.Commits ||
			got.Rejects != want.Rejects || got.NoChange != want.NoChange ||
			got.Dropped != want.Dropped || got.Migrations != want.Migrations {
			t.Fatalf("ledger shards=%d stats %+v, want %+v", shards, got, want)
		}
	}
}

// TestOrchestratorRegionalConflictStorm is the end-to-end concurrency
// storm: ≥8 workers re-optimizing against a finite-capacity regional fleet
// whose clustered sessions overlap heavily on hot regions (same-shard
// conflicts) while spanning many ID ranges (cross-shard commits). The full
// invariant checker — capacity, completeness, delay, and exact ledger
// reconciliation against the live assignment — runs after every event.
func TestOrchestratorRegionalConflictStorm(t *testing.T) {
	fc := workload.DefaultFleetConfig(31)
	fc.NumAgents = 24
	fc.NumUsers = 90
	fc.Regions = 4
	fc.AgentBandwidthMbps = 260
	fc.AgentTranscodeSlots = 10
	sc, err := workload.GenerateSyntheticFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	opts := agrank.DefaultOptions(3)
	boot := func(a *assign.Assignment, s model.SessionID, ledger cost.LedgerAPI) error {
		_, err := agrank.BootstrapSession(a, s, p, ledger, opts)
		return err
	}
	events := []workload.Event{}
	evs, err := workload.PoissonSchedule(workload.ChurnConfig{
		Seed: 31, HorizonS: 300, ArrivalRatePerS: 0.3, MeanHoldS: 80,
		NumSessions: sc.NumSessions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	events = append(events, evs...)

	cfg := DefaultConfig(31)
	cfg.Shards = 8
	cfg.LedgerShards = 6
	cfg.HopBudget = 12
	cfg.MaxReoptSessions = 12
	// Candidate windows switch workers onto route-restricted snapshots, so
	// the storm also exercises partial-snapshot commits under -race.
	cfg.Core.NeighborWindow = 6
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	for _, e := range events {
		if _, err := o.HandleEvent(e); err != nil {
			t.Fatalf("event %+v: %v", e, err)
		}
		if err := o.CheckInvariants(); err != nil {
			t.Fatalf("after event %+v: %v", e, err)
		}
	}
	st := o.Stats()
	if st.Tasks == 0 || st.Commits == 0 {
		t.Fatalf("storm did no re-optimization work: %+v", st)
	}
	t.Logf("storm: %d events, %d tasks, %d commits, %d conflicts, %d rejects, %d drops",
		st.Events, st.Tasks, st.Commits, st.Conflicts, st.Rejects, st.Dropped)
}
