package orchestrator

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"vconf/internal/assign"
	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/shard"
	"vconf/internal/telemetry"
)

// reoptTask is one unit of shard-pool work: re-optimize one session's
// variables by a bounded Markov refinement walk. tally, when non-nil
// (pipelined mode), attributes the task's outcome to its event so per-event
// reports stay exact while events overlap.
type reoptTask struct {
	session model.SessionID
	seed    int64
	wg      *sync.WaitGroup
	tally   *eventTally
	// parent is the causal span of the event (or heal) that scheduled this
	// task; the finished task's attribution spans nest under it (zero when
	// telemetry is off).
	parent telemetry.Span
}

// eventTally accumulates one event's task outcomes; its fields are guarded
// by o.mu alongside the global stats counters. The pipelined path always
// attaches one (per-event reports stay exact while events overlap); the
// serial path attaches one only when telemetry is enabled, to feed the
// decision record. chosenAgent must be initialized to -1.
type eventTally struct {
	commits, rejects, noChange, conflicts int
	// Per-task telemetry, merged at task finish (telemetry enabled only):
	// phase durations, delay-cache outcome deltas, and the counterfactual-k
	// reading of the event's first committed proposal.
	snapshotNs, walkNs, commitNs int64
	cacheWarm, cacheCold         int
	chosenAgent                  int
	cfGap                        float64
	cfValid                      bool
	// delayMS is the trigger session's post-decision mean-of-max delay
	// (admitted arrivals only; see Orchestrator.observeDelay).
	delayMS float64
}

// bumpTask increments a global outcome counter and, for pipelined events,
// the matching per-event tally slot, under the state lock.
func (o *Orchestrator) bumpTask(global, local *int) {
	o.mu.Lock()
	*global++
	if local != nil {
		*local++
	}
	o.mu.Unlock()
}

func (t reoptTask) noChangeSlot() *int {
	if t.tally == nil {
		return nil
	}
	return &t.tally.noChange
}

func (t reoptTask) rejectSlot() *int {
	if t.tally == nil {
		return nil
	}
	return &t.tally.rejects
}

func (t reoptTask) conflictSlot() *int {
	if t.tally == nil {
		return nil
	}
	return &t.tally.conflicts
}

// telOutcome mirrors one task outcome into the telemetry sink's
// per-(class,region) sharded counters (no-op when telemetry is off).
func (o *Orchestrator) telOutcome(worker int, s model.SessionID, oc telemetry.TaskOutcome) {
	if o.tel == nil {
		return
	}
	o.tel.TaskOutcome(worker, o.tel.RegionOf(int(s)), o.tel.ClassOf(int(s)), oc)
}

// telConflict mirrors one lost commit race into the telemetry sink.
func (o *Orchestrator) telConflict(worker int, s model.SessionID) {
	if o.tel == nil {
		return
	}
	o.tel.TaskConflict(worker, o.tel.RegionOf(int(s)), o.tel.ClassOf(int(s)))
}

// taskSeed derives a deterministic per-task RNG seed, so a task's walk
// depends only on (config seed, session, event index) — never on which
// worker goroutine happens to pick it up.
func taskSeed(seed int64, s model.SessionID, eventIdx int) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(s)*0xbf58476d1ce4e5b9 + uint64(eventIdx)*0x94d049bb133111eb
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	return int64(z >> 1)
}

// dispatch hands the session set to the worker pool and blocks until every
// task has been refined and merged (the per-event barrier), returning the
// wall-clock latency — the orchestrator's headline responsiveness metric.
//
// The barrier is also what makes the lock-free parts of the sharded commit
// pipeline sound: within one dispatch the event loop is parked and every
// session appears in at most one task, so a task is the only goroutine
// reading or writing its session's variables in the live assignment.
func (o *Orchestrator) dispatch(sessions []model.SessionID, tally *eventTally, parent telemetry.Span) time.Duration {
	start := time.Now()
	var wg sync.WaitGroup
	for _, s := range sessions {
		wg.Add(1)
		o.tasks <- reoptTask{session: s, seed: taskSeed(o.cfg.Core.Seed, s, o.eventIdx), wg: &wg, tally: tally, parent: parent}
	}
	wg.Wait()
	o.mu.Lock()
	o.stats.Tasks += len(sessions)
	o.mu.Unlock()
	return time.Since(start)
}

// workerState is one worker's private buffers: the hop scratch, a dense
// snapshot ledger with its epoch stamps and commit route (sharded mode),
// a private assignment the refinement walk mutates, and the proposal
// buffers. Everything is reused across tasks, so steady-state refinement
// allocates nothing beyond the per-task RNG.
type workerState struct {
	id  int // counter-shard index into the telemetry sink
	scr *core.HopScratch
	// probe is the reused per-task instrumentation scratch (telemetry
	// enabled only), so enabling the sink adds no per-task allocation.
	probe taskProbe
	// Sharded-pipeline state (nil/unused in single-lock mode).
	snap      *cost.Ledger
	epochs    shard.Epochs
	route     shard.Route
	snapRoute shard.Route
	agents    []model.AgentID
	aw        *assign.Assignment
	cur       *cost.SparseLoad
	userTo    []model.AgentID
	flowTo    []model.AgentID
	ds        []assign.Decision
}

// taskProbe carries one task's in-flight instrumentation: the task's start
// time (anchoring its span), phase durations, and the delay-cache counter
// baseline captured at task start (the cache counters are cumulative per
// scratch, so the task's contribution is the difference).
type taskProbe struct {
	start                               time.Time
	snapshotNs, walkNs, commitNs        int64
	commitStart                         time.Time
	baseHits, basePatches, baseRebuilds int64
}

// flushCommit closes an open commit-phase interval.
func (p *taskProbe) flushCommit() {
	if !p.commitStart.IsZero() {
		p.commitNs += time.Since(p.commitStart).Nanoseconds()
		p.commitStart = time.Time{}
	}
}

// beginTaskProbe resets the worker's probe and captures the delay-cache
// baseline. Caller must have checked o.tel != nil.
func (o *Orchestrator) beginTaskProbe(w *workerState) *taskProbe {
	w.probe = taskProbe{start: time.Now()}
	if dc := w.scr.Eval().DelayCacheStats(); dc != nil {
		w.probe.baseHits = int64(dc.Hits())
		w.probe.basePatches = int64(dc.Patches())
		w.probe.baseRebuilds = int64(dc.Rebuilds())
	}
	return &w.probe
}

// finishTaskProbe publishes one task's probe: phase counters and cache
// deltas to the sink (worker-sharded, lock-free), the probe's timers
// promoted into a task span with snapshot/walk/commit attribution children
// on the worker's trace lane, and — when the task carries an event tally —
// the same readings into the event's record fields under o.mu.
func (o *Orchestrator) finishTaskProbe(t reoptTask, w *workerState, probe *taskProbe) {
	probe.flushCommit()
	var hits, patches, rebuilds int64
	if dc := w.scr.Eval().DelayCacheStats(); dc != nil {
		hits = int64(dc.Hits()) - probe.baseHits
		patches = int64(dc.Patches()) - probe.basePatches
		rebuilds = int64(dc.Rebuilds()) - probe.baseRebuilds
	}
	o.tel.TaskPhases(w.id, probe.snapshotNs, probe.walkNs, probe.commitNs)
	o.tel.CacheEvals(w.id, hits, patches, rebuilds)
	// Promote the finished timers into spans: the task span covers the full
	// wall interval on the worker's lane (workers run tasks serially, so
	// lanes never self-overlap); the phase children are laid contiguously
	// from the start — attribution, not a literal timeline, since retries
	// interleave the phases (their sum never exceeds the task wall time).
	lane := taskLaneBase + int32(w.id)
	task := o.tel.EmitSpan("task", "task", t.parent, lane, probe.start, time.Since(probe.start).Nanoseconds(), int64(t.session))
	at := probe.start
	for _, ph := range [...]struct {
		name string
		ns   int64
	}{{"snapshot", probe.snapshotNs}, {"walk", probe.walkNs}, {"commit", probe.commitNs}} {
		if ph.ns <= 0 {
			continue
		}
		o.tel.EmitSpan(ph.name, "task", task, lane, at, ph.ns, int64(t.session))
		at = at.Add(time.Duration(ph.ns))
	}
	if t.tally != nil {
		o.mu.Lock()
		t.tally.snapshotNs += probe.snapshotNs
		t.tally.walkNs += probe.walkNs
		t.tally.commitNs += probe.commitNs
		t.tally.cacheWarm += int(hits + patches)
		t.tally.cacheCold += int(rebuilds)
		o.mu.Unlock()
	}
}

// worker is one solver shard: it refines tasks until the pool closes. id is
// the worker's counter-shard index in the telemetry sink.
func (o *Orchestrator) worker(id int) {
	w := &workerState{id: id, scr: core.NewHopScratch(o.ev)}
	// The worker's scratch carries a private per-session delay cache that
	// stays warm across the hops of one refinement walk (and across tasks,
	// when the session's variables did not change in between). Entries
	// self-validate against the session's decision variables, so commits by
	// sibling workers and the event loop's arrivals/departures — all of
	// which rewrite those variables — are picked up as signature mismatches
	// on the next evaluation; stale state is never reused (see
	// cost.DelayCache's staleness contract).
	w.scr.Eval().SetDelayCacheEnabled(!o.cfg.Core.RebuildDelayBase)
	if o.shl != nil {
		w.snap = cost.NewLedger(o.sc)
		w.epochs = make(shard.Epochs, 0, o.shl.NumShards())
		w.aw = assign.New(o.sc)
		w.cur = cost.NewSparseLoad(o.sc.NumAgents())
	}
	for t := range o.tasks {
		if o.shl != nil {
			o.refineSharded(t, w)
		} else {
			o.refineSingleLock(t, w)
		}
		t.wg.Done()
	}
}

// ---------------------------------------------------------------------------
// Sharded commit pipeline

// refineSharded runs one re-optimization task against the lock-striped
// ledger: snapshot the capacity state shard by shard (epoch-stamped), walk
// the Markov refinement on worker-private state, and commit the best-seen
// proposal through shard.Ledger.CommitDelta — locking only the shards the
// proposal touches, so commits with disjoint routes proceed fully in
// parallel. A bounded retry loop re-snapshots and re-walks when a commit
// loses a cross-shard race (shard.Conflict).
//
// No lock guards the live assignment accesses here: the dispatch barrier
// guarantees this task is the sole owner of its session's variables (see
// dispatch), and o.mu is taken only for the brief stats/cache/runtime
// update after a successful capacity commit.
func (o *Orchestrator) refineSharded(t reoptTask, w *workerState) {
	if !o.cache.Active(t.session) {
		return
	}
	rng := rand.New(rand.NewSource(t.seed))
	users := o.sc.Session(t.session).Users
	flows := o.a.SessionFlowsShared(t.session)
	w.userTo = growAgents(w.userTo, len(users))
	w.flowTo = growAgents(w.flowTo, len(flows))

	// Instrumentation (telemetry enabled only): the probe times the
	// snapshot/walk/commit phases and diffs the delay-cache counters;
	// bestAgent/bestGap remember the decisive hop's target and its
	// counterfactual-k gap (Φ runner-up − Φ chosen), read off the hop
	// result the loop already computes.
	var probe *taskProbe
	var t0 time.Time
	bestAgent, bestGap := -1, math.Inf(1)
	if o.tel != nil {
		probe = o.beginTaskProbe(w)
		defer o.finishTaskProbe(t, w, probe)
	}

	for attempt := 0; ; attempt++ {
		if probe != nil {
			probe.flushCommit()
			t0 = time.Now()
		}
		// Epoch-stamped capacity snapshot plus a private copy of the
		// session's decision variables: everything the walk reads. With a
		// candidate window configured, the walk can only read the session's
		// current agents plus the members' window agents, so only the
		// shards covering that set are copied — O(session·window) instead
		// of O(fleet) per task.
		if o.nbrIdx != nil {
			w.agents = w.agents[:0]
			for _, u := range users {
				if l := o.a.UserAgent(u); l >= 0 {
					w.agents = append(w.agents, l)
				}
				w.agents = append(w.agents, o.nbrIdx.UserWindow(u)...)
			}
			for _, f := range flows {
				if l, _ := o.a.FlowAgent(f); l >= 0 {
					w.agents = append(w.agents, l)
				}
			}
			o.shl.ResetRoute(&w.snapRoute)
			o.shl.RouteAgents(&w.snapRoute, w.agents)
			w.epochs = o.shl.SnapshotRoute(w.snap, w.epochs, &w.snapRoute)
		} else {
			w.epochs = o.shl.SnapshotInto(w.snap, w.epochs[:0])
		}
		for _, u := range users {
			w.aw.SetUserAgent(u, o.a.UserAgent(u))
		}
		for _, f := range flows {
			l, _ := o.a.FlowAgent(f)
			if err := w.aw.SetFlowAgent(f, l); err != nil {
				o.reportErr(err)
				return
			}
		}

		if probe != nil {
			now := time.Now()
			probe.snapshotNs += now.Sub(t0).Nanoseconds()
			t0 = now
		}
		es := w.scr.Eval()
		startPhi := o.ev.BeginSession(w.aw, t.session, es).Phi
		w.cur.CopyFrom(es.CurLoad())

		// Bounded refinement from the warm start, remembering the best
		// session-local objective seen: the chain may pass through worse
		// states (that is what lets it escape local minima).
		bestPhi := startPhi
		improved := false
		for i, u := range users {
			w.userTo[i] = w.aw.UserAgent(u)
		}
		for i, f := range flows {
			w.flowTo[i], _ = w.aw.FlowAgent(f)
		}
		for i := 0; i < o.cfg.HopBudget; i++ {
			res, err := core.HopSessionWith(w.aw, t.session, o.ev, w.snap, o.cfg.Core, rng, w.scr)
			if err != nil {
				o.reportErr(err)
				return
			}
			if !res.Moved {
				break // no feasible neighbor: the walk is stuck
			}
			if res.PhiAfter < bestPhi-o.cfg.ImprovementEps {
				bestPhi = res.PhiAfter
				for i, u := range users {
					w.userTo[i] = w.aw.UserAgent(u)
				}
				for i, f := range flows {
					w.flowTo[i], _ = w.aw.FlowAgent(f)
				}
				improved = true
				if probe != nil {
					bestAgent = int(res.Decision.To)
					bestGap = res.PhiSecond - res.PhiAfter
				}
			}
		}
		if probe != nil {
			now := time.Now()
			probe.walkNs += now.Sub(t0).Nanoseconds()
			probe.commitStart = now
		}
		if !improved {
			o.bumpTask(&o.stats.NoChange, t.noChangeSlot())
			o.telOutcome(w.id, t.session, telemetry.OutcomeNoChange)
			return
		}

		// Rewind the private assignment to the best-seen state and derive
		// the net decisions against the live state.
		for i, u := range users {
			w.aw.SetUserAgent(u, w.userTo[i])
		}
		for i, f := range flows {
			if err := w.aw.SetFlowAgent(f, w.flowTo[i]); err != nil {
				o.reportErr(err)
				return
			}
		}
		w.ds = w.ds[:0]
		for i, u := range users {
			if o.a.UserAgent(u) != w.userTo[i] {
				w.ds = append(w.ds, assign.Decision{Kind: assign.UserMove, User: u, To: w.userTo[i]})
			}
		}
		for i, f := range flows {
			if cur, _ := o.a.FlowAgent(f); cur != w.flowTo[i] {
				w.ds = append(w.ds, assign.Decision{Kind: assign.FlowMove, Flow: f, To: w.flowTo[i]})
			}
		}
		if len(w.ds) == 0 {
			o.bumpTask(&o.stats.NoChange, t.noChangeSlot())
			o.telOutcome(w.id, t.session, telemetry.OutcomeNoChange)
			return
		}

		// Re-evaluate the proposed state through the sparse pipeline and
		// re-check improvement and the delay cap — the same guards the
		// single-lock commit path applies.
		newEval := o.ev.BeginSession(w.aw, t.session, es)
		newLoad := es.CurLoad()
		if newEval.Phi >= startPhi-o.cfg.ImprovementEps {
			o.bumpTask(&o.stats.NoChange, t.noChangeSlot())
			o.telOutcome(w.id, t.session, telemetry.OutcomeNoChange)
			return
		}
		if !newEval.DelayFeasible(o.sc.DMaxMS) {
			o.bumpTask(&o.stats.Rejects, t.rejectSlot())
			o.telOutcome(w.id, t.session, telemetry.OutcomeReject)
			return
		}

		// Capacity is the only state other sessions contend on: route,
		// lock, re-validate and apply atomically in the shard pipeline.
		switch o.shl.CommitDelta(newLoad, w.cur, w.epochs, &w.route) {
		case shard.Committed:
			for _, d := range w.ds {
				if _, err := o.a.Apply(d); err != nil {
					o.reportErr(err)
					return
				}
			}
			// Pipelined mode keeps the touched-set index and the objective
			// cache current from the committing worker's own evaluation, so
			// no later admission or retire ever recomputes this session from
			// the shared assignment while another event may own it. The
			// agent extraction runs on worker-private state before taking mu.
			var idxAgents []model.AgentID
			if o.pipe != nil {
				idxAgents = newLoad.AppendAgents(nil)
			}
			o.mu.Lock()
			if o.pipe != nil {
				o.cache.Prime(t.session, newEval.Phi, newLoad)
				o.touchIdx[t.session] = idxAgents
			} else {
				o.cache.Invalidate(t.session)
			}
			o.stats.Commits++
			if t.tally != nil {
				t.tally.commits++
				// Counterfactual-k: keep the event's first committed
				// proposal's decisive hop (probe != nil paths only; the
				// tally fields stay zeroed otherwise).
				if t.tally.chosenAgent < 0 && bestAgent >= 0 {
					t.tally.chosenAgent = bestAgent
					if !math.IsInf(bestGap, 1) {
						t.tally.cfGap = bestGap
						t.tally.cfValid = true
					}
				}
			}
			if o.rt != nil {
				for _, d := range w.ds {
					if err := o.rt.Migrate(o.now, d); err != nil {
						o.refErr = err
						o.mu.Unlock()
						return
					}
				}
				o.stats.Migrations += len(w.ds)
			}
			o.mu.Unlock()
			o.telOutcome(w.id, t.session, telemetry.OutcomeCommit)
			return
		case shard.Conflict:
			// A sibling commit changed a routed shard after our snapshot:
			// the walk ran on stale residual capacities. Retry bounded.
			o.bumpTask(&o.stats.Conflicts, t.conflictSlot())
			o.telConflict(w.id, t.session)
			if attempt < o.cfg.CommitRetries {
				continue
			}
			o.bumpTask(&o.stats.Rejects, t.rejectSlot())
			o.telOutcome(w.id, t.session, telemetry.OutcomeReject)
			return
		default: // shard.Infeasible
			o.bumpTask(&o.stats.Rejects, t.rejectSlot())
			o.telOutcome(w.id, t.session, telemetry.OutcomeReject)
			return
		}
	}
}

// growAgents resizes a reused agent-ID buffer to n entries.
func growAgents(buf []model.AgentID, n int) []model.AgentID {
	if cap(buf) < n {
		return make([]model.AgentID, n)
	}
	return buf[:n]
}

// ---------------------------------------------------------------------------
// Single-lock reference pipeline (Config.LedgerShards < 0)
//
// The pre-sharding commit path, kept verbatim: snapshot and commit both
// serialize on o.mu, proposals validate against the dense ledger while
// holding it. The P=1 sharded pipeline is bit-identical to this path (the
// differential tests replay identical schedules through both); it remains
// the before/after baseline for the shard-count benchmarks.

// proposal is the outcome of one refinement walk: the session's best-seen
// variable values and their (exact, session-local) objective.
type proposal struct {
	session model.SessionID
	users   []model.UserID
	flows   []model.Flow
	// userTo/flowTo are the proposed agents, aligned with users/flows.
	userTo []model.AgentID
	flowTo []model.AgentID
	phi    float64
	// cfAgent/cfGap/cfValid carry the decisive hop's counterfactual-k
	// reading (telemetry enabled only; cfAgent is -1 otherwise).
	cfAgent int
	cfGap   float64
	cfValid bool
}

// refineSingleLock snapshots the live state under the commit lock, runs a
// bounded warm-started Markov walk on the snapshot, and merges the best
// state found.
func (o *Orchestrator) refineSingleLock(t reoptTask, w *workerState) {
	scr := w.scr
	var probe *taskProbe
	var t0 time.Time
	if o.tel != nil {
		probe = o.beginTaskProbe(w)
		defer o.finishTaskProbe(t, w, probe)
		t0 = time.Now()
	}
	// Snapshot under the commit lock: clone the assignment and ledger so
	// the walk runs without blocking other workers or the event loop.
	o.mu.Lock()
	if !o.cache.Active(t.session) {
		o.mu.Unlock()
		return
	}
	a := o.a.Clone()
	ledger := o.dense.Clone()
	startPhi := o.cache.SessionObjective(o.a, t.session)
	o.mu.Unlock()
	if probe != nil {
		now := time.Now()
		probe.snapshotNs += now.Sub(t0).Nanoseconds()
		t0 = now
	}

	users := o.sc.Session(t.session).Users
	flows := a.SessionFlows(t.session)
	prop := proposal{
		session: t.session,
		users:   users,
		flows:   flows,
		userTo:  make([]model.AgentID, len(users)),
		flowTo:  make([]model.AgentID, len(flows)),
		phi:     startPhi,
		cfAgent: -1,
	}
	capture := func() {
		for i, u := range users {
			prop.userTo[i] = a.UserAgent(u)
		}
		for i, f := range flows {
			prop.flowTo[i], _ = a.FlowAgent(f)
		}
	}
	capture()

	// Bounded refinement: walk the chain from the warm start, remembering
	// the best session-local objective seen.
	rng := rand.New(rand.NewSource(t.seed))
	improved := false
	for i := 0; i < o.cfg.HopBudget; i++ {
		res, err := core.HopSessionWith(a, t.session, o.ev, ledger, o.cfg.Core, rng, scr)
		if err != nil {
			o.reportErr(err)
			return
		}
		if !res.Moved {
			break // no feasible neighbor: the walk is stuck
		}
		if res.PhiAfter < prop.phi-o.cfg.ImprovementEps {
			prop.phi = res.PhiAfter
			capture()
			improved = true
			if probe != nil {
				prop.cfAgent = int(res.Decision.To)
				if !math.IsInf(res.PhiSecond, 1) {
					prop.cfGap = res.PhiSecond - res.PhiAfter
					prop.cfValid = true
				} else {
					prop.cfGap, prop.cfValid = 0, false
				}
			}
		}
	}
	if probe != nil {
		now := time.Now()
		probe.walkNs += now.Sub(t0).Nanoseconds()
		probe.commitStart = now
	}
	if !improved {
		o.bumpTask(&o.stats.NoChange, t.noChangeSlot())
		o.telOutcome(w.id, t.session, telemetry.OutcomeNoChange)
		return
	}
	o.commitSingleLock(t, w.id, prop)
}

// commitSingleLock merges a proposal under the commit lock with optimistic
// validation: the session must still be active, the net decisions must
// still fit capacity and the delay cap against the *current* ledger, and
// the objective must still strictly improve. Accepted decisions are
// mirrored to the data plane as dual-feed migrations.
func (o *Orchestrator) commitSingleLock(t reoptTask, wid int, p proposal) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.cache.Active(p.session) {
		o.stats.Rejects++ // departed while refining
		if t.tally != nil {
			t.tally.rejects++
		}
		o.telOutcome(wid, p.session, telemetry.OutcomeReject)
		return
	}
	curPhi := o.cache.SessionObjective(o.a, p.session)
	if p.phi >= curPhi-o.cfg.ImprovementEps {
		o.stats.NoChange++
		if t.tally != nil {
			t.tally.noChange++
		}
		o.telOutcome(wid, p.session, telemetry.OutcomeNoChange)
		return
	}

	// Net decisions: one per variable that differs from the live state.
	var ds []assign.Decision
	for i, u := range p.users {
		if o.a.UserAgent(u) != p.userTo[i] {
			ds = append(ds, assign.Decision{Kind: assign.UserMove, User: u, To: p.userTo[i]})
		}
	}
	for i, f := range p.flows {
		if cur, _ := o.a.FlowAgent(f); cur != p.flowTo[i] {
			ds = append(ds, assign.Decision{Kind: assign.FlowMove, Flow: f, To: p.flowTo[i]})
		}
	}
	if len(ds) == 0 {
		o.stats.NoChange++
		if t.tally != nil {
			t.tally.noChange++
		}
		o.telOutcome(wid, p.session, telemetry.OutcomeNoChange)
		return
	}

	curLoad := o.cache.SessionLoad(o.a, p.session)
	o.dense.RemoveSparse(curLoad)
	invs := make([]assign.Decision, 0, len(ds))
	rollback := func() {
		for i := len(invs) - 1; i >= 0; i-- {
			o.a.Apply(invs[i])
		}
		o.dense.AddSparse(curLoad)
		o.stats.Rejects++
		if t.tally != nil {
			t.tally.rejects++
		}
		o.telOutcome(wid, p.session, telemetry.OutcomeReject)
	}
	for _, d := range ds {
		inv, err := o.a.Apply(d)
		if err != nil {
			rollback()
			o.refErr = err
			return
		}
		invs = append(invs, inv)
	}
	// Re-evaluate the proposed state through the commit scratch: sparse
	// load, delta capacity check, and Φ with delay feasibility in one pass.
	newEval := o.ev.BeginSession(o.a, p.session, o.scr)
	newLoad := o.scr.CurLoad()
	if !o.dense.FitsRepairDelta(newLoad, curLoad) ||
		!newEval.DelayFeasible(o.sc.DMaxMS) ||
		newEval.Phi >= curPhi-o.cfg.ImprovementEps {
		rollback()
		return
	}
	o.dense.AddSparse(newLoad)
	o.cache.Invalidate(p.session)
	o.stats.Commits++
	if t.tally != nil {
		t.tally.commits++
		if t.tally.chosenAgent < 0 && p.cfAgent >= 0 {
			t.tally.chosenAgent = p.cfAgent
			if p.cfValid {
				t.tally.cfGap = p.cfGap
				t.tally.cfValid = true
			}
		}
	}
	o.telOutcome(wid, p.session, telemetry.OutcomeCommit)
	if o.rt != nil {
		for _, d := range ds {
			if err := o.rt.Migrate(o.now, d); err != nil {
				o.refErr = err
				return
			}
		}
		o.stats.Migrations += len(ds)
	}
}

func (o *Orchestrator) reportErr(err error) {
	o.mu.Lock()
	if o.refErr == nil {
		o.refErr = err
	}
	o.mu.Unlock()
}
