package orchestrator

import (
	"math/rand"
	"sync"
	"time"

	"vconf/internal/assign"
	"vconf/internal/core"
	"vconf/internal/model"
)

// reoptTask is one unit of shard-pool work: re-optimize one session's
// variables by a bounded Markov refinement walk.
type reoptTask struct {
	session model.SessionID
	seed    int64
	wg      *sync.WaitGroup
}

// taskSeed derives a deterministic per-task RNG seed, so a task's walk
// depends only on (config seed, session, event index) — never on which
// worker goroutine happens to pick it up.
func taskSeed(seed int64, s model.SessionID, eventIdx int) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(s)*0xbf58476d1ce4e5b9 + uint64(eventIdx)*0x94d049bb133111eb
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	return int64(z >> 1)
}

// dispatch hands the session set to the shard pool and blocks until every
// task has been refined and merged (the per-event barrier), returning the
// wall-clock latency — the orchestrator's headline responsiveness metric.
func (o *Orchestrator) dispatch(sessions []model.SessionID) time.Duration {
	start := time.Now()
	var wg sync.WaitGroup
	for _, s := range sessions {
		wg.Add(1)
		o.tasks <- reoptTask{session: s, seed: taskSeed(o.cfg.Core.Seed, s, o.eventIdx), wg: &wg}
	}
	wg.Wait()
	o.mu.Lock()
	o.stats.Tasks += len(sessions)
	o.mu.Unlock()
	return time.Since(start)
}

// worker is one shard: it refines tasks until the pool closes. Each worker
// owns one hop scratch, so refinement walks run allocation-free on the
// sparse pipeline without sharing buffers across shards.
func (o *Orchestrator) worker() {
	scr := core.NewHopScratch(o.ev)
	for t := range o.tasks {
		o.refine(t, scr)
		t.wg.Done()
	}
}

// proposal is the outcome of one refinement walk: the session's best-seen
// variable values and their (exact, session-local) objective.
type proposal struct {
	session model.SessionID
	users   []model.UserID
	flows   []model.Flow
	// userTo/flowTo are the proposed agents, aligned with users/flows.
	userTo []model.AgentID
	flowTo []model.AgentID
	phi    float64
}

// refine snapshots the live state, runs a bounded warm-started Markov walk
// for the task's session on the snapshot, and merges the best state found.
func (o *Orchestrator) refine(t reoptTask, scr *core.HopScratch) {
	// Snapshot under the commit lock: clone the assignment and ledger so
	// the walk runs without blocking other shards or the event loop.
	o.mu.Lock()
	if !o.cache.Active(t.session) {
		o.mu.Unlock()
		return
	}
	a := o.a.Clone()
	ledger := o.ledger.Clone()
	startPhi := o.cache.SessionObjective(o.a, t.session)
	o.mu.Unlock()

	users := o.sc.Session(t.session).Users
	flows := a.SessionFlows(t.session)
	prop := proposal{
		session: t.session,
		users:   users,
		flows:   flows,
		userTo:  make([]model.AgentID, len(users)),
		flowTo:  make([]model.AgentID, len(flows)),
		phi:     startPhi,
	}
	capture := func() {
		for i, u := range users {
			prop.userTo[i] = a.UserAgent(u)
		}
		for i, f := range flows {
			prop.flowTo[i], _ = a.FlowAgent(f)
		}
	}
	capture()

	// Bounded refinement: walk the chain from the warm start, remembering
	// the best session-local objective seen. The chain may pass through
	// worse states (that is what lets it escape local minima); the best-seen
	// state is what gets proposed.
	rng := rand.New(rand.NewSource(t.seed))
	improved := false
	for i := 0; i < o.cfg.HopBudget; i++ {
		res, err := core.HopSessionWith(a, t.session, o.ev, ledger, o.cfg.Core, rng, scr)
		if err != nil {
			o.reportErr(err)
			return
		}
		if !res.Moved {
			break // no feasible neighbor: the walk is stuck
		}
		if res.PhiAfter < prop.phi-o.cfg.ImprovementEps {
			prop.phi = res.PhiAfter
			capture()
			improved = true
		}
	}
	if !improved {
		o.mu.Lock()
		o.stats.NoChange++
		o.mu.Unlock()
		return
	}
	o.commit(prop)
}

// commit merges a proposal under the commit lock with optimistic
// validation: the session must still be active, the net decisions must
// still fit capacity and the delay cap against the *current* ledger, and
// the objective must still strictly improve. Accepted decisions are
// mirrored to the data plane as dual-feed migrations.
func (o *Orchestrator) commit(p proposal) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.cache.Active(p.session) {
		o.stats.Rejects++ // departed while refining
		return
	}
	curPhi := o.cache.SessionObjective(o.a, p.session)
	if p.phi >= curPhi-o.cfg.ImprovementEps {
		o.stats.NoChange++
		return
	}

	// Net decisions: one per variable that differs from the live state.
	var ds []assign.Decision
	for i, u := range p.users {
		if o.a.UserAgent(u) != p.userTo[i] {
			ds = append(ds, assign.Decision{Kind: assign.UserMove, User: u, To: p.userTo[i]})
		}
	}
	for i, f := range p.flows {
		if cur, _ := o.a.FlowAgent(f); cur != p.flowTo[i] {
			ds = append(ds, assign.Decision{Kind: assign.FlowMove, Flow: f, To: p.flowTo[i]})
		}
	}
	if len(ds) == 0 {
		o.stats.NoChange++
		return
	}

	curLoad := o.cache.SessionLoad(o.a, p.session)
	o.ledger.RemoveSparse(curLoad)
	invs := make([]assign.Decision, 0, len(ds))
	rollback := func() {
		for i := len(invs) - 1; i >= 0; i-- {
			o.a.Apply(invs[i])
		}
		o.ledger.AddSparse(curLoad)
		o.stats.Rejects++
	}
	for _, d := range ds {
		inv, err := o.a.Apply(d)
		if err != nil {
			rollback()
			o.refErr = err
			return
		}
		invs = append(invs, inv)
	}
	// Re-evaluate the proposed state through the commit scratch: sparse
	// load, delta capacity check, and Φ with delay feasibility in one pass.
	newEval := o.ev.BeginSession(o.a, p.session, o.scr)
	newLoad := o.scr.CurLoad()
	if !o.ledger.FitsRepairDelta(newLoad, curLoad) ||
		!newEval.DelayFeasible(o.sc.DMaxMS) ||
		newEval.Phi >= curPhi-o.cfg.ImprovementEps {
		rollback()
		return
	}
	o.ledger.AddSparse(newLoad)
	o.cache.Invalidate(p.session)
	o.stats.Commits++
	if o.rt != nil {
		for _, d := range ds {
			if err := o.rt.Migrate(o.now, d); err != nil {
				o.refErr = err
				return
			}
		}
		o.stats.Migrations += len(ds)
	}
}

func (o *Orchestrator) reportErr(err error) {
	o.mu.Lock()
	if o.refErr == nil {
		o.refErr = err
	}
	o.mu.Unlock()
}
