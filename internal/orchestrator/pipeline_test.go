package orchestrator

import (
	"math"
	"testing"

	"vconf/internal/agrank"
	"vconf/internal/assign"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/workload"
)

// TestPipelinedBitIdenticalToSerial is the pipelined-vs-serial differential:
// identical churn schedules through the barrier path (Pipeline off) and the
// scheduler path at MaxInFlight = 1 must produce bit-identical assignments,
// objective bits and activity counters. With one in-flight event the
// scheduler degenerates to admit → re-optimize → retire in arrival order,
// task seeds depend only on (seed, session, event index), and the
// committed-agents index plus cache priming reproduce the serial touched-set
// and objective computations exactly — so any divergence is a real bug in
// the pipelined path.
func TestPipelinedBitIdenticalToSerial(t *testing.T) {
	cases := []struct {
		name   string
		window int
		slack  int
		wl     func() workload.Config
	}{
		{"unconstrained", 0, 0, func() workload.Config { return workload.Prototype(41) }},
		{"constrained", 0, 0, func() workload.Config {
			wl := workload.Prototype(42)
			wl.MeanBandwidthMbps = 220
			wl.MeanTranscodeSlots = 6
			return wl
		}},
		// Windowed: footprints are stripe-restricted and the sharded workers
		// take route-restricted snapshots.
		{"windowed", 3, 0, func() workload.Config { return workload.Prototype(43) }},
		// Slack widens the stripe footprints; at cap 1 it must change
		// nothing.
		{"windowed-slack", 3, 2, func() workload.Config { return workload.Prototype(44) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ev, _ := testStack(t, tc.wl())
			events := churn(t, ev, 45, 300, 0.1, 90)

			serial := DefaultConfig(45)
			serial.Shards = 1
			serial.LedgerShards = 1
			serial.Core.NeighborWindow = tc.window
			encS, phiS, stS := runSchedule(t, tc.wl(), events, serial)

			piped := DefaultConfig(45)
			piped.Shards = 1
			piped.LedgerShards = 1
			piped.Core.NeighborWindow = tc.window
			piped.Pipeline = true
			piped.MaxInFlight = 1
			piped.FootprintSlack = tc.slack
			encP, phiP, stP := runSchedule(t, tc.wl(), events, piped)

			if encS != encP {
				t.Fatal("serial and pipelined (max in-flight 1) assignments diverged")
			}
			if math.Float64bits(phiS) != math.Float64bits(phiP) {
				t.Fatalf("objectives diverged: %v vs %v", phiS, phiP)
			}
			if coreStats(stS) != coreStats(stP) {
				t.Fatalf("stats diverged:\n serial    %+v\n pipelined %+v", coreStats(stS), coreStats(stP))
			}
		})
	}
}

// TestPipelinedReportsMatchSerial pins the per-event report stream, not
// just the final state: event order, admission outcomes, re-optimization
// sets, per-event commit/reject/no-change tallies and objective bits must
// all match the serial path at MaxInFlight = 1.
func TestPipelinedReportsMatchSerial(t *testing.T) {
	wl := func() workload.Config {
		c := workload.Prototype(46)
		c.MeanBandwidthMbps = 260
		c.MeanTranscodeSlots = 8
		return c
	}
	ev, _ := testStack(t, wl())
	events := churn(t, ev, 47, 250, 0.12, 80)

	run := func(cfg Config) []EventReport {
		evv, boot := testStack(t, wl())
		o, err := New(evv, boot, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer o.Close()
		reps, err := o.Run(events, 1e18)
		if err != nil {
			t.Fatal(err)
		}
		return reps
	}
	serial := DefaultConfig(47)
	serial.Shards = 1
	serial.LedgerShards = 1
	repsS := run(serial)

	piped := serial
	piped.Pipeline = true
	piped.MaxInFlight = 1
	repsP := run(piped)

	if len(repsS) != len(repsP) {
		t.Fatalf("report counts diverged: %d vs %d", len(repsS), len(repsP))
	}
	for i := range repsS {
		s, p := repsS[i], repsP[i]
		if s.Event != p.Event || s.Admitted != p.Admitted || s.ActiveSessions != p.ActiveSessions {
			t.Fatalf("event %d diverged:\n serial    %+v\n pipelined %+v", i, s, p)
		}
		if s.Commits != p.Commits || s.Rejects != p.Rejects || s.NoChange != p.NoChange {
			t.Fatalf("event %d tallies diverged:\n serial    %+v\n pipelined %+v", i, s, p)
		}
		if len(s.Reopt) != len(p.Reopt) {
			t.Fatalf("event %d reopt sets diverged: %v vs %v", i, s.Reopt, p.Reopt)
		}
		for j := range s.Reopt {
			if s.Reopt[j] != p.Reopt[j] {
				t.Fatalf("event %d reopt sets diverged: %v vs %v", i, s.Reopt, p.Reopt)
			}
		}
		if math.Float64bits(s.Objective) != math.Float64bits(p.Objective) {
			t.Fatalf("event %d objective diverged: %v vs %v", i, s.Objective, p.Objective)
		}
	}
}

// TestPipelineStorm is the pipelined concurrency storm: overlapping events
// on a finite-capacity regional fleet whose clustered sessions share their
// home regions' agents, several events in flight, candidate windows ON so
// footprints actually admit in parallel. The schedule runs in chunks; after
// every chunk the orchestrator is drained and the full invariant checker —
// capacity, completeness, delay cap, and exact ledger-vs-assignment
// reconciliation — must pass. Run under -race in CI.
func TestPipelineStorm(t *testing.T) {
	fc := workload.DefaultFleetConfig(51)
	fc.NumAgents = 24
	fc.NumUsers = 90
	fc.Regions = 4
	fc.AgentBandwidthMbps = 260
	fc.AgentTranscodeSlots = 10
	sc, err := workload.GenerateSyntheticFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultParams()
	evv, err := cost.NewEvaluator(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	opts := agrank.DefaultOptions(3)
	boot := func(a *assign.Assignment, s model.SessionID, ledger cost.LedgerAPI) error {
		_, err := agrank.BootstrapSession(a, s, p, ledger, opts)
		return err
	}
	events, err := workload.PoissonSchedule(workload.ChurnConfig{
		Seed: 51, HorizonS: 300, ArrivalRatePerS: 0.3, MeanHoldS: 80,
		NumSessions: sc.NumSessions(),
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, slack := range []int{0, 1} {
		cfg := DefaultConfig(51)
		cfg.Shards = 8
		cfg.LedgerShards = fc.NumAgents // per-agent stripes: maximal footprint disjointness
		cfg.HopBudget = 12
		cfg.MaxReoptSessions = 8
		cfg.Core.NeighborWindow = 6
		cfg.Pipeline = true
		cfg.MaxInFlight = 6
		cfg.FootprintSlack = slack
		o, err := New(evv, boot, cfg)
		if err != nil {
			t.Fatal(err)
		}

		const chunk = 40
		for i := 0; i < len(events); i += chunk {
			end := i + chunk
			if end > len(events) {
				end = len(events)
			}
			if _, err := o.Run(events[i:end], 0); err != nil {
				t.Fatalf("slack %d chunk [%d,%d): %v", slack, i, end, err)
			}
			if err := o.CheckInvariants(); err != nil {
				t.Fatalf("slack %d after chunk [%d,%d): %v", slack, i, end, err)
			}
		}
		st := o.Stats()
		o.Close()
		if st.Events != len(events) {
			t.Fatalf("slack %d processed %d events, want %d", slack, st.Events, len(events))
		}
		if st.Tasks == 0 || st.Commits == 0 {
			t.Fatalf("slack %d storm did no re-optimization work: %+v", slack, st)
		}
		t.Logf("slack %d storm: %d events, %d tasks, %d commits, %d conflicts, %d rejects, "+
			"in-flight peak %d, queue peak %d, stalls %d, reopt waits %d, p50 %v, p99 %v",
			slack, st.Events, st.Tasks, st.Commits, st.Conflicts, st.Rejects,
			st.InFlightPeak, st.QueueDepthPeak, st.AdmissionStalls, st.ReoptWaits,
			st.ReoptP50, st.ReoptP99)
	}
}

// TestPipelineOverlapHappens asserts the scheduler actually overlaps events
// on a low-conflict workload (disjoint regional sessions, windows on): the
// in-flight high-water mark must exceed 1 and the latency percentiles must
// be populated.
func TestPipelineOverlapHappens(t *testing.T) {
	fc := workload.DefaultFleetConfig(52)
	fc.NumAgents = 32
	fc.NumUsers = 120
	fc.Regions = 8
	fc.CrossRegionFrac = -1 // explicit zero: purely intra-region sessions
	fc.AgentBandwidthMbps = 2000
	fc.AgentTranscodeSlots = 16
	sc, err := workload.GenerateSyntheticFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultParams()
	evv, err := cost.NewEvaluator(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	opts := agrank.DefaultOptions(3)
	boot := func(a *assign.Assignment, s model.SessionID, ledger cost.LedgerAPI) error {
		_, err := agrank.BootstrapSession(a, s, p, ledger, opts)
		return err
	}
	events, err := workload.PoissonSchedule(workload.ChurnConfig{
		Seed: 52, HorizonS: 400, ArrivalRatePerS: 0.5, MeanHoldS: 60,
		NumSessions: sc.NumSessions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(52)
	cfg.Shards = 4
	cfg.LedgerShards = fc.NumAgents
	cfg.HopBudget = 24
	cfg.Core.NeighborWindow = 4
	cfg.Pipeline = true
	cfg.MaxInFlight = 4
	o, err := New(evv, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := o.Run(events, 0); err != nil {
		t.Fatal(err)
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.InFlightPeak < 2 {
		t.Fatalf("pipelined run never overlapped events: %+v", st)
	}
	if st.ReoptP99 == 0 || st.ReoptP99 < st.ReoptP50 {
		t.Fatalf("latency percentiles unpopulated or inverted: p50 %v p99 %v", st.ReoptP50, st.ReoptP99)
	}
}

// TestPipelineConfigValidation pins the pipelined-mode config contract.
func TestPipelineConfigValidation(t *testing.T) {
	ev, boot := testStack(t, workload.Prototype(53))
	bad := DefaultConfig(53)
	bad.Pipeline = true
	bad.LedgerShards = -1
	if _, err := New(ev, boot, bad); err == nil {
		t.Fatal("pipelined mode over the single-lock backend accepted")
	}
	bad = DefaultConfig(53)
	bad.Pipeline = true
	bad.MaxInFlight = -1
	if _, err := New(ev, boot, bad); err == nil {
		t.Fatal("negative max in-flight accepted")
	}
	bad = DefaultConfig(53)
	bad.Pipeline = true
	bad.FootprintSlack = -2
	if _, err := New(ev, boot, bad); err == nil {
		t.Fatal("footprint slack below -1 accepted")
	}
	ok := DefaultConfig(53)
	ok.Pipeline = true
	ok.FootprintSlack = -1 // fully conservative stripe footprints
	o, err := New(ev, boot, ok)
	if err != nil {
		t.Fatal(err)
	}
	o.Close()
}

// TestPipelinedDropsAndSkips replays the admission edge cases through the
// scheduler: an infeasible arrival is dropped with clean state, and its
// echo departure is skipped — both producing empty footprints that never
// enter the conflict DAG.
func TestPipelinedDropsAndSkips(t *testing.T) {
	wl := workload.Prototype(54)
	wl.MeanBandwidthMbps = 30
	wl.MeanTranscodeSlots = 1
	ev, boot := testStack(t, wl)
	cfg := DefaultConfig(54)
	cfg.Shards = 2
	cfg.Pipeline = true
	cfg.MaxInFlight = 2
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	rep, err := o.HandleEvent(workload.Event{TimeS: 1, Kind: workload.EventArrival, Session: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted {
		t.Skipf("session 0 admitted under tight capacity; drop path covered elsewhere")
	}
	if st := o.Stats(); st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rep, err = o.HandleEvent(workload.Event{TimeS: 2, Kind: workload.EventDeparture, Session: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted {
		t.Fatal("skipped departure reported as live")
	}
	if st := o.Stats(); st.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", st.Skipped)
	}
	// Scheduler-level validation errors surface synchronously.
	if _, err := o.HandleEvent(workload.Event{TimeS: 3, Kind: workload.EventArrival, Session: -1}); err == nil {
		t.Fatal("negative session accepted")
	}
	if _, err := o.HandleEvent(workload.Event{TimeS: 3, Session: 0}); err == nil {
		t.Fatal("invalid event kind accepted")
	}
}

// TestPipelinedRecoversAfterAdmissionError pins error-recovery parity with
// the serial path: an admission error (double arrival) surfaces once, the
// orchestrator keeps processing subsequent events instead of staying
// wedged, the failed event releases its event index (task seeds stay
// aligned), and the post-recovery stream remains bit-identical to a serial
// run of the same event sequence.
func TestPipelinedRecoversAfterAdmissionError(t *testing.T) {
	ev, _ := testStack(t, workload.Prototype(55))
	tail := churn(t, ev, 56, 200, 0.1, 90)
	sequence := append([]workload.Event{
		{TimeS: 0.1, Kind: workload.EventArrival, Session: 0},
		{TimeS: 0.2, Kind: workload.EventArrival, Session: 0}, // duplicate: admission error
	}, tail...)

	run := func(pipelined bool) (string, float64, int) {
		evv, boot := testStack(t, workload.Prototype(55))
		cfg := DefaultConfig(55)
		cfg.Shards = 1
		cfg.LedgerShards = 1
		cfg.Pipeline = pipelined
		cfg.MaxInFlight = 1
		o, err := New(evv, boot, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer o.Close()
		errs := 0
		for _, e := range sequence {
			// Duplicates of an already-live session error and are skipped;
			// the stream continues either way — on both paths.
			if e.Kind == workload.EventArrival && o.cache.Active(model.SessionID(e.Session)) {
				if _, err := o.HandleEvent(e); err == nil {
					t.Fatal("double arrival accepted")
				}
				errs++
				continue
			}
			if _, err := o.HandleEvent(e); err != nil {
				t.Fatalf("pipelined=%v wedged after admission error: %v", pipelined, err)
			}
		}
		if err := o.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return o.Assignment().Encode(), o.Objective(), errs
	}
	encS, phiS, errsS := run(false)
	encP, phiP, errsP := run(true)
	if errsS == 0 || errsS != errsP {
		t.Fatalf("error counts diverged: serial %d, pipelined %d", errsS, errsP)
	}
	if encS != encP {
		t.Fatal("post-recovery assignments diverged between serial and pipelined paths")
	}
	if math.Float64bits(phiS) != math.Float64bits(phiP) {
		t.Fatalf("post-recovery objectives diverged: %v vs %v", phiS, phiP)
	}
}
