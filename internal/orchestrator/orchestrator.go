// Package orchestrator is the online control plane for session churn: it
// consumes arrival/departure event streams (internal/workload's Poisson
// schedules), maintains the live assignment, and re-optimizes incrementally
// instead of from scratch — the systems realization of the paper's §IV-A-4
// claim that the Markov-approximation chain is "robust to variations due to
// session dynamics".
//
// Architecture (event loop → shard pool → commit → migrate):
//
//  1. The event loop applies each arrival or departure against the
//     authoritative assignment under the commit lock: arrivals bootstrap
//     through the configured policy (AgRank or Nrst), departures release
//     their load from the capacity ledger.
//  2. The event then triggers incremental re-optimization of the *touched*
//     session set — the arriving/departing session plus active sessions
//     sharing agents with it — on a sharded solver pool: worker goroutines
//     that snapshot the state, run a bounded Markov-approximation
//     refinement (core.HopSession) warm-started from the live assignment,
//     and keep the best state seen along the walk.
//  3. Each worker's proposal is merged back through the lock-striped
//     capacity ledger (internal/shard): the proposal's touched agents are
//     routed to their ID-range shards, those shards are locked in
//     canonical order, capacity is re-validated per shard against *live*
//     usage (FitsRepairDelta), and the swap is applied atomically. Commits
//     whose routes are disjoint hold disjoint lock sets and proceed fully
//     in parallel; a commit that loses a cross-shard race (a routed
//     shard's epoch moved since the worker's snapshot) retries against a
//     fresh snapshot a bounded number of times. Delay and
//     objective-improvement guards don't need locking at all: Φ_s depends
//     only on session s's own variables, and a session is owned by at most
//     one task per event. Config.LedgerShards < 0 selects the legacy
//     single-lock commit path instead (bit-identical at P = 1), kept for
//     differential tests and before/after benchmarks.
//  4. Accepted proposals become data-plane migrations: when a
//     confsim.Runtime is attached, every committed decision runs the
//     dual-feed protocol (§V-A), so re-optimization never interrupts
//     streams.
//
// The hot path uses delta cost evaluation (cost.ObjectiveCache): because
// Φ = Σ_s Φ_s and Φ_s depends only on session s's own variables, a commit
// invalidates exactly one session, and objective telemetry after an event
// costs O(touched) instead of O(all sessions).
package orchestrator

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"vconf/internal/agrank"
	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/confsim"
	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/pipeline"
	"vconf/internal/shard"
	"vconf/internal/telemetry"
	"vconf/internal/workload"
)

// Config tunes the orchestrator.
type Config struct {
	// Shards is the solver pool size (worker goroutines). Defaults to
	// GOMAXPROCS.
	Shards int
	// LedgerShards selects the capacity-ledger backend and its stripe
	// count. 0 (default) runs the lock-striped shard pipeline
	// (internal/shard) with one ID-range shard per worker; a positive value
	// fixes the shard count explicitly (clamped to the agent count); -1
	// selects the legacy single-lock commit path (snapshot and commit both
	// serialize on one mutex), kept for differential testing and
	// before/after benchmarks. The P=1 sharded pipeline is bit-identical to
	// the single-lock path.
	LedgerShards int
	// CommitRetries bounds how many times a worker re-snapshots and
	// re-walks after losing a cross-shard commit race (shard.Conflict).
	// 0 defaults to 2; -1 disables retries entirely (every conflict
	// becomes a reject — useful for bounding worst-case task latency and
	// for measuring raw conflict rates). Sharded backend only.
	CommitRetries int
	// HopBudget bounds the Markov refinement walk per re-optimization task.
	// Defaults to 24 hops.
	HopBudget int
	// MaxReoptSessions caps the touched-session set re-optimized per event
	// (the triggering session always included). Defaults to 8.
	MaxReoptSessions int
	// ImprovementEps is the minimum Φ_s decrease a proposal must deliver to
	// commit; smaller deltas are dropped as noise. Defaults to 1e-9.
	ImprovementEps float64
	// Pipeline switches HandleEvent/Run onto the dependency-aware event
	// scheduler (internal/pipeline): multiple events proceed concurrently
	// when their conflict footprints (owned sessions + routed ledger
	// stripes) are disjoint, and queue behind the specific events they
	// conflict with otherwise; reports still retire in arrival order. False
	// (the default) keeps the per-event barrier path verbatim. Requires the
	// sharded ledger backend (LedgerShards ≥ 0); with MaxInFlight = 1 the
	// pipelined path is bit-identical to the serial one (differential
	// tests pin it). Public snapshot methods (Assignment, CheckInvariants,
	// ...) must only be called quiesced: between HandleEvent calls or after
	// Run returns.
	Pipeline bool
	// MaxInFlight bounds concurrently in-flight events in pipelined mode
	// (admitted, re-optimization not yet complete). Defaults to Shards.
	MaxInFlight int
	// FootprintSlack widens each event's stripe footprint by that many
	// neighboring ID-range stripes per side (pipelined mode): larger
	// footprints admit less in parallel but lose fewer commits to
	// cross-event conflicts. -1 claims every stripe (fully conservative:
	// re-optimization stages serialize). Default 0. Without a candidate
	// window (Core.NeighborWindow = 0) walks can reach any agent, so
	// footprints always cover every stripe regardless of slack.
	FootprintSlack int
	// AgentRegion maps agent → region (len NumAgents). Required to handle
	// regional fault events (EventRegionOutage/EventRegionRecover); nil
	// rejects them. GenerateSyntheticFleetRegions fleets assign agent i to
	// region i mod Regions (workload.AgentRegions builds the map).
	AgentRegion []int
	// Core parameterizes the refinement chain (β, objective scale, seed).
	// The countdown is irrelevant here — workers hop back to back.
	Core core.Config
	// Telemetry, when non-nil, receives per-decision trace records and
	// feeds the metric registry (counters, per-region histograms) from
	// every instrumented path: event handling, the shard commit pipeline,
	// the delay cache and the pipelined scheduler. Nil (the default)
	// disables instrumentation at zero hot-path cost — every call site
	// reduces to a pointer test, pinned by the alloc tests.
	Telemetry *telemetry.Sink
}

// DefaultConfig returns the orchestrator defaults over the paper's chain
// settings.
func DefaultConfig(seed int64) Config {
	return Config{Core: core.DefaultConfig(seed)}
}

// withDefaults fills zero fields and validates.
func (c Config) withDefaults() (Config, error) {
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.HopBudget == 0 {
		c.HopBudget = 24
	}
	if c.MaxReoptSessions == 0 {
		c.MaxReoptSessions = 8
	}
	if c.ImprovementEps == 0 {
		c.ImprovementEps = 1e-9
	}
	switch {
	case c.CommitRetries == 0:
		c.CommitRetries = 2
	case c.CommitRetries == -1:
		c.CommitRetries = 0
	}
	if c.Shards < 1 || c.HopBudget < 1 || c.MaxReoptSessions < 1 || c.ImprovementEps < 0 {
		return c, fmt.Errorf("orchestrator: invalid config: shards=%d hops=%d reopt=%d eps=%v",
			c.Shards, c.HopBudget, c.MaxReoptSessions, c.ImprovementEps)
	}
	if c.LedgerShards < -1 || c.CommitRetries < 0 {
		return c, fmt.Errorf("orchestrator: invalid config: ledger shards=%d commit retries=%d",
			c.LedgerShards, c.CommitRetries)
	}
	if c.Pipeline {
		if c.LedgerShards < 0 {
			return c, fmt.Errorf("orchestrator: Pipeline requires the sharded ledger backend (LedgerShards ≥ 0)")
		}
		if c.MaxInFlight == 0 {
			c.MaxInFlight = c.Shards
		}
		if c.MaxInFlight < 1 || c.FootprintSlack < -1 {
			return c, fmt.Errorf("orchestrator: invalid pipeline config: max in-flight=%d footprint slack=%d",
				c.MaxInFlight, c.FootprintSlack)
		}
	}
	if err := c.Core.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// Stats aggregates orchestrator activity counters.
type Stats struct {
	Events     int
	Arrivals   int
	Departures int
	// Dropped counts arrivals rejected at admission (no feasible bootstrap).
	Dropped int
	// Skipped counts departures for sessions that were never live — the
	// schedule echo of a dropped arrival (churn schedules are generated
	// offline and record a departure for every scheduled arrival).
	Skipped int
	// Tasks counts re-optimization tasks dispatched to the shard pool.
	Tasks int
	// Commits, Rejects and NoChange classify task outcomes: proposal
	// accepted, proposal failed commit-time validation, walk found no
	// improvement.
	Commits  int
	Rejects  int
	NoChange int
	// Conflicts counts sharded commit attempts that lost a cross-shard race
	// (a routed shard's epoch moved and validation failed); each one either
	// retried against a fresh snapshot or, past the retry budget, became a
	// Reject.
	Conflicts int
	// Migrations counts data-plane decisions executed (≥ Commits: one commit
	// can migrate several variables).
	Migrations int
	// ReoptTotal and ReoptMax track the wall-clock re-optimization latency
	// per event (the shard-pool barrier).
	ReoptTotal time.Duration
	ReoptMax   time.Duration
	// ReoptP50 and ReoptP99 are per-event re-optimization latency
	// percentiles, estimated from a fixed log-scale histogram (quarter-
	// octave buckets, so values carry ≈±12% bucket resolution at O(1)
	// memory regardless of run length).
	ReoptP50 time.Duration
	ReoptP99 time.Duration
	// Incidents counts capacity-reducing fault events handled (agent
	// failures, region outages, deeper degradations); Orphans the sessions
	// they evicted, split into Evacuated (re-homed on the surviving fleet)
	// and EvacRejects (no feasible placement; the session went down).
	Incidents   int
	Orphans     int
	Evacuated   int
	EvacRejects int
	// DegradedRejects counts arrival drops that happened while any agent
	// was failed or degraded — the paper fleet never rejects, so these
	// separate "capacity-starved by the incident" from ordinary tight-fleet
	// drops.
	DegradedRejects int
	// RecoverP50 and RecoverP99 are per-incident time-to-recovery
	// percentiles (fault application through the healing barrier), from the
	// same log-scale histogram machinery as the reopt latencies.
	RecoverP50 time.Duration
	RecoverP99 time.Duration
	// AdmissionStalls, ReoptWaits, QueueDepthPeak and InFlightPeak are
	// pipelined-scheduler telemetry (zero with Pipeline off): events whose
	// admission had to wait (in-flight cap or a claimed trigger session),
	// events whose re-optimization queued behind a conflicting in-flight
	// event, and the high-water marks of the pending queue and the
	// in-flight set.
	AdmissionStalls int
	ReoptWaits      int
	QueueDepthPeak  int
	InFlightPeak    int
}

// EventReport describes the handling of one churn event.
type EventReport struct {
	Event workload.Event
	// Admitted is false for an arrival dropped at admission.
	Admitted bool
	// Reopt is the session set handed to the shard pool.
	Reopt []model.SessionID
	// Commits/Rejects/NoChange are this event's task outcomes.
	Commits, Rejects, NoChange int
	// Conflicts counts this event's lost cross-shard commit races
	// (retried or not). Unlike the outcome tallies it is timing-dependent
	// whenever workers overlap, so differential tests must not compare it.
	Conflicts int
	// Orphans/Evacuated/EvacRejects describe a fault event's healing: the
	// sessions the incident evicted, and how many were re-homed vs dropped.
	Orphans, Evacuated, EvacRejects int
	// Latency is the wall-clock duration of the re-optimization barrier.
	Latency time.Duration
	// Objective is Σ Φ_s over active sessions after the event
	// (delta-evaluated).
	Objective float64
	// ActiveSessions counts live sessions after the event.
	ActiveSessions int
}

// Orchestrator is the online control plane. HandleEvent/Run drive it; all
// state is guarded by the commit lock, and the shard pool synchronizes
// through it, so the public API is safe for sequential use while workers
// run concurrently.
type Orchestrator struct {
	ev   *cost.Evaluator
	sc   *model.Scenario
	cfg  Config
	boot core.Bootstrapper

	// mu is the state lock: it guards the cache, stats, runtime mirror,
	// clock and error slot, plus — in single-lock mode only — every
	// assignment and ledger access. In sharded mode capacity lives behind
	// the shard ledger's own stripe locks, and assignment accesses from
	// workers are serialized by session ownership (see dispatch), so mu is
	// held only for brief metadata updates.
	mu sync.Mutex
	a  *assign.Assignment
	// ledger is the authoritative capacity ledger; exactly one of the two
	// concrete backends below is non-nil behind it.
	ledger cost.LedgerAPI
	dense  *cost.Ledger  // single-lock backend (Config.LedgerShards < 0)
	shl    *shard.Ledger // lock-striped backend (default)
	// nbrIdx is the proximity index behind Core.NeighborWindow > 0,
	// shared read-only by workers: it defines each session's candidate
	// agent set, which lets sharded workers snapshot only the shards their
	// walk can read (O(session·window) instead of O(fleet) per task).
	nbrIdx *assign.ProximityIndex
	cache  *cost.ObjectiveCache
	// scr is the commit-path evaluation scratch, guarded by the commit lock
	// (workers hold their own; see pool.go).
	scr   *cost.Scratch
	rt    *confsim.Runtime
	now   float64
	stats Stats
	lat   *telemetry.Histogram
	// Fault-injection state (see faults.go), guarded by mu: per-agent
	// failed flags and base (partial-degradation) scales, per-region outage
	// flags, the impaired-agent count driving rejects-during-degradation
	// accounting, and the per-incident time-to-recovery histogram.
	failed      []bool
	baseScale   []float64
	regionOut   []bool
	agentRegion []int
	numRegions  int
	impaired    int
	ttr         *telemetry.Histogram
	// tel is the optional telemetry sink (Config.Telemetry); nil disables
	// every instrumentation site at the cost of a pointer test.
	tel    *telemetry.Sink
	refErr error // first worker error, surfaced by the next HandleEvent

	// Pipelined-mode state (nil/unused with Config.Pipeline off). pipe is
	// the dependency-aware event scheduler; touchIdx[s] is active session
	// s's committed agent set (ascending, nonzero-usage agents), maintained
	// under mu at every bootstrap/commit/departure so footprint and
	// touched-set computation never read an in-flight session's assignment
	// state.
	pipe     *pipeline.Scheduler
	touchIdx [][]model.AgentID

	tasks     chan reoptTask
	closeOnce sync.Once
	eventIdx  int
}

// New builds an orchestrator and starts its shard pool. Call Close when
// done. A custom bootstrapper should wrap agrank.ErrInfeasible or
// baseline.ErrInfeasible to signal that an arrival cannot be admitted (a
// counted drop); any other bootstrap error aborts event handling.
func New(ev *cost.Evaluator, boot core.Bootstrapper, cfg Config) (*Orchestrator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if boot == nil {
		return nil, fmt.Errorf("orchestrator: nil bootstrapper")
	}
	sc := ev.Scenario()
	o := &Orchestrator{
		ev:    ev,
		sc:    sc,
		cfg:   cfg,
		boot:  boot,
		a:     assign.New(sc),
		cache: cost.NewObjectiveCache(ev),
		scr:   ev.NewScratch(),
		lat:   telemetry.NewHistogram(),
		ttr:   telemetry.NewHistogram(),
		tel:   cfg.Telemetry,
		tasks: make(chan reoptTask),
	}
	o.failed = make([]bool, sc.NumAgents())
	o.baseScale = make([]float64, sc.NumAgents())
	for i := range o.baseScale {
		o.baseScale[i] = 1
	}
	if cfg.AgentRegion != nil {
		if len(cfg.AgentRegion) != sc.NumAgents() {
			return nil, fmt.Errorf("orchestrator: agent-region map covers %d of %d agents",
				len(cfg.AgentRegion), sc.NumAgents())
		}
		for a, r := range cfg.AgentRegion {
			if r < 0 {
				return nil, fmt.Errorf("orchestrator: agent %d mapped to negative region %d", a, r)
			}
			if r+1 > o.numRegions {
				o.numRegions = r + 1
			}
		}
		o.agentRegion = cfg.AgentRegion
		o.regionOut = make([]bool, o.numRegions)
	}
	// The commit-path scratch and the objective cache's refresh scratch
	// (both guarded by o.mu) keep their own per-session delay caches; the
	// reference rebuild path threads through here too, so RebuildDelayBase
	// disables the cache on every evaluation path the orchestrator owns.
	o.scr.SetDelayCacheEnabled(!cfg.Core.RebuildDelayBase)
	o.cache.SetDelayCacheEnabled(!cfg.Core.RebuildDelayBase)
	if cfg.LedgerShards < 0 {
		o.dense = cost.NewLedger(sc)
		o.ledger = o.dense
	} else {
		p := cfg.LedgerShards
		if p == 0 {
			p = cfg.Shards
		}
		o.shl = shard.New(sc, p)
		o.ledger = o.shl
	}
	if w := cfg.Core.NeighborWindow; w > 0 && w < sc.NumAgents() {
		o.nbrIdx = assign.NewProximityIndex(sc, w)
	}
	if cfg.Pipeline {
		sch, err := pipeline.New(pipeline.Config{MaxInFlight: cfg.MaxInFlight})
		if err != nil {
			return nil, err
		}
		o.pipe = sch
		o.touchIdx = make([][]model.AgentID, sc.NumSessions())
	}
	for i := 0; i < cfg.Shards; i++ {
		go o.worker(i)
	}
	return o, nil
}

// Close stops the event scheduler (draining in-flight events) and the shard
// pool. The orchestrator must not be used afterwards.
func (o *Orchestrator) Close() {
	o.closeOnce.Do(func() {
		if o.pipe != nil {
			o.pipe.Close()
		}
		close(o.tasks)
	})
}

// AttachRuntime wires a data-plane runtime: subsequent arrivals, departures
// and committed re-optimizations are mirrored as activations, deactivations
// and dual-feed migrations. The runtime must not be used concurrently by
// the caller while the orchestrator runs.
func (o *Orchestrator) AttachRuntime(rt *confsim.Runtime) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.rt = rt
}

// HandleEvent applies one churn event and runs the incremental
// re-optimization it triggers, blocking until the shard pool drains. In
// pipelined mode it submits the event to the scheduler and blocks until the
// event retires — which, since events retire in arrival order, also means
// the orchestrator is quiesced when it returns; stream events through Run
// to overlap them.
func (o *Orchestrator) HandleEvent(e workload.Event) (EventReport, error) {
	if o.pipe != nil {
		return o.handleEventPipelined(e)
	}
	if err := o.takeRefErr(); err != nil {
		return EventReport{}, err
	}
	if e.Kind.IsFault() {
		return o.handleFault(e)
	}
	if e.Session < 0 || e.Session >= o.sc.NumSessions() {
		return EventReport{}, fmt.Errorf("orchestrator: event session %d outside [0, %d)", e.Session, o.sc.NumSessions())
	}
	s := model.SessionID(e.Session)
	rep := EventReport{Event: e, Admitted: true}
	// The serial path is one event at a time, so the whole control plane
	// shares the single control lane and spans nest by time containment.
	esp := o.tel.StartRoot(eventSpanName(e.Kind), "event", laneControl)

	var reopt []model.SessionID
	switch e.Kind {
	case workload.EventArrival:
		admitted, touched, err := o.applyArrival(e.TimeS, s)
		if err != nil {
			return rep, err
		}
		rep.Admitted = admitted
		reopt = touched
	case workload.EventDeparture:
		touched, live, err := o.applyDeparture(e.TimeS, s)
		if err != nil {
			return rep, err
		}
		rep.Admitted = live
		reopt = touched
	default:
		return rep, fmt.Errorf("orchestrator: invalid event kind %d", e.Kind)
	}

	rep.Reopt = reopt
	var tally *eventTally
	if o.tel != nil {
		tally = &eventTally{chosenAgent: -1}
	}
	if len(reopt) > 0 {
		before := o.snapshotStats()
		rep.Latency = o.dispatch(reopt, tally, esp)
		after := o.snapshotStats()
		rep.Commits = after.Commits - before.Commits
		rep.Rejects = after.Rejects - before.Rejects
		rep.NoChange = after.NoChange - before.NoChange
		rep.Conflicts = after.Conflicts - before.Conflicts
	}

	o.mu.Lock()
	o.stats.Events++
	o.stats.ReoptTotal += rep.Latency
	if rep.Latency > o.stats.ReoptMax {
		o.stats.ReoptMax = rep.Latency
	}
	o.lat.ObserveDuration(rep.Latency)
	rep.Objective = o.cache.TotalObjective(o.a)
	rep.ActiveSessions = o.cache.NumActive()
	o.mu.Unlock()
	o.observeDelay(tally, e, rep.Admitted)
	o.eventIdx++
	esp.EndArg(int64(e.Session))
	o.emitRecord(&rep, tally, false)
	if err := o.takeRefErr(); err != nil {
		return rep, err
	}
	return rep, nil
}

// Trace-lane layout for the span export (see telemetry.StartRoot): spans on
// one lane nest by time containment, so each serially-consistent execution
// context gets its own lane.
const (
	// laneControl carries the serial event path and all fault healing
	// (heals always run with the pipeline drained).
	laneControl = 0
	// pipelineLanes rotates in-flight pipelined events across lanes
	// 1..pipelineLanes.
	pipelineLanes = 61
	// taskLaneBase + worker ID carries that worker's task spans.
	taskLaneBase = 100
)

// eventSpanName maps an event kind to its span name (static strings: span
// starts stay allocation-free).
func eventSpanName(k workload.EventKind) string {
	switch k {
	case workload.EventArrival:
		return "event:arrive"
	case workload.EventDeparture:
		return "event:depart"
	default:
		return "event:" + k.String()
	}
}

// observeDelay fills the tally's post-decision session delay for admitted
// arrivals — the per-class SLO reading. Pure observation (enabled-telemetry
// runs read, never write, extra state), so nil-vs-enabled runs stay
// bit-identical. Callers must still own the trigger session's variables:
// the serial path is quiesced here; the pipelined path calls this at the
// end of its reopt stage, before the scheduler releases the footprint.
func (o *Orchestrator) observeDelay(tally *eventTally, e workload.Event, admitted bool) {
	if o.tel == nil || tally == nil || e.Kind != workload.EventArrival || !admitted {
		return
	}
	tally.delayMS = cost.SessionDelaysOf(o.a, model.SessionID(e.Session)).MeanOfMaxMS
}

// emitRecord publishes one event's decision record to the telemetry sink
// (no-op when telemetry is disabled). Event-scoped counters (events by
// kind, stalls, drops, latency histograms, objective gauges) are derived
// inside the sink from the record itself; task-scoped counters were already
// bumped worker-side, so the two views reconcile exactly. tally may be nil
// only when o.tel is nil.
func (o *Orchestrator) emitRecord(rep *EventReport, tally *eventTally, stalled bool) {
	if o.tel == nil {
		return
	}
	rec := telemetry.DecisionRecord{
		TimeS:          rep.Event.TimeS,
		Session:        int(rep.Event.Session),
		Admitted:       rep.Admitted,
		Stalled:        stalled,
		Reopt:          len(rep.Reopt),
		Commits:        rep.Commits,
		Rejects:        rep.Rejects,
		NoChange:       rep.NoChange,
		Conflicts:      rep.Conflicts,
		LatencyNs:      rep.Latency.Nanoseconds(),
		ChosenAgent:    -1,
		Objective:      rep.Objective,
		ActiveSessions: rep.ActiveSessions,
		// Fault-path outcomes ride on the record so the windowed sampler
		// sees them on the serialized retire stream (zero for churn kinds).
		Incident:    rep.Event.Incident,
		Orphans:     rep.Orphans,
		Evacuated:   rep.Evacuated,
		EvacRejects: rep.EvacRejects,
	}
	switch rep.Event.Kind {
	case workload.EventArrival:
		rec.Kind = "arrive"
	case workload.EventDeparture:
		rec.Kind = "depart"
		if rep.Admitted {
			// A live departure tears down the session's delay-cache entry.
			rec.CacheInvalidated = 1
		}
	default:
		// Fault kinds label themselves; evictions tore down one delay-cache
		// entry per orphan.
		rec.Kind = rep.Event.Kind.String()
		rec.CacheInvalidated = rep.Orphans
	}
	if tally != nil {
		rec.DelayMS = tally.delayMS
		rec.SnapshotNs = tally.snapshotNs
		rec.WalkNs = tally.walkNs
		rec.CommitNs = tally.commitNs
		rec.CacheWarm = tally.cacheWarm
		rec.CacheCold = tally.cacheCold
		rec.ChosenAgent = tally.chosenAgent
		if tally.cfValid {
			rec.CfGap = tally.cfGap
			rec.CfValid = true
		}
	}
	o.tel.Record(rec)
	if o.pipe != nil {
		ps := o.pipe.Stats()
		o.tel.SchedulerStats(ps.AdmissionStalls, ps.ReoptWaits, ps.QueueDepthPeak, ps.InFlightPeak)
	}
	if o.shl != nil {
		ls := o.shl.Stats()
		o.tel.LedgerStats(ls.Committed, ls.Conflicts, ls.Infeasible)
	}
}

// applyArrival bootstraps session s and returns (admitted, touched set).
func (o *Orchestrator) applyArrival(timeS float64, s model.SessionID) (bool, []model.SessionID, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.advanceClock(timeS)
	o.stats.Arrivals++
	if o.cache.Active(s) {
		return false, nil, fmt.Errorf("orchestrator: arrival for already-active session %d", s)
	}
	if err := o.boot(o.a, s, o.ledger); err != nil {
		// Admission infeasibility (the bootstrapper rolled the session back)
		// is an expected drop; anything else — misconfiguration, a buggy
		// custom bootstrapper — must surface loudly, not read as churn.
		if errors.Is(err, agrank.ErrInfeasible) || errors.Is(err, baseline.ErrInfeasible) {
			o.stats.Dropped++
			if o.impaired > 0 {
				o.stats.DegradedRejects++
				o.tel.DegradedReject(o.tel.RegionOf(int(s)))
			}
			return false, nil, nil
		}
		return false, nil, fmt.Errorf("orchestrator: bootstrap session %d: %w", s, err)
	}
	o.cache.SetActive(s, true)
	if o.rt != nil {
		if err := o.rt.ActivateSession(s, o.a); err != nil {
			return false, nil, err
		}
	}
	touched := o.touchedLocked(s, o.agentsOf(o.cache.SessionLoad(o.a, s)))
	return true, o.capReopt(s, touched), nil
}

// applyDeparture releases session s and returns (touched set, whether the
// session was live). A departure for a session that was never admitted — the
// echo of a dropped arrival — is a benign skip.
func (o *Orchestrator) applyDeparture(timeS float64, s model.SessionID) ([]model.SessionID, bool, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.advanceClock(timeS)
	o.stats.Departures++
	if !o.cache.Active(s) {
		o.stats.Skipped++
		return nil, false, nil
	}
	agents := o.agentsOf(o.cache.SessionLoad(o.a, s))
	o.ledger.RemoveSparse(o.cache.SessionLoad(o.a, s))
	for _, u := range o.sc.Session(s).Users {
		o.a.SetUserAgent(u, assign.Unassigned)
	}
	for _, f := range o.a.SessionFlows(s) {
		if err := o.a.SetFlowAgent(f, assign.Unassigned); err != nil {
			return nil, false, err
		}
	}
	// Departure invalidation, under the state lock: the objective cache's
	// refresh scratch drops its delay entry inside SetActive, and the
	// commit scratch drops its own here — a re-arrival rebuilds cold
	// instead of patching a fully-torn-down matrix. (Worker scratches need
	// no notification: their cached entries re-validate against the
	// session's decision variables on next use.)
	o.cache.SetActive(s, false)
	o.scr.InvalidateDelay(s)
	if o.rt != nil {
		o.rt.DeactivateSession(s)
	}
	// The departed session freed capacity on its agents: sessions loading
	// those agents may now have better moves available.
	touched := o.touchedLocked(s, agents)
	return o.capReopt(model.SessionID(-1), touched), true, nil
}

// advanceClock moves orchestrator time monotonically.
func (o *Orchestrator) advanceClock(timeS float64) {
	if timeS > o.now {
		o.now = timeS
	}
}

// agentsOf returns the set of agents a session load touches.
func (o *Orchestrator) agentsOf(sl *cost.SparseLoad) []bool {
	set := make([]bool, o.sc.NumAgents())
	if sl != nil {
		sl.MarkAgents(set)
	}
	return set
}

// touchedLocked lists active sessions (≠ trigger) with load on any of the
// given agents, in ascending session order. Caller holds the commit lock.
// Each membership test is O(touched agents of the session), not O(fleet).
func (o *Orchestrator) touchedLocked(trigger model.SessionID, agents []bool) []model.SessionID {
	var out []model.SessionID
	for _, s := range o.cache.ActiveSessions() {
		if s == trigger {
			continue
		}
		if o.cache.SessionLoad(o.a, s).OverlapsAgents(agents) {
			out = append(out, s)
		}
	}
	return out
}

// capReopt assembles the final re-optimization set: the trigger session
// first (if still active, i.e. arrivals), then touched sessions, capped.
func (o *Orchestrator) capReopt(trigger model.SessionID, touched []model.SessionID) []model.SessionID {
	out := make([]model.SessionID, 0, o.cfg.MaxReoptSessions)
	if trigger >= 0 {
		out = append(out, trigger)
	}
	for _, s := range touched {
		if len(out) >= o.cfg.MaxReoptSessions {
			break
		}
		out = append(out, s)
	}
	return out
}

// Run processes an event schedule in order. When a runtime is attached, the
// data plane is ticked across event gaps and to horizonS at the end, so
// dual-feed overheads land in telemetry. Returns the per-event reports. In
// pipelined mode events are streamed into the scheduler and overlap when
// their footprints allow; reports still come back in schedule order, and
// the orchestrator is fully drained when Run returns.
func (o *Orchestrator) Run(events []workload.Event, horizonS float64) ([]EventReport, error) {
	if o.pipe != nil {
		return o.runPipelined(events, horizonS)
	}
	reports := make([]EventReport, 0, len(events))
	for i, e := range events {
		// The schedule contract is non-decreasing time; reject violations
		// instead of silently regressing the clock (advanceClock would
		// otherwise just ignore them).
		if i > 0 && e.TimeS < events[i-1].TimeS {
			return reports, fmt.Errorf("orchestrator: out-of-order event %d at t=%v after t=%v",
				i, e.TimeS, events[i-1].TimeS)
		}
		if rt := o.runtime(); rt != nil {
			if dt := e.TimeS - rt.Now(); dt > 1e-9 {
				if _, err := rt.Tick(dt); err != nil {
					return reports, err
				}
			}
		}
		rep, err := o.HandleEvent(e)
		if err != nil {
			return reports, err
		}
		reports = append(reports, rep)
	}
	if rt := o.runtime(); rt != nil {
		if dt := horizonS - rt.Now(); dt > 1e-9 {
			if _, err := rt.Tick(dt); err != nil {
				return reports, err
			}
		}
	}
	return reports, nil
}

func (o *Orchestrator) runtime() *confsim.Runtime {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rt
}

// Assignment returns a snapshot of the live assignment.
func (o *Orchestrator) Assignment() *assign.Assignment {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.a.Clone()
}

// Objective returns Σ Φ_s over active sessions (delta-evaluated).
func (o *Orchestrator) Objective() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.cache.TotalObjective(o.a)
}

// ActiveSessions returns the live session set in ascending order.
func (o *Orchestrator) ActiveSessions() []model.SessionID {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.cache.ActiveSessions()
}

// Now returns the orchestrator's virtual time (the latest event timestamp).
func (o *Orchestrator) Now() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.now
}

// Stats returns a copy of the activity counters, including the latency
// percentiles and (in pipelined mode) the scheduler telemetry.
func (o *Orchestrator) Stats() Stats {
	qs := []float64{0.50, 0.99}
	o.mu.Lock()
	st := o.stats
	lat := o.lat.QuantilesDuration(qs)
	ttr := o.ttr.QuantilesDuration(qs)
	st.ReoptP50, st.ReoptP99 = lat[0], lat[1]
	st.RecoverP50, st.RecoverP99 = ttr[0], ttr[1]
	o.mu.Unlock()
	if o.pipe != nil {
		ps := o.pipe.Stats()
		st.AdmissionStalls = ps.AdmissionStalls
		st.ReoptWaits = ps.ReoptWaits
		st.QueueDepthPeak = ps.QueueDepthPeak
		st.InFlightPeak = ps.InFlightPeak
	}
	return st
}

// snapshotStats copies the raw counters only — the serial HandleEvent path
// diffs it around each dispatch, so it skips the derived percentile and
// scheduler-telemetry fills Stats performs.
func (o *Orchestrator) snapshotStats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

// Recomputes exposes the delta-evaluation cost meter: cumulative
// per-session objective recomputations.
func (o *Orchestrator) Recomputes() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.cache.Recomputes()
}

// CheckInvariants verifies the live state: every active session complete
// and delay-feasible, the ledger within every capacity, and the ledger
// usage reconciling against the active sessions' loads recomputed from the
// assignment — which catches lost, duplicated or half-committed sessions
// after concurrent commit storms. Used by tests after every event. A
// failure freezes a flight-recorder dump before returning, so the black
// box captures the state that tripped the check.
func (o *Orchestrator) CheckInvariants() error {
	err := o.checkInvariants()
	if err != nil {
		o.tel.TriggerFlight("invariant", err.Error())
	}
	return err
}

func (o *Orchestrator) checkInvariants() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.ledger.Fits(nil) {
		return fmt.Errorf("orchestrator: ledger violates capacity: agents %v", o.ledger.Violations())
	}
	for _, s := range o.cache.ActiveSessions() {
		if !o.a.SessionComplete(s) {
			return fmt.Errorf("orchestrator: active session %d incomplete", s)
		}
		if !cost.DelayFeasible(o.a, s) {
			return fmt.Errorf("orchestrator: active session %d violates the delay cap", s)
		}
	}
	// Reconciliation: ledger usage must equal Σ active-session loads.
	// Task counts are integers and must match exactly; bandwidth sums were
	// accumulated in commit order, so they get float-accumulation slack.
	want := cost.NewLedger(o.sc)
	p := o.ev.Params()
	for _, s := range o.cache.ActiveSessions() {
		want.Add(p.SessionLoadOf(o.a, s))
	}
	gotDown, gotUp, gotTasks := o.ledger.Usage()
	wantDown, wantUp, wantTasks := want.Usage()
	const eps = 1e-6
	for l := 0; l < o.sc.NumAgents(); l++ {
		if gotTasks[l] != wantTasks[l] {
			return fmt.Errorf("orchestrator: agent %d ledger tasks %d, assignment implies %d",
				l, gotTasks[l], wantTasks[l])
		}
		if diff := gotDown[l] - wantDown[l]; diff > eps || diff < -eps {
			return fmt.Errorf("orchestrator: agent %d ledger download %.9f, assignment implies %.9f",
				l, gotDown[l], wantDown[l])
		}
		if diff := gotUp[l] - wantUp[l]; diff > eps || diff < -eps {
			return fmt.Errorf("orchestrator: agent %d ledger upload %.9f, assignment implies %.9f",
				l, gotUp[l], wantUp[l])
		}
	}
	return nil
}

func (o *Orchestrator) takeRefErr() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	err := o.refErr
	o.refErr = nil
	return err
}
