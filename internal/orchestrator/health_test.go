package orchestrator

import (
	"bytes"
	"regexp"
	"testing"

	"vconf/internal/model"
	"vconf/internal/telemetry"
	"vconf/internal/workload"
)

// healthConfig wires a sink with the windowed sampler and a tight
// availability rule into a chaos-capable orchestrator config.
func healthConfig(seed int64, fc workload.FleetConfig, nEvents int) (Config, *telemetry.Sink) {
	sink := telemetry.New(telemetry.Config{
		Workers:       4,
		TraceCapacity: nEvents + 8,
		SpanCapacity:  16 * (nEvents + 8),
		Sample:        &telemetry.SamplerConfig{IntervalS: 5},
		SLO: []telemetry.SLORule{{
			Name: "availability", Kind: telemetry.RuleAvailability,
			Budget: 0.01, FastWindows: 2, SlowWindows: 6, FireBurn: 5,
		}},
	})
	cfg := chaosConfig(seed, fc)
	cfg.Telemetry = sink
	return cfg, sink
}

// healthDocs renders the sampler windows and alert timeline of one chaos
// run on the given engine path.
func healthDocs(t *testing.T, fc workload.FleetConfig, events []workload.Event, cfg Config, sink *telemetry.Sink) (string, string) {
	t.Helper()
	ev, boot, _ := chaosStack(t, fc)
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := o.Run(events, 1e18); err != nil {
		t.Fatal(err)
	}
	sink.FlushSampler()
	var ts, al bytes.Buffer
	if err := sink.Sampler().WriteJSON(&ts); err != nil {
		t.Fatal(err)
	}
	if err := sink.Alerts().WriteJSON(&al); err != nil {
		t.Fatal(err)
	}
	return ts.String(), al.String()
}

// stallsField matches the one per-window field that is scheduler telemetry
// rather than workload outcome: the pipelined dispatcher marks an event
// stalled when an admission scan happens to pass over it, which depends on
// goroutine timing. It is always zero on the serial path and may vary
// run-to-run on the pipelined path; everything else must be byte-identical.
var stallsField = regexp.MustCompile(`"stalls": \d+`)

// TestHealthWindowsDeterministicAcrossPaths pins the sampler's central
// claim: windows are filled from the serialized decision-record stream, so
// the serial and pipelined engine paths — and repeated runs of either —
// produce byte-identical /timeseries.json and /alerts.json documents,
// modulo the stalls counter, which only the pipelined scheduler can bump.
func TestHealthWindowsDeterministicAcrossPaths(t *testing.T) {
	fc := chaosFleet(31)
	_, _, homes := chaosStack(t, fc)
	events := chaosSchedule(t, 31, fc, homes, 400, 0.10)
	norm := func(s string) string { return stallsField.ReplaceAllString(s, `"stalls": 0`) }

	serialCfg, serialSink := healthConfig(31, fc, len(events))
	tsSerial, alSerial := healthDocs(t, fc, events, serialCfg, serialSink)

	againCfg, againSink := healthConfig(31, fc, len(events))
	tsAgain, alAgain := healthDocs(t, fc, events, againCfg, againSink)
	if tsSerial != tsAgain || alSerial != alAgain {
		t.Fatal("same path, same seed produced different health documents")
	}

	pipeCfg, pipeSink := healthConfig(31, fc, len(events))
	pipeCfg.Pipeline = true
	pipeCfg.MaxInFlight = 1
	tsPipe, alPipe := healthDocs(t, fc, events, pipeCfg, pipeSink)

	pipe2Cfg, pipe2Sink := healthConfig(31, fc, len(events))
	pipe2Cfg.Pipeline = true
	pipe2Cfg.MaxInFlight = 1
	tsPipe2, alPipe2 := healthDocs(t, fc, events, pipe2Cfg, pipe2Sink)
	if norm(tsPipe) != norm(tsPipe2) || alPipe != alPipe2 {
		t.Fatal("pipelined path, same seed produced different health documents (beyond stalls)")
	}

	if norm(tsSerial) != norm(tsPipe) {
		t.Fatal("pipelined path produced different sampler windows than serial (beyond stalls)")
	}
	if alSerial != alPipe {
		t.Fatal("pipelined path produced a different alert timeline than serial")
	}
}

// TestFaultsFreezeCorrelatedFlightDumps pins the orchestrator→flight
// recorder wiring: capacity-reducing incidents freeze dumps carrying the
// schedule's deterministic incident ids and kinds.
func TestFaultsFreezeCorrelatedFlightDumps(t *testing.T) {
	fc := chaosFleet(32)
	_, _, homes := chaosStack(t, fc)
	events := chaosSchedule(t, 32, fc, homes, 400, 0.10)
	cfg, sink := healthConfig(32, fc, len(events))
	_, _ = healthDocs(t, fc, events, cfg, sink)

	// Index the schedule's incident ids → kinds.
	kinds := map[int]string{}
	for _, e := range events {
		if e.Incident != 0 {
			kinds[e.Incident] = e.Kind.String()
		}
	}
	if len(kinds) == 0 {
		t.Fatal("schedule carries no incident ids")
	}
	dumps := sink.Flight().Dumps()
	if len(dumps) == 0 {
		t.Fatal("chaos run froze no flight dumps")
	}
	faultDumps, withTail := 0, 0
	for _, d := range dumps {
		switch d.Trigger {
		case "fault", "evac-reject":
			faultDumps++
			if d.Incident == 0 {
				t.Fatalf("fault dump without incident id: %+v", d)
			}
			if want := kinds[d.Incident]; d.IncidentKind != want {
				t.Fatalf("dump incident %d kind = %q, schedule says %q", d.Incident, d.IncidentKind, want)
			}
		case "alert":
			if len(d.ActiveAlerts) == 0 {
				t.Fatalf("alert dump without active alerts: %+v", d)
			}
		}
		// Dumps frozen before the first sampling window closes carry an
		// empty tail; later ones must not.
		if len(d.Windows) > 0 {
			withTail++
		}
	}
	if faultDumps == 0 {
		t.Fatal("no fault-triggered dumps across a chaos run")
	}
	if withTail == 0 {
		t.Fatal("no dump carried a closed-window tail")
	}
}

// TestInvariantFailureTriggersFlight pins the CheckInvariants wiring: a
// failing check freezes an "invariant" dump before returning the error.
func TestInvariantFailureTriggersFlight(t *testing.T) {
	fc := chaosFleet(33)
	_, _, homes := chaosStack(t, fc)
	events := chaosSchedule(t, 33, fc, homes, 200, 0.12)
	cfg, sink := healthConfig(33, fc, len(events))
	ev, boot, _ := chaosStack(t, fc)
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := o.Run(events, 1e18); err != nil {
		t.Fatal(err)
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatalf("healthy state flagged: %v", err)
	}
	before := len(sink.Flight().Dumps())

	// Sabotage the ledger out from under the live sessions: shrinking a
	// loaded agent's capacity to (effectively) zero makes Fits fail.
	sessions := o.ActiveSessions()
	if len(sessions) == 0 {
		t.Skip("no live sessions at horizon to violate")
	}
	for a := 0; a < fc.NumAgents; a++ {
		_ = o.ledger.SetCapacityScale(model.AgentID(a), 1e-9)
	}
	err = o.CheckInvariants()
	if err == nil {
		t.Fatal("sabotaged ledger passed CheckInvariants")
	}
	dumps := sink.Flight().Dumps()
	if len(dumps) != before+1 {
		t.Fatalf("invariant failure froze %d dumps, want exactly 1 more than %d", len(dumps), before)
	}
	last := dumps[len(dumps)-1]
	if last.Trigger != "invariant" || last.Reason != err.Error() {
		t.Fatalf("invariant dump wrong: trigger=%q reason=%q, want the CheckInvariants error", last.Trigger, last.Reason)
	}
}

// TestStatsQuantilesBatch pins the Stats percentile fill after the switch
// to the batched Quantiles accessor: p50 ≤ p99 and both land on histogram
// bucket bounds (no regression vs the repeated-Percentile fill).
func TestStatsQuantilesBatch(t *testing.T) {
	fc := chaosFleet(34)
	_, _, homes := chaosStack(t, fc)
	events := chaosSchedule(t, 34, fc, homes, 300, 0.10)
	cfg, _ := healthConfig(34, fc, len(events))
	ev, boot, _ := chaosStack(t, fc)
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := o.Run(events, 1e18); err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.ReoptP50 < 0 || st.ReoptP99 < st.ReoptP50 {
		t.Fatalf("reopt percentiles inverted: p50=%v p99=%v", st.ReoptP50, st.ReoptP99)
	}
	if st.Incidents > 0 && (st.RecoverP99 < st.RecoverP50 || st.RecoverP50 <= 0) {
		t.Fatalf("recovery percentiles wrong: p50=%v p99=%v over %d incidents",
			st.RecoverP50, st.RecoverP99, st.Incidents)
	}
}
