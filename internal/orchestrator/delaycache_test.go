package orchestrator

import (
	"math"
	"testing"

	"vconf/internal/agrank"
	"vconf/internal/assign"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/workload"
)

// TestDelayCacheBitIdenticalOrchestrator is the orchestrator-level
// warm-vs-rebuild differential: identical churn schedules replayed with the
// persistent delay cache (default) and with the per-hop delay-base rebuild
// (Core.RebuildDelayBase) must produce bit-identical final assignments,
// objective bits and activity counters across the orchestrator's engine
// shapes — single-lock, sharded, windowed (route-restricted snapshots), and
// pipelined. Commit-driven invalidation is exactly what the warm path must
// survive: every committed proposal, departure teardown and re-arrival
// bootstrap rewrites session variables between one worker's evaluations.
func TestDelayCacheBitIdenticalOrchestrator(t *testing.T) {
	cases := []struct {
		name string
		tune func(cfg *Config)
		wl   func() workload.Config
	}{
		{"single-lock", func(cfg *Config) {
			cfg.LedgerShards = -1
		}, func() workload.Config { return workload.Prototype(61) }},
		{"sharded", func(cfg *Config) {
			cfg.LedgerShards = 1
		}, func() workload.Config {
			wl := workload.Prototype(62)
			wl.MeanBandwidthMbps = 220
			wl.MeanTranscodeSlots = 6
			return wl
		}},
		{"windowed", func(cfg *Config) {
			cfg.LedgerShards = 1
			cfg.Core.NeighborWindow = 3
		}, func() workload.Config { return workload.Prototype(63) }},
		{"pipelined", func(cfg *Config) {
			cfg.LedgerShards = 1
			cfg.Core.NeighborWindow = 3
			cfg.Pipeline = true
			cfg.MaxInFlight = 1
		}, func() workload.Config { return workload.Prototype(64) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ev, _ := testStack(t, tc.wl())
			events := churn(t, ev, 65, 300, 0.1, 90)

			cached := DefaultConfig(65)
			cached.Shards = 1
			tc.tune(&cached)
			encC, phiC, stC := runSchedule(t, tc.wl(), events, cached)

			rebuild := cached
			rebuild.Core.RebuildDelayBase = true
			encR, phiR, stR := runSchedule(t, tc.wl(), events, rebuild)

			if encC != encR {
				t.Fatal("cached and rebuild delay paths diverged in the final assignment")
			}
			if math.Float64bits(phiC) != math.Float64bits(phiR) {
				t.Fatalf("objectives diverged: %v vs %v", phiC, phiR)
			}
			if coreStats(stC) != coreStats(stR) {
				t.Fatalf("stats diverged:\n cached  %+v\n rebuild %+v", coreStats(stC), coreStats(stR))
			}
		})
	}
}

// TestDelayCacheConcurrentInvalidationStorm races warm worker caches
// against commit- and departure-driven invalidation in the pipelined
// orchestrator: overlapping events on a churn-heavy regional fleet (short
// holds, so departures — the explicit invalidation path under the state
// lock — fire constantly while sibling workers evaluate warm entries).
// Chunked execution drains the scheduler repeatedly and the full invariant
// checker must pass after every chunk; CI runs this under -race, which
// would flag any cross-goroutine cache access.
func TestDelayCacheConcurrentInvalidationStorm(t *testing.T) {
	fc := workload.DefaultFleetConfig(67)
	fc.NumAgents = 24
	fc.NumUsers = 90
	fc.Regions = 4
	fc.AgentBandwidthMbps = 300
	fc.AgentTranscodeSlots = 10
	sc, err := workload.GenerateSyntheticFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultParams()
	evv, err := cost.NewEvaluator(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	opts := agrank.DefaultOptions(3)
	boot := func(a *assign.Assignment, s model.SessionID, ledger cost.LedgerAPI) error {
		_, err := agrank.BootstrapSession(a, s, p, ledger, opts)
		return err
	}
	// High arrival rate + short holds: the schedule is dominated by
	// arrival/departure pairs, so sessions are constantly torn down and
	// re-bootstrapped while their old delay entries sit warm in worker
	// caches.
	events, err := workload.PoissonSchedule(workload.ChurnConfig{
		Seed: 67, HorizonS: 300, ArrivalRatePerS: 0.5, MeanHoldS: 40,
		NumSessions: sc.NumSessions(),
	})
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig(67)
	cfg.Shards = 8
	cfg.LedgerShards = fc.NumAgents
	cfg.HopBudget = 12
	cfg.MaxReoptSessions = 8
	cfg.Core.NeighborWindow = 6
	cfg.Pipeline = true
	cfg.MaxInFlight = 6
	o, err := New(evv, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	const chunk = 40
	for i := 0; i < len(events); i += chunk {
		end := i + chunk
		if end > len(events) {
			end = len(events)
		}
		if _, err := o.Run(events[i:end], 0); err != nil {
			t.Fatalf("chunk [%d,%d): %v", i, end, err)
		}
		if err := o.CheckInvariants(); err != nil {
			t.Fatalf("after chunk [%d,%d): %v", i, end, err)
		}
	}
	st := o.Stats()
	if st.Events != len(events) {
		t.Fatalf("processed %d events, want %d", st.Events, len(events))
	}
	if st.Departures == 0 || st.Commits == 0 {
		t.Fatalf("storm exercised no invalidation or commits: %+v", st)
	}
	t.Logf("storm: %d events (%d departures), %d tasks, %d commits, %d conflicts, in-flight peak %d",
		st.Events, st.Departures, st.Tasks, st.Commits, st.Conflicts, st.InFlightPeak)
}
