package orchestrator

// This file is the self-healing fault path: HandleEvent routes the fault
// event kinds (internal/faults schedules) here on all three orchestrator
// paths. Healing contract:
//
//   - A failure (agent fail, region outage, or a degrade that leaves an
//     agent over its shrunk capacity) first tears down every orphaned
//     session — whole sessions, evicted in ascending ID order until no
//     capacity violation remains — and only then re-homes them through the
//     normal bootstrap policy. Teardown-before-rehome matters: strict Fits
//     checks every agent, so leftover load on a zero-capacity agent would
//     block all placements fleet-wide.
//   - An orphan whose re-bootstrap is infeasible on the surviving fleet is
//     a counted evacuation reject, not an error: the session goes down and
//     its scheduled departure becomes a benign skip. The ledger never
//     overshoots surviving capacity and the orchestrator never panics —
//     bounded rejection is the graceful-degradation mode.
//   - Successfully re-homed sessions are re-optimized through the ordinary
//     dispatch pipeline (same task seeds, so replay is deterministic).
//   - A recovery restores the agent's effective scale and re-balances:
//     active sessions whose candidate windows can reach the recovered
//     agents (all of them without a window) re-enter the walk, capped at
//     MaxReoptSessions.
//   - In pipelined mode a fault event is a full barrier: the scheduler
//     drains before healing runs, because evacuation re-assigns sessions
//     that in-flight events may own.
//
// Effective capacity scale per agent = 0 if the agent or its region is
// failed, else its base scale (EventCapacityDegrade). Every change goes
// through the authoritative ledger's SetCapacityScale, so commit-time
// validation (FitsRepairDelta) and CheckInvariants see degradation
// immediately on every path.

import (
	"errors"
	"fmt"
	"time"

	"vconf/internal/agrank"
	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/model"
	"vconf/internal/telemetry"
	"vconf/internal/workload"
)

// faultResult aggregates one fault event's healing outcome.
type faultResult struct {
	reopt       []model.SessionID
	orphans     int
	evacuated   int
	evacRejects int
	// incident marks capacity-reducing events (fail/outage/deeper degrade)
	// for the time-to-recovery accounting.
	incident bool
}

// handleFault applies one fault event and runs the healing it triggers —
// the fault-kind counterpart of the serial HandleEvent body. Callers on the
// pipelined path must drain the scheduler first.
func (o *Orchestrator) handleFault(e workload.Event) (EventReport, error) {
	rep := EventReport{Event: e, Admitted: true}
	if err := o.validateFault(e); err != nil {
		return EventReport{}, err
	}
	var tally *eventTally
	if o.tel != nil {
		tally = &eventTally{chosenAgent: -1}
	}
	// Faults always run serially (the pipelined path drains first), so the
	// event span shares the control lane and heal/task spans nest under it.
	esp := o.tel.StartRoot(eventSpanName(e.Kind), "event", laneControl)
	start := time.Now()
	res, err := o.applyFault(e, esp)
	if err != nil {
		return rep, err
	}
	rep.Orphans = res.orphans
	rep.Evacuated = res.evacuated
	rep.EvacRejects = res.evacRejects
	rep.Reopt = res.reopt
	if len(res.reopt) > 0 {
		before := o.snapshotStats()
		rep.Latency = o.dispatch(res.reopt, tally, esp)
		after := o.snapshotStats()
		rep.Commits = after.Commits - before.Commits
		rep.Rejects = after.Rejects - before.Rejects
		rep.NoChange = after.NoChange - before.NoChange
		rep.Conflicts = after.Conflicts - before.Conflicts
	}
	// Time-to-recovery: fault application through the re-optimization
	// barrier — the window during which the incident's sessions were not yet
	// re-settled.
	ttr := time.Since(start)
	o.mu.Lock()
	o.stats.Events++
	o.stats.ReoptTotal += rep.Latency
	if rep.Latency > o.stats.ReoptMax {
		o.stats.ReoptMax = rep.Latency
	}
	o.lat.ObserveDuration(rep.Latency)
	if res.incident {
		o.stats.Incidents++
		o.ttr.ObserveDuration(ttr)
	}
	rep.Objective = o.cache.TotalObjective(o.a)
	rep.ActiveSessions = o.cache.NumActive()
	o.mu.Unlock()
	o.eventIdx++
	esp.EndArg(int64(res.orphans))
	o.emitRecord(&rep, tally, false)
	if res.incident {
		o.tel.Incident(ttr.Nanoseconds())
		// Freeze the black box for capacity-reducing incidents. The record
		// just retired, so the flight recorder's incident marker already
		// points at this event; per-incident dedupe keeps repeated triggers
		// from burning the dump budget.
		trigger := "fault"
		if rep.EvacRejects > 0 {
			trigger = "evac-reject"
		}
		o.tel.TriggerFlight(trigger, fmt.Sprintf(
			"%s: %d orphans, %d evacuated, %d evac rejects",
			e.Kind.String(), rep.Orphans, rep.Evacuated, rep.EvacRejects))
	}
	if err := o.takeRefErr(); err != nil {
		return rep, err
	}
	return rep, nil
}

// validateFault checks a fault event's target fields (Session is ignored
// for fault kinds).
func (o *Orchestrator) validateFault(e workload.Event) error {
	switch e.Kind {
	case workload.EventAgentFail, workload.EventAgentRecover, workload.EventCapacityDegrade:
		if e.Agent < 0 || e.Agent >= o.sc.NumAgents() {
			return fmt.Errorf("orchestrator: fault agent %d outside [0, %d)", e.Agent, o.sc.NumAgents())
		}
		if e.Kind == workload.EventCapacityDegrade && (e.Scale < 0 || e.Scale > 1) {
			return fmt.Errorf("orchestrator: degrade scale %v outside [0, 1]", e.Scale)
		}
	case workload.EventRegionOutage, workload.EventRegionRecover:
		if o.agentRegion == nil {
			return fmt.Errorf("orchestrator: regional fault event without Config.AgentRegion")
		}
		if e.Region < 0 || e.Region >= o.numRegions {
			return fmt.Errorf("orchestrator: fault region %d outside [0, %d)", e.Region, o.numRegions)
		}
	case workload.EventFlashCrowd:
		// Accounting marker only; the burst's arrivals validate themselves.
	default:
		return fmt.Errorf("orchestrator: invalid event kind %d", e.Kind)
	}
	return nil
}

// applyFault mutates the fault state and heals, under the state lock.
// Repeated failures of an already-failed target (overlapping renewal
// processes) are idempotent no-ops. esp is the fault event's span; heal and
// re-balance spans nest under it.
func (o *Orchestrator) applyFault(e workload.Event, esp telemetry.Span) (faultResult, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.advanceClock(e.TimeS)
	var res faultResult
	switch e.Kind {
	case workload.EventAgentFail:
		if o.failed[e.Agent] {
			return res, nil
		}
		o.failed[e.Agent] = true
		return o.degradeLocked([]int{e.Agent}, esp)
	case workload.EventAgentRecover:
		if !o.failed[e.Agent] {
			return res, nil
		}
		o.failed[e.Agent] = false
		return o.recoverLocked([]int{e.Agent}, esp)
	case workload.EventRegionOutage:
		if o.regionOut[e.Region] {
			return res, nil
		}
		o.regionOut[e.Region] = true
		return o.degradeLocked(o.regionAgents(e.Region), esp)
	case workload.EventRegionRecover:
		if !o.regionOut[e.Region] {
			return res, nil
		}
		o.regionOut[e.Region] = false
		return o.recoverLocked(o.regionAgents(e.Region), esp)
	case workload.EventCapacityDegrade:
		old := o.baseScale[e.Agent]
		if e.Scale == old {
			return res, nil
		}
		o.baseScale[e.Agent] = e.Scale
		if o.downLocked(e.Agent) {
			// The agent is failed anyway: record the base scale for its
			// recovery, effective capacity stays 0.
			o.recomputeImpairedLocked()
			return res, nil
		}
		if e.Scale < old {
			return o.degradeLocked([]int{e.Agent}, esp)
		}
		return o.recoverLocked([]int{e.Agent}, esp)
	case workload.EventFlashCrowd:
		return res, nil
	}
	return res, fmt.Errorf("orchestrator: invalid event kind %d", e.Kind)
}

// regionAgents lists the agents of one region. Caller holds o.mu.
func (o *Orchestrator) regionAgents(region int) []int {
	var out []int
	for a, r := range o.agentRegion {
		if r == region {
			out = append(out, a)
		}
	}
	return out
}

// downLocked reports whether agent a is fully out (failed, or its region
// is). Caller holds o.mu.
func (o *Orchestrator) downLocked(a int) bool {
	if o.failed[a] {
		return true
	}
	return o.agentRegion != nil && o.regionOut[o.agentRegion[a]]
}

// effScaleLocked is agent a's effective capacity scale. Caller holds o.mu.
func (o *Orchestrator) effScaleLocked(a int) float64 {
	if o.downLocked(a) {
		return 0
	}
	return o.baseScale[a]
}

// applyScaleLocked pushes agent a's effective scale into the authoritative
// ledger, mirroring it into the flight recorder so incident dumps can read
// the fleet's impairment map without taking o.mu. Caller holds o.mu.
func (o *Orchestrator) applyScaleLocked(a int) error {
	sc := o.effScaleLocked(a)
	o.tel.SetCapacityScale(a, sc)
	return o.ledger.SetCapacityScale(model.AgentID(a), sc)
}

// recomputeImpairedLocked refreshes the impaired-agent count driving
// rejects-during-degradation accounting. Caller holds o.mu.
func (o *Orchestrator) recomputeImpairedLocked() {
	n := 0
	for a := range o.baseScale {
		if o.effScaleLocked(a) < 1 {
			n++
		}
	}
	o.impaired = n
}

// degradeLocked applies the (reduced) effective scales of the given agents,
// evacuates until the surviving capacities hold, and re-homes the orphans.
// Caller holds o.mu. The heal span is Ended only on the success return, so
// recorded "heal" spans reconcile exactly with Stats.Incidents (error paths
// abort the run anyway, and idempotent no-ops never reach this function).
func (o *Orchestrator) degradeLocked(agents []int, esp telemetry.Span) (faultResult, error) {
	res := faultResult{incident: true}
	heal := o.tel.StartSpan("heal", esp)
	deg := o.tel.StartSpan("degrade", heal)
	for _, a := range agents {
		if err := o.applyScaleLocked(a); err != nil {
			return res, err
		}
	}
	o.recomputeImpairedLocked()
	deg.EndArg(int64(len(agents)))

	// Evacuation loop: evict the lowest-ID session overlapping a violating
	// agent, recompute, repeat. Whole sessions move (Φ_s and the delay caps
	// are session-scoped), and the ascending scan keeps replay
	// deterministic.
	evict := o.tel.StartSpan("evict", heal)
	var orphans []model.SessionID
	mark := make([]bool, o.sc.NumAgents())
	for {
		viol := o.ledger.Violations()
		if len(viol) == 0 {
			break
		}
		for i := range mark {
			mark[i] = false
		}
		for _, l := range viol {
			mark[l] = true
		}
		evicted := false
		for _, s := range o.cache.ActiveSessions() {
			if !o.cache.SessionLoad(o.a, s).OverlapsAgents(mark) {
				continue
			}
			if err := o.evictLocked(s); err != nil {
				return res, err
			}
			orphans = append(orphans, s)
			evicted = true
			break
		}
		if !evicted {
			// Violations with no active session loading the agent cannot
			// happen while the reconciliation invariant holds.
			return res, fmt.Errorf("orchestrator: capacity violation persists with nothing to evict (agents %v)", viol)
		}
	}
	res.orphans = len(orphans)
	evict.EndArg(int64(res.orphans))

	// Re-home ascending through the normal bootstrap. Rejects are counted
	// degradation, not errors.
	rehome := o.tel.StartSpan("re-home", heal)
	var rehomed []model.SessionID
	for _, s := range orphans {
		start := time.Now()
		evac := o.tel.StartSpan("evacuate", rehome)
		ok, err := o.rehomeLocked(s)
		if err != nil {
			return res, err
		}
		if ok {
			res.evacuated++
			rehomed = append(rehomed, s)
		} else {
			res.evacRejects++
		}
		evac.EndArg(int64(s))
		o.tel.Evacuation(o.tel.RegionOf(int(s)), ok, time.Since(start).Nanoseconds())
	}
	rehome.EndArg(int64(res.evacuated))
	o.stats.Orphans += res.orphans
	o.stats.Evacuated += res.evacuated
	o.stats.EvacRejects += res.evacRejects
	res.reopt = o.capReopt(model.SessionID(-1), rehomed)
	heal.EndArg(int64(res.orphans))
	return res, nil
}

// recoverLocked restores the given agents' effective scales and selects the
// re-balance set. Caller holds o.mu. Recoveries are not incidents, so the
// span is "re-balance" parented to the event, not a "heal".
func (o *Orchestrator) recoverLocked(agents []int, esp telemetry.Span) (faultResult, error) {
	var res faultResult
	reb := o.tel.StartSpan("re-balance", esp)
	for _, a := range agents {
		if err := o.applyScaleLocked(a); err != nil {
			return res, err
		}
	}
	o.recomputeImpairedLocked()
	res.reopt = o.rebalanceLocked(agents)
	reb.EndArg(int64(len(res.reopt)))
	return res, nil
}

// rebalanceLocked lists the sessions worth re-optimizing after a recovery:
// those whose members' candidate windows can reach a recovered agent — all
// active sessions when walks are unwindowed — capped at MaxReoptSessions.
// Caller holds o.mu.
func (o *Orchestrator) rebalanceLocked(recovered []int) []model.SessionID {
	mark := make([]bool, o.sc.NumAgents())
	for _, a := range recovered {
		mark[a] = true
	}
	var cands []model.SessionID
	for _, s := range o.cache.ActiveSessions() {
		if o.nbrIdx == nil {
			cands = append(cands, s)
			continue
		}
		reach := false
		for _, u := range o.sc.Session(s).Users {
			for _, l := range o.nbrIdx.UserWindow(u) {
				if mark[l] {
					reach = true
					break
				}
			}
			if reach {
				break
			}
		}
		if reach {
			cands = append(cands, s)
		}
	}
	return o.capReopt(model.SessionID(-1), cands)
}

// evictLocked tears one session fully down: ledger release, variable
// unassignment, objective/delay-cache deactivation, committed-agents index
// clear, data-plane deactivation — the departure teardown, reused for
// orphans. Caller holds o.mu.
func (o *Orchestrator) evictLocked(s model.SessionID) error {
	o.ledger.RemoveSparse(o.cache.SessionLoad(o.a, s))
	for _, u := range o.sc.Session(s).Users {
		o.a.SetUserAgent(u, assign.Unassigned)
	}
	for _, f := range o.a.SessionFlows(s) {
		if err := o.a.SetFlowAgent(f, assign.Unassigned); err != nil {
			return err
		}
	}
	o.cache.SetActive(s, false)
	o.scr.InvalidateDelay(s)
	if o.touchIdx != nil {
		o.touchIdx[s] = nil
	}
	if o.rt != nil {
		o.rt.DeactivateSession(s)
	}
	return nil
}

// rehomeLocked re-bootstraps an orphan on the surviving fleet. A false
// return is an infeasible placement (the bootstrapper rolled back); the
// session stays down. Caller holds o.mu.
func (o *Orchestrator) rehomeLocked(s model.SessionID) (bool, error) {
	if err := o.boot(o.a, s, o.ledger); err != nil {
		if errors.Is(err, agrank.ErrInfeasible) || errors.Is(err, baseline.ErrInfeasible) {
			return false, nil
		}
		return false, fmt.Errorf("orchestrator: evacuate session %d: %w", s, err)
	}
	o.cache.SetActive(s, true)
	if o.touchIdx != nil {
		o.touchIdx[s] = o.cache.SessionLoad(o.a, s).AppendAgents(nil)
	}
	if o.rt != nil {
		if err := o.rt.ActivateSession(s, o.a); err != nil {
			return false, err
		}
	}
	return true, nil
}

// CapacityScales returns the current effective per-agent capacity scales
// (1 = healthy, 0 = failed or region-out). Snapshot for degraded-Oracle
// comparisons; call quiesced like the other snapshot methods.
func (o *Orchestrator) CapacityScales() []float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]float64, len(o.baseScale))
	for a := range out {
		out[a] = o.effScaleLocked(a)
	}
	return out
}
