package orchestrator

import (
	"reflect"
	"strings"
	"testing"

	"vconf/internal/telemetry"
	"vconf/internal/workload"
)

// sumRecords folds the sink's decision records into aggregate counters for
// reconciliation against Stats.
type recordSums struct {
	events, arrives, departs              int
	commits, rejects, noChange, conflicts int
	stalls, notAdmitted, invalidated      int
}

func foldRecords(recs []telemetry.DecisionRecord) recordSums {
	var rs recordSums
	for _, r := range recs {
		rs.events++
		switch r.Kind {
		case "arrive":
			rs.arrives++
		case "depart":
			rs.departs++
		}
		rs.commits += r.Commits
		rs.rejects += r.Rejects
		rs.noChange += r.NoChange
		rs.conflicts += r.Conflicts
		if r.Stalled {
			rs.stalls++
		}
		if !r.Admitted {
			rs.notAdmitted++
		}
		rs.invalidated += r.CacheInvalidated
	}
	return rs
}

// reconcile runs the shared assertions: the trace records, the Stats
// counters and the registry's merged counters must agree exactly.
func reconcile(t *testing.T, o *Orchestrator, sink *telemetry.Sink, nEvents int) {
	t.Helper()
	st := o.Stats()
	recs := sink.Recorder().Records()
	if int64(nEvents) != sink.Recorder().Total() {
		t.Fatalf("recorder holds %d records total, want %d", sink.Recorder().Total(), nEvents)
	}
	rs := foldRecords(recs)
	if rs.events != st.Events {
		t.Fatalf("records = %d, Stats.Events = %d", rs.events, st.Events)
	}
	if rs.arrives != st.Arrivals || rs.departs != st.Departures {
		t.Fatalf("record kinds %d/%d, Stats %d/%d", rs.arrives, rs.departs, st.Arrivals, st.Departures)
	}
	if rs.commits != st.Commits || rs.rejects != st.Rejects || rs.noChange != st.NoChange {
		t.Fatalf("record outcomes %d/%d/%d, Stats %d/%d/%d",
			rs.commits, rs.rejects, rs.noChange, st.Commits, st.Rejects, st.NoChange)
	}
	if rs.conflicts != st.Conflicts {
		t.Fatalf("record conflicts %d, Stats %d", rs.conflicts, st.Conflicts)
	}
	if rs.stalls != st.AdmissionStalls {
		t.Fatalf("record stalls %d, Stats.AdmissionStalls %d", rs.stalls, st.AdmissionStalls)
	}
	if rs.notAdmitted != st.Dropped+st.Skipped {
		t.Fatalf("record non-admissions %d, Stats drops+skips %d", rs.notAdmitted, st.Dropped+st.Skipped)
	}

	// Registry counters (worker-side, sharded) must merge to the same
	// totals as both views above.
	counters := map[string]int64{}
	for _, m := range sink.Registry().Snapshot() {
		if m.Type == "counter" {
			counters[m.Name] += int64(m.Value)
		}
	}
	if counters["vconf_commits_total"] != int64(st.Commits) {
		t.Fatalf("registry commits %d, Stats %d", counters["vconf_commits_total"], st.Commits)
	}
	if counters["vconf_rejects_total"] != int64(st.Rejects) {
		t.Fatalf("registry rejects %d, Stats %d", counters["vconf_rejects_total"], st.Rejects)
	}
	if counters["vconf_nochange_total"] != int64(st.NoChange) {
		t.Fatalf("registry no-change %d, Stats %d", counters["vconf_nochange_total"], st.NoChange)
	}
	if counters["vconf_conflicts_total"] != int64(st.Conflicts) {
		t.Fatalf("registry conflicts %d, Stats %d", counters["vconf_conflicts_total"], st.Conflicts)
	}
	if counters["vconf_events_total"] != int64(st.Events) {
		t.Fatalf("registry events %d, Stats %d", counters["vconf_events_total"], st.Events)
	}
	if counters["vconf_admission_stalls_total"] != int64(st.AdmissionStalls) {
		t.Fatalf("registry stalls %d, Stats %d", counters["vconf_admission_stalls_total"], st.AdmissionStalls)
	}
	if counters["vconf_dropped_arrivals_total"] != int64(st.Dropped) {
		t.Fatalf("registry drops %d, Stats %d", counters["vconf_dropped_arrivals_total"], st.Dropped)
	}
	if counters["vconf_skipped_departures_total"] != int64(st.Skipped) {
		t.Fatalf("registry skips %d, Stats %d", counters["vconf_skipped_departures_total"], st.Skipped)
	}
}

func TestTelemetryReconciliationSerial(t *testing.T) {
	ev, boot := testStack(t, workload.Prototype(11))
	events := churn(t, ev, 11, 300, 0.08, 120)
	sink := telemetry.New(telemetry.Config{Workers: 4, TraceCapacity: len(events) + 8})
	cfg := DefaultConfig(11)
	cfg.Shards = 4
	cfg.Telemetry = sink
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := o.Run(events, 300); err != nil {
		t.Fatal(err)
	}
	reconcile(t, o, sink, len(events))
	if st := o.Stats(); st.Commits == 0 {
		t.Fatalf("run exercised no commits: %+v", st)
	}
	// At least one committed record must carry a counterfactual reading.
	n, mean, _ := sink.CounterfactualSummary()
	if n == 0 {
		t.Fatal("no counterfactual-k readings captured across a committing run")
	}
	if mean < 0 {
		t.Fatalf("mean counterfactual gap %v negative: the chosen hop should beat the runner-up", mean)
	}
}

func TestTelemetryReconciliationSingleLock(t *testing.T) {
	ev, boot := testStack(t, workload.Prototype(12))
	events := churn(t, ev, 12, 300, 0.08, 120)
	sink := telemetry.New(telemetry.Config{Workers: 4, TraceCapacity: len(events) + 8})
	cfg := DefaultConfig(12)
	cfg.Shards = 4
	cfg.LedgerShards = -1 // legacy single-lock commit path
	cfg.Telemetry = sink
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := o.Run(events, 300); err != nil {
		t.Fatal(err)
	}
	reconcile(t, o, sink, len(events))
}

func TestTelemetryReconciliationPipelined(t *testing.T) {
	ev, boot := testStack(t, workload.Prototype(13))
	events := churn(t, ev, 13, 300, 0.10, 120)
	sink := telemetry.New(telemetry.Config{Workers: 4, TraceCapacity: len(events) + 8})
	cfg := DefaultConfig(13)
	cfg.Shards = 4
	cfg.Pipeline = true
	cfg.MaxInFlight = 4
	cfg.Core.NeighborWindow = 6
	cfg.Telemetry = sink
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := o.Run(events, 300); err != nil {
		t.Fatal(err)
	}
	reconcile(t, o, sink, len(events))
}

// TestTelemetryDifferentialNilVsEnabled pins zero observer effect: an
// identical schedule through a nil sink and an enabled sink must produce
// bit-identical reports and final state — instrumentation never perturbs
// RNG draws, evaluation order, or commit decisions.
func TestTelemetryDifferentialNilVsEnabled(t *testing.T) {
	run := func(sink *telemetry.Sink) ([]EventReport, float64) {
		ev, boot := testStack(t, workload.Prototype(14))
		events := churn(t, ev, 14, 300, 0.08, 120)
		cfg := DefaultConfig(14)
		cfg.Shards = 4
		cfg.Telemetry = sink
		o, err := New(ev, boot, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer o.Close()
		reps, err := o.Run(events, 300)
		if err != nil {
			t.Fatal(err)
		}
		return reps, o.Objective()
	}
	plain, phiPlain := run(nil)
	instr, phiInstr := run(telemetry.New(telemetry.Config{Workers: 4}))
	if phiPlain != phiInstr {
		t.Fatalf("objective diverged: nil sink %v, enabled %v", phiPlain, phiInstr)
	}
	if len(plain) != len(instr) {
		t.Fatalf("report counts diverged: %d vs %d", len(plain), len(instr))
	}
	for i := range plain {
		a, b := plain[i], instr[i]
		// Latency is wall-clock and Conflicts is timing-dependent whenever
		// workers overlap; everything else must match bit-for-bit.
		a.Latency, b.Latency = 0, 0
		a.Conflicts, b.Conflicts = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("report %d diverged:\nnil:     %+v\nenabled: %+v", i, a, b)
		}
	}
}

// TestTelemetryPerRegionLabels pins the per-region label plumbing: with a
// session→region map, the exposition must carry region-labeled commit
// counters and latency histograms.
func TestTelemetryPerRegionLabels(t *testing.T) {
	ev, boot := testStack(t, workload.Prototype(15))
	events := churn(t, ev, 15, 300, 0.08, 120)
	regions := make([]int, ev.Scenario().NumSessions())
	for s := range regions {
		regions[s] = s % 3
	}
	sink := telemetry.New(telemetry.Config{Workers: 4, SessionRegion: regions, TraceCapacity: len(events) + 8})
	cfg := DefaultConfig(15)
	cfg.Shards = 4
	cfg.Telemetry = sink
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := o.Run(events, 300); err != nil {
		t.Fatal(err)
	}
	reconcile(t, o, sink, len(events))

	var sb strings.Builder
	if err := sink.Registry().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`vconf_events_total{kind="arrive",region="0"}`,
		`vconf_events_total{kind="arrive",region="1"}`,
		`vconf_events_total{kind="arrive",region="2"}`,
		`vconf_reopt_latency_ns_count{region="0"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every record's region must match the configured map.
	for _, rec := range sink.Recorder().Records() {
		if rec.Region != rec.Session%3 {
			t.Fatalf("record session %d labeled region %d, want %d", rec.Session, rec.Region, rec.Session%3)
		}
	}
}

// TestTelemetryHealSpansReconcile is the causal-trace contract for the
// fault path: every incident records exactly one "heal" span (parented to
// its fault event's span) with degrade/evict/re-home phase children, the
// per-orphan "evacuate" spans sum to Stats.Orphans, and recoveries record
// "re-balance" spans — so the Chrome flame graph attributes healing time
// phase by phase.
func TestTelemetryHealSpansReconcile(t *testing.T) {
	fc := chaosFleet(43)
	ev, boot, homes := chaosStack(t, fc)
	events := chaosSchedule(t, 43, fc, homes, 400, 0.15)
	sink := telemetry.New(telemetry.Config{
		Workers:       2,
		TraceCapacity: len(events) + 8,
		SpanCapacity:  1 << 17,
	})
	cfg := chaosConfig(43, fc)
	cfg.Telemetry = sink
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := o.Run(events, 1e18); err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.Incidents == 0 || st.Orphans == 0 {
		t.Fatalf("schedule exercised no healing: %+v", st)
	}
	if sink.Spans().Dropped() != 0 {
		t.Fatalf("span ring wrapped (%d dropped); grow SpanCapacity", sink.Spans().Dropped())
	}

	byID := map[uint64]telemetry.SpanRecord{}
	children := map[uint64][]telemetry.SpanRecord{}
	var heals []telemetry.SpanRecord
	counts := map[string]int{}
	for _, sp := range sink.Spans().Spans() {
		byID[sp.ID] = sp
		children[sp.Parent] = append(children[sp.Parent], sp)
		counts[sp.Name]++
		if sp.Name == "heal" {
			heals = append(heals, sp)
		}
	}
	if len(heals) != st.Incidents {
		t.Fatalf("heal spans = %d, Stats.Incidents = %d", len(heals), st.Incidents)
	}
	for _, h := range heals {
		parent, ok := byID[h.Parent]
		if !ok || parent.Cat != "event" {
			t.Fatalf("heal span %d not parented to an event span (parent %d: %+v)", h.ID, h.Parent, parent)
		}
		phases := map[string]int{}
		for _, ch := range children[h.ID] {
			phases[ch.Name]++
		}
		for _, want := range []string{"degrade", "evict", "re-home"} {
			if phases[want] != 1 {
				t.Fatalf("heal %d has %d %q children, want 1 (%v)", h.ID, phases[want], want, phases)
			}
		}
	}
	if counts["evacuate"] != st.Orphans {
		t.Fatalf("evacuate spans = %d, Stats.Orphans = %d", counts["evacuate"], st.Orphans)
	}
	if counts["re-balance"] == 0 {
		t.Fatal("no re-balance spans across a schedule with recoveries")
	}
	// Task spans carry snapshot/walk/commit attribution children that never
	// exceed the task wall interval.
	if counts["task"] == 0 {
		t.Fatal("no task spans recorded")
	}
	for id, sp := range byID {
		if sp.Name != "task" {
			continue
		}
		var sum int64
		for _, ch := range children[id] {
			sum += ch.DurNs
		}
		if sum > sp.DurNs {
			t.Fatalf("task %d phase attribution %dns exceeds wall %dns", id, sum, sp.DurNs)
		}
	}
}

// TestTelemetryClassLabels pins the SLO-class plumbing end to end: with a
// class map configured, the outcome families gain a class label, committed
// arrivals record their class and session delay, the per-class delay
// histograms fill, and the Jain fairness gauge lands in (0, 1].
func TestTelemetryClassLabels(t *testing.T) {
	ev, boot := testStack(t, workload.Prototype(16))
	events := churn(t, ev, 16, 300, 0.08, 120)
	sc := ev.Scenario()
	classes := workload.SessionClasses(sc, 0)
	sink := telemetry.New(telemetry.Config{
		Workers:       4,
		TraceCapacity: len(events) + 8,
		Classes:       workload.SLOClassNames,
		SessionClass:  classes,
	})
	cfg := DefaultConfig(16)
	cfg.Shards = 4
	cfg.Telemetry = sink
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if _, err := o.Run(events, 300); err != nil {
		t.Fatal(err)
	}
	if st := o.Stats(); st.Commits == 0 {
		t.Fatalf("run exercised no commits: %+v", st)
	}

	var sb strings.Builder
	if err := sink.Registry().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`vconf_commits_total{class="interactive",region="0"}`,
		`vconf_commits_total{class="broadcast",region="0"}`,
		`vconf_session_delay_us_count{class="interactive"}`,
		`vconf_class_delay_fairness`,
		`vconf_dist_freeze_ns_count`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	delays := 0
	for _, rec := range sink.Recorder().Records() {
		if rec.Kind == "arrive" && rec.Admitted {
			if want := workload.SLOClassNames[classes[rec.Session]]; rec.Class != want {
				t.Fatalf("session %d record classed %q, want %q", rec.Session, rec.Class, want)
			}
			if rec.DelayMS > 0 {
				delays++
			}
		}
	}
	if delays == 0 {
		t.Fatal("no committed arrival recorded a session delay")
	}

	var fairness float64
	for _, m := range sink.Registry().Snapshot() {
		if m.Name == "vconf_class_delay_fairness" {
			fairness = m.Value
		}
	}
	if fairness <= 0 || fairness > 1 {
		t.Fatalf("Jain fairness = %v, want (0, 1]", fairness)
	}
}
