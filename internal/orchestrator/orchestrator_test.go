package orchestrator

import (
	"testing"

	"vconf/internal/agrank"
	"vconf/internal/assign"
	"vconf/internal/confsim"
	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/workload"
)

// testStack builds a scenario, evaluator and AgRank bootstrapper.
func testStack(t testing.TB, wl workload.Config) (*cost.Evaluator, core.Bootstrapper) {
	t.Helper()
	sc, err := workload.Generate(wl)
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	opts := agrank.DefaultOptions(2)
	boot := func(a *assign.Assignment, s model.SessionID, ledger cost.LedgerAPI) error {
		_, err := agrank.BootstrapSession(a, s, p, ledger, opts)
		return err
	}
	return ev, boot
}

// churn builds a seeded Poisson schedule over the scenario's session pool.
func churn(t testing.TB, ev *cost.Evaluator, seed int64, horizonS, rate, holdS float64) []workload.Event {
	t.Helper()
	events, err := workload.PoissonSchedule(workload.ChurnConfig{
		Seed:            seed,
		HorizonS:        horizonS,
		ArrivalRatePerS: rate,
		MeanHoldS:       holdS,
		NumSessions:     ev.Scenario().NumSessions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty churn schedule")
	}
	return events
}

func TestOrchestratorChurnEndToEnd(t *testing.T) {
	wl := workload.Prototype(1)
	ev, boot := testStack(t, wl)
	events := churn(t, ev, 1, 300, 0.08, 120)

	cfg := DefaultConfig(1)
	cfg.Shards = 4
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	rtCfg := confsim.DefaultConfig(1)
	rtCfg.JitterFrac = 0 // deterministic telemetry for the assertions below
	rt, err := confsim.New(ev.Scenario(), ev.Params(), rtCfg)
	if err != nil {
		t.Fatal(err)
	}
	o.AttachRuntime(rt)

	for _, e := range events {
		rep, err := o.HandleEvent(e)
		if err != nil {
			t.Fatalf("event %+v: %v", e, err)
		}
		// Invariants after every event: no capacity violation, delay cap
		// respected, every live session complete.
		if err := o.CheckInvariants(); err != nil {
			t.Fatalf("after event %+v: %v", e, err)
		}
		if rep.ActiveSessions != len(o.ActiveSessions()) {
			t.Fatalf("report active %d != %d", rep.ActiveSessions, len(o.ActiveSessions()))
		}
	}

	st := o.Stats()
	if st.Events != len(events) {
		t.Fatalf("processed %d events, want %d", st.Events, len(events))
	}
	if st.Arrivals == 0 || st.Departures == 0 {
		t.Fatalf("schedule exercised no churn: %+v", st)
	}
	if st.Commits == 0 {
		t.Fatalf("shard pool never committed a re-optimization: %+v", st)
	}

	// Data plane mirrored every commit as dual-feed migrations.
	rtStats := rt.Stats()
	if rtStats.Migrations != int64(st.Migrations) {
		t.Fatalf("runtime saw %d migrations, orchestrator committed %d", rtStats.Migrations, st.Migrations)
	}
	if tel, err := rt.Tick(1); err != nil || tel.ActiveSessions != len(o.ActiveSessions()) {
		t.Fatalf("telemetry actives %d (err %v), want %d", tel.ActiveSessions, err, len(o.ActiveSessions()))
	}

	// Quality: the incremental objective must be within 10% of a
	// from-scratch re-solve over the same final session set.
	active := o.ActiveSessions()
	if len(active) == 0 {
		t.Fatal("no active sessions at horizon; pick a longer hold time")
	}
	_, oraclePhi, err := Oracle(ev, active, boot, core.DefaultConfig(1), 200)
	if err != nil {
		t.Fatal(err)
	}
	online := o.Objective()
	if online > oraclePhi*1.10 {
		t.Fatalf("online objective %.2f exceeds 110%% of oracle %.2f", online, oraclePhi)
	}
}

func TestOrchestratorDeterministic(t *testing.T) {
	// With unconstrained capacities (the prototype workload), commit
	// validation never depends on concurrent ledger state, so the final
	// assignment is deterministic regardless of shard scheduling.
	run := func() (*assign.Assignment, Stats) {
		ev, boot := testStack(t, workload.Prototype(7))
		events := churn(t, ev, 7, 200, 0.1, 90)
		cfg := DefaultConfig(7)
		cfg.Shards = 8
		o, err := New(ev, boot, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer o.Close()
		if _, err := o.Run(events, 200); err != nil {
			t.Fatal(err)
		}
		return o.Assignment(), o.Stats()
	}
	a1, st1 := run()
	a2, st2 := run()
	if st1.Commits != st2.Commits || st1.Rejects != st2.Rejects || st1.Dropped != st2.Dropped {
		t.Fatalf("stats diverged across identical runs: %+v vs %+v", st1, st2)
	}
	// Assignments are over distinct scenario instances; compare encodings.
	if a1.Encode() != a2.Encode() {
		t.Fatal("final assignments diverged across identical runs")
	}
}

func TestOrchestratorShardedRace(t *testing.T) {
	// Heavy concurrent load across many shards with *finite* capacities:
	// commit-time validation must keep every invariant under contention.
	// go test -race exercises the snapshot/commit protocol.
	wl := workload.Prototype(3)
	wl.MeanBandwidthMbps = 220
	wl.MeanTranscodeSlots = 6
	ev, boot := testStack(t, wl)
	events := churn(t, ev, 3, 400, 0.15, 80)

	cfg := DefaultConfig(3)
	cfg.Shards = 8
	cfg.HopBudget = 16
	cfg.MaxReoptSessions = 12
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	for _, e := range events {
		if _, err := o.HandleEvent(e); err != nil {
			t.Fatalf("event %+v: %v", e, err)
		}
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.Tasks == 0 || st.Commits == 0 {
		t.Fatalf("race run did no work: %+v", st)
	}
	t.Logf("race run: %d events, %d tasks, %d commits, %d rejects, %d drops",
		st.Events, st.Tasks, st.Commits, st.Rejects, st.Dropped)
}

func TestOrchestratorDropsInfeasibleArrivalAndSkipsEcho(t *testing.T) {
	// Capacities so tight that most sessions cannot be admitted: drops must
	// be counted, state must stay clean, and the dropped session's scheduled
	// departure must be skipped, not an error.
	wl := workload.Prototype(5)
	wl.MeanBandwidthMbps = 30 // too small for most sessions
	wl.MeanTranscodeSlots = 1
	ev, boot := testStack(t, wl)

	sc := ev.Scenario()
	arr := workload.Event{TimeS: 1, Kind: workload.EventArrival, Session: 0}
	dep := workload.Event{TimeS: 2, Kind: workload.EventDeparture, Session: 0}
	cfg := DefaultConfig(5)
	cfg.Shards = 2
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	rep, err := o.HandleEvent(arr)
	if err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if rep.Admitted {
		// Seed-dependent: if session 0 happens to fit, force a guaranteed
		// drop by re-admitting (already-active arrival is a hard error, so
		// use a different check): shrink to zero capacity instead.
		t.Skipf("session 0 admitted under tight capacity; drop path covered by race test (%+v)", st)
	}
	if st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := o.ActiveSessions(); len(got) != 0 {
		t.Fatalf("dropped arrival left sessions active: %v", got)
	}
	// The echo departure is skipped, not an error.
	rep, err = o.HandleEvent(dep)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted {
		t.Fatal("skipped departure reported as live")
	}
	if st := o.Stats(); st.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", st.Skipped)
	}
	_ = sc
}

func TestOrchestratorEventValidation(t *testing.T) {
	ev, boot := testStack(t, workload.Prototype(2))
	cfg := DefaultConfig(2)
	cfg.Shards = 1
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	if _, err := o.HandleEvent(workload.Event{TimeS: 1, Kind: workload.EventArrival, Session: -1}); err == nil {
		t.Fatal("negative session accepted")
	}
	if _, err := o.HandleEvent(workload.Event{TimeS: 1, Kind: workload.EventArrival, Session: ev.Scenario().NumSessions()}); err == nil {
		t.Fatal("out-of-range session accepted")
	}
	if _, err := o.HandleEvent(workload.Event{TimeS: 1, Session: 0}); err == nil {
		t.Fatal("invalid event kind accepted")
	}
	if _, err := o.HandleEvent(workload.Event{TimeS: 1, Kind: workload.EventArrival, Session: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := o.HandleEvent(workload.Event{TimeS: 2, Kind: workload.EventArrival, Session: 0}); err == nil {
		t.Fatal("double arrival accepted")
	}
}

func TestOrchestratorDeltaEvaluation(t *testing.T) {
	// The hot path must not re-evaluate untouched sessions: over a run, the
	// cache recompute count must stay far below events × active sessions.
	ev, boot := testStack(t, workload.Prototype(4))
	events := churn(t, ev, 4, 200, 0.1, 100)
	cfg := DefaultConfig(4)
	cfg.Shards = 4
	o, err := New(ev, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	reports, err := o.Run(events, 200)
	if err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	// Full re-evaluation would recompute every active session per query;
	// the delta path recomputes ≈ one session per state change (arrival,
	// commit, refine snapshot). Bound it generously but meaningfully.
	fullCost := 0
	for _, r := range reports {
		fullCost += r.ActiveSessions * 2 // one query per event + one per report
	}
	if rec := o.Recomputes(); rec >= fullCost {
		t.Fatalf("delta evaluation recomputed %d sessions; full evaluation would be %d (stats %+v)",
			rec, fullCost, st)
	}
	t.Logf("recomputes=%d vs full-eval cost %d over %d events", o.Recomputes(), fullCost, len(reports))
}

func TestOracleFeasible(t *testing.T) {
	ev, boot := testStack(t, workload.Prototype(6))
	active := []model.SessionID{0, 1, 2}
	a, phi, err := Oracle(ev, active, boot, core.DefaultConfig(6), 50)
	if err != nil {
		t.Fatal(err)
	}
	if phi <= 0 {
		t.Fatalf("oracle objective %v", phi)
	}
	for _, s := range active {
		if !a.SessionComplete(s) {
			t.Fatalf("oracle session %d incomplete", s)
		}
		if !cost.DelayFeasible(a, s) {
			t.Fatalf("oracle session %d delay-infeasible", s)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	ev, boot := testStack(t, workload.Prototype(8))
	if _, err := New(ev, nil, DefaultConfig(8)); err == nil {
		t.Fatal("nil bootstrapper accepted")
	}
	bad := DefaultConfig(8)
	bad.Shards = -1
	if _, err := New(ev, boot, bad); err == nil {
		t.Fatal("negative shard count accepted")
	}
	bad = DefaultConfig(8)
	bad.Core.Beta = -1
	if _, err := New(ev, boot, bad); err == nil {
		t.Fatal("invalid core config accepted")
	}
}
