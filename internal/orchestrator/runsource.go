package orchestrator

// RunSource is the virtual-clock streaming counterpart of Run: instead of a
// pre-materialized []workload.Event slice, the orchestrator pulls events
// one at a time from a lazy EventSource (an internal/sim engine over lazy
// generators, or a trace replayer) and streams finished reports to a
// callback — memory stays O(in-flight events) however long the virtual
// horizon. The legacy eager Run([]Event) path is kept verbatim and pinned
// bit-identical by the differential tests in runsource_test.go: for the
// same seeds, RunSource over the lazy engine produces the same
// assignments, objective bits, Stats counters and decision-record stream
// across the serial, single-lock and pipelined paths.

import (
	"fmt"
	"math"
	"sync"

	"vconf/internal/workload"
)

// EventSource is the pull-based lazy event stream RunSource consumes:
// events in non-decreasing time order, ok=false at exhaustion, Err for
// stream failures. sim.Engine, the lazy generators and sim.Replayer all
// satisfy it; the interface is redeclared here (Go structural typing) so
// the orchestrator does not depend on the sim package.
type EventSource interface {
	Next() (workload.Event, bool)
	Err() error
}

// RunSource processes events pulled from src in order until exhaustion.
// Each finished report is passed to onReport (nil to discard): in schedule
// order, from a single goroutine, though in pipelined mode that goroutine
// is the scheduler's retire loop, not the caller's. A non-nil onReport
// error aborts the run and surfaces from RunSource. With a runtime
// attached, the data plane ticks across event gaps and to horizonS at the
// end, exactly like Run.
func (o *Orchestrator) RunSource(src EventSource, horizonS float64, onReport func(EventReport) error) error {
	if o.pipe != nil {
		return o.runSourcePipelined(src, horizonS, onReport)
	}
	prev := math.Inf(-1)
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if e.TimeS < prev {
			return fmt.Errorf("orchestrator: out-of-order event at t=%v after t=%v", e.TimeS, prev)
		}
		prev = e.TimeS
		if rt := o.runtime(); rt != nil {
			if dt := e.TimeS - rt.Now(); dt > 1e-9 {
				if _, err := rt.Tick(dt); err != nil {
					return err
				}
			}
		}
		rep, err := o.HandleEvent(e)
		if err != nil {
			return err
		}
		if onReport != nil {
			if err := onReport(rep); err != nil {
				return err
			}
		}
	}
	if err := src.Err(); err != nil {
		return err
	}
	if rt := o.runtime(); rt != nil {
		if dt := horizonS - rt.Now(); dt > 1e-9 {
			if _, err := rt.Tick(dt); err != nil {
				return err
			}
		}
	}
	return nil
}

// runSourcePipelined streams pulled events into the scheduler, mirroring
// runPipelined's overlap and fault-barrier semantics. Reports are emitted
// at retire time (schedule order) on the scheduler's retire goroutine; the
// first onReport error stops admission of further events and surfaces
// after the drain.
func (o *Orchestrator) runSourcePipelined(src EventSource, horizonS float64, onReport func(EventReport) error) error {
	var cbMu sync.Mutex
	var cbErr error
	emit := func(rep EventReport) {
		cbMu.Lock()
		defer cbMu.Unlock()
		if cbErr == nil && onReport != nil {
			cbErr = onReport(rep)
		}
	}
	takeCbErr := func() error {
		cbMu.Lock()
		defer cbMu.Unlock()
		err := cbErr
		cbErr = nil
		return err
	}
	prev := math.Inf(-1)
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if e.TimeS < prev {
			o.pipe.Drain()
			return fmt.Errorf("orchestrator: out-of-order event at t=%v after t=%v", e.TimeS, prev)
		}
		prev = e.TimeS
		if rt := o.runtime(); rt != nil {
			o.mu.Lock()
			var err error
			if dt := e.TimeS - rt.Now(); dt > 1e-9 {
				_, err = rt.Tick(dt)
			}
			o.mu.Unlock()
			if err != nil {
				o.pipe.Drain()
				return err
			}
		}
		// Worker/runtime and report-sink errors surface mid-stream, like the
		// serial path's per-event checks — not only after the drain.
		if err := o.takeRefErr(); err != nil {
			o.pipe.Drain()
			return err
		}
		if err := takeCbErr(); err != nil {
			o.pipe.Drain()
			return err
		}
		if e.Kind.IsFault() {
			// Fault barrier: drain so every prior report has retired (and
			// been emitted), heal, then emit in order.
			if err := o.pipe.Drain(); err != nil {
				return err
			}
			rep, err := o.handleFault(e)
			if err != nil {
				return err
			}
			emit(rep)
			continue
		}
		if _, _, err := o.submitEvent(e, nil, emit); err != nil {
			if derr := o.pipe.Drain(); derr != nil {
				err = derr
			}
			return err
		}
	}
	if err := o.pipe.Drain(); err != nil {
		return err
	}
	if err := src.Err(); err != nil {
		return err
	}
	if rt := o.runtime(); rt != nil {
		o.mu.Lock()
		var err error
		if dt := horizonS - rt.Now(); dt > 1e-9 {
			_, err = rt.Tick(dt)
		}
		o.mu.Unlock()
		if err != nil {
			return err
		}
	}
	if err := o.takeRefErr(); err != nil {
		return err
	}
	return takeCbErr()
}
