package faults

import (
	"reflect"
	"testing"

	"vconf/internal/workload"
)

// drain collects a lazy source, checking time order as it goes.
func drain(t *testing.T, src *Source) []workload.Event {
	t.Helper()
	var out []workload.Event
	prev := -1.0
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if e.TimeS < prev {
			t.Fatalf("lazy source emitted out of order: %v after %v", e.TimeS, prev)
		}
		prev = e.TimeS
		out = append(out, e)
	}
	if err := src.Err(); err != nil {
		t.Fatalf("lazy source error: %v", err)
	}
	return out
}

// TestLazyFaultsDifferential pins the tentpole equivalence for the fault
// engine: the k-way-merged lazy source yields byte-for-byte the schedule
// the eager sort-based path materializes — incident numbering, flash-burst
// interleavings and all — across seeds and process subsets.
func TestLazyFaultsDifferential(t *testing.T) {
	full := testConfig()
	agentsOnly := testConfig()
	agentsOnly.RegionMTBFS, agentsOnly.DegradeMTBFS, agentsOnly.FlashMTBFS = 0, 0, 0
	flashOnly := testConfig()
	flashOnly.AgentMTBFS, flashOnly.RegionMTBFS, flashOnly.DegradeMTBFS = 0, 0, 0
	// A tight flash pool with high intensity exercises the pre-flush pool
	// check and the heap-recycled pops.
	flashTight := flashOnly
	flashTight.FlashIntensity = 6
	flashTight.FlashHoldS = 5
	flashTight.FlashSessions = [][]int{{20, 21}}
	cfgs := []Config{full, agentsOnly, flashOnly, flashTight}
	for i, cfg := range cfgs {
		for seed := int64(1); seed <= 4; seed++ {
			cfg.Seed = seed
			eager, err := Schedule(cfg)
			if err != nil {
				t.Fatalf("cfg %d seed %d: %v", i, seed, err)
			}
			src, err := NewSource(cfg)
			if err != nil {
				t.Fatalf("cfg %d seed %d: %v", i, seed, err)
			}
			lazy := drain(t, src)
			if !reflect.DeepEqual(eager, lazy) {
				n := len(eager)
				if len(lazy) < n {
					n = len(lazy)
				}
				for k := 0; k < n; k++ {
					if eager[k] != lazy[k] {
						t.Fatalf("cfg %d seed %d: first divergence at %d: eager %+v lazy %+v",
							i, seed, k, eager[k], lazy[k])
					}
				}
				t.Fatalf("cfg %d seed %d: lazy stream length %d, eager %d",
					i, seed, len(lazy), len(eager))
			}
		}
	}
}

// TestLazyFaultsRejectsInvalidConfig mirrors the eager validation.
func TestLazyFaultsRejectsInvalidConfig(t *testing.T) {
	if _, err := NewSource(Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestMergeRankTieBreak pins the explicit tie contract on Merge: a churn
// and a fault event at the same timestamp order churn-first in either
// operand position, and full-key ties keep first-operand-first stability.
func TestMergeRankTieBreak(t *testing.T) {
	churn := []workload.Event{{TimeS: 5, Kind: workload.EventArrival, Session: 1, Rank: workload.RankChurn}}
	fault := []workload.Event{{TimeS: 5, Kind: workload.EventAgentFail, Session: -1, Agent: 2, Incident: 1, Rank: workload.RankFaults}}
	ab := Merge(churn, fault)
	ba := Merge(fault, churn)
	if !reflect.DeepEqual(ab, ba) {
		t.Fatalf("rank tie-break is operand-dependent: %+v vs %+v", ab, ba)
	}
	if ab[0].Kind != workload.EventArrival || ab[1].Kind != workload.EventAgentFail {
		t.Fatalf("churn must precede faults on equal timestamps, got %+v", ab)
	}
	// Same rank, same time: first operand wins (stable merge).
	x := []workload.Event{{TimeS: 5, Kind: workload.EventArrival, Session: 1}}
	y := []workload.Event{{TimeS: 5, Kind: workload.EventArrival, Session: 2}}
	xy := Merge(x, y)
	if xy[0].Session != 1 || xy[1].Session != 2 {
		t.Fatalf("full-key tie must keep first operand first, got %+v", xy)
	}
}
