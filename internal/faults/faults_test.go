package faults

import (
	"reflect"
	"testing"

	"vconf/internal/workload"
)

func testConfig() Config {
	region := make([]int, 12)
	for a := range region {
		region[a] = a % 3
	}
	return Config{
		Seed:           7,
		HorizonS:       500,
		NumAgents:      12,
		AgentRegion:    region,
		AgentMTBFS:     400,
		AgentMTTRS:     60,
		RegionMTBFS:    400,
		RegionMTTRS:    80,
		DegradeMTBFS:   500,
		DegradeMTTRS:   70,
		DegradeFloor:   0.3,
		FlashMTBFS:     400,
		FlashIntensity: 3,
		FlashHoldS:     40,
		FlashSessions:  [][]int{{20, 21}, {22, 23}, {24}},
	}
}

// TestScheduleDeterministic pins the determinism contract: the same Config
// yields a byte-identical schedule across calls.
func TestScheduleDeterministic(t *testing.T) {
	cfg := testConfig()
	a, err := Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty fault schedule")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different schedules")
	}
	// A different seed must produce a different schedule (overwhelmingly).
	cfg.Seed++
	c, err := Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("seed change did not perturb the schedule")
	}
}

// TestScheduleWellFormed checks structural invariants: time-ordered, fault
// targets in range, burst arrivals drawn from the reserved pools, every
// burst departure after its arrival, recoveries only after failures.
func TestScheduleWellFormed(t *testing.T) {
	cfg := testConfig()
	events, err := Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reserved := map[int]bool{}
	for _, pool := range cfg.FlashSessions {
		for _, s := range pool {
			reserved[s] = true
		}
	}
	agentDown := make([]bool, cfg.NumAgents)
	regionDown := make([]bool, 3)
	live := map[int]bool{}
	prev := 0.0
	kinds := map[workload.EventKind]int{}
	for i, e := range events {
		if e.TimeS < prev {
			t.Fatalf("event %d out of order: %v after %v", i, e.TimeS, prev)
		}
		prev = e.TimeS
		if e.TimeS >= cfg.HorizonS {
			t.Fatalf("event %d beyond the horizon: %v", i, e.TimeS)
		}
		kinds[e.Kind]++
		switch e.Kind {
		case workload.EventAgentFail:
			if e.Agent < 0 || e.Agent >= cfg.NumAgents || agentDown[e.Agent] {
				t.Fatalf("event %d: bad or duplicate agent failure %+v", i, e)
			}
			agentDown[e.Agent] = true
		case workload.EventAgentRecover:
			if !agentDown[e.Agent] {
				t.Fatalf("event %d: recovery without failure %+v", i, e)
			}
			agentDown[e.Agent] = false
		case workload.EventRegionOutage:
			if e.Region < 0 || e.Region >= 3 || regionDown[e.Region] {
				t.Fatalf("event %d: bad or duplicate region outage %+v", i, e)
			}
			regionDown[e.Region] = true
		case workload.EventRegionRecover:
			if !regionDown[e.Region] {
				t.Fatalf("event %d: region recovery without outage %+v", i, e)
			}
			regionDown[e.Region] = false
		case workload.EventCapacityDegrade:
			if e.Scale < cfg.DegradeFloor && e.Scale != 1 || e.Scale > 1 {
				t.Fatalf("event %d: degrade scale %v outside [floor, 1]", i, e.Scale)
			}
		case workload.EventArrival:
			if !reserved[e.Session] || live[e.Session] {
				t.Fatalf("event %d: burst arrival outside the reserved pool or double-arrival %+v", i, e)
			}
			live[e.Session] = true
		case workload.EventDeparture:
			if !live[e.Session] {
				t.Fatalf("event %d: departure without arrival %+v", i, e)
			}
			live[e.Session] = false
		case workload.EventFlashCrowd:
			if e.Region < 0 || e.Region >= len(cfg.FlashSessions) {
				t.Fatalf("event %d: flash marker region %d out of range", i, e.Region)
			}
		}
	}
	for _, k := range []workload.EventKind{workload.EventAgentFail, workload.EventRegionOutage,
		workload.EventCapacityDegrade, workload.EventFlashCrowd, workload.EventArrival} {
		if kinds[k] == 0 {
			t.Fatalf("schedule exercised no %v events (kinds: %v)", k, kinds)
		}
	}
}

// TestProcessIndependence pins the per-process RNG derivation: disabling one
// process must not perturb another's events.
func TestProcessIndependence(t *testing.T) {
	full := testConfig()
	all, err := Schedule(full)
	if err != nil {
		t.Fatal(err)
	}
	only := full
	only.RegionMTBFS, only.DegradeMTBFS, only.FlashMTBFS = 0, 0, 0
	agentOnly, err := Schedule(only)
	if err != nil {
		t.Fatal(err)
	}
	var fromFull []workload.Event
	for _, e := range all {
		if e.Kind == workload.EventAgentFail || e.Kind == workload.EventAgentRecover {
			fromFull = append(fromFull, e)
		}
	}
	// Incident ids are a schedule-global sequence over the merged fault
	// stream, so they legitimately renumber when other processes are
	// disabled; compare the streams modulo that field.
	for i := range fromFull {
		fromFull[i].Incident = 0
	}
	for i := range agentOnly {
		agentOnly[i].Incident = 0
	}
	if !reflect.DeepEqual(fromFull, agentOnly) {
		t.Fatal("disabling other processes perturbed the agent-failure stream")
	}
}

// TestMerge pins the stable two-way merge: time-ordered, a wins ties, both
// inputs fully consumed.
func TestMerge(t *testing.T) {
	a := []workload.Event{
		{TimeS: 1, Kind: workload.EventArrival, Session: 0},
		{TimeS: 3, Kind: workload.EventDeparture, Session: 0},
	}
	b := []workload.Event{
		{TimeS: 1, Kind: workload.EventAgentFail, Agent: 2, Session: -1},
		{TimeS: 2, Kind: workload.EventAgentRecover, Agent: 2, Session: -1},
		{TimeS: 9, Kind: workload.EventFlashCrowd, Region: 1, Session: -1},
	}
	got := Merge(a, b)
	want := []workload.Event{a[0], b[0], b[1], a[1], b[2]}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge:\n got %+v\nwant %+v", got, want)
	}
}

func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.HorizonS = 0 },
		func(c *Config) { c.NumAgents = 0 },
		func(c *Config) { c.AgentRegion = c.AgentRegion[:3] },
		func(c *Config) { c.AgentMTTRS = 0 },
		func(c *Config) { c.RegionMTTRS = 0 },
		func(c *Config) { c.DegradeFloor = 1 },
		func(c *Config) { c.FlashIntensity = 0 },
		func(c *Config) { c.FlashSessions = [][]int{{1}, {2}, {3}, {4}} },
		func(c *Config) { c.AgentRegion = nil }, // regional processes need the map
	}
	for i, mut := range bad {
		cfg := testConfig()
		mut(&cfg)
		if _, err := Schedule(cfg); err == nil {
			t.Fatalf("mutation %d: expected a validation error", i)
		}
	}
	if err := (testConfig()).Validate(); err != nil {
		t.Fatal(err)
	}
}
