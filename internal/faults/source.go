package faults

// Lazy, pull-based fault generation for the virtual-clock engine
// (internal/sim): NewSource yields the exact event stream Schedule would
// return — byte-identical per Config, pinned by differential tests —
// without materializing the slice.
//
// The eager path builds one sub-stream per (process, target) from its own
// splitmix64-derived RNG, concatenates them in a fixed order and stable-
// sorts on time. The lazy equivalent runs every sub-stream as a suspended
// iterator and k-way-merges them on (time, stream index): each stream is
// internally time-ordered, so the (time, stream index) key reproduces the
// stable sort's tie order exactly. Incident ids are assigned to fault-kind
// events as they pop, which matches the eager post-sort numbering.

import (
	"container/heap"
	"math/rand"

	"vconf/internal/workload"
)

// Source is a lazy generator of the fault event stream. It satisfies the
// sim.EventSource contract.
type Source struct {
	streams  []faultStream
	pq       mergeHeap
	incident int
}

// Next returns the next fault-schedule event in time order (ties broken by
// the fixed process/target stream order), or ok=false once every process
// has run past the horizon.
func (s *Source) Next() (workload.Event, bool) {
	if len(s.pq) == 0 {
		return workload.Event{}, false
	}
	top := &s.pq[0]
	ev := top.ev
	if next, ok := s.streams[top.stream].next(); ok {
		top.ev = next
		heap.Fix(&s.pq, 0)
	} else {
		heap.Pop(&s.pq)
	}
	if ev.Kind.IsFault() {
		s.incident++
		ev.Incident = s.incident
	}
	return ev, true
}

// Err reports a stream failure. Fault generation is infallible after
// configuration validation, so it always returns nil.
func (s *Source) Err() error { return nil }

// NewSource builds the lazy equivalent of Schedule(cfg): the returned
// source yields exactly the events the eager call would return, in the
// same order, from the same seed.
func NewSource(cfg Config) (*Source, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Source{}
	// Stream registration order must match the eager concatenation order:
	// agent failures, region outages, degradations, flash crowds.
	if cfg.AgentMTBFS > 0 {
		for a := 0; a < cfg.NumAgents; a++ {
			a := a
			s.streams = append(s.streams, &renewalStream{
				rng: subRNG(cfg.Seed, tagAgentFail, a), horizonS: cfg.HorizonS,
				mtbfS: cfg.AgentMTBFS, mttrS: cfg.AgentMTTRS,
				mk: func(t float64, up bool) workload.Event {
					k := workload.EventAgentFail
					if up {
						k = workload.EventAgentRecover
					}
					return workload.Event{TimeS: t, Kind: k, Session: -1, Agent: a,
						Region: regionOf(cfg.AgentRegion, a), Rank: workload.RankFaults}
				},
			})
		}
	}
	if cfg.RegionMTBFS > 0 {
		for r := 0; r < cfg.numRegions(); r++ {
			r := r
			s.streams = append(s.streams, &renewalStream{
				rng: subRNG(cfg.Seed, tagRegionOutage, r), horizonS: cfg.HorizonS,
				mtbfS: cfg.RegionMTBFS, mttrS: cfg.RegionMTTRS,
				mk: func(t float64, up bool) workload.Event {
					k := workload.EventRegionOutage
					if up {
						k = workload.EventRegionRecover
					}
					return workload.Event{TimeS: t, Kind: k, Session: -1, Agent: -1,
						Region: r, Rank: workload.RankFaults}
				},
			})
		}
	}
	if cfg.DegradeMTBFS > 0 {
		for a := 0; a < cfg.NumAgents; a++ {
			s.streams = append(s.streams, &degradeStream{
				rng: subRNG(cfg.Seed, tagDegrade, a), cfg: cfg, agent: a,
			})
		}
	}
	if cfg.FlashMTBFS > 0 {
		for r := range cfg.FlashSessions {
			s.streams = append(s.streams, newFlashSource(cfg, r))
		}
	}
	for i, st := range s.streams {
		if ev, ok := st.next(); ok {
			s.pq = append(s.pq, mergeEntry{ev: ev, stream: i})
		}
	}
	heap.Init(&s.pq)
	return s, nil
}

// faultStream is one suspended (process, target) iterator; every stream is
// internally time-ordered.
type faultStream interface {
	next() (workload.Event, bool)
}

// mergeEntry is one stream's lookahead event in the k-way merge heap.
type mergeEntry struct {
	ev     workload.Event
	stream int
}

// mergeHeap orders lookaheads by (time, stream index) — the key that
// reproduces the eager path's stable sort over the fixed concatenation
// order.
type mergeHeap []mergeEntry

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].ev.TimeS != h[j].ev.TimeS {
		return h[i].ev.TimeS < h[j].ev.TimeS
	}
	return h[i].stream < h[j].stream
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeEntry)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// renewalStream suspends renewal(): alternate exponential time-to-failure
// and time-to-recovery draws until either crosses the horizon.
type renewalStream struct {
	rng          *rand.Rand
	horizonS     float64
	mtbfS, mttrS float64
	mk           func(t float64, up bool) workload.Event
	t            float64
	up           bool // next emission is a recovery
	done         bool
}

func (r *renewalStream) next() (workload.Event, bool) {
	if r.done {
		return workload.Event{}, false
	}
	if !r.up {
		r.t += r.rng.ExpFloat64() * r.mtbfS
		if r.t >= r.horizonS {
			r.done = true
			return workload.Event{}, false
		}
		r.up = true
		return r.mk(r.t, false), true
	}
	r.t += r.rng.ExpFloat64() * r.mttrS
	if r.t >= r.horizonS {
		r.done = true // failed through the horizon: no recovery event
		return workload.Event{}, false
	}
	r.up = false
	return r.mk(r.t, true), true
}

// degradeStream suspends the degradation renewal loop: each incident draws
// its scale right after the onset time, restores to 1 after the repair.
type degradeStream struct {
	rng   *rand.Rand
	cfg   Config
	agent int
	t     float64
	up    bool
	done  bool
}

func (d *degradeStream) next() (workload.Event, bool) {
	if d.done {
		return workload.Event{}, false
	}
	base := workload.Event{Kind: workload.EventCapacityDegrade, Session: -1,
		Agent: d.agent, Region: regionOf(d.cfg.AgentRegion, d.agent), Rank: workload.RankFaults}
	if !d.up {
		d.t += d.rng.ExpFloat64() * d.cfg.DegradeMTBFS
		if d.t >= d.cfg.HorizonS {
			d.done = true
			return workload.Event{}, false
		}
		base.TimeS = d.t
		base.Scale = d.cfg.DegradeFloor + (1-d.cfg.DegradeFloor)*d.rng.Float64()
		d.up = true
		return base, true
	}
	d.t += d.rng.ExpFloat64() * d.cfg.DegradeMTTRS
	if d.t >= d.cfg.HorizonS {
		d.done = true
		return workload.Event{}, false
	}
	base.TimeS = d.t
	base.Scale = 1
	d.up = false
	return base, true
}

// flashSource suspends flashStream(): onsets, burst arrivals and their
// heap-recycled departures interleave exactly as the eager generator
// appends them. The mode field is the suspended program counter.
type flashSource struct {
	rng    *rand.Rand
	cfg    Config
	region int
	idle   []int
	deps   departureHeap

	mode flashMode
	t    float64 // current onset time
	j    int     // burst arrival index within the onset
	at   float64 // pending burst arrival time
	hold float64 // pending burst arrival's hold draw
}

type flashMode int

const (
	flashOnset        flashMode = iota // draw the next onset time
	flashFlushMarker                   // drain departures due before the onset, then emit the marker
	flashBurst                         // begin the next burst arrival (pool/intensity checks, draws)
	flashFlushArrival                  // drain departures due before the arrival, then emit it
	flashFinal                         // drain departures due before the horizon
	flashDone
)

func newFlashSource(cfg Config, r int) *flashSource {
	return &flashSource{
		rng:    subRNG(cfg.Seed, tagFlash, r),
		cfg:    cfg,
		region: r,
		idle:   append([]int(nil), cfg.FlashSessions[r]...),
	}
}

// flushOne pops the next departure due at or before limit, recycling its
// session; ok=false when none is due. Departures at or past the horizon are
// popped and recycled but never emitted, exactly like the eager flushUntil.
func (f *flashSource) flushOne(limit float64) (workload.Event, bool) {
	for len(f.deps) > 0 && f.deps[0].timeS <= limit {
		d := heap.Pop(&f.deps).(departure)
		if d.timeS >= f.cfg.HorizonS {
			continue
		}
		f.idle = append(f.idle, d.session)
		return workload.Event{TimeS: d.timeS, Kind: workload.EventDeparture,
			Session: d.session, Region: f.region, Rank: workload.RankFaults}, true
	}
	return workload.Event{}, false
}

func (f *flashSource) next() (workload.Event, bool) {
	for {
		switch f.mode {
		case flashOnset:
			f.t += f.rng.ExpFloat64() * f.cfg.FlashMTBFS
			if f.t >= f.cfg.HorizonS {
				f.mode = flashFinal
				continue
			}
			f.mode = flashFlushMarker
		case flashFlushMarker:
			if ev, ok := f.flushOne(f.t); ok {
				return ev, true
			}
			f.j = 0
			f.mode = flashBurst
			return workload.Event{TimeS: f.t, Kind: workload.EventFlashCrowd,
				Session: -1, Agent: -1, Region: f.region, Rank: workload.RankFaults}, true
		case flashBurst:
			// The pool check reads the pre-flush idle state, like the eager
			// loop condition; the flush below may still refill the pool in
			// time for the pop.
			if f.j >= f.cfg.FlashIntensity || len(f.idle) == 0 {
				f.mode = flashOnset
				continue
			}
			// Stagger burst arrivals by a millisecond each so the merged
			// schedule orders them deterministically after the marker.
			f.at = f.t + float64(f.j+1)*1e-3
			if f.at >= f.cfg.HorizonS {
				f.mode = flashOnset
				continue
			}
			// Draw the hold before the flush so the random sequence is a
			// pure function of the seed regardless of heap state.
			f.hold = f.rng.ExpFloat64() * f.cfg.FlashHoldS
			f.mode = flashFlushArrival
		case flashFlushArrival:
			if ev, ok := f.flushOne(f.at); ok {
				return ev, true
			}
			s := f.idle[0]
			f.idle = f.idle[1:]
			heap.Push(&f.deps, departure{timeS: f.at + f.hold, session: s})
			f.j++
			f.mode = flashBurst
			return workload.Event{TimeS: f.at, Kind: workload.EventArrival,
				Session: s, Region: f.region, Rank: workload.RankFaults}, true
		case flashFinal:
			if ev, ok := f.flushOne(f.cfg.HorizonS); ok {
				return ev, true
			}
			f.mode = flashDone
		default:
			return workload.Event{}, false
		}
	}
}
