// Package faults is the seeded, deterministic fault-injection engine: it
// turns a Config of per-process MTBF/MTTR parameters into a time-ordered
// schedule of workload fault events (agent failures, correlated regional
// outages, partial capacity degradations, flash-crowd arrival storms) that
// merges deterministically with the Poisson/diurnal churn schedules from
// internal/workload.
//
// Determinism contract: the same Config (seed included) yields a
// byte-identical event schedule, and Merge is a stable two-way merge, so
// (churn schedule, fault schedule) → merged schedule is a pure function.
// Each fault process draws from its own derived RNG stream (splitmix-mixed
// from the seed, a process tag and the target index), so enabling or
// disabling one process never perturbs another's draws.
package faults

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"vconf/internal/workload"
)

// Config parameterizes the fault schedule. Every process is a renewal
// process per target (agent or region): exponential time-to-failure with the
// given MTBF, then exponential time-to-recovery with the given MTTR. A zero
// MTBF disables that process.
type Config struct {
	Seed int64
	// HorizonS is the schedule length in virtual seconds (recovery events
	// beyond it are dropped: the target stays failed through the end).
	HorizonS float64
	// NumAgents is the fleet size the per-agent processes draw over.
	NumAgents int
	// AgentRegion maps agent → region. Required for regional outages and
	// flash crowds; nil disables both.
	AgentRegion []int

	// AgentMTBFS / AgentMTTRS drive whole-agent failures (capacity scale 0)
	// and recoveries, independently per agent.
	AgentMTBFS float64
	AgentMTTRS float64

	// RegionMTBFS / RegionMTTRS drive correlated whole-region outages,
	// independently per region.
	RegionMTBFS float64
	RegionMTTRS float64

	// DegradeMTBFS / DegradeMTTRS drive partial capacity degradations per
	// agent: each incident draws a scale uniformly in [DegradeFloor, 1) and
	// restores to 1 after the repair time.
	DegradeMTBFS float64
	DegradeMTTRS float64
	DegradeFloor float64

	// FlashMTBFS is the mean time between flash-crowd onsets per region.
	// Each onset emits an EventFlashCrowd marker followed by up to
	// FlashIntensity arrivals from that region's reserved session pool
	// (FlashSessions[r]); each burst session departs after an exponential
	// hold with mean FlashHoldS and returns to the pool. The pools must be
	// disjoint from the churn generator's session pool — the two schedules
	// are generated independently, so a shared session would double-arrive.
	FlashMTBFS     float64
	FlashIntensity int
	FlashHoldS     float64
	FlashSessions  [][]int
}

// numRegions derives the region count from the agent-region map.
func (c Config) numRegions() int {
	n := 0
	for _, r := range c.AgentRegion {
		if r+1 > n {
			n = r + 1
		}
	}
	return n
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.HorizonS <= 0 {
		return fmt.Errorf("faults: horizon must be positive")
	}
	if c.NumAgents < 1 {
		return fmt.Errorf("faults: need at least one agent")
	}
	if c.AgentRegion != nil && len(c.AgentRegion) != c.NumAgents {
		return fmt.Errorf("faults: agent-region map covers %d of %d agents", len(c.AgentRegion), c.NumAgents)
	}
	for a, r := range c.AgentRegion {
		if r < 0 {
			return fmt.Errorf("faults: agent %d mapped to negative region %d", a, r)
		}
	}
	if c.AgentMTBFS < 0 || c.RegionMTBFS < 0 || c.DegradeMTBFS < 0 || c.FlashMTBFS < 0 {
		return fmt.Errorf("faults: MTBFs must be non-negative")
	}
	if c.AgentMTBFS > 0 && c.AgentMTTRS <= 0 {
		return fmt.Errorf("faults: agent failures need a positive MTTR")
	}
	if c.RegionMTBFS > 0 {
		if c.RegionMTTRS <= 0 {
			return fmt.Errorf("faults: region outages need a positive MTTR")
		}
		if c.AgentRegion == nil {
			return fmt.Errorf("faults: region outages need an agent-region map")
		}
	}
	if c.DegradeMTBFS > 0 {
		if c.DegradeMTTRS <= 0 {
			return fmt.Errorf("faults: degradations need a positive MTTR")
		}
		if c.DegradeFloor < 0 || c.DegradeFloor >= 1 {
			return fmt.Errorf("faults: degrade floor %v outside [0, 1)", c.DegradeFloor)
		}
	}
	if c.FlashMTBFS > 0 {
		if c.FlashIntensity < 1 || c.FlashHoldS <= 0 {
			return fmt.Errorf("faults: flash crowds need intensity ≥ 1 and a positive hold")
		}
		if c.AgentRegion == nil {
			return fmt.Errorf("faults: flash crowds need an agent-region map")
		}
		if len(c.FlashSessions) > c.numRegions() {
			return fmt.Errorf("faults: %d flash pools for %d regions", len(c.FlashSessions), c.numRegions())
		}
	}
	return nil
}

// subRNG derives an independent stream per (process tag, target index) via a
// splitmix64 finalizer over the seed — enabling one process never shifts
// another's draws.
func subRNG(seed int64, tag, idx int) *rand.Rand {
	z := uint64(seed) + uint64(tag)*0x9e3779b97f4a7c15 + uint64(idx)*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// Process tags for subRNG.
const (
	tagAgentFail = iota + 1
	tagRegionOutage
	tagDegrade
	tagFlash
)

// Schedule generates the fault-event schedule: one renewal process per
// target per enabled process, merged into a single time-ordered stream.
// Deterministic: the same Config yields a byte-identical schedule.
func Schedule(cfg Config) ([]workload.Event, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var events []workload.Event

	if cfg.AgentMTBFS > 0 {
		for a := 0; a < cfg.NumAgents; a++ {
			rng := subRNG(cfg.Seed, tagAgentFail, a)
			renewal(rng, cfg.HorizonS, cfg.AgentMTBFS, cfg.AgentMTTRS, func(t float64, up bool) workload.Event {
				k := workload.EventAgentFail
				if up {
					k = workload.EventAgentRecover
				}
				return workload.Event{TimeS: t, Kind: k, Session: -1, Agent: a, Region: regionOf(cfg.AgentRegion, a)}
			}, &events)
		}
	}
	if cfg.RegionMTBFS > 0 {
		for r := 0; r < cfg.numRegions(); r++ {
			rng := subRNG(cfg.Seed, tagRegionOutage, r)
			r := r
			renewal(rng, cfg.HorizonS, cfg.RegionMTBFS, cfg.RegionMTTRS, func(t float64, up bool) workload.Event {
				k := workload.EventRegionOutage
				if up {
					k = workload.EventRegionRecover
				}
				return workload.Event{TimeS: t, Kind: k, Session: -1, Agent: -1, Region: r}
			}, &events)
		}
	}
	if cfg.DegradeMTBFS > 0 {
		for a := 0; a < cfg.NumAgents; a++ {
			rng := subRNG(cfg.Seed, tagDegrade, a)
			t := 0.0
			for {
				t += rng.ExpFloat64() * cfg.DegradeMTBFS
				if t >= cfg.HorizonS {
					break
				}
				scale := cfg.DegradeFloor + (1-cfg.DegradeFloor)*rng.Float64()
				events = append(events, workload.Event{TimeS: t, Kind: workload.EventCapacityDegrade,
					Session: -1, Agent: a, Region: regionOf(cfg.AgentRegion, a), Scale: scale})
				t += rng.ExpFloat64() * cfg.DegradeMTTRS
				if t >= cfg.HorizonS {
					break
				}
				events = append(events, workload.Event{TimeS: t, Kind: workload.EventCapacityDegrade,
					Session: -1, Agent: a, Region: regionOf(cfg.AgentRegion, a), Scale: 1})
			}
		}
	}
	if cfg.FlashMTBFS > 0 {
		for r := range cfg.FlashSessions {
			flashStream(cfg, r, &events)
		}
	}

	// Streams were appended in a fixed order, so a stable sort on time alone
	// keeps the schedule a pure function of the Config.
	sort.SliceStable(events, func(i, j int) bool { return events[i].TimeS < events[j].TimeS })
	// Incident ids number the fault-kind events in schedule order (1-based;
	// burst arrivals/departures stay 0 like ordinary churn). Assigned after
	// the sort so the id ↔ time order correlation survives any mix of
	// processes, giving telemetry a deterministic key to join alert
	// timelines and flight-recorder dumps against.
	seq := 0
	for i := range events {
		// Every event of the fault schedule — burst churn included — carries
		// the fault-side merge rank, so equal-timestamp ties against the
		// churn schedule resolve identically in Merge and in the lazy engine.
		events[i].Rank = workload.RankFaults
		if events[i].Kind.IsFault() {
			seq++
			events[i].Incident = seq
		}
	}
	return events, nil
}

func regionOf(agentRegion []int, a int) int {
	if agentRegion == nil {
		return -1
	}
	return agentRegion[a]
}

// renewal walks one fail/recover renewal process over the horizon.
func renewal(rng *rand.Rand, horizonS, mtbfS, mttrS float64, mk func(t float64, up bool) workload.Event, out *[]workload.Event) {
	t := 0.0
	for {
		t += rng.ExpFloat64() * mtbfS
		if t >= horizonS {
			return
		}
		*out = append(*out, mk(t, false))
		t += rng.ExpFloat64() * mttrS
		if t >= horizonS {
			return // failed through the horizon: no recovery event
		}
		*out = append(*out, mk(t, true))
	}
}

// flashStream generates region r's flash-crowd onsets: a marker event plus a
// burst of arrivals from the region's reserved pool, each with an
// exponential-hold departure (same idle-pool recycling as PoissonSchedule).
func flashStream(cfg Config, r int, out *[]workload.Event) {
	rng := subRNG(cfg.Seed, tagFlash, r)
	idle := append([]int(nil), cfg.FlashSessions[r]...)
	var deps departureHeap
	flushUntil := func(t float64) {
		for len(deps) > 0 && deps[0].timeS <= t {
			d := heap.Pop(&deps).(departure)
			if d.timeS >= cfg.HorizonS {
				continue
			}
			*out = append(*out, workload.Event{TimeS: d.timeS, Kind: workload.EventDeparture, Session: d.session, Region: r})
			idle = append(idle, d.session)
		}
	}
	t := 0.0
	for {
		t += rng.ExpFloat64() * cfg.FlashMTBFS
		if t >= cfg.HorizonS {
			break
		}
		flushUntil(t)
		*out = append(*out, workload.Event{TimeS: t, Kind: workload.EventFlashCrowd, Session: -1, Agent: -1, Region: r})
		for j := 0; j < cfg.FlashIntensity && len(idle) > 0; j++ {
			// Stagger burst arrivals by a millisecond each so the merged
			// schedule orders them deterministically after the marker.
			at := t + float64(j+1)*1e-3
			if at >= cfg.HorizonS {
				break
			}
			// Draw the hold before the next flush so the random sequence is a
			// pure function of the seed regardless of heap state.
			hold := rng.ExpFloat64() * cfg.FlashHoldS
			flushUntil(at)
			s := idle[0]
			idle = idle[1:]
			*out = append(*out, workload.Event{TimeS: at, Kind: workload.EventArrival, Session: s, Region: r})
			heap.Push(&deps, departure{timeS: at + hold, session: s})
		}
	}
	flushUntil(cfg.HorizonS)
}

// departure mirrors workload's internal departure heap for flash bursts.
type departure struct {
	timeS   float64
	session int
}

type departureHeap []departure

func (h departureHeap) Len() int            { return len(h) }
func (h departureHeap) Less(i, j int) bool  { return h[i].timeS < h[j].timeS }
func (h departureHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *departureHeap) Push(x interface{}) { *h = append(*h, x.(departure)) }
func (h *departureHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Merge interleaves two time-ordered schedules into one by the explicit
// (TimeS, Rank) order of workload.Event.Before — on equal timestamps the
// lower-ranked (churn) event precedes, and on full key ties a's event
// precedes b's. For the canonical Merge(churn, faults) call this is
// byte-identical to the historical stable a-first merge, but the order no
// longer depends on operand position: it is the same contract the
// virtual-clock engine (internal/sim) applies, so eager and lazy paths
// cannot diverge on ties. Both inputs must already be time-ordered
// (Schedule and PoissonSchedule both are).
func Merge(a, b []workload.Event) []workload.Event {
	out := make([]workload.Event, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if !b[j].Before(a[i]) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
