package confsim

import (
	"math"
	"testing"

	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/cost"
	"vconf/internal/model"
)

// buildScenario: 2 agents, 1 session of 2 users (u0 1080p → u1 demands
// 360p), users nearest different agents.
func buildScenario(t *testing.T) (*model.Scenario, *assign.Assignment) {
	t.Helper()
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r720, _ := rs.ByName("720p")
	r1080, _ := rs.ByName("1080p")
	for i := 0; i < 2; i++ {
		b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 4})
	}
	s := b.AddSession("s")
	u0 := b.AddUser("u0", s, r1080, nil)
	u1 := b.AddUser("u1", s, r720, nil)
	b.DemandFrom(u1, u0, r360)
	b.SetInterAgentDelays([][]float64{{0, 20}, {20, 0}})
	b.SetAgentUserDelays([][]float64{{5, 50}, {50, 5}})
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := assign.New(sc)
	if err := baseline.Assign(a, cost.DefaultParams(), cost.NewLedger(sc)); err != nil {
		t.Fatal(err)
	}
	return sc, a
}

func noJitter(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.JitterFrac = 0
	return cfg
}

func TestTickSteadyStateMatchesCostModel(t *testing.T) {
	sc, a := buildScenario(t)
	p := cost.DefaultParams()
	rt, err := New(sc, p, noJitter(1))
	if err != nil {
		t.Fatal(err)
	}
	rt.SetAssignment(a)
	tel, err := rt.Tick(1)
	if err != nil {
		t.Fatal(err)
	}
	want := p.SessionLoadOf(a, 0).TotalInterTraffic()
	if math.Abs(tel.SteadyMbps-want) > 1e-9 {
		t.Fatalf("steady = %v, want %v", tel.SteadyMbps, want)
	}
	if math.Abs(tel.InterAgentMbps-want) > 1e-9 {
		t.Fatalf("measured = %v, want %v (no jitter, no migration)", tel.InterAgentMbps, want)
	}
	wantDelay := cost.MeanConferencingDelayMS(a)
	if math.Abs(tel.MeanDelayMS-wantDelay) > 1e-9 {
		t.Fatalf("delay = %v, want %v", tel.MeanDelayMS, wantDelay)
	}
	if tel.ActiveSessions != 1 {
		t.Fatalf("active = %d, want 1", tel.ActiveSessions)
	}
	// 2 users → 2 flows × 30 fps × 1 s = 60 frames; 1 transcoded flow → 30.
	if tel.FramesRelayed != 60 || tel.FramesTranscoded != 30 {
		t.Fatalf("frames = %d/%d, want 60/30", tel.FramesRelayed, tel.FramesTranscoded)
	}
}

func TestMigrationDualFeedOverhead(t *testing.T) {
	sc, a := buildScenario(t)
	p := cost.DefaultParams()
	cfg := noJitter(2)
	cfg.DualFeedWindowS = 0.5 // stretch the window for measurable overlap
	rt, err := New(sc, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetAssignment(a)

	// Move user 1 to agent 0 at t=0; its 720p (5 Mbps) stream dual-feeds
	// for 0.5 s.
	if err := rt.Migrate(0, assign.Decision{Kind: assign.UserMove, User: 1, To: 0}); err != nil {
		t.Fatal(err)
	}
	tel, err := rt.Tick(1)
	if err != nil {
		t.Fatal(err)
	}
	// Overhead = 5 Mbps × 0.5 s / 1 s tick = 2.5 Mbps average.
	if math.Abs(tel.OverheadMbps-2.5) > 1e-9 {
		t.Fatalf("overhead = %v, want 2.5", tel.OverheadMbps)
	}
	if math.Abs(tel.InterAgentMbps-(tel.SteadyMbps+2.5)) > 1e-9 {
		t.Fatal("measured traffic must include the dual-feed overhead")
	}
	// The data-plane assignment tracked the migration.
	if got := rt.Assignment().UserAgent(1); got != 0 {
		t.Fatalf("user 1 at %d after migration, want 0", got)
	}
	// Next tick: feed expired, overhead gone.
	tel2, err := rt.Tick(1)
	if err != nil {
		t.Fatal(err)
	}
	if tel2.OverheadMbps != 0 {
		t.Fatalf("overhead after expiry = %v, want 0", tel2.OverheadMbps)
	}
	st := rt.Stats()
	if st.Migrations != 1 || st.FrozenFrames != 0 {
		t.Fatalf("stats = %+v; want 1 migration, 0 freezes", st)
	}
	if math.Abs(st.TotalOverheadMbpsS-2.5) > 1e-9 {
		t.Fatalf("total overhead = %v, want 2.5 Mbps·s", st.TotalOverheadMbpsS)
	}
}

func TestMigrationWithoutDualFeedFreezes(t *testing.T) {
	sc, a := buildScenario(t)
	cfg := noJitter(3)
	cfg.DualFeed = false
	rt, err := New(sc, cost.DefaultParams(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetAssignment(a)
	if err := rt.Migrate(0, assign.Decision{Kind: assign.UserMove, User: 0, To: 1}); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	// User 0 has 1 participant → 3 freeze frames.
	if st.FrozenFrames != 3 {
		t.Fatalf("frozen frames = %d, want 3", st.FrozenFrames)
	}
	if st.TotalOverheadMbpsS != 0 {
		t.Fatal("no dual feed ⇒ no overhead")
	}
	_ = sc
}

func TestFlowMigration(t *testing.T) {
	sc, a := buildScenario(t)
	rt, err := New(sc, cost.DefaultParams(), noJitter(4))
	if err != nil {
		t.Fatal(err)
	}
	rt.SetAssignment(a)
	f := model.Flow{Src: 0, Dst: 1}
	if err := rt.Migrate(0, assign.Decision{Kind: assign.FlowMove, Flow: f, To: 1}); err != nil {
		t.Fatal(err)
	}
	if m, _ := rt.Assignment().FlowAgent(f); m != 1 {
		t.Fatalf("flow transcoder = %d, want 1", m)
	}
	if err := rt.Migrate(0, assign.Decision{}); err == nil {
		t.Fatal("invalid decision accepted")
	}
}

func TestActivateDeactivateSession(t *testing.T) {
	sc, a := buildScenario(t)
	rt, err := New(sc, cost.DefaultParams(), noJitter(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.ActivateSession(0, a); err != nil {
		t.Fatal(err)
	}
	tel, err := rt.Tick(1)
	if err != nil {
		t.Fatal(err)
	}
	if tel.ActiveSessions != 1 || tel.SteadyMbps == 0 {
		t.Fatalf("activated session not measured: %+v", tel)
	}
	rt.DeactivateSession(0)
	tel, err = rt.Tick(1)
	if err != nil {
		t.Fatal(err)
	}
	if tel.ActiveSessions != 0 || tel.SteadyMbps != 0 {
		t.Fatalf("deactivated session still measured: %+v", tel)
	}
	// Incomplete assignment rejected.
	empty := assign.New(sc)
	if err := rt.ActivateSession(0, empty); err == nil {
		t.Fatal("incomplete session activation accepted")
	}
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	sc, a := buildScenario(t)
	cfg := DefaultConfig(7)
	cfg.JitterFrac = 0.02
	run := func() []float64 {
		rt, err := New(sc, cost.DefaultParams(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt.SetAssignment(a)
		var out []float64
		for i := 0; i < 50; i++ {
			tel, err := rt.Tick(1)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, tel.InterAgentMbps)
		}
		return out
	}
	r1, r2 := run(), run()
	steady := cost.DefaultParams().SessionLoadOf(a, 0).TotalInterTraffic()
	varied := false
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("jitter not deterministic at tick %d", i)
		}
		if math.Abs(r1[i]-steady) > steady*0.021 {
			t.Fatalf("jitter exceeds 2%%: %v vs steady %v", r1[i], steady)
		}
		if r1[i] != steady {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter never moved the measurement")
	}
}

func TestTickValidation(t *testing.T) {
	sc, _ := buildScenario(t)
	rt, err := New(sc, cost.DefaultParams(), noJitter(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Tick(0); err == nil {
		t.Fatal("zero tick accepted")
	}
	if _, err := rt.Tick(-1); err == nil {
		t.Fatal("negative tick accepted")
	}
	bad := DefaultConfig(1)
	bad.FrameRateFPS = 0
	if _, err := New(sc, cost.DefaultParams(), bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSegmentedFlowMigrationDefersToBoundary(t *testing.T) {
	sc, a := buildScenario(t)
	cfg := noJitter(11)
	cfg.SegmentSeconds = 2.0
	rt, err := New(sc, cost.DefaultParams(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetAssignment(a)
	f := model.Flow{Src: 0, Dst: 1}
	before, _ := rt.Assignment().FlowAgent(f)

	// Migrate mid-segment at t=0.5: boundary is t=2.
	if err := rt.Migrate(0.5, assign.Decision{Kind: assign.FlowMove, Flow: f, To: 1 - before}); err != nil {
		t.Fatal(err)
	}
	// Before the boundary the old transcoder still runs.
	if _, err := rt.Tick(1.0); err != nil { // now = 1.5
		t.Fatal(err)
	}
	if m, _ := rt.Assignment().FlowAgent(f); m != before {
		t.Fatalf("transcoder switched before the segment boundary: %d", m)
	}
	// Crossing the boundary executes the handoff.
	if _, err := rt.Tick(1.0); err != nil { // now = 2.5 > 2
		t.Fatal(err)
	}
	if m, _ := rt.Assignment().FlowAgent(f); m == before {
		t.Fatal("transcoder did not switch after the segment boundary")
	}
	st := rt.Stats()
	if st.Migrations != 1 || st.SegmentHandoffs != 1 {
		t.Fatalf("stats = %+v; want 1 migration, 1 handoff", st)
	}
	// Segmented transcoder moves carry no dual-feed overhead and no freezes.
	if st.TotalOverheadMbpsS != 0 || st.FrozenFrames != 0 {
		t.Fatalf("segmented handoff generated overhead/freezes: %+v", st)
	}
}

func TestSegmentedUserMoveStillDualFeeds(t *testing.T) {
	sc, a := buildScenario(t)
	cfg := noJitter(12)
	cfg.SegmentSeconds = 2.0
	cfg.DualFeedWindowS = 0.5
	rt, err := New(sc, cost.DefaultParams(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetAssignment(a)
	if err := rt.Migrate(0, assign.Decision{Kind: assign.UserMove, User: 1, To: 0}); err != nil {
		t.Fatal(err)
	}
	tel, err := rt.Tick(1)
	if err != nil {
		t.Fatal(err)
	}
	if tel.OverheadMbps == 0 {
		t.Fatal("user migration must dual-feed even with segmentation enabled")
	}
	// User moves take effect immediately.
	if got := rt.Assignment().UserAgent(1); got != 0 {
		t.Fatalf("user at %d, want 0 immediately", got)
	}
}

func TestSegmentBoundaryMath(t *testing.T) {
	tests := []struct{ t, seg, want float64 }{
		{0, 2, 2}, {0.5, 2, 2}, {2, 2, 4}, {3.9, 2, 4}, {4.0, 2, 6},
	}
	for _, tt := range tests {
		if got := nextSegmentBoundary(tt.t, tt.seg); got != tt.want {
			t.Fatalf("nextSegmentBoundary(%v, %v) = %v, want %v", tt.t, tt.seg, got, tt.want)
		}
	}
}

func TestNegativeSegmentRejected(t *testing.T) {
	sc, _ := buildScenario(t)
	cfg := noJitter(13)
	cfg.SegmentSeconds = -1
	if _, err := New(sc, cost.DefaultParams(), cfg); err == nil {
		t.Fatal("negative segment length accepted")
	}
}
