// Package confsim simulates the data plane of the cloud conferencing system:
// the substrate standing in for the paper's C++/OpenCV prototype on EC2
// (§V-A). Users emit frames at a fixed rate, agents relay and transcode them
// according to the live control-plane assignment, and assignment migrations
// run the paper's dual-feed protocol — the migrating client sends its stream
// to both the old and the new agent for a short interval (<30 ms in the
// paper), trading a small traffic overhead for zero streaming interruption.
//
// The runtime advances on a virtual clock in fixed ticks and reports
// *measured* observables: steady-state inter-agent traffic plus migration
// overhead plus small measurement jitter, mirroring the fluctuations the
// paper attributes to "perturbations on actual data and assignment
// migrations" (Fig. 4).
package confsim

import (
	"fmt"
	"math"

	"vconf/internal/assign"
	"vconf/internal/cost"
	"vconf/internal/model"
)

// Config tunes the runtime.
type Config struct {
	// FrameRateFPS is the video frame rate (paper: 30 fps).
	FrameRateFPS float64
	// DualFeed enables the migration protocol of §V-A: when true, a
	// migrating stream feeds old and new agents simultaneously for
	// DualFeedWindowS, so destinations never freeze; when false, each
	// migration freezes the affected destinations for FreezeFrames frames
	// ("a frozen screen for a short period as 2-3 frames are delayed").
	DualFeed bool
	// DualFeedWindowS is the dual-feed overlap duration in seconds
	// (paper: <30 ms on average).
	DualFeedWindowS float64
	// FreezeFrames is the per-migration freeze length without dual feed.
	FreezeFrames int
	// JitterFrac scales deterministic measurement jitter applied to traffic
	// and delay readings (e.g. 0.02 = ±2%). Zero disables jitter.
	JitterFrac float64
	// SegmentSeconds enables segmentation-based transcoding migration
	// (§IV-C, citing Jokhio et al. [15]): a transcoding-task migration
	// (FlowMove) takes effect only at the next segment boundary — the old
	// agent finishes the current segment, the new agent starts the next —
	// so no dual feed and no redundant traffic are needed for transcoder
	// moves. Zero disables segmentation (flow moves dual-feed like user
	// moves).
	SegmentSeconds float64
	// Seed drives the jitter sequence.
	Seed int64
}

// DefaultConfig matches the paper's prototype: 30 fps, dual-feed migration
// with a 30 ms overlap, 2% measurement jitter.
func DefaultConfig(seed int64) Config {
	return Config{
		FrameRateFPS:    30,
		DualFeed:        true,
		DualFeedWindowS: 0.03,
		FreezeFrames:    3,
		JitterFrac:      0.02,
		Seed:            seed,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.FrameRateFPS <= 0 {
		return fmt.Errorf("confsim: frame rate must be positive")
	}
	if c.DualFeedWindowS < 0 || c.JitterFrac < 0 || c.FreezeFrames < 0 || c.SegmentSeconds < 0 {
		return fmt.Errorf("confsim: negative config value")
	}
	return nil
}

// dualFeed is one in-flight migration overlap.
type dualFeed struct {
	startS float64
	untilS float64
	mbps   float64 // redundant stream bitrate during the overlap
}

// Runtime is the data-plane simulator. Not safe for concurrent use.
type Runtime struct {
	sc     *model.Scenario
	params cost.Params
	cfg    Config

	cur    *assign.Assignment
	active map[model.SessionID]bool

	now       float64
	feeds     []dualFeed
	jitterSeq uint64
	// pendingFlows are transcoder migrations deferred to the next segment
	// boundary (SegmentSeconds > 0).
	pendingFlows []pendingFlowMove

	// Cumulative counters.
	framesRelayed     int64
	framesTranscoded  int64
	frozenFrames      int64
	migrations        int64
	segmentHandoffs   int64
	overheadMbpsTicks float64 // ∫ overhead dt, for reporting average overhead
}

// pendingFlowMove is a transcoder migration waiting for a segment boundary.
type pendingFlowMove struct {
	effectiveAtS float64
	decision     assign.Decision
}

// New creates a runtime over the scenario. The assignment starts empty;
// attach sessions with ActivateSession or install a full one with
// SetAssignment.
func New(sc *model.Scenario, params cost.Params, cfg Config) (*Runtime, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Runtime{
		sc:     sc,
		params: params,
		cfg:    cfg,
		cur:    assign.New(sc),
		active: make(map[model.SessionID]bool, sc.NumSessions()),
	}, nil
}

// SetAssignment installs a full assignment snapshot; every complete session
// becomes active.
func (r *Runtime) SetAssignment(a *assign.Assignment) {
	r.cur = a.Clone()
	for s := 0; s < r.sc.NumSessions(); s++ {
		r.active[model.SessionID(s)] = r.cur.SessionComplete(model.SessionID(s))
	}
}

// ActivateSession marks a (complete) session live on the data plane.
func (r *Runtime) ActivateSession(s model.SessionID, a *assign.Assignment) error {
	if !a.SessionComplete(s) {
		return fmt.Errorf("confsim: session %d assignment incomplete", s)
	}
	for _, u := range r.sc.Session(s).Users {
		r.cur.SetUserAgent(u, a.UserAgent(u))
	}
	for _, f := range a.SessionFlows(s) {
		m, _ := a.FlowAgent(f)
		if err := r.cur.SetFlowAgent(f, m); err != nil {
			return err
		}
	}
	r.active[s] = true
	return nil
}

// DeactivateSession removes a session from the data plane.
func (r *Runtime) DeactivateSession(s model.SessionID) {
	r.active[s] = false
	for _, u := range r.sc.Session(s).Users {
		r.cur.SetUserAgent(u, assign.Unassigned)
	}
	for _, f := range r.cur.SessionFlows(s) {
		_ = r.cur.SetFlowAgent(f, assign.Unassigned)
	}
}

// Migrate applies a control-plane decision to the data plane at virtual time
// nowS, running the dual-feed protocol. The affected stream's bitrate is
// charged as redundant traffic for the overlap window (the paper's
// "migration cost"); without dual feed, destination users freeze instead.
func (r *Runtime) Migrate(nowS float64, d assign.Decision) error {
	r.advance(nowS)
	var streamMbps float64
	var affectedDst int
	switch d.Kind {
	case assign.UserMove:
		u := r.sc.User(d.User)
		streamMbps = r.sc.Reps.Bitrate(u.Upstream)
		affectedDst = len(r.sc.Participants(d.User))
	case assign.FlowMove:
		if r.cfg.SegmentSeconds > 0 {
			// Segmentation-based transcoding migration: the old agent
			// finishes the current segment; the transcoder switches at the
			// next boundary with no redundant transfer and no freeze.
			boundary := nextSegmentBoundary(nowS, r.cfg.SegmentSeconds)
			r.pendingFlows = append(r.pendingFlows, pendingFlowMove{
				effectiveAtS: boundary,
				decision:     d,
			})
			r.migrations++
			return nil
		}
		src := r.sc.User(d.Flow.Src)
		streamMbps = r.sc.Reps.Bitrate(src.Upstream)
		affectedDst = 1
	default:
		return fmt.Errorf("confsim: invalid migration decision")
	}
	if _, err := r.cur.Apply(d); err != nil {
		return fmt.Errorf("confsim: migrate: %w", err)
	}
	r.migrations++
	if r.cfg.DualFeed {
		r.feeds = append(r.feeds, dualFeed{startS: nowS, untilS: nowS + r.cfg.DualFeedWindowS, mbps: streamMbps})
	} else {
		r.frozenFrames += int64(r.cfg.FreezeFrames * affectedDst)
	}
	return nil
}

// nextSegmentBoundary returns the first segment boundary strictly after t.
func nextSegmentBoundary(t, segment float64) float64 {
	n := math.Floor(t/segment) + 1
	return n * segment
}

// Telemetry is one tick's measured observables.
type Telemetry struct {
	TimeS float64
	// InterAgentMbps is the measured inter-agent traffic: steady state per
	// the current assignment, plus dual-feed overhead, plus jitter.
	InterAgentMbps float64
	// SteadyMbps is the jitter-free control-plane traffic (for tests).
	SteadyMbps float64
	// OverheadMbps is the dual-feed redundant traffic active this tick.
	OverheadMbps float64
	// MeanDelayMS is the measured conferencing delay (with jitter).
	MeanDelayMS float64
	// FramesRelayed counts frames forwarded across all flows this tick.
	FramesRelayed int64
	// FramesTranscoded counts frames that passed a transcoder this tick.
	FramesTranscoded int64
	// ActiveSessions is the number of live sessions.
	ActiveSessions int
}

// Tick advances the runtime by dtS seconds and measures the system.
func (r *Runtime) Tick(dtS float64) (Telemetry, error) {
	if dtS <= 0 {
		return Telemetry{}, fmt.Errorf("confsim: tick duration must be positive, got %v", dtS)
	}
	start := r.now

	// Dual-feed overhead active during [start, start+dt], measured before
	// the clock advance garbage-collects expired feeds. A feed created
	// mid-window (Migrate may be called with a timestamp before the current
	// tick boundary) only counts its true overlap.
	overhead := 0.0
	for _, f := range r.feeds {
		if f.untilS > start {
			overlap := minFloat(f.untilS, start+dtS) - maxFloat(f.startS, start)
			if overlap > 0 {
				overhead += f.mbps * overlap / dtS
			}
		}
	}
	r.overheadMbpsTicks += overhead * dtS

	r.advance(start + dtS)

	var steady, delayAcc float64
	var users int
	var flows, transcodedFlows int
	for s := 0; s < r.sc.NumSessions(); s++ {
		sid := model.SessionID(s)
		if !r.active[sid] {
			continue
		}
		sl := r.params.SessionLoadOf(r.cur, sid)
		steady += sl.TotalInterTraffic()
		sd := cost.SessionDelaysOf(r.cur, sid)
		n := r.sc.Session(sid).Size()
		delayAcc += sd.MeanOfMaxMS * float64(n)
		users += n
		flows += n * (n - 1)
		for _, u := range r.sc.Session(sid).Users {
			for _, v := range r.sc.Participants(u) {
				if r.sc.Theta(u, v) {
					transcodedFlows++
				}
			}
		}
	}

	framesPerFlow := int64(r.cfg.FrameRateFPS * dtS)
	relayed := int64(flows) * framesPerFlow
	transcoded := int64(transcodedFlows) * framesPerFlow
	r.framesRelayed += relayed
	r.framesTranscoded += transcoded

	meanDelay := 0.0
	if users > 0 {
		meanDelay = delayAcc / float64(users)
	}

	tel := Telemetry{
		TimeS:            r.now,
		SteadyMbps:       steady,
		OverheadMbps:     overhead,
		InterAgentMbps:   (steady + overhead) * (1 + r.jitter()),
		MeanDelayMS:      meanDelay * (1 + r.jitter()),
		FramesRelayed:    relayed,
		FramesTranscoded: transcoded,
	}
	for _, on := range r.active {
		if on {
			tel.ActiveSessions++
		}
	}
	return tel, nil
}

// Stats reports cumulative data-plane counters.
type Stats struct {
	FramesRelayed    int64
	FramesTranscoded int64
	FrozenFrames     int64
	Migrations       int64
	// SegmentHandoffs counts transcoder migrations executed at segment
	// boundaries (SegmentSeconds > 0).
	SegmentHandoffs int64
	// TotalOverheadMbpsS is ∫ dual-feed overhead dt (Mbps·s ≈ Mb of
	// redundant transfer / 1).
	TotalOverheadMbpsS float64
}

// Stats returns the cumulative counters.
func (r *Runtime) Stats() Stats {
	return Stats{
		FramesRelayed:    r.framesRelayed,
		FramesTranscoded: r.framesTranscoded,
		FrozenFrames:     r.frozenFrames,
		Migrations:       r.migrations,
		SegmentHandoffs:  r.segmentHandoffs,

		TotalOverheadMbpsS: r.overheadMbpsTicks,
	}
}

// Assignment returns a snapshot of the data plane's current assignment.
func (r *Runtime) Assignment() *assign.Assignment { return r.cur.Clone() }

// Now returns the runtime's virtual time.
func (r *Runtime) Now() float64 { return r.now }

func (r *Runtime) advance(toS float64) {
	if toS > r.now {
		r.now = toS
	}
	// Garbage-collect expired feeds.
	kept := r.feeds[:0]
	for _, f := range r.feeds {
		if f.untilS > r.now {
			kept = append(kept, f)
		}
	}
	r.feeds = kept
	// Execute segment handoffs whose boundary has passed.
	pending := r.pendingFlows[:0]
	for _, pm := range r.pendingFlows {
		if pm.effectiveAtS <= r.now {
			if _, err := r.cur.Apply(pm.decision); err == nil {
				r.segmentHandoffs++
			}
		} else {
			pending = append(pending, pm)
		}
	}
	r.pendingFlows = pending
}

// jitter returns a deterministic pseudo-random value in
// [−JitterFrac, +JitterFrac].
func (r *Runtime) jitter() float64 {
	if r.cfg.JitterFrac == 0 {
		return 0
	}
	r.jitterSeq++
	z := uint64(r.cfg.Seed)*0x9e3779b9 + r.jitterSeq*0xbf58476d1ce4e5b9
	z ^= z >> 29
	z *= 0x94d049bb133111eb
	z ^= z >> 32
	u := float64(z>>11) / float64(1<<53) // [0,1)
	return (2*u - 1) * r.cfg.JitterFrac
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
