package pipeline

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// recorder collects stage entries under a lock so tests can assert on
// ordering across goroutines.
type recorder struct {
	mu  sync.Mutex
	log []string
}

func (r *recorder) add(s string) {
	r.mu.Lock()
	r.log = append(r.log, s)
	r.mu.Unlock()
}

func (r *recorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.log...)
}

// submitN submits n trivially disjoint events (trigger i, footprint
// {sessions: {i}, shards: {i}}) that log their stages.
func submitN(t *testing.T, s *Scheduler, rec *recorder, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		i := i
		_, err := s.Submit(Exec{
			Trigger: int32(i),
			Admit: func() (Footprint, error) {
				rec.add(fmt.Sprintf("admit-%d", i))
				return Footprint{Sessions: []int32{int32(i)}, Shards: []int32{int32(i)}}, nil
			},
			Reopt:  func() error { rec.add(fmt.Sprintf("reopt-%d", i)); return nil },
			Retire: func() { rec.add(fmt.Sprintf("retire-%d", i)) },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestFootprintConflicts(t *testing.T) {
	a := Footprint{Sessions: []int32{3, 1}, Shards: []int32{7, 2}}
	a.Normalize()
	if a.Sessions[0] != 1 || a.Shards[0] != 2 {
		t.Fatalf("normalize did not sort: %+v", a)
	}
	cases := []struct {
		b    Footprint
		want bool
	}{
		{Footprint{Sessions: []int32{2}, Shards: []int32{4}}, false},
		{Footprint{Sessions: []int32{3}, Shards: []int32{}}, true},
		{Footprint{Sessions: []int32{}, Shards: []int32{7}}, true},
		{Footprint{}, false},
	}
	for i, tc := range cases {
		tc.b.Normalize()
		if got := a.Conflicts(tc.b); got != tc.want {
			t.Fatalf("case %d: conflicts=%v, want %v", i, got, tc.want)
		}
	}
	if !a.ContainsSession(3) || a.ContainsSession(4) {
		t.Fatal("ContainsSession wrong")
	}
}

// TestSerialAtCapOne pins the degenerate mode: with MaxInFlight=1 every
// event runs admit → reopt → retire to completion, in submission order,
// with no interleaving.
func TestSerialAtCapOne(t *testing.T) {
	s, err := New(Config{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	const n = 8
	submitN(t, s, rec, n)
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	log := rec.snapshot()
	var want []string
	for i := 0; i < n; i++ {
		want = append(want, fmt.Sprintf("admit-%d", i), fmt.Sprintf("reopt-%d", i), fmt.Sprintf("retire-%d", i))
	}
	if len(log) != len(want) {
		t.Fatalf("log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("position %d: got %q, want %q (full log %v)", i, log[i], want[i], log)
		}
	}
}

// TestRetireOrder pins that retires follow submission order even when
// execution completes out of order.
func TestRetireOrder(t *testing.T) {
	s, err := New(Config{MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	release := make(chan struct{})
	// Event 0 blocks until released; events 1..3 are free to finish first.
	_, err = s.Submit(Exec{
		Trigger: 0,
		Admit:   func() (Footprint, error) { return Footprint{Sessions: []int32{0}}, nil },
		Reopt:   func() error { <-release; return nil },
		Retire:  func() { rec.add("retire-0") },
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{}, 3)
	for i := 1; i < 4; i++ {
		i := i
		if _, err := s.Submit(Exec{
			Trigger: int32(i),
			Admit:   func() (Footprint, error) { return Footprint{Sessions: []int32{int32(i)}}, nil },
			Reopt:   func() error { done <- struct{}{}; return nil },
			Retire:  func() { rec.add(fmt.Sprintf("retire-%d", i)) },
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		<-done // all later events finished their reopt
	}
	if got := rec.snapshot(); len(got) != 0 {
		t.Fatalf("events retired before the stream head: %v", got)
	}
	close(release)
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	got := rec.snapshot()
	want := []string{"retire-0", "retire-1", "retire-2", "retire-3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("retire order %v, want %v", got, want)
		}
	}
}

// TestConflictQueuesBehindSpecificEvent pins the DAG edge: an event whose
// footprint overlaps an in-flight event waits for it, while a disjoint
// event proceeds concurrently.
func TestConflictQueuesBehindSpecificEvent(t *testing.T) {
	s, err := New(Config{MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	aRunning, aDone := false, false
	aStarted := make(chan struct{})
	release := make(chan struct{})
	disjointRan := make(chan struct{})

	// Event A: owns session 1 / shard 0, blocks until released.
	if _, err := s.Submit(Exec{
		Trigger: 1,
		Admit:   func() (Footprint, error) { return Footprint{Sessions: []int32{1}, Shards: []int32{0}}, nil },
		Reopt: func() error {
			mu.Lock()
			aRunning = true
			mu.Unlock()
			close(aStarted)
			<-release
			mu.Lock()
			aRunning = false
			aDone = true
			mu.Unlock()
			return nil
		},
		Retire: func() {},
	}); err != nil {
		t.Fatal(err)
	}
	<-aStarted

	// Event B: shares shard 0 with A → must wait for A.
	if _, err := s.Submit(Exec{
		Trigger: 2,
		Admit:   func() (Footprint, error) { return Footprint{Sessions: []int32{2}, Shards: []int32{0}}, nil },
		Reopt: func() error {
			mu.Lock()
			defer mu.Unlock()
			if aRunning || !aDone {
				t.Error("conflicting event ran while its predecessor was in flight")
			}
			return nil
		},
		Retire: func() {},
	}); err != nil {
		t.Fatal(err)
	}

	// Event C: disjoint → runs while A is still blocked.
	if _, err := s.Submit(Exec{
		Trigger: 3,
		Admit:   func() (Footprint, error) { return Footprint{Sessions: []int32{3}, Shards: []int32{9}}, nil },
		Reopt: func() error {
			mu.Lock()
			running := aRunning
			mu.Unlock()
			if !running {
				t.Error("disjoint event did not overlap the in-flight event")
			}
			close(disjointRan)
			return nil
		},
		Retire: func() {},
	}); err != nil {
		t.Fatal(err)
	}

	select {
	case <-disjointRan:
	case <-time.After(5 * time.Second):
		t.Fatal("disjoint event never ran while predecessor was in flight")
	}
	// Hold A in flight until B's execution goroutine has registered its
	// conflict wait, so the ReoptWaits assertion below is deterministic.
	for deadline := time.Now().Add(5 * time.Second); s.Stats().ReoptWaits == 0 && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	st := s.Stats()
	if st.ReoptWaits != 1 {
		t.Fatalf("ReoptWaits = %d, want 1 (only the conflicting event)", st.ReoptWaits)
	}
}

// TestTriggerGuard pins that an event cannot admit while an in-flight
// event's footprint claims its trigger session.
func TestTriggerGuard(t *testing.T) {
	s, err := New(Config{MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	claimDone := false
	started := make(chan struct{})
	release := make(chan struct{})
	// Event A claims sessions {1, 5} (5 as a touched session).
	if _, err := s.Submit(Exec{
		Trigger: 1,
		Admit:   func() (Footprint, error) { return Footprint{Sessions: []int32{1, 5}}, nil },
		Reopt: func() error {
			close(started)
			<-release
			mu.Lock()
			claimDone = true
			mu.Unlock()
			return nil
		},
		Retire: func() {},
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	// Event B triggers session 5 → its admission must wait for A.
	if _, err := s.Submit(Exec{
		Trigger: 5,
		Admit: func() (Footprint, error) {
			mu.Lock()
			defer mu.Unlock()
			if !claimDone {
				t.Error("admission mutated a session still claimed by an in-flight event")
			}
			return Footprint{Sessions: []int32{5}}, nil
		},
		Reopt:  func() error { return nil },
		Retire: func() {},
	}); err != nil {
		t.Fatal(err)
	}
	// Give the dispatcher a chance to (incorrectly) admit B early.
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if st := s.Stats(); st.AdmissionStalls == 0 {
		t.Fatal("trigger-guarded admission did not count as a stall")
	}
}

// TestErrorAbortsStream pins error semantics: an admission error stops
// further admissions, pending events are discarded with their retire
// channels closed, and Drain surfaces the error.
func TestErrorAbortsStream(t *testing.T) {
	s, err := New(Config{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	boom := fmt.Errorf("boom")
	if _, err := s.Submit(Exec{
		Trigger: 0,
		Admit:   func() (Footprint, error) { return Footprint{}, boom },
		Reopt:   func() error { rec.add("reopt-0"); return nil },
		Retire:  func() { rec.add("retire-0") },
	}); err != nil {
		t.Fatal(err)
	}
	ch, err := s.Submit(Exec{
		Trigger: 1,
		Admit:   func() (Footprint, error) { rec.add("admit-1"); return Footprint{}, nil },
		Reopt:   func() error { return nil },
		Retire:  func() { rec.add("retire-1") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Drain(); got != boom {
		t.Fatalf("Drain = %v, want %v", got, boom)
	}
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("discarded event's retire channel never closed")
	}
	if log := rec.snapshot(); len(log) != 0 {
		t.Fatalf("aborted stream still ran stages: %v", log)
	}
	// Drain cleared the error: the scheduler recovers and runs new events.
	if _, err := s.Submit(Exec{
		Trigger: 2,
		Admit:   func() (Footprint, error) { rec.add("admit-2"); return Footprint{}, nil },
		Reopt:   func() error { return nil },
		Retire:  func() { rec.add("retire-2") },
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("recovered stream returned stale error: %v", err)
	}
	if log := rec.snapshot(); len(log) != 2 || log[0] != "admit-2" || log[1] != "retire-2" {
		t.Fatalf("post-recovery event did not run: %v", log)
	}
	s.Close()
	if _, err := s.Submit(Exec{}); err == nil {
		t.Fatal("submit after close succeeded")
	}
}

// TestAbortRetiresStrictPrefix pins the abort contract: when event k
// fails, nothing from seq k on retires — even a later event that was
// admitted out of order and finished executing — so the retired stream is
// always a strict prefix of the submission order, like the serial path.
func TestAbortRetiresStrictPrefix(t *testing.T) {
	s, err := New(Config{MaxInFlight: 3})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	release := make(chan struct{})
	boom := fmt.Errorf("boom")

	// Event 0: owns session 1, blocks in reopt until released.
	if _, err := s.Submit(Exec{
		Trigger: 1,
		Admit:   func() (Footprint, error) { return Footprint{Sessions: []int32{1}}, nil },
		Reopt:   func() error { <-release; return nil },
		Retire:  func() { rec.add("retire-0") },
	}); err != nil {
		t.Fatal(err)
	}
	// Event 1: same trigger → admission waits for event 0, then fails.
	if _, err := s.Submit(Exec{
		Trigger: 1,
		Admit:   func() (Footprint, error) { return Footprint{}, boom },
		Reopt:   func() error { return nil },
		Retire:  func() { rec.add("retire-1") },
	}); err != nil {
		t.Fatal(err)
	}
	// Event 2: disjoint → admitted out of order and completes while event 0
	// is still blocked; its retire must be suppressed by event 1's abort.
	ran := make(chan struct{})
	if _, err := s.Submit(Exec{
		Trigger: 3,
		Admit:   func() (Footprint, error) { return Footprint{Sessions: []int32{3}}, nil },
		Reopt:   func() error { close(ran); return nil },
		Retire:  func() { rec.add("retire-2") },
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("disjoint event never ran out of order")
	}
	close(release)
	if got := s.Drain(); got != boom {
		t.Fatalf("Drain = %v, want %v", got, boom)
	}
	s.Close()
	log := rec.snapshot()
	if len(log) != 1 || log[0] != "retire-0" {
		t.Fatalf("aborted stream retired %v, want strict prefix [retire-0]", log)
	}
}

// TestStatsPeaks sanity-checks the queue-depth and in-flight high-water
// marks on a burst of disjoint events.
func TestStatsPeaks(t *testing.T) {
	s, err := New(Config{MaxInFlight: 3, SubmitWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(3)
	for i := 0; i < 8; i++ {
		i := i
		first := i < 3
		if _, err := s.Submit(Exec{
			Trigger: int32(i),
			Admit: func() (Footprint, error) {
				return Footprint{Sessions: []int32{int32(i)}, Shards: []int32{int32(i)}}, nil
			},
			Reopt: func() error {
				if first {
					started.Done()
					<-release
				}
				return nil
			},
			Retire: func() {},
		}); err != nil {
			t.Fatal(err)
		}
	}
	started.Wait() // cap reached: 3 events blocked in flight, rest queued
	close(release)
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	st := s.Stats()
	if st.Submitted != 8 || st.Retired != 8 {
		t.Fatalf("submitted/retired %d/%d, want 8/8", st.Submitted, st.Retired)
	}
	if st.InFlightPeak != 3 {
		t.Fatalf("InFlightPeak = %d, want 3", st.InFlightPeak)
	}
	if st.QueueDepthPeak < 3 {
		t.Fatalf("QueueDepthPeak = %d, want ≥ 3", st.QueueDepthPeak)
	}
	if st.AdmissionStalls == 0 {
		t.Fatal("cap-blocked admissions did not count as stalls")
	}
}

// TestOnAdmitMirrorsAdmissionStalls pins the OnAdmit hook contract: it
// fires exactly once per admitted event, immediately before Admit, and its
// stalled flag is exactly the condition that bumps Stats.AdmissionStalls —
// so a consumer summing the flags reconciles with the scheduler's counter.
func TestOnAdmitMirrorsAdmissionStalls(t *testing.T) {
	s, err := New(Config{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var flags []bool
	onAdmit := func(stalled bool) {
		mu.Lock()
		flags = append(flags, stalled)
		mu.Unlock()
	}
	release := make(chan struct{})
	started := make(chan struct{})
	if _, err := s.Submit(Exec{
		Trigger: 0,
		OnAdmit: onAdmit,
		Admit:   func() (Footprint, error) { return Footprint{Sessions: []int32{0}}, nil },
		Reopt:   func() error { close(started); <-release; return nil },
		Retire:  func() {},
	}); err != nil {
		t.Fatal(err)
	}
	<-started // event 0 holds the in-flight slot
	// Event 1 must now stall on the in-flight cap before admission.
	if _, err := s.Submit(Exec{
		Trigger: 1,
		OnAdmit: onAdmit,
		Admit:   func() (Footprint, error) { return Footprint{Sessions: []int32{1}}, nil },
		Reopt:   func() error { return nil },
		Retire:  func() {},
	}); err != nil {
		t.Fatal(err)
	}
	// Give the dispatcher its wake-up from Submit: it must scan past event 1
	// (marking it stalled at the full in-flight cap) before event 0 is
	// released. The sleep only makes the stall deterministic; the
	// flags-vs-stats reconciliation below holds regardless of timing.
	time.Sleep(100 * time.Millisecond)
	close(release)
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(flags) != 2 {
		t.Fatalf("OnAdmit fired %d times, want 2 (once per event)", len(flags))
	}
	stalls := 0
	for _, f := range flags {
		if f {
			stalls++
		}
	}
	st := s.Stats()
	if stalls != st.AdmissionStalls {
		t.Fatalf("OnAdmit stalled flags sum %d, Stats.AdmissionStalls %d", stalls, st.AdmissionStalls)
	}
	if flags[0] {
		t.Fatal("first event reported stalled: it admitted into an empty scheduler")
	}
	if !flags[1] {
		t.Fatal("second event reported unstalled: it waited on the in-flight cap")
	}
}
