// Package pipeline implements the dependency-aware churn-event scheduler:
// the concurrency layer that lets the orchestrator keep several events in
// flight at once instead of barriering per event.
//
// The paper's online setting is a stream of join/leave events, each
// triggering incremental re-optimization of a handful of sessions. Because
// Φ = Σ_s Φ_s decomposes by session and capacity is the only cross-session
// coupling, two events whose state surfaces are disjoint are fully
// independent: nothing one reads or writes can affect the other. This
// package schedules on exactly that structure. Each submitted event carries
// a conflict Footprint — the session set it will exclusively own during
// re-optimization, plus the capacity-ledger stripes its walks can read or
// its commits can touch — and the scheduler:
//
//  1. admits an event (runs its serialized state-mutating admission, which
//     finalizes the footprint) as soon as its trigger session is unclaimed
//     and the in-flight cap allows, possibly out of submission order;
//  2. starts the event's re-optimization immediately when its footprint is
//     disjoint from every in-flight event, and otherwise queues it behind
//     exactly the events it conflicts with (a ticket-ordered wait: an event
//     defers only to conflicting events admitted before it, so the implicit
//     DAG is acyclic and every wait resolves);
//  3. retires events strictly in submission order, so the *shape* of
//     reporting — which event retires when, relative to its peers — is
//     deterministic no matter how execution interleaved. (Values sampled
//     at retire time may still reflect later events' admissions at
//     MaxInFlight > 1; only cap 1 pins them bit-for-bit.)
//
// Footprints are allowed to under-estimate the *stripe* set (capacity
// safety never depends on them: stripe locks plus commit-time validation in
// internal/shard make concurrent commits safe, and the epoch-stamped
// Conflict/retry path absorbs stale snapshots). The *session* set is the
// safety-critical half: the client must guarantee an event's execution
// touches only sessions in its footprint, and the scheduler guarantees two
// events owning a common session never execute concurrently.
//
// With MaxInFlight = 1 the scheduler degenerates to strict serial
// execution: admit → re-optimize → retire, one event at a time, in
// submission order — which is what makes the pipelined orchestrator
// bit-identical to the serial path at cap 1 (see the orchestrator's
// differential tests).
package pipeline

import (
	"fmt"
	"slices"
	"sync"
)

// Footprint is the conflict surface of one event. Both sets are treated as
// unordered ID sets; Normalize sorts them so Conflicts can merge-scan.
type Footprint struct {
	// Sessions are the session IDs the event exclusively owns while
	// executing: the trigger plus its re-optimization set. Safety-critical —
	// the event must touch no session outside this set.
	Sessions []int32
	// Shards are the capacity-ledger stripe indices the event's walks can
	// read or its commits can touch. Advisory — an under-estimate costs
	// commit conflicts/retries, never correctness.
	Shards []int32
}

// Normalize sorts both sets ascending.
func (f *Footprint) Normalize() {
	slices.Sort(f.Sessions)
	slices.Sort(f.Shards)
}

// Conflicts reports whether two normalized footprints overlap in either
// set.
func (f Footprint) Conflicts(g Footprint) bool {
	return intersects(f.Sessions, g.Sessions) || intersects(f.Shards, g.Shards)
}

// ContainsSession reports whether the (normalized) session set contains s.
func (f Footprint) ContainsSession(s int32) bool {
	for _, x := range f.Sessions {
		if x == s {
			return true
		}
		if x > s {
			return false
		}
	}
	return false
}

// intersects merge-scans two ascending sets.
func intersects(a, b []int32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Exec is one event's work, supplied at Submit. The scheduler calls the
// three stages without holding its own lock, so they may freely take client
// locks.
type Exec struct {
	// Trigger is the session whose state the admission stage mutates. An
	// event's admission is deferred while its trigger is claimed by an
	// earlier un-admitted event with the same trigger or by any in-flight
	// event's footprint.
	Trigger int32
	// Admit applies the event's state mutation (bootstrap/release) and
	// derives its footprint. Admissions are serialized — the scheduler never
	// runs two concurrently — but may run while other events' Reopt stages
	// are executing, and may run out of submission order. An error aborts
	// the stream (no further admissions; see Drain).
	Admit func() (Footprint, error)
	// OnAdmit, when non-nil, is called immediately before Admit with the
	// event's stall flag: true iff this admission waited at least once —
	// exactly the condition counted by Stats.AdmissionStalls, so per-event
	// observers reconcile with the aggregate counter. Called on the
	// dispatcher goroutine, outside the scheduler lock.
	OnAdmit func(stalled bool)
	// Reopt runs the event's re-optimization stage. It may run concurrently
	// with other events' Reopt stages whose footprints are disjoint, and
	// must touch only sessions in the event's footprint.
	Reopt func() error
	// Retire runs after the event and every earlier event have finished;
	// retires are serialized in submission order.
	Retire func()
}

// Config tunes the scheduler.
type Config struct {
	// MaxInFlight bounds the events between admission and re-optimization
	// completion. 1 degenerates to strict serial execution in submission
	// order. Defaults to 1.
	MaxInFlight int
	// SubmitWindow bounds the un-admitted submissions buffered before
	// Submit blocks (backpressure, and what makes the queue-depth telemetry
	// meaningful). Defaults to 4×MaxInFlight.
	SubmitWindow int
}

func (c Config) withDefaults() (Config, error) {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 1
	}
	if c.SubmitWindow == 0 {
		c.SubmitWindow = 4 * c.MaxInFlight
	}
	if c.MaxInFlight < 1 || c.SubmitWindow < 1 {
		return c, fmt.Errorf("pipeline: invalid config: max in-flight %d, submit window %d",
			c.MaxInFlight, c.SubmitWindow)
	}
	return c, nil
}

// Stats are scheduler activity counters.
type Stats struct {
	Submitted int
	Retired   int
	// AdmissionStalls counts events whose admission had to wait at least
	// once — on the in-flight cap, on an earlier same-trigger event, or on
	// an in-flight event claiming their trigger session.
	AdmissionStalls int
	// ReoptWaits counts events whose re-optimization stage had to queue
	// behind a conflicting in-flight event at least once (the DAG edges).
	ReoptWaits int
	// QueueDepthPeak is the high-water mark of submitted-but-unadmitted
	// events.
	QueueDepthPeak int
	// InFlightPeak is the high-water mark of concurrently in-flight events
	// (admitted, re-optimization not yet complete).
	InFlightPeak int
}

type evPhase int

const (
	phasePending  evPhase = iota // submitted, not admitted
	phaseInFlight                // admitted; re-optimization waiting or running
	phaseDone                    // re-optimization complete, not yet retired
)

type event struct {
	seq     int
	exec    Exec
	phase   evPhase
	fp      Footprint
	ticket  int  // admission order; conflict waits defer to smaller tickets
	stalled bool // passed over by at least one admission scan
	skipped bool // aborted without running (admission error or stream abort)
	retired chan struct{}
}

// Scheduler runs submitted events per the package contract. One dispatcher
// goroutine owns admissions and retirements; each in-flight event gets a
// goroutine for its conflict wait + Reopt. Submit/Drain/Close follow the
// orchestrator's single-caller discipline, though they are internally
// locked.
type Scheduler struct {
	cfg Config

	mu   sync.Mutex
	cond *sync.Cond
	// queue holds every un-retired event in ascending submission order.
	queue    []*event
	nextSeq  int
	tickets  int
	inFlight int
	pending  int
	err      error
	// errSeq is the failing event's submission seq while err is set:
	// retirement is suppressed from that seq on, so the retired stream is
	// always a strict prefix of the submission order — matching the serial
	// path's abort semantics.
	errSeq int
	closed bool
	stats  Stats

	done chan struct{} // dispatcher exited
}

// New starts a scheduler. Call Close when done.
func New(cfg Config) (*Scheduler, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Scheduler{cfg: cfg, done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.dispatch()
	return s, nil
}

// Submit enqueues one event and returns a channel closed when it retires
// (or is discarded by a stream abort). Blocks while the pending queue is at
// the submit window. Returns an error after Close.
func (s *Scheduler) Submit(exec Exec) (<-chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The window holds even while a stream error is draining: the
	// dispatcher keeps discarding pending heads (broadcasting each time),
	// so blocked submitters make progress without ever buffering the whole
	// remaining schedule.
	for !s.closed && s.pending >= s.cfg.SubmitWindow {
		s.cond.Wait()
	}
	if s.closed {
		return nil, fmt.Errorf("pipeline: submit after close")
	}
	e := &event{seq: s.nextSeq, exec: exec, retired: make(chan struct{})}
	s.nextSeq++
	s.queue = append(s.queue, e)
	s.pending++
	if s.pending > s.stats.QueueDepthPeak {
		s.stats.QueueDepthPeak = s.pending
	}
	s.stats.Submitted++
	s.cond.Broadcast()
	return e.retired, nil
}

// Drain blocks until every submitted event has retired (or been discarded)
// and returns the stream's first error, if any, clearing it — so one bad
// event aborts the in-flight stream (pending events are discarded, matching
// the serial path's Run-abort semantics) without permanently wedging the
// scheduler: the next submission after a Drain admits normally.
func (s *Scheduler) Drain() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) > 0 {
		s.cond.Wait()
	}
	err := s.err
	s.err = nil
	return err
}

// Err returns the stream's first error without waiting.
func (s *Scheduler) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Stats returns a copy of the activity counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close stops the scheduler after the queue empties (in-flight events
// finish; a stream error discards what remains) and waits for the
// dispatcher to exit. The scheduler must not be used afterwards.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	<-s.done
}

// dispatch is the scheduler's single dispatcher loop: it retires done
// events in submission order, admits eligible pending events (running their
// Admit serially), and spawns the per-event execution goroutines.
func (s *Scheduler) dispatch() {
	defer close(s.done)
	s.mu.Lock()
	for {
		// Retirement: strictly head-of-queue, in submission order. An
		// aborted stream retires nothing from the failing seq on (even
		// events that finished executing), so the retired stream is always
		// a strict prefix of the submission order.
		if len(s.queue) > 0 {
			h := s.queue[0]
			switch {
			case h.phase == phaseDone:
				suppressed := h.skipped || (s.err != nil && h.seq >= s.errSeq)
				s.mu.Unlock()
				if !suppressed {
					h.exec.Retire()
				}
				s.mu.Lock()
				s.queue = s.queue[1:]
				if !suppressed {
					s.stats.Retired++
				}
				close(h.retired)
				s.cond.Broadcast()
				continue
			case h.phase == phasePending && s.err != nil:
				// Stream aborted before this event was admitted: discard.
				h.skipped = true
				s.queue = s.queue[1:]
				s.pending--
				close(h.retired)
				s.cond.Broadcast()
				continue
			}
		}

		// Admission: first eligible pending event in submission order.
		if s.err == nil {
			if e := s.eligibleLocked(); e != nil {
				stalled := e.stalled
				if stalled {
					s.stats.AdmissionStalls++
				}
				s.mu.Unlock()
				if e.exec.OnAdmit != nil {
					e.exec.OnAdmit(stalled)
				}
				fp, err := e.exec.Admit()
				s.mu.Lock()
				if err != nil {
					if s.err == nil {
						s.err = err
						s.errSeq = e.seq
					}
					e.phase = phaseDone
					e.skipped = true
					s.pending--
				} else {
					fp.Normalize()
					e.fp = fp
					e.phase = phaseInFlight
					e.ticket = s.tickets
					s.tickets++
					s.pending--
					s.inFlight++
					if s.inFlight > s.stats.InFlightPeak {
						s.stats.InFlightPeak = s.inFlight
					}
					go s.run(e)
				}
				s.cond.Broadcast()
				continue
			}
		}

		if s.closed && len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		s.cond.Wait()
	}
}

// eligibleLocked returns the first pending event admissible now, marking as
// stalled every pending event it had to pass over (and the queue head when
// the in-flight cap blocks all admission).
func (s *Scheduler) eligibleLocked() *event {
	if s.inFlight >= s.cfg.MaxInFlight {
		for _, e := range s.queue {
			if e.phase == phasePending {
				e.stalled = true
				break
			}
		}
		return nil
	}
	for i, e := range s.queue {
		if e.phase != phasePending {
			continue
		}
		if s.triggerBlockedLocked(e, i) {
			e.stalled = true
			continue
		}
		return e
	}
	return nil
}

// triggerBlockedLocked reports whether event e (at queue index idx) must
// wait before its admission may mutate its trigger session: an earlier
// un-admitted event with the same trigger preserves per-session event
// order, and any in-flight event claiming the trigger in its footprint
// still owns that session's variables.
func (s *Scheduler) triggerBlockedLocked(e *event, idx int) bool {
	for i, f := range s.queue {
		switch f.phase {
		case phasePending:
			if i < idx && f.exec.Trigger == e.exec.Trigger {
				return true
			}
		case phaseInFlight:
			if f.fp.ContainsSession(e.exec.Trigger) {
				return true
			}
		}
	}
	return false
}

// run executes one admitted event: wait until no conflicting in-flight
// event with a smaller ticket remains (the DAG edge — tickets are admission
// order, so waits are acyclic), then run the re-optimization stage.
func (s *Scheduler) run(e *event) {
	s.mu.Lock()
	waited := false
	for s.conflictLocked(e) {
		if !waited {
			waited = true
			s.stats.ReoptWaits++
		}
		s.cond.Wait()
	}
	s.mu.Unlock()

	err := e.exec.Reopt()

	s.mu.Lock()
	if err != nil && s.err == nil {
		s.err = err
		s.errSeq = e.seq
	}
	e.phase = phaseDone
	s.inFlight--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// conflictLocked reports whether a conflicting in-flight event admitted
// before e is still executing.
func (s *Scheduler) conflictLocked(e *event) bool {
	for _, f := range s.queue {
		if f.phase == phaseInFlight && f.ticket < e.ticket && f.fp.Conflicts(e.fp) {
			return true
		}
	}
	return false
}
