package transcode

import (
	"testing"
	"testing/quick"

	"vconf/internal/model"
)

func TestDefaultModelBand(t *testing.T) {
	m := DefaultModel()
	reps := model.DefaultRepresentations()
	for _, tier := range Tiers() {
		table, err := m.Table(reps, tier.Factor)
		if err != nil {
			t.Fatalf("Table(%s): %v", tier.Name, err)
		}
		for i := range table {
			for j := range table[i] {
				if i == j {
					if table[i][j] != 0 {
						t.Fatalf("tier %s: diagonal [%d][%d] = %v, want 0", tier.Name, i, j, table[i][j])
					}
					continue
				}
				if table[i][j] < 30 || table[i][j] > 60 {
					t.Fatalf("tier %s: σ[%d][%d] = %v outside the paper's [30,60] ms band",
						tier.Name, i, j, table[i][j])
				}
			}
		}
	}
}

func TestLatencyMonotoneInBitrates(t *testing.T) {
	// Without clamping, σ must be strictly increasing in both bitrates.
	m := Model{BaseMS: 10, InCoeffMSPerMbps: 2, OutCoeffMSPerMbps: 1}
	if !(m.Latency(1, 2, 3) < m.Latency(1, 4, 3)) {
		t.Fatal("σ not increasing in input bitrate")
	}
	if !(m.Latency(1, 2, 3) < m.Latency(1, 2, 5)) {
		t.Fatal("σ not increasing in output bitrate")
	}
	if !(m.Latency(1, 2, 3) < m.Latency(2, 2, 3)) {
		t.Fatal("σ not increasing in capability factor")
	}
}

func TestLatencyClamp(t *testing.T) {
	m := Model{BaseMS: 1, InCoeffMSPerMbps: 1, OutCoeffMSPerMbps: 1, MinMS: 30, MaxMS: 60}
	if got := m.Latency(1, 0.1, 0.1); got != 30 {
		t.Fatalf("low clamp: got %v, want 30", got)
	}
	if got := m.Latency(10, 100, 100); got != 60 {
		t.Fatalf("high clamp: got %v, want 60", got)
	}
}

func TestTableRejectsBadFactor(t *testing.T) {
	reps := model.DefaultRepresentations()
	for _, f := range []float64{0, -1} {
		if _, err := DefaultModel().Table(reps, f); err == nil {
			t.Fatalf("Table(factor=%v) succeeded, want error", f)
		}
	}
}

func TestTiersOrdering(t *testing.T) {
	tiers := Tiers()
	if len(tiers) != 3 {
		t.Fatalf("Tiers() = %d entries, want 3", len(tiers))
	}
	for i := 1; i < len(tiers); i++ {
		if tiers[i-1].Factor >= tiers[i].Factor {
			t.Fatal("tiers must be ordered fastest → slowest")
		}
	}
}

// Property: within the table of any capability factor, moving to a
// higher-bitrate input or output representation never decreases σ
// (off-diagonal entries; the clamp can make it equal).
func TestTableMonotoneProperty(t *testing.T) {
	reps := model.DefaultRepresentations()
	m := DefaultModel()
	prop := func(f8 uint8) bool {
		factor := 0.5 + float64(f8%200)/100 // 0.5 .. 2.49
		table, err := m.Table(reps, factor)
		if err != nil {
			return false
		}
		n := reps.Len()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if i+1 < n && i+1 != j && table[i+1][j] < table[i][j] {
					return false
				}
				if j+1 < n && i != j+1 && table[i][j+1] < table[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMustTableDoesNotPanicOnValidInput(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("MustTable panicked: %v", r)
		}
	}()
	if got := MustTable(model.DefaultRepresentations(), 1.0); len(got) != 4 {
		t.Fatalf("MustTable rows = %d, want 4", len(got))
	}
}
