// Package transcode models the transcoding latency σ_l(r1, r2) of
// heterogeneous cloud agents.
//
// The paper (§II) requires only that σ_l is an increasing function of the
// bitrates of both the input and the output representation, and reports that
// the prototype agents' latencies fell in the 30–60 ms band depending on
// processing capability (§V-A). This package provides a parametric model
// with exactly those properties: a per-agent capability factor scales an
// affine function of the two bitrates, clamped into a configurable band.
//
// The paper's own testbed measured these latencies on real EC2 VMs; we
// substitute this synthetic model because the optimizer consumes σ_l only as
// a black-box increasing function (see DESIGN.md §2).
package transcode

import (
	"fmt"

	"vconf/internal/model"
)

// Model parameterizes the latency function
//
//	σ(r1, r2) = factor × (Base + InCoeff·κ(r1) + OutCoeff·κ(r2))  [ms]
//
// optionally clamped to [MinMS, MaxMS] when MaxMS > 0.
type Model struct {
	// BaseMS is the fixed per-task overhead in milliseconds.
	BaseMS float64
	// InCoeffMSPerMbps scales with the input bitrate κ(r1).
	InCoeffMSPerMbps float64
	// OutCoeffMSPerMbps scales with the output bitrate κ(r2).
	OutCoeffMSPerMbps float64
	// MinMS / MaxMS clamp the result when MaxMS > 0. The paper's prototype
	// band is [30, 60] ms.
	MinMS float64
	MaxMS float64
}

// DefaultModel reproduces the paper's 30–60 ms prototype band for the
// default representation set: a capability-1.0 agent transcoding 1080p→360p
// lands near 49 ms, 360p→360p-adjacent tasks near the 30 ms floor, and slow
// agents (factor ≥ 1.2) saturate toward 60 ms.
func DefaultModel() Model {
	return Model{
		BaseMS:            24,
		InCoeffMSPerMbps:  2.2,
		OutCoeffMSPerMbps: 1.4,
		MinMS:             30,
		MaxMS:             60,
	}
}

// Latency evaluates σ for one (input, output) bitrate pair and a capability
// factor (1.0 = reference hardware; larger = slower agent).
func (m Model) Latency(factor, inMbps, outMbps float64) float64 {
	v := factor * (m.BaseMS + m.InCoeffMSPerMbps*inMbps + m.OutCoeffMSPerMbps*outMbps)
	if m.MaxMS > 0 {
		if v < m.MinMS {
			v = m.MinMS
		}
		if v > m.MaxMS {
			v = m.MaxMS
		}
	}
	return v
}

// Table materializes the full |R|×|R| σ table for an agent with the given
// capability factor. The diagonal is zero: converting a representation to
// itself is the identity and never scheduled as a transcoding task.
func (m Model) Table(reps *model.RepresentationSet, factor float64) ([][]float64, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("transcode: capability factor must be positive, got %v", factor)
	}
	n := reps.Len()
	table := make([][]float64, n)
	for i := 0; i < n; i++ {
		table[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			table[i][j] = m.Latency(factor,
				reps.Bitrate(model.Representation(i)),
				reps.Bitrate(model.Representation(j)))
		}
	}
	return table, nil
}

// MustTable is Table for static inputs; it panics on error. Intended for
// fixtures and examples where the factor is a literal.
func MustTable(reps *model.RepresentationSet, factor float64) [][]float64 {
	t, err := DefaultModel().Table(reps, factor)
	if err != nil {
		panic(err)
	}
	return t
}

// CapabilityTier is a named class of agent hardware.
type CapabilityTier struct {
	Name string
	// Factor is the capability factor fed into the model (1.0 = reference).
	Factor float64
}

// Tiers returns the three hardware tiers used across experiments: powerful
// (fast transcoder, e.g. the SG agent of Fig. 2), standard, and weak.
func Tiers() []CapabilityTier {
	return []CapabilityTier{
		{Name: "powerful", Factor: 0.75},
		{Name: "standard", Factor: 1.0},
		{Name: "weak", Factor: 1.3},
	}
}
