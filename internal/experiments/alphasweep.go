package experiments

import (
	"errors"
	"fmt"

	"vconf/internal/agrank"
	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/stats"
	"vconf/internal/workload"
)

// AlphaCase is one objective-weight column of Table II.
type AlphaCase struct {
	Name   string
	Params cost.Params
}

// AlphaCases returns the paper's three columns: delay-only (α2 = 0),
// balanced (α1 = α2), traffic-only (α1 = 0).
func AlphaCases() []AlphaCase {
	return []AlphaCase{
		{Name: "a2=0 (delay only)", Params: cost.DelayOnlyParams()},
		{Name: "a1=a2", Params: cost.DefaultParams()},
		{Name: "a1=0 (traffic only)", Params: cost.TrafficOnlyParams()},
	}
}

// SweepConfig drives the Table II / Fig. 8 experiment: many random
// Internet-scale scenarios, each bootstrapped by Nrst and AgRank and then
// optimized by Alg. 1 under each α setting.
type SweepConfig struct {
	Seed         int64
	NumScenarios int     // paper: 100
	DurationS    float64 // Alg. 1 virtual run length per scenario
	// Workload generates per-scenario configs from a seed; nil selects
	// workload.LargeScale.
	Workload func(seed int64) workload.Config
}

// DefaultSweepConfig mirrors the paper's setup (100 scenarios) with a
// 200-second optimization horizon.
func DefaultSweepConfig(seed int64) SweepConfig {
	return SweepConfig{Seed: seed, NumScenarios: 100, DurationS: 200}
}

// SweepCell accumulates per-scenario observations for one (init, case) pair.
type SweepCell struct {
	Traffic []float64
	Delay   []float64
}

// AlphaSweepResult holds every cell of Table II plus the per-scenario delay
// distributions Fig. 8 box-plots.
type AlphaSweepResult struct {
	Inits   []string
	Columns []string // "Init" followed by the α cases
	// Cells is keyed "init|column".
	Cells map[string]*SweepCell
	// Completed counts scenarios where every bootstrap succeeded; Skipped
	// counts scenarios dropped because some policy could not admit all
	// sessions (only relevant under tight capacities).
	Completed int
	Skipped   int
}

func cellKey(init, column string) string { return init + "|" + column }

// Cell returns the named cell (nil if absent).
func (r *AlphaSweepResult) Cell(init, column string) *SweepCell {
	return r.Cells[cellKey(init, column)]
}

// RunAlphaSweep executes the sweep.
func RunAlphaSweep(cfg SweepConfig) (*AlphaSweepResult, error) {
	if cfg.NumScenarios < 1 {
		return nil, fmt.Errorf("alphasweep: need at least one scenario")
	}
	if cfg.DurationS <= 0 {
		return nil, fmt.Errorf("alphasweep: non-positive duration")
	}
	wlOf := cfg.Workload
	if wlOf == nil {
		wlOf = workload.LargeScale
	}
	inits := []InitPolicy{Nrst(), AgRank(2)}
	cases := AlphaCases()

	res := &AlphaSweepResult{
		Columns: []string{"Init"},
		Cells:   make(map[string]*SweepCell),
	}
	for _, ip := range inits {
		res.Inits = append(res.Inits, ip.Name)
	}
	for _, c := range cases {
		res.Columns = append(res.Columns, c.Name)
	}
	for _, ip := range inits {
		for _, col := range res.Columns {
			res.Cells[cellKey(ip.Name, col)] = &SweepCell{}
		}
	}

	// The bootstrap feasibility and the reported traffic/delay metrics are
	// α-independent; measure them with the balanced evaluator.
	measureParams := cost.DefaultParams()

	for i := 0; i < cfg.NumScenarios; i++ {
		seed := cfg.Seed + int64(i)*1013
		sc, err := workload.Generate(wlOf(seed))
		if err != nil {
			return nil, fmt.Errorf("alphasweep: scenario %d: %w", i, err)
		}
		measureEv, err := cost.NewEvaluator(sc, measureParams)
		if err != nil {
			return nil, err
		}

		type bootres struct {
			policy InitPolicy
			a      *assign.Assignment
		}
		var boots []bootres
		failed := false
		for _, ip := range inits {
			a, _, err := ip.BootstrapAll(sc, measureParams)
			if err != nil {
				if errors.Is(err, baseline.ErrInfeasible) || errors.Is(err, agrank.ErrInfeasible) {
					failed = true
					break
				}
				return nil, fmt.Errorf("alphasweep: scenario %d %s: %w", i, ip.Name, err)
			}
			boots = append(boots, bootres{policy: ip, a: a})
		}
		if failed {
			res.Skipped++
			continue
		}
		res.Completed++

		for _, br := range boots {
			rep := measureEv.ReportSystem(br.a)
			initCell := res.Cell(br.policy.Name, "Init")
			initCell.Traffic = append(initCell.Traffic, rep.InterTraffic)
			initCell.Delay = append(initCell.Delay, rep.MeanDelayMS)

			for _, ac := range cases {
				final, err := optimizeFrom(sc, br.a, ac.Params, cfg.DurationS, seed)
				if err != nil {
					return nil, fmt.Errorf("alphasweep: scenario %d %s %s: %w",
						i, br.policy.Name, ac.Name, err)
				}
				frep := measureEv.ReportSystem(final)
				cell := res.Cell(br.policy.Name, ac.Name)
				cell.Traffic = append(cell.Traffic, frep.InterTraffic)
				cell.Delay = append(cell.Delay, frep.MeanDelayMS)
			}
		}
	}
	return res, nil
}

// optimizeFrom runs Alg. 1 for durationS virtual seconds starting from the
// given complete assignment, under the given objective parameters.
func optimizeFrom(sc *model.Scenario, start *assign.Assignment, p cost.Params, durationS float64, seed int64) (*assign.Assignment, error) {
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(ev, core.DefaultConfig(seed))
	if err != nil {
		return nil, err
	}
	boot := SnapshotBootstrapper(start, p)
	for s := 0; s < sc.NumSessions(); s++ {
		if err := eng.ActivateSession(model.SessionID(s), boot); err != nil {
			return nil, err
		}
	}
	if _, err := eng.Run(durationS, 0); err != nil {
		return nil, err
	}
	return eng.Assignment(), nil
}

// SnapshotBootstrapper replays a precomputed assignment session by session —
// used to start Alg. 1 runs from an existing bootstrap without recomputing
// it for every α case.
func SnapshotBootstrapper(src *assign.Assignment, p cost.Params) core.Bootstrapper {
	return func(a *assign.Assignment, s model.SessionID, ledger cost.LedgerAPI) error {
		sc := a.Scenario()
		for _, u := range sc.Session(s).Users {
			a.SetUserAgent(u, src.UserAgent(u))
		}
		for _, f := range a.SessionFlows(s) {
			m, ok := src.FlowAgent(f)
			if !ok {
				return fmt.Errorf("experiments: snapshot missing flow %d→%d", f.Src, f.Dst)
			}
			if err := a.SetFlowAgent(f, m); err != nil {
				return err
			}
		}
		load := p.SessionLoadOf(a, s)
		if !ledger.Fits(load) {
			return fmt.Errorf("experiments: snapshot session %d no longer fits capacity", s)
		}
		ledger.Add(load)
		return nil
	}
}

// Table2Rows renders the sweep as the paper's Table II: mean traffic and
// delay per (init, column).
func (r *AlphaSweepResult) Table2Rows() []string {
	rows := []string{fmt.Sprintf("table2 | %d scenarios completed, %d skipped (infeasible bootstrap)",
		r.Completed, r.Skipped)}
	for _, init := range r.Inits {
		for _, metric := range []string{"Traffic", "Delay"} {
			line := fmt.Sprintf("table2 | %-8s %-7s", init, metric)
			for _, col := range r.Columns {
				cell := r.Cell(init, col)
				var v float64
				if metric == "Traffic" {
					v = stats.Mean(cell.Traffic)
				} else {
					v = stats.Mean(cell.Delay)
				}
				line += fmt.Sprintf(" | %-20s %8.1f", col, v)
			}
			rows = append(rows, line)
		}
	}
	// Headline ratios of the paper: traffic/delay reduction of Alg. 1
	// (α1=α2) relative to plain Nrst.
	nrstInit := r.Cell("Nrst", "Init")
	if len(nrstInit.Traffic) > 0 {
		baseT := stats.Mean(nrstInit.Traffic)
		baseD := stats.Mean(nrstInit.Delay)
		for _, init := range r.Inits {
			cell := r.Cell(init, "a1=a2")
			if len(cell.Traffic) == 0 {
				continue
			}
			rows = append(rows, fmt.Sprintf(
				"table2 | headline: Alg1(init=%s, a1=a2) vs Nrst: traffic %+.0f%%, delay %+.0f%% (paper: -42%%/-10%% Nrst-init, -77%%/-2%% AgRank-init)",
				init,
				100*(stats.Mean(cell.Traffic)/baseT-1),
				100*(stats.Mean(cell.Delay)/baseD-1)))
		}
	}
	return rows
}

// Fig8Rows renders the per-scenario conferencing-delay box plots.
func (r *AlphaSweepResult) Fig8Rows() []string {
	var rows []string
	for _, init := range r.Inits {
		for _, col := range r.Columns {
			cell := r.Cell(init, col)
			if len(cell.Delay) == 0 {
				continue
			}
			rows = append(rows, fmt.Sprintf("fig8 | %-8s %-20s delay box %s ms",
				init, col, stats.Summarize(cell.Delay)))
		}
	}
	return rows
}
