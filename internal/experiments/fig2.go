package experiments

import (
	"fmt"

	"vconf/internal/cost"
	"vconf/internal/exact"
	"vconf/internal/model"
)

// Fig2Result compares the nearest policy against the optimal assignment on
// the motivating scenario, reproducing the figure's argument: the HK user is
// better served by the TO agent than by its nearest agent SG.
type Fig2Result struct {
	NearestAgents []string
	NearestRep    cost.SystemReport
	OptimalAgents []string
	OptimalRep    cost.SystemReport
	// HKViaTO and HKViaSG are the end-to-end delay lower bounds of the
	// paper's walkthrough (27+67 vs 20+117).
	HKViaTO float64
	HKViaSG float64
}

// RunFig2 executes the motivating-scenario experiment.
func RunFig2() (*Fig2Result, error) {
	sc, err := BuildFig2Scenario()
	if err != nil {
		return nil, err
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		return nil, err
	}

	res := &Fig2Result{}

	// Paper's walkthrough numbers: H(TO,HK)+D(TO,OR) vs H(SG,HK)+D(SG,OR).
	or, to, sg := model.AgentID(0), model.AgentID(1), model.AgentID(2)
	hk := model.UserID(3)
	res.HKViaTO = sc.H(to, hk) + sc.D(to, or)
	res.HKViaSG = sc.H(sg, hk) + sc.D(sg, or)

	// Nearest policy.
	nrst, _, err := Nrst().BootstrapAll(sc, p)
	if err != nil {
		return nil, fmt.Errorf("fig2: nearest bootstrap: %w", err)
	}
	res.NearestRep = ev.ReportSystem(nrst)
	for u := 0; u < sc.NumUsers(); u++ {
		res.NearestAgents = append(res.NearestAgents, sc.Agent(nrst.UserAgent(model.UserID(u))).Name)
	}

	// Optimal by exhaustive enumeration (4 users + 1 flow over 4 agents =
	// 1024 combinations).
	enum, err := exact.Enumerate(ev, 0)
	if err != nil {
		return nil, fmt.Errorf("fig2: enumerate: %w", err)
	}
	best := enum.States[enum.ArgMin].A
	res.OptimalRep = ev.ReportSystem(best)
	for u := 0; u < sc.NumUsers(); u++ {
		res.OptimalAgents = append(res.OptimalAgents, sc.Agent(best.UserAgent(model.UserID(u))).Name)
	}
	return res, nil
}

// Rows renders the result as printable lines.
func (r *Fig2Result) Rows() []string {
	return []string{
		fmt.Sprintf("fig2 | HK→OR delay lower bound via TO: %.0f ms, via SG: %.0f ms (paper: 94 vs 137)", r.HKViaTO, r.HKViaSG),
		fmt.Sprintf("fig2 | Nrst    agents=%v traffic=%.2f Mbps delay=%.1f ms obj=%.2f",
			r.NearestAgents, r.NearestRep.InterTraffic, r.NearestRep.MeanDelayMS, r.NearestRep.Objective),
		fmt.Sprintf("fig2 | Optimal agents=%v traffic=%.2f Mbps delay=%.1f ms obj=%.2f",
			r.OptimalAgents, r.OptimalRep.InterTraffic, r.OptimalRep.MeanDelayMS, r.OptimalRep.Objective),
	}
}
