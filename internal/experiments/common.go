// Package experiments implements one runner per table and figure of the
// paper's evaluation (§V). Each runner builds its workload, executes the
// relevant algorithms, and renders rows shaped like the paper's artifact so
// the reproduction can be compared side by side (see EXPERIMENTS.md).
package experiments

import (
	"fmt"

	"vconf/internal/agrank"
	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/netsim"
	"vconf/internal/transcode"
)

// InitPolicy selects the bootstrap policy of a run.
type InitPolicy struct {
	// Name labels the policy in output rows ("Nrst", "AgRank#2", …).
	Name string
	// NNgbr is 0 for Nrst, else AgRank's candidate count.
	NNgbr int
}

// Nrst is the nearest-assignment baseline policy.
func Nrst() InitPolicy { return InitPolicy{Name: "Nrst"} }

// AgRank returns the AgRank policy with the given n_ngbr.
func AgRank(nngbr int) InitPolicy {
	return InitPolicy{Name: fmt.Sprintf("AgRank#%d", nngbr), NNgbr: nngbr}
}

// Bootstrapper adapts the policy to the core engine's bootstrap hook.
func (ip InitPolicy) Bootstrapper(p cost.Params) core.Bootstrapper {
	if ip.NNgbr == 0 {
		return func(a *assign.Assignment, s model.SessionID, ledger cost.LedgerAPI) error {
			return baseline.AssignSessionNearest(a, s, p, ledger)
		}
	}
	opts := agrank.DefaultOptions(ip.NNgbr)
	return func(a *assign.Assignment, s model.SessionID, ledger cost.LedgerAPI) error {
		_, err := agrank.BootstrapSession(a, s, p, ledger, opts)
		return err
	}
}

// BootstrapAll admits every session of the scenario under the policy,
// returning the assignment and ledger, or the first admission error.
func (ip InitPolicy) BootstrapAll(sc *model.Scenario, p cost.Params) (*assign.Assignment, *cost.Ledger, error) {
	a := assign.New(sc)
	ledger := cost.NewLedger(sc)
	boot := ip.Bootstrapper(p)
	for s := 0; s < sc.NumSessions(); s++ {
		if err := boot(a, model.SessionID(s), ledger); err != nil {
			return nil, nil, err
		}
	}
	return a, ledger, nil
}

// BuildFig2Scenario assembles the paper's Fig. 2 motivating instance from
// the netsim fixture: one session of four users (CA, BR, JP, HK) over four
// agents (OR, TO, SG, SP) with the measured latencies. The HK user produces
// 1080p which the CA user demands as 360p, creating the transcoding task of
// the walkthrough; everyone else exchanges native 720p.
func BuildFig2Scenario() (*model.Scenario, error) {
	fx := netsim.Fig2()
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r720, _ := rs.ByName("720p")
	r1080, _ := rs.ByName("1080p")

	for _, site := range fx.Network.AgentSites {
		factor := fx.Capability[site.Name]
		b.AddAgent(model.Agent{
			Name:             site.Name,
			Site:             site.Region,
			Upload:           10000,
			Download:         10000,
			TranscodeSlots:   16,
			SigmaMS:          transcode.MustTable(rs, factor),
			CapabilityFactor: factor,
		})
	}
	s := b.AddSession("fig2")
	uCA := b.AddUser("1 [CA]", s, r720, nil)
	b.AddUser("2 [BR]", s, r720, nil)
	b.AddUser("3 [JP]", s, r720, nil)
	uHK := b.AddUser("4 [HK]", s, r1080, nil)
	b.DemandFrom(uCA, uHK, r360)

	b.SetInterAgentDelays(fx.Network.DMS)
	b.SetAgentUserDelays(fx.Network.HMS)
	return b.Build()
}

// BuildFig3Scenario assembles the Fig. 3 instance: one session, two users,
// one transcoding operation, two agents — 8 feasible assignments.
func BuildFig3Scenario() (*model.Scenario, error) {
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r720, _ := rs.ByName("720p")
	for i := 0; i < 2; i++ {
		b.AddAgent(model.Agent{
			Name: fmt.Sprintf("L%d", i+1), Upload: 1000, Download: 1000, TranscodeSlots: 4,
			SigmaMS: model.UniformSigma(rs.Len(), 40),
		})
	}
	s := b.AddSession("fig3")
	b.AddUser("U1", s, r720, nil)
	b.AddUser("U2", s, r720, nil)
	b.DemandFrom(1, 0, r360)
	b.SetInterAgentDelays([][]float64{{0, 25}, {25, 0}})
	b.SetAgentUserDelays([][]float64{{5, 30}, {30, 5}})
	return b.Build()
}

// SeriesPoint is one (time, traffic, delay) observation of an evolution
// experiment.
type SeriesPoint struct {
	TimeS       float64
	TrafficMbps float64
	DelayMS     float64
}

// resample extracts a regular grid from engine samples (step semantics).
func resample(samples []core.Sample, start, end, step float64) []SeriesPoint {
	var out []SeriesPoint
	idx := 0
	var last core.Sample
	haveLast := false
	for t := start; t <= end+1e-9; t += step {
		for idx < len(samples) && samples[idx].TimeS <= t {
			last = samples[idx]
			haveLast = true
			idx++
		}
		if !haveLast {
			continue
		}
		out = append(out, SeriesPoint{TimeS: t, TrafficMbps: last.TrafficMbps, DelayMS: last.MeanDelayMS})
	}
	return out
}
