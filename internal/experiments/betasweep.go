package experiments

import (
	"fmt"

	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/stats"
	"vconf/internal/workload"
)

// BetaSweepConfig drives the β trade-off experiment (§IV-A-4 and the
// discussion around Fig. 4): larger β shrinks the stationary optimality gap
// but slows convergence, and the paper's β=200 run fluctuates more than
// β=400. This sweep quantifies both effects: the final objective (accuracy)
// and the time to reach within 10% of it (convergence), per β.
type BetaSweepConfig struct {
	Seed         int64
	Betas        []float64
	NumScenarios int
	DurationS    float64
	Workload     func(seed int64) workload.Config
}

// DefaultBetaSweepConfig sweeps β across the paper's regime.
func DefaultBetaSweepConfig(seed int64) BetaSweepConfig {
	return BetaSweepConfig{
		Seed:         seed,
		Betas:        []float64{50, 100, 200, 400, 800},
		NumScenarios: 5,
		DurationS:    300,
	}
}

// BetaSweepRow is one β's aggregate measurements.
type BetaSweepRow struct {
	Beta float64
	// FinalPhi is the mean final objective (lower = more accurate).
	FinalPhi float64
	// ConvergenceS is the mean virtual time until the objective first came
	// within 10% of the run's final value.
	ConvergenceS float64
	// Fluctuation is the mean coefficient of variation of the objective
	// over the second half of each run (larger = noisier chain).
	Fluctuation float64
}

// BetaSweepResult holds all rows.
type BetaSweepResult struct {
	Rows_ []BetaSweepRow
}

// RunBetaSweep executes the sweep on prototype-scale workloads.
func RunBetaSweep(cfg BetaSweepConfig) (*BetaSweepResult, error) {
	if len(cfg.Betas) == 0 || cfg.NumScenarios < 1 || cfg.DurationS <= 0 {
		return nil, fmt.Errorf("betasweep: invalid config")
	}
	wlOf := cfg.Workload
	if wlOf == nil {
		wlOf = workload.Prototype
	}
	p := cost.DefaultParams()

	res := &BetaSweepResult{}
	for _, beta := range cfg.Betas {
		var finals, convs, flucts []float64
		for i := 0; i < cfg.NumScenarios; i++ {
			seed := cfg.Seed + int64(i)*5081
			sc, err := workload.Generate(wlOf(seed))
			if err != nil {
				return nil, err
			}
			ev, err := cost.NewEvaluator(sc, p)
			if err != nil {
				return nil, err
			}
			coreCfg := core.DefaultConfig(seed)
			coreCfg.Beta = beta
			eng, err := core.NewEngine(ev, coreCfg)
			if err != nil {
				return nil, err
			}
			boot := Nrst().Bootstrapper(p)
			for s := 0; s < sc.NumSessions(); s++ {
				if err := eng.ActivateSession(model.SessionID(s), boot); err != nil {
					return nil, err
				}
			}
			samples, err := eng.Run(cfg.DurationS, 1)
			if err != nil {
				return nil, err
			}
			final := samples[len(samples)-1].Objective
			finals = append(finals, final)

			// Convergence: first time within 10% of the final value.
			conv := cfg.DurationS
			for _, smp := range samples {
				if smp.Objective <= final*1.1 {
					conv = smp.TimeS
					break
				}
			}
			convs = append(convs, conv)

			// Fluctuation over the second half.
			var tail []float64
			for _, smp := range samples {
				if smp.TimeS >= cfg.DurationS/2 {
					tail = append(tail, smp.Objective)
				}
			}
			if m := stats.Mean(tail); m > 0 {
				flucts = append(flucts, stats.StdDev(tail)/m)
			}
		}
		res.Rows_ = append(res.Rows_, BetaSweepRow{
			Beta:         beta,
			FinalPhi:     stats.Mean(finals),
			ConvergenceS: stats.Mean(convs),
			Fluctuation:  stats.Mean(flucts),
		})
	}
	return res, nil
}

// Rows renders the sweep.
func (r *BetaSweepResult) Rows() []string {
	rows := []string{"beta | accuracy vs convergence trade-off (Theorem 1 / §IV-A-4)"}
	for _, row := range r.Rows_ {
		rows = append(rows, fmt.Sprintf(
			"beta | β=%5.0f final Φ=%9.1f converged@%6.1fs fluctuation=%.4f",
			row.Beta, row.FinalPhi, row.ConvergenceS, row.Fluctuation))
	}
	return rows
}
