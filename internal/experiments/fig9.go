package experiments

import (
	"fmt"

	"vconf/internal/workload"
)

// Fig9Config drives the admission-success-rate experiment: how many random
// scenarios can be fully bootstrapped as one capacity dimension tightens,
// per policy (Nrst vs AgRank#2 vs AgRank#3).
type Fig9Config struct {
	Seed         int64
	NumScenarios int // paper: 100
	// BandwidthPointsMbps sweeps mean agent bandwidth with unlimited
	// transcoding capacity (Fig. 9a).
	BandwidthPointsMbps []float64
	// TranscodePoints sweeps mean transcoding slots with unlimited
	// bandwidth (Fig. 9b).
	TranscodePoints []int
	// Workload overrides the base workload generator (nil = LargeScale).
	Workload func(seed int64) workload.Config
}

// DefaultFig9Config mirrors the paper's sweep ranges, extended past 900 Mbps
// so the saturation toward 100% is visible under this repository's latency
// and demand calibration (the synthesized workload's per-agent demand is
// somewhat heavier than the paper's testbed, which shifts the crossover
// right; see EXPERIMENTS.md).
func DefaultFig9Config(seed int64) Fig9Config {
	return Fig9Config{
		Seed:                seed,
		NumScenarios:        100,
		BandwidthPointsMbps: []float64{400, 500, 600, 700, 750, 800, 900, 1200, 1600, 2000},
		TranscodePoints:     []int{20, 30, 40, 50, 60},
	}
}

// Fig9Result holds success percentages per policy and sweep point.
type Fig9Result struct {
	Policies []string
	// BandwidthSuccess[p][i] is the success share (0–1) of Policies[p] at
	// BandwidthPointsMbps[i]; TranscodeSuccess likewise.
	BandwidthPointsMbps []float64
	BandwidthSuccess    [][]float64
	TranscodePoints     []int
	TranscodeSuccess    [][]float64
}

// RunFig9 executes the sweep.
func RunFig9(cfg Fig9Config) (*Fig9Result, error) {
	if cfg.NumScenarios < 1 {
		return nil, fmt.Errorf("fig9: need at least one scenario")
	}
	wlOf := cfg.Workload
	if wlOf == nil {
		wlOf = workload.LargeScale
	}
	policies := []InitPolicy{AgRank(3), AgRank(2), Nrst()}

	res := &Fig9Result{
		BandwidthPointsMbps: cfg.BandwidthPointsMbps,
		TranscodePoints:     cfg.TranscodePoints,
	}
	for _, p := range policies {
		res.Policies = append(res.Policies, p.Name)
	}

	successShare := func(mut func(*workload.Config)) ([]float64, error) {
		shares := make([]float64, len(policies))
		for i := 0; i < cfg.NumScenarios; i++ {
			seed := cfg.Seed + int64(i)*2027
			wl := wlOf(seed)
			mut(&wl)
			sc, err := workload.Generate(wl)
			if err != nil {
				return nil, err
			}
			for pi, pol := range policies {
				p := AlphaCases()[1].Params // balanced objective; irrelevant to admission
				if _, _, err := pol.BootstrapAll(sc, p); err == nil {
					shares[pi]++
				}
			}
		}
		for pi := range shares {
			shares[pi] /= float64(cfg.NumScenarios)
		}
		return shares, nil
	}

	for _, bw := range cfg.BandwidthPointsMbps {
		shares, err := successShare(func(wl *workload.Config) {
			wl.MeanBandwidthMbps = bw
			wl.MeanTranscodeSlots = workload.UnlimitedSlots
		})
		if err != nil {
			return nil, fmt.Errorf("fig9a bw=%.0f: %w", bw, err)
		}
		res.BandwidthSuccess = append(res.BandwidthSuccess, shares)
	}
	for _, slots := range cfg.TranscodePoints {
		shares, err := successShare(func(wl *workload.Config) {
			wl.MeanBandwidthMbps = workload.UnlimitedMbps
			wl.MeanTranscodeSlots = slots
		})
		if err != nil {
			return nil, fmt.Errorf("fig9b slots=%d: %w", slots, err)
		}
		res.TranscodeSuccess = append(res.TranscodeSuccess, shares)
	}
	return res, nil
}

// Rows renders the two sweep tables.
func (r *Fig9Result) Rows() []string {
	rows := []string{fmt.Sprintf("fig9a | mean bandwidth sweep (%% scenarios fully admitted), policies %v", r.Policies)}
	for i, bw := range r.BandwidthPointsMbps {
		line := fmt.Sprintf("fig9a | %6.0f Mbps", bw)
		for pi := range r.Policies {
			line += fmt.Sprintf("  %-9s %5.1f%%", r.Policies[pi], 100*r.BandwidthSuccess[i][pi])
		}
		rows = append(rows, line)
	}
	rows = append(rows, fmt.Sprintf("fig9b | mean transcoding sweep (%% scenarios fully admitted), policies %v", r.Policies))
	for i, slots := range r.TranscodePoints {
		line := fmt.Sprintf("fig9b | %6d slots", slots)
		for pi := range r.Policies {
			line += fmt.Sprintf("  %-9s %5.1f%%", r.Policies[pi], 100*r.TranscodeSuccess[i][pi])
		}
		rows = append(rows, line)
	}
	return rows
}
