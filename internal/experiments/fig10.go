package experiments

import (
	"fmt"

	"vconf/internal/cost"
	"vconf/internal/stats"
	"vconf/internal/workload"
)

// Fig10Config drives the n_ngbr sensitivity experiment: the inter-agent
// traffic and conferencing delay of the AgRank *initial* assignment as the
// per-user candidate count grows from 1 (≡ Nrst) to L (whole session pulled
// toward one agent).
type Fig10Config struct {
	Seed         int64
	NumScenarios int
	NNgbrValues  []int
	Workload     func(seed int64) workload.Config
}

// DefaultFig10Config sweeps n_ngbr = 1…7 over the large-scale workload.
func DefaultFig10Config(seed int64) Fig10Config {
	return Fig10Config{
		Seed:         seed,
		NumScenarios: 100,
		NNgbrValues:  []int{1, 2, 3, 4, 5, 6, 7},
	}
}

// Fig10Result holds mean traffic and delay per n_ngbr.
type Fig10Result struct {
	NNgbrValues []int
	TrafficMbps []float64
	DelayMS     []float64
	Skipped     []int // scenarios skipped per point (bootstrap infeasible)
}

// RunFig10 executes the sweep.
func RunFig10(cfg Fig10Config) (*Fig10Result, error) {
	if cfg.NumScenarios < 1 || len(cfg.NNgbrValues) == 0 {
		return nil, fmt.Errorf("fig10: invalid config")
	}
	wlOf := cfg.Workload
	if wlOf == nil {
		wlOf = workload.LargeScale
	}
	p := cost.DefaultParams()

	res := &Fig10Result{NNgbrValues: cfg.NNgbrValues}
	for _, nngbr := range cfg.NNgbrValues {
		var traffic, delay []float64
		skipped := 0
		for i := 0; i < cfg.NumScenarios; i++ {
			seed := cfg.Seed + int64(i)*3067
			sc, err := workload.Generate(wlOf(seed))
			if err != nil {
				return nil, err
			}
			if nngbr > sc.NumAgents() {
				return nil, fmt.Errorf("fig10: n_ngbr %d exceeds %d agents", nngbr, sc.NumAgents())
			}
			ev, err := cost.NewEvaluator(sc, p)
			if err != nil {
				return nil, err
			}
			a, _, err := AgRank(nngbr).BootstrapAll(sc, p)
			if err != nil {
				skipped++
				continue
			}
			rep := ev.ReportSystem(a)
			traffic = append(traffic, rep.InterTraffic)
			delay = append(delay, rep.MeanDelayMS)
		}
		res.TrafficMbps = append(res.TrafficMbps, stats.Mean(traffic))
		res.DelayMS = append(res.DelayMS, stats.Mean(delay))
		res.Skipped = append(res.Skipped, skipped)
	}
	return res, nil
}

// Rows renders the sweep.
func (r *Fig10Result) Rows() []string {
	rows := []string{"fig10 | AgRank initial assignment vs n_ngbr (n_ngbr=1 ≡ Nrst)"}
	for i, n := range r.NNgbrValues {
		rows = append(rows, fmt.Sprintf("fig10 | n_ngbr=%d traffic=%8.1f Mbps delay=%6.1f ms (skipped %d)",
			n, r.TrafficMbps[i], r.DelayMS[i], r.Skipped[i]))
	}
	return rows
}
