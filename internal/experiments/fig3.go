package experiments

import (
	"fmt"

	"vconf/internal/cost"
	"vconf/internal/exact"
)

// Fig3Result describes the Markov chain of the toy instance: the 8 feasible
// states, their objectives and neighbor degrees, and the stationary
// distribution.
type Fig3Result struct {
	NumStates  int
	Degrees    []int
	Phis       []float64
	Stationary []float64
	Connected  bool
	ArgMin     int
}

// RunFig3 enumerates the Fig. 3 chain.
func RunFig3(beta, scale float64) (*Fig3Result, error) {
	sc, err := BuildFig3Scenario()
	if err != nil {
		return nil, err
	}
	ev, err := cost.NewEvaluator(sc, cost.DefaultParams())
	if err != nil {
		return nil, err
	}
	enum, err := exact.Enumerate(ev, 0)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{
		NumStates:  len(enum.States),
		Stationary: enum.Stationary(beta, scale),
		Connected:  enum.Connected(),
		ArgMin:     enum.ArgMin,
	}
	for i, nbrs := range enum.Neighbors() {
		res.Degrees = append(res.Degrees, len(nbrs))
		res.Phis = append(res.Phis, enum.States[i].Phi)
	}
	return res, nil
}

// Rows renders the chain structure.
func (r *Fig3Result) Rows() []string {
	rows := []string{
		fmt.Sprintf("fig3 | %d feasible states (paper: 8), irreducible=%v", r.NumStates, r.Connected),
	}
	for i := 0; i < r.NumStates; i++ {
		marker := " "
		if i == r.ArgMin {
			marker = "*"
		}
		rows = append(rows, fmt.Sprintf("fig3 | state %d%s Φ=%7.2f neighbors=%d p*=%.4f",
			i+1, marker, r.Phis[i], r.Degrees[i], r.Stationary[i]))
	}
	return rows
}
