package experiments

import (
	"fmt"

	"vconf/internal/confsim"
	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/workload"
)

// EvolutionConfig drives the prototype-style time-series experiments of
// Figs. 4–7: bootstrap a multi-session scenario, run Alg. 1, and record how
// inter-agent traffic and conferencing delay evolve over virtual time.
type EvolutionConfig struct {
	Seed  int64
	Beta  float64
	Init  InitPolicy
	Alpha cost.Params

	DurationS    float64
	SampleEveryS float64

	// InitialSessions caps how many sessions are active from t = 0
	// (0 = all). The remaining sessions can arrive later.
	InitialSessions int
	// ArrivalTimeS/ArrivalCount schedule a batch arrival (Fig. 5: +4 at 40 s).
	ArrivalTimeS float64
	ArrivalCount int
	// DepartTimeS/DepartCount schedule a batch departure (Fig. 5: −3 at 80 s).
	DepartTimeS float64
	DepartCount int

	// Workload overrides the default prototype workload when non-nil.
	Workload *workload.Config

	// Measured enables the confsim data plane: the measured series includes
	// dual-feed migration overhead and measurement jitter.
	Measured bool
}

// DefaultEvolutionConfig is the Fig. 4 setup: the §V-A prototype workload,
// Nrst initial assignment, β = 400, 200 virtual seconds.
func DefaultEvolutionConfig(seed int64) EvolutionConfig {
	return EvolutionConfig{
		Seed:         seed,
		Beta:         400,
		Init:         Nrst(),
		Alpha:        cost.DefaultParams(),
		DurationS:    200,
		SampleEveryS: 1,
	}
}

// EvolutionResult holds the recorded series.
type EvolutionResult struct {
	// Control is the control-plane series (assignment-implied values).
	Control []SeriesPoint
	// Measured is the data-plane series (jitter + migration overhead);
	// empty unless EvolutionConfig.Measured.
	Measured []SeriesPoint
	// PerSession traces individual sessions (Fig. 7).
	PerSession map[model.SessionID][]SeriesPoint
	// Initial and Final summarize the endpoints of the control series.
	Initial SeriesPoint
	Final   SeriesPoint
	// Hops and Moves count chain activity; Migrations is the data plane's
	// migration counter when Measured.
	Hops, Moves int
	Migrations  int64
	// SessionSizes maps session → participant count (labeling Fig. 7).
	SessionSizes map[model.SessionID]int
}

// RunEvolution executes the experiment.
func RunEvolution(cfg EvolutionConfig) (*EvolutionResult, error) {
	wl := workload.Prototype(cfg.Seed)
	if cfg.Workload != nil {
		wl = *cfg.Workload
	}
	sc, err := workload.Generate(wl)
	if err != nil {
		return nil, fmt.Errorf("evolution: workload: %w", err)
	}
	ev, err := cost.NewEvaluator(sc, cfg.Alpha)
	if err != nil {
		return nil, err
	}

	coreCfg := core.DefaultConfig(cfg.Seed)
	coreCfg.Beta = cfg.Beta
	eng, err := core.NewEngine(ev, coreCfg)
	if err != nil {
		return nil, err
	}

	var rt *confsim.Runtime
	if cfg.Measured {
		rt, err = confsim.New(sc, cfg.Alpha, confsim.DefaultConfig(cfg.Seed))
		if err != nil {
			return nil, err
		}
		eng.OnHop = func(timeS float64, _ model.SessionID, r core.HopResult) {
			if r.Moved {
				// Migration overhead accounting; the assignment itself is
				// re-synced wholesale after each slice.
				_ = rt.Migrate(timeS, r.Decision)
			}
		}
	}

	boot := cfg.Init.Bootstrapper(cfg.Alpha)
	initial := cfg.InitialSessions
	if initial <= 0 || initial > sc.NumSessions() {
		initial = sc.NumSessions()
	}
	for s := 0; s < initial; s++ {
		if err := eng.ActivateSession(model.SessionID(s), boot); err != nil {
			return nil, err
		}
	}
	if cfg.ArrivalCount > 0 {
		for i := 0; i < cfg.ArrivalCount; i++ {
			s := initial + i
			if s >= sc.NumSessions() {
				return nil, fmt.Errorf("evolution: arrival batch exceeds scenario sessions")
			}
			eng.ScheduleArrival(cfg.ArrivalTimeS, model.SessionID(s), boot)
		}
	}
	if cfg.DepartCount > 0 {
		for s := 0; s < cfg.DepartCount && s < initial; s++ {
			eng.ScheduleDeparture(cfg.DepartTimeS, model.SessionID(s))
		}
	}

	res := &EvolutionResult{
		PerSession:   make(map[model.SessionID][]SeriesPoint),
		SessionSizes: make(map[model.SessionID]int),
	}
	for s := 0; s < sc.NumSessions(); s++ {
		res.SessionSizes[model.SessionID(s)] = sc.Session(model.SessionID(s)).Size()
	}

	step := cfg.SampleEveryS
	if step <= 0 {
		step = 1
	}
	var allSamples []core.Sample
	for t := step; t <= cfg.DurationS+1e-9; t += step {
		samples, err := eng.Run(t, 0)
		if err != nil {
			return nil, err
		}
		allSamples = append(allSamples, samples...)
		if rt != nil {
			rt.SetAssignment(eng.Assignment())
			tel, err := rt.Tick(step)
			if err != nil {
				return nil, err
			}
			res.Measured = append(res.Measured, SeriesPoint{
				TimeS:       t,
				TrafficMbps: tel.InterAgentMbps,
				DelayMS:     tel.MeanDelayMS,
			})
		}
	}

	res.Control = resample(allSamples, 0, cfg.DurationS, step)
	if len(res.Control) > 0 {
		res.Initial = res.Control[0]
		res.Final = res.Control[len(res.Control)-1]
	}
	res.Hops, res.Moves = eng.Hops()
	if rt != nil {
		res.Migrations = rt.Stats().Migrations
	}

	// Per-session traces from the sample stream.
	for _, smp := range allSamples {
		for sid, ss := range smp.PerSession {
			pts := res.PerSession[sid]
			if n := len(pts); n > 0 && smp.TimeS < pts[n-1].TimeS {
				continue
			}
			res.PerSession[sid] = append(res.PerSession[sid], SeriesPoint{
				TimeS:       smp.TimeS,
				TrafficMbps: ss.TrafficMbps,
				DelayMS:     ss.MeanDelayMS,
			})
		}
	}
	return res, nil
}

// Rows renders a compact textual view of the series (every 10th sample).
func (r *EvolutionResult) Rows(label string) []string {
	rows := []string{fmt.Sprintf("%s | t0: traffic=%.2f Mbps delay=%.1f ms → tEnd: traffic=%.2f Mbps delay=%.1f ms (hops=%d moves=%d)",
		label, r.Initial.TrafficMbps, r.Initial.DelayMS, r.Final.TrafficMbps, r.Final.DelayMS, r.Hops, r.Moves)}
	for i, pt := range r.Control {
		if i%10 != 0 {
			continue
		}
		rows = append(rows, fmt.Sprintf("%s | t=%5.0fs traffic=%7.2f Mbps delay=%6.1f ms",
			label, pt.TimeS, pt.TrafficMbps, pt.DelayMS))
	}
	return rows
}
