package experiments

import (
	"fmt"

	"vconf/internal/anneal"
	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/cost"
	"vconf/internal/stats"
	"vconf/internal/workload"
)

// SolverCompareConfig drives the solver-comparison ablation (§IV-A-3 of the
// paper argues Markov approximation over simulated annealing and plain local
// search; this experiment quantifies the comparison on identical workloads
// from identical Nrst starts).
type SolverCompareConfig struct {
	Seed         int64
	NumScenarios int
	// DurationS is the Markov engine's virtual horizon per scenario.
	DurationS float64
	// AnnealIterations sizes the simulated-annealing budget.
	AnnealIterations int
	Workload         func(seed int64) workload.Config
}

// DefaultSolverCompareConfig compares on mid-size workloads.
func DefaultSolverCompareConfig(seed int64) SolverCompareConfig {
	return SolverCompareConfig{
		Seed:             seed,
		NumScenarios:     10,
		DurationS:        200,
		AnnealIterations: 20000,
	}
}

// SolverCompareResult holds per-solver objective/traffic/delay means.
type SolverCompareResult struct {
	Solvers []string
	// Objective[i], Traffic[i], Delay[i] are per-scenario vectors for
	// Solvers[i].
	Objective [][]float64
	Traffic   [][]float64
	Delay     [][]float64
}

// RunSolverCompare executes the comparison: Nrst start (reported as its own
// row), greedy best-response descent, simulated annealing, Markov
// approximation (Alg. 1), and the single-agent topology-control baseline.
func RunSolverCompare(cfg SolverCompareConfig) (*SolverCompareResult, error) {
	if cfg.NumScenarios < 1 || cfg.DurationS <= 0 || cfg.AnnealIterations < 1 {
		return nil, fmt.Errorf("solvercompare: invalid config")
	}
	wlOf := cfg.Workload
	if wlOf == nil {
		wlOf = workload.LargeScale
	}
	p := cost.DefaultParams()
	names := []string{"Nrst-start", "Greedy", "Anneal", "Alg1-Markov", "SingleAgent"}

	res := &SolverCompareResult{
		Solvers:   names,
		Objective: make([][]float64, len(names)),
		Traffic:   make([][]float64, len(names)),
		Delay:     make([][]float64, len(names)),
	}
	record := func(i int, ev *cost.Evaluator, a *assign.Assignment) {
		rep := ev.ReportSystem(a)
		res.Objective[i] = append(res.Objective[i], rep.Objective)
		res.Traffic[i] = append(res.Traffic[i], rep.InterTraffic)
		res.Delay[i] = append(res.Delay[i], rep.MeanDelayMS)
	}

	for i := 0; i < cfg.NumScenarios; i++ {
		seed := cfg.Seed + int64(i)*4099
		sc, err := workload.Generate(wlOf(seed))
		if err != nil {
			return nil, err
		}
		ev, err := cost.NewEvaluator(sc, p)
		if err != nil {
			return nil, err
		}
		start := assign.New(sc)
		if err := baseline.Assign(start, p, cost.NewLedger(sc)); err != nil {
			return nil, fmt.Errorf("solvercompare: scenario %d: %w", i, err)
		}
		record(0, ev, start)

		greedy, err := anneal.GreedyDescent(ev, start, anneal.DefaultGreedyConfig())
		if err != nil {
			return nil, err
		}
		record(1, ev, greedy.Assignment)

		aCfg := anneal.DefaultAnnealConfig(seed)
		aCfg.Iterations = cfg.AnnealIterations
		sa, err := anneal.SimulatedAnnealing(ev, start, aCfg)
		if err != nil {
			return nil, err
		}
		record(2, ev, sa.Assignment)

		markov, err := optimizeFrom(sc, start, p, cfg.DurationS, seed)
		if err != nil {
			return nil, err
		}
		record(3, ev, markov)

		single := assign.New(sc)
		if err := baseline.AssignSingleAgent(single, p, cost.NewLedger(sc)); err != nil {
			// Single-agent placement can be infeasible under tight delay
			// caps; record the Nrst values so vectors stay aligned.
			record(4, ev, start)
			continue
		}
		record(4, ev, single)
	}
	return res, nil
}

// Rows renders the comparison table.
func (r *SolverCompareResult) Rows() []string {
	rows := []string{"solvers | mean objective / inter-agent traffic (Mbps) / delay (ms), identical Nrst starts"}
	for i, name := range r.Solvers {
		rows = append(rows, fmt.Sprintf("solvers | %-12s Φ=%9.1f traffic=%8.1f delay=%6.1f",
			name, stats.Mean(r.Objective[i]), stats.Mean(r.Traffic[i]), stats.Mean(r.Delay[i])))
	}
	return rows
}
