package experiments

import (
	"fmt"
	"sort"

	"vconf/internal/model"
	"vconf/internal/workload"
)

// Fig4Result holds the β-comparison evolution runs of Fig. 4: traffic and
// delay over 200 s with Nrst initialization, β ∈ {200, 400}.
type Fig4Result struct {
	Beta200 *EvolutionResult
	Beta400 *EvolutionResult
}

// RunFig4 executes both runs on the same workload seed.
func RunFig4(seed int64, durationS float64) (*Fig4Result, error) {
	base := DefaultEvolutionConfig(seed)
	base.DurationS = durationS
	base.Measured = true

	b200 := base
	b200.Beta = 200
	r200, err := RunEvolution(b200)
	if err != nil {
		return nil, fmt.Errorf("fig4 β=200: %w", err)
	}
	b400 := base
	b400.Beta = 400
	r400, err := RunEvolution(b400)
	if err != nil {
		return nil, fmt.Errorf("fig4 β=400: %w", err)
	}
	return &Fig4Result{Beta200: r200, Beta400: r400}, nil
}

// Rows renders both series.
func (r *Fig4Result) Rows() []string {
	rows := r.Beta200.Rows("fig4 β=200")
	rows = append(rows, r.Beta400.Rows("fig4 β=400")...)
	rows = append(rows, fmt.Sprintf(
		"fig4 | summary: β=400 final traffic %.2f ≤ β=200 final traffic %.2f expected (faster convergence)",
		r.Beta400.Final.TrafficMbps, r.Beta200.Final.TrafficMbps))
	return rows
}

// RunFig5 executes the dynamics run of Fig. 5: 6 sessions at t = 0, 4 more
// arriving at t = 40 s, 3 departing at t = 80 s, β = 400. When the generated
// workload has fewer than 10 sessions, the arrival batch shrinks to what is
// available (the prototype workload's session count is itself random).
func RunFig5(seed int64, durationS float64) (*EvolutionResult, error) {
	wl := workload.Prototype(seed)
	sc, err := workload.Generate(wl)
	if err != nil {
		return nil, err
	}
	cfg := DefaultEvolutionConfig(seed)
	cfg.Workload = &wl
	cfg.DurationS = durationS
	cfg.InitialSessions = 6
	if cfg.InitialSessions > sc.NumSessions() {
		cfg.InitialSessions = sc.NumSessions()
	}
	cfg.ArrivalTimeS = 40
	cfg.ArrivalCount = 4
	if max := sc.NumSessions() - cfg.InitialSessions; cfg.ArrivalCount > max {
		cfg.ArrivalCount = max
	}
	cfg.DepartTimeS = 80
	cfg.DepartCount = 3
	if cfg.DepartCount > cfg.InitialSessions {
		cfg.DepartCount = cfg.InitialSessions
	}
	cfg.Measured = true
	return RunEvolution(cfg)
}

// RunFig6 executes the AgRank-initialization run of Fig. 6: same workload as
// Fig. 4 but bootstrapped by AgRank with n_ngbr = 2 and run for 100 s.
func RunFig6(seed int64, durationS float64) (*EvolutionResult, error) {
	cfg := DefaultEvolutionConfig(seed)
	cfg.DurationS = durationS
	cfg.Init = AgRank(2)
	cfg.Measured = true
	return RunEvolution(cfg)
}

// Fig7Result carries per-session traces for three sample sessions with
// different participant counts (paper: 5, 4 and 3 users).
type Fig7Result struct {
	Sessions []model.SessionID
	Sizes    []int
	Traces   map[model.SessionID][]SeriesPoint
}

// RunFig7 reuses the Fig. 4 workload (β = 400, Nrst init) and extracts
// per-session series for one session of each size 5, 4, 3 (falling back to
// whatever sizes exist).
func RunFig7(seed int64, durationS float64) (*Fig7Result, error) {
	cfg := DefaultEvolutionConfig(seed)
	cfg.DurationS = durationS
	res, err := RunEvolution(cfg)
	if err != nil {
		return nil, err
	}
	// Pick one session per target size, preferring 5, 4, 3.
	out := &Fig7Result{Traces: make(map[model.SessionID][]SeriesPoint)}
	var ids []model.SessionID
	for sid := range res.SessionSizes {
		ids = append(ids, sid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, want := range []int{5, 4, 3} {
		for _, sid := range ids {
			if res.SessionSizes[sid] == want && out.Traces[sid] == nil {
				out.Sessions = append(out.Sessions, sid)
				out.Sizes = append(out.Sizes, want)
				out.Traces[sid] = res.PerSession[sid]
				break
			}
		}
	}
	if len(out.Sessions) == 0 {
		return nil, fmt.Errorf("fig7: no sessions traced")
	}
	return out, nil
}

// Rows renders the per-session traces (start and end of each).
func (r *Fig7Result) Rows() []string {
	var rows []string
	for i, sid := range r.Sessions {
		pts := r.Traces[sid]
		if len(pts) == 0 {
			continue
		}
		first, last := pts[0], pts[len(pts)-1]
		rows = append(rows, fmt.Sprintf(
			"fig7 | session %d (%d users): traffic %.2f→%.2f Mbps, delay %.1f→%.1f ms over %d points",
			sid, r.Sizes[i], first.TrafficMbps, last.TrafficMbps, first.DelayMS, last.DelayMS, len(pts)))
	}
	return rows
}
