package experiments

import (
	"strings"
	"testing"

	"vconf/internal/workload"
)

func TestRunFig2ReproducesWalkthrough(t *testing.T) {
	res, err := RunFig2()
	if err != nil {
		t.Fatal(err)
	}
	// Paper numbers: via TO 27+67 = 94 < via SG 20+117 = 137.
	if res.HKViaTO != 94 || res.HKViaSG != 137 {
		t.Fatalf("walkthrough delays = %v/%v, want 94/137", res.HKViaTO, res.HKViaSG)
	}
	// Nrst subscribes HK to SG (its nearest); the optimum must do at least
	// as well on the objective and strictly better on traffic.
	if res.NearestAgents[3] != "SG" {
		t.Fatalf("Nrst put HK at %s, want SG", res.NearestAgents[3])
	}
	if res.OptimalRep.Objective > res.NearestRep.Objective {
		t.Fatal("optimal objective worse than nearest")
	}
	if res.OptimalRep.InterTraffic >= res.NearestRep.InterTraffic {
		t.Fatalf("optimal traffic %.2f not below nearest %.2f",
			res.OptimalRep.InterTraffic, res.NearestRep.InterTraffic)
	}
	if len(res.Rows()) < 3 {
		t.Fatal("missing output rows")
	}
}

func TestRunFig3(t *testing.T) {
	res, err := RunFig3(400, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumStates != 8 {
		t.Fatalf("states = %d, want 8", res.NumStates)
	}
	if !res.Connected {
		t.Fatal("chain not irreducible")
	}
	for i, d := range res.Degrees {
		if d != 3 {
			t.Fatalf("state %d degree = %d, want 3", i, d)
		}
	}
	sum := 0.0
	for _, p := range res.Stationary {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("stationary sums to %v", sum)
	}
	if len(res.Rows()) != 9 {
		t.Fatalf("rows = %d, want 9", len(res.Rows()))
	}
}

func TestRunEvolutionReducesTraffic(t *testing.T) {
	cfg := DefaultEvolutionConfig(11)
	cfg.DurationS = 120
	cfg.Measured = true
	res, err := RunEvolution(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.TrafficMbps > res.Initial.TrafficMbps {
		t.Fatalf("traffic rose: %.2f → %.2f", res.Initial.TrafficMbps, res.Final.TrafficMbps)
	}
	if res.Final.TrafficMbps >= res.Initial.TrafficMbps*0.9 {
		t.Fatalf("traffic barely improved: %.2f → %.2f", res.Initial.TrafficMbps, res.Final.TrafficMbps)
	}
	if len(res.Measured) == 0 {
		t.Fatal("measured series empty")
	}
	if res.Hops == 0 || res.Moves == 0 {
		t.Fatalf("no chain activity: %d/%d", res.Hops, res.Moves)
	}
	if res.Migrations == 0 {
		t.Fatal("data plane saw no migrations")
	}
	if len(res.Rows("x")) < 2 {
		t.Fatal("no rendered rows")
	}
}

func TestRunFig4BetaComparison(t *testing.T) {
	res, err := RunFig4(5, 80)
	if err != nil {
		t.Fatal(err)
	}
	// Both runs start from the same Nrst assignment.
	if res.Beta200.Initial.TrafficMbps != res.Beta400.Initial.TrafficMbps {
		t.Fatalf("initial traffic differs across β: %v vs %v",
			res.Beta200.Initial.TrafficMbps, res.Beta400.Initial.TrafficMbps)
	}
	for _, r := range []*EvolutionResult{res.Beta200, res.Beta400} {
		if r.Final.TrafficMbps > r.Initial.TrafficMbps {
			t.Fatal("β run did not reduce traffic")
		}
	}
	if len(res.Rows()) == 0 {
		t.Fatal("no rows")
	}
}

func TestRunFig5Dynamics(t *testing.T) {
	res, err := RunFig5(9, 120)
	if err != nil {
		t.Fatal(err)
	}
	// Traffic must jump at the arrival batch (t=40) and drop at the
	// departure batch (t=80).
	at := func(tm float64) float64 {
		v := 0.0
		for _, p := range res.Control {
			if p.TimeS <= tm {
				v = p.TrafficMbps
			}
		}
		return v
	}
	before, afterArr := at(39), at(45)
	if afterArr <= before {
		t.Fatalf("traffic did not rise on arrivals: %.2f → %.2f", before, afterArr)
	}
	beforeDep, afterDep := at(79), at(85)
	if afterDep >= beforeDep {
		t.Fatalf("traffic did not drop on departures: %.2f → %.2f", beforeDep, afterDep)
	}
}

func TestRunFig6AgRankInitBeatsNrstInit(t *testing.T) {
	seed := int64(13)
	fig6, err := RunFig6(seed, 60)
	if err != nil {
		t.Fatal(err)
	}
	nrstCfg := DefaultEvolutionConfig(seed)
	nrstCfg.DurationS = 60
	nrst, err := RunEvolution(nrstCfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 6 observation: AgRank's *initial* traffic is well
	// below Nrst's.
	if fig6.Initial.TrafficMbps >= nrst.Initial.TrafficMbps {
		t.Fatalf("AgRank init traffic %.2f not below Nrst init %.2f",
			fig6.Initial.TrafficMbps, nrst.Initial.TrafficMbps)
	}
}

func TestRunFig7TracesSessions(t *testing.T) {
	res, err := RunFig7(3, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) == 0 {
		t.Fatal("no sessions traced")
	}
	for _, sid := range res.Sessions {
		if len(res.Traces[sid]) == 0 {
			t.Fatalf("session %d trace empty", sid)
		}
	}
	if len(res.Rows()) != len(res.Sessions) {
		t.Fatal("row count mismatch")
	}
}

func smallWorkload(seed int64) workload.Config {
	wl := workload.LargeScale(seed)
	wl.NumUsers = 30
	wl.NumUserNodes = 64
	return wl
}

func TestRunAlphaSweepSmall(t *testing.T) {
	cfg := SweepConfig{Seed: 21, NumScenarios: 3, DurationS: 60, Workload: smallWorkload}
	res, err := RunAlphaSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3 || res.Skipped != 0 {
		t.Fatalf("completed/skipped = %d/%d, want 3/0", res.Completed, res.Skipped)
	}
	// Structural checks: every cell populated with one value per scenario.
	for _, init := range res.Inits {
		for _, col := range res.Columns {
			cell := res.Cell(init, col)
			if len(cell.Traffic) != 3 || len(cell.Delay) != 3 {
				t.Fatalf("cell %s|%s has %d/%d entries", init, col, len(cell.Traffic), len(cell.Delay))
			}
		}
	}
	// Shape checks from the paper:
	// (1) AgRank init traffic below Nrst init traffic.
	nrstInitT := mean(res.Cell("Nrst", "Init").Traffic)
	agInitT := mean(res.Cell("AgRank#2", "Init").Traffic)
	if agInitT >= nrstInitT {
		t.Fatalf("AgRank init traffic %.1f not below Nrst %.1f", agInitT, nrstInitT)
	}
	// (2) Alg. 1 under the balanced objective reduces Nrst's traffic.
	optT := mean(res.Cell("Nrst", "a1=a2").Traffic)
	if optT >= nrstInitT {
		t.Fatalf("Alg1 traffic %.1f not below Nrst init %.1f", optT, nrstInitT)
	}
	// (3) traffic-only runs end with no more traffic than delay-only runs.
	tOnly := mean(res.Cell("Nrst", "a1=0 (traffic only)").Traffic)
	dOnly := mean(res.Cell("Nrst", "a2=0 (delay only)").Traffic)
	if tOnly > dOnly+1e-6 {
		t.Fatalf("traffic-only traffic %.1f exceeds delay-only %.1f", tOnly, dOnly)
	}
	// (4) delay-only runs end with no more delay than traffic-only runs.
	dOnlyDelay := mean(res.Cell("Nrst", "a2=0 (delay only)").Delay)
	tOnlyDelay := mean(res.Cell("Nrst", "a1=0 (traffic only)").Delay)
	if dOnlyDelay > tOnlyDelay+1e-6 {
		t.Fatalf("delay-only delay %.1f exceeds traffic-only %.1f", dOnlyDelay, tOnlyDelay)
	}
	if len(res.Table2Rows()) < 5 || len(res.Fig8Rows()) != 8 {
		t.Fatalf("render sizes: %d table rows, %d fig8 rows", len(res.Table2Rows()), len(res.Fig8Rows()))
	}
}

func TestRunFig9SuccessMonotone(t *testing.T) {
	cfg := Fig9Config{
		Seed:                31,
		NumScenarios:        6,
		BandwidthPointsMbps: []float64{60, 120, 1000},
		TranscodePoints:     []int{1, 8},
		Workload:            smallWorkload,
	}
	res, err := RunFig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BandwidthSuccess) != 3 || len(res.TranscodeSuccess) != 2 {
		t.Fatal("sweep sizes wrong")
	}
	// More bandwidth ⇒ success never decreases, per policy.
	for pi := range res.Policies {
		for i := 1; i < len(res.BandwidthSuccess); i++ {
			if res.BandwidthSuccess[i][pi]+1e-9 < res.BandwidthSuccess[i-1][pi] {
				t.Fatalf("policy %s success not monotone in bandwidth", res.Policies[pi])
			}
		}
	}
	// At ample capacity everyone succeeds.
	last := res.BandwidthSuccess[len(res.BandwidthSuccess)-1]
	for pi, share := range last {
		if share != 1 {
			t.Fatalf("policy %s success %.2f at ample bandwidth, want 1", res.Policies[pi], share)
		}
	}
	// AgRank#3 ≥ AgRank#2 ≥ Nrst at every point (the paper's ordering).
	idx := map[string]int{}
	for i, p := range res.Policies {
		idx[p] = i
	}
	for i := range res.BandwidthSuccess {
		s := res.BandwidthSuccess[i]
		if s[idx["AgRank#3"]]+1e-9 < s[idx["AgRank#2"]] || s[idx["AgRank#2"]]+1e-9 < s[idx["Nrst"]] {
			t.Fatalf("policy ordering violated at bandwidth point %d: %v", i, s)
		}
	}
	if len(res.Rows()) == 0 {
		t.Fatal("no rows")
	}
}

func TestRunFig10Shape(t *testing.T) {
	cfg := Fig10Config{
		Seed:         41,
		NumScenarios: 4,
		NNgbrValues:  []int{1, 2, 7},
		Workload:     smallWorkload,
	}
	res, err := RunFig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// n_ngbr = 1 (≡ Nrst) must have the highest traffic (paper Fig. 10a).
	if res.TrafficMbps[0] <= res.TrafficMbps[1] {
		t.Fatalf("n_ngbr=1 traffic %.1f not above n_ngbr=2 %.1f",
			res.TrafficMbps[0], res.TrafficMbps[1])
	}
	// n_ngbr = L concentrates sessions on one agent: delay is the largest
	// (paper Fig. 10b).
	if res.DelayMS[2] <= res.DelayMS[0] {
		t.Fatalf("n_ngbr=L delay %.1f not above n_ngbr=1 %.1f", res.DelayMS[2], res.DelayMS[0])
	}
	if len(res.Rows()) != 4 {
		t.Fatal("row count")
	}
}

func TestRunThm1BoundsHold(t *testing.T) {
	cfg := DefaultThm1Config(51)
	cfg.Betas = []float64{10, 50}
	cfg.HorizonS = 8000
	res, err := RunThm1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 2 {
		t.Fatal("row count")
	}
	prevGap := 1e18
	for _, row := range res.Entries {
		if row.AnalyticGap < -1e-9 || row.AnalyticGap > row.Bound+1e-9 {
			t.Fatalf("β=%v analytic gap %v outside [0, %v]", row.Beta, row.AnalyticGap, row.Bound)
		}
		// Empirical gap within bound plus simulation slack.
		if row.EmpiricalGap < -0.5 || row.EmpiricalGap > row.Bound*1.2+1 {
			t.Fatalf("β=%v empirical gap %v far outside bound %v", row.Beta, row.EmpiricalGap, row.Bound)
		}
		if row.NoisyGap > row.NoisyBound*1.2+1 {
			t.Fatalf("β=%v noisy gap %v exceeds noisy bound %v", row.Beta, row.NoisyGap, row.NoisyBound)
		}
		// Analytic gap shrinks with β.
		if row.AnalyticGap > prevGap+1e-9 {
			t.Fatal("analytic gap not decreasing in β")
		}
		prevGap = row.AnalyticGap
	}
	if len(res.Rows()) != 3 {
		t.Fatal("rendered rows")
	}
}

func TestSweepConfigValidation(t *testing.T) {
	if _, err := RunAlphaSweep(SweepConfig{NumScenarios: 0, DurationS: 10}); err == nil {
		t.Fatal("zero scenarios accepted")
	}
	if _, err := RunAlphaSweep(SweepConfig{NumScenarios: 1, DurationS: 0}); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := RunFig9(Fig9Config{NumScenarios: 0}); err == nil {
		t.Fatal("fig9 zero scenarios accepted")
	}
	if _, err := RunFig10(Fig10Config{NumScenarios: 0}); err == nil {
		t.Fatal("fig10 zero scenarios accepted")
	}
	if _, err := RunThm1(Thm1Config{}); err == nil {
		t.Fatal("thm1 empty config accepted")
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestRowsRenderNonEmpty(t *testing.T) {
	res, err := RunFig3(400, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows() {
		if !strings.HasPrefix(row, "fig3 |") {
			t.Fatalf("row %q missing prefix", row)
		}
	}
}

func TestRunSolverCompare(t *testing.T) {
	cfg := SolverCompareConfig{
		Seed:             61,
		NumScenarios:     2,
		DurationS:        60,
		AnnealIterations: 4000,
		Workload:         smallWorkload,
	}
	res, err := RunSolverCompare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solvers) != 5 {
		t.Fatalf("solvers = %d, want 5", len(res.Solvers))
	}
	for i, name := range res.Solvers {
		if len(res.Objective[i]) != 2 {
			t.Fatalf("%s has %d observations, want 2", name, len(res.Objective[i]))
		}
	}
	start := mean(res.Objective[0])
	for _, i := range []int{1, 2, 3} {
		if mean(res.Objective[i]) > start {
			t.Fatalf("%s mean objective %v above Nrst start %v",
				res.Solvers[i], mean(res.Objective[i]), start)
		}
	}
	// The single-agent baseline zeroes traffic by construction (when
	// feasible) but does not beat the optimizers on the balanced objective.
	if len(res.Rows()) != 6 {
		t.Fatal("row count")
	}
	if _, err := RunSolverCompare(SolverCompareConfig{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunBetaSweep(t *testing.T) {
	cfg := BetaSweepConfig{
		Seed:         71,
		Betas:        []float64{50, 400},
		NumScenarios: 2,
		DurationS:    100,
	}
	res, err := RunBetaSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows_) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows_))
	}
	for _, row := range res.Rows_ {
		if row.FinalPhi <= 0 {
			t.Fatalf("β=%v: non-positive final objective", row.Beta)
		}
		if row.ConvergenceS < 0 || row.ConvergenceS > cfg.DurationS {
			t.Fatalf("β=%v: convergence time %v outside run", row.Beta, row.ConvergenceS)
		}
		if row.Fluctuation < 0 {
			t.Fatalf("β=%v: negative fluctuation", row.Beta)
		}
	}
	// §IV-A-4: the low-β chain fluctuates at least as much as the high-β
	// chain (it accepts uphill moves more readily).
	if res.Rows_[0].Fluctuation+1e-9 < res.Rows_[1].Fluctuation {
		t.Fatalf("β=50 fluctuation %.5f below β=400 %.5f",
			res.Rows_[0].Fluctuation, res.Rows_[1].Fluctuation)
	}
	if len(res.Rows()) != 3 {
		t.Fatal("row render count")
	}
	if _, err := RunBetaSweep(BetaSweepConfig{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
