package experiments

import (
	"fmt"

	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/exact"
	"vconf/internal/model"
	"vconf/internal/noise"
)

// Thm1Config drives the Theorem-1 validation: analytic and empirical
// optimality gaps of the Markov chain on the enumerable Fig. 3 instance,
// with and without quantized measurement noise.
type Thm1Config struct {
	Betas []float64
	// Scale is the objective scale (see core.Config.ObjectiveScale).
	Scale float64
	// HorizonS is the virtual time simulated per empirical measurement.
	HorizonS float64
	// NoiseDelta is the Δ bound of the perturbed runs (raw Φ units).
	NoiseDelta float64
	NoiseLevel int
	Seed       int64
}

// DefaultThm1Config covers a β range that shows the gap shrinking.
func DefaultThm1Config(seed int64) Thm1Config {
	return Thm1Config{
		Betas:      []float64{5, 10, 20, 50, 100},
		Scale:      0.01,
		HorizonS:   30000,
		NoiseDelta: 5,
		NoiseLevel: 3,
		Seed:       seed,
	}
}

// Thm1Row is one β's measurements.
type Thm1Row struct {
	Beta         float64
	Bound        float64 // (U+θsum)·logL/(β·scale), raw Φ units
	AnalyticGap  float64 // Φ_avg(p*) − Φ_min
	EmpiricalGap float64 // time-weighted empirical Φ̄ − Φ_min (noiseless chain)
	NoisyGap     float64 // same under quantized measurement noise
	NoisyBound   float64 // bound + Δmax
}

// Thm1Result holds the table.
type Thm1Result struct {
	Entries []Thm1Row
	PhiMin  float64
	NumStat int
}

// RunThm1 executes the validation.
func RunThm1(cfg Thm1Config) (*Thm1Result, error) {
	if len(cfg.Betas) == 0 || cfg.Scale <= 0 || cfg.HorizonS <= 0 {
		return nil, fmt.Errorf("thm1: invalid config")
	}
	sc, err := BuildFig3Scenario()
	if err != nil {
		return nil, err
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		return nil, err
	}
	enum, err := exact.Enumerate(ev, 0)
	if err != nil {
		return nil, err
	}

	res := &Thm1Result{PhiMin: enum.MinPhi, NumStat: len(enum.States)}
	for _, beta := range cfg.Betas {
		row := Thm1Row{
			Beta:  beta,
			Bound: exact.GapBound(sc, beta, cfg.Scale),
		}
		row.AnalyticGap = enum.ExpectedPhi(enum.Stationary(beta, cfg.Scale)) - enum.MinPhi

		emp, err := empiricalMeanPhi(ev, enum, beta, cfg, nil)
		if err != nil {
			return nil, err
		}
		row.EmpiricalGap = emp - enum.MinPhi

		q, err := noise.NewQuantized(cfg.NoiseDelta, cfg.NoiseLevel, cfg.Seed+int64(beta))
		if err != nil {
			return nil, err
		}
		noisy, err := empiricalMeanPhi(ev, enum, beta, cfg, q.Perturb)
		if err != nil {
			return nil, err
		}
		row.NoisyGap = noisy - enum.MinPhi
		row.NoisyBound = row.Bound + q.MaxError()

		res.Entries = append(res.Entries, row)
	}
	return res, nil
}

// empiricalMeanPhi runs the ExactCTMC chain and returns the time-weighted
// mean objective.
func empiricalMeanPhi(ev *cost.Evaluator, enum *exact.Enumeration, beta float64, cfg Thm1Config, nf core.NoiseFunc) (float64, error) {
	coreCfg := core.Config{
		Beta:           beta,
		ObjectiveScale: cfg.Scale,
		MeanCountdownS: 1,
		Mode:           core.ExactCTMC,
		Seed:           cfg.Seed,
		Noise:          nf,
	}
	eng, err := core.NewEngine(ev, coreCfg)
	if err != nil {
		return 0, err
	}
	p := ev.Params()
	boot := func(a *assign.Assignment, s model.SessionID, ledger cost.LedgerAPI) error {
		return baseline.AssignSessionNearest(a, s, p, ledger)
	}
	if err := eng.ActivateSession(0, boot); err != nil {
		return 0, err
	}

	var weighted, lastT, lastPhi float64
	lastPhi = phiOf(enum, eng.Assignment().Encode())
	eng.OnHop = func(timeS float64, _ model.SessionID, _ core.HopResult) {
		weighted += lastPhi * (timeS - lastT)
		lastT = timeS
		lastPhi = phiOf(enum, eng.Assignment().Encode())
	}
	if _, err := eng.Run(cfg.HorizonS, 0); err != nil {
		return 0, err
	}
	weighted += lastPhi * (cfg.HorizonS - lastT)
	return weighted / cfg.HorizonS, nil
}

func phiOf(enum *exact.Enumeration, key string) float64 {
	if i, ok := enum.Index[key]; ok {
		return enum.States[i].Phi
	}
	return 0
}

// Rows renders the validation table.
func (r *Thm1Result) Rows() []string {
	rows := []string{fmt.Sprintf("thm1 | Φ_min=%.2f over %d states; gaps in raw Φ units", r.PhiMin, r.NumStat)}
	for _, row := range r.Entries {
		rows = append(rows, fmt.Sprintf(
			"thm1 | β=%5.0f bound=%7.2f analytic=%6.2f empirical=%6.2f noisy=%6.2f noisy-bound=%7.2f",
			row.Beta, row.Bound, row.AnalyticGap, row.EmpiricalGap, row.NoisyGap, row.NoisyBound))
	}
	return rows
}
