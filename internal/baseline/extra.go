package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"vconf/internal/assign"
	"vconf/internal/cost"
	"vconf/internal/model"
)

// This file adds two more comparison policies beyond Nrst:
//
//   - Random assignment: a calibration floor — any sensible policy must beat
//     it; useful for sanity-checking experiment pipelines.
//   - Single-agent ("topology control"): per session, subscribe every
//     participant to the one agent minimizing the session's worst
//     end-to-end delay, with transcoding co-located. This mirrors the
//     delay-only server-selection approach of Zhang et al. (NOSSDAV'14),
//     cited as [24] in the paper's related work: it ignores provider cost
//     entirely and optimizes latency by topology choice.

// AssignSessionRandom bootstraps session s uniformly at random over agents
// (users and transcoding tasks independently), retrying up to maxTries to
// find a feasible draw. On success the load is added to the ledger.
func AssignSessionRandom(a *assign.Assignment, s model.SessionID, p cost.Params, ledger cost.LedgerAPI, rng *rand.Rand, maxTries int) error {
	sc := a.Scenario()
	if maxTries < 1 {
		maxTries = 1
	}
	for try := 0; try < maxTries; try++ {
		for _, u := range sc.Session(s).Users {
			a.SetUserAgent(u, model.AgentID(rng.Intn(sc.NumAgents())))
		}
		for _, f := range a.SessionFlows(s) {
			if err := a.SetFlowAgent(f, model.AgentID(rng.Intn(sc.NumAgents()))); err != nil {
				rollbackSession(a, s)
				return err
			}
		}
		load := p.SessionLoadOf(a, s)
		// Atomic check-then-add (see LedgerAPI.TryAdd): final admission must
		// not validate against usage a concurrent commit then grows.
		if cost.DelayFeasible(a, s) && ledger.TryAdd(load) {
			return nil
		}
	}
	rollbackSession(a, s)
	return fmt.Errorf("%w: session %d found no feasible random draw in %d tries",
		ErrInfeasible, s, maxTries)
}

// AssignRandom bootstraps every session randomly in ID order.
func AssignRandom(a *assign.Assignment, p cost.Params, ledger cost.LedgerAPI, seed int64, maxTries int) error {
	sc := a.Scenario()
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < sc.NumSessions(); s++ {
		if err := AssignSessionRandom(a, model.SessionID(s), p, ledger, rng, maxTries); err != nil {
			return err
		}
	}
	return nil
}

// AssignSessionSingleAgent bootstraps session s onto the single agent that
// minimizes the session's mean per-user delay (F's shape), among agents
// whose capacity can absorb the whole session. Transcoding runs at the same
// agent, so the session generates zero inter-agent traffic — the
// delay-driven "topology control" extreme.
func AssignSessionSingleAgent(a *assign.Assignment, s model.SessionID, p cost.Params, ledger cost.LedgerAPI) error {
	sc := a.Scenario()
	bestAgent := model.AgentID(-1)
	bestDelay := math.Inf(1)
	for l := 0; l < sc.NumAgents(); l++ {
		placeSessionAt(a, s, model.AgentID(l))
		load := p.SessionLoadOf(a, s)
		if !ledger.Fits(load) || !cost.DelayFeasible(a, s) {
			continue
		}
		if d := cost.SessionDelaysOf(a, s).MeanOfMaxMS; d < bestDelay {
			bestDelay = d
			bestAgent = model.AgentID(l)
		}
	}
	if bestAgent < 0 {
		rollbackSession(a, s)
		return fmt.Errorf("%w: session %d fits no single agent", ErrInfeasible, s)
	}
	placeSessionAt(a, s, bestAgent)
	// The scan's Fits ran arbitrarily earlier; re-validate and account in
	// one critical section (single-owner contexts always succeed here).
	if !ledger.TryAdd(p.SessionLoadOf(a, s)) {
		rollbackSession(a, s)
		return fmt.Errorf("%w: session %d lost its single-agent capacity to a concurrent admission",
			ErrInfeasible, s)
	}
	return nil
}

// AssignSingleAgent bootstraps every session onto its best single agent.
func AssignSingleAgent(a *assign.Assignment, p cost.Params, ledger cost.LedgerAPI) error {
	sc := a.Scenario()
	for s := 0; s < sc.NumSessions(); s++ {
		if err := AssignSessionSingleAgent(a, model.SessionID(s), p, ledger); err != nil {
			return err
		}
	}
	return nil
}

func placeSessionAt(a *assign.Assignment, s model.SessionID, l model.AgentID) {
	sc := a.Scenario()
	for _, u := range sc.Session(s).Users {
		a.SetUserAgent(u, l)
	}
	for _, f := range a.SessionFlows(s) {
		// Session flows always exist in the table.
		_ = a.SetFlowAgent(f, l)
	}
}
