// Package baseline implements the nearest-assignment policy (Nrst) the paper
// compares against — the user-to-agent policy of Airlift [11] and vSkyConf
// [21]: every user subscribes to its delay-nearest agent, and each
// transcoding task runs at the source user's agent.
//
// Nrst is deliberately resource-oblivious (§V-B-3): it never falls back to
// another agent when capacities are exhausted, which is exactly why its
// admission success rate collapses under tight capacities in Fig. 9.
package baseline

import (
	"errors"
	"fmt"

	"vconf/internal/assign"
	"vconf/internal/cost"
	"vconf/internal/model"
)

// ErrInfeasible reports that a session could not be admitted under its
// policy without violating capacity or delay constraints.
var ErrInfeasible = errors.New("baseline: session admission infeasible")

// AssignSessionNearest bootstraps session s with the Nrst policy: each user
// to its nearest agent, each transcoding flow to the source's agent. On
// success the session's load is added to the ledger. On failure the
// session's variables are rolled back to Unassigned and ErrInfeasible is
// returned (wrapped with detail).
func AssignSessionNearest(a *assign.Assignment, s model.SessionID, p cost.Params, ledger cost.LedgerAPI) error {
	sc := a.Scenario()
	for _, u := range sc.Session(s).Users {
		a.SetUserAgent(u, sc.NearestAgent(u))
	}
	for _, f := range a.SessionFlows(s) {
		if err := a.SetFlowAgent(f, a.UserAgent(f.Src)); err != nil {
			rollbackSession(a, s)
			return err
		}
	}
	load := p.SessionLoadOf(a, s)
	if !cost.DelayFeasible(a, s) {
		rollbackSession(a, s)
		return fmt.Errorf("%w: session %d violates the delay cap under nearest assignment", ErrInfeasible, s)
	}
	// Atomic check-then-add (see LedgerAPI.TryAdd): admission must not
	// validate against usage a concurrent worker commit then grows.
	if !ledger.TryAdd(load) {
		rollbackSession(a, s)
		return fmt.Errorf("%w: session %d exceeds agent capacity under nearest assignment", ErrInfeasible, s)
	}
	return nil
}

// Assign bootstraps every session of the scenario in ID order with Nrst.
// It stops at the first infeasible session, leaving earlier sessions
// admitted in the assignment and ledger; callers running success-rate
// experiments treat any error as a failed scenario.
func Assign(a *assign.Assignment, p cost.Params, ledger cost.LedgerAPI) error {
	sc := a.Scenario()
	for s := 0; s < sc.NumSessions(); s++ {
		if err := AssignSessionNearest(a, model.SessionID(s), p, ledger); err != nil {
			return err
		}
	}
	return nil
}

// rollbackSession clears every decision of session s.
func rollbackSession(a *assign.Assignment, s model.SessionID) {
	sc := a.Scenario()
	for _, u := range sc.Session(s).Users {
		a.SetUserAgent(u, assign.Unassigned)
	}
	for _, f := range a.SessionFlows(s) {
		// Flows of the session always exist in the assignment table.
		_ = a.SetFlowAgent(f, assign.Unassigned)
	}
}

// RemoveSession evicts an admitted session: subtracts its load from the
// ledger and clears its decision variables. Used by the dynamics experiments
// when sessions depart (Fig. 5).
func RemoveSession(a *assign.Assignment, s model.SessionID, p cost.Params, ledger cost.LedgerAPI) {
	ledger.Remove(p.SessionLoadOf(a, s))
	rollbackSession(a, s)
}
