package baseline

import (
	"errors"
	"math/rand"
	"testing"

	"vconf/internal/assign"
	"vconf/internal/cost"
	"vconf/internal/model"
)

func TestAssignRandomFeasible(t *testing.T) {
	sc, _ := buildScenario(t, 1000, 1000, 4)
	a := assign.New(sc)
	p := cost.DefaultParams()
	ledger := cost.NewLedger(sc)
	if err := AssignRandom(a, p, ledger, 7, 50); err != nil {
		t.Fatalf("AssignRandom: %v", err)
	}
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.CheckFeasible(a); err != nil {
		t.Fatalf("random assignment infeasible: %v", err)
	}
}

func TestAssignRandomDeterministicPerSeed(t *testing.T) {
	sc, _ := buildScenario(t, 1000, 1000, 4)
	p := cost.DefaultParams()
	run := func(seed int64) string {
		a := assign.New(sc)
		if err := AssignRandom(a, p, cost.NewLedger(sc), seed, 50); err != nil {
			t.Fatal(err)
		}
		return a.Encode()
	}
	if run(3) != run(3) {
		t.Fatal("same seed produced different assignments")
	}
}

func TestAssignRandomExhaustsTriesOnImpossible(t *testing.T) {
	// Zero transcoding slots everywhere: no draw can ever be feasible.
	sc, _ := buildScenario(t, 1000, 1000, 0)
	a := assign.New(sc)
	rng := rand.New(rand.NewSource(1))
	err := AssignSessionRandom(a, 0, cost.DefaultParams(), cost.NewLedger(sc), rng, 25)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if a.UserAgent(0) != assign.Unassigned {
		t.Fatal("failed random admission not rolled back")
	}
}

func TestAssignSingleAgentPicksDelayMinimizer(t *testing.T) {
	// Agent 1 is closer to both users on average: single-agent policy must
	// choose it for the whole session.
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r1080, _ := rs.ByName("1080p")
	b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 4})
	b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 4})
	s := b.AddSession("s")
	u0 := b.AddUser("u0", s, r1080, nil)
	u1 := b.AddUser("u1", s, r1080, nil)
	b.DemandFrom(u1, u0, r360)
	b.SetInterAgentDelays([][]float64{{0, 30}, {30, 0}})
	b.SetAgentUserDelays([][]float64{{50, 60}, {20, 25}})
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := assign.New(sc)
	p := cost.DefaultParams()
	ledger := cost.NewLedger(sc)
	if err := AssignSingleAgent(a, p, ledger); err != nil {
		t.Fatal(err)
	}
	if a.UserAgent(u0) != 1 || a.UserAgent(u1) != 1 {
		t.Fatalf("users at %d/%d, want both at agent 1", a.UserAgent(u0), a.UserAgent(u1))
	}
	if m, _ := a.FlowAgent(model.Flow{Src: u0, Dst: u1}); m != 1 {
		t.Fatalf("transcoder at %d, want co-located agent 1", m)
	}
	// Zero inter-agent traffic by construction.
	if got := p.SessionLoadOf(a, 0).TotalInterTraffic(); got != 0 {
		t.Fatalf("single-agent traffic = %v, want 0", got)
	}
}

func TestAssignSingleAgentRespectsCapacity(t *testing.T) {
	// Agent 1 is delay-best but too small; policy must fall back to agent 0.
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r720, _ := rs.ByName("720p")
	b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 4})
	b.AddAgent(model.Agent{Upload: 6, Download: 6, TranscodeSlots: 4})
	s := b.AddSession("s")
	b.AddUser("u0", s, r720, nil)
	b.AddUser("u1", s, r720, nil)
	b.SetInterAgentDelays([][]float64{{0, 30}, {30, 0}})
	b.SetAgentUserDelays([][]float64{{50, 60}, {20, 25}})
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := assign.New(sc)
	if err := AssignSingleAgent(a, cost.DefaultParams(), cost.NewLedger(sc)); err != nil {
		t.Fatal(err)
	}
	if a.UserAgent(0) != 0 || a.UserAgent(1) != 0 {
		t.Fatal("policy must fall back to the agent with capacity")
	}
}

func TestAssignSingleAgentInfeasible(t *testing.T) {
	sc, _ := buildScenario(t, 6, 6, 4) // no agent can hold the session
	a := assign.New(sc)
	err := AssignSingleAgent(a, cost.DefaultParams(), cost.NewLedger(sc))
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}
