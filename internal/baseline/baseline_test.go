package baseline

import (
	"errors"
	"testing"

	"vconf/internal/assign"
	"vconf/internal/cost"
	"vconf/internal/model"
)

// scenario: 2 agents, one session with two users; user 0 nearest agent 0,
// user 1 nearest agent 1; u1 demands 360p of u0's 1080p.
func buildScenario(t *testing.T, up, down float64, slots int) (*model.Scenario, model.Flow) {
	t.Helper()
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r720, _ := rs.ByName("720p")
	r1080, _ := rs.ByName("1080p")
	for i := 0; i < 2; i++ {
		b.AddAgent(model.Agent{Upload: up, Download: down, TranscodeSlots: slots})
	}
	s := b.AddSession("s")
	u0 := b.AddUser("u0", s, r1080, nil)
	u1 := b.AddUser("u1", s, r720, nil)
	b.DemandFrom(u1, u0, r360)
	b.SetInterAgentDelays([][]float64{{0, 20}, {20, 0}})
	b.SetAgentUserDelays([][]float64{{5, 50}, {50, 5}})
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sc, model.Flow{Src: u0, Dst: u1}
}

func TestNearestAssignsNearestAndSourceTranscoding(t *testing.T) {
	sc, f := buildScenario(t, 1000, 1000, 4)
	a := assign.New(sc)
	p := cost.DefaultParams()
	ledger := cost.NewLedger(sc)
	if err := Assign(a, p, ledger); err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if a.UserAgent(0) != 0 || a.UserAgent(1) != 1 {
		t.Fatalf("users at %d,%d; want 0,1", a.UserAgent(0), a.UserAgent(1))
	}
	if m, _ := a.FlowAgent(f); m != 0 {
		t.Fatalf("transcoder at %d, want source agent 0", m)
	}
	if !a.Complete() {
		t.Fatal("assignment incomplete after Assign")
	}
	// Ledger must carry exactly this session's load.
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.CheckFeasible(a); err != nil {
		t.Fatalf("CheckFeasible: %v", err)
	}
}

func TestNearestRollsBackOnCapacityFailure(t *testing.T) {
	// 6 Mbps download cannot take u0's 8 Mbps upstream at agent 0.
	sc, _ := buildScenario(t, 6, 6, 4)
	a := assign.New(sc)
	ledger := cost.NewLedger(sc)
	err := Assign(a, cost.DefaultParams(), ledger)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Assign error = %v, want ErrInfeasible", err)
	}
	for u := 0; u < sc.NumUsers(); u++ {
		if a.UserAgent(model.UserID(u)) != assign.Unassigned {
			t.Fatalf("user %d not rolled back", u)
		}
	}
	down, up, tasks := ledger.Usage()
	for l := range down {
		if down[l] != 0 || up[l] != 0 || tasks[l] != 0 {
			t.Fatal("ledger polluted by failed admission")
		}
	}
}

func TestNearestFailsOnZeroTranscodeSlots(t *testing.T) {
	sc, _ := buildScenario(t, 1000, 1000, 0)
	a := assign.New(sc)
	err := Assign(a, cost.DefaultParams(), cost.NewLedger(sc))
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Assign error = %v, want ErrInfeasible (no slots)", err)
	}
}

func TestNearestFailsOnDelayCap(t *testing.T) {
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r720, _ := rs.ByName("720p")
	b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 4})
	b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 4})
	s := b.AddSession("s")
	b.AddUser("u0", s, r720, nil)
	b.AddUser("u1", s, r720, nil)
	// Inter-agent delay alone busts the 400 ms cap.
	b.SetInterAgentDelays([][]float64{{0, 500}, {500, 0}})
	b.SetAgentUserDelays([][]float64{{5, 50}, {50, 5}})
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := assign.New(sc)
	errAssign := Assign(a, cost.DefaultParams(), cost.NewLedger(sc))
	if !errors.Is(errAssign, ErrInfeasible) {
		t.Fatalf("Assign error = %v, want ErrInfeasible (delay)", errAssign)
	}
}

func TestRemoveSessionRestoresLedger(t *testing.T) {
	sc, _ := buildScenario(t, 1000, 1000, 4)
	a := assign.New(sc)
	p := cost.DefaultParams()
	ledger := cost.NewLedger(sc)
	if err := Assign(a, p, ledger); err != nil {
		t.Fatal(err)
	}
	RemoveSession(a, 0, p, ledger)
	down, up, tasks := ledger.Usage()
	for l := range down {
		if down[l] != 0 || up[l] != 0 || tasks[l] != 0 {
			t.Fatal("ledger not restored after RemoveSession")
		}
	}
	if a.UserAgent(0) != assign.Unassigned {
		t.Fatal("session decisions not cleared")
	}
}

func TestAssignMultipleSessionsSharedCapacity(t *testing.T) {
	// Two identical sessions share two agents; capacity fits exactly one
	// session per agent pair configuration → second admission must fail
	// when capacity is tight but succeed when ample.
	build := func(t *testing.T, cap float64) *model.Scenario {
		b := model.NewBuilder(nil)
		rs := b.Reps()
		r720, _ := rs.ByName("720p")
		for i := 0; i < 2; i++ {
			b.AddAgent(model.Agent{Upload: cap, Download: cap, TranscodeSlots: 4})
		}
		for si := 0; si < 2; si++ {
			s := b.AddSession("s")
			b.AddUser("a", s, r720, nil)
			b.AddUser("b", s, r720, nil)
		}
		h := [][]float64{{5, 50, 5, 50}, {50, 5, 50, 5}}
		b.SetAgentUserDelays(h)
		b.SetInterAgentDelays([][]float64{{0, 20}, {20, 0}})
		sc, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	// Per session per agent: down = 5 (upstream) + 5 (incoming) = 10;
	// up = 5 (downstream) + 5 (outgoing) = 10. Two sessions need 20.
	sc := build(t, 12)
	a := assign.New(sc)
	ledger := cost.NewLedger(sc)
	err := Assign(a, cost.DefaultParams(), ledger)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("tight capacity: err = %v, want ErrInfeasible", err)
	}
	// First session must remain admitted.
	if a.UserAgent(0) == assign.Unassigned {
		t.Fatal("session 0 should stay admitted after session 1 fails")
	}

	sc2 := build(t, 25)
	a2 := assign.New(sc2)
	if err := Assign(a2, cost.DefaultParams(), cost.NewLedger(sc2)); err != nil {
		t.Fatalf("ample capacity: %v", err)
	}
}
