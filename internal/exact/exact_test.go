package exact

import (
	"math"
	"testing"

	"vconf/internal/assign"
	"vconf/internal/cost"
	"vconf/internal/model"
)

// fig3Scenario reproduces the paper's Fig. 3 instance: 1 session, 2 users,
// 1 transcoding operation, 2 agents, ample capacity, Dmax never binding
// ⇒ exactly 2×2×2 = 8 feasible assignments.
func fig3Scenario(t *testing.T) *model.Scenario {
	t.Helper()
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r720, _ := rs.ByName("720p")
	for i := 0; i < 2; i++ {
		b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 4,
			SigmaMS: model.UniformSigma(rs.Len(), 40)})
	}
	s := b.AddSession("s")
	u1 := b.AddUser("U1", s, r720, nil)
	u2 := b.AddUser("U2", s, r720, nil)
	b.DemandFrom(u2, u1, r360)
	b.SetInterAgentDelays([][]float64{{0, 25}, {25, 0}})
	b.SetAgentUserDelays([][]float64{{5, 30}, {30, 5}})
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func evaluator(t *testing.T, sc *model.Scenario) *cost.Evaluator {
	t.Helper()
	ev, err := cost.NewEvaluator(sc, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestEnumerateFig3Has8States(t *testing.T) {
	sc := fig3Scenario(t)
	enum, err := Enumerate(evaluator(t, sc), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(enum.States) != 8 {
		t.Fatalf("states = %d, want 8 (Fig. 3)", len(enum.States))
	}
	if enum.ArgMin < 0 || math.IsInf(enum.MinPhi, 1) {
		t.Fatal("no optimum recorded")
	}
	// Each state of a 3-binary-variable space has exactly 3 one-flip
	// neighbors — the cube of Fig. 3(b).
	for i, nbrs := range enum.Neighbors() {
		if len(nbrs) != 3 {
			t.Fatalf("state %d has %d neighbors, want 3", i, len(nbrs))
		}
	}
	if !enum.Connected() {
		t.Fatal("Fig. 3 chain must be irreducible")
	}
}

func TestEnumerateOptimumIsColocated(t *testing.T) {
	// With ample capacity the cheapest state co-locates both users and the
	// transcoding at one agent: zero inter-agent traffic and minimal delay.
	sc := fig3Scenario(t)
	enum, err := Enumerate(evaluator(t, sc), 0)
	if err != nil {
		t.Fatal(err)
	}
	best := enum.States[enum.ArgMin].A
	if best.UserAgent(0) != best.UserAgent(1) {
		t.Fatalf("optimal state splits users: %v", best)
	}
	if m, _ := best.FlowAgent(model.Flow{Src: 0, Dst: 1}); m != best.UserAgent(0) {
		t.Fatalf("optimal transcoder not co-located: %v", best)
	}
}

func TestEnumerateRespectsCapacityFiltering(t *testing.T) {
	// Shrink agent 1 so any state touching it is infeasible: feasible space
	// collapses to the single all-at-agent-0 state.
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r720, _ := rs.ByName("720p")
	b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 4})
	b.AddAgent(model.Agent{Upload: 0.1, Download: 0.1, TranscodeSlots: 0})
	s := b.AddSession("s")
	u1 := b.AddUser("U1", s, r720, nil)
	b.AddUser("U2", s, r720, nil)
	_ = u1
	b.DemandFrom(1, 0, r360)
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	enum, err := Enumerate(evaluator(t, sc), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(enum.States) != 1 {
		t.Fatalf("states = %d, want 1", len(enum.States))
	}
	st := enum.States[0].A
	if st.UserAgent(0) != 0 || st.UserAgent(1) != 0 {
		t.Fatal("surviving state should be all-at-agent-0")
	}
}

func TestEnumerateLimit(t *testing.T) {
	sc := fig3Scenario(t)
	if _, err := Enumerate(evaluator(t, sc), 4); err == nil {
		t.Fatal("Enumerate should refuse when combinations exceed the limit")
	}
}

func TestEnumerateNoFeasible(t *testing.T) {
	// Zero transcoding slots anywhere: the θ flow can never be placed.
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r720, _ := rs.ByName("720p")
	b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 0})
	s := b.AddSession("s")
	b.AddUser("U1", s, r720, nil)
	b.AddUser("U2", s, r720, nil)
	b.DemandFrom(1, 0, r360)
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Enumerate(evaluator(t, sc), 0); err == nil {
		t.Fatal("Enumerate should fail when no feasible assignment exists")
	}
}

func TestStationaryDistribution(t *testing.T) {
	sc := fig3Scenario(t)
	enum, err := Enumerate(evaluator(t, sc), 0)
	if err != nil {
		t.Fatal(err)
	}
	p := enum.Stationary(400, 0.01)
	sum := 0.0
	maxIdx := 0
	for i, v := range p {
		if v < 0 {
			t.Fatalf("negative probability %v", v)
		}
		sum += v
		if v > p[maxIdx] {
			maxIdx = i
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("stationary sums to %v", sum)
	}
	if maxIdx != enum.ArgMin {
		t.Fatalf("most probable state %d is not the optimum %d", maxIdx, enum.ArgMin)
	}
	// β → larger concentrates more mass on the optimum.
	pLow := enum.Stationary(40, 0.01)
	if p[enum.ArgMin] <= pLow[enum.ArgMin] {
		t.Fatal("mass on optimum should grow with β")
	}
}

func TestGapBoundHolds(t *testing.T) {
	// Eq. (12): 0 ≤ Φ_avg − Φ_min ≤ (U+θsum)·logL/β. Verify analytically on
	// the enumerated space for several β values.
	sc := fig3Scenario(t)
	enum, err := Enumerate(evaluator(t, sc), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, beta := range []float64{10, 50, 200, 400} {
		scale := 0.01
		p := enum.Stationary(beta, scale)
		gap := enum.ExpectedPhi(p) - enum.MinPhi
		bound := GapBound(sc, beta, scale)
		if gap < -1e-9 {
			t.Fatalf("β=%v: negative gap %v", beta, gap)
		}
		if gap > bound+1e-9 {
			t.Fatalf("β=%v: gap %v exceeds Theorem-1 bound %v", beta, gap, bound)
		}
	}
}

func TestPerturbedStationary(t *testing.T) {
	sc := fig3Scenario(t)
	enum, err := Enumerate(evaluator(t, sc), 0)
	if err != nil {
		t.Fatal(err)
	}
	beta, scale := 100.0, 0.01

	// Uniform Δ across states: δ_f identical ⇒ p̄ = p*.
	uniform := make([]float64, len(enum.States))
	for i := range uniform {
		uniform[i] = 2.0
	}
	pBar, err := enum.PerturbedStationary(beta, scale, uniform, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := enum.Stationary(beta, scale)
	for i := range p {
		if math.Abs(p[i]-pBar[i]) > 1e-9 {
			t.Fatalf("uniform-Δ perturbed distribution differs at state %d: %v vs %v", i, p[i], pBar[i])
		}
	}

	// Eq. (13): perturbed gap ≤ bound + Δmax. Use state-dependent deltas.
	deltas := make([]float64, len(enum.States))
	deltaMax := 0.0
	for i := range deltas {
		deltas[i] = float64(i%3) * 5 // 0, 5, 10 objective units
		if deltas[i]*scale > deltaMax {
			deltaMax = deltas[i] * scale
		}
	}
	// Deltas here are in raw Φ units; the bound's Δmax is in scaled units
	// since β acts on scaled Φ.
	pBar2, err := enum.PerturbedStationary(beta, scale, deltas, 3)
	if err != nil {
		t.Fatal(err)
	}
	gap := enum.ExpectedPhi(pBar2) - enum.MinPhi
	bound := GapBound(sc, beta, scale) + deltaMax/scale // back to raw Φ units
	if gap < -1e-9 || gap > bound+1e-9 {
		t.Fatalf("perturbed gap %v outside [0, %v]", gap, bound)
	}

	// Error paths.
	if _, err := enum.PerturbedStationary(beta, scale, deltas[:1], 3); err == nil {
		t.Fatal("wrong-length deltas accepted")
	}
	if _, err := enum.PerturbedStationary(beta, scale, deltas, 0); err == nil {
		t.Fatal("zero levels accepted")
	}
}

func TestEnumerateMatchesBruteForceCheckFeasible(t *testing.T) {
	// Every enumerated state must pass CheckFeasible, and a sanity sample of
	// non-enumerated combinations must fail it.
	sc := fig3Scenario(t)
	ev := evaluator(t, sc)
	enum, err := Enumerate(ev, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range enum.States {
		if err := ev.CheckFeasible(st.A); err != nil {
			t.Fatalf("state %d fails CheckFeasible: %v", i, err)
		}
		if got := enum.Index[st.Key]; got != i {
			t.Fatalf("index mismatch at %d", i)
		}
	}
	// An incomplete assignment is not in the space.
	a := assign.New(sc)
	if _, ok := enum.Index[a.Encode()]; ok {
		t.Fatal("incomplete assignment found in enumeration")
	}
}
