// Package exact exhaustively enumerates the feasible assignment space F of
// small problem instances. It provides the ground truth the Markov
// approximation is validated against: the optimal objective Φ_min, the
// analytic stationary distribution p*_f ∝ exp(−βΦ_f) of Eq. (9), its
// perturbed counterpart of Eq. (11), and the optimality-gap bounds of
// Theorem 1 (Eqs. (12)–(13)).
//
// The repro-band note for this paper flags the weak LP/MILP ecosystem in Go;
// enumeration at validation scale plus the hand-rolled heuristics elsewhere
// is the intended substitution (DESIGN.md §2).
package exact

import (
	"fmt"
	"math"

	"vconf/internal/assign"
	"vconf/internal/cost"
	"vconf/internal/model"
)

// State is one feasible assignment together with its objective value.
type State struct {
	// A is a frozen copy of the assignment.
	A *assign.Assignment
	// Phi is Φ_f under the evaluator's parameters.
	Phi float64
	// Key is the canonical encoding of the state (stable map key).
	Key string
}

// Enumeration is the full feasible space of a scenario.
type Enumeration struct {
	States []State
	// Index maps state keys to positions in States.
	Index map[string]int
	// MinPhi is Φ_min = min_f Φ_f.
	MinPhi float64
	// ArgMin is the index of an optimal state.
	ArgMin int
}

// DefaultLimit caps the number of raw combinations Enumerate will visit.
const DefaultLimit = 2_000_000

// Enumerate walks every combination of user and flow agents, keeps the
// feasible ones, and records their objectives. limit bounds the raw
// combination count (≤ 0 selects DefaultLimit); exceeding it is an error —
// enumeration is meant for validation-scale instances only.
func Enumerate(ev *cost.Evaluator, limit int) (*Enumeration, error) {
	if limit <= 0 {
		limit = DefaultLimit
	}
	sc := ev.Scenario()
	a := assign.New(sc)
	slots := sc.NumUsers() + len(a.Flows())
	L := sc.NumAgents()

	total := 1.0
	for i := 0; i < slots; i++ {
		total *= float64(L)
		if total > float64(limit) {
			return nil, fmt.Errorf("exact: %d slots over %d agents exceeds limit %d", slots, L, limit)
		}
	}

	enum := &Enumeration{
		Index:  make(map[string]int),
		MinPhi: math.Inf(1),
		ArgMin: -1,
	}

	counters := make([]int, slots)
	flows := a.Flows()
	for {
		// Materialize the combination.
		for u := 0; u < sc.NumUsers(); u++ {
			a.SetUserAgent(model.UserID(u), model.AgentID(counters[u]))
		}
		for i, f := range flows {
			if err := a.SetFlowAgent(f, model.AgentID(counters[sc.NumUsers()+i])); err != nil {
				return nil, err
			}
		}
		if ev.CheckFeasible(a) == nil {
			phi := ev.TotalObjective(a)
			st := State{A: a.Clone(), Phi: phi, Key: a.Encode()}
			enum.Index[st.Key] = len(enum.States)
			enum.States = append(enum.States, st)
			if phi < enum.MinPhi {
				enum.MinPhi = phi
				enum.ArgMin = len(enum.States) - 1
			}
		}
		// Advance the odometer.
		i := 0
		for ; i < slots; i++ {
			counters[i]++
			if counters[i] < L {
				break
			}
			counters[i] = 0
		}
		if i == slots {
			break
		}
	}
	if len(enum.States) == 0 {
		return nil, fmt.Errorf("exact: no feasible assignment exists")
	}
	return enum, nil
}

// Stationary returns the analytic stationary distribution of Eq. (9):
// p*_f = exp(−βΦ_f) / Σ_{f'} exp(−βΦ_{f'}), computed with max-shifted
// exponents for numerical stability. scale multiplies Φ before β is applied
// (see core.Config.ObjectiveScale).
func (e *Enumeration) Stationary(beta, scale float64) []float64 {
	n := len(e.States)
	out := make([]float64, n)
	minPhi := e.MinPhi
	sum := 0.0
	for i, st := range e.States {
		out[i] = math.Exp(-beta * scale * (st.Phi - minPhi))
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// PerturbedStationary returns p̄_f of Eq. (11) for the uniform quantized
// perturbation model: the perturbed Φ_f takes values Φ_f + (j/n)Δ for
// j ∈ {−n..n} with equal probability, giving
// δ_f = (1/(2n+1)) Σ_j exp(β·scale·jΔ/n), identical for every state under
// the uniform model, so p̄ = p* exactly — the stationary distribution is
// perturbation-invariant when δ_f is state-independent (a corollary the
// tests verify). For state-dependent Δ_f, pass deltas (one per state).
func (e *Enumeration) PerturbedStationary(beta, scale float64, deltas []float64, levels int) ([]float64, error) {
	n := len(e.States)
	if len(deltas) != n {
		return nil, fmt.Errorf("exact: %d deltas for %d states", len(deltas), n)
	}
	if levels < 1 {
		return nil, fmt.Errorf("exact: levels must be ≥ 1")
	}
	out := make([]float64, n)
	minPhi := e.MinPhi
	sum := 0.0
	for i, st := range e.States {
		delta := 0.0
		for j := -levels; j <= levels; j++ {
			delta += math.Exp(beta * scale * float64(j) * deltas[i] / float64(levels))
		}
		delta /= float64(2*levels + 1)
		out[i] = delta * math.Exp(-beta*scale*(st.Phi-minPhi))
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out, nil
}

// ExpectedPhi returns Φ_avg = Σ_f p_f Φ_f for a given distribution.
func (e *Enumeration) ExpectedPhi(dist []float64) float64 {
	avg := 0.0
	for i, st := range e.States {
		avg += dist[i] * st.Phi
	}
	return avg
}

// GapBound returns the Theorem-1 optimality-gap bound
// (U + θ_sum)·log L / (β·scale): the guaranteed ceiling on Φ_avg − Φ_min.
func GapBound(sc *model.Scenario, beta, scale float64) float64 {
	return float64(sc.NumUsers()+sc.ThetaSum()) * math.Log(float64(sc.NumAgents())) / (beta * scale)
}

// Neighbors returns, for each state, the indices of feasible states
// differing in exactly one decision variable — the Markov chain's edge
// structure (Fig. 3).
func (e *Enumeration) Neighbors() [][]int {
	n := len(e.States)
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if e.States[i].A.DiffCount(e.States[j].A) == 1 {
				out[i] = append(out[i], j)
				out[j] = append(out[j], i)
			}
		}
	}
	return out
}

// Connected reports whether the feasible space is irreducible under
// single-variable hops (every state reachable from every other), the first
// sufficient condition of §IV-A-2.
func (e *Enumeration) Connected() bool {
	n := len(e.States)
	if n == 0 {
		return false
	}
	adj := e.Neighbors()
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				queue = append(queue, w)
			}
		}
	}
	return count == n
}
