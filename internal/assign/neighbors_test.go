package assign

import (
	"testing"

	"vconf/internal/model"
	"vconf/internal/workload"
)

func windowScenario(t *testing.T) *model.Scenario {
	t.Helper()
	sc, err := workload.Generate(workload.Prototype(9))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// bootstrapAll gives every variable a deterministic agent so current-agent
// skipping is exercised.
func bootstrapAll(sc *model.Scenario, a *Assignment) {
	for u := 0; u < sc.NumUsers(); u++ {
		a.SetUserAgent(model.UserID(u), model.AgentID(u%sc.NumAgents()))
	}
	for i, f := range a.Flows() {
		_ = a.SetFlowAgent(f, model.AgentID(i%sc.NumAgents()))
	}
}

// TestNeighborWindowZeroAndFullMatchFullScan: the knob's defaults must not
// change outputs — window 0 and a window covering the whole fleet both
// reproduce the canonical enumeration exactly, decision for decision.
func TestNeighborWindowZeroAndFullMatchFullScan(t *testing.T) {
	sc := windowScenario(t)
	a := New(sc)
	bootstrapAll(sc, a)
	ix := NewProximityIndex(sc, sc.NumAgents())
	for s := 0; s < sc.NumSessions(); s++ {
		want := a.AppendSessionNeighborDecisions(nil, model.SessionID(s))
		for _, opts := range []NeighborOptions{
			{},
			{Window: sc.NumAgents(), Index: ix},
			{Window: sc.NumAgents() + 5},
		} {
			got := a.AppendSessionNeighborDecisionsOpts(nil, model.SessionID(s), opts)
			if len(got) != len(want) {
				t.Fatalf("session %d opts %+v: %d decisions, want %d", s, opts, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("session %d opts %+v: decision %d = %v, want %v", s, opts, i, got[i], want[i])
				}
			}
		}
	}
}

// TestNeighborWindowPrunes: with window k every enumerated target lies in
// the variable's window, user variables yield at most k candidates, the
// result is a subset of the full scan in the same relative order, and a
// missing Index still works (built on the fly).
func TestNeighborWindowPrunes(t *testing.T) {
	sc := windowScenario(t)
	a := New(sc)
	bootstrapAll(sc, a)
	const k = 2
	ix := NewProximityIndex(sc, k)
	if ix.Window() != k {
		t.Fatalf("Window() = %d", ix.Window())
	}
	inWindow := func(u model.UserID, l model.AgentID) bool {
		for _, w := range ix.UserWindow(u) {
			if w == l {
				return true
			}
		}
		return false
	}
	for s := 0; s < sc.NumSessions(); s++ {
		sid := model.SessionID(s)
		full := a.AppendSessionNeighborDecisions(nil, sid)
		got := a.AppendSessionNeighborDecisionsOpts(nil, sid, NeighborOptions{Window: k, Index: ix})
		if len(got) >= len(full) {
			t.Fatalf("session %d: window did not prune (%d vs %d)", s, len(got), len(full))
		}
		// Subset in order.
		j := 0
		for _, d := range got {
			for j < len(full) && full[j] != d {
				j++
			}
			if j == len(full) {
				t.Fatalf("session %d: windowed decision %v missing from (or out of order in) the full scan", s, d)
			}
			j++
		}
		perUser := map[model.UserID]int{}
		for _, d := range got {
			switch d.Kind {
			case UserMove:
				perUser[d.User]++
				if !inWindow(d.User, d.To) {
					t.Fatalf("user %d target %d outside its window %v", d.User, d.To, ix.UserWindow(d.User))
				}
			case FlowMove:
				if !inWindow(d.Flow.Src, d.To) && !inWindow(d.Flow.Dst, d.To) {
					t.Fatalf("flow %v target %d outside both endpoint windows", d.Flow, d.To)
				}
			}
		}
		for u, n := range perUser {
			if n > k {
				t.Fatalf("user %d enumerated %d candidates, window %d", u, n, k)
			}
		}
		// nil Index: built on the fly, same output.
		lazy := a.AppendSessionNeighborDecisionsOpts(nil, sid, NeighborOptions{Window: k})
		if len(lazy) != len(got) {
			t.Fatalf("session %d: lazy index produced %d decisions, want %d", s, len(lazy), len(got))
		}
		for i := range got {
			if lazy[i] != got[i] {
				t.Fatalf("session %d: lazy index decision %d = %v, want %v", s, i, lazy[i], got[i])
			}
		}
	}
}

// TestProximityIndexOrder: windows are the k proximity-nearest agents,
// re-sorted ascending by ID (the canonical enumeration order).
func TestProximityIndexOrder(t *testing.T) {
	sc := windowScenario(t)
	const k = 3
	ix := NewProximityIndex(sc, k)
	for u := 0; u < sc.NumUsers(); u++ {
		win := ix.UserWindow(model.UserID(u))
		if len(win) != k {
			t.Fatalf("user %d window size %d", u, len(win))
		}
		want := sc.AgentsByProximity(model.UserID(u))[:k]
		member := map[model.AgentID]bool{}
		for _, l := range want {
			member[l] = true
		}
		for i, l := range win {
			if !member[l] {
				t.Fatalf("user %d window agent %d not among %d nearest %v", u, l, k, want)
			}
			if i > 0 && win[i-1] >= l {
				t.Fatalf("user %d window not ascending: %v", u, win)
			}
		}
	}
}
