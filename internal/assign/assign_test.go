package assign

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vconf/internal/model"
)

// twoSessionScenario: session 0 = {u0 (1080p), u1 (720p)} with u1 demanding
// 360p of u0 (one transcoding flow); session 1 = {u2, u3} both 720p; 3 agents.
func twoSessionScenario(t *testing.T) *model.Scenario {
	t.Helper()
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r720, _ := rs.ByName("720p")
	r1080, _ := rs.ByName("1080p")
	for i := 0; i < 3; i++ {
		b.AddAgent(model.Agent{Name: "a", Upload: 1000, Download: 1000, TranscodeSlots: 8})
	}
	s0 := b.AddSession("s0")
	u0 := b.AddUser("u0", s0, r1080, nil)
	u1 := b.AddUser("u1", s0, r720, nil)
	b.DemandFrom(u1, u0, r360)
	s1 := b.AddSession("s1")
	b.AddUser("u2", s1, r720, nil)
	b.AddUser("u3", s1, r720, nil)
	sc, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return sc
}

func TestNewAssignmentStartsUnassigned(t *testing.T) {
	sc := twoSessionScenario(t)
	a := New(sc)
	if a.Complete() {
		t.Fatal("fresh assignment reports Complete")
	}
	for u := 0; u < sc.NumUsers(); u++ {
		if a.UserAgent(model.UserID(u)) != Unassigned {
			t.Fatalf("user %d assigned at birth", u)
		}
	}
	if len(a.Flows()) != 1 {
		t.Fatalf("flows = %d, want 1", len(a.Flows()))
	}
}

func TestCompleteAndSessionComplete(t *testing.T) {
	sc := twoSessionScenario(t)
	a := New(sc)
	a.SetUserAgent(0, 0)
	a.SetUserAgent(1, 1)
	if a.SessionComplete(0) {
		t.Fatal("session 0 complete without its flow assigned")
	}
	if err := a.SetFlowAgent(model.Flow{Src: 0, Dst: 1}, 2); err != nil {
		t.Fatalf("SetFlowAgent: %v", err)
	}
	if !a.SessionComplete(0) {
		t.Fatal("session 0 should be complete")
	}
	if a.Complete() {
		t.Fatal("assignment complete with session 1 unassigned")
	}
	a.SetUserAgent(2, 0)
	a.SetUserAgent(3, 0)
	if !a.Complete() {
		t.Fatal("assignment should be complete")
	}
}

func TestSetFlowAgentRejectsNonTranscodingFlow(t *testing.T) {
	sc := twoSessionScenario(t)
	a := New(sc)
	if err := a.SetFlowAgent(model.Flow{Src: 2, Dst: 3}, 0); err == nil {
		t.Fatal("SetFlowAgent accepted a non-transcoding flow")
	}
	if _, ok := a.FlowAgent(model.Flow{Src: 2, Dst: 3}); ok {
		t.Fatal("FlowAgent reported a non-transcoding flow")
	}
}

func TestCloneIsDeep(t *testing.T) {
	sc := twoSessionScenario(t)
	a := New(sc)
	a.SetUserAgent(0, 1)
	b := a.Clone()
	b.SetUserAgent(0, 2)
	if a.UserAgent(0) != 1 {
		t.Fatal("mutating clone leaked into original (users)")
	}
	f := model.Flow{Src: 0, Dst: 1}
	if err := b.SetFlowAgent(f, 2); err != nil {
		t.Fatalf("SetFlowAgent: %v", err)
	}
	if l, _ := a.FlowAgent(f); l != Unassigned {
		t.Fatal("mutating clone leaked into original (flows)")
	}
	if !a.Clone().Equal(a) {
		t.Fatal("clone not Equal to original")
	}
}

func TestApplyAndInverse(t *testing.T) {
	sc := twoSessionScenario(t)
	a := New(sc)
	a.SetUserAgent(0, 0)
	inv, err := a.Apply(Decision{Kind: UserMove, User: 0, To: 2})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if a.UserAgent(0) != 2 {
		t.Fatalf("UserAgent(0) = %d after apply, want 2", a.UserAgent(0))
	}
	if _, err := a.Apply(inv); err != nil {
		t.Fatalf("Apply(inverse): %v", err)
	}
	if a.UserAgent(0) != 0 {
		t.Fatal("inverse did not restore user agent")
	}

	f := model.Flow{Src: 0, Dst: 1}
	if err := a.SetFlowAgent(f, 1); err != nil {
		t.Fatal(err)
	}
	inv, err = a.Apply(Decision{Kind: FlowMove, Flow: f, To: 0})
	if err != nil {
		t.Fatalf("Apply(flow): %v", err)
	}
	if l, _ := a.FlowAgent(f); l != 0 {
		t.Fatalf("FlowAgent = %d, want 0", l)
	}
	if _, err := a.Apply(inv); err != nil {
		t.Fatal(err)
	}
	if l, _ := a.FlowAgent(f); l != 1 {
		t.Fatal("inverse did not restore flow agent")
	}
}

func TestApplyErrors(t *testing.T) {
	sc := twoSessionScenario(t)
	a := New(sc)
	if _, err := a.Apply(Decision{Kind: UserMove, User: 99, To: 0}); err == nil {
		t.Fatal("Apply accepted unknown user")
	}
	if _, err := a.Apply(Decision{Kind: FlowMove, Flow: model.Flow{Src: 2, Dst: 3}, To: 0}); err == nil {
		t.Fatal("Apply accepted non-transcoding flow")
	}
	if _, err := a.Apply(Decision{}); err == nil {
		t.Fatal("Apply accepted zero decision")
	}
}

func TestSessionNeighborDecisions(t *testing.T) {
	sc := twoSessionScenario(t)
	a := New(sc)
	a.SetUserAgent(0, 0)
	a.SetUserAgent(1, 0)
	if err := a.SetFlowAgent(model.Flow{Src: 0, Dst: 1}, 0); err != nil {
		t.Fatal(err)
	}
	ds := a.SessionNeighborDecisions(0)
	// 2 users × 2 other agents + 1 flow × 2 other agents = 6.
	if len(ds) != 6 {
		t.Fatalf("neighbors = %d, want 6", len(ds))
	}
	// Every neighbor differs from the current state in exactly one variable.
	for _, d := range ds {
		b := a.Clone()
		if _, err := b.Apply(d); err != nil {
			t.Fatalf("Apply(%v): %v", d, err)
		}
		if got := a.DiffCount(b); got != 1 {
			t.Fatalf("neighbor %v differs in %d variables, want 1", d, got)
		}
	}
	// Session 1 has no transcoding flows: 2 users × 2 agents = 4 neighbors.
	a.SetUserAgent(2, 1)
	a.SetUserAgent(3, 2)
	if got := len(a.SessionNeighborDecisions(1)); got != 4 {
		t.Fatalf("session 1 neighbors = %d, want 4", got)
	}
}

func TestEncodeDistinguishesStates(t *testing.T) {
	sc := twoSessionScenario(t)
	a := New(sc)
	a.SetUserAgent(0, 0)
	b := a.Clone()
	b.SetUserAgent(0, 1)
	if a.Encode() == b.Encode() {
		t.Fatal("Encode collision between distinct states")
	}
	if a.Encode() != a.Clone().Encode() {
		t.Fatal("Encode not deterministic")
	}
}

func TestStringSmoke(t *testing.T) {
	sc := twoSessionScenario(t)
	a := New(sc)
	if a.String() == "" {
		t.Fatal("String() empty")
	}
	if Decision.String(Decision{Kind: UserMove, User: 1, To: 2}) == "" {
		t.Fatal("Decision.String() empty")
	}
	if (Decision{Kind: FlowMove, Flow: model.Flow{Src: 0, Dst: 1}, To: 2}).String() == "" {
		t.Fatal("Decision.String() empty")
	}
	if (Decision{}).String() != "invalid decision" {
		t.Fatal("zero Decision should stringify as invalid")
	}
}

// Property: applying a random decision and then its inverse always restores
// the exact state (Equal), and DiffCount after one apply is ≤ 1.
func TestApplyInverseProperty(t *testing.T) {
	sc := twoSessionScenarioQuick()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(sc)
		for u := 0; u < sc.NumUsers(); u++ {
			a.SetUserAgent(model.UserID(u), model.AgentID(rng.Intn(sc.NumAgents())))
		}
		for _, f := range a.Flows() {
			if err := a.SetFlowAgent(f, model.AgentID(rng.Intn(sc.NumAgents()))); err != nil {
				return false
			}
		}
		before := a.Clone()
		var d Decision
		if rng.Intn(2) == 0 {
			d = Decision{Kind: UserMove, User: model.UserID(rng.Intn(sc.NumUsers())),
				To: model.AgentID(rng.Intn(sc.NumAgents()))}
		} else {
			flows := a.Flows()
			d = Decision{Kind: FlowMove, Flow: flows[rng.Intn(len(flows))],
				To: model.AgentID(rng.Intn(sc.NumAgents()))}
		}
		inv, err := a.Apply(d)
		if err != nil {
			return false
		}
		if before.DiffCount(a) > 1 {
			return false
		}
		if _, err := a.Apply(inv); err != nil {
			return false
		}
		return a.Equal(before)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// twoSessionScenarioQuick builds the shared property-test scenario without a
// *testing.T (quick.Check closures run outside test helpers).
func twoSessionScenarioQuick() *model.Scenario {
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r720, _ := rs.ByName("720p")
	r1080, _ := rs.ByName("1080p")
	for i := 0; i < 3; i++ {
		b.AddAgent(model.Agent{Name: "a", Upload: 1000, Download: 1000, TranscodeSlots: 8})
	}
	s0 := b.AddSession("s0")
	u0 := b.AddUser("u0", s0, r1080, nil)
	u1 := b.AddUser("u1", s0, r720, nil)
	b.DemandFrom(u1, u0, r360)
	s1 := b.AddSession("s1")
	b.AddUser("u2", s1, r720, nil)
	b.AddUser("u3", s1, r720, nil)
	sc, err := b.Build()
	if err != nil {
		panic(err)
	}
	return sc
}
