package assign

import "vconf/internal/model"

// This file implements candidate-window pruning for the neighbor
// enumeration of Alg. 1 line 12: instead of considering every agent for
// every variable (O(L·session) per hop), each variable only considers its k
// delay-nearest agents — the paper's N_ngbr restriction whose
// quality/effort trade-off Fig. 10 sweeps. Window 0 keeps the full scan, so
// fixed-seed outputs are unchanged unless a caller opts in.

// NeighborOptions tunes neighbor enumeration.
type NeighborOptions struct {
	// Window caps each variable's candidate agents to the k nearest by
	// H-delay (user variables: the user's window; flow variables: the union
	// of the source's and destination's windows). 0 means every agent.
	Window int
	// Index is the prebuilt proximity index backing Window > 0. nil with a
	// positive Window builds a throwaway index — correct but O(U·L²); hot
	// paths must pass a prebuilt one (core.HopScratch caches it).
	Index *ProximityIndex
}

// ProximityIndex precomputes, for every user, its window of delay-nearest
// agents in ascending agent-ID order — the order the full enumeration
// visits agents, so windowed enumeration preserves the canonical candidate
// order (a window of L agents reproduces the full scan exactly).
type ProximityIndex struct {
	window int
	agents [][]model.AgentID
}

// NewProximityIndex builds the per-user windows for the scenario. window is
// clamped to [1, NumAgents].
func NewProximityIndex(sc *model.Scenario, window int) *ProximityIndex {
	l := sc.NumAgents()
	if window < 1 {
		window = 1
	}
	if window > l {
		window = l
	}
	ix := &ProximityIndex{
		window: window,
		agents: make([][]model.AgentID, sc.NumUsers()),
	}
	for u := 0; u < sc.NumUsers(); u++ {
		win := sc.AgentsByProximity(model.UserID(u))[:window:window]
		// Re-sort the window ascending by agent ID (proximity order decided
		// membership; ID order drives enumeration). Insertion sort: windows
		// are small.
		for i := 1; i < len(win); i++ {
			for j := i; j > 0 && win[j-1] > win[j]; j-- {
				win[j-1], win[j] = win[j], win[j-1]
			}
		}
		ix.agents[u] = win
	}
	return ix
}

// Window returns the window size the index was built with.
func (ix *ProximityIndex) Window() int { return ix.window }

// UserWindow returns user u's candidate agents in ascending ID order.
// Shared slice; callers must not mutate.
func (ix *ProximityIndex) UserWindow(u model.UserID) []model.AgentID { return ix.agents[u] }

// AppendSessionNeighborDecisionsOpts is AppendSessionNeighborDecisions with
// candidate-window pruning. With opts.Window == 0 (or a window covering the
// whole fleet) it produces exactly the full enumeration; otherwise each
// user variable enumerates its window and each flow variable the merged
// union of its endpoints' windows, both in ascending agent order with the
// current agent skipped — the same shape the full scan yields, restricted.
func (a *Assignment) AppendSessionNeighborDecisionsOpts(dst []Decision, s model.SessionID, opts NeighborOptions) []Decision {
	if opts.Window <= 0 || opts.Window >= a.sc.NumAgents() {
		return a.AppendSessionNeighborDecisions(dst, s)
	}
	ix := opts.Index
	if ix == nil || ix.window != opts.Window {
		ix = NewProximityIndex(a.sc, opts.Window)
	}
	for _, u := range a.sc.Session(s).Users {
		cur := a.userAgent[u]
		for _, l := range ix.agents[u] {
			if l == cur {
				continue
			}
			dst = append(dst, Decision{Kind: UserMove, User: u, To: l})
		}
	}
	start, end := a.flowStart[s], a.flowStart[s+1]
	for i := start; i < end; i++ {
		f := a.flows[i]
		cur := a.flowAgent[i]
		// Merge the two ascending windows, deduplicating, skipping cur.
		src, dstWin := ix.agents[f.Src], ix.agents[f.Dst]
		si, di := 0, 0
		for si < len(src) || di < len(dstWin) {
			var l model.AgentID
			switch {
			case di >= len(dstWin) || (si < len(src) && src[si] < dstWin[di]):
				l = src[si]
				si++
			case si >= len(src) || dstWin[di] < src[si]:
				l = dstWin[di]
				di++
			default: // equal
				l = src[si]
				si++
				di++
			}
			if l == cur {
				continue
			}
			dst = append(dst, Decision{Kind: FlowMove, Flow: f, To: l})
		}
	}
	return dst
}
