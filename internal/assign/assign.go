// Package assign represents solutions of the user-to-agent assignment
// problem: the binary decision variables λ (user → agent subscription) and γ
// (transcoding flow → transcoding agent) of the paper, §III-A.
//
// An Assignment f = {λ, γ} is the state the Markov-approximation chain walks
// over; the package also enumerates the chain's neighbor structure (all
// assignments differing in exactly one decision variable, §IV-A-2).
package assign

import (
	"fmt"
	"strconv"
	"strings"

	"vconf/internal/model"
)

// Unassigned marks a user or flow that has no agent yet.
const Unassigned model.AgentID = -1

// Assignment is one (possibly partial) solution f = {λ, γ}. It is a plain
// mutable value: solvers clone it, mutate the clone, and evaluate.
type Assignment struct {
	sc *model.Scenario
	// userAgent[u] is the agent user u subscribes to (λ_lu = 1 ⇔
	// userAgent[u] == l), or Unassigned.
	userAgent []model.AgentID
	// flowAgent[i] is the transcoding agent of the i-th transcoding flow in
	// the scenario's canonical flow order, or Unassigned. The demanded
	// representation of each flow is fixed by the scenario (γ's r index).
	flowAgent []model.AgentID
	// flowIndex maps a flow to its index in flowAgent.
	flowIndex map[model.Flow]int
	// flows is the canonical ordering of all transcoding flows. Flows are
	// grouped by session: flowStart[s] .. flowStart[s+1] delimit session s's
	// flows, which lets hot paths enumerate them without scanning or
	// allocating.
	flows     []model.Flow
	flowStart []int
}

// New creates an all-Unassigned assignment for the scenario.
func New(sc *model.Scenario) *Assignment {
	var flows []model.Flow
	flowStart := make([]int, sc.NumSessions()+1)
	for s := 0; s < sc.NumSessions(); s++ {
		flowStart[s] = len(flows)
		flows = append(flows, sc.SessionThetaFlows(model.SessionID(s))...)
	}
	flowStart[sc.NumSessions()] = len(flows)
	a := &Assignment{
		sc:        sc,
		userAgent: make([]model.AgentID, sc.NumUsers()),
		flowAgent: make([]model.AgentID, len(flows)),
		flowIndex: make(map[model.Flow]int, len(flows)),
		flows:     flows,
		flowStart: flowStart,
	}
	for i := range a.userAgent {
		a.userAgent[i] = Unassigned
	}
	for i, f := range flows {
		a.flowAgent[i] = Unassigned
		a.flowIndex[f] = i
	}
	return a
}

// Scenario returns the scenario this assignment belongs to.
func (a *Assignment) Scenario() *model.Scenario { return a.sc }

// Clone returns a deep copy sharing the immutable scenario and flow tables.
func (a *Assignment) Clone() *Assignment {
	out := &Assignment{
		sc:        a.sc,
		userAgent: append([]model.AgentID(nil), a.userAgent...),
		flowAgent: append([]model.AgentID(nil), a.flowAgent...),
		flowIndex: a.flowIndex,
		flows:     a.flows,
		flowStart: a.flowStart,
	}
	return out
}

// UserAgent returns λ for user u: the agent it subscribes to.
func (a *Assignment) UserAgent(u model.UserID) model.AgentID { return a.userAgent[u] }

// SetUserAgent subscribes user u to agent l (l may be Unassigned).
func (a *Assignment) SetUserAgent(u model.UserID, l model.AgentID) {
	a.userAgent[u] = l
}

// FlowAgent returns γ for transcoding flow f: the agent transcoding it.
// The second return is false if f is not a transcoding flow of the scenario.
func (a *Assignment) FlowAgent(f model.Flow) (model.AgentID, bool) {
	i, ok := a.flowIndex[f]
	if !ok {
		return Unassigned, false
	}
	return a.flowAgent[i], true
}

// SetFlowAgent assigns the transcoding of flow f to agent l.
func (a *Assignment) SetFlowAgent(f model.Flow, l model.AgentID) error {
	i, ok := a.flowIndex[f]
	if !ok {
		return fmt.Errorf("assign: flow %d→%d is not a transcoding flow", f.Src, f.Dst)
	}
	a.flowAgent[i] = l
	return nil
}

// Flows returns the canonical ordering of all transcoding flows. Shared
// slice; callers must not mutate.
func (a *Assignment) Flows() []model.Flow { return a.flows }

// SessionFlows returns the transcoding flows of session s in canonical
// order. Freshly allocated; hot paths use SessionFlowsShared instead.
func (a *Assignment) SessionFlows(s model.SessionID) []model.Flow {
	return append([]model.Flow(nil), a.SessionFlowsShared(s)...)
}

// SessionFlowsShared returns session s's transcoding flows as a view into
// the canonical flow table: zero allocations. Callers must not mutate it.
func (a *Assignment) SessionFlowsShared(s model.SessionID) []model.Flow {
	return a.flows[a.flowStart[s]:a.flowStart[s+1]]
}

// SessionFlowAgents returns session s's transcoding-flow agents as a view
// aligned index-for-index with SessionFlowsShared: zero allocations, no
// per-flow map lookups. Callers must not mutate it — the cost package's
// delay cache reads it to diff a session's flow placements against a
// cached signature in O(flows) integer compares.
func (a *Assignment) SessionFlowAgents(s model.SessionID) []model.AgentID {
	return a.flowAgent[a.flowStart[s]:a.flowStart[s+1]]
}

// Complete reports whether every user and every transcoding flow has an
// agent (constraints (1) and (3) of the paper hold structurally).
func (a *Assignment) Complete() bool {
	for _, l := range a.userAgent {
		if l == Unassigned {
			return false
		}
	}
	for _, l := range a.flowAgent {
		if l == Unassigned {
			return false
		}
	}
	return true
}

// SessionComplete reports completeness restricted to session s.
func (a *Assignment) SessionComplete(s model.SessionID) bool {
	for _, u := range a.sc.Session(s).Users {
		if a.userAgent[u] == Unassigned {
			return false
		}
	}
	for i, f := range a.flows {
		if a.sc.User(f.Src).Session == s && a.flowAgent[i] == Unassigned {
			return false
		}
	}
	return true
}

// Equal reports whether two assignments over the same scenario select the
// same agents everywhere.
func (a *Assignment) Equal(b *Assignment) bool {
	if a.sc != b.sc {
		return false
	}
	for i := range a.userAgent {
		if a.userAgent[i] != b.userAgent[i] {
			return false
		}
	}
	for i := range a.flowAgent {
		if a.flowAgent[i] != b.flowAgent[i] {
			return false
		}
	}
	return true
}

// Encode renders a compact canonical string key of the full state, usable
// as a map key when estimating empirical state distributions.
func (a *Assignment) Encode() string {
	var sb strings.Builder
	sb.Grow(3 * (len(a.userAgent) + len(a.flowAgent)))
	for i, l := range a.userAgent {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(int(l)))
	}
	sb.WriteByte('|')
	for i, l := range a.flowAgent {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(int(l)))
	}
	return sb.String()
}

// String implements fmt.Stringer with a human-readable dump.
func (a *Assignment) String() string {
	var sb strings.Builder
	sb.WriteString("assignment{users:")
	for u, l := range a.userAgent {
		fmt.Fprintf(&sb, " %d→%d", u, l)
	}
	sb.WriteString("; flows:")
	for i, f := range a.flows {
		fmt.Fprintf(&sb, " (%d→%d)@%d", f.Src, f.Dst, a.flowAgent[i])
	}
	sb.WriteString("}")
	return sb.String()
}
