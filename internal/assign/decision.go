package assign

import (
	"fmt"

	"vconf/internal/model"
)

// DecisionKind distinguishes the two families of decision variables.
type DecisionKind int

const (
	// UserMove changes one λ variable: re-subscribes a user to a new agent.
	UserMove DecisionKind = iota + 1
	// FlowMove changes one γ variable: moves one transcoding task to a new
	// agent.
	FlowMove
)

// Decision is a single-variable delta between two assignments — one edge of
// the Markov chain of §IV-A-2 ("direct links between two states ... only if
// the value of exactly one decision variable differs").
type Decision struct {
	Kind DecisionKind
	// User is the re-subscribed user (UserMove only).
	User model.UserID
	// Flow is the moved transcoding flow (FlowMove only).
	Flow model.Flow
	// To is the target agent.
	To model.AgentID
}

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d.Kind {
	case UserMove:
		return fmt.Sprintf("user %d → agent %d", d.User, d.To)
	case FlowMove:
		return fmt.Sprintf("flow %d→%d transcoding → agent %d", d.Flow.Src, d.Flow.Dst, d.To)
	default:
		return "invalid decision"
	}
}

// Apply mutates a by executing the decision. It returns the inverse
// decision, which restores the previous state when applied.
func (a *Assignment) Apply(d Decision) (Decision, error) {
	switch d.Kind {
	case UserMove:
		if int(d.User) < 0 || int(d.User) >= len(a.userAgent) {
			return Decision{}, fmt.Errorf("assign: apply: unknown user %d", d.User)
		}
		inv := Decision{Kind: UserMove, User: d.User, To: a.userAgent[d.User]}
		a.userAgent[d.User] = d.To
		return inv, nil
	case FlowMove:
		i, ok := a.flowIndex[d.Flow]
		if !ok {
			return Decision{}, fmt.Errorf("assign: apply: flow %d→%d is not a transcoding flow",
				d.Flow.Src, d.Flow.Dst)
		}
		inv := Decision{Kind: FlowMove, Flow: d.Flow, To: a.flowAgent[i]}
		a.flowAgent[i] = d.To
		return inv, nil
	default:
		return Decision{}, fmt.Errorf("assign: apply: invalid decision kind %d", d.Kind)
	}
}

// SessionNeighborDecisions enumerates every single-variable change inside
// session s: each member user re-subscribed to each other agent, and each of
// the session's transcoding flows moved to each other agent. This is the F_s
// candidate set of Alg. 1 line 12 before feasibility filtering; the caller
// filters by capacity/delay feasibility.
func (a *Assignment) SessionNeighborDecisions(s model.SessionID) []Decision {
	sess := a.sc.Session(s)
	flows := a.SessionFlowsShared(s)
	out := make([]Decision, 0, (len(sess.Users)+len(flows))*(a.sc.NumAgents()-1))
	return a.AppendSessionNeighborDecisions(out, s)
}

// AppendSessionNeighborDecisions appends session s's neighbor decisions to
// dst (usually a reused buffer truncated to length zero) and returns the
// extended slice — the allocation-free form of SessionNeighborDecisions the
// hop pipeline uses. The enumeration order is identical: member users in
// session order × agents ascending, then transcoding flows in canonical
// order × agents ascending.
func (a *Assignment) AppendSessionNeighborDecisions(dst []Decision, s model.SessionID) []Decision {
	sc := a.sc
	numAgents := model.AgentID(sc.NumAgents())
	for _, u := range sc.Session(s).Users {
		cur := a.userAgent[u]
		for l := model.AgentID(0); l < numAgents; l++ {
			if l == cur {
				continue
			}
			dst = append(dst, Decision{Kind: UserMove, User: u, To: l})
		}
	}
	start, end := a.flowStart[s], a.flowStart[s+1]
	for i := start; i < end; i++ {
		cur := a.flowAgent[i]
		for l := model.AgentID(0); l < numAgents; l++ {
			if l == cur {
				continue
			}
			dst = append(dst, Decision{Kind: FlowMove, Flow: a.flows[i], To: l})
		}
	}
	return dst
}

// DiffCount returns the number of decision variables on which a and b
// differ. Two states are Markov-chain neighbors iff DiffCount == 1.
func (a *Assignment) DiffCount(b *Assignment) int {
	n := 0
	for i := range a.userAgent {
		if a.userAgent[i] != b.userAgent[i] {
			n++
		}
	}
	for i := range a.flowAgent {
		if a.flowAgent[i] != b.flowAgent[i] {
			n++
		}
	}
	return n
}
