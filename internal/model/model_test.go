package model

import (
	"testing"
	"testing/quick"
)

func TestNewRepresentationSetValidation(t *testing.T) {
	tests := []struct {
		name    string
		specs   []RepSpec
		wantErr bool
	}{
		{"valid ascending", []RepSpec{{"a", 1}, {"b", 2}}, false},
		{"empty", nil, true},
		{"zero bitrate", []RepSpec{{"a", 0}}, true},
		{"negative bitrate", []RepSpec{{"a", -1}}, true},
		{"non increasing", []RepSpec{{"a", 2}, {"b", 2}}, true},
		{"decreasing", []RepSpec{{"a", 3}, {"b", 1}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewRepresentationSet(tt.specs)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewRepresentationSet() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestDefaultRepresentations(t *testing.T) {
	rs := DefaultRepresentations()
	if rs.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", rs.Len())
	}
	r720, ok := rs.ByName("720p")
	if !ok {
		t.Fatal("ByName(720p) not found")
	}
	if got := rs.Bitrate(r720); got != 5.0 {
		t.Fatalf("Bitrate(720p) = %v, want 5.0", got)
	}
	if _, ok := rs.ByName("4k"); ok {
		t.Fatal("ByName(4k) unexpectedly found")
	}
	if rs.Valid(Representation(4)) {
		t.Fatal("Valid(4) should be false")
	}
	if rs.Valid(NoRepresentation) {
		t.Fatal("Valid(NoRepresentation) should be false")
	}
	all := rs.All()
	if len(all) != 4 || all[0] != 0 || all[3] != 3 {
		t.Fatalf("All() = %v", all)
	}
}

func TestRepresentationName(t *testing.T) {
	rs := DefaultRepresentations()
	if got := rs.Name(0); got != "360p" {
		t.Fatalf("Name(0) = %q", got)
	}
	if got := rs.Name(Representation(99)); got != "rep#99" {
		t.Fatalf("Name(99) = %q", got)
	}
}

// buildTwoSessionScenario builds a small two-session scenario used across
// the model tests: session 0 with three users (one 1080p producer demanded
// at 360p by a peer), session 1 with two users, three agents.
func buildTwoSessionScenario(t *testing.T) *Scenario {
	t.Helper()
	b := NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r720, _ := rs.ByName("720p")
	r1080, _ := rs.ByName("1080p")

	for i := 0; i < 3; i++ {
		b.AddAgent(Agent{Name: "agent", Upload: 1000, Download: 1000, TranscodeSlots: 10})
	}
	s0 := b.AddSession("s0")
	u0 := b.AddUser("u0", s0, r1080, nil)
	u1 := b.AddUser("u1", s0, r720, nil)
	b.AddUser("u2", s0, r360, nil)
	s1 := b.AddSession("s1")
	b.AddUser("u3", s1, r720, nil)
	b.AddUser("u4", s1, r720, nil)

	// u1 demands 360p for u0's 1080p stream → θ[u0][u1] = 1.
	b.DemandFrom(u1, u0, r360)

	sc, err := b.Build()
	if err != nil {
		t.Fatalf("Build() error: %v", err)
	}
	return sc
}

func TestScenarioTheta(t *testing.T) {
	sc := buildTwoSessionScenario(t)
	if !sc.Theta(0, 1) {
		t.Fatal("Theta(0,1) = false, want true (u1 demands 360p of u0's 1080p)")
	}
	if sc.Theta(1, 0) {
		t.Fatal("Theta(1,0) = true, want false")
	}
	if sc.Theta(0, 2) {
		t.Fatal("Theta(0,2) = true, want false (u2 accepts native)")
	}
	if sc.Theta(3, 4) || sc.Theta(4, 3) {
		t.Fatal("session 1 flows need no transcoding")
	}
	if got := sc.ThetaSum(); got != 1 {
		t.Fatalf("ThetaSum() = %d, want 1", got)
	}
}

func TestScenarioParticipants(t *testing.T) {
	sc := buildTwoSessionScenario(t)
	p := sc.Participants(0)
	if len(p) != 2 || p[0] != 1 || p[1] != 2 {
		t.Fatalf("Participants(0) = %v, want [1 2]", p)
	}
	p = sc.Participants(3)
	if len(p) != 1 || p[0] != 4 {
		t.Fatalf("Participants(3) = %v, want [4]", p)
	}
}

func TestSessionThetaFlows(t *testing.T) {
	sc := buildTwoSessionScenario(t)
	flows := sc.SessionThetaFlows(0)
	if len(flows) != 1 || flows[0].Src != 0 || flows[0].Dst != 1 {
		t.Fatalf("SessionThetaFlows(0) = %v", flows)
	}
	if got := sc.SessionThetaFlows(1); len(got) != 0 {
		t.Fatalf("SessionThetaFlows(1) = %v, want empty", got)
	}
	if r := sc.DownstreamRep(flows[0]); sc.Reps.Name(r) != "360p" {
		t.Fatalf("DownstreamRep = %v", sc.Reps.Name(r))
	}
}

func TestNearestAgentAndProximityOrder(t *testing.T) {
	b := NewBuilder(nil)
	for i := 0; i < 3; i++ {
		b.AddAgent(Agent{Name: "a", Upload: 10, Download: 10})
	}
	s := b.AddSession("s")
	b.AddUser("u", s, 0, nil)
	b.AddUser("v", s, 0, nil)
	b.SetAgentUserDelays([][]float64{
		{30, 5},
		{10, 5},
		{20, 7},
	})
	sc, err := b.Build()
	if err != nil {
		t.Fatalf("Build() error: %v", err)
	}
	if got := sc.NearestAgent(0); got != 1 {
		t.Fatalf("NearestAgent(0) = %d, want 1", got)
	}
	// Tie between agents 0 and 1 for user 1: lower ID wins.
	if got := sc.NearestAgent(1); got != 0 {
		t.Fatalf("NearestAgent(1) = %d, want 0 (tie break)", got)
	}
	order := sc.AgentsByProximity(0)
	want := []AgentID{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("AgentsByProximity(0) = %v, want %v", order, want)
		}
	}
}

func TestScenarioValidationErrors(t *testing.T) {
	rs := DefaultRepresentations()
	goodAgents := func() []Agent {
		return []Agent{{
			ID: 0, Upload: 1, Download: 1,
			SigmaMS: UniformSigma(rs.Len(), 45), CapabilityFactor: 1,
			TrafficPricePerMbps: 1, TranscodePricePerTask: 1,
		}}
	}
	goodUsers := func() []User {
		return []User{{ID: 0, Session: 0, Upstream: 0}}
	}
	goodSessions := func() []Session {
		return []Session{{ID: 0, Users: []UserID{0}}}
	}
	d := [][]float64{{0}}
	h := [][]float64{{1}}

	tests := []struct {
		name   string
		mutate func(us *[]User, ss *[]Session, as *[]Agent, d, h *[][]float64)
	}{
		{"no agents", func(us *[]User, ss *[]Session, as *[]Agent, d, h *[][]float64) { *as = nil }},
		{"no users", func(us *[]User, ss *[]Session, as *[]Agent, d, h *[][]float64) { *us = nil }},
		{"bad upstream", func(us *[]User, ss *[]Session, as *[]Agent, d, h *[][]float64) { (*us)[0].Upstream = 99 }},
		{"empty session", func(us *[]User, ss *[]Session, as *[]Agent, d, h *[][]float64) { (*ss)[0].Users = nil }},
		{"dup member", func(us *[]User, ss *[]Session, as *[]Agent, d, h *[][]float64) {
			(*ss)[0].Users = []UserID{0, 0}
		}},
		{"neg capacity", func(us *[]User, ss *[]Session, as *[]Agent, d, h *[][]float64) { (*as)[0].Upload = -1 }},
		{"sigma shape", func(us *[]User, ss *[]Session, as *[]Agent, d, h *[][]float64) {
			(*as)[0].SigmaMS = UniformSigma(2, 45)
		}},
		{"D shape", func(us *[]User, ss *[]Session, as *[]Agent, d, h *[][]float64) { *d = [][]float64{} }},
		{"H negative", func(us *[]User, ss *[]Session, as *[]Agent, d, h *[][]float64) { (*h)[0][0] = -3 }},
		{"D diag nonzero", func(us *[]User, ss *[]Session, as *[]Agent, d, h *[][]float64) { (*d)[0][0] = 5 }},
		{"self demand", func(us *[]User, ss *[]Session, as *[]Agent, d, h *[][]float64) {
			(*us)[0].Downstream = map[UserID]Representation{0: 1}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			us, ss, as := goodUsers(), goodSessions(), goodAgents()
			dm := [][]float64{append([]float64(nil), d[0]...)}
			hm := [][]float64{append([]float64(nil), h[0]...)}
			tt.mutate(&us, &ss, &as, &dm, &hm)
			if _, err := NewScenario(rs, us, ss, as, dm, hm, 0); err == nil {
				t.Fatal("NewScenario() succeeded, want error")
			}
		})
	}

	// The unmutated inputs must build.
	if _, err := NewScenario(rs, goodUsers(), goodSessions(), goodAgents(), d, h, 0); err != nil {
		t.Fatalf("NewScenario() on valid input: %v", err)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(nil)
	b.AddAgent(Agent{Upload: 1, Download: 1})
	b.AddUser("ghost", SessionID(7), 0, nil) // unknown session
	if _, err := b.Build(); err == nil {
		t.Fatal("Build() succeeded despite AddUser on unknown session")
	}

	b2 := NewBuilder(nil)
	b2.AddAgent(Agent{Upload: 1, Download: 1})
	s := b2.AddSession("s")
	u := b2.AddUser("u", s, 0, nil)
	b2.DemandFrom(u, UserID(99), 1)
	if _, err := b2.Build(); err == nil {
		t.Fatal("Build() succeeded despite DemandFrom unknown user")
	}
}

func TestDMaxDefault(t *testing.T) {
	sc := buildTwoSessionScenario(t)
	if sc.DMaxMS != DefaultDMaxMS {
		t.Fatalf("DMaxMS = %v, want %v", sc.DMaxMS, DefaultDMaxMS)
	}
}

func TestUniformSigma(t *testing.T) {
	s := UniformSigma(3, 42)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 42.0
			if i == j {
				want = 0
			}
			if s[i][j] != want {
				t.Fatalf("UniformSigma[%d][%d] = %v, want %v", i, j, s[i][j], want)
			}
		}
	}
}

// Property: AgentsByProximity always returns a permutation of all agents in
// non-decreasing delay order, for arbitrary delay rows.
func TestAgentsByProximityProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			raw = []uint16{1}
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		b := NewBuilder(nil)
		for range raw {
			b.AddAgent(Agent{Upload: 1, Download: 1})
		}
		s := b.AddSession("s")
		b.AddUser("u", s, 0, nil)
		h := make([][]float64, len(raw))
		for i, v := range raw {
			h[i] = []float64{float64(v)}
		}
		b.SetAgentUserDelays(h)
		sc, err := b.Build()
		if err != nil {
			return false
		}
		order := sc.AgentsByProximity(0)
		if len(order) != len(raw) {
			return false
		}
		seen := make(map[AgentID]bool)
		for i, id := range order {
			if seen[id] {
				return false
			}
			seen[id] = true
			if i > 0 && sc.H(order[i-1], 0) > sc.H(id, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDownscaleOnlyTheta(t *testing.T) {
	build := func(downscaleOnly bool) *Scenario {
		b := NewBuilder(nil)
		rs := b.Reps()
		r360, _ := rs.ByName("360p")
		r720, _ := rs.ByName("720p")
		r1080, _ := rs.ByName("1080p")
		b.AddAgent(Agent{Upload: 1000, Download: 1000, TranscodeSlots: 8})
		s := b.AddSession("s")
		lo := b.AddUser("lo", s, r360, nil)   // low-quality producer
		hi := b.AddUser("hi", s, r1080, nil)  // high-quality producer
		mid := b.AddUser("mid", s, r720, nil) // demands upscale + downscale
		b.DemandFrom(mid, lo, r1080)          // upward demand: 360p → 1080p
		b.DemandFrom(mid, hi, r360)           // downward demand: 1080p → 360p
		_ = mid
		if downscaleOnly {
			b.RestrictDownscaleOnly()
		}
		sc, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}

	// Unrestricted: both demands transcode.
	sc := build(false)
	if !sc.Theta(0, 2) || !sc.Theta(1, 2) {
		t.Fatal("unrestricted scenario should transcode both flows")
	}
	if got := sc.ThetaSum(); got != 2 {
		t.Fatalf("ThetaSum = %d, want 2", got)
	}

	// Downscale-only: the upward demand clamps to the native 360p stream.
	sc = build(true)
	if sc.Theta(0, 2) {
		t.Fatal("upward demand must not transcode under DownscaleOnly")
	}
	if !sc.Theta(1, 2) {
		t.Fatal("downward demand must still transcode under DownscaleOnly")
	}
	if got := sc.ThetaSum(); got != 1 {
		t.Fatalf("ThetaSum = %d, want 1", got)
	}
	// Effective downstream of the clamped flow is the source's upstream.
	if got := sc.Downstream(2, 0); sc.Reps.Name(got) != "360p" {
		t.Fatalf("effective downstream = %s, want 360p", sc.Reps.Name(got))
	}
	// The raw demand is preserved on the user.
	if got := sc.User(2).DownstreamFrom(sc.User(0)); sc.Reps.Name(got) != "1080p" {
		t.Fatalf("raw demand = %s, want 1080p", sc.Reps.Name(got))
	}
	// Unaffected flow keeps its demanded rep.
	if got := sc.Downstream(2, 1); sc.Reps.Name(got) != "360p" {
		t.Fatalf("downward effective rep = %s, want 360p", sc.Reps.Name(got))
	}
}
