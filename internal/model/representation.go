// Package model defines the core domain types of the cloud video-conferencing
// system: video representations, users, sessions, cloud agents, and the
// Scenario that ties them together with the delay matrices.
//
// The vocabulary follows Table I of the paper (Hajiesmaili et al., ICDCS'15):
// S sessions, U users, R representations, L agents, θ transcoding matrix,
// D inter-agent delay matrix, H agent-to-user delay matrix.
package model

import (
	"fmt"
	"strconv"
)

// Representation identifies a specific configuration of format, encoding
// bitrate and spatial/temporal resolution of a stream. Values index into a
// RepresentationSet.
type Representation int

// NoRepresentation is the zero value; it never appears in a valid scenario.
const NoRepresentation Representation = -1

// RepSpec describes one representation: a human-readable name (e.g. "720p")
// and its bitrate κ(r) in Mbps.
type RepSpec struct {
	Name string  `json:"name"`
	Mbps float64 `json:"mbps"`
}

// RepresentationSet is the ordered set R of all representations in use.
// Representations are ordered by ascending quality (bitrate), which supports
// the paper's optional "high-to-low-only" transcoding restriction (§II fn. 1).
type RepresentationSet struct {
	specs []RepSpec
}

// NewRepresentationSet builds a representation set. Bitrates must be positive
// and strictly increasing so that the quality order is well defined.
func NewRepresentationSet(specs []RepSpec) (*RepresentationSet, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("model: representation set must not be empty")
	}
	prev := 0.0
	for i, s := range specs {
		if s.Mbps <= 0 {
			return nil, fmt.Errorf("model: representation %q has non-positive bitrate %v", s.Name, s.Mbps)
		}
		if s.Mbps <= prev {
			return nil, fmt.Errorf("model: representation bitrates must be strictly increasing (index %d)", i)
		}
		prev = s.Mbps
	}
	out := &RepresentationSet{specs: make([]RepSpec, len(specs))}
	copy(out.specs, specs)
	return out, nil
}

// DefaultRepresentations returns the four YouTube-style representations the
// paper's large-scale experiments use (§V-B): 360p/1, 480p/2.5, 720p/5,
// 1080p/8 Mbps.
func DefaultRepresentations() *RepresentationSet {
	rs, err := NewRepresentationSet([]RepSpec{
		{Name: "360p", Mbps: 1.0},
		{Name: "480p", Mbps: 2.5},
		{Name: "720p", Mbps: 5.0},
		{Name: "1080p", Mbps: 8.0},
	})
	if err != nil {
		// Static input; cannot fail.
		panic(err)
	}
	return rs
}

// Len returns |R|.
func (rs *RepresentationSet) Len() int { return len(rs.specs) }

// Valid reports whether r indexes a representation in this set.
func (rs *RepresentationSet) Valid(r Representation) bool {
	return r >= 0 && int(r) < len(rs.specs)
}

// Bitrate returns κ(r), the bitrate of representation r in Mbps.
// It panics if r is out of range: representation indices are validated at
// scenario construction, so an out-of-range index here is a programming bug.
func (rs *RepresentationSet) Bitrate(r Representation) float64 {
	return rs.specs[r].Mbps
}

// Name returns the human-readable name of representation r.
func (rs *RepresentationSet) Name(r Representation) string {
	if !rs.Valid(r) {
		return "rep#" + strconv.Itoa(int(r))
	}
	return rs.specs[r].Name
}

// Spec returns the full spec of representation r.
func (rs *RepresentationSet) Spec(r Representation) RepSpec { return rs.specs[r] }

// ByName looks a representation up by its name.
func (rs *RepresentationSet) ByName(name string) (Representation, bool) {
	for i, s := range rs.specs {
		if s.Name == name {
			return Representation(i), true
		}
	}
	return NoRepresentation, false
}

// All returns the representation indices in ascending quality order.
func (rs *RepresentationSet) All() []Representation {
	out := make([]Representation, len(rs.specs))
	for i := range rs.specs {
		out[i] = Representation(i)
	}
	return out
}
