package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// scenarioDoc is the stable on-disk representation of a Scenario. All fields
// are tagged explicitly: the serialized form is a contract.
type scenarioDoc struct {
	Version         int          `json:"version"`
	Representations []RepSpec    `json:"representations"`
	Agents          []agentDoc   `json:"agents"`
	Sessions        []sessionDoc `json:"sessions"`
	Users           []userDoc    `json:"users"`
	DMS             [][]float64  `json:"interAgentDelayMS"`
	HMS             [][]float64  `json:"agentUserDelayMS"`
	DMaxMS          float64      `json:"delayCapMS"`
	DownscaleOnly   bool         `json:"downscaleOnly,omitempty"`
}

type agentDoc struct {
	Name                  string      `json:"name"`
	Site                  string      `json:"site,omitempty"`
	UploadMbps            float64     `json:"uploadMbps"`
	DownloadMbps          float64     `json:"downloadMbps"`
	TranscodeSlots        int         `json:"transcodeSlots"`
	SigmaMS               [][]float64 `json:"sigmaMS"`
	CapabilityFactor      float64     `json:"capabilityFactor"`
	TrafficPricePerMbps   float64     `json:"trafficPricePerMbps"`
	TranscodePricePerTask float64     `json:"transcodePricePerTask"`
}

type sessionDoc struct {
	Name  string   `json:"name,omitempty"`
	Users []UserID `json:"users"`
}

type userDoc struct {
	Name       string                    `json:"name,omitempty"`
	Session    SessionID                 `json:"session"`
	Upstream   Representation            `json:"upstream"`
	Downstream map[UserID]Representation `json:"downstream,omitempty"`
}

// scenarioDocVersion is bumped on incompatible format changes.
const scenarioDocVersion = 1

// WriteJSON serializes the scenario to w as indented JSON.
func (sc *Scenario) WriteJSON(w io.Writer) error {
	doc := scenarioDoc{
		Version:         scenarioDocVersion,
		Representations: make([]RepSpec, 0, sc.Reps.Len()),
		DMS:             sc.DMS,
		HMS:             sc.HMS,
		DMaxMS:          sc.DMaxMS,
		DownscaleOnly:   sc.DownscaleOnly,
	}
	for _, r := range sc.Reps.All() {
		doc.Representations = append(doc.Representations, sc.Reps.Spec(r))
	}
	for i := range sc.Agents {
		a := &sc.Agents[i]
		doc.Agents = append(doc.Agents, agentDoc{
			Name:                  a.Name,
			Site:                  a.Site,
			UploadMbps:            a.Upload,
			DownloadMbps:          a.Download,
			TranscodeSlots:        a.TranscodeSlots,
			SigmaMS:               a.SigmaMS,
			CapabilityFactor:      a.CapabilityFactor,
			TrafficPricePerMbps:   a.TrafficPricePerMbps,
			TranscodePricePerTask: a.TranscodePricePerTask,
		})
	}
	for i := range sc.Sessions {
		s := &sc.Sessions[i]
		doc.Sessions = append(doc.Sessions, sessionDoc{Name: s.Name, Users: s.Users})
	}
	for i := range sc.Users {
		u := &sc.Users[i]
		doc.Users = append(doc.Users, userDoc{
			Name:       u.Name,
			Session:    u.Session,
			Upstream:   u.Upstream,
			Downstream: u.Downstream,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON deserializes a scenario previously written by WriteJSON, running
// the full NewScenario validation.
func ReadJSON(r io.Reader) (*Scenario, error) {
	var doc scenarioDoc
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("model: decode scenario: %w", err)
	}
	if doc.Version != scenarioDocVersion {
		return nil, fmt.Errorf("model: unsupported scenario version %d (want %d)",
			doc.Version, scenarioDocVersion)
	}
	reps, err := NewRepresentationSet(doc.Representations)
	if err != nil {
		return nil, err
	}
	agents := make([]Agent, len(doc.Agents))
	for i, a := range doc.Agents {
		agents[i] = Agent{
			ID:                    AgentID(i),
			Name:                  a.Name,
			Site:                  a.Site,
			Upload:                a.UploadMbps,
			Download:              a.DownloadMbps,
			TranscodeSlots:        a.TranscodeSlots,
			SigmaMS:               a.SigmaMS,
			CapabilityFactor:      a.CapabilityFactor,
			TrafficPricePerMbps:   a.TrafficPricePerMbps,
			TranscodePricePerTask: a.TranscodePricePerTask,
		}
	}
	sessions := make([]Session, len(doc.Sessions))
	for i, s := range doc.Sessions {
		sessions[i] = Session{ID: SessionID(i), Name: s.Name, Users: s.Users}
	}
	users := make([]User, len(doc.Users))
	for i, u := range doc.Users {
		users[i] = User{
			ID:         UserID(i),
			Name:       u.Name,
			Session:    u.Session,
			Upstream:   u.Upstream,
			Downstream: u.Downstream,
		}
	}
	var opts []ScenarioOption
	if doc.DownscaleOnly {
		opts = append(opts, WithDownscaleOnly())
	}
	return NewScenario(reps, users, sessions, agents, doc.DMS, doc.HMS, doc.DMaxMS, opts...)
}
