package model

import "fmt"

// UserID identifies a user within a Scenario. IDs are dense indices into the
// scenario's user table (0..U-1).
type UserID int

// SessionID identifies a conferencing session within a Scenario. IDs are
// dense indices (0..S-1).
type SessionID int

// AgentID identifies a cloud agent within a Scenario. IDs are dense indices
// (0..L-1).
type AgentID int

// User is one conferencing participant. Each user belongs to exactly one
// session, produces a stream in its upstream representation, and demands a
// per-source downstream representation from every other participant.
type User struct {
	// ID is the dense index of the user in the scenario.
	ID UserID
	// Name is an optional human-readable label (e.g. a PlanetLab host).
	Name string
	// Session is the session the user participates in (s(u) in the paper).
	Session SessionID
	// Upstream is r^u_u: the representation of the stream the user produces.
	Upstream Representation
	// Downstream maps every other participant v in the session to r^d_{uv}:
	// the representation this user demands for v's stream. Participants not
	// present in the map default to the source's upstream representation
	// (i.e. no transcoding demanded).
	Downstream map[UserID]Representation
}

// DownstreamFrom returns r^d_{uv}: the representation user u demands for the
// stream originated by v. Defaults to v's upstream representation when no
// explicit demand is recorded (no transcoding needed).
func (u *User) DownstreamFrom(v *User) Representation {
	if r, ok := u.Downstream[v.ID]; ok {
		return r
	}
	return v.Upstream
}

// Session groups the users of one conference. Users lists the member IDs in
// ascending order.
type Session struct {
	ID    SessionID
	Name  string
	Users []UserID
}

// Size returns |U(s)|, the number of participants.
func (s *Session) Size() int { return len(s.Users) }

// Contains reports whether user u participates in the session.
func (s *Session) Contains(u UserID) bool {
	for _, m := range s.Users {
		if m == u {
			return true
		}
	}
	return false
}

// validateUser checks a user's internal consistency against the scenario's
// representation set and session table.
func validateUser(u *User, rs *RepresentationSet, sessions []Session, users []User) error {
	if !rs.Valid(u.Upstream) {
		return fmt.Errorf("model: user %d: invalid upstream representation %d", u.ID, u.Upstream)
	}
	if int(u.Session) < 0 || int(u.Session) >= len(sessions) {
		return fmt.Errorf("model: user %d: invalid session %d", u.ID, u.Session)
	}
	if !sessions[u.Session].Contains(u.ID) {
		return fmt.Errorf("model: user %d: session %d does not list it as a member", u.ID, u.Session)
	}
	for v, r := range u.Downstream {
		if !rs.Valid(r) {
			return fmt.Errorf("model: user %d: invalid downstream representation %d from user %d", u.ID, r, v)
		}
		if int(v) < 0 || int(v) >= len(users) {
			return fmt.Errorf("model: user %d: downstream demand from unknown user %d", u.ID, v)
		}
		if v == u.ID {
			return fmt.Errorf("model: user %d: downstream demand from itself", u.ID)
		}
		if users[v].Session != u.Session {
			return fmt.Errorf("model: user %d: downstream demand from user %d in a different session", u.ID, v)
		}
	}
	return nil
}
