package model

import (
	"fmt"
	"math"
)

// DefaultDMaxMS is the maximum acceptable user-to-user conferencing delay in
// milliseconds per ITU-T Recommendation G.114 (§V of the paper).
const DefaultDMaxMS = 400.0

// Scenario is a complete, immutable problem instance of the user-to-agent
// assignment problem: the user/session/agent population together with the
// measured delay matrices.
//
// A Scenario is built once (via NewScenario or a Builder) and then shared
// read-only by solvers, simulators and benchmarks. None of its methods
// mutate it.
type Scenario struct {
	Reps     *RepresentationSet
	Users    []User
	Sessions []Session
	Agents   []Agent

	// DMS is the inter-agent delay matrix D (L×L), in milliseconds.
	// DMS[l][k] is the one-way latency between agents l and k.
	DMS [][]float64
	// HMS is the agent-to-user delay matrix H (L×U), in milliseconds.
	// HMS[l][u] is the one-way propagation delay between agent l and user u.
	HMS [][]float64

	// DMaxMS is the end-to-end delay cap of constraint (8). Zero means
	// "use DefaultDMaxMS"; NewScenario normalizes it.
	DMaxMS float64

	// DownscaleOnly activates the paper's footnote-1 customization of θ:
	// only high-to-low quality transcoding is performed. A destination
	// demanding a representation above a source's upstream receives the
	// native stream instead (its effective downstream representation is
	// clamped to the upstream), so such flows never count as transcoding.
	DownscaleOnly bool

	// theta caches θ: theta[u][v] == true iff u and v share a session and
	// v's demanded downstream representation of u's stream differs from u's
	// upstream representation (flow u→v needs transcoding).
	theta [][]bool
	// participants caches P(u) per user.
	participants [][]UserID
	// thetaSum caches the total number of transcoding flows Σ_u Σ_v θ_uv.
	thetaSum int
}

// ScenarioOption customizes scenario semantics at construction time.
type ScenarioOption func(*Scenario)

// WithDownscaleOnly restricts transcoding to high-to-low quality conversions
// (paper §II footnote 1).
func WithDownscaleOnly() ScenarioOption {
	return func(sc *Scenario) { sc.DownscaleOnly = true }
}

// NewScenario validates the inputs and assembles a scenario. It copies
// nothing: callers hand over ownership of the slices.
func NewScenario(
	reps *RepresentationSet,
	users []User,
	sessions []Session,
	agents []Agent,
	dMS [][]float64,
	hMS [][]float64,
	dMaxMS float64,
	opts ...ScenarioOption,
) (*Scenario, error) {
	sc := &Scenario{
		Reps:     reps,
		Users:    users,
		Sessions: sessions,
		Agents:   agents,
		DMS:      dMS,
		HMS:      hMS,
		DMaxMS:   dMaxMS,
	}
	for _, opt := range opts {
		opt(sc)
	}
	if sc.DMaxMS == 0 {
		sc.DMaxMS = DefaultDMaxMS
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	sc.buildCaches()
	return sc, nil
}

// NumUsers returns U.
func (sc *Scenario) NumUsers() int { return len(sc.Users) }

// NumSessions returns S.
func (sc *Scenario) NumSessions() int { return len(sc.Sessions) }

// NumAgents returns L.
func (sc *Scenario) NumAgents() int { return len(sc.Agents) }

// User returns the user with the given ID.
func (sc *Scenario) User(u UserID) *User { return &sc.Users[u] }

// Session returns the session with the given ID.
func (sc *Scenario) Session(s SessionID) *Session { return &sc.Sessions[s] }

// Agent returns the agent with the given ID.
func (sc *Scenario) Agent(l AgentID) *Agent { return &sc.Agents[l] }

// D returns the inter-agent delay D[l][k] in milliseconds.
func (sc *Scenario) D(l, k AgentID) float64 { return sc.DMS[l][k] }

// H returns the agent-to-user delay H[l][u] in milliseconds.
func (sc *Scenario) H(l AgentID, u UserID) float64 { return sc.HMS[l][u] }

// Theta reports θ_uv: whether the flow from source u to destination v
// requires transcoding. It is false whenever u and v are not in the same
// session or u == v.
func (sc *Scenario) Theta(u, v UserID) bool { return sc.theta[u][v] }

// ThetaSum returns θ^sum, the total number of transcoding flows across all
// sessions (Σ_u Σ_v θ_uv). This sizes the decision space O(L^(U+θsum)).
func (sc *Scenario) ThetaSum() int { return sc.thetaSum }

// Participants returns P(u): the other members of u's session. The returned
// slice is shared; callers must not mutate it.
func (sc *Scenario) Participants(u UserID) []UserID { return sc.participants[u] }

// SessionThetaFlows returns the transcoding flows (source, destination)
// inside session s, in deterministic order.
func (sc *Scenario) SessionThetaFlows(s SessionID) []Flow {
	var flows []Flow
	for _, u := range sc.Sessions[s].Users {
		for _, v := range sc.Sessions[s].Users {
			if u != v && sc.theta[u][v] {
				flows = append(flows, Flow{Src: u, Dst: v})
			}
		}
	}
	return flows
}

// Flow identifies one directed stream from a source user to a destination
// user within a session.
type Flow struct {
	Src UserID
	Dst UserID
}

// Downstream returns the *effective* downstream representation of the flow
// src→dst: the destination's demand, clamped to the source's upstream when
// the scenario is DownscaleOnly (no upscaling exists, so a higher demand is
// served natively).
func (sc *Scenario) Downstream(dst, src UserID) Representation {
	r := sc.Users[dst].DownstreamFrom(&sc.Users[src])
	if sc.DownscaleOnly && r > sc.Users[src].Upstream {
		return sc.Users[src].Upstream
	}
	return r
}

// DownstreamRep returns the effective downstream representation for flow
// u→v (see Downstream).
func (sc *Scenario) DownstreamRep(f Flow) Representation {
	return sc.Downstream(f.Dst, f.Src)
}

// NearestAgent returns the agent with minimal H-delay to user u. Ties break
// toward the lower agent ID, which keeps results deterministic.
func (sc *Scenario) NearestAgent(u UserID) AgentID {
	best, bestDelay := AgentID(0), math.Inf(1)
	for l := range sc.Agents {
		if d := sc.HMS[l][u]; d < bestDelay {
			best, bestDelay = AgentID(l), d
		}
	}
	return best
}

// AgentsByProximity returns all agent IDs sorted by ascending H-delay to
// user u (ties broken by agent ID). The slice is freshly allocated.
func (sc *Scenario) AgentsByProximity(u UserID) []AgentID {
	ids := make([]AgentID, len(sc.Agents))
	for i := range ids {
		ids[i] = AgentID(i)
	}
	// Insertion sort: L is small (≤ tens) and this avoids pulling in sort
	// with a less obvious comparator closure allocation in hot paths.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			a, b := ids[j-1], ids[j]
			da, db := sc.HMS[a][u], sc.HMS[b][u]
			if da < db || (da == db && a < b) {
				break
			}
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	return ids
}

func (sc *Scenario) validate() error {
	if sc.Reps == nil {
		return fmt.Errorf("model: scenario has no representation set")
	}
	if len(sc.Agents) == 0 {
		return fmt.Errorf("model: scenario has no agents")
	}
	if len(sc.Users) == 0 {
		return fmt.Errorf("model: scenario has no users")
	}
	for i := range sc.Sessions {
		s := &sc.Sessions[i]
		if s.ID != SessionID(i) {
			return fmt.Errorf("model: session at index %d has ID %d", i, s.ID)
		}
		if len(s.Users) == 0 {
			return fmt.Errorf("model: session %d is empty", s.ID)
		}
		seen := make(map[UserID]bool, len(s.Users))
		for _, u := range s.Users {
			if int(u) < 0 || int(u) >= len(sc.Users) {
				return fmt.Errorf("model: session %d lists unknown user %d", s.ID, u)
			}
			if seen[u] {
				return fmt.Errorf("model: session %d lists user %d twice", s.ID, u)
			}
			seen[u] = true
			if sc.Users[u].Session != s.ID {
				return fmt.Errorf("model: user %d is listed in session %d but belongs to %d",
					u, s.ID, sc.Users[u].Session)
			}
		}
	}
	for i := range sc.Users {
		u := &sc.Users[i]
		if u.ID != UserID(i) {
			return fmt.Errorf("model: user at index %d has ID %d", i, u.ID)
		}
		if err := validateUser(u, sc.Reps, sc.Sessions, sc.Users); err != nil {
			return err
		}
	}
	for i := range sc.Agents {
		a := &sc.Agents[i]
		if a.ID != AgentID(i) {
			return fmt.Errorf("model: agent at index %d has ID %d", i, a.ID)
		}
		if err := validateAgent(a, sc.Reps); err != nil {
			return err
		}
	}
	if err := validateMatrix("D", sc.DMS, len(sc.Agents), len(sc.Agents)); err != nil {
		return err
	}
	if err := validateMatrix("H", sc.HMS, len(sc.Agents), len(sc.Users)); err != nil {
		return err
	}
	for l := range sc.Agents {
		if sc.DMS[l][l] != 0 {
			return fmt.Errorf("model: D[%d][%d] must be zero", l, l)
		}
	}
	if sc.DMaxMS <= 0 {
		return fmt.Errorf("model: DMaxMS must be positive, got %v", sc.DMaxMS)
	}
	return nil
}

func validateMatrix(name string, m [][]float64, rows, cols int) error {
	if len(m) != rows {
		return fmt.Errorf("model: matrix %s has %d rows, want %d", name, len(m), rows)
	}
	for i, row := range m {
		if len(row) != cols {
			return fmt.Errorf("model: matrix %s row %d has %d cols, want %d", name, i, len(row), cols)
		}
		for j, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("model: matrix %s[%d][%d] = %v is not a valid delay", name, i, j, v)
			}
		}
	}
	return nil
}

func (sc *Scenario) buildCaches() {
	nu := len(sc.Users)
	sc.theta = make([][]bool, nu)
	sc.participants = make([][]UserID, nu)
	for u := range sc.Users {
		sc.theta[u] = make([]bool, nu)
	}
	sc.thetaSum = 0
	for si := range sc.Sessions {
		members := sc.Sessions[si].Users
		for _, u := range members {
			peers := make([]UserID, 0, len(members)-1)
			for _, v := range members {
				if v == u {
					continue
				}
				peers = append(peers, v)
				// Flow u→v needs transcoding when v's effective demand for
				// u's stream differs from what u produces (under
				// DownscaleOnly, upward demands clamp to the upstream and
				// therefore never transcode).
				if sc.Downstream(v, u) != sc.Users[u].Upstream {
					sc.theta[u][v] = true
					sc.thetaSum++
				}
			}
			sc.participants[u] = peers
		}
	}
}
