package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := buildTwoSessionScenario(t)
	var buf bytes.Buffer
	if err := sc.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.NumUsers() != sc.NumUsers() || got.NumSessions() != sc.NumSessions() ||
		got.NumAgents() != sc.NumAgents() {
		t.Fatal("population changed through round trip")
	}
	if got.ThetaSum() != sc.ThetaSum() {
		t.Fatalf("θsum %d → %d", sc.ThetaSum(), got.ThetaSum())
	}
	for u := 0; u < sc.NumUsers(); u++ {
		if got.User(UserID(u)).Upstream != sc.User(UserID(u)).Upstream {
			t.Fatalf("user %d upstream changed", u)
		}
	}
	for l := 0; l < sc.NumAgents(); l++ {
		for k := 0; k < sc.NumAgents(); k++ {
			if got.D(AgentID(l), AgentID(k)) != sc.D(AgentID(l), AgentID(k)) {
				t.Fatalf("D[%d][%d] changed", l, k)
			}
		}
	}
	if got.DMaxMS != sc.DMaxMS {
		t.Fatal("delay cap changed")
	}
}

func TestScenarioJSONPreservesDownscaleOnly(t *testing.T) {
	b := NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r1080, _ := rs.ByName("1080p")
	b.AddAgent(Agent{Upload: 100, Download: 100, TranscodeSlots: 2})
	s := b.AddSession("s")
	u0 := b.AddUser("u0", s, r360, nil)
	u1 := b.AddUser("u1", s, r1080, nil)
	b.DemandFrom(u1, u0, r1080) // upward demand
	b.RestrictDownscaleOnly()
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.DownscaleOnly {
		t.Fatal("DownscaleOnly lost through round trip")
	}
	if got.Theta(0, 1) {
		t.Fatal("clamped upward demand must not transcode after reload")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":       "{",
		"wrong version":  `{"version": 99}`,
		"unknown field":  `{"version": 1, "bogus": true}`,
		"no reps":        `{"version": 1, "representations": []}`,
		"invalid matrix": `{"version":1,"representations":[{"name":"a","mbps":1}],"agents":[{"name":"x","uploadMbps":1,"downloadMbps":1,"transcodeSlots":1,"sigmaMS":[[0]],"capabilityFactor":1,"trafficPricePerMbps":1,"transcodePricePerTask":1}],"sessions":[{"users":[0]}],"users":[{"session":0,"upstream":0}],"interAgentDelayMS":[],"agentUserDelayMS":[],"delayCapMS":400}`,
	}
	for name, doc := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(doc)); err == nil {
				t.Fatal("ReadJSON accepted invalid input")
			}
		})
	}
}

func TestScenarioJSONStableOutput(t *testing.T) {
	sc := buildTwoSessionScenario(t)
	var b1, b2 bytes.Buffer
	if err := sc.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := sc.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("WriteJSON output not deterministic")
	}
	if !strings.Contains(b1.String(), `"interAgentDelayMS"`) {
		t.Fatal("expected tagged field names in output")
	}
}

// FuzzReadJSON hammers the scenario decoder with mutated documents: it must
// never panic, and anything it accepts must be a fully valid scenario.
func FuzzReadJSON(f *testing.F) {
	// Seed with a valid document and a few near-misses.
	b := NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r720, _ := rs.ByName("720p")
	b.AddAgent(Agent{Name: "A", Upload: 10, Download: 10, TranscodeSlots: 1})
	s := b.AddSession("s")
	u0 := b.AddUser("u0", s, r720, nil)
	u1 := b.AddUser("u1", s, r720, nil)
	b.DemandFrom(u1, u0, r360)
	sc, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := sc.WriteJSON(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"version":1,"representations":[{"name":"a","mbps":-1}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejections are fine; panics are not
		}
		// Accepted documents must round-trip through validation again.
		var buf bytes.Buffer
		if err := got.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted scenario failed to serialize: %v", err)
		}
		if _, err := ReadJSON(&buf); err != nil {
			t.Fatalf("accepted scenario failed to re-parse: %v", err)
		}
	})
}
