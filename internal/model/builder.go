package model

import "fmt"

// Builder assembles a Scenario incrementally. It is the ergonomic front door
// used by tests, examples and the workload generator; NewScenario remains
// available for callers that already hold complete tables.
//
// The zero Builder is not usable; create one with NewBuilder.
type Builder struct {
	reps          *RepresentationSet
	users         []User
	sessions      []Session
	agents        []Agent
	dMS           [][]float64
	hMS           [][]float64
	dMaxMS        float64
	downscaleOnly bool
	err           error
}

// NewBuilder creates a Builder over the given representation set. A nil set
// selects DefaultRepresentations.
func NewBuilder(reps *RepresentationSet) *Builder {
	if reps == nil {
		reps = DefaultRepresentations()
	}
	return &Builder{reps: reps}
}

// Reps exposes the builder's representation set (for looking up indices by
// name while constructing users).
func (b *Builder) Reps() *RepresentationSet { return b.reps }

// AddAgent appends an agent and returns its ID. If the agent's SigmaMS table
// is nil, a uniform 45 ms table is installed (mid-range of the paper's
// 30–60 ms prototype band). Zero prices default to 1.
func (b *Builder) AddAgent(a Agent) AgentID {
	a.ID = AgentID(len(b.agents))
	if a.SigmaMS == nil {
		a.SigmaMS = UniformSigma(b.reps.Len(), 45)
	}
	if a.CapabilityFactor == 0 {
		a.CapabilityFactor = 1
	}
	if a.TrafficPricePerMbps == 0 {
		a.TrafficPricePerMbps = 1
	}
	if a.TranscodePricePerTask == 0 {
		a.TranscodePricePerTask = 1
	}
	b.agents = append(b.agents, a)
	return a.ID
}

// AddSession opens a new empty session and returns its ID.
func (b *Builder) AddSession(name string) SessionID {
	id := SessionID(len(b.sessions))
	b.sessions = append(b.sessions, Session{ID: id, Name: name})
	return id
}

// AddUser appends a user to an existing session and returns its ID.
// downstream may be nil (user accepts every source's native representation).
func (b *Builder) AddUser(name string, s SessionID, upstream Representation, downstream map[UserID]Representation) UserID {
	id := UserID(len(b.users))
	if int(s) < 0 || int(s) >= len(b.sessions) {
		b.fail(fmt.Errorf("model: AddUser(%q): unknown session %d", name, s))
		return id
	}
	b.users = append(b.users, User{
		ID:         id,
		Name:       name,
		Session:    s,
		Upstream:   upstream,
		Downstream: downstream,
	})
	b.sessions[s].Users = append(b.sessions[s].Users, id)
	return id
}

// DemandFrom records that user u demands representation r for the stream of
// source v. Use after both users exist to express transcoding demands
// pairwise (handy when demand patterns depend on user IDs).
func (b *Builder) DemandFrom(u, v UserID, r Representation) *Builder {
	if int(u) < 0 || int(u) >= len(b.users) || int(v) < 0 || int(v) >= len(b.users) {
		b.fail(fmt.Errorf("model: DemandFrom(%d, %d): unknown user", u, v))
		return b
	}
	if b.users[u].Downstream == nil {
		b.users[u].Downstream = make(map[UserID]Representation)
	}
	b.users[u].Downstream[v] = r
	return b
}

// SetInterAgentDelays installs the full D matrix (L×L, ms).
func (b *Builder) SetInterAgentDelays(dMS [][]float64) *Builder {
	b.dMS = dMS
	return b
}

// SetAgentUserDelays installs the full H matrix (L×U, ms).
func (b *Builder) SetAgentUserDelays(hMS [][]float64) *Builder {
	b.hMS = hMS
	return b
}

// SetDelayCap overrides the Dmax end-to-end delay cap in milliseconds.
func (b *Builder) SetDelayCap(ms float64) *Builder {
	b.dMaxMS = ms
	return b
}

// RestrictDownscaleOnly activates the paper's footnote-1 θ customization:
// only high-to-low quality transcoding; upward demands are served natively.
func (b *Builder) RestrictDownscaleOnly() *Builder {
	b.downscaleOnly = true
	return b
}

// Build validates and returns the scenario. If no delay matrices were set,
// zero matrices of the right shape are installed (useful for pure capacity
// tests where delay is irrelevant).
func (b *Builder) Build() (*Scenario, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.dMS == nil {
		b.dMS = zeros(len(b.agents), len(b.agents))
	}
	if b.hMS == nil {
		b.hMS = zeros(len(b.agents), len(b.users))
	}
	var opts []ScenarioOption
	if b.downscaleOnly {
		opts = append(opts, WithDownscaleOnly())
	}
	return NewScenario(b.reps, b.users, b.sessions, b.agents, b.dMS, b.hMS, b.dMaxMS, opts...)
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

func zeros(rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
	}
	return m
}
