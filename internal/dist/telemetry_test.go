package dist

import (
	"context"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vconf/internal/core"
	"vconf/internal/telemetry"
)

func promText(t *testing.T, s *telemetry.Sink) string {
	t.Helper()
	var b strings.Builder
	if err := s.Registry().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestDistSpansNestUnderParent drives a full coordinator/runner exchange
// with telemetry on and proves the causal chain the Chrome export renders:
// client dist:exchange spans parent under the caller's span (here a fake
// heal), with freeze/hop/commit phase children, while the server records
// dist:freeze roots with grant/await-commit/commit children — and the
// vconf_dist_* families are registered and fed.
func TestDistSpansNestUnderParent(t *testing.T) {
	ev, start := distStack(t, 21)
	sink := telemetry.New(telemetry.Config{Workers: 2})
	coord, err := NewCoordinatorConfig(ev, start, "127.0.0.1:0", Config{Telemetry: sink})
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.DefaultConfig(21)
	cfg.MeanCountdownS = 0.001
	r, err := NewRunner(ev, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Telemetry = sink
	heal := sink.StartRoot("heal", "fault", 0)
	r.ParentSpan = heal

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hops, err := r.Run(ctx, coord.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if hops != 3 {
		t.Fatalf("hops = %d, want 3", hops)
	}
	heal.EndArg(int64(hops))
	coord.Close() // drain handlers so the last server spans are recorded

	byID := map[uint64]telemetry.SpanRecord{}
	children := map[uint64][]telemetry.SpanRecord{}
	counts := map[string]int{}
	for _, sp := range sink.Spans().Spans() {
		byID[sp.ID] = sp
		children[sp.Parent] = append(children[sp.Parent], sp)
		counts[sp.Name]++
	}

	if counts["dist:exchange"] != hops {
		t.Fatalf("dist:exchange spans = %d, want %d", counts["dist:exchange"], hops)
	}
	for _, sp := range byID {
		if sp.Name != "dist:exchange" {
			continue
		}
		if sp.Parent != heal.ID() {
			t.Fatalf("exchange span parented to %d, want heal %d", sp.Parent, heal.ID())
		}
		phases := map[string]bool{}
		for _, ch := range children[sp.ID] {
			phases[ch.Name] = true
		}
		for _, want := range []string{"freeze", "hop", "commit"} {
			if !phases[want] {
				t.Fatalf("exchange %d missing %q child (has %v)", sp.ID, want, phases)
			}
		}
	}

	if counts["dist:freeze"] != hops {
		t.Fatalf("dist:freeze spans = %d, want %d", counts["dist:freeze"], hops)
	}
	for _, sp := range byID {
		if sp.Name != "dist:freeze" {
			continue
		}
		if sp.Track != distServerLane {
			t.Fatalf("server span on track %d, want %d", sp.Track, distServerLane)
		}
		phases := map[string]bool{}
		for _, ch := range children[sp.ID] {
			phases[ch.Name] = true
		}
		for _, want := range []string{"grant", "await-commit", "commit"} {
			if !phases[want] {
				t.Fatalf("freeze %d missing %q child (has %v)", sp.ID, want, phases)
			}
		}
	}

	text := promText(t, sink)
	if !strings.Contains(text, "vconf_dist_freeze_ns") {
		t.Fatal("vconf_dist_freeze_ns not exposed")
	}
	if strings.Contains(text, "vconf_dist_freeze_ns_count 0\n") {
		t.Fatal("freeze histogram never observed a hold")
	}
}

// TestDistRetryCounter pins vconf_dist_retries_total: a peer that dies on
// every attempt makes the runner retry MaxAttempts-1 times, each one
// counted.
func TestDistRetryCounter(t *testing.T) {
	ev, _ := distStack(t, 22)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var accepts int32
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			atomic.AddInt32(&accepts, 1)
			abruptClose(c)
		}
	}()

	sink := telemetry.New(telemetry.Config{Workers: 2})
	cfg := core.DefaultConfig(22)
	cfg.MeanCountdownS = 0.001
	r, err := NewRunner(ev, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.MaxAttempts = 3
	r.BackoffBase = time.Millisecond
	r.BackoffMax = 4 * time.Millisecond
	r.Telemetry = sink

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := r.Run(ctx, ln.Addr().String(), 1); err == nil {
		t.Fatal("runner succeeded against a peer that dies on every attempt")
	}
	if text := promText(t, sink); !strings.Contains(text, "vconf_dist_retries_total 2") {
		t.Fatalf("retries counter missing or wrong:\n%s", grepLines(text, "vconf_dist_"))
	}
}

// TestDistAbandonCounter pins vconf_dist_abandons_total: a raw peer that
// crashes between GRANTED and COMMIT registers one abandon on the metric
// alongside the Abandons() stat.
func TestDistAbandonCounter(t *testing.T) {
	ev, start := distStack(t, 23)
	sink := telemetry.New(telemetry.Config{Workers: 2})
	coord, err := NewCoordinatorConfig(ev, start, "127.0.0.1:0", Config{Telemetry: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	a, adec, aenc := rawConn(t, coord.Addr())
	if err := aenc.Encode(frame{Type: frameFreeze, Session: 0}); err != nil {
		t.Fatal(err)
	}
	var granted frame
	if err := adec.Decode(&granted); err != nil || granted.Type != frameGranted {
		t.Fatalf("granted = %+v, err %v", granted, err)
	}
	abruptClose(a)

	waitFor(t, "abandon accounting", func() bool { return coord.Abandons() == 1 })
	if text := promText(t, sink); !strings.Contains(text, "vconf_dist_abandons_total 1") {
		t.Fatalf("abandon counter missing or wrong:\n%s", grepLines(text, "vconf_dist_"))
	}
}

// grepLines filters prom text to the lines containing sub, for failure
// messages.
func grepLines(text, sub string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
