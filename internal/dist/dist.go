// Package dist deploys Alg. 1 as an actual network protocol: a Coordinator
// process owning the authoritative assignment state, and one Runner per
// session computing WAIT/HOP locally and committing over TCP.
//
// The wire protocol realizes the FREEZE/UNFREEZE mutual exclusion of §IV-A
// as explicit frames:
//
//	runner → coordinator  FREEZE    {session}
//	coordinator → runner  GRANTED   {λ vector, γ vector}
//	runner → coordinator  COMMIT    {moved, decision}
//	coordinator → runner  COMMITTED | REJECT
//
// Between GRANTED and COMMITTED the coordinator holds the global freeze
// lock, so exactly one session migrates at a time — the same mutual
// exclusion the paper's intra-cloud FREEZE broadcast establishes. The
// runner computes the hop from the granted snapshot with the shared
// core.HopSession logic, so the distributed deployment and the in-process
// engines walk statistically identical chains.
//
// Frames are newline-delimited JSON over TCP; both ends of an exchange run
// in lockstep, so no framing beyond the newline is needed. A coordinator
// read deadline bounds how long a crashed runner can hold the freeze.
package dist

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"vconf/internal/assign"
	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/telemetry"
)

// Span track lanes for the dist protocol, in the shared telemetry lane
// plan (orchestrator owns 0..199): server freezes serialize on one lane
// (the freeze lock admits one at a time), client exchanges spread over a
// small block keyed by session so concurrent runners don't visually
// overlap.
const (
	distServerLane     = 200
	distClientLaneBase = 240
	distClientLanes    = 32
)

// Frame type tags.
const (
	frameFreeze    = "freeze"
	frameGranted   = "granted"
	frameCommit    = "commit"
	frameCommitted = "committed"
	frameReject    = "reject"
	frameError     = "error"
)

// wireDecision serializes an assign.Decision.
type wireDecision struct {
	Kind int `json:"kind"`
	User int `json:"user,omitempty"`
	Src  int `json:"src,omitempty"`
	Dst  int `json:"dst,omitempty"`
	To   int `json:"to"`
}

func toWire(d assign.Decision) *wireDecision {
	return &wireDecision{
		Kind: int(d.Kind),
		User: int(d.User),
		Src:  int(d.Flow.Src),
		Dst:  int(d.Flow.Dst),
		To:   int(d.To),
	}
}

func (w *wireDecision) decision() assign.Decision {
	return assign.Decision{
		Kind: assign.DecisionKind(w.Kind),
		User: model.UserID(w.User),
		Flow: model.Flow{Src: model.UserID(w.Src), Dst: model.UserID(w.Dst)},
		To:   model.AgentID(w.To),
	}
}

// frame is one protocol message in either direction.
type frame struct {
	Type    string `json:"type"`
	Session int    `json:"session,omitempty"`
	// Users and Flows carry the full λ and γ vectors of the authoritative
	// assignment in a GRANTED frame (γ in the scenario's canonical flow
	// order).
	Users    []int         `json:"users,omitempty"`
	Flows    []int         `json:"flows,omitempty"`
	Moved    bool          `json:"moved,omitempty"`
	Decision *wireDecision `json:"decision,omitempty"`
	Err      string        `json:"err,omitempty"`
}

// DefaultFreezeHold bounds how long a coordinator waits for the COMMIT frame
// of a granted freeze before dropping the connection and releasing the lock.
const DefaultFreezeHold = 10 * time.Second

// ErrPeerDied marks the far end of a protocol exchange dying (EOF, reset, or
// a deadline expiry) mid-handshake. Match with errors.Is.
var ErrPeerDied = errors.New("dist: peer died")

// PeerError records which protocol phase the peer vanished in. It satisfies
// errors.Is(err, ErrPeerDied) and unwraps to the underlying network error.
type PeerError struct {
	Phase   string // "dial", "freeze", "granted", "commit", "ack"
	Session int
	Err     error
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("dist: peer died in %s phase (session %d): %v", e.Phase, e.Session, e.Err)
}

func (e *PeerError) Unwrap() error { return e.Err }

// Is reports ErrPeerDied so callers can classify without the concrete type.
func (e *PeerError) Is(target error) bool { return target == ErrPeerDied }

// Config tunes the coordinator's failure handling. The zero value selects
// the defaults.
type Config struct {
	// FreezeHold bounds how long a granted freeze waits for its COMMIT
	// frame before the coordinator drops the connection and releases the
	// lock. Defaults to DefaultFreezeHold.
	FreezeHold time.Duration
	// Telemetry receives the protocol metric families
	// (vconf_dist_freeze_ns, vconf_dist_abandons_total,
	// vconf_dist_retries_total) and per-phase server spans. Nil disables
	// instrumentation entirely.
	Telemetry *telemetry.Sink
}

func (cfg Config) withDefaults() Config {
	if cfg.FreezeHold <= 0 {
		cfg.FreezeHold = DefaultFreezeHold
	}
	return cfg
}

// Coordinator owns the authoritative assignment and serializes hops through
// the freeze lock. Safe for concurrent connections.
type Coordinator struct {
	ev  *cost.Evaluator
	ln  net.Listener
	cfg Config
	tel *telemetry.Sink

	mu     sync.Mutex // the FREEZE lock, held from GRANTED to COMMITTED
	a      *assign.Assignment
	ledger *cost.Ledger

	statsMu  sync.Mutex
	commits  int
	stays    int
	rejects  int
	abandons int
	closed   chan struct{}
	connWG   sync.WaitGroup
	closeErr error

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// NewCoordinator starts a coordinator listening on addr ("127.0.0.1:0"
// selects a free port) with the given complete initial assignment and the
// default Config.
func NewCoordinator(ev *cost.Evaluator, a *assign.Assignment, addr string) (*Coordinator, error) {
	return NewCoordinatorConfig(ev, a, addr, Config{})
}

// NewCoordinatorConfig is NewCoordinator with explicit failure-handling
// configuration.
func NewCoordinatorConfig(ev *cost.Evaluator, a *assign.Assignment, addr string, cfg Config) (*Coordinator, error) {
	sc := ev.Scenario()
	ledger := cost.NewLedger(sc)
	p := ev.Params()
	for s := 0; s < sc.NumSessions(); s++ {
		sid := model.SessionID(s)
		if !a.SessionComplete(sid) {
			return nil, fmt.Errorf("dist: coordinator needs a complete assignment; session %d is not", s)
		}
		ledger.Add(p.SessionLoadOf(a, sid))
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen: %w", err)
	}
	c := &Coordinator{
		ev:     ev,
		ln:     ln,
		cfg:    cfg.withDefaults(),
		tel:    cfg.Telemetry,
		a:      a.Clone(),
		ledger: ledger,
		closed: make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	go c.acceptLoop()
	return c, nil
}

// Addr returns the coordinator's listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close stops the listener, closes live connections (an idle runner would
// otherwise park a serve goroutine in a deadline-free read forever), and
// waits for the handlers to drain.
func (c *Coordinator) Close() error {
	select {
	case <-c.closed:
		return c.closeErr
	default:
	}
	close(c.closed)
	c.closeErr = c.ln.Close()
	c.connMu.Lock()
	for conn := range c.conns {
		conn.Close()
	}
	c.connMu.Unlock()
	c.connWG.Wait()
	return c.closeErr
}

// Stats returns (commits, stays, rejects): hops that migrated, hops that
// found no feasible move, and commits that failed validation.
func (c *Coordinator) Stats() (commits, stays, rejects int) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.commits, c.stays, c.rejects
}

// Abandons returns how many granted freezes were released because the peer
// died (or stalled past FreezeHold) before delivering its COMMIT frame.
func (c *Coordinator) Abandons() int {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.abandons
}

// Assignment returns a snapshot of the authoritative assignment.
func (c *Coordinator) Assignment() *assign.Assignment {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.a.Clone()
}

func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.connMu.Lock()
		c.conns[conn] = struct{}{}
		c.connMu.Unlock()
		c.connWG.Add(1)
		go func() {
			defer c.connWG.Done()
			defer func() {
				conn.Close()
				c.connMu.Lock()
				delete(c.conns, conn)
				c.connMu.Unlock()
			}()
			c.serve(conn)
		}()
	}
}

// serve handles one runner connection: any number of FREEZE→COMMIT
// exchanges in sequence.
func (c *Coordinator) serve(conn net.Conn) {
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		conn.SetReadDeadline(time.Time{}) // idle between freezes is fine
		var req frame
		if err := dec.Decode(&req); err != nil {
			return
		}
		if req.Type != frameFreeze {
			enc.Encode(frame{Type: frameError, Err: fmt.Sprintf("expected %s, got %s", frameFreeze, req.Type)})
			return
		}
		if req.Session < 0 || req.Session >= c.ev.Scenario().NumSessions() {
			enc.Encode(frame{Type: frameError, Err: fmt.Sprintf("unknown session %d", req.Session)})
			return
		}
		if err := c.handleFreeze(conn, dec, enc, req.Session); err != nil {
			return
		}
	}
}

// handleFreeze runs one GRANTED→COMMIT exchange under the freeze lock.
// The freeze-hold histogram spans lock acquisition to release — the window
// during which the whole fleet is frozen for this one session.
func (c *Coordinator) handleFreeze(conn net.Conn, dec *json.Decoder, enc *json.Encoder, session int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	held := time.Now()
	srv := c.tel.StartRoot("dist:freeze", "dist", distServerLane)
	defer func() {
		c.tel.DistFreeze(time.Since(held).Nanoseconds())
		srv.EndArg(int64(session))
	}()

	grant := c.tel.StartSpan("grant", srv)
	sc := c.ev.Scenario()
	granted := frame{Type: frameGranted, Session: session}
	granted.Users = make([]int, sc.NumUsers())
	for u := 0; u < sc.NumUsers(); u++ {
		granted.Users[u] = int(c.a.UserAgent(model.UserID(u)))
	}
	flows := c.a.Flows()
	granted.Flows = make([]int, len(flows))
	for i, f := range flows {
		l, _ := c.a.FlowAgent(f)
		granted.Flows[i] = int(l)
	}
	if err := enc.Encode(granted); err != nil {
		return err
	}
	grant.End()

	// The freeze is now held: bound the wait for the commit frame.
	wait := c.tel.StartSpan("await-commit", srv)
	conn.SetReadDeadline(time.Now().Add(c.cfg.FreezeHold))
	var com frame
	if err := dec.Decode(&com); err != nil {
		// The peer vanished between GRANTED and COMMIT (EOF/reset is
		// immediate; a silent stall trips the FreezeHold deadline). The
		// deferred unlock releases the frozen state the moment we return —
		// the authoritative assignment never changed, so no rollback is
		// needed, but the half-open exchange is recorded for operators.
		c.bump(&c.abandons)
		c.tel.DistAbandon()
		return &PeerError{Phase: "commit", Session: session, Err: err}
	}
	wait.End()
	commit := c.tel.StartSpan("commit", srv)
	defer commit.End()
	if com.Type != frameCommit {
		enc.Encode(frame{Type: frameError, Err: fmt.Sprintf("expected %s, got %s", frameCommit, com.Type)})
		return errors.New("dist: protocol violation")
	}

	if !com.Moved || com.Decision == nil {
		c.bump(&c.stays)
		return enc.Encode(frame{Type: frameCommitted, Session: session})
	}

	// Never trust the wire: the commit must target the frozen session, and
	// the decision must belong to it — otherwise the load accounting below
	// would charge the wrong session (or index out of range).
	sid := model.SessionID(session)
	d := com.Decision.decision()
	if com.Session != session {
		c.bump(&c.rejects)
		return enc.Encode(frame{Type: frameReject, Session: session,
			Err: fmt.Sprintf("commit for session %d under freeze of %d", com.Session, session)})
	}
	owner, err := cost.TouchedSession(sc, d)
	if err != nil || owner != sid {
		c.bump(&c.rejects)
		return enc.Encode(frame{Type: frameReject, Session: session, Err: "decision outside the frozen session"})
	}
	if d.To < 0 || int(d.To) >= sc.NumAgents() {
		c.bump(&c.rejects)
		return enc.Encode(frame{Type: frameReject, Session: session, Err: fmt.Sprintf("unknown agent %d", d.To)})
	}
	p := c.ev.Params()
	curLoad := p.SessionLoadOf(c.a, sid)
	c.ledger.Remove(curLoad)
	inv, err := c.a.Apply(d)
	if err != nil {
		c.ledger.Add(curLoad)
		c.bump(&c.rejects)
		return enc.Encode(frame{Type: frameReject, Session: session, Err: err.Error()})
	}
	newLoad := p.SessionLoadOf(c.a, sid)
	if !c.ledger.FitsRepair(newLoad, curLoad) || !cost.DelayFeasible(c.a, sid) {
		c.a.Apply(inv)
		c.ledger.Add(curLoad)
		c.bump(&c.rejects)
		return enc.Encode(frame{Type: frameReject, Session: session, Err: "infeasible commit"})
	}
	c.ledger.Add(newLoad)
	c.bump(&c.commits)
	return enc.Encode(frame{Type: frameCommitted, Session: session})
}

func (c *Coordinator) bump(counter *int) {
	c.statsMu.Lock()
	*counter++
	c.statsMu.Unlock()
}

// Runner executes one session's WAIT/HOP loop against a remote Coordinator.
type Runner struct {
	ev  *cost.Evaluator
	s   model.SessionID
	cfg core.Config
	// TimeScale compresses virtual seconds into wall time, like
	// core.Parallel: a countdown of c virtual seconds sleeps c×TimeScale.
	// Defaults to 1 ms per virtual second.
	TimeScale time.Duration
	// MaxAttempts bounds how many times one FREEZE→COMMIT round-trip is
	// attempted before Run gives up with a PeerError, redialing between
	// attempts. Defaults to 1 (no retries). Retrying restarts the whole
	// exchange from a fresh FREEZE — any freeze abandoned mid-flight was
	// already released by the coordinator, and a commit whose ack was lost
	// simply becomes the base state of the retried hop's snapshot.
	MaxAttempts int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts: the delay doubles per failure from BackoffBase, capped at
	// BackoffMax, with ±50% jitter drawn from the runner's seeded stream.
	// Default 5ms base, 250ms cap.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Telemetry receives client-side per-phase spans and the retry
	// counter; nil disables instrumentation. ParentSpan, when active,
	// parents each exchange span (e.g. under an orchestrator heal span)
	// so distributed hops show up inside the triggering incident's flame;
	// otherwise exchanges root on a per-session client lane.
	Telemetry  *telemetry.Sink
	ParentSpan telemetry.Span
}

// clientSpan starts one exchange-scoped span, parented to ParentSpan when
// the caller threaded one in, rooted on the session's client lane when not.
func (r *Runner) clientSpan(name string) telemetry.Span {
	if r.ParentSpan.Active() {
		return r.Telemetry.StartSpan(name, r.ParentSpan)
	}
	return r.Telemetry.StartRoot(name, "dist", distClientLaneBase+int32(int(r.s)%distClientLanes))
}

// NewRunner builds the runner for one session.
func NewRunner(ev *cost.Evaluator, session model.SessionID, cfg core.Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if int(session) < 0 || int(session) >= ev.Scenario().NumSessions() {
		return nil, fmt.Errorf("dist: unknown session %d", session)
	}
	return &Runner{
		ev: ev, s: session, cfg: cfg,
		TimeScale:   time.Millisecond,
		MaxAttempts: 1,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  250 * time.Millisecond,
	}, nil
}

// Run connects to the coordinator and executes up to maxHops hops, returning
// the number performed. A context cancellation or deadline is a clean stop,
// not an error. Network faults (peer death in any phase, refused dials) are
// retried up to MaxAttempts times per round-trip with exponential backoff,
// redialing each time; exhausting the budget surfaces a PeerError matching
// errors.Is(err, ErrPeerDied).
func (r *Runner) Run(ctx context.Context, addr string, maxHops int) (int, error) {
	// Independent per-session randomness, deterministically seeded like the
	// in-process Parallel engine (backoff jitter draws from the same stream).
	rng := rand.New(rand.NewSource(r.cfg.Seed + int64(r.s)*7919))

	var conn net.Conn
	var dec *json.Decoder
	var enc *json.Encoder
	drop := func() {
		if conn != nil {
			conn.Close()
			conn = nil
		}
	}
	defer drop()
	dial := func() error {
		var dialer net.Dialer
		c, err := dialer.DialContext(ctx, "tcp", addr)
		if err != nil {
			return &PeerError{Phase: "dial", Session: int(r.s), Err: err}
		}
		if deadline, ok := ctx.Deadline(); ok {
			c.SetDeadline(deadline)
		}
		conn = c
		dec = json.NewDecoder(bufio.NewReader(c))
		enc = json.NewEncoder(c)
		return nil
	}
	attempts := r.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}

	hops := 0
	for hops < maxHops {
		// WAIT: exponential countdown with mean 1/τ, compressed by TimeScale.
		wait := time.Duration(rng.ExpFloat64() * r.cfg.MeanCountdownS * float64(r.TimeScale))
		timer := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			return hops, nil
		case <-timer.C:
		}

		// One FREEZE→COMMIT round-trip, restarted from scratch on network
		// faults: an abandoned freeze was already released by the
		// coordinator, and a commit whose ack was lost simply becomes part
		// of the snapshot the retried hop computes against.
		var lastErr error
		done := false
		for att := 0; att < attempts; att++ {
			if att > 0 {
				r.Telemetry.DistRetry()
				if err := r.backoff(ctx, rng, att); err != nil {
					return hops, nil
				}
			}
			if conn == nil {
				dsp := r.clientSpan("dist:dial")
				if err := dial(); err != nil {
					if ctx.Err() != nil {
						return hops, nil
					}
					lastErr = err
					continue
				}
				dsp.End()
			}
			retry, err := r.exchange(dec, enc, rng)
			if err == nil {
				done = true
				break
			}
			if ctx.Err() != nil {
				return hops, nil
			}
			if !retry {
				return hops, err
			}
			drop()
			lastErr = err
		}
		if !done {
			return hops, lastErr
		}
		hops++
	}
	return hops, nil
}

// exchange runs one full FREEZE→GRANTED→COMMIT→ack round-trip on the live
// connection. The bool classifies a failure as a retryable network fault
// (peer death) versus a fatal protocol violation.
// Failed exchanges abandon their spans un-Ended (never recorded); the
// retry counter carries that signal instead.
func (r *Runner) exchange(dec *json.Decoder, enc *json.Encoder, rng *rand.Rand) (retry bool, err error) {
	ex := r.clientSpan("dist:exchange")
	freeze := r.Telemetry.StartSpan("freeze", ex)
	if err := enc.Encode(frame{Type: frameFreeze, Session: int(r.s)}); err != nil {
		return true, &PeerError{Phase: "freeze", Session: int(r.s), Err: err}
	}
	var granted frame
	if err := dec.Decode(&granted); err != nil {
		return true, &PeerError{Phase: "granted", Session: int(r.s), Err: err}
	}
	if granted.Type != frameGranted {
		return false, fmt.Errorf("dist: expected %s, got %s (%s)", frameGranted, granted.Type, granted.Err)
	}
	freeze.End()

	// HOP: rebuild the granted snapshot locally and run the shared hop
	// logic against it.
	hop := r.Telemetry.StartSpan("hop", ex)
	a, ledger, err := r.restore(granted)
	if err != nil {
		return false, err
	}
	res, err := core.HopSession(a, r.s, r.ev, ledger, r.cfg, rng)
	if err != nil {
		return false, fmt.Errorf("dist: hop session %d: %w", r.s, err)
	}
	hop.End()
	commit := r.Telemetry.StartSpan("commit", ex)
	com := frame{Type: frameCommit, Session: int(r.s), Moved: res.Moved}
	if res.Moved {
		com.Decision = toWire(res.Decision)
	}
	if err := enc.Encode(com); err != nil {
		return true, &PeerError{Phase: "commit", Session: int(r.s), Err: err}
	}
	var ack frame
	if err := dec.Decode(&ack); err != nil {
		return true, &PeerError{Phase: "ack", Session: int(r.s), Err: err}
	}
	switch ack.Type {
	case frameCommitted, frameReject:
		commit.End()
		moved := int64(0)
		if res.Moved {
			moved = 1
		}
		ex.EndArg(moved)
		return false, nil
	default:
		return false, fmt.Errorf("dist: unexpected ack %s (%s)", ack.Type, ack.Err)
	}
}

// backoff sleeps before retry attempt att: exponential from BackoffBase,
// capped at BackoffMax, with ±50% jitter from the runner's seeded stream so
// herds of runners don't re-dial a recovering coordinator in lockstep.
func (r *Runner) backoff(ctx context.Context, rng *rand.Rand, att int) error {
	base := r.BackoffBase
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	ceil := r.BackoffMax
	if ceil <= 0 {
		ceil = 250 * time.Millisecond
	}
	d := base << uint(att-1)
	if d <= 0 || d > ceil {
		d = ceil
	}
	d = d/2 + time.Duration(rng.Int63n(int64(d)))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// restore rebuilds an assignment and the other-sessions ledger from a
// GRANTED frame.
func (r *Runner) restore(granted frame) (*assign.Assignment, *cost.Ledger, error) {
	sc := r.ev.Scenario()
	a := assign.New(sc)
	if len(granted.Users) != sc.NumUsers() || len(granted.Flows) != len(a.Flows()) {
		return nil, nil, fmt.Errorf("dist: granted snapshot shape mismatch")
	}
	for u, l := range granted.Users {
		a.SetUserAgent(model.UserID(u), model.AgentID(l))
	}
	for i, f := range a.Flows() {
		if err := a.SetFlowAgent(f, model.AgentID(granted.Flows[i])); err != nil {
			return nil, nil, err
		}
	}
	ledger := cost.NewLedger(sc)
	p := r.ev.Params()
	for s := 0; s < sc.NumSessions(); s++ {
		ledger.Add(p.SessionLoadOf(a, model.SessionID(s)))
	}
	return a, ledger, nil
}
