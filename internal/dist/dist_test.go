package dist

import (
	"context"
	"sync"
	"testing"
	"time"

	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/core"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/workload"
)

func distStack(t *testing.T, seed int64) (*cost.Evaluator, *assign.Assignment) {
	t.Helper()
	wl := workload.Prototype(seed)
	wl.NumUsers = 16
	sc, err := workload.Generate(wl)
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	a := assign.New(sc)
	if err := baseline.Assign(a, p, cost.NewLedger(sc)); err != nil {
		t.Fatal(err)
	}
	return ev, a
}

func TestCoordinatorRunnersEndToEnd(t *testing.T) {
	ev, start := distStack(t, 1)
	initial := ev.TotalObjective(start)

	coord, err := NewCoordinator(ev, start, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	cfg := core.DefaultConfig(1)
	cfg.MeanCountdownS = 1
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	sc := ev.Scenario()
	var wg sync.WaitGroup
	hops := make([]int, sc.NumSessions())
	for s := 0; s < sc.NumSessions(); s++ {
		r, err := NewRunner(ev, model.SessionID(s), cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, r *Runner) {
			defer wg.Done()
			n, err := r.Run(ctx, coord.Addr(), 10)
			if err != nil {
				t.Errorf("runner %d: %v", i, err)
			}
			hops[i] = n
		}(s, r)
	}
	wg.Wait()

	total := 0
	for _, h := range hops {
		total += h
	}
	commits, stays, rejects := coord.Stats()
	if total == 0 || commits+stays+rejects != total {
		t.Fatalf("hops=%d but stats %d/%d/%d", total, commits, stays, rejects)
	}

	final := coord.Assignment()
	if phi := ev.TotalObjective(final); phi > initial {
		t.Fatalf("protocol worsened the objective: %v → %v", initial, phi)
	}
	if err := ev.CheckFeasible(final); err != nil {
		t.Fatalf("authoritative assignment infeasible: %v", err)
	}
}

func TestCoordinatorRejectsIncompleteAssignment(t *testing.T) {
	ev, _ := distStack(t, 2)
	if _, err := NewCoordinator(ev, assign.New(ev.Scenario()), "127.0.0.1:0"); err == nil {
		t.Fatal("incomplete assignment accepted")
	}
}

func TestRunnerValidation(t *testing.T) {
	ev, _ := distStack(t, 3)
	if _, err := NewRunner(ev, -1, core.DefaultConfig(3)); err == nil {
		t.Fatal("negative session accepted")
	}
	bad := core.DefaultConfig(3)
	bad.Beta = -1
	if _, err := NewRunner(ev, 0, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunnerCleanStopOnContext(t *testing.T) {
	ev, start := distStack(t, 4)
	coord, err := NewCoordinator(ev, start, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	cfg := core.DefaultConfig(4)
	cfg.MeanCountdownS = 1000 // countdown far beyond the context deadline
	r, err := NewRunner(ev, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	hops, err := r.Run(ctx, coord.Addr(), 100)
	if err != nil {
		t.Fatalf("context stop surfaced as error: %v", err)
	}
	if hops != 0 {
		t.Fatalf("hops = %d before any countdown elapsed", hops)
	}
}
