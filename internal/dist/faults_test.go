package dist

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"vconf/internal/core"
)

// rawConn opens a raw protocol connection for hand-driven exchanges.
func rawConn(t *testing.T, addr string) (net.Conn, *json.Decoder, *json.Encoder) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return c, json.NewDecoder(bufio.NewReader(c)), json.NewEncoder(c)
}

// abruptClose resets the connection (RST, no FIN handshake) — the shape of a
// crashed peer.
func abruptClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

func waitFor(t *testing.T, what string, f func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if f() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRunnerBoundedRetryOnPeerDeath kills the coordinator side of every
// connection mid-handshake: the runner must redial exactly MaxAttempts times
// and then surface a typed peer-death error, not hang or spin forever.
func TestRunnerBoundedRetryOnPeerDeath(t *testing.T) {
	ev, _ := distStack(t, 11)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var accepts int32
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			atomic.AddInt32(&accepts, 1)
			abruptClose(c)
		}
	}()

	cfg := core.DefaultConfig(11)
	cfg.MeanCountdownS = 0.001
	r, err := NewRunner(ev, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.MaxAttempts = 3
	r.BackoffBase = time.Millisecond
	r.BackoffMax = 4 * time.Millisecond

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hops, err := r.Run(ctx, ln.Addr().String(), 1)
	if err == nil {
		t.Fatal("runner succeeded against a peer that dies on every attempt")
	}
	if !errors.Is(err, ErrPeerDied) {
		t.Fatalf("error %v does not match ErrPeerDied", err)
	}
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Phase == "" {
		t.Fatalf("error %v is not a phase-tagged PeerError", err)
	}
	if hops != 0 {
		t.Fatalf("counted %d hops with no live coordinator", hops)
	}
	if got := atomic.LoadInt32(&accepts); got != 3 {
		t.Fatalf("runner dialed %d times, want exactly MaxAttempts = 3", got)
	}
}

// TestRunnerRetriesThroughFlakyProxy proves retry-after-failure end to end:
// a proxy kills the runner's first two connections outright, then starts
// piping to a real coordinator — the run must complete all its hops anyway.
func TestRunnerRetriesThroughFlakyProxy(t *testing.T) {
	ev, start := distStack(t, 12)
	coord, err := NewCoordinator(ev, start, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	proxy, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	var conns int32
	go func() {
		for {
			c, err := proxy.Accept()
			if err != nil {
				return
			}
			if atomic.AddInt32(&conns, 1) <= 2 {
				abruptClose(c)
				continue
			}
			up, err := net.Dial("tcp", coord.Addr())
			if err != nil {
				c.Close()
				continue
			}
			go func() { io.Copy(up, c); up.Close(); c.Close() }()
			go func() { io.Copy(c, up); up.Close(); c.Close() }()
		}
	}()

	cfg := core.DefaultConfig(12)
	cfg.MeanCountdownS = 0.001
	r, err := NewRunner(ev, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.MaxAttempts = 4
	r.BackoffBase = time.Millisecond
	r.BackoffMax = 4 * time.Millisecond

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hops, err := r.Run(ctx, proxy.Addr().String(), 3)
	if err != nil {
		t.Fatalf("run through flaky proxy: %v", err)
	}
	if hops != 3 {
		t.Fatalf("completed %d hops, want 3", hops)
	}
	if atomic.LoadInt32(&conns) <= 2 {
		t.Fatal("proxy never killed a connection; the retry path was not exercised")
	}
}

// TestFreezeReleasedOnPeerDeath is the FREEZE→COMMIT drop regression: a peer
// that resets its connection while holding the freeze must release it
// immediately (not after the FreezeHold deadline), the abandoned exchange
// must be counted, and the next freeze must proceed normally.
func TestFreezeReleasedOnPeerDeath(t *testing.T) {
	ev, start := distStack(t, 13)
	coord, err := NewCoordinator(ev, start, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// A freezes session 0, then crashes while holding the lock.
	a, adec, aenc := rawConn(t, coord.Addr())
	if err := aenc.Encode(frame{Type: frameFreeze, Session: 0}); err != nil {
		t.Fatal(err)
	}
	var granted frame
	if err := adec.Decode(&granted); err != nil || granted.Type != frameGranted {
		t.Fatalf("granted = %+v, err %v", granted, err)
	}
	abruptClose(a)

	// B's freeze must be granted promptly — far below the 10s default hold.
	b, bdec, benc := rawConn(t, coord.Addr())
	defer b.Close()
	b.SetDeadline(time.Now().Add(2 * time.Second))
	if err := benc.Encode(frame{Type: frameFreeze, Session: 1}); err != nil {
		t.Fatal(err)
	}
	if err := bdec.Decode(&granted); err != nil || granted.Type != frameGranted {
		t.Fatalf("freeze after peer death: granted = %+v, err %v (wedged lock?)", granted, err)
	}
	if err := benc.Encode(frame{Type: frameCommit, Session: 1, Moved: false}); err != nil {
		t.Fatal(err)
	}
	var ack frame
	if err := bdec.Decode(&ack); err != nil || ack.Type != frameCommitted {
		t.Fatalf("ack = %+v, err %v", ack, err)
	}
	waitFor(t, "abandon accounting", func() bool { return coord.Abandons() == 1 })
	if _, stays, _ := coord.Stats(); stays != 1 {
		t.Fatalf("stays = %d, want 1", stays)
	}
}

// TestFreezeHoldDeadline pins the configurable hold: a peer that goes silent
// (without dying) while holding the freeze is evicted after FreezeHold and
// the lock handed to the next freeze.
func TestFreezeHoldDeadline(t *testing.T) {
	ev, start := distStack(t, 14)
	coord, err := NewCoordinatorConfig(ev, start, "127.0.0.1:0", Config{FreezeHold: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	a, adec, aenc := rawConn(t, coord.Addr())
	defer a.Close() // stays open, just silent
	if err := aenc.Encode(frame{Type: frameFreeze, Session: 0}); err != nil {
		t.Fatal(err)
	}
	var granted frame
	if err := adec.Decode(&granted); err != nil || granted.Type != frameGranted {
		t.Fatalf("granted = %+v, err %v", granted, err)
	}

	b, bdec, benc := rawConn(t, coord.Addr())
	defer b.Close()
	b.SetDeadline(time.Now().Add(2 * time.Second))
	if err := benc.Encode(frame{Type: frameFreeze, Session: 1}); err != nil {
		t.Fatal(err)
	}
	if err := bdec.Decode(&granted); err != nil || granted.Type != frameGranted {
		t.Fatalf("freeze behind a silent holder: granted = %+v, err %v", granted, err)
	}
	waitFor(t, "hold-expiry abandon", func() bool { return coord.Abandons() == 1 })
}

// TestCoordinatorSurvivesPeerDeathEveryPhase crashes a peer at every point
// of the protocol state machine, then proves the coordinator still serves a
// clean exchange and shuts down without wedged handlers.
func TestCoordinatorSurvivesPeerDeathEveryPhase(t *testing.T) {
	ev, start := distStack(t, 15)
	coord, err := NewCoordinator(ev, start, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	phases := []struct {
		name  string
		drive func(t *testing.T, dec *json.Decoder, enc *json.Encoder)
	}{
		{"pre-freeze", func(t *testing.T, dec *json.Decoder, enc *json.Encoder) {}},
		{"post-freeze", func(t *testing.T, dec *json.Decoder, enc *json.Encoder) {
			enc.Encode(frame{Type: frameFreeze, Session: 0})
		}},
		{"holding-freeze", func(t *testing.T, dec *json.Decoder, enc *json.Encoder) {
			enc.Encode(frame{Type: frameFreeze, Session: 0})
			var g frame
			if err := dec.Decode(&g); err != nil || g.Type != frameGranted {
				t.Fatalf("granted = %+v, err %v", g, err)
			}
		}},
		{"post-commit", func(t *testing.T, dec *json.Decoder, enc *json.Encoder) {
			enc.Encode(frame{Type: frameFreeze, Session: 0})
			var g frame
			if err := dec.Decode(&g); err != nil || g.Type != frameGranted {
				t.Fatalf("granted = %+v, err %v", g, err)
			}
			enc.Encode(frame{Type: frameCommit, Session: 0, Moved: false})
		}},
	}
	for _, ph := range phases {
		c, dec, enc := rawConn(t, coord.Addr())
		c.SetDeadline(time.Now().Add(5 * time.Second))
		ph.drive(t, dec, enc)
		abruptClose(c)

		// The coordinator must hand the freeze to a fresh peer promptly
		// after every crash.
		v, vdec, venc := rawConn(t, coord.Addr())
		v.SetDeadline(time.Now().Add(2 * time.Second))
		if err := venc.Encode(frame{Type: frameFreeze, Session: 1}); err != nil {
			t.Fatalf("%s: %v", ph.name, err)
		}
		var g frame
		if err := vdec.Decode(&g); err != nil || g.Type != frameGranted {
			t.Fatalf("%s: freeze after crash: %+v, err %v", ph.name, g, err)
		}
		if err := venc.Encode(frame{Type: frameCommit, Session: 1, Moved: false}); err != nil {
			t.Fatalf("%s: %v", ph.name, err)
		}
		var ack frame
		if err := vdec.Decode(&ack); err != nil || ack.Type != frameCommitted {
			t.Fatalf("%s: ack = %+v, err %v", ph.name, ack, err)
		}
		v.Close()
	}

	// Close must drain every handler: a wedged serve goroutine (held lock or
	// deadline-free read) would hang here.
	done := make(chan error, 1)
	go func() { done <- coord.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator close wedged on a leaked handler")
	}
}
