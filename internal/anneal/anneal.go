// Package anneal implements two centralized comparison solvers the paper
// positions itself against in §IV-A-3: simulated annealing and greedy
// best-response (steepest-descent local search).
//
// Unlike the Markov approximation, neither admits a per-session parallel
// implementation with provable gap bounds — simulated annealing needs a
// global temperature schedule and the greedy sticks at local optima. They
// serve as ablation comparators: same neighbor structure (one decision
// variable per move), same feasibility rules, different acceptance rules.
package anneal

import (
	"fmt"
	"math"
	"math/rand"

	"vconf/internal/assign"
	"vconf/internal/cost"
	"vconf/internal/model"
)

// Result summarizes a local-search run.
type Result struct {
	// Assignment is the best state found.
	Assignment *assign.Assignment
	// BestPhi is its total objective.
	BestPhi float64
	// Iterations counts proposed moves; Accepted counts executed ones.
	Iterations int
	Accepted   int
}

// AnnealConfig tunes simulated annealing.
type AnnealConfig struct {
	// Iterations is the total number of proposed moves.
	Iterations int
	// T0 is the initial temperature in objective units; TEnd the final one.
	// A geometric cooling schedule interpolates between them.
	T0   float64
	TEnd float64
	Seed int64
	// RebuildDelayBase disables the persistent per-session delay cache the
	// proposal chain reuses across iterations (see cost.DelayCache) and
	// rebuilds the full delay base on every BeginSession instead. The two
	// paths are bit-identical; the flag exists for differential testing.
	RebuildDelayBase bool
}

// DefaultAnnealConfig returns a schedule sized for workloads of a few
// hundred decision variables.
func DefaultAnnealConfig(seed int64) AnnealConfig {
	return AnnealConfig{Iterations: 20000, T0: 50, TEnd: 0.05, Seed: seed}
}

func (c AnnealConfig) validate() error {
	if c.Iterations < 1 {
		return fmt.Errorf("anneal: iterations must be positive")
	}
	if c.T0 <= 0 || c.TEnd <= 0 || c.TEnd > c.T0 {
		return fmt.Errorf("anneal: invalid temperature schedule [%v → %v]", c.T0, c.TEnd)
	}
	return nil
}

// SimulatedAnnealing runs Metropolis acceptance over the single-variable
// neighbor structure, starting from a complete feasible assignment. The
// returned assignment is the best feasible state visited.
func SimulatedAnnealing(ev *cost.Evaluator, start *assign.Assignment, cfg AnnealConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sc := ev.Scenario()
	if !start.Complete() {
		return nil, fmt.Errorf("anneal: start assignment incomplete")
	}
	p := ev.Params()
	rng := rand.New(rand.NewSource(cfg.Seed))

	a := start.Clone()
	ledger := cost.NewLedger(sc)
	sessionPhi := make([]float64, sc.NumSessions())
	curPhi := 0.0
	for s := 0; s < sc.NumSessions(); s++ {
		ledger.Add(p.SessionLoadOf(a, model.SessionID(s)))
		sessionPhi[s] = ev.SessionObjective(a, model.SessionID(s))
		curPhi += sessionPhi[s]
	}

	best := a.Clone()
	bestPhi := curPhi
	res := &Result{}
	cooling := math.Pow(cfg.TEnd/cfg.T0, 1/float64(cfg.Iterations))
	temp := cfg.T0

	// One evaluation scratch serves the whole run: its per-session delay
	// cache persists across the chain, so a proposal for a session whose
	// variables did not move since its last evaluation skips the delay-base
	// rebuild entirely, and an accepted move patches only the moved flows.
	// No per-iteration allocations either way.
	scr := ev.NewScratch()
	scr.SetDelayCacheEnabled(!cfg.RebuildDelayBase)
	var decisions []assign.Decision

	// Base-feasibility invariant: removing a session's (non-negative) load
	// from a feasible ledger keeps it feasible, and every accepted move
	// re-establishes full-ledger feasibility, so once the ledger is feasible
	// the O(NumAgents) Fits(nil) scan never needs to run again — proposals
	// pay only the O(touched) FitsTouched check.
	fullFeasible := ledger.Fits(nil)

	for it := 0; it < cfg.Iterations; it++ {
		res.Iterations++
		temp *= cooling

		// Propose: random session, random single-variable move.
		s := model.SessionID(rng.Intn(sc.NumSessions()))
		decisions = a.AppendSessionNeighborDecisions(decisions[:0], s)
		if len(decisions) == 0 {
			continue
		}
		d := decisions[rng.Intn(len(decisions))]

		ev.BeginSession(a, s, scr)
		curLoad := scr.CurLoad()
		ledger.RemoveSparse(curLoad)
		inv, err := a.Apply(d)
		if err != nil {
			ledger.AddSparse(curLoad)
			return nil, err
		}
		newLoad := ev.CandidateLoad(a, s, scr)
		var accept bool
		var newSessionPhi float64
		if (fullFeasible || ledger.Fits(nil)) && ledger.FitsTouched(newLoad) {
			if phi, ok := ev.CandidatePhi(a, s, d, scr); ok {
				newSessionPhi = phi
				delta := newSessionPhi - sessionPhi[s]
				accept = delta <= 0 || rng.Float64() < math.Exp(-delta/temp)
			}
		}
		if accept {
			ledger.AddSparse(newLoad)
			fullFeasible = true // base + fitting candidate ⇒ feasible ledger
			// Commit notification: the accepted candidate's load and Φ are
			// already evaluated — re-sync the delay-cache entry so the next
			// proposal for this session starts from a pure warm hit.
			ev.CommitSessionDecision(a, s, scr, newLoad, newSessionPhi)
			curPhi += newSessionPhi - sessionPhi[s]
			sessionPhi[s] = newSessionPhi
			res.Accepted++
			if curPhi < bestPhi {
				bestPhi = curPhi
				best = a.Clone()
			}
		} else {
			if _, err := a.Apply(inv); err != nil {
				return nil, err
			}
			ledger.AddSparse(curLoad)
		}
	}
	res.Assignment = best
	res.BestPhi = bestPhi
	return res, nil
}

// GreedyConfig tunes the best-response descent.
type GreedyConfig struct {
	// MaxRounds bounds full sweeps over all sessions (descent usually
	// terminates earlier at a local optimum).
	MaxRounds int
	// RebuildDelayBase disables the persistent per-session delay cache the
	// descent reuses across rounds; see AnnealConfig.RebuildDelayBase.
	RebuildDelayBase bool
}

// DefaultGreedyConfig allows enough rounds for convergence on the paper's
// scales.
func DefaultGreedyConfig() GreedyConfig { return GreedyConfig{MaxRounds: 100} }

// GreedyDescent repeatedly applies, per session, the feasible
// single-variable move with the largest objective improvement, until no
// session can improve (a local optimum of the neighborhood).
func GreedyDescent(ev *cost.Evaluator, start *assign.Assignment, cfg GreedyConfig) (*Result, error) {
	if cfg.MaxRounds < 1 {
		return nil, fmt.Errorf("anneal: max rounds must be positive")
	}
	sc := ev.Scenario()
	if !start.Complete() {
		return nil, fmt.Errorf("anneal: start assignment incomplete")
	}
	p := ev.Params()

	a := start.Clone()
	ledger := cost.NewLedger(sc)
	for s := 0; s < sc.NumSessions(); s++ {
		ledger.Add(p.SessionLoadOf(a, model.SessionID(s)))
	}

	res := &Result{}
	// One scratch serves the descent; its delay cache keeps each session's
	// base warm across rounds (a session that did not improve last round
	// re-evaluates in O(signature compare), and an applied best move
	// patches only its own flows next round).
	scr := ev.NewScratch()
	scr.SetDelayCacheEnabled(!cfg.RebuildDelayBase)
	var decisions []assign.Decision
	for round := 0; round < cfg.MaxRounds; round++ {
		improvedAny := false
		for s := 0; s < sc.NumSessions(); s++ {
			sid := model.SessionID(s)
			begin := ev.BeginSession(a, sid, scr)
			curLoad := scr.CurLoad()
			ledger.RemoveSparse(curLoad)
			curPhi := begin.Phi
			// The ledger minus this session is fixed across the candidate
			// sweep, so base feasibility is checked once and each candidate
			// pays only the touched-agents check.
			baseOK := ledger.Fits(nil)

			var bestD assign.Decision
			bestPhi := curPhi
			found := false
			decisions = a.AppendSessionNeighborDecisions(decisions[:0], sid)
			for _, d := range decisions {
				res.Iterations++
				inv, err := a.Apply(d)
				if err != nil {
					ledger.AddSparse(curLoad)
					return nil, err
				}
				load := ev.CandidateLoad(a, sid, scr)
				if baseOK && ledger.FitsTouched(load) {
					if phi, ok := ev.CandidatePhi(a, sid, d, scr); ok && phi < bestPhi-1e-12 {
						bestPhi = phi
						bestD = d
						found = true
					}
				}
				if _, err := a.Apply(inv); err != nil {
					return nil, err
				}
			}
			if found {
				if _, err := a.Apply(bestD); err != nil {
					return nil, err
				}
				res.Accepted++
				improvedAny = true
			}
			ledger.AddSparse(ev.SessionLoadSparse(a, sid, scr))
		}
		if !improvedAny {
			break
		}
	}
	res.Assignment = a
	res.BestPhi = ev.TotalObjective(a)
	return res, nil
}
