package anneal

import (
	"math"
	"math/rand"
	"testing"

	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/cost"
	"vconf/internal/exact"
	"vconf/internal/model"
	"vconf/internal/workload"
)

func smallScenario(t *testing.T, seed int64) (*cost.Evaluator, *assign.Assignment) {
	t.Helper()
	wl := workload.LargeScale(seed)
	wl.NumUsers = 20
	wl.NumUserNodes = 40
	sc, err := workload.Generate(wl)
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	a := assign.New(sc)
	if err := baseline.Assign(a, p, cost.NewLedger(sc)); err != nil {
		t.Fatal(err)
	}
	return ev, a
}

func TestSimulatedAnnealingImproves(t *testing.T) {
	ev, start := smallScenario(t, 1)
	startPhi := ev.TotalObjective(start)
	cfg := DefaultAnnealConfig(1)
	cfg.Iterations = 5000
	res, err := SimulatedAnnealing(ev, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPhi > startPhi {
		t.Fatalf("annealing worsened: %v → %v", startPhi, res.BestPhi)
	}
	if res.Accepted == 0 {
		t.Fatal("no moves accepted")
	}
	if err := ev.CheckFeasible(res.Assignment); err != nil {
		t.Fatalf("annealed assignment infeasible: %v", err)
	}
	// Reported BestPhi must match a re-evaluation.
	if got := ev.TotalObjective(res.Assignment); got > res.BestPhi+1e-6 {
		t.Fatalf("BestPhi %v but assignment evaluates to %v", res.BestPhi, got)
	}
}

func TestGreedyDescentReachesLocalOptimum(t *testing.T) {
	ev, start := smallScenario(t, 2)
	res, err := GreedyDescent(ev, start, DefaultGreedyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPhi > ev.TotalObjective(start) {
		t.Fatal("greedy worsened the objective")
	}
	if err := ev.CheckFeasible(res.Assignment); err != nil {
		t.Fatalf("greedy result infeasible: %v", err)
	}
	// Local optimality: no single-variable move improves any session.
	sc := ev.Scenario()
	p := ev.Params()
	ledger := cost.NewLedger(sc)
	a := res.Assignment
	for s := 0; s < sc.NumSessions(); s++ {
		ledger.Add(p.SessionLoadOf(a, model.SessionID(s)))
	}
	for s := 0; s < sc.NumSessions(); s++ {
		sid := model.SessionID(s)
		cur := p.SessionLoadOf(a, sid)
		ledger.Remove(cur)
		curPhi := ev.SessionObjective(a, sid)
		for _, d := range a.SessionNeighborDecisions(sid) {
			inv, err := a.Apply(d)
			if err != nil {
				t.Fatal(err)
			}
			load := p.SessionLoadOf(a, sid)
			if ledger.Fits(load) && cost.DelayFeasible(a, sid) {
				if phi := ev.SessionObjective(a, sid); phi < curPhi-1e-9 {
					t.Fatalf("session %d still improvable by %v (%v → %v)", s, d, curPhi, phi)
				}
			}
			if _, err := a.Apply(inv); err != nil {
				t.Fatal(err)
			}
		}
		ledger.Add(cur)
	}
}

func TestGreedyFindsExactOptimumOnTinyInstance(t *testing.T) {
	// On the Fig. 3 cube the greedy from any corner must reach the global
	// optimum (the objective is unimodal over the cube for this instance).
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r720, _ := rs.ByName("720p")
	for i := 0; i < 2; i++ {
		b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 4,
			SigmaMS: model.UniformSigma(rs.Len(), 40)})
	}
	s := b.AddSession("s")
	b.AddUser("U1", s, r720, nil)
	b.AddUser("U2", s, r720, nil)
	b.DemandFrom(1, 0, r360)
	b.SetInterAgentDelays([][]float64{{0, 25}, {25, 0}})
	b.SetAgentUserDelays([][]float64{{5, 30}, {30, 5}})
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	enum, err := exact.Enumerate(ev, 0)
	if err != nil {
		t.Fatal(err)
	}
	start := assign.New(sc)
	if err := baseline.Assign(start, p, cost.NewLedger(sc)); err != nil {
		t.Fatal(err)
	}
	res, err := GreedyDescent(ev, start, DefaultGreedyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPhi > enum.MinPhi+1e-9 {
		t.Fatalf("greedy Φ %v, exact optimum %v", res.BestPhi, enum.MinPhi)
	}
}

func TestAnnealValidation(t *testing.T) {
	ev, start := smallScenario(t, 3)
	bad := []AnnealConfig{
		{Iterations: 0, T0: 1, TEnd: 0.1},
		{Iterations: 10, T0: 0, TEnd: 0.1},
		{Iterations: 10, T0: 1, TEnd: 2},
		{Iterations: 10, T0: 1, TEnd: 0},
	}
	for i, cfg := range bad {
		if _, err := SimulatedAnnealing(ev, start, cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	if _, err := GreedyDescent(ev, start, GreedyConfig{MaxRounds: 0}); err == nil {
		t.Fatal("zero rounds accepted")
	}
	incomplete := assign.New(ev.Scenario())
	if _, err := SimulatedAnnealing(ev, incomplete, DefaultAnnealConfig(1)); err == nil {
		t.Fatal("incomplete start accepted by annealing")
	}
	if _, err := GreedyDescent(ev, incomplete, DefaultGreedyConfig()); err == nil {
		t.Fatal("incomplete start accepted by greedy")
	}
}

func TestAnnealingDeterministicPerSeed(t *testing.T) {
	ev, start := smallScenario(t, 4)
	cfg := DefaultAnnealConfig(9)
	cfg.Iterations = 2000
	r1, err := SimulatedAnnealing(ev, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SimulatedAnnealing(ev, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.BestPhi != r2.BestPhi || r1.Accepted != r2.Accepted {
		t.Fatal("same seed produced different annealing runs")
	}
}

// TestSolversNeverBeatExactOptimum cross-validates every solver against
// exhaustive enumeration on random tiny instances: each result must be
// feasible and no better than Φ_min (they search the same space), and the
// greedy/annealed results should land within a modest factor of optimal.
func TestSolversNeverBeatExactOptimum(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sc := tinyScenario(rng)
		p := cost.DefaultParams()
		ev, err := cost.NewEvaluator(sc, p)
		if err != nil {
			t.Fatal(err)
		}
		enum, err := exact.Enumerate(ev, 500000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		start := assign.New(sc)
		if err := baseline.Assign(start, p, cost.NewLedger(sc)); err != nil {
			t.Fatalf("seed %d bootstrap: %v", seed, err)
		}

		greedy, err := GreedyDescent(ev, start, DefaultGreedyConfig())
		if err != nil {
			t.Fatal(err)
		}
		saCfg := DefaultAnnealConfig(seed)
		saCfg.Iterations = 3000
		sa, err := SimulatedAnnealing(ev, start, saCfg)
		if err != nil {
			t.Fatal(err)
		}
		for name, res := range map[string]*Result{"greedy": greedy, "anneal": sa} {
			if res.BestPhi < enum.MinPhi-1e-9 {
				t.Fatalf("seed %d: %s Φ %v beats exact optimum %v (impossible)",
					seed, name, res.BestPhi, enum.MinPhi)
			}
			if err := ev.CheckFeasible(res.Assignment); err != nil {
				t.Fatalf("seed %d: %s infeasible: %v", seed, name, err)
			}
			if res.BestPhi > enum.MinPhi*2+1e-9 {
				t.Fatalf("seed %d: %s Φ %v more than 2× optimum %v",
					seed, name, res.BestPhi, enum.MinPhi)
			}
		}
	}
}

// tinyScenario builds an enumerable random instance: 2 agents, one session
// of 3 users, ≤ 2 transcoding flows (≤ 2^5 = 32 states).
func tinyScenario(rng *rand.Rand) *model.Scenario {
	b := model.NewBuilder(nil)
	for i := 0; i < 2; i++ {
		b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 6,
			SigmaMS: model.UniformSigma(4, 40)})
	}
	s := b.AddSession("s")
	var ids []model.UserID
	for i := 0; i < 3; i++ {
		ids = append(ids, b.AddUser("u", s, model.Representation(1+rng.Intn(3)), nil))
	}
	// Up to two random downscale demands.
	for i := 0; i < 2; i++ {
		src := ids[rng.Intn(len(ids))]
		dst := ids[rng.Intn(len(ids))]
		if src != dst {
			b.DemandFrom(dst, src, 0) // 360p of whatever the source produces
		}
	}
	d := 20 + float64(rng.Intn(60))
	b.SetInterAgentDelays([][]float64{{0, d}, {d, 0}})
	h := make([][]float64, 2)
	for l := range h {
		h[l] = make([]float64, 3)
		for u := range h[l] {
			h[l][u] = 5 + float64(rng.Intn(40))
		}
	}
	b.SetAgentUserDelays(h)
	sc, err := b.Build()
	if err != nil {
		panic(err)
	}
	return sc
}

// TestAnnealDelayCacheBitIdentical replays SA and greedy descent with the
// persistent delay cache (default) and with the per-iteration delay-base
// rebuild: identical seeds must walk identical chains — same accepted-move
// counts, same objective bits, same final assignment.
func TestAnnealDelayCacheBitIdentical(t *testing.T) {
	ev, start := smallScenario(t, 5)

	cached := DefaultAnnealConfig(5)
	cached.Iterations = 3000
	rebuild := cached
	rebuild.RebuildDelayBase = true
	resC, err := SimulatedAnnealing(ev, start, cached)
	if err != nil {
		t.Fatal(err)
	}
	resR, err := SimulatedAnnealing(ev, start, rebuild)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(resC.BestPhi) != math.Float64bits(resR.BestPhi) ||
		resC.Accepted != resR.Accepted || resC.Iterations != resR.Iterations {
		t.Fatalf("SA diverged: cached (phi %v, acc %d) vs rebuild (phi %v, acc %d)",
			resC.BestPhi, resC.Accepted, resR.BestPhi, resR.Accepted)
	}
	if !resC.Assignment.Equal(resR.Assignment) {
		t.Fatal("SA final assignments diverged between cached and rebuild delay paths")
	}

	gC, err := GreedyDescent(ev, start, GreedyConfig{MaxRounds: 50})
	if err != nil {
		t.Fatal(err)
	}
	gR, err := GreedyDescent(ev, start, GreedyConfig{MaxRounds: 50, RebuildDelayBase: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(gC.BestPhi) != math.Float64bits(gR.BestPhi) ||
		gC.Accepted != gR.Accepted || gC.Iterations != gR.Iterations {
		t.Fatalf("greedy diverged: cached (phi %v, acc %d, it %d) vs rebuild (phi %v, acc %d, it %d)",
			gC.BestPhi, gC.Accepted, gC.Iterations, gR.BestPhi, gR.Accepted, gR.Iterations)
	}
	if !gC.Assignment.Equal(gR.Assignment) {
		t.Fatal("greedy final assignments diverged between cached and rebuild delay paths")
	}
}
