package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	users := GenerateUserNodes(7, 20)
	n1, err := Generate(DefaultConfig(7), EC2Sites(), users)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	n2, err := Generate(DefaultConfig(7), EC2Sites(), users)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for l := range n1.DMS {
		for k := range n1.DMS[l] {
			if n1.DMS[l][k] != n2.DMS[l][k] {
				t.Fatalf("D[%d][%d] differs across identical seeds", l, k)
			}
		}
	}
	for l := range n1.HMS {
		for u := range n1.HMS[l] {
			if n1.HMS[l][u] != n2.HMS[l][u] {
				t.Fatalf("H[%d][%d] differs across identical seeds", l, u)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	users := GenerateUserNodes(7, 10)
	n1, _ := Generate(DefaultConfig(1), EC2Sites(), users)
	n2, _ := Generate(DefaultConfig(2), EC2Sites(), users)
	same := true
	for l := range n1.HMS {
		for u := range n1.HMS[l] {
			if n1.HMS[l][u] != n2.HMS[l][u] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical H matrices")
	}
}

func TestGenerateMatrixShape(t *testing.T) {
	agents := EC2Sites()
	users := GenerateUserNodes(3, 50)
	n, err := Generate(DefaultConfig(3), agents, users)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(n.DMS) != len(agents) {
		t.Fatalf("D rows = %d, want %d", len(n.DMS), len(agents))
	}
	if len(n.HMS) != len(agents) || len(n.HMS[0]) != len(users) {
		t.Fatalf("H shape = %dx%d, want %dx%d", len(n.HMS), len(n.HMS[0]), len(agents), len(users))
	}
	for l := range n.DMS {
		if n.DMS[l][l] != 0 {
			t.Fatalf("D[%d][%d] = %v, want 0", l, l, n.DMS[l][l])
		}
		for k := range n.DMS[l] {
			if n.DMS[l][k] != n.DMS[k][l] {
				t.Fatalf("D not symmetric at (%d,%d)", l, k)
			}
			if l != k && n.DMS[l][k] <= 0 {
				t.Fatalf("D[%d][%d] = %v, want positive", l, k, n.DMS[l][k])
			}
		}
	}
}

func TestGenerateRealisticMagnitudes(t *testing.T) {
	agents := EC2Sites()
	n, err := Generate(DefaultConfig(42), agents, nil)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	idx := func(name string) int {
		for i, s := range agents {
			if s.Name == name {
				return i
			}
		}
		t.Fatalf("site %s not found", name)
		return -1
	}
	// Trans-Pacific (Oregon–Tokyo) must be far slower than intra-Asia
	// (Tokyo–Singapore is ~5300 km, still much shorter than the Pacific).
	orTO := n.DMS[idx("OR")][idx("TO")]
	toSG := n.DMS[idx("TO")][idx("SG")]
	if orTO < 40 || orTO > 200 {
		t.Fatalf("OR–TO = %.1f ms, outside realistic [40,200]", orTO)
	}
	if toSG >= orTO {
		t.Fatalf("TO–SG (%.1f) should be below OR–TO (%.1f)", toSG, orTO)
	}
}

func TestGenerateUserNodesMix(t *testing.T) {
	sites := GenerateUserNodes(11, 256)
	if len(sites) != 256 {
		t.Fatalf("len = %d, want 256", len(sites))
	}
	counts := make(map[string]int)
	for _, s := range sites {
		counts[s.Region]++
	}
	if counts["north-america"] < 64 {
		t.Fatalf("north-america count = %d, want ≥ 64 (PlanetLab-like mix)", counts["north-america"])
	}
	if counts["asia"] < 26 {
		t.Fatalf("asia count = %d, want ≥ 26", counts["asia"])
	}
	if len(counts) < 4 {
		t.Fatalf("only %d regions populated, want ≥ 4", len(counts))
	}
}

func TestConfigValidation(t *testing.T) {
	users := GenerateUserNodes(1, 2)
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"inflation below 1", func(c *Config) { c.RouteInflationMin = 0.5 }},
		{"inflation inverted", func(c *Config) { c.RouteInflationMax = c.RouteInflationMin - 0.1 }},
		{"negative access", func(c *Config) { c.UserAccessMinMS = -1 }},
		{"access inverted", func(c *Config) { c.UserAccessMaxMS = c.UserAccessMinMS - 1 }},
		{"negative floor", func(c *Config) { c.MinFloorMS = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig(1)
			tt.mutate(&cfg)
			if _, err := Generate(cfg, EC2Sites(), users); err == nil {
				t.Fatal("Generate succeeded with invalid config")
			}
		})
	}
	if _, err := Generate(DefaultConfig(1), nil, users); err == nil {
		t.Fatal("Generate succeeded with no agents")
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	// Tokyo–Singapore ≈ 5320 km.
	d := haversineKM(35.68, 139.69, 1.35, 103.82)
	if math.Abs(d-5320) > 200 {
		t.Fatalf("Tokyo–Singapore = %.0f km, want ≈5320", d)
	}
	// Same point.
	if d := haversineKM(10, 20, 10, 20); d != 0 {
		t.Fatalf("same-point distance = %v, want 0", d)
	}
}

func TestFig2Fixture(t *testing.T) {
	f := Fig2()
	n := f.Network
	if len(n.AgentSites) != 4 || len(n.UserSites) != 4 {
		t.Fatalf("fixture shape: %d agents, %d users", len(n.AgentSites), len(n.UserSites))
	}
	// Paper-printed values.
	or, to, sg := 0, 1, 2
	hk := 3
	if n.DMS[to][or] != 67 {
		t.Fatalf("D(TO,OR) = %v, want 67", n.DMS[to][or])
	}
	if n.DMS[sg][or] != 117 {
		t.Fatalf("D(SG,OR) = %v, want 117", n.DMS[sg][or])
	}
	if n.HMS[to][hk] != 27 {
		t.Fatalf("H(TO,HK) = %v, want 27", n.HMS[to][hk])
	}
	if n.HMS[sg][hk] != 20 {
		t.Fatalf("H(SG,HK) = %v, want 20", n.HMS[sg][hk])
	}
	// The figure's argument: HK→TO→OR beats HK→SG→OR.
	viaTO := n.HMS[to][hk] + n.DMS[to][or]
	viaSG := n.HMS[sg][hk] + n.DMS[sg][or]
	if viaTO >= viaSG {
		t.Fatalf("via TO (%v) should beat via SG (%v)", viaTO, viaSG)
	}
	// Nearest agents are the geographically obvious ones.
	nearest := []int{or, 3 /*SP*/, to, sg}
	for u := 0; u < 4; u++ {
		best, bestD := -1, math.Inf(1)
		for l := 0; l < 4; l++ {
			if n.HMS[l][u] < bestD {
				best, bestD = l, n.HMS[l][u]
			}
		}
		if best != nearest[u] {
			t.Fatalf("user %d nearest agent = %d, want %d", u, best, nearest[u])
		}
	}
	// SG is the powerful transcoder.
	if f.Capability["SG"] >= f.Capability["TO"] {
		t.Fatal("SG must be more capable (lower factor) than TO")
	}
	// Symmetry and zero diagonal of the fixture matrix.
	for l := 0; l < 4; l++ {
		if n.DMS[l][l] != 0 {
			t.Fatalf("D diag %d nonzero", l)
		}
		for k := 0; k < 4; k++ {
			if n.DMS[l][k] != n.DMS[k][l] {
				t.Fatalf("fixture D asymmetric at (%d,%d)", l, k)
			}
		}
	}
}

// Property: synthesized delays respect a loose physicality bound — never
// below the floor and never above what 2.5× route inflation over half the
// planet plus access delays could produce.
func TestLatencyPhysicalityProperty(t *testing.T) {
	prop := func(seed int64, nu uint8) bool {
		n := int(nu%32) + 1
		users := GenerateUserNodes(seed, n)
		net, err := Generate(DefaultConfig(seed), EC2Sites(), users)
		if err != nil {
			return false
		}
		const maxMS = 20015.0/200.0*2.5 + 40 // half circumference, worst inflation + access
		for l := range net.HMS {
			for u := range net.HMS[l] {
				v := net.HMS[l][u]
				if v < 1 || v > maxMS || math.IsNaN(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
