package netsim

// Fig2 reproduces the motivating scenario of the paper's Fig. 2: one session
// of 4 users (PlanetLab nodes in California, Brazil, Japan, Hong Kong) and 4
// cloud agents (EC2 Oregon, Tokyo, Singapore, São Paulo) with real-world
// measured latencies.
//
// The paper prints the six inter-agent latencies {45, 67, 117, 81, 181, 150}
// and two agent-to-user edges (HK→TO = 27, HK→SG = 20) and states
// D(TO,OR) = 67 and D(SG,OR) = 117 in the walkthrough. The remaining
// inter-agent values are assigned to pairs by geographic plausibility and
// the remaining H entries are synthesized consistently (nearest agents:
// CA→OR, BR→SP, JP→TO, HK→SG), preserving the figure's argument: assigning
// the HK user to TO beats its nearest agent SG on end-to-end delay
// (27+67 < 20+117 toward the CA user) and on traffic, while SG remains the
// more powerful transcoder.
type Fig2Fixture struct {
	Network *Network
	// Capability maps agent name to the transcoding capability factor
	// ("larger diamonds have higher capabilities": SG is the powerful one).
	Capability map[string]float64
	// UserLabels maps user index to the paper's label.
	UserLabels []string
}

// Fig2 builds the fixture. Agent order: OR, TO, SG, SP. User order:
// 1 [CA], 2 [BR], 3 [JP], 4 [HK].
func Fig2() *Fig2Fixture {
	agents := []Site{
		{Name: "OR", Region: "north-america", Lat: 45.52, Lon: -122.68},
		{Name: "TO", Region: "asia", Lat: 35.68, Lon: 139.69},
		{Name: "SG", Region: "asia", Lat: 1.35, Lon: 103.82},
		{Name: "SP", Region: "south-america", Lat: -23.55, Lon: -46.63},
	}
	users := []Site{
		{Name: "u1-CA", Region: "north-america", Lat: 37.87, Lon: -122.27},
		{Name: "u2-BR", Region: "south-america", Lat: -23.55, Lon: -46.63},
		{Name: "u3-JP", Region: "asia", Lat: 35.68, Lon: 139.69},
		{Name: "u4-HK", Region: "asia", Lat: 22.32, Lon: 114.17},
	}
	// Inter-agent one-way latencies (ms). The starred entries are printed in
	// the paper (OR–TO, OR–SG); the pair assignment of the remaining printed
	// values {45, 81, 150, 181} follows geography.
	d := [][]float64{
		//        OR   TO   SG   SP
		/*OR*/ {0, 67, 117, 81},
		/*TO*/ {67, 0, 45, 150},
		/*SG*/ {117, 45, 0, 181},
		/*SP*/ {81, 150, 181, 0},
	}
	// Agent-to-user latencies (ms). HK→TO = 27 and HK→SG = 20 are printed in
	// the paper; the rest are synthesized so each user's nearest agent is
	// the geographically obvious one.
	h := [][]float64{
		//        CA   BR   JP   HK
		/*OR*/ {15, 95, 55, 75},
		/*TO*/ {55, 160, 8, 27},
		/*SG*/ {90, 170, 40, 20},
		/*SP*/ {95, 18, 140, 160},
	}
	return &Fig2Fixture{
		Network: &Network{
			AgentSites: agents,
			UserSites:  users,
			DMS:        d,
			HMS:        h,
		},
		Capability: map[string]float64{
			"OR": 1.0,
			"TO": 1.0,
			"SG": 0.75, // the powerful transcoder of the walkthrough
			"SP": 1.0,
		},
		UserLabels: []string{"1 [CA]", "2 [BR]", "3 [JP]", "4 [HK]"},
	}
}
