// Package netsim synthesizes the Internet latency substrate the paper
// measured on PlanetLab and Amazon EC2: the inter-agent delay matrix D and
// the agent-to-user delay matrix H.
//
// The paper used 5 weeks of RTT pings between 256 PlanetLab nodes and 7 EC2
// instances ([3],[22] in the paper). We do not have those traces, so this
// package places nodes at real-city coordinates and derives one-way delays
// from great-circle distance at the speed of light in fiber, inflated by a
// deterministic per-pair routing factor plus last-mile access delay — the
// standard latency-synthesis recipe. The optimizer consumes only D and H, so
// any metric-like matrix with realistic magnitudes exercises identical code
// paths (see DESIGN.md §2). The motivating Fig. 2 instance, whose latencies
// are printed in the paper, is reproduced exactly in fixture_fig2.go.
package netsim

// Site is a geographic location hosting either a cloud agent or a user node.
type Site struct {
	// Name is a short label, e.g. "TO" or "planetlab-3-tokyo".
	Name string
	// Region is a coarse geographic region used for population mixes,
	// e.g. "north-america", "asia", "europe", "south-america", "oceania".
	Region string
	// Lat and Lon are in degrees.
	Lat float64
	Lon float64
}

// EC2Sites returns the seven EC2-like cloud sites used by the paper's
// large-scale experiments (§V-B uses 7 EC2 instances as agents).
func EC2Sites() []Site {
	return []Site{
		{Name: "OR", Region: "north-america", Lat: 45.52, Lon: -122.68}, // us-west-2 Oregon
		{Name: "VA", Region: "north-america", Lat: 38.95, Lon: -77.45},  // us-east-1 N. Virginia
		{Name: "SP", Region: "south-america", Lat: -23.55, Lon: -46.63}, // sa-east-1 São Paulo
		{Name: "IR", Region: "europe", Lat: 53.35, Lon: -6.26},          // eu-west-1 Ireland
		{Name: "SG", Region: "asia", Lat: 1.35, Lon: 103.82},            // ap-southeast-1 Singapore
		{Name: "TO", Region: "asia", Lat: 35.68, Lon: 139.69},           // ap-northeast-1 Tokyo
		{Name: "SY", Region: "oceania", Lat: -33.87, Lon: 151.21},       // ap-southeast-2 Sydney
	}
}

// PrototypeSites returns the six cloud sites of the prototype experiments
// (§V-A uses 6 Linux EC2 instances in different regions).
func PrototypeSites() []Site {
	all := EC2Sites()
	return all[:6] // OR, VA, SP, IR, SG, TO
}

// AnchorSites returns the full anchor-city pool (copy) — the metropolitan
// areas user nodes cluster around. Workload generators that need regional
// structure beyond the 7 EC2 sites (workload.GenerateSyntheticFleet's
// regional mode) draw their region anchors from this list.
func AnchorSites() []Site {
	return append([]Site(nil), anchorCities...)
}

// anchorCities is the pool of metropolitan areas user nodes cluster around.
// The mix mirrors the historical PlanetLab footprint: mostly North America
// and Europe, a solid Asian contingent, a few nodes elsewhere.
var anchorCities = []Site{
	// North America
	{Name: "berkeley", Region: "north-america", Lat: 37.87, Lon: -122.27},
	{Name: "seattle", Region: "north-america", Lat: 47.61, Lon: -122.33},
	{Name: "boston", Region: "north-america", Lat: 42.36, Lon: -71.06},
	{Name: "princeton", Region: "north-america", Lat: 40.35, Lon: -74.66},
	{Name: "chicago", Region: "north-america", Lat: 41.88, Lon: -87.63},
	{Name: "austin", Region: "north-america", Lat: 30.27, Lon: -97.74},
	{Name: "toronto", Region: "north-america", Lat: 43.65, Lon: -79.38},
	{Name: "losangeles", Region: "north-america", Lat: 34.05, Lon: -118.24},
	// Europe
	{Name: "cambridge-uk", Region: "europe", Lat: 52.21, Lon: 0.12},
	{Name: "paris", Region: "europe", Lat: 48.86, Lon: 2.35},
	{Name: "berlin", Region: "europe", Lat: 52.52, Lon: 13.40},
	{Name: "zurich", Region: "europe", Lat: 47.38, Lon: 8.54},
	{Name: "madrid", Region: "europe", Lat: 40.42, Lon: -3.70},
	{Name: "stockholm", Region: "europe", Lat: 59.33, Lon: 18.07},
	{Name: "warsaw", Region: "europe", Lat: 52.23, Lon: 21.01},
	// Asia
	{Name: "tokyo", Region: "asia", Lat: 35.68, Lon: 139.69},
	{Name: "seoul", Region: "asia", Lat: 37.57, Lon: 126.98},
	{Name: "beijing", Region: "asia", Lat: 39.90, Lon: 116.40},
	{Name: "hongkong", Region: "asia", Lat: 22.32, Lon: 114.17},
	{Name: "singapore-city", Region: "asia", Lat: 1.35, Lon: 103.82},
	{Name: "taipei", Region: "asia", Lat: 25.03, Lon: 121.57},
	// South America
	{Name: "saopaulo-city", Region: "south-america", Lat: -23.55, Lon: -46.63},
	{Name: "santiago", Region: "south-america", Lat: -33.45, Lon: -70.67},
	// Oceania
	{Name: "sydney-city", Region: "oceania", Lat: -33.87, Lon: 151.21},
	{Name: "auckland", Region: "oceania", Lat: -36.85, Lon: 174.76},
}

// regionWeights is the approximate PlanetLab regional mix used when
// sampling user nodes.
var regionWeights = []struct {
	region string
	weight float64
}{
	{"north-america", 0.40},
	{"europe", 0.30},
	{"asia", 0.20},
	{"south-america", 0.05},
	{"oceania", 0.05},
}
