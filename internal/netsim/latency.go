package netsim

import (
	"fmt"
	"math"
	"math/rand"
)

// Config parameterizes latency synthesis. The zero Config is not valid; use
// DefaultConfig and override fields as needed.
type Config struct {
	// Seed drives all random choices. The same seed, site lists and config
	// always produce identical matrices.
	Seed int64

	// RouteInflationMin/Max bound the per-pair multiplicative detour factor
	// applied to the speed-of-light-in-fiber propagation time. Measured
	// Internet paths are typically 1.3–2.5× the geodesic.
	RouteInflationMin float64
	RouteInflationMax float64

	// UserAccessMinMS/MaxMS bound the per-user last-mile access delay added
	// to every path touching that user.
	UserAccessMinMS float64
	UserAccessMaxMS float64

	// AgentAccessMS is the fixed data-center access delay added per agent
	// endpoint (data centers sit close to backbones).
	AgentAccessMS float64

	// MinFloorMS is a lower bound applied to every synthesized delay so that
	// co-located nodes still pay a realistic serialization/processing cost.
	MinFloorMS float64
}

// DefaultConfig returns the calibration used across the experiments:
// intra-continental agent pairs land around 10–50 ms one-way,
// trans-Pacific pairs around 80–180 ms, matching the magnitudes printed in
// the paper's Fig. 2.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:              seed,
		RouteInflationMin: 1.3,
		RouteInflationMax: 2.1,
		UserAccessMinMS:   2,
		UserAccessMaxMS:   14,
		AgentAccessMS:     0.8,
		MinFloorMS:        1,
	}
}

func (c Config) validate() error {
	if c.RouteInflationMin < 1 || c.RouteInflationMax < c.RouteInflationMin {
		return fmt.Errorf("netsim: invalid route inflation [%v, %v]", c.RouteInflationMin, c.RouteInflationMax)
	}
	if c.UserAccessMinMS < 0 || c.UserAccessMaxMS < c.UserAccessMinMS {
		return fmt.Errorf("netsim: invalid user access range [%v, %v]", c.UserAccessMinMS, c.UserAccessMaxMS)
	}
	if c.AgentAccessMS < 0 || c.MinFloorMS < 0 {
		return fmt.Errorf("netsim: negative access or floor delay")
	}
	return nil
}

// Network holds the synthesized substrate: the placed sites and the two
// delay matrices the optimizer consumes.
type Network struct {
	AgentSites []Site
	UserSites  []Site
	// DMS is the L×L one-way inter-agent delay matrix in ms (symmetric,
	// zero diagonal).
	DMS [][]float64
	// HMS is the L×U one-way agent-to-user delay matrix in ms.
	HMS [][]float64
}

// Generate synthesizes a Network for the given agent and user sites.
func Generate(cfg Config, agentSites, userSites []Site) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(agentSites) == 0 {
		return nil, fmt.Errorf("netsim: no agent sites")
	}

	n := &Network{
		AgentSites: append([]Site(nil), agentSites...),
		UserSites:  append([]Site(nil), userSites...),
	}

	// Per-user last-mile access delay, drawn once per user.
	userAccess := make([]float64, len(userSites))
	accessRng := rand.New(rand.NewSource(cfg.Seed ^ 0x5ee0a11ce))
	for i := range userAccess {
		userAccess[i] = cfg.UserAccessMinMS +
			accessRng.Float64()*(cfg.UserAccessMaxMS-cfg.UserAccessMinMS)
	}

	L := len(agentSites)
	n.DMS = make([][]float64, L)
	for l := range n.DMS {
		n.DMS[l] = make([]float64, L)
	}
	for l := 0; l < L; l++ {
		for k := l + 1; k < L; k++ {
			d := cfg.pathDelayMS(agentSites[l], agentSites[k], pairKey(cfg.Seed, l, k)) +
				2*cfg.AgentAccessMS
			if d < cfg.MinFloorMS {
				d = cfg.MinFloorMS
			}
			n.DMS[l][k] = d
			n.DMS[k][l] = d
		}
	}

	n.HMS = make([][]float64, L)
	for l := range n.HMS {
		n.HMS[l] = make([]float64, len(userSites))
		for u := range userSites {
			d := cfg.pathDelayMS(agentSites[l], userSites[u], pairKey(cfg.Seed, 1000+l, 2000+u)) +
				cfg.AgentAccessMS + userAccess[u]
			if d < cfg.MinFloorMS {
				d = cfg.MinFloorMS
			}
			n.HMS[l][u] = d
		}
	}
	return n, nil
}

// pathDelayMS is the one-way propagation delay between two sites: geodesic
// distance over the speed of light in fiber (≈200 km/ms), times a
// deterministic per-pair routing inflation.
func (c Config) pathDelayMS(a, b Site, key uint64) float64 {
	const fiberKMPerMS = 200.0
	dist := haversineKM(a.Lat, a.Lon, b.Lat, b.Lon)
	infl := c.RouteInflationMin +
		hashUnit(key)*(c.RouteInflationMax-c.RouteInflationMin)
	return dist / fiberKMPerMS * infl
}

// GenerateUserNodes samples n PlanetLab-like user sites: each node picks a
// region per the PlanetLab mix, an anchor city in that region, and a small
// coordinate jitter (metro-area spread).
func GenerateUserNodes(seed int64, n int) []Site {
	rng := rand.New(rand.NewSource(seed ^ 0x7f4a7c15))
	byRegion := make(map[string][]Site)
	for _, c := range anchorCities {
		byRegion[c.Region] = append(byRegion[c.Region], c)
	}
	sites := make([]Site, 0, n)
	for i := 0; i < n; i++ {
		region := pickRegion(rng.Float64())
		pool := byRegion[region]
		anchor := pool[rng.Intn(len(pool))]
		sites = append(sites, Site{
			Name:   fmt.Sprintf("node-%03d-%s", i, anchor.Name),
			Region: region,
			// ±0.75° of jitter ≈ up to ~80 km of metro-area spread.
			Lat: clampLat(anchor.Lat + (rng.Float64()-0.5)*1.5),
			Lon: anchor.Lon + (rng.Float64()-0.5)*1.5,
		})
	}
	return sites
}

func pickRegion(u float64) string {
	acc := 0.0
	for _, rw := range regionWeights {
		acc += rw.weight
		if u < acc {
			return rw.region
		}
	}
	return regionWeights[len(regionWeights)-1].region
}

func clampLat(lat float64) float64 {
	if lat > 89 {
		return 89
	}
	if lat < -89 {
		return -89
	}
	return lat
}

// haversineKM returns the great-circle distance between two coordinates.
func haversineKM(lat1, lon1, lat2, lon2 float64) float64 {
	const earthRadiusKM = 6371.0
	rad := func(deg float64) float64 { return deg * math.Pi / 180 }
	dLat := rad(lat2 - lat1)
	dLon := rad(lon2 - lon1)
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(rad(lat1))*math.Cos(rad(lat2))*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKM * math.Asin(math.Min(1, math.Sqrt(a)))
}

// pairKey builds a symmetric deterministic key for an unordered index pair.
func pairKey(seed int64, i, j int) uint64 {
	if i > j {
		i, j = j, i
	}
	return uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(i)<<32 ^ uint64(j)
}

// hashUnit maps a key to [0,1) via splitmix64 finalization.
func hashUnit(key uint64) float64 {
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
