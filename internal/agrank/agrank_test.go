package agrank

import (
	"errors"
	"math"
	"testing"

	"vconf/internal/assign"
	"vconf/internal/cost"
	"vconf/internal/model"
)

// fourAgentScenario builds a Fig. 2-flavored instance: four agents where
// agent 1 ("TO") is central (low delay to everyone) and agent 2 ("SG") is
// peripheral but nearest to user 3.
func fourAgentScenario(t *testing.T) *model.Scenario {
	t.Helper()
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r720, _ := rs.ByName("720p")
	for i := 0; i < 4; i++ {
		b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 8})
	}
	s := b.AddSession("s")
	for i := 0; i < 4; i++ {
		b.AddUser("u", s, r720, nil)
	}
	// Agent 1 is the hub: cheap to everyone. Agent 2 is far from 0 and 3.
	b.SetInterAgentDelays([][]float64{
		{0, 30, 117, 81},
		{30, 0, 45, 60},
		{117, 45, 0, 181},
		{81, 60, 181, 0},
	})
	// Users 0,1,2 nearest agents 0,1,2; user 3's nearest is agent 2 (20 ms)
	// then agent 1 (27 ms) — the Fig. 2 situation.
	b.SetAgentUserDelays([][]float64{
		{10, 60, 90, 75},
		{55, 8, 40, 27},
		{90, 42, 12, 20},
		{95, 70, 140, 160},
	})
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestOptionsValidation(t *testing.T) {
	sc := fourAgentScenario(t)
	a := assign.New(sc)
	ledger := cost.NewLedger(sc)
	p := cost.DefaultParams()
	bad := []Options{
		{NNgbr: 0, Damping: 0.85, Epsilon: 1e-9, MaxIters: 10},
		{NNgbr: 5, Damping: 0.85, Epsilon: 1e-9, MaxIters: 10},
		{NNgbr: 2, Damping: 1.0, Epsilon: 1e-9, MaxIters: 10},
		{NNgbr: 2, Damping: -0.1, Epsilon: 1e-9, MaxIters: 10},
		{NNgbr: 2, Damping: 0.85, Epsilon: 0, MaxIters: 10},
		{NNgbr: 2, Damping: 0.85, Epsilon: 1e-9, MaxIters: 0},
	}
	for _, o := range bad {
		if _, err := BootstrapSession(a, 0, p, ledger, o); err == nil {
			t.Fatalf("BootstrapSession accepted invalid options %+v", o)
		}
	}
}

func TestRankIsProbabilityVector(t *testing.T) {
	sc := fourAgentScenario(t)
	for _, damping := range []float64{0.85, 0} {
		a := assign.New(sc)
		ledger := cost.NewLedger(sc)
		opts := DefaultOptions(2)
		opts.Damping = damping
		res, err := BootstrapSession(a, 0, cost.DefaultParams(), ledger, opts)
		if err != nil {
			t.Fatalf("damping %v: %v", damping, err)
		}
		sum := 0.0
		for _, l := range res.Potential {
			r := res.Rank[l]
			if r < 0 || math.IsNaN(r) {
				t.Fatalf("damping %v: rank[%d] = %v", damping, l, r)
			}
			sum += r
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("damping %v: ranks sum to %v, want 1", damping, sum)
		}
		if res.Iterations < 1 {
			t.Fatalf("damping %v: no iterations ran", damping)
		}
	}
}

func TestHubAgentOutranksPeriphery(t *testing.T) {
	sc := fourAgentScenario(t)
	a := assign.New(sc)
	opts := DefaultOptions(2)
	res, err := BootstrapSession(a, 0, cost.DefaultParams(), cost.NewLedger(sc), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Agent 1 has the lowest delays to everyone; with equal resources its
	// rank must top every other candidate.
	for _, l := range res.Potential {
		if l != 1 && res.Rank[1] < res.Rank[l] {
			t.Fatalf("hub agent 1 (rank %v) outranked by agent %d (rank %v)",
				res.Rank[1], l, res.Rank[l])
		}
	}
	// The Fig. 2 effect: user 3's nearest agent is 2, but with n_ngbr = 2
	// AgRank pulls it to the better-connected agent 1.
	if got := a.UserAgent(3); got != 1 {
		t.Fatalf("user 3 assigned to %d, want hub agent 1", got)
	}
}

func TestNngbrOneFollowsProximity(t *testing.T) {
	sc := fourAgentScenario(t)
	a := assign.New(sc)
	_, err := BootstrapSession(a, 0, cost.DefaultParams(), cost.NewLedger(sc), DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	// With a single candidate per user the assignment equals Nrst.
	for u := 0; u < sc.NumUsers(); u++ {
		want := sc.NearestAgent(model.UserID(u))
		if got := a.UserAgent(model.UserID(u)); got != want {
			t.Fatalf("nngbr=1: user %d at %d, want nearest %d", u, got, want)
		}
	}
}

func TestResourceAwareSeedPrefersIdleAgent(t *testing.T) {
	// Two agents equidistant from everything; agent 0's capacity is mostly
	// consumed in the ledger, so AgRank must steer the session to agent 1.
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r720, _ := rs.ByName("720p")
	for i := 0; i < 2; i++ {
		b.AddAgent(model.Agent{Upload: 100, Download: 100, TranscodeSlots: 4})
	}
	s := b.AddSession("s")
	b.AddUser("a", s, r720, nil)
	b.AddUser("b", s, r720, nil)
	b.SetInterAgentDelays([][]float64{{0, 10}, {10, 0}})
	b.SetAgentUserDelays([][]float64{{5, 5}, {5, 5}})
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	ledger := cost.NewLedger(sc)
	// Pre-consume 90% of agent 0.
	pre := &cost.SessionLoad{
		Down:  []float64{90, 0},
		Up:    []float64{90, 0},
		Tasks: []int{3, 0},
		Inter: []float64{0, 0},
	}
	ledger.Add(pre)

	a := assign.New(sc)
	res, err := BootstrapSession(a, 0, cost.DefaultParams(), ledger, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rank[1] <= res.Rank[0] {
		t.Fatalf("idle agent 1 (rank %v) should outrank drained agent 0 (rank %v)",
			res.Rank[1], res.Rank[0])
	}
	for u := 0; u < 2; u++ {
		if got := a.UserAgent(model.UserID(u)); got != 1 {
			t.Fatalf("user %d at %d, want idle agent 1", u, got)
		}
	}
}

// transcodeScenario: source u0 (1080p) with destinations demanding reps per
// the demands map; all users equidistant from both agents so ranking noise
// cannot flip placements.
func transcodeScenario(t *testing.T, demands map[int]string) (*model.Scenario, model.UserID) {
	t.Helper()
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r1080, _ := rs.ByName("1080p")
	for i := 0; i < 2; i++ {
		b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 8})
	}
	s := b.AddSession("s")
	u0 := b.AddUser("src", s, r1080, nil)
	ids := make([]model.UserID, 0, len(demands))
	for range demands {
		ids = append(ids, b.AddUser("dst", s, r1080, nil))
	}
	i := 0
	for _, repName := range demands {
		r, _ := rs.ByName(repName)
		b.DemandFrom(ids[i], u0, r)
		i++
	}
	n := 1 + len(demands)
	h := make([][]float64, 2)
	for l := range h {
		h[l] = make([]float64, n)
		for u := range h[l] {
			h[l][u] = 5
		}
	}
	b.SetAgentUserDelays(h)
	b.SetInterAgentDelays([][]float64{{0, 10}, {10, 0}})
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sc, u0
}

func TestRuleOfThumbSharedRepAtSource(t *testing.T) {
	sc, u0 := transcodeScenario(t, map[int]string{1: "360p", 2: "360p"})
	a := assign.New(sc)
	if _, err := BootstrapSession(a, 0, cost.DefaultParams(), cost.NewLedger(sc), DefaultOptions(2)); err != nil {
		t.Fatal(err)
	}
	srcAgent := a.UserAgent(u0)
	for _, f := range a.SessionFlows(0) {
		if m, _ := a.FlowAgent(f); m != srcAgent {
			t.Fatalf("shared-rep flow %v transcoded at %d, want source agent %d", f, m, srcAgent)
		}
	}
}

func TestRuleOfThumbSingleDestAtDestination(t *testing.T) {
	sc, _ := transcodeScenario(t, map[int]string{1: "360p"})
	a := assign.New(sc)
	if _, err := BootstrapSession(a, 0, cost.DefaultParams(), cost.NewLedger(sc), DefaultOptions(2)); err != nil {
		t.Fatal(err)
	}
	flows := a.SessionFlows(0)
	if len(flows) != 1 {
		t.Fatalf("flows = %d, want 1", len(flows))
	}
	dstAgent := a.UserAgent(flows[0].Dst)
	if m, _ := a.FlowAgent(flows[0]); m != dstAgent {
		t.Fatalf("single-dest flow transcoded at %d, want destination agent %d", m, dstAgent)
	}
}

func TestTranscodingFallbackWhenPreferredFull(t *testing.T) {
	// Preferred transcoder (destination agent) has zero slots; AgRank must
	// fall back to the other agent instead of failing.
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r1080, _ := rs.ByName("1080p")
	b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 8})
	b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 0})
	s := b.AddSession("s")
	u0 := b.AddUser("src", s, r1080, nil)
	u1 := b.AddUser("dst", s, r1080, nil)
	b.DemandFrom(u1, u0, r360)
	// u0 near agent 0, u1 near agent 1.
	b.SetAgentUserDelays([][]float64{{5, 50}, {50, 5}})
	b.SetInterAgentDelays([][]float64{{0, 10}, {10, 0}})
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := assign.New(sc)
	if _, err := BootstrapSession(a, 0, cost.DefaultParams(), cost.NewLedger(sc), DefaultOptions(1)); err != nil {
		t.Fatalf("BootstrapSession: %v", err)
	}
	f := a.SessionFlows(0)[0]
	if m, _ := a.FlowAgent(f); m != 0 {
		t.Fatalf("transcoder at %d, want fallback agent 0 (agent 1 has no slots)", m)
	}
}

func TestBootstrapRollsBackOnImpossibleSession(t *testing.T) {
	// No agent has transcoding slots: the session cannot be admitted at all.
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r1080, _ := rs.ByName("1080p")
	for i := 0; i < 2; i++ {
		b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 0})
	}
	s := b.AddSession("s")
	u0 := b.AddUser("src", s, r1080, nil)
	u1 := b.AddUser("dst", s, r1080, nil)
	b.DemandFrom(u1, u0, r360)
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := assign.New(sc)
	ledger := cost.NewLedger(sc)
	err = Bootstrap(a, cost.DefaultParams(), ledger, DefaultOptions(2))
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Bootstrap error = %v, want ErrInfeasible", err)
	}
	for u := 0; u < sc.NumUsers(); u++ {
		if a.UserAgent(model.UserID(u)) != assign.Unassigned {
			t.Fatal("failed session not rolled back")
		}
	}
	down, up, tasks := ledger.Usage()
	for l := range down {
		if down[l] != 0 || up[l] != 0 || tasks[l] != 0 {
			t.Fatal("ledger polluted after failed bootstrap")
		}
	}
}

func TestBootstrapProducesFeasibleAssignment(t *testing.T) {
	sc := fourAgentScenario(t)
	a := assign.New(sc)
	p := cost.DefaultParams()
	if err := Bootstrap(a, p, cost.NewLedger(sc), DefaultOptions(3)); err != nil {
		t.Fatal(err)
	}
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.CheckFeasible(a); err != nil {
		t.Fatalf("CheckFeasible: %v", err)
	}
}

func TestLargerNngbrNeverHurtsAdmission(t *testing.T) {
	// With agent capacities that cannot take both users of a session at
	// their shared nearest agent, n_ngbr = 1 (no alternatives) must fail
	// while n_ngbr = 2 succeeds by spilling to the second candidate.
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r1080, _ := rs.ByName("1080p")
	// Two 1080p users need 16 Mbps of agent download wherever they land
	// (co-located: two upstreams; split: one upstream + one inter-agent
	// edge). Agent 0 (12 Mbps) can never host either shape; agent 1 can.
	b.AddAgent(model.Agent{Upload: 12, Download: 12, TranscodeSlots: 2})
	b.AddAgent(model.Agent{Upload: 100, Download: 100, TranscodeSlots: 2})
	s := b.AddSession("s")
	b.AddUser("a", s, r1080, nil)
	b.AddUser("b", s, r1080, nil)
	b.SetInterAgentDelays([][]float64{{0, 10}, {10, 0}})
	// Both users nearest agent 0.
	b.SetAgentUserDelays([][]float64{{5, 5}, {9, 9}})
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	a1 := assign.New(sc)
	err1 := Bootstrap(a1, cost.DefaultParams(), cost.NewLedger(sc), DefaultOptions(1))
	if !errors.Is(err1, ErrInfeasible) {
		t.Fatalf("nngbr=1 error = %v, want ErrInfeasible", err1)
	}

	a2 := assign.New(sc)
	if err := Bootstrap(a2, cost.DefaultParams(), cost.NewLedger(sc), DefaultOptions(2)); err != nil {
		t.Fatalf("nngbr=2 should admit via the second candidate: %v", err)
	}
	// Only agent 1 can absorb the session in any shape.
	if a2.UserAgent(0) != 1 || a2.UserAgent(1) != 1 {
		t.Fatalf("users at %d,%d; want both at the big agent 1",
			a2.UserAgent(0), a2.UserAgent(1))
	}
}
