// Package agrank implements AgRank (Alg. 2 of the paper): the proximity- and
// resource-aware agent ranking scheme that bootstraps the Markov
// approximation algorithm with a close-to-optimal initial assignment.
//
// Per session: (1) collect each user's n_ngbr nearest agents into the
// session's potential set N(s); (2) seed a rank vector with the agents'
// normalized residual resource quadruples; (3) iterate the rank against the
// normalized inverse inter-agent delay matrix D̂ (a PageRank-style random
// walk, which the paper cites as the design's motivation [4]); (4) subscribe
// each user to its highest-ranked candidate, with capacity-aware fallback
// down the candidate ranking; (5) place transcoding tasks by the paper's
// rule of thumb (≥ 2 same-representation destinations ⇒ source agent).
package agrank

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"vconf/internal/assign"
	"vconf/internal/cost"
	"vconf/internal/model"
)

// ErrInfeasible reports that AgRank could not admit a session within its
// candidate set without violating capacity or delay constraints.
var ErrInfeasible = errors.New("agrank: session admission infeasible")

// Options tune AgRank.
type Options struct {
	// NNgbr is n_ngbr ∈ [1, L]: the number of nearest agents considered per
	// user. 1 degenerates to the nearest policy; L subscribes the whole
	// session toward the single top-ranked agent (§IV-B).
	NNgbr int
	// Damping selects the rank iteration. A value in (0,1) runs the damped
	// personalized iteration π ← d·π·D̂_rownorm + (1−d)·π[0], which keeps the
	// resource-aware seed influential (PageRank-style; see DESIGN.md for why
	// the paper's literal π ← π·D̂ forgets its seed). 0 selects the literal
	// normalized power iteration for ablation.
	Damping float64
	// Epsilon is the iteration's convergence threshold ε on ‖π[t+1]−π[t]‖₁.
	Epsilon float64
	// MaxIters bounds the iteration count (AgRank converges in
	// O(max{1, −log ε}) iterations per the paper's complexity analysis).
	MaxIters int
}

// DefaultOptions returns the paper-flavored defaults for a given n_ngbr.
func DefaultOptions(nngbr int) Options {
	return Options{
		NNgbr:    nngbr,
		Damping:  0.85,
		Epsilon:  1e-9,
		MaxIters: 200,
	}
}

func (o Options) validate(numAgents int) error {
	if o.NNgbr < 1 || o.NNgbr > numAgents {
		return fmt.Errorf("agrank: NNgbr %d outside [1, %d]", o.NNgbr, numAgents)
	}
	if o.Damping < 0 || o.Damping >= 1 {
		return fmt.Errorf("agrank: damping %v outside [0, 1)", o.Damping)
	}
	if o.Epsilon <= 0 || o.MaxIters < 1 {
		return fmt.Errorf("agrank: invalid epsilon %v or max iterations %d", o.Epsilon, o.MaxIters)
	}
	return nil
}

// Result reports what AgRank decided for one session.
type Result struct {
	// Potential is N(s): the session's candidate agents in ascending ID.
	Potential []model.AgentID
	// Rank maps each candidate agent to its converged rank π_l.
	Rank map[model.AgentID]float64
	// Candidates is N(u) per user, sorted by descending rank (the fallback
	// order used during admission).
	Candidates map[model.UserID][]model.AgentID
	// Iterations is the number of rank iterations until δ < ε.
	Iterations int
}

// BootstrapSession runs AgRank for session s: ranks agents using the
// ledger's residual capacities, assigns users and transcoding tasks, and on
// success adds the session's load to the ledger. On failure every decision
// of the session is rolled back.
func BootstrapSession(a *assign.Assignment, s model.SessionID, p cost.Params, ledger cost.LedgerAPI, opts Options) (*Result, error) {
	sc := a.Scenario()
	if err := opts.validate(sc.NumAgents()); err != nil {
		return nil, err
	}

	res := rankSession(sc, s, ledger, opts)

	if err := admitUsers(a, s, p, ledger, res); err != nil {
		rollbackSession(a, s)
		return res, err
	}
	if err := placeTranscoding(a, s, p, ledger, res); err != nil {
		rollbackSession(a, s)
		return res, err
	}
	load := p.SessionLoadOf(a, s)
	if !cost.DelayFeasible(a, s) {
		rollbackSession(a, s)
		return res, fmt.Errorf("%w: session %d violates the delay cap", ErrInfeasible, s)
	}
	// Atomic check-then-add: with the pipelined orchestrator, admission
	// runs while worker commits mutate the ledger, so a separate
	// Fits-then-Add could validate against usage a concurrent commit then
	// grows past capacity.
	if !ledger.TryAdd(load) {
		rollbackSession(a, s)
		return res, fmt.Errorf("%w: session %d final load exceeds capacity", ErrInfeasible, s)
	}
	return res, nil
}

// Bootstrap runs AgRank over every session in ID order. It stops at the
// first infeasible session (callers treat any error as a failed scenario in
// success-rate experiments).
func Bootstrap(a *assign.Assignment, p cost.Params, ledger cost.LedgerAPI, opts Options) error {
	sc := a.Scenario()
	for s := 0; s < sc.NumSessions(); s++ {
		if _, err := BootstrapSession(a, model.SessionID(s), p, ledger, opts); err != nil {
			return err
		}
	}
	return nil
}

// rankSession performs steps (1)–(3): candidate collection and ranking.
func rankSession(sc *model.Scenario, s model.SessionID, ledger cost.LedgerAPI, opts Options) *Result {
	members := sc.Session(s).Users

	// N(u): top n_ngbr nearest agents per user; N(s): their union.
	inSet := make(map[model.AgentID]bool)
	nearest := make(map[model.UserID][]model.AgentID, len(members))
	for _, u := range members {
		prox := sc.AgentsByProximity(u)[:opts.NNgbr]
		nearest[u] = prox
		for _, l := range prox {
			inSet[l] = true
		}
	}
	potential := make([]model.AgentID, 0, len(inSet))
	for l := range inSet {
		potential = append(potential, l)
	}
	sort.Slice(potential, func(i, j int) bool { return potential[i] < potential[j] })

	pi0 := seedRanks(sc, potential, ledger)
	pi, iters := iterateRanks(sc, potential, pi0, opts)

	rank := make(map[model.AgentID]float64, len(potential))
	for i, l := range potential {
		rank[l] = pi[i]
	}

	// Candidate order per user: descending rank, ties by proximity then ID.
	candidates := make(map[model.UserID][]model.AgentID, len(members))
	for _, u := range members {
		cand := append([]model.AgentID(nil), nearest[u]...)
		uu := u
		sort.SliceStable(cand, func(i, j int) bool {
			ri, rj := rank[cand[i]], rank[cand[j]]
			if ri != rj {
				return ri > rj
			}
			hi, hj := sc.H(cand[i], uu), sc.H(cand[j], uu)
			if hi != hj {
				return hi < hj
			}
			return cand[i] < cand[j]
		})
		candidates[u] = cand
	}

	return &Result{
		Potential:  potential,
		Rank:       rank,
		Candidates: candidates,
		Iterations: iters,
	}
}

// seedRanks computes π[0]: the normalized residual quadruple of each
// candidate (Alg. 2 line 8). Upload, download and transcoding residuals are
// sum-normalized across candidates; the σ component rewards faster
// transcoders (inverse mean latency, sum-normalized), since smaller σ means
// a more capable agent.
func seedRanks(sc *model.Scenario, potential []model.AgentID, ledger cost.LedgerAPI) []float64 {
	down, up, tasks := ledger.Usage()
	n := len(potential)
	resUp := make([]float64, n)
	resDown := make([]float64, n)
	resTasks := make([]float64, n)
	invSigma := make([]float64, n)
	var sumUp, sumDown, sumTasks, sumInvSigma float64
	for i, l := range potential {
		ag := sc.Agent(l)
		resUp[i] = math.Max(0, ag.Upload-up[l])
		resDown[i] = math.Max(0, ag.Download-down[l])
		resTasks[i] = math.Max(0, float64(ag.TranscodeSlots-tasks[l]))
		invSigma[i] = 1 / (meanOffDiagonal(ag.SigmaMS) + 1) // +1 guards σ≡0
		sumUp += resUp[i]
		sumDown += resDown[i]
		sumTasks += resTasks[i]
		sumInvSigma += invSigma[i]
	}
	pi0 := make([]float64, n)
	total := 0.0
	for i := range potential {
		v := safeDiv(resUp[i], sumUp) + safeDiv(resDown[i], sumDown) +
			safeDiv(resTasks[i], sumTasks) + safeDiv(invSigma[i], sumInvSigma)
		pi0[i] = v
		total += v
	}
	if total == 0 {
		// All residuals exhausted: fall back to uniform.
		for i := range pi0 {
			pi0[i] = 1 / float64(n)
		}
		return pi0
	}
	for i := range pi0 {
		pi0[i] /= total
	}
	return pi0
}

// iterateRanks runs the rank iteration over D̂ until ‖Δ‖₁ < ε.
func iterateRanks(sc *model.Scenario, potential []model.AgentID, pi0 []float64, opts Options) ([]float64, int) {
	n := len(potential)
	if n == 1 {
		return []float64{1}, 0
	}
	dhat := buildDhat(sc, potential, opts.Damping > 0)

	pi := append([]float64(nil), pi0...)
	next := make([]float64, n)
	iters := 0
	for ; iters < opts.MaxIters; iters++ {
		// next = pi · dhat  (left multiplication: rank mass flows along
		// low-delay edges).
		for j := 0; j < n; j++ {
			acc := 0.0
			for i := 0; i < n; i++ {
				acc += pi[i] * dhat[i][j]
			}
			next[j] = acc
		}
		if opts.Damping > 0 {
			for j := 0; j < n; j++ {
				next[j] = opts.Damping*next[j] + (1-opts.Damping)*pi0[j]
			}
		} else {
			// Literal power iteration: L1-renormalize to keep the vector
			// from vanishing/exploding (the direction is what matters).
			sum := 0.0
			for _, v := range next {
				sum += v
			}
			if sum > 0 {
				for j := range next {
					next[j] /= sum
				}
			}
		}
		delta := 0.0
		for j := 0; j < n; j++ {
			delta += math.Abs(next[j] - pi[j])
		}
		copy(pi, next)
		if delta < opts.Epsilon {
			iters++
			break
		}
	}
	return pi, iters
}

// buildDhat constructs D̂ over the candidate set: D̂[l][k] =
// min_offdiag(D)/D[l][k] with diagonal 1 (self-delay is the minimum). When
// rowNormalize is set, rows are scaled to sum to 1 so the damped iteration
// is a proper personalized random walk.
func buildDhat(sc *model.Scenario, potential []model.AgentID, rowNormalize bool) [][]float64 {
	n := len(potential)
	minD := math.Inf(1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if d := sc.D(potential[i], potential[j]); d < minD && d > 0 {
				minD = d
			}
		}
	}
	if math.IsInf(minD, 1) {
		minD = 1 // all off-diagonal delays are zero: degenerate uniform case
	}
	dhat := make([][]float64, n)
	for i := 0; i < n; i++ {
		dhat[i] = make([]float64, n)
		rowSum := 0.0
		for j := 0; j < n; j++ {
			var v float64
			if i == j {
				v = 1
			} else if d := sc.D(potential[i], potential[j]); d > 0 {
				v = minD / d
			} else {
				v = 1 // zero measured delay: as good as self
			}
			dhat[i][j] = v
			rowSum += v
		}
		if rowNormalize && rowSum > 0 {
			for j := 0; j < n; j++ {
				dhat[i][j] /= rowSum
			}
		}
	}
	return dhat
}

// admitUsers performs step (4): each user subscribes to its highest-ranked
// candidate, falling back down the candidate list when the partial session
// load would no longer fit the ledger or a flow among the already-admitted
// members would bust the delay cap. The delay-aware fallback keeps rank
// concentration from dragging far-away users past Dmax — without it a
// top-ranked hub can be capacity-feasible yet delay-infeasible for users on
// other continents.
func admitUsers(a *assign.Assignment, s model.SessionID, p cost.Params, ledger cost.LedgerAPI, res *Result) error {
	sc := a.Scenario()
	for _, u := range sc.Session(s).Users {
		admitted := false
		for _, l := range res.Candidates[u] {
			a.SetUserAgent(u, l)
			if ledger.Fits(p.SessionLoadOf(a, s)) && partialDelayOK(a, s) {
				admitted = true
				break
			}
		}
		if !admitted {
			a.SetUserAgent(u, assign.Unassigned)
			return fmt.Errorf("%w: no candidate agent of user %d can absorb it", ErrInfeasible, u)
		}
	}
	return nil
}

// partialDelayOK checks constraint (8) over the session's flows whose
// endpoints are both assigned. Transcoding flows without a transcoder yet
// are judged optimistically with the better of the two endpoint agents —
// placeTranscoding can always realize one of those placements.
func partialDelayOK(a *assign.Assignment, s model.SessionID) bool {
	sc := a.Scenario()
	for _, u := range sc.Session(s).Users {
		lu := a.UserAgent(u)
		if lu == assign.Unassigned {
			continue
		}
		for _, v := range sc.Participants(u) {
			lv := a.UserAgent(v)
			if lv == assign.Unassigned {
				continue
			}
			f := model.Flow{Src: u, Dst: v}
			var d float64
			if !sc.Theta(u, v) {
				d = sc.H(lu, u) + sc.D(lu, lv) + sc.H(lv, v)
			} else if m, ok := a.FlowAgent(f); ok && m != assign.Unassigned {
				d = cost.FlowDelayMS(a, f)
			} else {
				src := sc.User(u)
				rep := sc.DownstreamRep(f)
				base := sc.H(lu, u) + sc.H(lv, v)
				atSrc := base + sc.D(lu, lv) + sc.Agent(lu).Sigma(src.Upstream, rep)
				atDst := base + sc.D(lu, lv) + sc.Agent(lv).Sigma(src.Upstream, rep)
				d = math.Min(atSrc, atDst)
			}
			if d > sc.DMaxMS {
				return false
			}
		}
	}
	return true
}

// placeTranscoding performs step (5): the paper's rule of thumb — when at
// least two destinations demand the same downstream representation of a
// source, transcode once at the source agent and fan the result out;
// otherwise transcode at the (single) destination's agent. Each placement
// falls back through the session's candidates by rank, then through all
// agents, whenever the incremental load does not fit.
func placeTranscoding(a *assign.Assignment, s model.SessionID, p cost.Params, ledger cost.LedgerAPI, res *Result) error {
	sc := a.Scenario()

	// Group the session's transcoding flows by (source, output rep).
	type group struct {
		flows []model.Flow
	}
	type key struct {
		src model.UserID
		r   model.Representation
	}
	groups := make(map[key]*group)
	var order []key // deterministic placement order
	for _, f := range a.SessionFlows(s) {
		k := key{src: f.Src, r: sc.DownstreamRep(f)}
		g, ok := groups[k]
		if !ok {
			g = &group{}
			groups[k] = g
			order = append(order, k)
		}
		g.flows = append(g.flows, f)
	}

	// Fallback order: session candidates by descending rank, then the rest.
	fallback := agentsByRank(sc, res)

	for _, k := range order {
		g := groups[k]
		var preferred model.AgentID
		if len(g.flows) >= 2 {
			preferred = a.UserAgent(k.src)
		} else {
			preferred = a.UserAgent(g.flows[0].Dst)
		}
		placed := false
		for _, m := range prepend(preferred, fallback) {
			for _, f := range g.flows {
				if err := a.SetFlowAgent(f, m); err != nil {
					return err
				}
			}
			if ledger.Fits(p.SessionLoadOf(a, s)) && groupDelayOK(a, g.flows) {
				placed = true
				break
			}
		}
		if !placed {
			return fmt.Errorf("%w: no agent can host transcoding of user %d to rep %d",
				ErrInfeasible, k.src, k.r)
		}
	}
	return nil
}

// groupDelayOK checks constraint (8) for the flows of one transcoding group
// under the currently attempted placement.
func groupDelayOK(a *assign.Assignment, flows []model.Flow) bool {
	sc := a.Scenario()
	for _, f := range flows {
		if cost.FlowDelayMS(a, f) > sc.DMaxMS {
			return false
		}
	}
	return true
}

// agentsByRank lists every agent: session candidates first by descending
// rank, then the remaining agents by ID.
func agentsByRank(sc *model.Scenario, res *Result) []model.AgentID {
	out := append([]model.AgentID(nil), res.Potential...)
	sort.SliceStable(out, func(i, j int) bool { return res.Rank[out[i]] > res.Rank[out[j]] })
	inSet := make(map[model.AgentID]bool, len(out))
	for _, l := range out {
		inSet[l] = true
	}
	for l := 0; l < sc.NumAgents(); l++ {
		if !inSet[model.AgentID(l)] {
			out = append(out, model.AgentID(l))
		}
	}
	return out
}

func prepend(first model.AgentID, rest []model.AgentID) []model.AgentID {
	out := make([]model.AgentID, 0, len(rest)+1)
	out = append(out, first)
	for _, l := range rest {
		if l != first {
			out = append(out, l)
		}
	}
	return out
}

func rollbackSession(a *assign.Assignment, s model.SessionID) {
	sc := a.Scenario()
	for _, u := range sc.Session(s).Users {
		a.SetUserAgent(u, assign.Unassigned)
	}
	for _, f := range a.SessionFlows(s) {
		_ = a.SetFlowAgent(f, assign.Unassigned)
	}
}

func meanOffDiagonal(m [][]float64) float64 {
	sum, n := 0.0, 0
	for i := range m {
		for j := range m[i] {
			if i != j {
				sum += m[i][j]
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
