package trace

import (
	"math"
	"testing"
)

func TestAppendOrdering(t *testing.T) {
	s := NewSeries("traffic")
	if err := s.Append(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, 3); err != nil {
		t.Fatal(err) // equal timestamps are fine
	}
	if err := s.Append(0.5, 4); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}

func TestAtStepSemantics(t *testing.T) {
	s := NewSeries("x")
	for _, p := range []struct{ t, v float64 }{{10, 1}, {20, 2}, {30, 3}} {
		if err := s.Append(p.t, p.v); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.At(5); ok {
		t.Fatal("At before first point should report not-ok")
	}
	tests := []struct{ t, want float64 }{
		{10, 1}, {15, 1}, {20, 2}, {29.9, 2}, {30, 3}, {1000, 3},
	}
	for _, tt := range tests {
		got, ok := s.At(tt.t)
		if !ok || got != tt.want {
			t.Fatalf("At(%v) = %v,%v; want %v,true", tt.t, got, ok, tt.want)
		}
	}
}

func TestResample(t *testing.T) {
	s := NewSeries("x")
	_ = s.Append(10, 1)
	_ = s.Append(20, 5)
	pts := s.Resample(0, 30, 10)
	want := []float64{1, 1, 5, 5} // t=0 carries the first value
	if len(pts) != len(want) {
		t.Fatalf("points = %d, want %d", len(pts), len(want))
	}
	for i, p := range pts {
		if p.Value != want[i] {
			t.Fatalf("Resample[%d] = %v, want %v", i, p.Value, want[i])
		}
	}
	if got := s.Resample(0, 10, 0); got != nil {
		t.Fatal("zero step should return nil")
	}
	if got := NewSeries("empty").Resample(0, 10, 1); got != nil {
		t.Fatal("empty series should resample to nil")
	}
}

func TestResampleEdgeCases(t *testing.T) {
	s := NewSeries("x")
	_ = s.Append(10, 1)

	// Single-point series: every grid sample carries that value.
	pts := s.Resample(0, 20, 5)
	if len(pts) != 5 {
		t.Fatalf("single-point resample = %d samples, want 5", len(pts))
	}
	for _, p := range pts {
		if p.Value != 1 {
			t.Fatalf("sample at t=%v = %v, want 1", p.TimeS, p.Value)
		}
	}

	// start == end: exactly one sample, at start.
	pts = s.Resample(15, 15, 5)
	if len(pts) != 1 || pts[0].TimeS != 15 || pts[0].Value != 1 {
		t.Fatalf("start==end resample = %+v, want one sample (15,1)", pts)
	}

	// step larger than the span: one sample at start, never zero and never
	// a sample past end.
	_ = s.Append(20, 7)
	pts = s.Resample(12, 14, 100)
	if len(pts) != 1 || pts[0].TimeS != 12 || pts[0].Value != 1 {
		t.Fatalf("step>span resample = %+v, want one sample (12,1)", pts)
	}

	// Long grids must not drift or drop the final sample to float
	// accumulation: 0.1 steps over [0,100] is exactly 1001 samples.
	pts = s.Resample(0, 100, 0.1)
	if len(pts) != 1001 {
		t.Fatalf("long grid = %d samples, want 1001", len(pts))
	}
	if last := pts[len(pts)-1]; math.Abs(last.TimeS-100) > 1e-6 || last.Value != 7 {
		t.Fatalf("final sample = %+v, want (100,7)", last)
	}
}

func TestMerge(t *testing.T) {
	a := NewSeries("region0")
	_ = a.Append(0, 1)
	_ = a.Append(10, 3)
	b := NewSeries("region1")
	_ = b.Append(5, 10)
	m := Merge("total", a, nil, b)
	if m.Name != "total" {
		t.Fatalf("merged name = %q", m.Name)
	}
	// Distinct times: 0, 5, 10. b contributes 0 before t=5.
	want := []Point{{0, 1}, {5, 11}, {10, 13}}
	got := m.Points()
	if len(got) != len(want) {
		t.Fatalf("merged points = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Duplicate timestamps across parts collapse to one output point.
	c := NewSeries("c")
	_ = c.Append(5, 1)
	m2 := Merge("t2", b, c)
	if m2.Len() != 1 {
		t.Fatalf("duplicate-time merge has %d points, want 1", m2.Len())
	}
	if v, ok := m2.At(5); !ok || v != 11 {
		t.Fatalf("merged value = %v,%v, want 11,true", v, ok)
	}
	// Merging nothing (or only empties) yields an empty series.
	if Merge("none").Len() != 0 || Merge("none", NewSeries("e")).Len() != 0 {
		t.Fatal("empty merge should have no points")
	}
}

func TestLastAndMinMax(t *testing.T) {
	s := NewSeries("x")
	if _, ok := s.Last(); ok {
		t.Fatal("Last on empty series reported ok")
	}
	_ = s.Append(1, 5)
	_ = s.Append(2, -3)
	_ = s.Append(3, 9)
	last, ok := s.Last()
	if !ok || last.Value != 9 || last.TimeS != 3 {
		t.Fatalf("Last = %+v", last)
	}
	min, max := s.MinMax()
	if min != -3 || max != 9 {
		t.Fatalf("MinMax = %v,%v", min, max)
	}
}

func TestMeanOver(t *testing.T) {
	s := NewSeries("x")
	_ = s.Append(0, 10)
	_ = s.Append(10, 20)
	// [0,20]: 10 for 10 s then 20 for 10 s → mean 15.
	if got := s.MeanOver(0, 20); math.Abs(got-15) > 1e-9 {
		t.Fatalf("MeanOver = %v, want 15", got)
	}
	// Window entirely in the second regime.
	if got := s.MeanOver(12, 18); math.Abs(got-20) > 1e-9 {
		t.Fatalf("MeanOver = %v, want 20", got)
	}
	if got := s.MeanOver(5, 5); got != 0 {
		t.Fatalf("degenerate window = %v, want 0", got)
	}
	if got := NewSeries("e").MeanOver(0, 1); got != 0 {
		t.Fatalf("empty series mean = %v, want 0", got)
	}
	// Points copy is defensive.
	pts := s.Points()
	pts[0].Value = 999
	if v, _ := s.At(0); v != 10 {
		t.Fatal("Points() leaked internal storage")
	}
}
