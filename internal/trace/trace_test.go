package trace

import (
	"math"
	"testing"
)

func TestAppendOrdering(t *testing.T) {
	s := NewSeries("traffic")
	if err := s.Append(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, 3); err != nil {
		t.Fatal(err) // equal timestamps are fine
	}
	if err := s.Append(0.5, 4); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}

func TestAtStepSemantics(t *testing.T) {
	s := NewSeries("x")
	for _, p := range []struct{ t, v float64 }{{10, 1}, {20, 2}, {30, 3}} {
		if err := s.Append(p.t, p.v); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.At(5); ok {
		t.Fatal("At before first point should report not-ok")
	}
	tests := []struct{ t, want float64 }{
		{10, 1}, {15, 1}, {20, 2}, {29.9, 2}, {30, 3}, {1000, 3},
	}
	for _, tt := range tests {
		got, ok := s.At(tt.t)
		if !ok || got != tt.want {
			t.Fatalf("At(%v) = %v,%v; want %v,true", tt.t, got, ok, tt.want)
		}
	}
}

func TestResample(t *testing.T) {
	s := NewSeries("x")
	_ = s.Append(10, 1)
	_ = s.Append(20, 5)
	pts := s.Resample(0, 30, 10)
	want := []float64{1, 1, 5, 5} // t=0 carries the first value
	if len(pts) != len(want) {
		t.Fatalf("points = %d, want %d", len(pts), len(want))
	}
	for i, p := range pts {
		if p.Value != want[i] {
			t.Fatalf("Resample[%d] = %v, want %v", i, p.Value, want[i])
		}
	}
	if got := s.Resample(0, 10, 0); got != nil {
		t.Fatal("zero step should return nil")
	}
	if got := NewSeries("empty").Resample(0, 10, 1); got != nil {
		t.Fatal("empty series should resample to nil")
	}
}

func TestLastAndMinMax(t *testing.T) {
	s := NewSeries("x")
	if _, ok := s.Last(); ok {
		t.Fatal("Last on empty series reported ok")
	}
	_ = s.Append(1, 5)
	_ = s.Append(2, -3)
	_ = s.Append(3, 9)
	last, ok := s.Last()
	if !ok || last.Value != 9 || last.TimeS != 3 {
		t.Fatalf("Last = %+v", last)
	}
	min, max := s.MinMax()
	if min != -3 || max != 9 {
		t.Fatalf("MinMax = %v,%v", min, max)
	}
}

func TestMeanOver(t *testing.T) {
	s := NewSeries("x")
	_ = s.Append(0, 10)
	_ = s.Append(10, 20)
	// [0,20]: 10 for 10 s then 20 for 10 s → mean 15.
	if got := s.MeanOver(0, 20); math.Abs(got-15) > 1e-9 {
		t.Fatalf("MeanOver = %v, want 15", got)
	}
	// Window entirely in the second regime.
	if got := s.MeanOver(12, 18); math.Abs(got-20) > 1e-9 {
		t.Fatalf("MeanOver = %v, want 20", got)
	}
	if got := s.MeanOver(5, 5); got != 0 {
		t.Fatalf("degenerate window = %v, want 0", got)
	}
	if got := NewSeries("e").MeanOver(0, 1); got != 0 {
		t.Fatalf("empty series mean = %v, want 0", got)
	}
	// Points copy is defensive.
	pts := s.Points()
	pts[0].Value = 999
	if v, _ := s.At(0); v != 10 {
		t.Fatal("Points() leaked internal storage")
	}
}
