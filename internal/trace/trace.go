// Package trace records time series of system observables (inter-agent
// traffic, conferencing delay) during simulated runs, and resamples them
// onto regular grids for table/figure output — the evolution plots of
// Figs. 4–7 are drawn from these series.
package trace

import (
	"fmt"
	"sort"
)

// Point is one observation at a virtual time.
type Point struct {
	TimeS float64
	Value float64
}

// Series is an append-only time series. Points must be appended in
// non-decreasing time order.
type Series struct {
	Name   string
	points []Point
}

// NewSeries creates an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Append records a point. Out-of-order appends are rejected.
func (s *Series) Append(timeS, value float64) error {
	if n := len(s.points); n > 0 && timeS < s.points[n-1].TimeS {
		return fmt.Errorf("trace: out-of-order append at t=%v (last %v)", timeS, s.points[n-1].TimeS)
	}
	s.points = append(s.points, Point{TimeS: timeS, Value: value})
	return nil
}

// Len returns the number of recorded points.
func (s *Series) Len() int { return len(s.points) }

// Points returns a copy of the recorded points.
func (s *Series) Points() []Point {
	return append([]Point(nil), s.points...)
}

// At returns the step-function value at time t: the most recent observation
// at or before t. Returns 0, false before the first point.
func (s *Series) At(t float64) (float64, bool) {
	idx := sort.Search(len(s.points), func(i int) bool { return s.points[i].TimeS > t })
	if idx == 0 {
		return 0, false
	}
	return s.points[idx-1].Value, true
}

// Resample returns the series sampled on the regular grid
// {start, start+step, …, end} using step-function (zero-order hold)
// semantics. Times before the first observation carry the first observed
// value so plots do not start at an artificial zero. The grid is computed
// on integer indices (t_i = start + i·step), never by accumulating step —
// float accumulation drifts on long grids and can drop or duplicate the
// final sample. Degenerate windows behave predictably: start == end and
// step > end−start both yield the single sample at start.
func (s *Series) Resample(start, end, step float64) []Point {
	if step <= 0 || end < start || len(s.points) == 0 {
		return nil
	}
	n := int((end-start)/step+1e-9) + 1
	out := make([]Point, 0, n)
	first := s.points[0].Value
	for i := 0; i < n; i++ {
		t := start + float64(i)*step
		v, ok := s.At(t)
		if !ok {
			v = first
		}
		out = append(out, Point{TimeS: t, Value: v})
	}
	return out
}

// Merge sums several series as step functions into a new series named
// name: one output point per distinct observation time across the parts,
// valued as the sum of every part's step-function value at that time. A
// part contributes 0 before its first observation (it has not started
// reporting yet — the multi-region aggregation semantic), and its last
// value from then on. Nil parts are skipped.
func Merge(name string, parts ...*Series) *Series {
	out := NewSeries(name)
	var times []float64
	for _, p := range parts {
		if p == nil {
			continue
		}
		for _, pt := range p.points {
			times = append(times, pt.TimeS)
		}
	}
	sort.Float64s(times)
	for i, t := range times {
		if i > 0 && t == times[i-1] {
			continue
		}
		sum := 0.0
		for _, p := range parts {
			if p == nil {
				continue
			}
			if v, ok := p.At(t); ok {
				sum += v
			}
		}
		// Times are sorted and deduplicated, so appends cannot fail.
		_ = out.Append(t, sum)
	}
	return out
}

// Last returns the final observation, or false when empty.
func (s *Series) Last() (Point, bool) {
	if len(s.points) == 0 {
		return Point{}, false
	}
	return s.points[len(s.points)-1], true
}

// MinMax returns the extreme values of the series (0,0 when empty).
func (s *Series) MinMax() (min, max float64) {
	if len(s.points) == 0 {
		return 0, 0
	}
	min, max = s.points[0].Value, s.points[0].Value
	for _, p := range s.points[1:] {
		if p.Value < min {
			min = p.Value
		}
		if p.Value > max {
			max = p.Value
		}
	}
	return min, max
}

// MeanOver returns the time-weighted mean of the step function over
// [from, to]. Returns 0 when the window is empty or degenerate.
func (s *Series) MeanOver(from, to float64) float64 {
	if to <= from || len(s.points) == 0 {
		return 0
	}
	total := 0.0
	t := from
	v, ok := s.At(from)
	if !ok {
		v = s.points[0].Value
	}
	for _, p := range s.points {
		if p.TimeS <= from {
			continue
		}
		if p.TimeS >= to {
			break
		}
		total += v * (p.TimeS - t)
		t = p.TimeS
		v = p.Value
	}
	total += v * (to - t)
	return total / (to - from)
}
