package workload

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenEvents covers every EventKind, incident ids, both merge ranks, a
// fractional degrade scale and an exact-binary-fraction timestamp — the
// full schema-v1 surface.
func goldenEvents() []Event {
	return []Event{
		{TimeS: 0.5, Kind: EventArrival, Session: 0},
		{TimeS: 1.25, Kind: EventDeparture, Session: 3},
		{TimeS: 2.700000000000001, Kind: EventAgentFail, Session: -1, Agent: 0, Region: 1, Incident: 1, Rank: RankFaults},
		{TimeS: 3.5, Kind: EventAgentRecover, Session: -1, Agent: 0, Region: 1, Incident: 2, Rank: RankFaults},
		{TimeS: 4, Kind: EventRegionOutage, Session: -1, Agent: -1, Region: 2, Incident: 3, Rank: RankFaults},
		{TimeS: 5, Kind: EventRegionRecover, Session: -1, Agent: -1, Region: 2, Incident: 4, Rank: RankFaults},
		{TimeS: 6.125, Kind: EventCapacityDegrade, Session: -1, Agent: 4, Region: 0, Scale: 0.375, Incident: 5, Rank: RankFaults},
		{TimeS: 7, Kind: EventFlashCrowd, Session: -1, Agent: -1, Region: 1, Incident: 6, Rank: RankFaults},
		{TimeS: 7.001, Kind: EventArrival, Session: 20, Region: 1, Rank: RankFaults}, // flash burst arrival
		{TimeS: 9.25, Kind: EventDeparture, Session: 20, Region: 1, Rank: RankFaults},
	}
}

// TestEventJSONRoundTrip pins marshal→unmarshal as an exact identity over
// the full schema surface, bit-exact floats included.
func TestEventJSONRoundTrip(t *testing.T) {
	for i, e := range goldenEvents() {
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		var got Event
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !reflect.DeepEqual(e, got) {
			t.Fatalf("event %d round trip: got %+v want %+v (wire %s)", i, got, e, b)
		}
	}
}

// TestEventJSONGolden pins the schema-v1 wire bytes: any change to the
// encoding breaks recorded traces, so it must show up as a golden diff and
// an EventSchemaVersion bump.
func TestEventJSONGolden(t *testing.T) {
	if EventSchemaVersion != 1 {
		t.Fatalf("EventSchemaVersion = %d; update the golden file and this test together", EventSchemaVersion)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i, e := range goldenEvents() {
		if err := enc.Encode(e); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	path := filepath.Join("testdata", "events_v1.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test -run TestEventJSONGolden -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("schema-v1 wire bytes changed:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// And the committed bytes must decode back to the exact events.
	dec := json.NewDecoder(bytes.NewReader(want))
	for i, e := range goldenEvents() {
		var got Event
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("golden line %d: %v", i, err)
		}
		if !reflect.DeepEqual(e, got) {
			t.Fatalf("golden line %d decodes to %+v, want %+v", i, got, e)
		}
	}
}

// TestEventJSONRejectsUnknownKind pins the error paths: kinds outside the
// schema fail both directions instead of silently round-tripping garbage.
func TestEventJSONRejectsUnknownKind(t *testing.T) {
	if _, err := json.Marshal(Event{Kind: EventKind(99)}); err == nil {
		t.Fatal("unknown kind marshaled")
	}
	var e Event
	if err := json.Unmarshal([]byte(`{"t":1,"k":"meteor-strike"}`), &e); err == nil {
		t.Fatal("unknown kind unmarshaled")
	}
	if err := json.Unmarshal([]byte(`{"t":1}`), &e); err == nil {
		t.Fatal("missing kind unmarshaled")
	}
}
