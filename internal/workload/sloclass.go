package workload

import "vconf/internal/model"

// SLO classes partition sessions by the delay budget they effectively live
// under. Small conferences are interactive: every participant speaks, so
// the paper's Dmax cap (FleetConfig.DelayCapMS when overridden) binds on
// the worst round-trip and users notice every millisecond. Large
// conferences behave like broadcasts: one or two speakers fan out to many
// viewers, so the same cap is slack for most flows and throughput matters
// more than tail delay. Splitting the telemetry along this line keeps an
// interactive-delay regression from hiding inside a broadcast-dominated
// mean.
const (
	ClassInteractive = 0
	ClassBroadcast   = 1
)

// SLOClassNames names the classes, indexed by the Class* constants; pass
// it to telemetry.Config.Classes.
var SLOClassNames = []string{"interactive", "broadcast"}

// DefaultBroadcastMinSize is the session size at which a conference stops
// being interactive: at 5+ participants the floor is effectively one-to-
// many.
const DefaultBroadcastMinSize = 5

// SessionClasses derives the per-session SLO class vector for sc: sessions
// with at least broadcastMinSize participants are ClassBroadcast, smaller
// ones ClassInteractive. A non-positive threshold selects
// DefaultBroadcastMinSize. Pass the result to
// telemetry.Config.SessionClass.
func SessionClasses(sc *model.Scenario, broadcastMinSize int) []int {
	if broadcastMinSize <= 0 {
		broadcastMinSize = DefaultBroadcastMinSize
	}
	out := make([]int, sc.NumSessions())
	for s := 0; s < sc.NumSessions(); s++ {
		if sc.Session(model.SessionID(s)).Size() >= broadcastMinSize {
			out[s] = ClassBroadcast
		}
	}
	return out
}
