package workload

import (
	"fmt"
	"math/rand"

	"vconf/internal/model"
)

// FleetConfig sizes a synthetic large-fleet scenario. The EC2-site workloads
// top out at the paper's 7 agents; performance work on the hop pipeline
// needs fleets of hundreds of agents, so this generator fabricates agents
// with bounded synthetic delay matrices instead of drawing from real sites.
type FleetConfig struct {
	// Seed drives every random choice.
	Seed int64
	// NumAgents is the fleet size (any positive count — not limited to the
	// EC2 site list).
	NumAgents int
	// NumUsers is the user population, partitioned into sessions of
	// MinSessionSize..MaxSessionSize members.
	NumUsers       int
	MinSessionSize int
	MaxSessionSize int
}

// DefaultFleetConfig returns the hop-benchmark fleet: 100 agents, 60 users.
func DefaultFleetConfig(seed int64) FleetConfig {
	return FleetConfig{
		Seed:           seed,
		NumAgents:      100,
		NumUsers:       60,
		MinSessionSize: 3,
		MaxSessionSize: 5,
	}
}

// GenerateSyntheticFleet builds a deterministic scenario with an
// arbitrarily large agent fleet. Delays are synthesized within bounds that
// keep every assignment under the default Dmax (H ≤ 40 ms, D ≤ 80 ms,
// σ = 40 ms ⇒ worst path 280 ms), so capacity-unconstrained chains explore
// the full neighbor structure — the shape hop-pipeline benchmarks need.
func GenerateSyntheticFleet(cfg FleetConfig) (*model.Scenario, error) {
	if cfg.NumAgents < 1 || cfg.NumUsers < 2 {
		return nil, fmt.Errorf("workload: fleet needs ≥1 agent and ≥2 users, got %d/%d",
			cfg.NumAgents, cfg.NumUsers)
	}
	if cfg.MinSessionSize < 2 || cfg.MaxSessionSize < cfg.MinSessionSize {
		return nil, fmt.Errorf("workload: invalid fleet session size range [%d, %d]",
			cfg.MinSessionSize, cfg.MaxSessionSize)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r720, _ := rs.ByName("720p")
	r1080, _ := rs.ByName("1080p")

	for i := 0; i < cfg.NumAgents; i++ {
		b.AddAgent(model.Agent{
			Name:           fmt.Sprintf("agent-%03d", i),
			Upload:         UnlimitedMbps,
			Download:       UnlimitedMbps,
			TranscodeSlots: UnlimitedSlots,
			SigmaMS:        model.UniformSigma(rs.Len(), 40),
		})
	}

	// Sessions of MinSessionSize..MaxSessionSize users; the first member
	// uploads 1080p and the others demand 360p from it, so every session
	// carries transcoding flows.
	var users, sessions int
	for users < cfg.NumUsers {
		size := cfg.MinSessionSize + rng.Intn(cfg.MaxSessionSize-cfg.MinSessionSize+1)
		if rem := cfg.NumUsers - users; size > rem {
			if rem < cfg.MinSessionSize {
				break // drop a remainder too small to form a session
			}
			size = rem
		}
		sid := b.AddSession(fmt.Sprintf("fleet-%03d", sessions))
		sessions++
		first := b.AddUser("src", sid, r1080, nil)
		for i := 1; i < size; i++ {
			up := r720
			if i%2 == 0 {
				up = r1080
			}
			u := b.AddUser("dst", sid, up, nil)
			b.DemandFrom(u, first, r360)
		}
		users += size
	}

	// Bounded synthetic delay matrices: deterministic in the seed.
	L := cfg.NumAgents
	d := make([][]float64, L)
	for i := range d {
		d[i] = make([]float64, L)
	}
	for i := 0; i < L; i++ {
		for j := i + 1; j < L; j++ {
			v := 10 + 70*rng.Float64()
			d[i][j] = v
			d[j][i] = v
		}
	}
	h := make([][]float64, L)
	for l := range h {
		h[l] = make([]float64, users)
		for u := range h[l] {
			h[l][u] = 5 + 35*rng.Float64()
		}
	}
	b.SetInterAgentDelays(d)
	b.SetAgentUserDelays(h)
	return b.Build()
}
