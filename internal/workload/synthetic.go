package workload

import (
	"fmt"
	"math/rand"

	"vconf/internal/model"
	"vconf/internal/netsim"
)

// FleetConfig sizes a synthetic large-fleet scenario. The EC2-site workloads
// top out at the paper's 7 agents; performance work on the hop pipeline
// needs fleets of hundreds of agents, so this generator fabricates agents
// with bounded synthetic delay matrices instead of drawing from real sites.
type FleetConfig struct {
	// Seed drives every random choice.
	Seed int64
	// NumAgents is the fleet size (any positive count — not limited to the
	// EC2 site list).
	NumAgents int
	// NumUsers is the user population, partitioned into sessions of
	// MinSessionSize..MaxSessionSize members.
	NumUsers       int
	MinSessionSize int
	MaxSessionSize int

	// Regions > 0 switches on regional structure: agents and users cluster
	// around that many netsim anchor cities (sampled across continents),
	// delays come from the geographic latency synthesis instead of uniform
	// noise, sessions are homed in population-skewed regions, and agent
	// capacities are finite with per-region skew — so large-fleet
	// experiments exercise realistic geographic imbalance (hot, tight
	// regions next to cold, roomy ones) instead of uniform fleets.
	// 0 keeps the legacy uniform generator, byte-identical per seed.
	Regions int
	// RegionCapacitySkew ∈ [0, 1) spreads per-region capacity: every agent
	// in region r gets its capacities scaled by a factor drawn once per
	// region from [1−skew, 1+skew]. 0 defaults to 0.5 when Regions > 0;
	// pass a negative value for an explicit zero (uniform capacities).
	RegionCapacitySkew float64
	// AgentBandwidthMbps is the base per-agent up/down capacity in regional
	// mode (default 600). The legacy mode stays unlimited.
	AgentBandwidthMbps float64
	// AgentTranscodeSlots is the base per-agent transcoding capacity in
	// regional mode (default 12).
	AgentTranscodeSlots int
	// CrossRegionFrac is the probability that a session member joins from a
	// random foreign region instead of the session's home region — the
	// long-haul participants that stress delay feasibility. 0 defaults to
	// 0.1; pass a negative value for an explicit zero (purely intra-region
	// sessions).
	CrossRegionFrac float64
	// DelayCapMS overrides the scenario's Dmax end-to-end delay cap
	// (constraint (8)); 0 keeps model.DefaultDMaxMS. Tight caps model a
	// converged, delay-bound fleet where most single-variable moves are
	// delay-infeasible — the shape the warm-hop benchmarks measure (hops
	// mostly stay put, so per-session delay state is reused across hops).
	DelayCapMS float64
}

// DefaultFleetConfig returns the hop-benchmark fleet: 100 agents, 60 users.
func DefaultFleetConfig(seed int64) FleetConfig {
	return FleetConfig{
		Seed:           seed,
		NumAgents:      100,
		NumUsers:       60,
		MinSessionSize: 3,
		MaxSessionSize: 5,
	}
}

// AgentRegions returns the agent→region map of a regional synthetic fleet:
// generateRegionalFleet assigns agent i to region i mod regions. The fault
// engine and the orchestrator's regional healing consume this.
func AgentRegions(numAgents, regions int) []int {
	out := make([]int, numAgents)
	for i := range out {
		out[i] = i % regions
	}
	return out
}

// GenerateSyntheticFleet builds a deterministic scenario with an
// arbitrarily large agent fleet. Delays are synthesized within bounds that
// keep every assignment under the default Dmax (H ≤ 40 ms, D ≤ 80 ms,
// σ = 40 ms ⇒ worst path 280 ms), so capacity-unconstrained chains explore
// the full neighbor structure — the shape hop-pipeline benchmarks need.
func GenerateSyntheticFleet(cfg FleetConfig) (*model.Scenario, error) {
	sc, _, err := GenerateSyntheticFleetRegions(cfg)
	return sc, err
}

// GenerateSyntheticFleetRegions is GenerateSyntheticFleet plus each
// generated session's home-region index (all zeros in the legacy uniform
// mode) — the session→region mapping DiurnalConfig.SessionRegion consumes,
// so follow-the-sun churn schedules line up with the fleet's actual
// geography.
func GenerateSyntheticFleetRegions(cfg FleetConfig) (*model.Scenario, []int, error) {
	if cfg.NumAgents < 1 || cfg.NumUsers < 2 {
		return nil, nil, fmt.Errorf("workload: fleet needs ≥1 agent and ≥2 users, got %d/%d",
			cfg.NumAgents, cfg.NumUsers)
	}
	if cfg.MinSessionSize < 2 || cfg.MaxSessionSize < cfg.MinSessionSize {
		return nil, nil, fmt.Errorf("workload: invalid fleet session size range [%d, %d]",
			cfg.MinSessionSize, cfg.MaxSessionSize)
	}
	if cfg.Regions > 0 {
		return generateRegionalFleet(cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r720, _ := rs.ByName("720p")
	r1080, _ := rs.ByName("1080p")

	for i := 0; i < cfg.NumAgents; i++ {
		b.AddAgent(model.Agent{
			Name:           fmt.Sprintf("agent-%03d", i),
			Upload:         UnlimitedMbps,
			Download:       UnlimitedMbps,
			TranscodeSlots: UnlimitedSlots,
			SigmaMS:        model.UniformSigma(rs.Len(), 40),
		})
	}

	// Sessions of MinSessionSize..MaxSessionSize users; the first member
	// uploads 1080p and the others demand 360p from it, so every session
	// carries transcoding flows.
	var users, sessions int
	for users < cfg.NumUsers {
		size := cfg.MinSessionSize + rng.Intn(cfg.MaxSessionSize-cfg.MinSessionSize+1)
		if rem := cfg.NumUsers - users; size > rem {
			if rem < cfg.MinSessionSize {
				break // drop a remainder too small to form a session
			}
			size = rem
		}
		sid := b.AddSession(fmt.Sprintf("fleet-%03d", sessions))
		sessions++
		first := b.AddUser("src", sid, r1080, nil)
		for i := 1; i < size; i++ {
			up := r720
			if i%2 == 0 {
				up = r1080
			}
			u := b.AddUser("dst", sid, up, nil)
			b.DemandFrom(u, first, r360)
		}
		users += size
	}

	// Bounded synthetic delay matrices: deterministic in the seed.
	L := cfg.NumAgents
	d := make([][]float64, L)
	for i := range d {
		d[i] = make([]float64, L)
	}
	for i := 0; i < L; i++ {
		for j := i + 1; j < L; j++ {
			v := 10 + 70*rng.Float64()
			d[i][j] = v
			d[j][i] = v
		}
	}
	h := make([][]float64, L)
	for l := range h {
		h[l] = make([]float64, users)
		for u := range h[l] {
			h[l][u] = 5 + 35*rng.Float64()
		}
	}
	b.SetInterAgentDelays(d)
	b.SetAgentUserDelays(h)
	if cfg.DelayCapMS > 0 {
		b.SetDelayCap(cfg.DelayCapMS)
	}
	sc, err := b.Build()
	return sc, make([]int, sessions), err
}

// generateRegionalFleet is the Regions > 0 path of GenerateSyntheticFleet:
// geographic clustering around netsim anchor cities, population-skewed
// session homing, and finite per-region-skewed capacities. Returns each
// session's home region alongside the scenario.
func generateRegionalFleet(cfg FleetConfig) (*model.Scenario, []int, error) {
	if cfg.RegionCapacitySkew >= 1 {
		return nil, nil, fmt.Errorf("workload: region capacity skew %v outside [0, 1)", cfg.RegionCapacitySkew)
	}
	switch {
	case cfg.RegionCapacitySkew == 0:
		cfg.RegionCapacitySkew = 0.5
	case cfg.RegionCapacitySkew < 0:
		cfg.RegionCapacitySkew = 0 // explicit zero: uniform capacities
	}
	if cfg.AgentBandwidthMbps == 0 {
		cfg.AgentBandwidthMbps = 600
	}
	if cfg.AgentBandwidthMbps < 0 || cfg.AgentTranscodeSlots < 0 {
		return nil, nil, fmt.Errorf("workload: negative regional capacities")
	}
	if cfg.AgentTranscodeSlots == 0 {
		cfg.AgentTranscodeSlots = 12
	}
	if cfg.CrossRegionFrac > 1 {
		return nil, nil, fmt.Errorf("workload: cross-region fraction %v outside [0, 1]", cfg.CrossRegionFrac)
	}
	switch {
	case cfg.CrossRegionFrac == 0:
		cfg.CrossRegionFrac = 0.1
	case cfg.CrossRegionFrac < 0:
		cfg.CrossRegionFrac = 0 // explicit zero: purely intra-region
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	// Stride-sample the anchor pool so even a few regions span continents
	// (the pool is grouped by continent).
	all := netsim.AnchorSites()
	r := cfg.Regions
	if r > len(all) {
		r = len(all)
	}
	anchors := make([]netsim.Site, r)
	for i := 0; i < r; i++ {
		anchors[i] = all[i*len(all)/r]
	}

	// Per-region capacity factor (the skew) and population weight (the
	// imbalance): hot regions attract sessions regardless of how much
	// capacity they happen to have.
	capFactor := make([]float64, r)
	popWeight := make([]float64, r)
	popTotal := 0.0
	for i := 0; i < r; i++ {
		capFactor[i] = 1 + cfg.RegionCapacitySkew*(2*rng.Float64()-1)
		popWeight[i] = 0.25 + rng.Float64()
		popTotal += popWeight[i]
	}
	pickRegion := func() int {
		u := rng.Float64() * popTotal
		acc := 0.0
		for i, w := range popWeight {
			acc += w
			if u < acc {
				return i
			}
		}
		return r - 1
	}
	jitter := func(s netsim.Site, name string) netsim.Site {
		return netsim.Site{
			Name:   name,
			Region: s.Region,
			Lat:    s.Lat + (rng.Float64()-0.5)*1.5,
			Lon:    s.Lon + (rng.Float64()-0.5)*1.5,
		}
	}

	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r720, _ := rs.ByName("720p")
	r1080, _ := rs.ByName("1080p")

	// Agents: round-robin across regions (every region gets data centers),
	// placed at the region anchor with metro jitter, capacities scaled by
	// the region factor.
	agentSites := make([]netsim.Site, cfg.NumAgents)
	for i := 0; i < cfg.NumAgents; i++ {
		reg := i % r
		agentSites[i] = jitter(anchors[reg], fmt.Sprintf("agent-%03d-%s", i, anchors[reg].Name))
		slots := int(float64(cfg.AgentTranscodeSlots)*capFactor[reg] + 0.5)
		if slots < 1 {
			slots = 1
		}
		b.AddAgent(model.Agent{
			Name:           agentSites[i].Name,
			Upload:         cfg.AgentBandwidthMbps * capFactor[reg],
			Download:       cfg.AgentBandwidthMbps * capFactor[reg],
			TranscodeSlots: slots,
			SigmaMS:        model.UniformSigma(rs.Len(), 40),
		})
	}

	// Sessions: homed in a population-weighted region; most members join
	// from the home metro, a few from a random foreign region.
	var userSites []netsim.Site
	var homes []int
	var users, sessions int
	for users < cfg.NumUsers {
		size := cfg.MinSessionSize + rng.Intn(cfg.MaxSessionSize-cfg.MinSessionSize+1)
		if rem := cfg.NumUsers - users; size > rem {
			if rem < cfg.MinSessionSize {
				break // drop a remainder too small to form a session
			}
			size = rem
		}
		home := pickRegion()
		sid := b.AddSession(fmt.Sprintf("fleet-%03d-%s", sessions, anchors[home].Name))
		homes = append(homes, home)
		sessions++
		var first model.UserID
		for i := 0; i < size; i++ {
			reg := home
			if i > 0 && rng.Float64() < cfg.CrossRegionFrac {
				reg = rng.Intn(r)
			}
			site := jitter(anchors[reg], fmt.Sprintf("user-%03d-%s", users+i, anchors[reg].Name))
			userSites = append(userSites, site)
			if i == 0 {
				first = b.AddUser("src", sid, r1080, nil)
				continue
			}
			up := r720
			if i%2 == 0 {
				up = r1080
			}
			u := b.AddUser("dst", sid, up, nil)
			b.DemandFrom(u, first, r360)
		}
		users += size
	}

	// Geographic latency synthesis: great-circle propagation with routing
	// inflation and last-mile access — the same calibration the EC2-site
	// workloads use, so intra-region paths land ~5–20 ms and long-haul
	// ones in the hundreds.
	net, err := netsim.Generate(netsim.DefaultConfig(cfg.Seed), agentSites, userSites)
	if err != nil {
		return nil, nil, err
	}
	b.SetInterAgentDelays(net.DMS)
	b.SetAgentUserDelays(net.HMS)
	if cfg.DelayCapMS > 0 {
		b.SetDelayCap(cfg.DelayCapMS)
	}
	sc, err := b.Build()
	return sc, homes, err
}
