package workload

import (
	"testing"

	"vconf/internal/model"
)

func TestGenerateLargeScaleShape(t *testing.T) {
	sc, err := Generate(LargeScale(1))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if sc.NumAgents() != 7 {
		t.Fatalf("agents = %d, want 7", sc.NumAgents())
	}
	if sc.NumUsers() != 200 {
		t.Fatalf("users = %d, want 200", sc.NumUsers())
	}
	// 200 users in sessions of 2–5 ⇒ 40–100 sessions.
	if n := sc.NumSessions(); n < 40 || n > 100 {
		t.Fatalf("sessions = %d, want 40–100", n)
	}
	for s := 0; s < sc.NumSessions(); s++ {
		size := sc.Session(model.SessionID(s)).Size()
		if size < 2 || size > 6 { // 6: a lone leftover may join the last session
			t.Fatalf("session %d size = %d, outside [2,6]", s, size)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	sc1, err := Generate(LargeScale(33))
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := Generate(LargeScale(33))
	if err != nil {
		t.Fatal(err)
	}
	if sc1.NumSessions() != sc2.NumSessions() || sc1.ThetaSum() != sc2.ThetaSum() {
		t.Fatal("identical seeds produced different scenarios")
	}
	for u := 0; u < sc1.NumUsers(); u++ {
		if sc1.User(model.UserID(u)).Upstream != sc2.User(model.UserID(u)).Upstream {
			t.Fatalf("user %d upstream differs across identical seeds", u)
		}
	}
	sc3, err := Generate(LargeScale(34))
	if err != nil {
		t.Fatal(err)
	}
	if sc1.ThetaSum() == sc3.ThetaSum() && sc1.NumSessions() == sc3.NumSessions() {
		same := true
		for u := 0; u < sc1.NumUsers() && same; u++ {
			same = sc1.User(model.UserID(u)).Upstream == sc3.User(model.UserID(u)).Upstream
		}
		if same {
			t.Fatal("different seeds produced identical scenarios")
		}
	}
}

func TestGenerateDemandMix(t *testing.T) {
	sc, err := Generate(LargeScale(7))
	if err != nil {
		t.Fatal(err)
	}
	reps := sc.Reps
	r720, _ := reps.ByName("720p")
	// Count per-user demanded representations via their Downstream tables.
	demand720 := 0
	total := 0
	for u := 0; u < sc.NumUsers(); u++ {
		user := sc.User(model.UserID(u))
		if len(user.Downstream) == 0 {
			continue
		}
		total++
		// All entries share one rep by construction; read any.
		for _, r := range user.Downstream {
			if r == r720 {
				demand720++
			}
			break
		}
	}
	if total == 0 {
		t.Fatal("no demands recorded")
	}
	share := float64(demand720) / float64(total)
	if share < 0.70 || share > 0.90 {
		t.Fatalf("720p demand share = %.2f, want ≈ 0.8", share)
	}
	// Transcoding matrix should be sparse but present.
	if sc.ThetaSum() == 0 {
		t.Fatal("no transcoding flows generated")
	}
	totalFlows := 0
	for s := 0; s < sc.NumSessions(); s++ {
		n := sc.Session(model.SessionID(s)).Size()
		totalFlows += n * (n - 1)
	}
	if frac := float64(sc.ThetaSum()) / float64(totalFlows); frac > 0.6 {
		t.Fatalf("transcoding share %.2f not sparse", frac)
	}
}

func TestGenerateCapacityHeterogeneity(t *testing.T) {
	cfg := LargeScale(5)
	cfg.MeanBandwidthMbps = 700
	cfg.MeanTranscodeSlots = 40
	sc, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawDifferentBW := false
	for l := 0; l < sc.NumAgents(); l++ {
		a := sc.Agent(model.AgentID(l))
		if a.Upload < 700*0.69 || a.Upload > 700*1.31 {
			t.Fatalf("agent %d upload %v outside ±30%% of 700", l, a.Upload)
		}
		if a.TranscodeSlots < 27 || a.TranscodeSlots > 53 {
			t.Fatalf("agent %d slots %d outside ±30%% of 40", l, a.TranscodeSlots)
		}
		if a.Upload != sc.Agent(0).Upload {
			sawDifferentBW = true
		}
	}
	if !sawDifferentBW {
		t.Fatal("agent capacities are homogeneous; expected heterogeneity")
	}
}

func TestGeneratePrototypeShape(t *testing.T) {
	sc, err := Generate(Prototype(2))
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumAgents() != 6 {
		t.Fatalf("agents = %d, want 6", sc.NumAgents())
	}
	if n := sc.NumSessions(); n < 7 || n > 13 {
		t.Fatalf("sessions = %d, want ≈10", n)
	}
	for s := 0; s < sc.NumSessions(); s++ {
		size := sc.Session(model.SessionID(s)).Size()
		if size < 3 || size > 6 {
			t.Fatalf("session %d size %d outside prototype range", s, size)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.NumAgents = 0 },
		func(c *Config) { c.NumAgents = 99 },
		func(c *Config) { c.NumUserNodes = 0 },
		func(c *Config) { c.NumUsers = 1 },
		func(c *Config) { c.MinSessionSize = 1 },
		func(c *Config) { c.MaxSessionSize = 1 },
		func(c *Config) { c.MeanBandwidthMbps = 0 },
		func(c *Config) { c.UpstreamWeights = nil },
		func(c *Config) { c.DemandWeights = map[string]float64{} },
	}
	for i, mutate := range mutations {
		cfg := LargeScale(1)
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Fatalf("mutation %d: invalid config accepted", i)
		}
	}
	// Weight validation inside the picker.
	cfg := LargeScale(1)
	cfg.DemandWeights = map[string]float64{"720p": -1}
	if _, err := Generate(cfg); err == nil {
		t.Fatal("negative weight accepted")
	}
	cfg.DemandWeights = map[string]float64{"nonexistent": 1}
	if _, err := Generate(cfg); err == nil {
		t.Fatal("unknown representation name accepted")
	}
}

func TestGenerateMoreUsersThanNodes(t *testing.T) {
	cfg := LargeScale(9)
	cfg.NumUserNodes = 20
	cfg.NumUsers = 50
	sc, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumUsers() != 50 {
		t.Fatalf("users = %d, want 50 (node reuse)", sc.NumUsers())
	}
}

func TestPoissonScheduleInvariants(t *testing.T) {
	cfg := ChurnConfig{
		Seed:            3,
		HorizonS:        600,
		ArrivalRatePerS: 0.1,
		MeanHoldS:       60,
		NumSessions:     8,
		InitialActive:   3,
	}
	events, err := PoissonSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no churn events generated")
	}
	// Events in time order, inside the horizon, with a consistent active
	// set: never arrive an active session, never depart an idle one, never
	// exceed the pool.
	active := make(map[int]bool)
	for s := 0; s < cfg.InitialActive; s++ {
		active[s] = true
	}
	last := 0.0
	arrivals, departures := 0, 0
	for i, e := range events {
		if e.TimeS < last {
			t.Fatalf("event %d out of order: %v after %v", i, e.TimeS, last)
		}
		last = e.TimeS
		if e.TimeS < 0 || e.TimeS >= cfg.HorizonS {
			t.Fatalf("event %d outside horizon: %v", i, e.TimeS)
		}
		if e.Session < 0 || e.Session >= cfg.NumSessions {
			t.Fatalf("event %d references session %d", i, e.Session)
		}
		switch e.Kind {
		case EventArrival:
			if active[e.Session] {
				t.Fatalf("event %d: arrival of already-active session %d", i, e.Session)
			}
			active[e.Session] = true
			arrivals++
		case EventDeparture:
			if !active[e.Session] {
				t.Fatalf("event %d: departure of inactive session %d", i, e.Session)
			}
			delete(active, e.Session)
			departures++
		default:
			t.Fatalf("event %d has kind %d", i, e.Kind)
		}
		if len(active) > cfg.NumSessions {
			t.Fatal("active set exceeded the pool")
		}
	}
	if arrivals == 0 || departures == 0 {
		t.Fatalf("degenerate schedule: %d arrivals, %d departures", arrivals, departures)
	}
}

func TestPoissonScheduleDeterministic(t *testing.T) {
	cfg := ChurnConfig{Seed: 9, HorizonS: 300, ArrivalRatePerS: 0.05, MeanHoldS: 40,
		NumSessions: 5, InitialActive: 2}
	e1, err := PoissonSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := PoissonSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(e1) != len(e2) {
		t.Fatal("schedules differ in length across identical seeds")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d differs across identical seeds", i)
		}
	}
}

func TestPoissonScheduleValidation(t *testing.T) {
	bad := []ChurnConfig{
		{HorizonS: 0, ArrivalRatePerS: 1, MeanHoldS: 1, NumSessions: 1},
		{HorizonS: 1, ArrivalRatePerS: 0, MeanHoldS: 1, NumSessions: 1},
		{HorizonS: 1, ArrivalRatePerS: 1, MeanHoldS: 0, NumSessions: 1},
		{HorizonS: 1, ArrivalRatePerS: 1, MeanHoldS: 1, NumSessions: 0},
		{HorizonS: 1, ArrivalRatePerS: 1, MeanHoldS: 1, NumSessions: 2, InitialActive: 3},
	}
	for i, cfg := range bad {
		if _, err := PoissonSchedule(cfg); err == nil {
			t.Fatalf("case %d: invalid churn config accepted", i)
		}
	}
}
