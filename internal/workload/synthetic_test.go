package workload

import (
	"testing"

	"vconf/internal/model"
)

// TestRegionalFleetStructure: the Regions > 0 generator must produce
// deterministic scenarios with genuine geographic structure — intra-region
// agent pairs much closer than cross-region ones, users nearest to their
// home region's agents, skewed per-region capacities, and finite caps.
func TestRegionalFleetStructure(t *testing.T) {
	cfg := DefaultFleetConfig(5)
	cfg.NumAgents = 24
	cfg.NumUsers = 60
	cfg.Regions = 4
	sc, err := GenerateSyntheticFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumAgents() != 24 {
		t.Fatalf("agents = %d", sc.NumAgents())
	}

	// Determinism: identical config ⇒ identical matrices and capacities.
	sc2, err := GenerateSyntheticFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sc.NumAgents(); i++ {
		a1, a2 := sc.Agent(model.AgentID(i)), sc2.Agent(model.AgentID(i))
		if a1.Upload != a2.Upload || a1.TranscodeSlots != a2.TranscodeSlots {
			t.Fatalf("agent %d capacities diverged across identical seeds", i)
		}
		for j := 0; j < sc.NumAgents(); j++ {
			if sc.D(model.AgentID(i), model.AgentID(j)) != sc2.D(model.AgentID(i), model.AgentID(j)) {
				t.Fatalf("D[%d][%d] diverged across identical seeds", i, j)
			}
		}
	}

	// Agents are assigned to regions round-robin: i and i+Regions share a
	// region, i and i+1 do not. Same-region pairs must be far closer.
	r := cfg.Regions
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < sc.NumAgents(); i++ {
		for j := i + 1; j < sc.NumAgents(); j++ {
			d := sc.D(model.AgentID(i), model.AgentID(j))
			if i%r == j%r {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if intra*2 >= inter {
		t.Fatalf("no regional delay structure: mean intra %.1f ms vs inter %.1f ms", intra, inter)
	}

	// Capacities are finite and skewed across regions.
	minUp, maxUp := 1e18, 0.0
	for i := 0; i < sc.NumAgents(); i++ {
		up := sc.Agent(model.AgentID(i)).Upload
		if up >= UnlimitedMbps {
			t.Fatalf("agent %d unlimited in regional mode", i)
		}
		if up < minUp {
			minUp = up
		}
		if up > maxUp {
			maxUp = up
		}
	}
	if maxUp == minUp {
		t.Fatal("regional capacity skew produced uniform capacities")
	}

	// Every user's nearest agent should usually sit in a small H-delay
	// neighborhood (the home metro): require a majority of users within
	// 30 ms of their nearest agent.
	near := 0
	for u := 0; u < sc.NumUsers(); u++ {
		l := sc.NearestAgent(model.UserID(u))
		if sc.H(l, model.UserID(u)) < 30 {
			near++
		}
	}
	if near*2 < sc.NumUsers() {
		t.Fatalf("only %d/%d users have a nearby agent", near, sc.NumUsers())
	}
}

// TestRegionalFleetLegacyPathUnchanged: Regions == 0 must keep the legacy
// uniform generator (unlimited capacities, bounded uniform delays).
func TestRegionalFleetLegacyPathUnchanged(t *testing.T) {
	sc, err := GenerateSyntheticFleet(DefaultFleetConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sc.NumAgents(); i++ {
		ag := sc.Agent(model.AgentID(i))
		if ag.Upload != UnlimitedMbps || ag.TranscodeSlots != UnlimitedSlots {
			t.Fatalf("legacy fleet agent %d gained finite capacities", i)
		}
	}
	for i := 0; i < sc.NumAgents(); i++ {
		for j := i + 1; j < sc.NumAgents(); j++ {
			d := sc.D(model.AgentID(i), model.AgentID(j))
			if d < 10 || d > 80 {
				t.Fatalf("legacy delay D[%d][%d] = %v outside [10, 80]", i, j, d)
			}
		}
	}
}

// TestRegionalFleetZeroSentinels: negative skew / cross-region values mean
// an explicit zero (uniform capacities, purely intra-region sessions).
func TestRegionalFleetZeroSentinels(t *testing.T) {
	cfg := DefaultFleetConfig(6)
	cfg.NumAgents = 12
	cfg.Regions = 3
	cfg.RegionCapacitySkew = -1
	cfg.CrossRegionFrac = -1
	sc, err := GenerateSyntheticFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	up0 := sc.Agent(0).Upload
	for i := 0; i < sc.NumAgents(); i++ {
		if sc.Agent(model.AgentID(i)).Upload != up0 {
			t.Fatalf("skew -1 (explicit zero) still varied capacities: agent %d %v vs %v",
				i, sc.Agent(model.AgentID(i)).Upload, up0)
		}
	}
}

// TestRegionalFleetValidation rejects malformed regional knobs.
func TestRegionalFleetValidation(t *testing.T) {
	bad := DefaultFleetConfig(1)
	bad.Regions = 2
	bad.RegionCapacitySkew = 1.5
	if _, err := GenerateSyntheticFleet(bad); err == nil {
		t.Fatal("skew ≥ 1 accepted")
	}
	bad = DefaultFleetConfig(1)
	bad.Regions = 2
	bad.CrossRegionFrac = 2
	if _, err := GenerateSyntheticFleet(bad); err == nil {
		t.Fatal("cross-region fraction > 1 accepted")
	}
	bad = DefaultFleetConfig(1)
	bad.Regions = 2
	bad.AgentBandwidthMbps = -5
	if _, err := GenerateSyntheticFleet(bad); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
}
