// Package workload generates random problem scenarios matching the paper's
// evaluation setups: the prototype-scale mix of §V-A (6 agents, 10 sessions
// of 3–5 participants) and the Internet-scale mix of §V-B (7 EC2 agents, 200
// users drawn from 256 PlanetLab-like nodes, sessions of at most 5 users,
// four representations with 80% of users demanding 720p).
package workload

import (
	"fmt"
	"math/rand"

	"vconf/internal/model"
	"vconf/internal/netsim"
	"vconf/internal/transcode"
)

// Unlimited marks a capacity dimension as effectively infinite (Fig. 9
// sweeps one dimension while the other is unlimited).
const (
	UnlimitedMbps  = 1e12
	UnlimitedSlots = 1 << 30
)

// Config parameterizes scenario generation.
type Config struct {
	// Seed drives every random choice; identical configs generate identical
	// scenarios.
	Seed int64

	// NumAgents selects the first NumAgents sites of netsim.EC2Sites().
	NumAgents int
	// NumUserNodes is the size of the PlanetLab-like node pool (paper: 256).
	NumUserNodes int
	// NumUsers is how many users join sessions (paper: 200), drawn from the
	// node pool; nodes are reused only when NumUsers exceeds the pool.
	NumUsers int
	// MinSessionSize and MaxSessionSize bound session cardinality (paper:
	// "each session has at most 5 users"; prototype sessions have 3–5).
	MinSessionSize int
	MaxSessionSize int

	// MeanBandwidthMbps is the mean upload/download capacity per agent;
	// individual agents draw uniformly from ±30% around it. Use
	// UnlimitedMbps for the unconstrained experiments.
	MeanBandwidthMbps float64
	// MeanTranscodeSlots is the mean transcoding capacity per agent (±30%).
	// Use UnlimitedSlots for the unconstrained experiments.
	MeanTranscodeSlots int

	// UpstreamWeights and DemandWeights give the representation mix by name.
	// Demand defaults to the paper's "80% demand 720p, 20% the others".
	UpstreamWeights map[string]float64
	DemandWeights   map[string]float64

	// Sigma is the transcoding latency model; capability tiers cycle across
	// agents so σ lands in the paper's 30–60 ms band heterogeneously.
	Sigma transcode.Model

	// Net parameterizes latency synthesis.
	Net netsim.Config
}

// LargeScale returns the §V-B configuration: 7 agents, 256 nodes, 200 users,
// sessions of 2–5 users, capacities unlimited (Table II / Fig. 8 set
// capacities large; Fig. 9 overrides the swept dimension).
func LargeScale(seed int64) Config {
	return Config{
		Seed:               seed,
		NumAgents:          7,
		NumUserNodes:       256,
		NumUsers:           200,
		MinSessionSize:     2,
		MaxSessionSize:     5,
		MeanBandwidthMbps:  UnlimitedMbps,
		MeanTranscodeSlots: UnlimitedSlots,
		UpstreamWeights: map[string]float64{
			"360p": 0.05, "480p": 0.10, "720p": 0.70, "1080p": 0.15,
		},
		DemandWeights: map[string]float64{
			"360p": 0.2 / 3, "480p": 0.2 / 3, "720p": 0.8, "1080p": 0.2 / 3,
		},
		Sigma: transcode.DefaultModel(),
		Net:   netsim.DefaultConfig(seed),
	}
}

// Prototype returns the §V-A configuration: 6 agents, 10 sessions of 3–5
// participants over 10 user locations, agent capacities "large enough".
func Prototype(seed int64) Config {
	cfg := LargeScale(seed)
	cfg.NumAgents = 6
	cfg.NumUserNodes = 10
	cfg.NumUsers = 38 // ≈10 sessions × 3–5 participants; locations reused
	cfg.MinSessionSize = 3
	cfg.MaxSessionSize = 5
	return cfg
}

func (c Config) validate() error {
	if c.NumAgents < 1 || c.NumAgents > len(netsim.EC2Sites()) {
		return fmt.Errorf("workload: NumAgents %d outside [1, %d]", c.NumAgents, len(netsim.EC2Sites()))
	}
	if c.NumUserNodes < 1 {
		return fmt.Errorf("workload: NumUserNodes must be positive")
	}
	if c.NumUsers < 2 {
		return fmt.Errorf("workload: need at least 2 users")
	}
	if c.MinSessionSize < 2 || c.MaxSessionSize < c.MinSessionSize {
		return fmt.Errorf("workload: invalid session size range [%d, %d]", c.MinSessionSize, c.MaxSessionSize)
	}
	if c.MeanBandwidthMbps <= 0 || c.MeanTranscodeSlots < 0 {
		return fmt.Errorf("workload: invalid capacities")
	}
	if len(c.UpstreamWeights) == 0 || len(c.DemandWeights) == 0 {
		return fmt.Errorf("workload: missing representation mixes")
	}
	return nil
}

// Generate builds a complete scenario from the configuration.
func Generate(cfg Config) (*model.Scenario, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	reps := model.DefaultRepresentations()

	upstreamPicker, err := newRepPicker(reps, cfg.UpstreamWeights)
	if err != nil {
		return nil, err
	}
	demandPicker, err := newRepPicker(reps, cfg.DemandWeights)
	if err != nil {
		return nil, err
	}

	// Latency substrate: node pool, user placement, matrices.
	pool := netsim.GenerateUserNodes(cfg.Seed, cfg.NumUserNodes)
	perm := rng.Perm(cfg.NumUserNodes)
	userSites := make([]netsim.Site, cfg.NumUsers)
	for i := range userSites {
		userSites[i] = pool[perm[i%cfg.NumUserNodes]]
	}
	agentSites := netsim.EC2Sites()[:cfg.NumAgents]
	net, err := netsim.Generate(cfg.Net, agentSites, userSites)
	if err != nil {
		return nil, err
	}

	// Partition user IDs 0..NumUsers-1 into sessions. The partition runs
	// over a shuffled view so geographic neighbors do not cluster into the
	// same session.
	order := rng.Perm(cfg.NumUsers)
	sessionOf := make([]int, cfg.NumUsers)
	numSessions := 0
	for idx := 0; idx < cfg.NumUsers; {
		size := cfg.MinSessionSize + rng.Intn(cfg.MaxSessionSize-cfg.MinSessionSize+1)
		if rem := cfg.NumUsers - idx; size > rem {
			size = rem
		}
		sid := numSessions
		if size == 1 {
			// A leftover lone user joins the previous session instead of
			// forming a degenerate one.
			sid = numSessions - 1
		} else {
			numSessions++
		}
		for i := 0; i < size; i++ {
			sessionOf[order[idx+i]] = sid
		}
		idx += size
	}

	b := model.NewBuilder(reps)

	// Agents: heterogeneous capacities (±30% of the mean) and capability
	// tiers cycling through the transcode tiers.
	tiers := transcode.Tiers()
	for i, site := range agentSites {
		up, down := cfg.MeanBandwidthMbps, cfg.MeanBandwidthMbps
		if cfg.MeanBandwidthMbps < UnlimitedMbps {
			up = cfg.MeanBandwidthMbps * (0.7 + 0.6*rng.Float64())
			down = cfg.MeanBandwidthMbps * (0.7 + 0.6*rng.Float64())
		}
		slots := cfg.MeanTranscodeSlots
		if cfg.MeanTranscodeSlots < UnlimitedSlots {
			slots = int(float64(cfg.MeanTranscodeSlots) * (0.7 + 0.6*rng.Float64()))
			if slots < 1 {
				slots = 1
			}
		}
		tier := tiers[i%len(tiers)]
		table, err := cfg.Sigma.Table(reps, tier.Factor)
		if err != nil {
			return nil, err
		}
		b.AddAgent(model.Agent{
			Name:             site.Name,
			Site:             site.Region,
			Upload:           up,
			Download:         down,
			TranscodeSlots:   slots,
			SigmaMS:          table,
			CapabilityFactor: tier.Factor,
		})
	}

	// Sessions then users in ID order, so user IDs align with H columns.
	for s := 0; s < numSessions; s++ {
		b.AddSession(fmt.Sprintf("session-%02d", s))
	}
	for u := 0; u < cfg.NumUsers; u++ {
		b.AddUser(userSites[u].Name, model.SessionID(sessionOf[u]), upstreamPicker.pick(rng), nil)
	}

	// Demands: each user draws one demanded representation applied to every
	// incoming stream ("80% of users demand for 720p"); transcoding arises
	// exactly where the demand differs from a source's upstream.
	members := make([][]model.UserID, numSessions)
	for u := 0; u < cfg.NumUsers; u++ {
		members[sessionOf[u]] = append(members[sessionOf[u]], model.UserID(u))
	}
	demandOf := make([]model.Representation, cfg.NumUsers)
	for u := range demandOf {
		demandOf[u] = demandPicker.pick(rng)
	}
	for _, ms := range members {
		for _, dst := range ms {
			for _, src := range ms {
				if src == dst {
					continue
				}
				b.DemandFrom(dst, src, demandOf[dst])
			}
		}
	}

	b.SetInterAgentDelays(net.DMS)
	b.SetAgentUserDelays(net.HMS)
	return b.Build()
}

// repPicker draws representations from a weighted mix.
type repPicker struct {
	reps    []model.Representation
	cumProb []float64
}

func newRepPicker(reps *model.RepresentationSet, weights map[string]float64) (*repPicker, error) {
	p := &repPicker{}
	total := 0.0
	for name, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("workload: negative weight for %q", name)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("workload: representation weights sum to zero")
	}
	// Deterministic iteration: walk the representation set in order.
	acc := 0.0
	for _, r := range reps.All() {
		w, ok := weights[reps.Name(r)]
		if !ok {
			continue
		}
		acc += w / total
		p.reps = append(p.reps, r)
		p.cumProb = append(p.cumProb, acc)
	}
	if len(p.reps) == 0 {
		return nil, fmt.Errorf("workload: no weight names match the representation set")
	}
	return p, nil
}

func (p *repPicker) pick(rng *rand.Rand) model.Representation {
	x := rng.Float64()
	for i, c := range p.cumProb {
		if x < c {
			return p.reps[i]
		}
	}
	return p.reps[len(p.reps)-1]
}
