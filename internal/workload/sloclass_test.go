package workload

import (
	"testing"

	"vconf/internal/model"
)

func TestSessionClasses(t *testing.T) {
	wl := Prototype(7)
	sc, err := Generate(wl)
	if err != nil {
		t.Fatal(err)
	}
	classes := SessionClasses(sc, 0)
	if len(classes) != sc.NumSessions() {
		t.Fatalf("len = %d, want %d sessions", len(classes), sc.NumSessions())
	}
	for s, c := range classes {
		size := sc.Session(model.SessionID(s)).Size()
		want := ClassInteractive
		if size >= DefaultBroadcastMinSize {
			want = ClassBroadcast
		}
		if c != want {
			t.Fatalf("session %d (size %d) classed %d, want %d", s, size, c, want)
		}
	}

	// An explicit threshold of 1 makes every session a broadcast.
	for s, c := range SessionClasses(sc, 1) {
		if c != ClassBroadcast {
			t.Fatalf("session %d classed %d under threshold 1", s, c)
		}
	}
	if len(SLOClassNames) != 2 || SLOClassNames[ClassInteractive] != "interactive" || SLOClassNames[ClassBroadcast] != "broadcast" {
		t.Fatalf("SLOClassNames = %v", SLOClassNames)
	}
}
