package workload

import (
	"math"
	"reflect"
	"testing"
)

// diurnalTestConfig is a 2-region follow-the-sun setup: region 0 peaks at
// t = 0, region 1 half a day later, amplitude near full.
func diurnalTestConfig(seed int64) ChurnConfig {
	const numSessions = 40
	regions := make([]int, numSessions)
	for s := range regions {
		regions[s] = s % 2
	}
	return ChurnConfig{
		Seed:            seed,
		HorizonS:        4000,
		ArrivalRatePerS: 0.5,
		MeanHoldS:       30,
		NumSessions:     numSessions,
		Diurnal: &DiurnalConfig{
			DayS:          4000,
			Amplitude:     0.9,
			PeakFrac:      FollowTheSunPeaks(2),
			SessionRegion: regions,
		},
	}
}

func TestDiurnalValidation(t *testing.T) {
	base := diurnalTestConfig(1)
	cases := []func(*ChurnConfig){
		func(c *ChurnConfig) { c.Diurnal.DayS = 0 },
		func(c *ChurnConfig) { c.Diurnal.Amplitude = -0.1 },
		func(c *ChurnConfig) { c.Diurnal.Amplitude = 1.5 },
		func(c *ChurnConfig) { c.Diurnal.PeakFrac = nil },
		func(c *ChurnConfig) { c.Diurnal.SessionRegion = c.Diurnal.SessionRegion[:3] },
		func(c *ChurnConfig) { c.Diurnal.SessionRegion[7] = 9 },
	}
	for i, mutate := range cases {
		cfg := base
		d := *base.Diurnal
		d.SessionRegion = append([]int(nil), base.Diurnal.SessionRegion...)
		cfg.Diurnal = &d
		mutate(&cfg)
		if _, err := PoissonSchedule(cfg); err == nil {
			t.Fatalf("case %d: invalid diurnal config accepted", i)
		}
	}
	if _, err := PoissonSchedule(base); err != nil {
		t.Fatalf("valid diurnal config rejected: %v", err)
	}
}

func TestDiurnalDeterministicAndWellFormed(t *testing.T) {
	cfg := diurnalTestConfig(7)
	a, err := PoissonSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PoissonSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical configs generated different diurnal schedules")
	}
	if len(a) == 0 {
		t.Fatal("empty diurnal schedule")
	}
	// Well-formedness: time-ordered, sessions in range, departures only for
	// live sessions, arrivals only for idle ones.
	active := make(map[int]bool)
	last := 0.0
	for _, e := range a {
		if e.TimeS < last || e.TimeS >= cfg.HorizonS {
			t.Fatalf("event out of time order or past horizon: %+v", e)
		}
		last = e.TimeS
		if e.Session < 0 || e.Session >= cfg.NumSessions {
			t.Fatalf("event session out of range: %+v", e)
		}
		switch e.Kind {
		case EventArrival:
			if active[e.Session] {
				t.Fatalf("arrival for active session: %+v", e)
			}
			active[e.Session] = true
		case EventDeparture:
			if !active[e.Session] {
				t.Fatalf("departure for idle session: %+v", e)
			}
			active[e.Session] = false
		default:
			t.Fatalf("invalid event kind: %+v", e)
		}
	}
}

// TestDiurnalFollowTheSun checks the modulation does what it says: each
// region's arrivals concentrate in the half-day centered on its peak. With
// amplitude 0.9 the peak-half/trough-half rate ratio is (1+0.9·2/π)/(1−0.9·2/π)
// ≈ 3.6, so a 1.8× observed ratio is a conservative assertion for a seeded
// schedule.
func TestDiurnalFollowTheSun(t *testing.T) {
	cfg := diurnalTestConfig(11)
	events, err := PoissonSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	day := cfg.Diurnal.DayS
	peakCount := [2]int{}
	troughCount := [2]int{}
	total := 0
	for _, e := range events {
		if e.Kind != EventArrival {
			continue
		}
		total++
		r := cfg.Diurnal.SessionRegion[e.Session]
		// Phase distance from the region's peak, in day fractions.
		phase := math.Mod(e.TimeS/day-cfg.Diurnal.PeakFrac[r]+1.5, 1) - 0.5
		if math.Abs(phase) < 0.25 {
			peakCount[r]++
		} else {
			troughCount[r]++
		}
	}
	if total < 200 {
		t.Fatalf("too few arrivals (%d) for a meaningful modulation check", total)
	}
	for r := 0; r < 2; r++ {
		if peakCount[r] < 2*troughCount[r] {
			t.Fatalf("region %d arrivals not follow-the-sun: peak-half %d, trough-half %d",
				r, peakCount[r], troughCount[r])
		}
	}
}

// TestDiurnalLegacyPathUntouched pins that a nil Diurnal still routes
// through the homogeneous generator (determinism + shape).
func TestDiurnalLegacyPathUntouched(t *testing.T) {
	cfg := diurnalTestConfig(13)
	cfg.Diurnal = nil
	a, err := PoissonSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PoissonSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("homogeneous schedule not deterministic")
	}
}

// TestDiurnalZeroSessionRegion pins the zero-pool guard: a region
// configured with no sessions (w_r = 0) is excluded from the candidate draw
// entirely — including the float-rounding fallback — and the schedule stays
// well-formed with no NaN arithmetic anywhere.
func TestDiurnalZeroSessionRegion(t *testing.T) {
	cfg := diurnalTestConfig(9)
	// Three regions, but every session maps to regions 0 and 1: region 2
	// has an empty pool and zero share.
	cfg.Diurnal.PeakFrac = FollowTheSunPeaks(3)
	events, err := PoissonSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty schedule")
	}
	for i, e := range events {
		if math.IsNaN(e.TimeS) || math.IsInf(e.TimeS, 0) {
			t.Fatalf("event %d has invalid time %v", i, e.TimeS)
		}
		if r := cfg.Diurnal.SessionRegion[e.Session]; r == 2 {
			t.Fatalf("event %d drew session %d from the empty region", i, e.Session)
		}
	}

	// The share table must exclude zero-pool regions outright, and the
	// fallback draw (u beyond the last cumulative share, reachable through
	// float rounding) must land on a drawable region — never the empty one.
	poolSize := []int{1, 1, 1, 1, 1, 1, 1, 0}
	drawRegions, cumShare := diurnalShares(poolSize, 7)
	if want := []int{0, 1, 2, 3, 4, 5, 6}; !reflect.DeepEqual(drawRegions, want) {
		t.Fatalf("drawRegions = %v, want %v", drawRegions, want)
	}
	if last := cumShare[len(cumShare)-1]; last >= 1 {
		t.Fatalf("fixture does not exercise the rounding gap: final share %v", last)
	}
	if r := pickRegion(drawRegions, cumShare, math.Nextafter(1, 0)); r != 6 {
		t.Fatalf("fallback draw picked region %d, want the last drawable region 6", r)
	}
	// Interior zero-pool region: shares are flat across it, so it is
	// unreachable for every u.
	drawRegions, cumShare = diurnalShares([]int{2, 0, 2}, 4)
	if want := []int{0, 2}; !reflect.DeepEqual(drawRegions, want) {
		t.Fatalf("drawRegions = %v, want %v", drawRegions, want)
	}
	for _, u := range []float64{0, 0.25, 0.499, 0.5, 0.75, 0.999, math.Nextafter(1, 0)} {
		if r := pickRegion(drawRegions, cumShare, u); r == 1 {
			t.Fatalf("u=%v drew the zero-session region", u)
		}
	}

	// RegionRate must be total (flat curve) even on a hand-built config
	// with a non-positive day length, rather than dividing by zero.
	d := DiurnalConfig{DayS: 0, Amplitude: 0.5, PeakFrac: []float64{0}}
	if r := d.RegionRate(0, 123); r != 1 || math.IsNaN(r) {
		t.Fatalf("RegionRate with DayS=0 = %v, want flat 1", r)
	}
}

// TestDiurnalPopulatedRegionsUnchanged pins that the zero-pool guard does
// not perturb fully-populated configurations: the share table is identical
// to the pre-guard construction, so existing seeds replay byte-identical
// schedules.
func TestDiurnalPopulatedRegionsUnchanged(t *testing.T) {
	poolSize := []int{3, 1, 4}
	drawRegions, cumShare := diurnalShares(poolSize, 8)
	if want := []int{0, 1, 2}; !reflect.DeepEqual(drawRegions, want) {
		t.Fatalf("drawRegions = %v, want %v", drawRegions, want)
	}
	acc := 0.0
	for r, n := range poolSize {
		acc += float64(n) / 8
		if cumShare[r] != acc {
			t.Fatalf("cumShare[%d] = %v, want %v", r, cumShare[r], acc)
		}
	}
}

func TestGenerateSyntheticFleetRegions(t *testing.T) {
	fc := DefaultFleetConfig(3)
	fc.NumAgents = 16
	fc.NumUsers = 60
	fc.Regions = 4
	sc, regions, err := GenerateSyntheticFleetRegions(fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != sc.NumSessions() {
		t.Fatalf("regions cover %d of %d sessions", len(regions), sc.NumSessions())
	}
	seen := map[int]bool{}
	for s, r := range regions {
		if r < 0 || r >= fc.Regions {
			t.Fatalf("session %d homed in region %d outside [0, %d)", s, r, fc.Regions)
		}
		seen[r] = true
	}
	if len(seen) < 2 {
		t.Fatalf("population-weighted homing collapsed to %d region(s)", len(seen))
	}
	// The regional scenario itself must be identical to the regions-less
	// entry point (same seed, same RNG draws).
	sc2, err := GenerateSyntheticFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumSessions() != sc2.NumSessions() || sc.NumUsers() != sc2.NumUsers() {
		t.Fatal("GenerateSyntheticFleet diverged from GenerateSyntheticFleetRegions")
	}
	// Legacy uniform mode: all zeros.
	fc.Regions = 0
	_, regions, err = GenerateSyntheticFleetRegions(fc)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regions {
		if r != 0 {
			t.Fatal("uniform fleet reported a nonzero home region")
		}
	}
}
