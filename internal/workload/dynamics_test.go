package workload

import (
	"math"
	"reflect"
	"testing"
)

// diurnalTestConfig is a 2-region follow-the-sun setup: region 0 peaks at
// t = 0, region 1 half a day later, amplitude near full.
func diurnalTestConfig(seed int64) ChurnConfig {
	const numSessions = 40
	regions := make([]int, numSessions)
	for s := range regions {
		regions[s] = s % 2
	}
	return ChurnConfig{
		Seed:            seed,
		HorizonS:        4000,
		ArrivalRatePerS: 0.5,
		MeanHoldS:       30,
		NumSessions:     numSessions,
		Diurnal: &DiurnalConfig{
			DayS:          4000,
			Amplitude:     0.9,
			PeakFrac:      FollowTheSunPeaks(2),
			SessionRegion: regions,
		},
	}
}

func TestDiurnalValidation(t *testing.T) {
	base := diurnalTestConfig(1)
	cases := []func(*ChurnConfig){
		func(c *ChurnConfig) { c.Diurnal.DayS = 0 },
		func(c *ChurnConfig) { c.Diurnal.Amplitude = -0.1 },
		func(c *ChurnConfig) { c.Diurnal.Amplitude = 1.5 },
		func(c *ChurnConfig) { c.Diurnal.PeakFrac = nil },
		func(c *ChurnConfig) { c.Diurnal.SessionRegion = c.Diurnal.SessionRegion[:3] },
		func(c *ChurnConfig) { c.Diurnal.SessionRegion[7] = 9 },
	}
	for i, mutate := range cases {
		cfg := base
		d := *base.Diurnal
		d.SessionRegion = append([]int(nil), base.Diurnal.SessionRegion...)
		cfg.Diurnal = &d
		mutate(&cfg)
		if _, err := PoissonSchedule(cfg); err == nil {
			t.Fatalf("case %d: invalid diurnal config accepted", i)
		}
	}
	if _, err := PoissonSchedule(base); err != nil {
		t.Fatalf("valid diurnal config rejected: %v", err)
	}
}

func TestDiurnalDeterministicAndWellFormed(t *testing.T) {
	cfg := diurnalTestConfig(7)
	a, err := PoissonSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PoissonSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical configs generated different diurnal schedules")
	}
	if len(a) == 0 {
		t.Fatal("empty diurnal schedule")
	}
	// Well-formedness: time-ordered, sessions in range, departures only for
	// live sessions, arrivals only for idle ones.
	active := make(map[int]bool)
	last := 0.0
	for _, e := range a {
		if e.TimeS < last || e.TimeS >= cfg.HorizonS {
			t.Fatalf("event out of time order or past horizon: %+v", e)
		}
		last = e.TimeS
		if e.Session < 0 || e.Session >= cfg.NumSessions {
			t.Fatalf("event session out of range: %+v", e)
		}
		switch e.Kind {
		case EventArrival:
			if active[e.Session] {
				t.Fatalf("arrival for active session: %+v", e)
			}
			active[e.Session] = true
		case EventDeparture:
			if !active[e.Session] {
				t.Fatalf("departure for idle session: %+v", e)
			}
			active[e.Session] = false
		default:
			t.Fatalf("invalid event kind: %+v", e)
		}
	}
}

// TestDiurnalFollowTheSun checks the modulation does what it says: each
// region's arrivals concentrate in the half-day centered on its peak. With
// amplitude 0.9 the peak-half/trough-half rate ratio is (1+0.9·2/π)/(1−0.9·2/π)
// ≈ 3.6, so a 1.8× observed ratio is a conservative assertion for a seeded
// schedule.
func TestDiurnalFollowTheSun(t *testing.T) {
	cfg := diurnalTestConfig(11)
	events, err := PoissonSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	day := cfg.Diurnal.DayS
	peakCount := [2]int{}
	troughCount := [2]int{}
	total := 0
	for _, e := range events {
		if e.Kind != EventArrival {
			continue
		}
		total++
		r := cfg.Diurnal.SessionRegion[e.Session]
		// Phase distance from the region's peak, in day fractions.
		phase := math.Mod(e.TimeS/day-cfg.Diurnal.PeakFrac[r]+1.5, 1) - 0.5
		if math.Abs(phase) < 0.25 {
			peakCount[r]++
		} else {
			troughCount[r]++
		}
	}
	if total < 200 {
		t.Fatalf("too few arrivals (%d) for a meaningful modulation check", total)
	}
	for r := 0; r < 2; r++ {
		if peakCount[r] < 2*troughCount[r] {
			t.Fatalf("region %d arrivals not follow-the-sun: peak-half %d, trough-half %d",
				r, peakCount[r], troughCount[r])
		}
	}
}

// TestDiurnalLegacyPathUntouched pins that a nil Diurnal still routes
// through the homogeneous generator (determinism + shape).
func TestDiurnalLegacyPathUntouched(t *testing.T) {
	cfg := diurnalTestConfig(13)
	cfg.Diurnal = nil
	a, err := PoissonSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PoissonSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("homogeneous schedule not deterministic")
	}
}

func TestGenerateSyntheticFleetRegions(t *testing.T) {
	fc := DefaultFleetConfig(3)
	fc.NumAgents = 16
	fc.NumUsers = 60
	fc.Regions = 4
	sc, regions, err := GenerateSyntheticFleetRegions(fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != sc.NumSessions() {
		t.Fatalf("regions cover %d of %d sessions", len(regions), sc.NumSessions())
	}
	seen := map[int]bool{}
	for s, r := range regions {
		if r < 0 || r >= fc.Regions {
			t.Fatalf("session %d homed in region %d outside [0, %d)", s, r, fc.Regions)
		}
		seen[r] = true
	}
	if len(seen) < 2 {
		t.Fatalf("population-weighted homing collapsed to %d region(s)", len(seen))
	}
	// The regional scenario itself must be identical to the regions-less
	// entry point (same seed, same RNG draws).
	sc2, err := GenerateSyntheticFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumSessions() != sc2.NumSessions() || sc.NumUsers() != sc2.NumUsers() {
		t.Fatal("GenerateSyntheticFleet diverged from GenerateSyntheticFleetRegions")
	}
	// Legacy uniform mode: all zeros.
	fc.Regions = 0
	_, regions, err = GenerateSyntheticFleetRegions(fc)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regions {
		if r != 0 {
			t.Fatal("uniform fleet reported a nonzero home region")
		}
	}
}
