package workload

// Lazy, pull-based churn generation for the virtual-clock engine
// (internal/sim): NewChurnSource yields the exact event stream
// PoissonSchedule would return — byte-identical per seed, pinned by
// differential tests — without ever materializing the slice, so a
// 10M-event day holds only O(in-flight sessions) of state.
//
// The equivalence hinges on preserving the eager paths' RNG draw order
// exactly. Homogeneous: inter-arrival gap, then (only when the arrival is
// admitted) its hold time. Diurnal: gap, region pick, thinning acceptance
// and hold are drawn as one block per candidate — the eager code draws the
// hold even for rejected candidates, before flushing the departure heap,
// and the lazy path must too.

import (
	"container/heap"
	"math/rand"
)

// ChurnSource is a lazy generator of the churn event stream: each Next call
// produces the next event in time order, drawing from the RNG only as far
// as needed. It satisfies the sim.EventSource contract.
type ChurnSource struct {
	next func() (Event, bool)
}

// Next returns the next churn event in time order, or ok=false once the
// horizon is exhausted.
func (s *ChurnSource) Next() (Event, bool) { return s.next() }

// Err reports a stream failure. Churn generation is infallible after
// configuration validation, so it always returns nil; the method exists to
// satisfy the EventSource contract shared with trace replayers.
func (s *ChurnSource) Err() error { return nil }

// NewChurnSource builds the lazy equivalent of PoissonSchedule(cfg):
// the returned source yields exactly the events the eager call would
// return, in the same order, from the same seed.
func NewChurnSource(cfg ChurnConfig) (*ChurnSource, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Diurnal != nil {
		return &ChurnSource{next: newDiurnalState(cfg).next}, nil
	}
	return &ChurnSource{next: newPoissonState(cfg).next}, nil
}

// poissonState is the homogeneous generator's suspended loop: the eager
// code's locals (rng, idle pool, departure heap, candidate arrival time)
// lifted into a struct so the loop can return one event at a time.
type poissonState struct {
	cfg  ChurnConfig
	rng  *rand.Rand
	idle []int
	deps departureHeap
	// t is the candidate arrival time; drawn means it is pending (drawn but
	// not yet emitted or dropped), done means arrivals are exhausted.
	t     float64
	drawn bool
	done  bool
}

func newPoissonState(cfg ChurnConfig) *poissonState {
	st := &poissonState{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	st.idle = make([]int, 0, cfg.NumSessions)
	for s := cfg.InitialActive; s < cfg.NumSessions; s++ {
		st.idle = append(st.idle, s)
	}
	for s := 0; s < cfg.InitialActive; s++ {
		heap.Push(&st.deps, departure{timeS: st.rng.ExpFloat64() * cfg.MeanHoldS, session: s})
	}
	return st
}

func (st *poissonState) next() (Event, bool) {
	for {
		// Advance the candidate arrival if none is pending — the same
		// single draw the eager loop makes at its top.
		if !st.done && !st.drawn {
			st.t += st.rng.ExpFloat64() / st.cfg.ArrivalRatePerS
			if st.t >= st.cfg.HorizonS {
				st.done = true
			} else {
				st.drawn = true
			}
		}
		// Departures due before the candidate (or before the horizon, once
		// arrivals are exhausted) come first — the flushUntil of the eager
		// path, emitted one at a time.
		limit := st.cfg.HorizonS
		if !st.done {
			limit = st.t
		}
		if len(st.deps) > 0 && st.deps[0].timeS <= limit {
			d := heap.Pop(&st.deps).(departure)
			if d.timeS >= st.cfg.HorizonS {
				continue
			}
			st.idle = append(st.idle, d.session)
			return Event{TimeS: d.timeS, Kind: EventDeparture, Session: d.session}, true
		}
		if st.done {
			return Event{}, false
		}
		// The candidate's turn: admit from the idle pool or drop.
		st.drawn = false
		if len(st.idle) == 0 {
			continue // pool exhausted: drop this arrival
		}
		s := st.idle[0]
		st.idle = st.idle[1:]
		heap.Push(&st.deps, departure{timeS: st.t + st.rng.ExpFloat64()*st.cfg.MeanHoldS, session: s})
		return Event{TimeS: st.t, Kind: EventArrival, Session: s}, true
	}
}

// diurnalState suspends diurnalSchedule's loop. A candidate is the block
// (arrival time, region, thinning acceptance, hold) drawn together before
// any heap flush, exactly as the eager code does.
type diurnalState struct {
	cfg         ChurnConfig
	rng         *rand.Rand
	drawRegions []int
	cumShare    []float64
	maxRate     float64
	idle        [][]int
	deps        departureHeap

	t          float64
	candRegion int
	candAccept bool
	candHold   float64
	drawn      bool
	done       bool
}

func newDiurnalState(cfg ChurnConfig) *diurnalState {
	d := cfg.Diurnal
	st := &diurnalState{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	R := len(d.PeakFrac)
	poolSize := make([]int, R)
	for s := 0; s < cfg.NumSessions; s++ {
		poolSize[d.SessionRegion[s]]++
	}
	st.drawRegions, st.cumShare = diurnalShares(poolSize, cfg.NumSessions)
	st.idle = make([][]int, R)
	for s := 0; s < cfg.NumSessions; s++ {
		if s < cfg.InitialActive {
			heap.Push(&st.deps, departure{timeS: st.rng.ExpFloat64() * cfg.MeanHoldS, session: s})
		} else {
			r := d.SessionRegion[s]
			st.idle[r] = append(st.idle[r], s)
		}
	}
	st.maxRate = cfg.ArrivalRatePerS * (1 + d.Amplitude)
	return st
}

func (st *diurnalState) next() (Event, bool) {
	d := st.cfg.Diurnal
	for {
		if !st.done && !st.drawn {
			st.t += st.rng.ExpFloat64() / st.maxRate
			if st.t >= st.cfg.HorizonS {
				st.done = true
			} else {
				// Draw the candidate's region, acceptance and hold before the
				// flush, so the random sequence is a pure function of the
				// seed — same order as the eager loop.
				u := st.rng.Float64()
				st.candRegion = pickRegion(st.drawRegions, st.cumShare, u)
				st.candAccept = st.rng.Float64() < d.RegionRate(st.candRegion, st.t)/(1+d.Amplitude)
				st.candHold = st.rng.ExpFloat64() * st.cfg.MeanHoldS
				st.drawn = true
			}
		}
		limit := st.cfg.HorizonS
		if !st.done {
			limit = st.t
		}
		if len(st.deps) > 0 && st.deps[0].timeS <= limit {
			dep := heap.Pop(&st.deps).(departure)
			if dep.timeS >= st.cfg.HorizonS {
				continue
			}
			r := d.SessionRegion[dep.session]
			st.idle[r] = append(st.idle[r], dep.session)
			return Event{TimeS: dep.timeS, Kind: EventDeparture, Session: dep.session}, true
		}
		if st.done {
			return Event{}, false
		}
		st.drawn = false
		if !st.candAccept || len(st.idle[st.candRegion]) == 0 {
			continue // thinned out, or the region's pool is exhausted
		}
		s := st.idle[st.candRegion][0]
		st.idle[st.candRegion] = st.idle[st.candRegion][1:]
		heap.Push(&st.deps, departure{timeS: st.t + st.candHold, session: s})
		return Event{TimeS: st.t, Kind: EventArrival, Session: s}, true
	}
}
