package workload

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// EventKind distinguishes churn events.
type EventKind int

// Churn event kinds.
const (
	EventArrival EventKind = iota + 1
	EventDeparture
)

// Event is one session arrival or departure at a virtual time.
type Event struct {
	TimeS   float64
	Kind    EventKind
	Session int
}

// ChurnConfig parameterizes a Poisson session-churn process — the
// continuous generalization of Fig. 5's fixed batches, for stressing the
// chain's adaptivity claims (§IV-A-4: "robust to variations due to session
// dynamics").
type ChurnConfig struct {
	Seed int64
	// HorizonS is the schedule length in virtual seconds.
	HorizonS float64
	// ArrivalRatePerS is the Poisson arrival rate λ.
	ArrivalRatePerS float64
	// MeanHoldS is the mean session lifetime (exponential).
	MeanHoldS float64
	// NumSessions bounds the session pool; an arrival is dropped when every
	// session of the scenario is already active.
	NumSessions int
	// InitialActive sessions are active at t = 0 (their departures are
	// scheduled like everyone else's).
	InitialActive int
	// Diurnal, when non-nil, modulates arrivals with per-region time-of-day
	// rate curves (follow-the-sun load). Nil keeps the homogeneous Poisson
	// generator, byte-identical per seed.
	Diurnal *DiurnalConfig
}

// DiurnalConfig turns the homogeneous arrival process into a
// non-homogeneous one with a per-region time-of-day rate curve: region r
// arrives at rate λ·w_r·(1 + A·cos(2π(t/DayS − PeakFrac[r]))), where w_r is
// the region's share of the session pool — so each region's load peaks at
// its own local afternoon and troughs half a (virtual) day away, the
// follow-the-sun shape of real conferencing fleets. Implemented by exact
// Poisson thinning, so schedules stay deterministic per seed.
type DiurnalConfig struct {
	// DayS is the virtual day length in seconds (the curve's period).
	DayS float64
	// Amplitude A ∈ [0, 1]: rates swing between (1−A)·λ_r and (1+A)·λ_r.
	Amplitude float64
	// PeakFrac[r] is region r's peak time as a fraction of the day;
	// FollowTheSunPeaks staggers them evenly.
	PeakFrac []float64
	// SessionRegion maps every scenario session ID (0..NumSessions-1) to a
	// region index into PeakFrac — GenerateSyntheticFleetRegions produces
	// this alongside regional fleets.
	SessionRegion []int
}

// FollowTheSunPeaks returns n regional peak fractions staggered evenly
// across the day — region i peaks at i/n of a day, the canonical
// follow-the-sun configuration.
func FollowTheSunPeaks(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) / float64(n)
	}
	return out
}

// RegionRate returns region r's instantaneous rate multiplier at time t.
// A non-positive DayS (rejected by Validate, but reachable through a
// hand-built config) yields a flat curve instead of dividing by zero.
func (d DiurnalConfig) RegionRate(r int, t float64) float64 {
	if d.DayS <= 0 {
		return 1
	}
	return 1 + d.Amplitude*math.Cos(2*math.Pi*(t/d.DayS-d.PeakFrac[r]))
}

func (d DiurnalConfig) validate(numSessions int) error {
	if d.DayS <= 0 {
		return fmt.Errorf("workload: diurnal day length must be positive")
	}
	if d.Amplitude < 0 || d.Amplitude > 1 {
		return fmt.Errorf("workload: diurnal amplitude %v outside [0, 1]", d.Amplitude)
	}
	if len(d.PeakFrac) < 1 {
		return fmt.Errorf("workload: diurnal config needs at least one region peak")
	}
	if len(d.SessionRegion) < numSessions {
		return fmt.Errorf("workload: diurnal session-region map covers %d of %d sessions",
			len(d.SessionRegion), numSessions)
	}
	for s, r := range d.SessionRegion[:numSessions] {
		if r < 0 || r >= len(d.PeakFrac) {
			return fmt.Errorf("workload: session %d mapped to region %d outside [0, %d)",
				s, r, len(d.PeakFrac))
		}
	}
	return nil
}

// Validate checks the configuration.
func (c ChurnConfig) Validate() error {
	if c.HorizonS <= 0 || c.ArrivalRatePerS <= 0 || c.MeanHoldS <= 0 {
		return fmt.Errorf("workload: churn horizon, rate and hold time must be positive")
	}
	if c.NumSessions < 1 || c.InitialActive < 0 || c.InitialActive > c.NumSessions {
		return fmt.Errorf("workload: invalid session counts %d/%d", c.InitialActive, c.NumSessions)
	}
	if c.Diurnal != nil {
		return c.Diurnal.validate(c.NumSessions)
	}
	return nil
}

// departure is a heap entry.
type departure struct {
	timeS   float64
	session int
}

type departureHeap []departure

func (h departureHeap) Len() int            { return len(h) }
func (h departureHeap) Less(i, j int) bool  { return h[i].timeS < h[j].timeS }
func (h departureHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *departureHeap) Push(x interface{}) { *h = append(*h, x.(departure)) }
func (h *departureHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// PoissonSchedule generates a deterministic (seeded) churn schedule:
// arrivals follow a Poisson process with rate λ, each session departs after
// an exponential hold time, and departed sessions return to the idle pool
// for reuse. Events are returned in time order; every departure follows its
// matching arrival (initially-active sessions depart without a recorded
// arrival, since they are active before t = 0). With Diurnal set, arrivals
// follow the per-region time-of-day curves instead (see diurnalSchedule);
// the homogeneous path is untouched and byte-identical per seed.
func PoissonSchedule(cfg ChurnConfig) ([]Event, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Diurnal != nil {
		return diurnalSchedule(cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	idle := make([]int, 0, cfg.NumSessions)
	for s := cfg.InitialActive; s < cfg.NumSessions; s++ {
		idle = append(idle, s)
	}
	var deps departureHeap
	for s := 0; s < cfg.InitialActive; s++ {
		heap.Push(&deps, departure{timeS: rng.ExpFloat64() * cfg.MeanHoldS, session: s})
	}

	var events []Event
	flushUntil := func(t float64) {
		for len(deps) > 0 && deps[0].timeS <= t {
			d := heap.Pop(&deps).(departure)
			if d.timeS >= cfg.HorizonS {
				continue
			}
			events = append(events, Event{TimeS: d.timeS, Kind: EventDeparture, Session: d.session})
			idle = append(idle, d.session)
		}
	}

	t := 0.0
	for {
		t += rng.ExpFloat64() / cfg.ArrivalRatePerS
		if t >= cfg.HorizonS {
			break
		}
		flushUntil(t)
		if len(idle) == 0 {
			continue // pool exhausted: drop this arrival
		}
		s := idle[0]
		idle = idle[1:]
		events = append(events, Event{TimeS: t, Kind: EventArrival, Session: s})
		heap.Push(&deps, departure{timeS: t + rng.ExpFloat64()*cfg.MeanHoldS, session: s})
	}
	flushUntil(cfg.HorizonS)
	return events, nil
}

// diurnalShares builds the candidate-region draw table: the regions with a
// nonzero session pool (w_r > 0) and their cumulative shares
// w_r = poolSize[r]/numSessions. Regions configured with zero sessions
// carry zero share and are excluded outright — they must never be drawn as
// a candidate, not even through the float-rounding fallback below, and
// excluding them also keeps the draw well-defined without dividing by a
// zero pool anywhere. When every region is populated the table is
// identical to the full region list, so existing seeds replay byte-identical
// schedules.
func diurnalShares(poolSize []int, numSessions int) (drawRegions []int, cumShare []float64) {
	drawRegions = make([]int, 0, len(poolSize))
	cumShare = make([]float64, 0, len(poolSize))
	acc := 0.0
	for r, n := range poolSize {
		if n == 0 {
			continue
		}
		acc += float64(n) / float64(numSessions)
		drawRegions = append(drawRegions, r)
		cumShare = append(cumShare, acc)
	}
	return drawRegions, cumShare
}

// pickRegion maps a uniform draw u ∈ [0,1) to a drawable region via the
// cumulative share table. Float accumulation can leave the final cumulative
// share marginally below 1, so the fallback for u beyond it is the last
// *drawable* region — never a zero-share one.
func pickRegion(drawRegions []int, cumShare []float64, u float64) int {
	r := drawRegions[len(drawRegions)-1]
	for i, c := range cumShare {
		if u < c {
			r = drawRegions[i]
			break
		}
	}
	return r
}

// diurnalSchedule is the Diurnal path of PoissonSchedule: a
// non-homogeneous Poisson process per region, realized by exact thinning of
// one merged candidate process. Candidates arrive at the constant peak rate
// Λmax = λ·(1+A) (region shares w_r sum to 1); each candidate picks a
// region with probability w_r and survives with probability
// M_r(t)/(1+A) — the standard thinning construction, so the surviving
// stream is exactly the target non-homogeneous process. Departures reuse
// the shared exponential-hold heap; departed sessions return to their
// region's idle pool.
func diurnalSchedule(cfg ChurnConfig) ([]Event, error) {
	d := cfg.Diurnal
	rng := rand.New(rand.NewSource(cfg.Seed))
	R := len(d.PeakFrac)

	// Region shares w_r ∝ the region's session-pool size: a region with
	// more sessions carries proportionally more of the global rate λ.
	poolSize := make([]int, R)
	for s := 0; s < cfg.NumSessions; s++ {
		poolSize[d.SessionRegion[s]]++
	}
	drawRegions, cumShare := diurnalShares(poolSize, cfg.NumSessions)

	// Per-region idle pools; sessions below InitialActive start live.
	idle := make([][]int, R)
	var deps departureHeap
	for s := 0; s < cfg.NumSessions; s++ {
		if s < cfg.InitialActive {
			heap.Push(&deps, departure{timeS: rng.ExpFloat64() * cfg.MeanHoldS, session: s})
		} else {
			r := d.SessionRegion[s]
			idle[r] = append(idle[r], s)
		}
	}

	var events []Event
	flushUntil := func(t float64) {
		for len(deps) > 0 && deps[0].timeS <= t {
			dep := heap.Pop(&deps).(departure)
			if dep.timeS >= cfg.HorizonS {
				continue
			}
			events = append(events, Event{TimeS: dep.timeS, Kind: EventDeparture, Session: dep.session})
			r := d.SessionRegion[dep.session]
			idle[r] = append(idle[r], dep.session)
		}
	}

	maxRate := cfg.ArrivalRatePerS * (1 + d.Amplitude)
	t := 0.0
	for {
		t += rng.ExpFloat64() / maxRate
		if t >= cfg.HorizonS {
			break
		}
		// Draw the candidate's region and thinning acceptance before the
		// flush, so the random sequence is a pure function of the seed.
		u := rng.Float64()
		r := pickRegion(drawRegions, cumShare, u)
		accept := rng.Float64() < d.RegionRate(r, t)/(1+d.Amplitude)
		hold := rng.ExpFloat64() * cfg.MeanHoldS
		flushUntil(t)
		if !accept || len(idle[r]) == 0 {
			continue // thinned out, or the region's pool is exhausted
		}
		s := idle[r][0]
		idle[r] = idle[r][1:]
		events = append(events, Event{TimeS: t, Kind: EventArrival, Session: s})
		heap.Push(&deps, departure{timeS: t + hold, session: s})
	}
	flushUntil(cfg.HorizonS)
	return events, nil
}
