package workload

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// EventKind distinguishes churn events.
type EventKind int

// Churn event kinds.
const (
	EventArrival EventKind = iota + 1
	EventDeparture
)

// Event is one session arrival or departure at a virtual time.
type Event struct {
	TimeS   float64
	Kind    EventKind
	Session int
}

// ChurnConfig parameterizes a Poisson session-churn process — the
// continuous generalization of Fig. 5's fixed batches, for stressing the
// chain's adaptivity claims (§IV-A-4: "robust to variations due to session
// dynamics").
type ChurnConfig struct {
	Seed int64
	// HorizonS is the schedule length in virtual seconds.
	HorizonS float64
	// ArrivalRatePerS is the Poisson arrival rate λ.
	ArrivalRatePerS float64
	// MeanHoldS is the mean session lifetime (exponential).
	MeanHoldS float64
	// NumSessions bounds the session pool; an arrival is dropped when every
	// session of the scenario is already active.
	NumSessions int
	// InitialActive sessions are active at t = 0 (their departures are
	// scheduled like everyone else's).
	InitialActive int
}

// Validate checks the configuration.
func (c ChurnConfig) Validate() error {
	if c.HorizonS <= 0 || c.ArrivalRatePerS <= 0 || c.MeanHoldS <= 0 {
		return fmt.Errorf("workload: churn horizon, rate and hold time must be positive")
	}
	if c.NumSessions < 1 || c.InitialActive < 0 || c.InitialActive > c.NumSessions {
		return fmt.Errorf("workload: invalid session counts %d/%d", c.InitialActive, c.NumSessions)
	}
	return nil
}

// departure is a heap entry.
type departure struct {
	timeS   float64
	session int
}

type departureHeap []departure

func (h departureHeap) Len() int            { return len(h) }
func (h departureHeap) Less(i, j int) bool  { return h[i].timeS < h[j].timeS }
func (h departureHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *departureHeap) Push(x interface{}) { *h = append(*h, x.(departure)) }
func (h *departureHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// PoissonSchedule generates a deterministic (seeded) churn schedule:
// arrivals follow a Poisson process with rate λ, each session departs after
// an exponential hold time, and departed sessions return to the idle pool
// for reuse. Events are returned in time order; every departure follows its
// matching arrival (initially-active sessions depart without a recorded
// arrival, since they are active before t = 0).
func PoissonSchedule(cfg ChurnConfig) ([]Event, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	idle := make([]int, 0, cfg.NumSessions)
	for s := cfg.InitialActive; s < cfg.NumSessions; s++ {
		idle = append(idle, s)
	}
	var deps departureHeap
	for s := 0; s < cfg.InitialActive; s++ {
		heap.Push(&deps, departure{timeS: rng.ExpFloat64() * cfg.MeanHoldS, session: s})
	}

	var events []Event
	flushUntil := func(t float64) {
		for len(deps) > 0 && deps[0].timeS <= t {
			d := heap.Pop(&deps).(departure)
			if d.timeS >= cfg.HorizonS {
				continue
			}
			events = append(events, Event{TimeS: d.timeS, Kind: EventDeparture, Session: d.session})
			idle = append(idle, d.session)
		}
	}

	t := 0.0
	for {
		t += rng.ExpFloat64() / cfg.ArrivalRatePerS
		if t >= cfg.HorizonS {
			break
		}
		flushUntil(t)
		if len(idle) == 0 {
			continue // pool exhausted: drop this arrival
		}
		s := idle[0]
		idle = idle[1:]
		events = append(events, Event{TimeS: t, Kind: EventArrival, Session: s})
		heap.Push(&deps, departure{timeS: t + rng.ExpFloat64()*cfg.MeanHoldS, session: s})
	}
	flushUntil(cfg.HorizonS)
	return events, nil
}
