package workload

// Versioned JSON encoding for Event — the wire format of recorded traces
// (internal/sim). Events do not carry the version themselves (a 10M-line
// trace would repeat it 10M times); the enclosing container embeds
// EventSchemaVersion in its header and rejects mismatches. Zero-valued
// fields are omitted: every omitted field unmarshals back to its zero
// value, so marshal→unmarshal is an exact round trip (Go emits float64 in
// shortest round-trippable form), pinned by the golden-file test.

import (
	"encoding/json"
	"fmt"
)

// EventSchemaVersion is the version of Event's JSON schema, embedded in
// trace headers. Bump it on any field or kind-name change.
const EventSchemaVersion = 1

// eventJSON is the schema-v1 wire shape. Kind travels as its String() name
// so traces stay greppable and robust to enum renumbering.
type eventJSON struct {
	TimeS    float64 `json:"t,omitempty"`
	Kind     string  `json:"k"`
	Session  int     `json:"s,omitempty"`
	Agent    int     `json:"a,omitempty"`
	Region   int     `json:"r,omitempty"`
	Scale    float64 `json:"sc,omitempty"`
	Incident int     `json:"i,omitempty"`
	Rank     int     `json:"rk,omitempty"`
}

// kindNames maps the wire names back to kinds (inverse of EventKind.String).
var kindNames = map[string]EventKind{
	"arrive":         EventArrival,
	"depart":         EventDeparture,
	"agent-fail":     EventAgentFail,
	"agent-recover":  EventAgentRecover,
	"region-outage":  EventRegionOutage,
	"region-recover": EventRegionRecover,
	"degrade":        EventCapacityDegrade,
	"flash-crowd":    EventFlashCrowd,
}

// MarshalJSON encodes the event in the schema-v1 wire shape. Unknown kinds
// are an error: they would round-trip as "unknown" and decode to nothing.
func (e Event) MarshalJSON() ([]byte, error) {
	name := e.Kind.String()
	if _, ok := kindNames[name]; !ok {
		return nil, fmt.Errorf("workload: cannot marshal unknown event kind %d", e.Kind)
	}
	return json.Marshal(eventJSON{
		TimeS:    e.TimeS,
		Kind:     name,
		Session:  e.Session,
		Agent:    e.Agent,
		Region:   e.Region,
		Scale:    e.Scale,
		Incident: e.Incident,
		Rank:     e.Rank,
	})
}

// UnmarshalJSON decodes the schema-v1 wire shape.
func (e *Event) UnmarshalJSON(b []byte) error {
	var w eventJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	k, ok := kindNames[w.Kind]
	if !ok {
		return fmt.Errorf("workload: unknown event kind %q", w.Kind)
	}
	*e = Event{
		TimeS:    w.TimeS,
		Kind:     k,
		Session:  w.Session,
		Agent:    w.Agent,
		Region:   w.Region,
		Scale:    w.Scale,
		Incident: w.Incident,
		Rank:     w.Rank,
	}
	return nil
}
