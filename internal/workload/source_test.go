package workload

import (
	"reflect"
	"testing"
)

// collect drains a lazy source into a slice for comparison against the
// eager generators.
func collect(t *testing.T, src *ChurnSource) []Event {
	t.Helper()
	var out []Event
	prev := -1.0
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if e.TimeS < prev {
			t.Fatalf("lazy source emitted out of order: %v after %v", e.TimeS, prev)
		}
		prev = e.TimeS
		out = append(out, e)
	}
	if err := src.Err(); err != nil {
		t.Fatalf("lazy source error: %v", err)
	}
	return out
}

// TestLazyPoissonDifferential pins the tentpole equivalence: the lazy
// homogeneous source yields byte-for-byte the schedule PoissonSchedule
// materializes, across seeds and pool regimes (including pool exhaustion,
// which exercises the dropped-arrival path's draw order).
func TestLazyPoissonDifferential(t *testing.T) {
	cfgs := []ChurnConfig{
		{Seed: 1, HorizonS: 500, ArrivalRatePerS: 0.4, MeanHoldS: 60, NumSessions: 30},
		{Seed: 2, HorizonS: 800, ArrivalRatePerS: 2.0, MeanHoldS: 200, NumSessions: 8}, // pool exhaustion
		{Seed: 3, HorizonS: 300, ArrivalRatePerS: 0.2, MeanHoldS: 40, NumSessions: 20, InitialActive: 12},
		{Seed: 4, HorizonS: 50, ArrivalRatePerS: 0.01, MeanHoldS: 10, NumSessions: 4}, // likely empty
		{Seed: 5, HorizonS: 1000, ArrivalRatePerS: 1.0, MeanHoldS: 5, NumSessions: 50, InitialActive: 50},
	}
	for i, cfg := range cfgs {
		eager, err := PoissonSchedule(cfg)
		if err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
		src, err := NewChurnSource(cfg)
		if err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
		lazy := collect(t, src)
		if !reflect.DeepEqual(eager, lazy) {
			t.Fatalf("cfg %d: lazy stream diverges from eager schedule (%d vs %d events)",
				i, len(lazy), len(eager))
		}
	}
}

// TestLazyDiurnalDifferential is the same pin for the thinned
// non-homogeneous path, whose draw block (gap, region, acceptance, hold)
// must stay a pure function of the seed.
func TestLazyDiurnalDifferential(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := diurnalTestConfig(seed)
		if seed%2 == 0 {
			cfg.InitialActive = 10
		}
		eager, err := PoissonSchedule(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src, err := NewChurnSource(cfg)
		if err != nil {
			t.Fatal(err)
		}
		lazy := collect(t, src)
		if !reflect.DeepEqual(eager, lazy) {
			t.Fatalf("seed %d: lazy diurnal stream diverges from eager schedule (%d vs %d events)",
				seed, len(lazy), len(eager))
		}
	}
}

// TestLazySourceRejectsInvalidConfig mirrors the eager validation.
func TestLazySourceRejectsInvalidConfig(t *testing.T) {
	if _, err := NewChurnSource(ChurnConfig{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestEventBeforeTieBreak pins the merged-schedule tie-breaking contract
// (satellite of the virtual-clock PR): order is (TimeS, Rank), churn before
// faults on equal timestamps, regardless of which operand carries which.
func TestEventBeforeTieBreak(t *testing.T) {
	churn := Event{TimeS: 5, Kind: EventArrival, Session: 1, Rank: RankChurn}
	fault := Event{TimeS: 5, Kind: EventAgentFail, Session: -1, Agent: 2, Rank: RankFaults}
	if !churn.Before(fault) {
		t.Fatal("churn event must precede a fault event at the same timestamp")
	}
	if fault.Before(churn) {
		t.Fatal("fault event must not precede a churn event at the same timestamp")
	}
	early := Event{TimeS: 4, Kind: EventAgentFail, Rank: RankFaults}
	if !early.Before(churn) || churn.Before(early) {
		t.Fatal("time must dominate rank")
	}
	// Full-key ties order by producer; Before is strict, so neither sorts
	// strictly before the other.
	a := Event{TimeS: 5, Kind: EventArrival, Session: 1}
	b := Event{TimeS: 5, Kind: EventDeparture, Session: 2}
	if a.Before(b) || b.Before(a) {
		t.Fatal("full-key ties must not order strictly")
	}
}
