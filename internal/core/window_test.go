package core

import (
	"math"
	"math/rand"
	"testing"

	"vconf/internal/cost"
	"vconf/internal/model"
)

// TestHopSessionNeighborWindowFullMatchesOff: a window covering the whole
// fleet must reproduce the unwindowed hop sequence bit for bit — same
// decisions, same objectives, same ledger state — over a long replay.
func TestHopSessionNeighborWindowFullMatchesOff(t *testing.T) {
	ev, aOff, ledgerOff := allocFixture(t, 6)
	_, aWin, ledgerWin := allocFixture(t, 6)
	sessions := ev.Scenario().NumSessions()

	cfgOff := DefaultConfig(6)
	cfgWin := DefaultConfig(6)
	cfgWin.NeighborWindow = ev.Scenario().NumAgents()

	rngOff := rand.New(rand.NewSource(99))
	rngWin := rand.New(rand.NewSource(99))
	scrOff := NewHopScratch(ev)
	scrWin := NewHopScratch(ev)
	for i := 0; i < 300; i++ {
		s := model.SessionID(i % sessions)
		resOff, err := HopSessionWith(aOff, s, ev, ledgerOff, cfgOff, rngOff, scrOff)
		if err != nil {
			t.Fatal(err)
		}
		resWin, err := HopSessionWith(aWin, s, ev, ledgerWin, cfgWin, rngWin, scrWin)
		if err != nil {
			t.Fatal(err)
		}
		if resOff.Moved != resWin.Moved || resOff.Decision != resWin.Decision ||
			math.Float64bits(resOff.PhiAfter) != math.Float64bits(resWin.PhiAfter) ||
			resOff.Feasible != resWin.Feasible {
			t.Fatalf("hop %d diverged: off %+v, windowed %+v", i, resOff, resWin)
		}
	}
	// The fixtures are distinct scenario instances; compare encodings.
	if aOff.Encode() != aWin.Encode() {
		t.Fatal("assignments diverged under a full-fleet window")
	}
}

// TestHopSessionNeighborWindowPruned: with a small window the chain still
// runs, stays capacity- and delay-feasible, and evaluates strictly fewer
// candidates per hop than the full scan.
func TestHopSessionNeighborWindowPruned(t *testing.T) {
	ev, a, ledger := allocFixture(t, 7)
	sessions := ev.Scenario().NumSessions()
	cfg := DefaultConfig(7)
	cfg.NeighborWindow = 2
	rng := rand.New(rand.NewSource(7))
	scr := NewHopScratch(ev)

	fullPerHop := 0
	{
		cfgFull := DefaultConfig(7)
		res, err := HopSessionWith(a.Clone(), 0, ev, ledger.Clone(), cfgFull, rand.New(rand.NewSource(7)), NewHopScratch(ev))
		if err != nil {
			t.Fatal(err)
		}
		fullPerHop = res.Feasible
	}

	moved := false
	for i := 0; i < 200; i++ {
		s := model.SessionID(i % sessions)
		res, err := HopSessionWith(a, s, ev, ledger, cfg, rng, scr)
		if err != nil {
			t.Fatal(err)
		}
		moved = moved || res.Moved
		if s == 0 && res.Feasible >= fullPerHop {
			t.Fatalf("window 2 evaluated %d feasible candidates, full scan %d", res.Feasible, fullPerHop)
		}
		if res.Moved && !cost.DelayFeasible(a, s) {
			t.Fatalf("windowed hop %d violated the delay cap", i)
		}
	}
	if !moved {
		t.Fatal("windowed chain never moved")
	}
	if !ledger.Fits(nil) {
		t.Fatal("windowed chain left the ledger overfull")
	}
}
