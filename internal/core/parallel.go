package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"vconf/internal/assign"
	"vconf/internal/cost"
	"vconf/internal/model"
)

// Parallel runs Alg. 1 with one goroutine per session, realizing the
// decentralized deployment of §IV-A: each session's agent independently runs
// WAIT (exponential countdown) and HOP, and hops are serialized by the
// FREEZE/UNFREEZE protocol. In the paper the FREEZE message is an
// intra-cloud broadcast among synchronized agents; here the shared hop lock
// plays that role — a session holding it has frozen every other session's
// migration, exactly the mutual exclusion the broadcast establishes.
//
// The virtual Engine is the deterministic tool for experiments; Parallel
// exists to exercise (and test) the concurrent protocol itself.
type Parallel struct {
	ev  *cost.Evaluator
	cfg Config
	// TimeScale compresses virtual seconds into wall time: a countdown of
	// c virtual seconds sleeps c×TimeScale of wall time. Defaults to 1 ms
	// per virtual second, letting tests run 200 "seconds" in 200 ms.
	TimeScale time.Duration

	mu     sync.Mutex // the FREEZE lock: held for the duration of one HOP
	a      *assign.Assignment
	ledger *cost.Ledger
	hops   int
	moves  int
}

// NewParallel builds the concurrent engine with an already-bootstrapped
// assignment (every session that should participate must be complete).
func NewParallel(ev *cost.Evaluator, cfg Config, a *assign.Assignment) (*Parallel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ledger := cost.NewLedger(ev.Scenario())
	p := ev.Params()
	for s := 0; s < ev.Scenario().NumSessions(); s++ {
		if !a.SessionComplete(model.SessionID(s)) {
			return nil, fmt.Errorf("core: parallel engine needs a complete assignment; session %d is not", s)
		}
		ledger.Add(p.SessionLoadOf(a, model.SessionID(s)))
	}
	return &Parallel{
		ev:        ev,
		cfg:       cfg,
		TimeScale: time.Millisecond,
		a:         a.Clone(),
		ledger:    ledger,
	}, nil
}

// Run launches one goroutine per session and lets the chains run until the
// context is cancelled or wall time d elapses. It blocks until every session
// goroutine has exited.
func (pe *Parallel) Run(ctx context.Context, d time.Duration) error {
	runCtx, cancel := context.WithTimeout(ctx, d)
	defer cancel()

	sc := pe.ev.Scenario()
	var wg sync.WaitGroup
	errs := make(chan error, sc.NumSessions())
	for s := 0; s < sc.NumSessions(); s++ {
		sid := model.SessionID(s)
		// Independent per-session randomness, deterministically seeded.
		rng := rand.New(rand.NewSource(pe.cfg.Seed + int64(s)*7919))
		wg.Add(1)
		go func() {
			defer wg.Done()
			pe.runSession(runCtx, sid, rng, errs)
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// runSession is the per-session WAIT/HOP loop (Alg. 1 lines 1–8). Each
// session goroutine owns one hop scratch, so concurrent chains share no
// evaluation buffers.
func (pe *Parallel) runSession(ctx context.Context, s model.SessionID, rng *rand.Rand, errs chan<- error) {
	scr := NewHopScratch(pe.ev)
	for {
		// WAIT: exponential countdown with mean 1/τ. Receiving FREEZE pauses
		// the countdown in the paper; with a lock, the pause materializes as
		// blocking on acquisition below, which is stochastically equivalent
		// for exponential (memoryless) countdowns.
		wait := time.Duration(rng.ExpFloat64() * pe.cfg.MeanCountdownS * float64(pe.TimeScale))
		timer := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			return
		case <-timer.C:
		}

		// HOP under FREEZE.
		pe.mu.Lock()
		res, err := HopSessionWith(pe.a, s, pe.ev, pe.ledger, pe.cfg, rng, scr)
		if err == nil {
			pe.hops++
			if res.Moved {
				pe.moves++
			}
		}
		pe.mu.Unlock()
		if err != nil {
			select {
			case errs <- fmt.Errorf("core: parallel hop session %d: %w", s, err):
			default:
			}
			return
		}
	}
}

// Snapshot returns the current assignment (deep copy) and hop counters.
func (pe *Parallel) Snapshot() (*assign.Assignment, int, int) {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	return pe.a.Clone(), pe.hops, pe.moves
}

// Report evaluates the current state system-wide.
func (pe *Parallel) Report() cost.SystemReport {
	a, _, _ := pe.Snapshot()
	return pe.ev.ReportSystem(a)
}
