package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"vconf/internal/assign"
	"vconf/internal/cost"
	"vconf/internal/model"
)

// OptimisticParallel is an extension of the paper's FREEZE/UNFREEZE protocol
// (§IV-A). The paper freezes *every* other session for the entire HOP —
// including the expensive part, evaluating all |F_s| neighbor objectives.
// This engine instead lets sessions evaluate candidates concurrently against
// a snapshot of the shared capacity ledger and serializes only the commit:
//
//  1. snapshot: under a read lock, copy the residual-capacity view and the
//     session's current assignment;
//  2. evaluate: off-lock, enumerate feasible neighbors and sample the jump
//     target exactly as Alg. 1 line 13;
//  3. commit: under the write lock, re-validate the chosen target against
//     the live ledger (another session may have claimed capacity); apply if
//     still feasible, abort-and-retry otherwise.
//
// Aborts are counted; with ample capacity they are rare and the chain's
// trajectory distribution matches the frozen protocol's (the re-validation
// only rejects moves the frozen protocol would never have proposed).
type OptimisticParallel struct {
	ev  *cost.Evaluator
	cfg Config
	// TimeScale compresses virtual seconds into wall time (see Parallel).
	TimeScale time.Duration

	mu     sync.RWMutex
	a      *assign.Assignment
	ledger *cost.Ledger

	statsMu sync.Mutex
	hops    int
	moves   int
	aborts  int
}

// NewOptimisticParallel builds the engine from a complete assignment.
func NewOptimisticParallel(ev *cost.Evaluator, cfg Config, a *assign.Assignment) (*OptimisticParallel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ledger := cost.NewLedger(ev.Scenario())
	p := ev.Params()
	for s := 0; s < ev.Scenario().NumSessions(); s++ {
		if !a.SessionComplete(model.SessionID(s)) {
			return nil, fmt.Errorf("core: optimistic engine needs a complete assignment; session %d is not", s)
		}
		ledger.Add(p.SessionLoadOf(a, model.SessionID(s)))
	}
	return &OptimisticParallel{
		ev:        ev,
		cfg:       cfg,
		TimeScale: time.Millisecond,
		a:         a.Clone(),
		ledger:    ledger,
	}, nil
}

// Run launches one goroutine per session until wall time d elapses or ctx is
// cancelled; it blocks until all goroutines exit.
func (oe *OptimisticParallel) Run(ctx context.Context, d time.Duration) error {
	runCtx, cancel := context.WithTimeout(ctx, d)
	defer cancel()

	sc := oe.ev.Scenario()
	var wg sync.WaitGroup
	errs := make(chan error, sc.NumSessions())
	for s := 0; s < sc.NumSessions(); s++ {
		sid := model.SessionID(s)
		rng := rand.New(rand.NewSource(oe.cfg.Seed + int64(s)*104729))
		wg.Add(1)
		go func() {
			defer wg.Done()
			oe.runSession(runCtx, sid, rng, errs)
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

func (oe *OptimisticParallel) runSession(ctx context.Context, s model.SessionID, rng *rand.Rand, errs chan<- error) {
	scr := NewHopScratch(oe.ev)
	for {
		wait := time.Duration(rng.ExpFloat64() * oe.cfg.MeanCountdownS * float64(oe.TimeScale))
		timer := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			return
		case <-timer.C:
		}
		if err := oe.attemptHop(s, rng, scr); err != nil {
			select {
			case errs <- fmt.Errorf("core: optimistic hop session %d: %w", s, err):
			default:
			}
			return
		}
	}
}

// attemptHop runs snapshot → evaluate → commit for one session. The
// evaluation phase runs on the sparse pipeline with the goroutine's own
// scratch; only the state snapshot itself still copies (that is the point of
// the protocol — evaluate off-lock against a stable view).
func (oe *OptimisticParallel) attemptHop(s model.SessionID, rng *rand.Rand, scr *HopScratch) error {
	scr.ensure(oe.ev)
	es := scr.Eval()
	// The snapshot is a fresh clone every hop, but the delay cache's
	// signatures compare variable values, not assignment identity — so the
	// per-goroutine cache stays warm across clones when the session's own
	// variables did not move.
	es.SetDelayCacheEnabled(!oe.cfg.RebuildDelayBase)

	// ---- snapshot (read lock) ----
	oe.mu.RLock()
	snapshot := oe.a.Clone()
	others := oe.ledger.Clone()
	oe.mu.RUnlock()

	// ---- evaluate (no lock) ----
	be := oe.ev.BeginSession(snapshot, s, es)
	curLoad := es.CurLoad()
	others.RemoveSparse(curLoad)
	// The strict capacity check splits into a once-per-hop base-feasibility
	// scan plus an O(touched) check per candidate (see Ledger.FitsTouched).
	baseOK := others.Fits(nil)

	phiCur := be.Phi
	if oe.cfg.Noise != nil {
		phiCur = oe.cfg.Noise(phiCur)
	}
	scr.decisions = snapshot.AppendSessionNeighborDecisions(scr.decisions[:0], s)
	scr.ds = scr.ds[:0]
	scr.readings = scr.readings[:0]
	for _, d := range scr.decisions {
		inv, err := snapshot.Apply(d)
		if err != nil {
			return err
		}
		load := oe.ev.CandidateLoad(snapshot, s, es)
		if baseOK && others.FitsTouched(load) {
			if phi, ok := oe.ev.CandidatePhi(snapshot, s, d, es); ok {
				if oe.cfg.Noise != nil {
					phi = oe.cfg.Noise(phi)
				}
				scr.ds = append(scr.ds, d)
				scr.readings = append(scr.readings, phi)
			}
		}
		if _, err := snapshot.Apply(inv); err != nil {
			return err
		}
	}

	oe.statsMu.Lock()
	oe.hops++
	oe.statsMu.Unlock()
	if len(scr.ds) == 0 {
		return nil
	}

	halfBeta := 0.5 * oe.cfg.Beta * oe.cfg.ObjectiveScale
	maxExp := math.Inf(-1)
	for _, phi := range scr.readings {
		if e := halfBeta * (phiCur - phi); e > maxExp {
			maxExp = e
		}
	}
	total := 0.0
	scr.weights = scr.weights[:0]
	for _, phi := range scr.readings {
		w := math.Exp(halfBeta*(phiCur-phi) - maxExp)
		scr.weights = append(scr.weights, w)
		total += w
	}
	pick := rng.Float64() * total
	chosen := len(scr.ds) - 1
	acc := 0.0
	for i, w := range scr.weights {
		acc += w
		if pick < acc {
			chosen = i
			break
		}
	}
	d := scr.ds[chosen]

	// ---- commit (write lock, re-validate) ----
	oe.mu.Lock()
	defer oe.mu.Unlock()
	liveCur := oe.ev.SessionLoadSparse(oe.a, s, es)
	oe.ledger.RemoveSparse(liveCur)
	inv, err := oe.a.Apply(d)
	if err != nil {
		oe.ledger.AddSparse(liveCur)
		return err
	}
	newLoad := oe.ev.CandidateLoad(oe.a, s, es)
	if oe.ledger.Fits(nil) && oe.ledger.FitsTouched(newLoad) && cost.DelayFeasible(oe.a, s) {
		oe.ledger.AddSparse(newLoad)
		oe.statsMu.Lock()
		oe.moves++
		oe.statsMu.Unlock()
		return nil
	}
	// Conflict: another session consumed the capacity between snapshot and
	// commit. Abort and let the next countdown retry.
	if _, err := oe.a.Apply(inv); err != nil {
		return err
	}
	oe.ledger.AddSparse(liveCur)
	oe.statsMu.Lock()
	oe.aborts++
	oe.statsMu.Unlock()
	return nil
}

// Snapshot returns the current assignment and (hops, moves, aborts).
func (oe *OptimisticParallel) Snapshot() (*assign.Assignment, int, int, int) {
	oe.mu.RLock()
	a := oe.a.Clone()
	oe.mu.RUnlock()
	oe.statsMu.Lock()
	defer oe.statsMu.Unlock()
	return a, oe.hops, oe.moves, oe.aborts
}

// Report evaluates the current state system-wide.
func (oe *OptimisticParallel) Report() cost.SystemReport {
	a, _, _, _ := oe.Snapshot()
	return oe.ev.ReportSystem(a)
}
