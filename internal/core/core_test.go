package core

import (
	"math"
	"testing"

	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/cost"
	"vconf/internal/exact"
	"vconf/internal/model"
	"vconf/internal/workload"
)

// fig3Scenario: 1 session, 2 users, 1 transcoding flow, 2 agents — the
// paper's Fig. 3 instance with 8 feasible states.
func fig3Scenario(t testing.TB) *model.Scenario {
	t.Helper()
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r720, _ := rs.ByName("720p")
	for i := 0; i < 2; i++ {
		b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 4,
			SigmaMS: model.UniformSigma(rs.Len(), 40)})
	}
	s := b.AddSession("s")
	b.AddUser("U1", s, r720, nil)
	b.AddUser("U2", s, r720, nil)
	b.DemandFrom(1, 0, r360)
	b.SetInterAgentDelays([][]float64{{0, 25}, {25, 0}})
	b.SetAgentUserDelays([][]float64{{5, 30}, {30, 5}})
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// multiScenario: nSessions sessions of 3 users each over 3 agents with
// heterogeneous delays, one transcoding flow per session.
func multiScenario(t testing.TB, nSessions int) *model.Scenario {
	t.Helper()
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r720, _ := rs.ByName("720p")
	r1080, _ := rs.ByName("1080p")
	for i := 0; i < 3; i++ {
		b.AddAgent(model.Agent{Upload: 10000, Download: 10000, TranscodeSlots: 50,
			SigmaMS: model.UniformSigma(rs.Len(), 40)})
	}
	var h [][]float64
	for l := 0; l < 3; l++ {
		h = append(h, nil)
	}
	for s := 0; s < nSessions; s++ {
		sid := b.AddSession("s")
		u0 := b.AddUser("a", sid, r1080, nil)
		u1 := b.AddUser("b", sid, r720, nil)
		b.AddUser("c", sid, r720, nil)
		b.DemandFrom(u1, u0, r360)
		// Spread users across agent affinities deterministically.
		for l := 0; l < 3; l++ {
			for k := 0; k < 3; k++ {
				d := 10.0 + 20*float64((l+k+s)%3)
				h[l] = append(h[l], d)
			}
		}
	}
	b.SetAgentUserDelays(h)
	b.SetInterAgentDelays([][]float64{
		{0, 30, 60},
		{30, 0, 90},
		{60, 90, 0},
	})
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func newEval(t testing.TB, sc *model.Scenario) *cost.Evaluator {
	t.Helper()
	ev, err := cost.NewEvaluator(sc, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func nrstBoot(p cost.Params) Bootstrapper {
	return func(a *assign.Assignment, s model.SessionID, ledger cost.LedgerAPI) error {
		return baseline.AssignSessionNearest(a, s, p, ledger)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Beta = 0 },
		func(c *Config) { c.Beta = -1 },
		func(c *Config) { c.ObjectiveScale = 0 },
		func(c *Config) { c.MeanCountdownS = 0 },
		func(c *Config) { c.Mode = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig(1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestHopPreservesFeasibilityAndLedger(t *testing.T) {
	sc := multiScenario(t, 4)
	ev := newEval(t, sc)
	p := ev.Params()
	a := assign.New(sc)
	ledger := cost.NewLedger(sc)
	if err := baseline.Assign(a, p, ledger); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	cfg := DefaultConfig(7)
	eng, err := NewEngine(ev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = eng // engine tested below; here exercise HopSession directly
	rng := newTestRNG(7)
	for i := 0; i < 200; i++ {
		s := model.SessionID(i % sc.NumSessions())
		if _, err := HopSession(a, s, ev, ledger, cfg, rng); err != nil {
			t.Fatalf("hop %d: %v", i, err)
		}
	}
	if err := ev.CheckFeasible(a); err != nil {
		t.Fatalf("infeasible after hops: %v", err)
	}
	// Ledger must equal the freshly recomputed global load.
	fresh := cost.NewLedger(sc)
	for s := 0; s < sc.NumSessions(); s++ {
		fresh.Add(p.SessionLoadOf(a, model.SessionID(s)))
	}
	gd, gu, gt := ledger.Usage()
	fd, fu, ft := fresh.Usage()
	for l := range gd {
		if math.Abs(gd[l]-fd[l]) > 1e-6 || math.Abs(gu[l]-fu[l]) > 1e-6 || gt[l] != ft[l] {
			t.Fatalf("ledger drift at agent %d: (%v,%v,%d) vs (%v,%v,%d)",
				l, gd[l], gu[l], gt[l], fd[l], fu[l], ft[l])
		}
	}
}

func TestHopWithSingleAgentStays(t *testing.T) {
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r720, _ := rs.ByName("720p")
	b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 4})
	s := b.AddSession("s")
	b.AddUser("a", s, r720, nil)
	b.AddUser("b", s, r720, nil)
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev := newEval(t, sc)
	a := assign.New(sc)
	ledger := cost.NewLedger(sc)
	if err := baseline.Assign(a, ev.Params(), ledger); err != nil {
		t.Fatal(err)
	}
	res, err := HopSession(a, 0, ev, ledger, DefaultConfig(1), newTestRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Moved {
		t.Fatal("single-agent session has no neighbors; must stay")
	}
	if res.Feasible != 0 {
		t.Fatalf("feasible = %d, want 0", res.Feasible)
	}
}

func TestEngineReducesObjectiveFromNrst(t *testing.T) {
	sc := multiScenario(t, 6)
	ev := newEval(t, sc)
	cfg := DefaultConfig(42)
	eng, err := NewEngine(ev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	boot := nrstBoot(ev.Params())
	for s := 0; s < sc.NumSessions(); s++ {
		if err := eng.ActivateSession(model.SessionID(s), boot); err != nil {
			t.Fatal(err)
		}
	}
	initial := eng.Snapshot()
	samples, err := eng.Run(200, 10)
	if err != nil {
		t.Fatal(err)
	}
	final := samples[len(samples)-1]
	if final.TimeS != 200 {
		t.Fatalf("final sample at t=%v, want 200", final.TimeS)
	}
	if final.Objective > initial.Objective {
		t.Fatalf("objective rose: %v → %v", initial.Objective, final.Objective)
	}
	if final.Objective >= initial.Objective*0.95 {
		t.Fatalf("objective barely moved: %v → %v (expected clear optimization)",
			initial.Objective, final.Objective)
	}
	if hops, moved := eng.Hops(); hops == 0 || moved == 0 {
		t.Fatalf("no chain activity: hops=%d moved=%d", hops, moved)
	}
	if err := ev.CheckFeasible(eng.Assignment()); err != nil {
		t.Fatalf("final state infeasible: %v", err)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []Sample {
		sc := multiScenario(t, 4)
		ev := newEval(t, sc)
		eng, err := NewEngine(ev, DefaultConfig(99))
		if err != nil {
			t.Fatal(err)
		}
		boot := nrstBoot(ev.Params())
		for s := 0; s < sc.NumSessions(); s++ {
			if err := eng.ActivateSession(model.SessionID(s), boot); err != nil {
				t.Fatal(err)
			}
		}
		samples, err := eng.Run(100, 5)
		if err != nil {
			t.Fatal(err)
		}
		return samples
	}
	s1, s2 := run(), run()
	if len(s1) != len(s2) {
		t.Fatalf("sample counts differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].TimeS != s2[i].TimeS || s1[i].TrafficMbps != s2[i].TrafficMbps ||
			s1[i].Objective != s2[i].Objective {
			t.Fatalf("sample %d differs across identical seeds", i)
		}
	}
}

func TestEngineDynamicsArrivalDeparture(t *testing.T) {
	sc := multiScenario(t, 5)
	ev := newEval(t, sc)
	eng, err := NewEngine(ev, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	boot := nrstBoot(ev.Params())
	// Sessions 0–1 at t=0, 2–4 arrive at t=40, 0 and 2 depart at t=80.
	for s := 0; s < 2; s++ {
		if err := eng.ActivateSession(model.SessionID(s), boot); err != nil {
			t.Fatal(err)
		}
	}
	for s := 2; s < 5; s++ {
		eng.ScheduleArrival(40, model.SessionID(s), boot)
	}
	eng.ScheduleDeparture(80, 0)
	eng.ScheduleDeparture(80, 2)
	samples, err := eng.Run(120, 1)
	if err != nil {
		t.Fatal(err)
	}
	countAt := func(tm float64) int {
		best := -1
		for _, s := range samples {
			if s.TimeS <= tm {
				best = s.ActiveSessions
			}
		}
		return best
	}
	if got := countAt(39); got != 2 {
		t.Fatalf("active at t=39: %d, want 2", got)
	}
	if got := countAt(79); got != 5 {
		t.Fatalf("active at t=79: %d, want 5", got)
	}
	if got := countAt(119); got != 3 {
		t.Fatalf("active at t=119: %d, want 3", got)
	}
	// Departing everything must drain the ledger.
	for _, s := range []model.SessionID{1, 3, 4} {
		if err := eng.DeactivateSession(s); err != nil {
			t.Fatal(err)
		}
	}
	down, up, tasks := eng.Ledger().Usage()
	for l := range down {
		if math.Abs(down[l]) > 1e-6 || math.Abs(up[l]) > 1e-6 || tasks[l] != 0 {
			t.Fatalf("ledger not drained at agent %d", l)
		}
	}
}

func TestEngineDoubleActivateAndBadDeactivate(t *testing.T) {
	sc := multiScenario(t, 2)
	ev := newEval(t, sc)
	eng, err := NewEngine(ev, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	boot := nrstBoot(ev.Params())
	if err := eng.ActivateSession(0, boot); err != nil {
		t.Fatal(err)
	}
	if err := eng.ActivateSession(0, boot); err == nil {
		t.Fatal("double activation accepted")
	}
	if err := eng.DeactivateSession(1); err == nil {
		t.Fatal("deactivating inactive session accepted")
	}
}

// TestExactCTMCMatchesAnalyticStationary is the Theorem-1 validation: the
// ExactCTMC engine's time-weighted empirical state occupancy on the Fig. 3
// instance must converge to p*_f = exp(−βΦ_f)/Σexp(−βΦ) (Eq. (9)).
func TestExactCTMCMatchesAnalyticStationary(t *testing.T) {
	sc := fig3Scenario(t)
	ev := newEval(t, sc)
	enum, err := exact.Enumerate(ev, 0)
	if err != nil {
		t.Fatal(err)
	}
	const (
		beta  = 20.0
		scale = 0.01
		horon = 60000.0 // virtual seconds
	)
	want := enum.Stationary(beta, scale)

	cfg := Config{Beta: beta, ObjectiveScale: scale, MeanCountdownS: 1, Mode: ExactCTMC, Seed: 11}
	eng, err := NewEngine(ev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ActivateSession(0, nrstBoot(ev.Params())); err != nil {
		t.Fatal(err)
	}

	occupancy := make(map[string]float64, len(enum.States))
	lastT := 0.0
	lastKey := eng.Assignment().Encode()
	eng.OnHop = func(timeS float64, _ model.SessionID, _ HopResult) {
		occupancy[lastKey] += timeS - lastT
		lastT = timeS
		lastKey = eng.Assignment().Encode()
	}
	if _, err := eng.Run(horon, 0); err != nil {
		t.Fatal(err)
	}
	occupancy[lastKey] += horon - lastT

	total := 0.0
	for _, v := range occupancy {
		total += v
	}
	tv := 0.0
	for i, st := range enum.States {
		emp := occupancy[st.Key] / total
		tv += math.Abs(emp - want[i])
	}
	tv /= 2
	if tv > 0.05 {
		t.Fatalf("total variation empirical vs analytic = %.4f, want ≤ 0.05", tv)
	}
}

// TestEmpiricalDetailedBalance: in equilibrium, the expected transition
// counts i→j and j→i are equal (reversibility). Check the busiest pairs.
func TestEmpiricalDetailedBalance(t *testing.T) {
	sc := fig3Scenario(t)
	ev := newEval(t, sc)
	cfg := Config{Beta: 20, ObjectiveScale: 0.01, MeanCountdownS: 1, Mode: ExactCTMC, Seed: 23}
	eng, err := NewEngine(ev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ActivateSession(0, nrstBoot(ev.Params())); err != nil {
		t.Fatal(err)
	}
	type edge struct{ from, to string }
	counts := make(map[edge]int)
	lastKey := eng.Assignment().Encode()
	eng.OnHop = func(_ float64, _ model.SessionID, r HopResult) {
		if !r.Moved {
			return
		}
		key := eng.Assignment().Encode()
		counts[edge{lastKey, key}]++
		lastKey = key
	}
	if _, err := eng.Run(60000, 0); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for e, c := range counts {
		rev := counts[edge{e.to, e.from}]
		if c < 300 {
			continue // too few samples for a tight ratio
		}
		checked++
		ratio := float64(c) / float64(rev+1)
		if ratio < 0.8 || ratio > 1.25 {
			t.Fatalf("flux imbalance on %v: %d vs %d", e, c, rev)
		}
	}
	if checked == 0 {
		t.Fatal("no edge accumulated enough transitions to check")
	}
}

func TestEngineWithNoiseStaysFeasible(t *testing.T) {
	sc := multiScenario(t, 4)
	ev := newEval(t, sc)
	cfg := DefaultConfig(17)
	calls := 0
	cfg.Noise = func(phi float64) float64 {
		calls++
		// Deterministic bounded perturbation: ±2 objective units.
		if calls%2 == 0 {
			return phi + 2
		}
		return phi - 2
	}
	eng, err := NewEngine(ev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	boot := nrstBoot(ev.Params())
	for s := 0; s < sc.NumSessions(); s++ {
		if err := eng.ActivateSession(model.SessionID(s), boot); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Run(150, 0); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("noise function never invoked")
	}
	if err := ev.CheckFeasible(eng.Assignment()); err != nil {
		t.Fatalf("noisy run ended infeasible: %v", err)
	}
}

// TestEngineChurnStorm injects heavy session churn: every session repeatedly
// arrives and departs on a tight schedule while the chain keeps hopping. The
// engine must never corrupt the ledger, leak stale hop events into departed
// generations, or end infeasible.
func TestEngineChurnStorm(t *testing.T) {
	sc := multiScenario(t, 6)
	ev := newEval(t, sc)
	cfg := DefaultConfig(77)
	cfg.MeanCountdownS = 2 // hop fast so stale events exist at every departure
	eng, err := NewEngine(ev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	boot := nrstBoot(ev.Params())
	// Wave 1: all sessions at t=0. Waves of departures and re-arrivals.
	for s := 0; s < sc.NumSessions(); s++ {
		if err := eng.ActivateSession(model.SessionID(s), boot); err != nil {
			t.Fatal(err)
		}
	}
	for wave := 0; wave < 5; wave++ {
		base := float64(10 + wave*20)
		for s := 0; s < sc.NumSessions(); s += 2 {
			eng.ScheduleDeparture(base, model.SessionID(s))
			eng.ScheduleArrival(base+10, model.SessionID(s), boot)
		}
	}
	if _, err := eng.Run(120, 0); err != nil {
		t.Fatalf("churn storm run: %v", err)
	}
	if err := ev.CheckFeasible(eng.Assignment()); err != nil {
		t.Fatalf("infeasible after churn storm: %v", err)
	}
	// Ledger must equal recomputed active loads exactly.
	p := ev.Params()
	fresh := cost.NewLedger(sc)
	for s := 0; s < sc.NumSessions(); s++ {
		fresh.Add(p.SessionLoadOf(eng.Assignment(), model.SessionID(s)))
	}
	fd, fu, ft := fresh.Usage()
	ld, lu, lt := eng.Ledger().Usage()
	for l := range fd {
		if math.Abs(fd[l]-ld[l]) > 1e-6 || math.Abs(fu[l]-lu[l]) > 1e-6 || ft[l] != lt[l] {
			t.Fatalf("ledger drift after churn at agent %d", l)
		}
	}
}

// TestEngineArrivalFailurePropagates: an arrival whose bootstrap cannot fit
// must surface as an error from Run, not silently corrupt state.
func TestEngineArrivalFailurePropagates(t *testing.T) {
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r720, _ := rs.ByName("720p")
	// Capacity fits exactly one session (down = 2 upstreams = 10).
	b.AddAgent(model.Agent{Upload: 12, Download: 12, TranscodeSlots: 2})
	for s := 0; s < 2; s++ {
		sid := b.AddSession("s")
		b.AddUser("a", sid, r720, nil)
		b.AddUser("b", sid, r720, nil)
	}
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev := newEval(t, sc)
	eng, err := NewEngine(ev, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	boot := nrstBoot(ev.Params())
	if err := eng.ActivateSession(0, boot); err != nil {
		t.Fatal(err)
	}
	eng.ScheduleArrival(10, 1, boot) // cannot fit
	if _, err := eng.Run(20, 0); err == nil {
		t.Fatal("over-capacity arrival did not propagate an error")
	}
	// Session 0 remains intact and feasible.
	if eng.Assignment().UserAgent(0) == assign.Unassigned {
		t.Fatal("existing session was disturbed by the failed arrival")
	}
}

// TestEngineRepairsAfterCapacityDegradation injects an agent failure: agent
// B's capacity collapses to 5% mid-run. The split placement (each user at
// its nearest agent) is objective-optimal beforehand, so only the repair
// path (Ledger.FitsRepair) can move sessions off the degraded agent; after
// the run no agent may remain over capacity.
func TestEngineRepairsAfterCapacityDegradation(t *testing.T) {
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r720, _ := rs.ByName("720p")
	for i := 0; i < 2; i++ {
		b.AddAgent(model.Agent{Upload: 100, Download: 100, TranscodeSlots: 4})
	}
	// Two sessions of two users; user k is near agent k%2. D is tiny so the
	// split placement beats co-location on the balanced objective.
	for s := 0; s < 2; s++ {
		sid := b.AddSession("s")
		b.AddUser("a", sid, r720, nil)
		b.AddUser("b", sid, r720, nil)
	}
	b.SetInterAgentDelays([][]float64{{0, 5}, {5, 0}})
	b.SetAgentUserDelays([][]float64{
		{10, 40, 10, 40},
		{40, 10, 40, 10},
	})
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev := newEval(t, sc)
	cfg := DefaultConfig(29)
	cfg.MeanCountdownS = 2
	eng, err := NewEngine(ev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	boot := nrstBoot(ev.Params())
	for s := 0; s < sc.NumSessions(); s++ {
		if err := eng.ActivateSession(model.SessionID(s), boot); err != nil {
			t.Fatal(err)
		}
	}
	// Settle. (Alg. 1's HOP always migrates somewhere, so with only two
	// one-variable candidates per session the pre-failure state oscillates
	// between split and co-located placements; the ledger must stay
	// violation-free throughout either way.)
	if _, err := eng.Run(60, 0); err != nil {
		t.Fatal(err)
	}
	if v := eng.Ledger().Violations(); len(v) != 0 {
		t.Fatalf("violations before failure: %v", v)
	}

	// Inject the failure: agent 1 collapses to 5% — capacity 5 is below the
	// 10 Mbps even a single session needs there, so any load on it now
	// violates; only the FitsRepair path can move sessions off.
	if err := eng.DegradeAgent(1, 0.05); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(300, 0); err != nil {
		t.Fatal(err)
	}
	if v := eng.Ledger().Violations(); len(v) != 0 {
		t.Fatalf("violations not repaired: %v", v)
	}
	// Everyone must have evacuated the degraded agent; all-at-agent-0 is
	// then the only feasible placement and has no candidate moves, so it is
	// also stable.
	final := eng.Assignment()
	for u := 0; u < sc.NumUsers(); u++ {
		if final.UserAgent(model.UserID(u)) == 1 {
			t.Fatalf("user %d still on the degraded agent", u)
		}
	}

	// Restoring capacity re-opens agent 1: some hop must move a user back.
	if err := eng.DegradeAgent(1, 1); err != nil {
		t.Fatal(err)
	}
	movedBack := false
	eng.OnHop = func(_ float64, _ model.SessionID, r HopResult) {
		if r.Moved && r.Decision.Kind == assign.UserMove && r.Decision.To == 1 {
			movedBack = true
		}
	}
	if _, err := eng.Run(500, 0); err != nil {
		t.Fatal(err)
	}
	if !movedBack {
		t.Fatal("no user returned to the restored agent")
	}
	if v := eng.Ledger().Violations(); len(v) != 0 {
		t.Fatalf("violations after restore: %v", v)
	}
}

func TestLedgerCapacityScaleValidation(t *testing.T) {
	sc := multiScenario(t, 1)
	g := cost.NewLedger(sc)
	if err := g.SetCapacityScale(0, -0.1); err == nil {
		t.Fatal("negative scale accepted")
	}
	if err := g.SetCapacityScale(0, 1.5); err == nil {
		t.Fatal("scale above 1 accepted")
	}
	if err := g.SetCapacityScale(model.AgentID(99), 0.5); err == nil {
		t.Fatal("unknown agent accepted")
	}
	if err := g.SetCapacityScale(0, 0.5); err != nil {
		t.Fatalf("valid scale rejected: %v", err)
	}
}

// TestEnginePoissonChurn drives the engine with a Poisson arrival/departure
// schedule (the continuous generalization of Fig. 5) and checks the standing
// invariants: feasibility at the end, a drained ledger after deactivating
// the survivors, and accurate active-session accounting along the way.
func TestEnginePoissonChurn(t *testing.T) {
	sc := multiScenario(t, 8)
	ev := newEval(t, sc)
	cfg := DefaultConfig(83)
	cfg.MeanCountdownS = 3
	eng, err := NewEngine(ev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	boot := nrstBoot(ev.Params())

	churn, err := workload.PoissonSchedule(workload.ChurnConfig{
		Seed:            83,
		HorizonS:        200,
		ArrivalRatePerS: 0.08,
		MeanHoldS:       50,
		NumSessions:     sc.NumSessions(),
		InitialActive:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		if err := eng.ActivateSession(model.SessionID(s), boot); err != nil {
			t.Fatal(err)
		}
	}
	expected := 3
	for _, e := range churn {
		switch e.Kind {
		case workload.EventArrival:
			eng.ScheduleArrival(e.TimeS, model.SessionID(e.Session), boot)
			expected++
		case workload.EventDeparture:
			eng.ScheduleDeparture(e.TimeS, model.SessionID(e.Session))
			expected--
		}
	}
	samples, err := eng.Run(200, 0)
	if err != nil {
		t.Fatalf("churn run: %v", err)
	}
	final := samples[len(samples)-1]
	if final.ActiveSessions != expected {
		t.Fatalf("active sessions = %d, want %d", final.ActiveSessions, expected)
	}
	// Feasibility of the live system: capacities respected globally, every
	// active session complete and within the delay cap. (Global
	// CheckFeasible does not apply: departed sessions are correctly
	// unassigned.)
	if !eng.Ledger().Fits(nil) {
		t.Fatal("ledger over capacity after churn")
	}
	a := eng.Assignment()
	for sid := range final.PerSession {
		if !a.SessionComplete(sid) {
			t.Fatalf("active session %d incomplete", sid)
		}
		if !cost.DelayFeasible(a, sid) {
			t.Fatalf("active session %d violates the delay cap", sid)
		}
	}
}

// TestPriceHeterogeneitySteersTranscoding: with two otherwise-identical
// tertiary agents, the chain must place the transcoding task at the cheap
// one — the per-agent pricing fields g_l/h_l of §III-D must actually steer
// decisions.
func TestPriceHeterogeneitySteersTranscoding(t *testing.T) {
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r1080, _ := rs.ByName("1080p")
	// Agents 0/1 host the users (zero transcoding slots force a tertiary
	// choice); agents 2 (expensive) and 3 (cheap) are identical otherwise.
	b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 0})
	b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 0})
	b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 4,
		TrafficPricePerMbps: 10, TranscodePricePerTask: 10})
	b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 4,
		TrafficPricePerMbps: 1, TranscodePricePerTask: 1})
	s := b.AddSession("s")
	u0 := b.AddUser("src", s, r1080, nil)
	u1 := b.AddUser("dst", s, r1080, nil)
	b.DemandFrom(u1, u0, r360)
	// Symmetric delays so price is the only differentiator between 2 and 3.
	b.SetInterAgentDelays([][]float64{
		{0, 20, 30, 30},
		{20, 0, 30, 30},
		{30, 30, 0, 40},
		{30, 30, 40, 0},
	})
	b.SetAgentUserDelays([][]float64{
		{5, 50},
		{50, 5},
		{60, 60},
		{60, 60},
	})
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev := newEval(t, sc)
	eng, err := NewEngine(ev, DefaultConfig(37))
	if err != nil {
		t.Fatal(err)
	}
	// Bootstrap by hand: users at their near agents, transcoding at the
	// expensive tertiary agent.
	boot := func(a *assign.Assignment, sid model.SessionID, ledger cost.LedgerAPI) error {
		a.SetUserAgent(u0, 0)
		a.SetUserAgent(u1, 1)
		if err := a.SetFlowAgent(model.Flow{Src: u0, Dst: u1}, 2); err != nil {
			return err
		}
		load := ev.Params().SessionLoadOf(a, sid)
		ledger.Add(load)
		return nil
	}
	if err := eng.ActivateSession(0, boot); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(400, 0); err != nil {
		t.Fatal(err)
	}
	// The chain should spend most of its time with the transcoder at the
	// cheap agent 3 (agents 0/1 have no slots; 2 is 10× the price).
	m, _ := eng.Assignment().FlowAgent(model.Flow{Src: u0, Dst: u1})
	if m == 2 {
		t.Fatalf("transcoder left at the expensive agent 2")
	}
}
