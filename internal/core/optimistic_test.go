package core

import (
	"context"
	"math"
	"testing"
	"time"

	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/cost"
	"vconf/internal/model"
)

func TestOptimisticRequiresCompleteAssignment(t *testing.T) {
	sc := multiScenario(t, 3)
	ev := newEval(t, sc)
	if _, err := NewOptimisticParallel(ev, DefaultConfig(1), assign.New(sc)); err == nil {
		t.Fatal("incomplete assignment accepted")
	}
}

func TestOptimisticRunImprovesAndStaysFeasible(t *testing.T) {
	sc := multiScenario(t, 8)
	ev := newEval(t, sc)
	a := assign.New(sc)
	if err := baseline.Assign(a, ev.Params(), cost.NewLedger(sc)); err != nil {
		t.Fatal(err)
	}
	initial := ev.ReportSystem(a)

	cfg := DefaultConfig(13)
	cfg.MeanCountdownS = 4
	oe, err := NewOptimisticParallel(ev, cfg, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := oe.Run(context.Background(), 400*time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	final, hops, moves, aborts := oe.Snapshot()
	if hops == 0 || moves == 0 {
		t.Fatalf("no activity: hops=%d moves=%d", hops, moves)
	}
	if err := ev.CheckFeasible(final); err != nil {
		t.Fatalf("optimistic run ended infeasible: %v", err)
	}
	rep := oe.Report()
	if rep.Objective > initial.Objective {
		t.Fatalf("objective rose: %v → %v", initial.Objective, rep.Objective)
	}
	// Ledger must equal the recomputed loads despite concurrent commits.
	fresh := cost.NewLedger(sc)
	p := ev.Params()
	for s := 0; s < sc.NumSessions(); s++ {
		fresh.Add(p.SessionLoadOf(final, model.SessionID(s)))
	}
	fd, fu, ft := fresh.Usage()
	ld, lu, lt := oe.ledger.Usage()
	for l := range fd {
		if math.Abs(fd[l]-ld[l]) > 1e-6 || math.Abs(fu[l]-lu[l]) > 1e-6 || ft[l] != lt[l] {
			t.Fatalf("ledger drift at agent %d after concurrent run", l)
		}
	}
	t.Logf("hops=%d moves=%d aborts=%d", hops, moves, aborts)
}

func TestOptimisticAbortsUnderContention(t *testing.T) {
	// Tight capacity forces commit-time conflicts: two sessions race for
	// the last slack on shared agents. The engine must stay consistent and
	// (usually) record aborts. The invariant checks are the point; the
	// abort counter is informational.
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r720, _ := rs.ByName("720p")
	// Per session per agent when split (Nrst): down = 5+5 = 10, so three
	// sessions consume 30 of 32 — the Nrst start fits with only 2 Mbps of
	// slack per agent, and concurrent co-location moves race for it.
	for i := 0; i < 2; i++ {
		b.AddAgent(model.Agent{Upload: 32, Download: 32, TranscodeSlots: 4})
	}
	for s := 0; s < 3; s++ {
		sid := b.AddSession("s")
		b.AddUser("a", sid, r720, nil)
		b.AddUser("b", sid, r720, nil)
	}
	h := make([][]float64, 2)
	for l := range h {
		h[l] = make([]float64, 6)
		for u := range h[l] {
			h[l][u] = 10 + float64((l+u)%2)*30
		}
	}
	b.SetAgentUserDelays(h)
	b.SetInterAgentDelays([][]float64{{0, 20}, {20, 0}})
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev := newEval(t, sc)
	a := assign.New(sc)
	if err := baseline.Assign(a, ev.Params(), cost.NewLedger(sc)); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(17)
	cfg.MeanCountdownS = 1 // hammer the ledger
	oe, err := NewOptimisticParallel(ev, cfg, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := oe.Run(context.Background(), 300*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	final, _, _, _ := oe.Snapshot()
	if err := ev.CheckFeasible(final); err != nil {
		t.Fatalf("contended run ended infeasible: %v", err)
	}
}

func TestOptimisticContextCancel(t *testing.T) {
	sc := multiScenario(t, 3)
	ev := newEval(t, sc)
	a := assign.New(sc)
	if err := baseline.Assign(a, ev.Params(), cost.NewLedger(sc)); err != nil {
		t.Fatal(err)
	}
	oe, err := NewOptimisticParallel(ev, DefaultConfig(5), a)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- oe.Run(ctx, time.Minute) }()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run after cancel: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}
