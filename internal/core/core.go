// Package core implements the paper's primary contribution: the Markov
// approximation-based parallel assignment algorithm (Alg. 1, §IV-A).
//
// Each conferencing session runs a local chain: it waits an exponentially
// distributed countdown (mean 1/τ), then "hops" — migrates to a feasible
// assignment differing in exactly one decision variable, chosen with
// probability ∝ exp(½β(Φ_s,f − Φ_s,f')). Only session-local objectives are
// needed, which is what makes the algorithm parallel. The realized chain's
// stationary distribution concentrates on low-objective states as β grows;
// the optimality gap is bounded by (U+θ_sum)·log L/β (Theorem 1).
//
// Two engines share the hop logic:
//
//   - Engine: a deterministic virtual-time event simulator (seeded), used by
//     every experiment and benchmark. It reproduces the paper's time-series
//     figures and supports session arrival/departure dynamics (Fig. 5).
//   - Parallel: a concurrent engine with one goroutine per session and the
//     paper's FREEZE/UNFREEZE mutual exclusion, demonstrating the
//     decentralized deployment shape of §IV-A on real goroutines.
package core

import (
	"fmt"

	"vconf/internal/assign"
	"vconf/internal/cost"
	"vconf/internal/model"
)

// HopMode selects how hop timing interacts with transition rates.
type HopMode int

const (
	// PaperHop reproduces Alg. 1 as printed: a fixed-mean exponential
	// countdown per session, then a jump distributed proportionally to
	// exp(½β(Φ_f − Φ_f')) over the feasible neighbors.
	PaperHop HopMode = iota + 1
	// ExactCTMC realizes the continuous-time chain with transition rates
	// q_{f,f'} = τ·exp(½β(Φ_f − Φ_f')) exactly: the holding time in a state
	// is exponential with the state's total outgoing rate. Its stationary
	// distribution is exactly Eq. (9); used by the Theorem-1 validation.
	ExactCTMC
)

// NoiseFunc perturbs an objective reading (see the noise package). nil means
// noiseless evaluation.
type NoiseFunc func(phi float64) float64

// HopSampling selects when Engine.Run records a Sample after hop events.
// Snapshots are O(active sessions); on long horizons with frequent hops they
// dominate the run, so large simulations choose a lighter policy.
type HopSampling int

const (
	// SampleEveryHop records a sample after every hop event — the historical
	// default (zero value), which every experiment's time series relies on.
	SampleEveryHop HopSampling = iota
	// SampleOnMove records a sample only after hops that actually migrated.
	SampleOnMove
	// SampleNever records no hop-triggered samples; arrivals, departures and
	// the periodic sampleEveryS boundary samples still appear.
	SampleNever
)

// Config parameterizes the chain.
type Config struct {
	// Beta is β: larger values concentrate the stationary distribution on
	// optimal states but slow convergence (§IV-A-4). The paper uses 400,
	// "proportional to the logarithm of the problem state space".
	Beta float64
	// ObjectiveScale multiplies Φ before β is applied. The paper does not
	// state its objective normalization; with traffic in Mbps and delay in
	// ms, raw Φ differences are tens of units and β = 400 would make the
	// chain purely greedy. The default 0.01 reproduces the paper's observed
	// behavior (fluctuations around convergence, β = 200 noisier than 400).
	ObjectiveScale float64
	// MeanCountdownS is 1/τ: the mean WAIT countdown in virtual seconds
	// between hops of one session. The paper's prototype uses 10 s.
	MeanCountdownS float64
	// Mode selects PaperHop (default) or ExactCTMC.
	Mode HopMode
	// Seed drives all randomness of the engine.
	Seed int64
	// Noise optionally perturbs every objective reading (Theorem 1's
	// measurement-error model).
	Noise NoiseFunc
	// HopSampling selects when Engine.Run samples after hop events; the zero
	// value keeps the historical sample-per-hop behavior.
	HopSampling HopSampling
	// DenseEval routes HopSession/SessionTotalRate through the dense
	// reference pipeline (full per-candidate SessionLoadOf / FitsRepair /
	// SessionDelaysOf recomputation) instead of the sparse zero-allocation
	// one. The two are bit-identical for fixed seeds; the flag exists for
	// differential tests and before/after benchmarking.
	DenseEval bool
	// RebuildDelayBase disables the persistent per-session delay cache on
	// the sparse pipeline: every BeginSession rebuilds the full n×n
	// per-flow delay base (the pre-cache path, kept verbatim) instead of
	// patching the cached base by the decisions committed since the
	// session's last hop. The cached and rebuild paths are bit-identical
	// for fixed seeds; the flag exists for differential tests and
	// before/after benchmarking. Ignored under DenseEval.
	RebuildDelayBase bool
	// NeighborWindow caps the hop candidate set to each variable's k
	// delay-nearest agents (the paper's N_ngbr pruning, Fig. 10), cutting
	// per-hop cost from O(L·session) to O(k·session) at controlled
	// optimality loss. 0 (default) keeps the full neighbor scan — for fixed
	// seeds the output is then unchanged. Applies to the sparse pipeline;
	// the dense reference always scans every agent.
	NeighborWindow int
}

// DefaultConfig returns the paper's settings: β = 400, 10 s countdowns.
func DefaultConfig(seed int64) Config {
	return Config{
		Beta:           400,
		ObjectiveScale: 0.01,
		MeanCountdownS: 10,
		Mode:           PaperHop,
		Seed:           seed,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Beta <= 0 {
		return fmt.Errorf("core: beta must be positive, got %v", c.Beta)
	}
	if c.ObjectiveScale <= 0 {
		return fmt.Errorf("core: objective scale must be positive, got %v", c.ObjectiveScale)
	}
	if c.MeanCountdownS <= 0 {
		return fmt.Errorf("core: mean countdown must be positive, got %v", c.MeanCountdownS)
	}
	if c.Mode != PaperHop && c.Mode != ExactCTMC {
		return fmt.Errorf("core: invalid hop mode %d", c.Mode)
	}
	if c.HopSampling < SampleEveryHop || c.HopSampling > SampleNever {
		return fmt.Errorf("core: invalid hop sampling policy %d", c.HopSampling)
	}
	if c.NeighborWindow < 0 {
		return fmt.Errorf("core: neighbor window must be non-negative, got %d", c.NeighborWindow)
	}
	return nil
}

// Bootstrapper installs an initial feasible assignment for one session and
// accounts it in the ledger (adapters wrap baseline.AssignSessionNearest and
// agrank.BootstrapSession). It takes the ledger API rather than the dense
// implementation so the same bootstrap policies admit sessions against the
// orchestrator's lock-striped sharded ledger (internal/shard).
type Bootstrapper func(a *assign.Assignment, s model.SessionID, ledger cost.LedgerAPI) error

// Sample is one observation of the system state at a virtual time.
type Sample struct {
	TimeS          float64
	TrafficMbps    float64 // Σ over active sessions of inter-agent traffic
	MeanDelayMS    float64 // mean over users of max incoming-flow delay
	Objective      float64 // Σ active-session Φ_s (noiseless reading)
	ActiveSessions int
	Hops           int // cumulative hop events so far
	Moves          int // cumulative hops that migrated (≠ stay-in-place)
	// PerSession maps active sessions to their individual observables.
	PerSession map[model.SessionID]SessionSample
}

// SessionSample is one session's observables.
type SessionSample struct {
	TrafficMbps float64
	MeanDelayMS float64
	Objective   float64
}
