package core

import (
	"container/heap"
	"fmt"
	"math/rand"

	"vconf/internal/assign"
	"vconf/internal/cost"
	"vconf/internal/model"
)

// Engine is the deterministic virtual-time simulator of Alg. 1 across all
// sessions of a scenario. Events (session hops, arrivals, departures) are
// processed in timestamp order from a seeded RNG, so identical seeds replay
// identical runs — the property every experiment and benchmark relies on.
//
// Engine is not safe for concurrent use; the Parallel engine provides the
// goroutine-per-session deployment shape instead.
type Engine struct {
	ev     *cost.Evaluator
	cfg    Config
	a      *assign.Assignment
	ledger *cost.Ledger
	rng    *rand.Rand
	// scratch carries the reusable hop/eval buffers: the engine is
	// single-threaded, so one scratch serves hops, rate queries, session
	// deactivation, and snapshot reporting.
	scratch *HopScratch

	active map[model.SessionID]bool
	epochs []int // arrival generation per session; stale hops are dropped
	events eventHeap
	seq    int // tiebreaker for deterministic ordering
	now    float64
	hops   int
	moves  int

	// OnHop, when set, observes every hop result (used by per-session
	// traces, Fig. 7).
	OnHop func(timeS float64, s model.SessionID, r HopResult)
}

type eventKind int

const (
	eventHop eventKind = iota + 1
	eventArrival
	eventDeparture
)

type event struct {
	t       float64
	seq     int
	kind    eventKind
	session model.SessionID
	boot    Bootstrapper
	// epoch guards hop events: a hop scheduled before a session departed
	// and re-arrived must not fire.
	epoch int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewEngine builds an engine over the evaluator's scenario. Sessions start
// inactive; activate them with ActivateSession or schedule arrivals.
func NewEngine(ev *cost.Evaluator, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sc := ev.Scenario()
	e := &Engine{
		ev:      ev,
		cfg:     cfg,
		a:       assign.New(sc),
		ledger:  cost.NewLedger(sc),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		scratch: NewHopScratch(ev),
		active:  make(map[model.SessionID]bool, sc.NumSessions()),
	}
	// The engine-owned scratch serves hops, rate queries, deactivation and
	// snapshot reporting: its per-session delay cache stays warm across all
	// of them unless the reference rebuild path is selected.
	e.scratch.Eval().SetDelayCacheEnabled(!cfg.RebuildDelayBase)
	return e, nil
}

// Assignment returns a snapshot (deep copy) of the current assignment.
func (e *Engine) Assignment() *assign.Assignment { return e.a.Clone() }

// Ledger exposes the engine's capacity ledger (read-mostly; mutate only via
// engine operations).
func (e *Engine) Ledger() *cost.Ledger { return e.ledger }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Hops returns (total hop events, hops that actually migrated).
func (e *Engine) Hops() (total, moved int) { return e.hops, e.moves }

// epochOf returns the arrival generation of session s, sizing the table
// lazily on first use.
func (e *Engine) epochOf(s model.SessionID) int {
	if e.epochs == nil {
		e.epochs = make([]int, e.ev.Scenario().NumSessions())
	}
	return e.epochs[s]
}

// ActivateSession bootstraps session s immediately (at the current virtual
// time) and schedules its first countdown.
func (e *Engine) ActivateSession(s model.SessionID, boot Bootstrapper) error {
	if e.active[s] {
		return fmt.Errorf("core: session %d already active", s)
	}
	if err := boot(e.a, s, e.ledger); err != nil {
		return fmt.Errorf("core: bootstrap session %d: %w", s, err)
	}
	// The bootstrap rewrote every variable of the session: drop any cached
	// delay state so the first hop rebuilds instead of patching it all.
	e.scratch.Eval().InvalidateDelay(s)
	e.active[s] = true
	e.scheduleHop(s)
	return nil
}

// DeactivateSession removes session s: its load leaves the ledger and its
// decisions reset. Pending hop events for it become stale and are dropped.
func (e *Engine) DeactivateSession(s model.SessionID) error {
	if !e.active[s] {
		return fmt.Errorf("core: session %d not active", s)
	}
	e.ledger.RemoveSparse(e.ev.SessionLoadSparse(e.a, s, e.scratch.Eval()))
	sc := e.ev.Scenario()
	for _, u := range sc.Session(s).Users {
		e.a.SetUserAgent(u, assign.Unassigned)
	}
	for _, f := range e.a.SessionFlows(s) {
		if err := e.a.SetFlowAgent(f, assign.Unassigned); err != nil {
			return err
		}
	}
	e.active[s] = false
	e.epochOf(s) // ensure allocated
	e.epochs[s]++
	// Departure tears every variable down; invalidate the session's cached
	// delay state (a later re-arrival full-rebuilds).
	e.scratch.Eval().InvalidateDelay(s)
	return nil
}

// DegradeAgent shrinks agent l's effective capacities to factor × nominal
// at the current virtual time (failure injection). Sessions currently
// overloading the agent are not evicted; the chain's repair moves migrate
// load away on subsequent hops (see Ledger.FitsRepair). factor = 1 restores
// full capacity.
func (e *Engine) DegradeAgent(l model.AgentID, factor float64) error {
	return e.ledger.SetCapacityScale(l, factor)
}

// ScheduleArrival enqueues a session arrival at virtual time t with the
// given bootstrapper (Fig. 5's dynamics).
func (e *Engine) ScheduleArrival(t float64, s model.SessionID, boot Bootstrapper) {
	e.push(event{t: t, kind: eventArrival, session: s, boot: boot})
}

// ScheduleDeparture enqueues a session departure at virtual time t.
func (e *Engine) ScheduleDeparture(t float64, s model.SessionID) {
	e.push(event{t: t, kind: eventDeparture, session: s})
}

func (e *Engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.events, ev)
}

func (e *Engine) scheduleHop(s model.SessionID) {
	rate := 0.0
	if e.cfg.Mode == ExactCTMC {
		r, err := SessionTotalRateWith(e.a, s, e.ev, e.ledger, e.cfg, e.scratch)
		if err == nil {
			rate = r
		}
	}
	e.push(event{
		t:       e.now + holdingTime(e.cfg, rate, e.rng),
		kind:    eventHop,
		session: s,
		epoch:   e.epochOf(s),
	})
}

// Run advances virtual time to untilS, processing all events, and returns
// samples: one immediately, one after every hop (subject to
// Config.HopSampling), one per arrival/departure, and one at every
// sampleEveryS boundary (0 disables periodic sampling).
func (e *Engine) Run(untilS, sampleEveryS float64) ([]Sample, error) {
	var samples []Sample
	samples = append(samples, e.Snapshot())

	nextSample := e.now + sampleEveryS
	for len(e.events) > 0 {
		ev := e.events[0]
		if ev.t > untilS {
			break
		}
		heap.Pop(&e.events)

		// Emit periodic samples up to the event time.
		if sampleEveryS > 0 {
			for nextSample < ev.t {
				e.now = nextSample
				samples = append(samples, e.Snapshot())
				nextSample += sampleEveryS
			}
		}
		e.now = ev.t

		switch ev.kind {
		case eventArrival:
			if err := e.ActivateSession(ev.session, ev.boot); err != nil {
				return samples, err
			}
			samples = append(samples, e.Snapshot())
		case eventDeparture:
			if err := e.DeactivateSession(ev.session); err != nil {
				return samples, err
			}
			samples = append(samples, e.Snapshot())
		case eventHop:
			if !e.active[ev.session] || ev.epoch != e.epochOf(ev.session) {
				continue // stale event from a departed generation
			}
			res, err := HopSessionWith(e.a, ev.session, e.ev, e.ledger, e.cfg, e.rng, e.scratch)
			if err != nil {
				return samples, fmt.Errorf("core: hop session %d: %w", ev.session, err)
			}
			e.hops++
			if res.Moved {
				e.moves++
			}
			if e.OnHop != nil {
				e.OnHop(e.now, ev.session, res)
			}
			if e.cfg.HopSampling == SampleEveryHop ||
				(e.cfg.HopSampling == SampleOnMove && res.Moved) {
				samples = append(samples, e.Snapshot())
			}
			e.scheduleHop(ev.session)
		}
	}
	// Trailing periodic samples.
	if sampleEveryS > 0 {
		for nextSample <= untilS {
			e.now = nextSample
			samples = append(samples, e.Snapshot())
			nextSample += sampleEveryS
		}
	}
	e.now = untilS
	samples = append(samples, e.Snapshot())
	return samples, nil
}

// Snapshot measures the current system state over the active sessions. It
// reports through the engine's scratch, so sampling does not rebuild dense
// per-session load vectors.
func (e *Engine) Snapshot() Sample {
	sc := e.ev.Scenario()
	s := Sample{
		TimeS:      e.now,
		Hops:       e.hops,
		Moves:      e.moves,
		PerSession: make(map[model.SessionID]SessionSample),
	}
	totalDelay, users := 0.0, 0
	for sid := 0; sid < sc.NumSessions(); sid++ {
		id := model.SessionID(sid)
		if !e.active[id] {
			continue
		}
		rep := e.ev.ReportSessionWith(e.a, id, e.scratch.Eval())
		s.ActiveSessions++
		s.TrafficMbps += rep.InterTraffic
		s.Objective += rep.Objective
		n := sc.Session(id).Size()
		totalDelay += rep.MeanDelayMS * float64(n)
		users += n
		s.PerSession[id] = SessionSample{
			TrafficMbps: rep.InterTraffic,
			MeanDelayMS: rep.MeanDelayMS,
			Objective:   rep.Objective,
		}
	}
	if users > 0 {
		s.MeanDelayMS = totalDelay / float64(users)
	}
	return s
}
