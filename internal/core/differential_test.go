package core

import (
	"testing"

	"vconf/internal/assign"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/workload"
)

// The sparse hop pipeline must be bit-identical to the dense reference: for
// a fixed seed and noiseless config, both enumerate the same feasible
// candidate sets with the same weights and therefore pick the same hop
// sequence. These tests replay whole engine runs under Config.DenseEval
// true/false across several scenario shapes and compare every decision,
// every sample, and the final assignment.

// hopTrace records one hop observation for cross-path comparison.
type hopTrace struct {
	timeS   float64
	session model.SessionID
	res     HopResult
}

// runDifferential drives one engine over the scenario and returns the hop
// trace, the samples, and the final assignment.
func runDifferential(t *testing.T, sc *model.Scenario, cfg Config, untilS float64,
	degrade func(e *Engine)) ([]hopTrace, []Sample, *assign.Assignment) {
	t.Helper()
	ev := newEval(t, sc)
	eng, err := NewEngine(ev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var trace []hopTrace
	eng.OnHop = func(timeS float64, s model.SessionID, r HopResult) {
		trace = append(trace, hopTrace{timeS: timeS, session: s, res: r})
	}
	boot := nrstBoot(ev.Params())
	for s := 0; s < sc.NumSessions(); s++ {
		if err := eng.ActivateSession(model.SessionID(s), boot); err != nil {
			t.Fatal(err)
		}
	}
	samples, err := eng.Run(untilS/2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if degrade != nil {
		degrade(eng)
	}
	more, err := eng.Run(untilS, 5)
	if err != nil {
		t.Fatal(err)
	}
	samples = append(samples, more...)
	return trace, samples, eng.Assignment()
}

// compareDifferential asserts that the dense reference, the sparse pipeline
// with its persistent delay cache (the production default), and the sparse
// pipeline with the per-hop delay-base rebuild (Config.RebuildDelayBase)
// replay identical runs.
func compareDifferential(t *testing.T, sc *model.Scenario, cfg Config, untilS float64,
	degrade func(e *Engine)) {
	t.Helper()
	dense := cfg
	dense.DenseEval = true
	cached := cfg
	cached.DenseEval = false
	cached.RebuildDelayBase = false
	rebuild := cfg
	rebuild.DenseEval = false
	rebuild.RebuildDelayBase = true

	dTrace, dSamples, dFinal := runDifferential(t, sc, dense, untilS, degrade)
	if len(dTrace) == 0 {
		t.Fatal("dense run produced no hops; differential comparison is vacuous")
	}
	for _, variant := range []struct {
		name string
		cfg  Config
	}{{"sparse-cached", cached}, {"sparse-rebuild", rebuild}} {
		sTrace, sSamples, sFinal := runDifferential(t, sc, variant.cfg, untilS, degrade)
		compareRuns(t, variant.name, dTrace, dSamples, dFinal, sTrace, sSamples, sFinal)
	}
}

// compareRuns asserts one sparse variant matches the dense reference run
// trace-for-trace, sample-for-sample, and in the final assignment.
func compareRuns(t *testing.T, name string,
	dTrace []hopTrace, dSamples []Sample, dFinal *assign.Assignment,
	sTrace []hopTrace, sSamples []Sample, sFinal *assign.Assignment) {
	t.Helper()
	if len(dTrace) != len(sTrace) {
		t.Fatalf("%s: hop counts differ: dense %d, sparse %d", name, len(dTrace), len(sTrace))
	}
	moved := 0
	for i := range dTrace {
		d, s := dTrace[i], sTrace[i]
		if d.timeS != s.timeS || d.session != s.session {
			t.Fatalf("%s: hop %d: schedule diverged: dense (t=%v s=%d) vs sparse (t=%v s=%d)",
				name, i, d.timeS, d.session, s.timeS, s.session)
		}
		if d.res.Moved != s.res.Moved || d.res.Decision != s.res.Decision {
			t.Fatalf("%s: hop %d: decision diverged: dense %+v vs sparse %+v", name, i, d.res, s.res)
		}
		if d.res.Feasible != s.res.Feasible {
			t.Fatalf("%s: hop %d: candidate sets differ: dense %d feasible, sparse %d",
				name, i, d.res.Feasible, s.res.Feasible)
		}
		if d.res.PhiBefore != s.res.PhiBefore || d.res.PhiAfter != s.res.PhiAfter {
			t.Fatalf("%s: hop %d: Φ readings differ: dense (%v→%v) vs sparse (%v→%v)",
				name, i, d.res.PhiBefore, d.res.PhiAfter, s.res.PhiBefore, s.res.PhiAfter)
		}
		if d.res.Moved {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no hop migrated; differential comparison exercised no load deltas")
	}
	if len(dSamples) != len(sSamples) {
		t.Fatalf("%s: sample counts differ: dense %d, sparse %d", name, len(dSamples), len(sSamples))
	}
	for i := range dSamples {
		d, s := dSamples[i], sSamples[i]
		if d.TimeS != s.TimeS || d.Objective != s.Objective ||
			d.TrafficMbps != s.TrafficMbps || d.MeanDelayMS != s.MeanDelayMS {
			t.Fatalf("%s: sample %d differs: dense %+v vs sparse %+v", name, i, d, s)
		}
	}
	if !dFinal.Equal(sFinal) {
		t.Fatalf("%s: final assignments differ:\ndense:  %v\nsparse: %v", name, dFinal, sFinal)
	}
}

// Shape 1: the synthetic 3-agent multi-session scenario with transcoding
// flows and heterogeneous delays.
func TestDifferentialSparseDenseMultiScenario(t *testing.T) {
	compareDifferential(t, multiScenario(t, 6), DefaultConfig(17), 160, nil)
}

// Shape 2: the prototype-scale generated workload (6 EC2 agents, sessions of
// 3–5 users, realistic latency substrate).
func TestDifferentialSparseDensePrototypeWorkload(t *testing.T) {
	sc, err := workload.Generate(workload.Prototype(5))
	if err != nil {
		t.Fatal(err)
	}
	compareDifferential(t, sc, DefaultConfig(23), 120, nil)
}

// Shape 3: a capacity-constrained large-scale slice with a mid-run agent
// degradation, exercising the FitsRepairDelta repair path where the ledger
// itself is overloaded.
func TestDifferentialSparseDenseConstrainedDegraded(t *testing.T) {
	wl := workload.LargeScale(9)
	wl.NumUsers = 30
	wl.NumUserNodes = 64
	wl.MeanBandwidthMbps = 500
	wl.MeanTranscodeSlots = 16
	sc, err := workload.Generate(wl)
	if err != nil {
		t.Fatal(err)
	}
	degrade := func(e *Engine) {
		if err := e.DegradeAgent(0, 0.4); err != nil {
			t.Fatal(err)
		}
	}
	compareDifferential(t, sc, DefaultConfig(31), 140, degrade)
}

// Shape 4: ExactCTMC mode on the tiny Fig. 3 instance — SessionTotalRate
// drives the holding times, so rate computations must match bitwise too.
func TestDifferentialSparseDenseExactCTMC(t *testing.T) {
	cfg := Config{Beta: 20, ObjectiveScale: 0.01, MeanCountdownS: 1, Mode: ExactCTMC, Seed: 3}
	compareDifferential(t, fig3Scenario(t), cfg, 120, nil)
}

// Shape 5: session churn through the engine's event loop — departures and
// re-arrivals exercise the delay cache's invalidation (bootstrap/teardown
// mark entries cold) interleaved with warm hops. Cached and rebuild paths
// must replay identical runs.
func TestDifferentialDelayCacheChurn(t *testing.T) {
	sc := multiScenario(t, 6)
	run := func(cfg Config) ([]hopTrace, []Sample, *assign.Assignment) {
		ev := newEval(t, sc)
		eng, err := NewEngine(ev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var trace []hopTrace
		eng.OnHop = func(timeS float64, s model.SessionID, r HopResult) {
			trace = append(trace, hopTrace{timeS: timeS, session: s, res: r})
		}
		boot := nrstBoot(ev.Params())
		for s := 0; s < 4; s++ {
			if err := eng.ActivateSession(model.SessionID(s), boot); err != nil {
				t.Fatal(err)
			}
		}
		// Churn: two sessions leave mid-run, one re-arrives, two fresh
		// sessions arrive late.
		eng.ScheduleDeparture(40, 1)
		eng.ScheduleDeparture(60, 2)
		eng.ScheduleArrival(80, 1, boot)
		eng.ScheduleArrival(90, 4, boot)
		eng.ScheduleArrival(100, 5, boot)
		samples, err := eng.Run(180, 5)
		if err != nil {
			t.Fatal(err)
		}
		return trace, samples, eng.Assignment()
	}
	cached := DefaultConfig(29)
	rebuild := DefaultConfig(29)
	rebuild.RebuildDelayBase = true
	cTrace, cSamples, cFinal := run(cached)
	rTrace, rSamples, rFinal := run(rebuild)
	compareRuns(t, "cached-vs-rebuild-churn", rTrace, rSamples, rFinal, cTrace, cSamples, cFinal)
}

// The primitive-level contract: sparse load, report, and capacity checks
// must be bit-identical to their dense counterparts state by state along a
// live chain trajectory.
func TestSparsePrimitivesMatchDense(t *testing.T) {
	sc, err := workload.Generate(workload.Prototype(11))
	if err != nil {
		t.Fatal(err)
	}
	ev := newEval(t, sc)
	p := ev.Params()
	a := assign.New(sc)
	ledger := cost.NewLedger(sc)
	boot := nrstBoot(p)
	for s := 0; s < sc.NumSessions(); s++ {
		if err := boot(a, model.SessionID(s), ledger); err != nil {
			t.Fatal(err)
		}
	}
	scr := ev.NewScratch()
	rng := newTestRNG(13)
	cfg := DefaultConfig(13)
	for i := 0; i < 120; i++ {
		s := model.SessionID(i % sc.NumSessions())
		denseLoad := p.SessionLoadOf(a, s)
		sparseLoad := ev.SessionLoadSparse(a, s, scr).Dense()
		for l := 0; l < sc.NumAgents(); l++ {
			if denseLoad.Down[l] != sparseLoad.Down[l] || denseLoad.Up[l] != sparseLoad.Up[l] ||
				denseLoad.Inter[l] != sparseLoad.Inter[l] || denseLoad.Tasks[l] != sparseLoad.Tasks[l] {
				t.Fatalf("step %d session %d: load differs at agent %d", i, s, l)
			}
		}
		dRep := ev.ReportSession(a, s)
		sRep := ev.ReportSessionWith(a, s, scr)
		if dRep != sRep {
			t.Fatalf("step %d session %d: reports differ:\ndense:  %+v\nsparse: %+v", i, s, dRep, sRep)
		}
		if _, err := HopSession(a, s, ev, ledger, cfg, rng); err != nil {
			t.Fatal(err)
		}
	}
}

// HopSampling policies must thin hop samples without touching the chain
// trajectory itself.
func TestHopSamplingPolicies(t *testing.T) {
	sc := multiScenario(t, 4)
	run := func(hs HopSampling) ([]Sample, int, int) {
		ev := newEval(t, sc)
		cfg := DefaultConfig(7)
		cfg.HopSampling = hs
		eng, err := NewEngine(ev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		boot := nrstBoot(ev.Params())
		for s := 0; s < sc.NumSessions(); s++ {
			if err := eng.ActivateSession(model.SessionID(s), boot); err != nil {
				t.Fatal(err)
			}
		}
		samples, err := eng.Run(120, 10)
		if err != nil {
			t.Fatal(err)
		}
		hops, moves := eng.Hops()
		return samples, hops, moves
	}
	every, hopsE, movesE := run(SampleEveryHop)
	onMove, hopsM, movesM := run(SampleOnMove)
	never, hopsN, movesN := run(SampleNever)
	if hopsE != hopsM || hopsE != hopsN || movesE != movesM || movesE != movesN {
		t.Fatalf("sampling policy changed the chain: hops (%d,%d,%d) moves (%d,%d,%d)",
			hopsE, hopsM, hopsN, movesE, movesM, movesN)
	}
	// Density must be monotone in policy strictness; hop samples exist, so
	// SampleNever is strictly lighter than SampleEveryHop.
	if !(len(every) >= len(onMove) && len(onMove) >= len(never) && len(every) > len(never)) {
		t.Fatalf("sampling density not monotone: every=%d onMove=%d never=%d",
			len(every), len(onMove), len(never))
	}
	// Final boundary samples must agree regardless of policy.
	fe, fn := every[len(every)-1], never[len(never)-1]
	if fe.TimeS != fn.TimeS || fe.Objective != fn.Objective || fe.TrafficMbps != fn.TrafficMbps {
		t.Fatalf("final samples differ across sampling policies: %+v vs %+v", fe, fn)
	}
}
