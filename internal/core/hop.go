package core

import (
	"math"
	"math/rand"

	"vconf/internal/assign"
	"vconf/internal/cost"
	"vconf/internal/model"
)

// HopResult reports what one HOP invocation did.
type HopResult struct {
	// Moved is true when the session migrated to a neighbor state; false
	// when no feasible neighbor existed.
	Moved bool
	// Decision is the executed migration (valid when Moved).
	Decision assign.Decision
	// PhiBefore and PhiAfter are the session-local objectives (noiseless).
	PhiBefore float64
	PhiAfter  float64
	// Feasible is the number of feasible neighbor states considered.
	Feasible int
	// TotalRate is Σ_f' q_{f,f'} / τ: the unnormalized total outgoing
	// weight, used by ExactCTMC holding times.
	TotalRate float64
}

// HopSession executes one HOP of Alg. 1 (lines 9–16) for session s:
// enumerate all feasible single-variable neighbors, evaluate their local
// objectives against the shared residual-capacity ledger, and migrate with
// probability ∝ exp(½·β·scale·(Φ_s,f − Φ_s,f')).
//
// The ledger must contain the loads of ALL admitted sessions including s;
// on return it reflects the (possibly migrated) state. The assignment is
// mutated in place. Callers are responsible for mutual exclusion across
// sessions (the virtual-time engine serializes events; Parallel uses the
// FREEZE/UNFREEZE lock).
func HopSession(
	a *assign.Assignment,
	s model.SessionID,
	ev *cost.Evaluator,
	ledger *cost.Ledger,
	cfg Config,
	rng *rand.Rand,
) (HopResult, error) {
	p := ev.Params()

	// Line 11: fetch residual capacities — remove s's own load so the
	// ledger holds exactly the *other* sessions' usage.
	curLoad := p.SessionLoadOf(a, s)
	ledger.Remove(curLoad)

	phiCur := ev.SessionObjective(a, s)
	phiCurReading := phiCur
	if cfg.Noise != nil {
		phiCurReading = cfg.Noise(phiCur)
	}

	// Line 12: F_s — all feasible solutions one decision away.
	decisions := a.SessionNeighborDecisions(s)
	type candidate struct {
		d          assign.Decision
		phi        float64 // noiseless, for reporting
		phiReading float64 // possibly noisy, drives the jump
	}
	cands := make([]candidate, 0, len(decisions))
	for _, d := range decisions {
		inv, err := a.Apply(d)
		if err != nil {
			ledger.Add(curLoad)
			return HopResult{}, err
		}
		load := p.SessionLoadOf(a, s)
		// FitsRepair (not Fits) so that after a runtime capacity
		// degradation, sessions can still migrate off the overloaded agent
		// instead of freezing; on a fully-feasible ledger it is identical
		// to Fits.
		if ledger.FitsRepair(load, curLoad) && cost.DelayFeasible(a, s) {
			phi := ev.SessionObjective(a, s)
			reading := phi
			if cfg.Noise != nil {
				reading = cfg.Noise(phi)
			}
			cands = append(cands, candidate{d: d, phi: phi, phiReading: reading})
		}
		if _, err := a.Apply(inv); err != nil {
			ledger.Add(curLoad)
			return HopResult{}, err
		}
	}

	res := HopResult{PhiBefore: phiCur, PhiAfter: phiCur, Feasible: len(cands)}
	if len(cands) == 0 {
		ledger.Add(curLoad)
		return res, nil
	}

	// Line 13: sample the target ∝ exp(½β(Φ_f − Φ_f')), max-shifted so
	// β = 400 cannot overflow float64.
	halfBeta := 0.5 * cfg.Beta * cfg.ObjectiveScale
	maxExp := math.Inf(-1)
	for _, c := range cands {
		if e := halfBeta * (phiCurReading - c.phiReading); e > maxExp {
			maxExp = e
		}
	}
	weights := make([]float64, len(cands))
	total := 0.0
	for i, c := range cands {
		weights[i] = math.Exp(halfBeta*(phiCurReading-c.phiReading) - maxExp)
		total += weights[i]
	}
	res.TotalRate = total * math.Exp(maxExp) // unshifted Σ weights (may be +Inf; only ExactCTMC uses it)

	pick := rng.Float64() * total
	chosen := len(cands) - 1
	acc := 0.0
	for i, w := range weights {
		acc += w
		if pick < acc {
			chosen = i
			break
		}
	}

	c := cands[chosen]
	if _, err := a.Apply(c.d); err != nil {
		ledger.Add(curLoad)
		return HopResult{}, err
	}
	ledger.Add(p.SessionLoadOf(a, s))
	res.Moved = true
	res.Decision = c.d
	res.PhiAfter = c.phi
	return res, nil
}

// SessionTotalRate computes R(f)/τ = Σ_{f'∈F_s} exp(½β·scale·(Φ_f − Φ_f'))
// for the session's current state without migrating: the total outgoing
// weight that determines the ExactCTMC holding time. The ledger is restored
// before returning.
func SessionTotalRate(
	a *assign.Assignment,
	s model.SessionID,
	ev *cost.Evaluator,
	ledger *cost.Ledger,
	cfg Config,
) (float64, error) {
	p := ev.Params()
	curLoad := p.SessionLoadOf(a, s)
	ledger.Remove(curLoad)
	defer ledger.Add(curLoad)

	phiCur := ev.SessionObjective(a, s)
	halfBeta := 0.5 * cfg.Beta * cfg.ObjectiveScale
	total := 0.0
	for _, d := range a.SessionNeighborDecisions(s) {
		inv, err := a.Apply(d)
		if err != nil {
			return 0, err
		}
		load := p.SessionLoadOf(a, s)
		if ledger.FitsRepair(load, curLoad) && cost.DelayFeasible(a, s) {
			total += math.Exp(halfBeta * (phiCur - ev.SessionObjective(a, s)))
		}
		if _, err := a.Apply(inv); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// holdingTime draws the time to the next hop of a session. In PaperHop mode
// it is exponential with the configured mean countdown; in ExactCTMC mode it
// is exponential with rate τ·Σ weights, which realizes the chain's exact
// transition rates (totalRate ≤ 0 falls back to the paper countdown so a
// stuck session still re-checks periodically; an infinite rate is clamped to
// a small positive holding time to avoid zero-time event loops).
func holdingTime(cfg Config, totalRate float64, rng *rand.Rand) float64 {
	mean := cfg.MeanCountdownS
	if cfg.Mode == ExactCTMC && totalRate > 0 {
		if math.IsInf(totalRate, 1) {
			mean = 1e-9
		} else {
			mean = cfg.MeanCountdownS / totalRate
		}
	}
	return rng.ExpFloat64() * mean
}
