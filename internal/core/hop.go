package core

import (
	"math"
	"math/rand"
	"sync"

	"vconf/internal/assign"
	"vconf/internal/cost"
	"vconf/internal/model"
)

// HopResult reports what one HOP invocation did.
type HopResult struct {
	// Moved is true when the session migrated to a neighbor state; false
	// when no feasible neighbor existed.
	Moved bool
	// Decision is the executed migration (valid when Moved).
	Decision assign.Decision
	// PhiBefore and PhiAfter are the session-local objectives (noiseless).
	PhiBefore float64
	PhiAfter  float64
	// Feasible is the number of feasible neighbor states considered.
	Feasible int
	// TotalRate is Σ_f' q_{f,f'} / τ: the unnormalized total outgoing
	// weight, used by ExactCTMC holding times.
	TotalRate float64
	// PhiBest and PhiSecond are the two lowest noiseless candidate
	// objectives among the feasible neighbors — the counterfactual-k
	// inputs, read off the already-evaluated candidate set at no extra
	// cost. PhiSecond is +Inf with fewer than two candidates (and PhiBest
	// +Inf with none). PhiSecond − PhiAfter is the gap between the sampled
	// move and the runner-up alternative.
	PhiBest   float64
	PhiSecond float64
}

// rankCandidates fills PhiBest/PhiSecond from a candidate Φ slice.
func (r *HopResult) rankCandidates(phis []float64) {
	best, second := math.Inf(1), math.Inf(1)
	for _, phi := range phis {
		switch {
		case phi < best:
			best, second = phi, best
		case phi < second:
			second = phi
		}
	}
	r.PhiBest, r.PhiSecond = best, second
}

// HopScratch pools every reusable buffer one hop needs: the cost package's
// evaluation scratch (sparse loads, delay matrix, and the persistent
// per-session delay cache BeginSession reuses across hops) plus the
// candidate-set buffers of the jump sampling. One scratch per worker; not
// safe for concurrent use.
type HopScratch struct {
	eval      *cost.Scratch
	decisions []assign.Decision
	ds        []assign.Decision // feasible candidates
	phis      []float64         // noiseless Φ per feasible candidate
	readings  []float64         // possibly noisy Φ readings
	weights   []float64
	// nbrIdx caches the proximity index backing Config.NeighborWindow > 0,
	// keyed by the scenario it was built for and the window size.
	nbrIdx    *assign.ProximityIndex
	nbrIdxSc  *model.Scenario
	nbrWindow int
}

// NewHopScratch builds a scratch sized for the evaluator's scenario.
func NewHopScratch(ev *cost.Evaluator) *HopScratch {
	return &HopScratch{eval: ev.NewScratch()}
}

// Eval exposes the underlying cost scratch so hosts (the engine's snapshot
// path, the orchestrator's commit path) can reuse it between hops.
func (scr *HopScratch) Eval() *cost.Scratch { return scr.eval }

func (scr *HopScratch) ensure(ev *cost.Evaluator) {
	if scr.eval == nil {
		scr.eval = ev.NewScratch()
		return
	}
	scr.eval.Ensure(ev)
}

// hopScratchPool recycles scratches for the pool-backed HopSession and
// SessionTotalRate entry points, so callers without worker state still run
// allocation-free at steady state.
var hopScratchPool = sync.Pool{New: func() interface{} { return &HopScratch{} }}

func acquireHopScratch(ev *cost.Evaluator) *HopScratch {
	scr := hopScratchPool.Get().(*HopScratch)
	scr.ensure(ev)
	return scr
}

func releaseHopScratch(scr *HopScratch) { hopScratchPool.Put(scr) }

// appendNeighbors enumerates session s's candidate decisions, applying the
// configured N_ngbr candidate window (0 = full scan). The proximity index
// behind a positive window is built once per (scenario, window) and cached
// on the scratch, so steady-state hops stay allocation-free.
func (scr *HopScratch) appendNeighbors(a *assign.Assignment, s model.SessionID, cfg Config) []assign.Decision {
	if cfg.NeighborWindow <= 0 {
		return a.AppendSessionNeighborDecisions(scr.decisions[:0], s)
	}
	sc := a.Scenario()
	if scr.nbrIdx == nil || scr.nbrIdxSc != sc || scr.nbrWindow != cfg.NeighborWindow {
		scr.nbrIdx = assign.NewProximityIndex(sc, cfg.NeighborWindow)
		scr.nbrIdxSc = sc
		scr.nbrWindow = cfg.NeighborWindow
	}
	return a.AppendSessionNeighborDecisionsOpts(scr.decisions[:0], s,
		assign.NeighborOptions{Window: cfg.NeighborWindow, Index: scr.nbrIdx})
}

// HopSession executes one HOP of Alg. 1 (lines 9–16) for session s:
// enumerate all feasible single-variable neighbors, evaluate their local
// objectives against the shared residual-capacity ledger, and migrate with
// probability ∝ exp(½·β·scale·(Φ_s,f − Φ_s,f')).
//
// The ledger must contain the loads of ALL admitted sessions including s;
// on return it reflects the (possibly migrated) state. The assignment is
// mutated in place. Callers are responsible for mutual exclusion across
// sessions (the virtual-time engine serializes events; Parallel uses the
// FREEZE/UNFREEZE lock).
//
// Evaluation runs on the sparse delta pipeline (cost.Scratch) with a pooled
// scratch; long-lived callers hold their own and use HopSessionWith. Setting
// cfg.DenseEval selects the dense reference implementation instead — the two
// pick bit-identical hop sequences for a fixed seed.
func HopSession(
	a *assign.Assignment,
	s model.SessionID,
	ev *cost.Evaluator,
	ledger *cost.Ledger,
	cfg Config,
	rng *rand.Rand,
) (HopResult, error) {
	if cfg.DenseEval {
		return hopSessionDense(a, s, ev, ledger, cfg, rng)
	}
	scr := acquireHopScratch(ev)
	defer releaseHopScratch(scr)
	return HopSessionWith(a, s, ev, ledger, cfg, rng, scr)
}

// HopSessionWith is HopSession with a caller-owned scratch: zero allocations
// at steady state.
func HopSessionWith(
	a *assign.Assignment,
	s model.SessionID,
	ev *cost.Evaluator,
	ledger *cost.Ledger,
	cfg Config,
	rng *rand.Rand,
	scr *HopScratch,
) (HopResult, error) {
	if cfg.DenseEval {
		return hopSessionDense(a, s, ev, ledger, cfg, rng)
	}
	scr.ensure(ev)
	es := scr.eval
	es.SetDelayCacheEnabled(!cfg.RebuildDelayBase)

	// Line 11: fetch residual capacities — remove s's own load so the
	// ledger holds exactly the *other* sessions' usage. BeginSession also
	// fills the per-flow delay base the candidate deltas patch against.
	be := ev.BeginSession(a, s, es)
	curLoad := es.CurLoad()
	ledger.RemoveSparse(curLoad)

	phiCur := be.Phi
	phiCurReading := phiCur
	if cfg.Noise != nil {
		phiCurReading = cfg.Noise(phiCur)
	}

	// Line 12: F_s — all feasible solutions one decision away (windowed to
	// the k nearest agents per variable when cfg.NeighborWindow > 0). Each
	// candidate costs O(session) work: a sparse load rebuild, a
	// touched-agents capacity check, and a delay re-evaluation of only the
	// flows the decision moved.
	scr.decisions = scr.appendNeighbors(a, s, cfg)
	scr.ds = scr.ds[:0]
	scr.phis = scr.phis[:0]
	scr.readings = scr.readings[:0]
	for _, d := range scr.decisions {
		inv, err := a.Apply(d)
		if err != nil {
			ledger.AddSparse(curLoad)
			return HopResult{}, err
		}
		load := ev.CandidateLoad(a, s, es)
		// FitsRepairDelta (not Fits) so that after a runtime capacity
		// degradation, sessions can still migrate off the overloaded agent
		// instead of freezing; on a fully-feasible ledger it is identical
		// to Fits.
		if ledger.FitsRepairDelta(load, curLoad) {
			if phi, ok := ev.CandidatePhi(a, s, d, es); ok {
				reading := phi
				if cfg.Noise != nil {
					reading = cfg.Noise(phi)
				}
				scr.ds = append(scr.ds, d)
				scr.phis = append(scr.phis, phi)
				scr.readings = append(scr.readings, reading)
			}
		}
		if _, err := a.Apply(inv); err != nil {
			ledger.AddSparse(curLoad)
			return HopResult{}, err
		}
	}

	res := HopResult{PhiBefore: phiCur, PhiAfter: phiCur, Feasible: len(scr.ds)}
	res.rankCandidates(scr.phis)
	if len(scr.ds) == 0 {
		ledger.AddSparse(curLoad)
		return res, nil
	}

	// Line 13: sample the target ∝ exp(½β(Φ_f − Φ_f')), max-shifted so
	// β = 400 cannot overflow float64.
	halfBeta := 0.5 * cfg.Beta * cfg.ObjectiveScale
	maxExp := math.Inf(-1)
	for _, r := range scr.readings {
		if e := halfBeta * (phiCurReading - r); e > maxExp {
			maxExp = e
		}
	}
	scr.weights = scr.weights[:0]
	total := 0.0
	for _, r := range scr.readings {
		w := math.Exp(halfBeta*(phiCurReading-r) - maxExp)
		scr.weights = append(scr.weights, w)
		total += w
	}
	res.TotalRate = total * math.Exp(maxExp) // unshifted Σ weights (may be +Inf; only ExactCTMC uses it)

	pick := rng.Float64() * total
	chosen := len(scr.ds) - 1
	acc := 0.0
	for i, w := range scr.weights {
		acc += w
		if pick < acc {
			chosen = i
			break
		}
	}

	d := scr.ds[chosen]
	phiChosen := scr.phis[chosen]
	if _, err := a.Apply(d); err != nil {
		ledger.AddSparse(curLoad)
		return HopResult{}, err
	}
	newLoad := ev.CandidateLoad(a, s, es)
	ledger.AddSparse(newLoad)
	// Commit notification: re-sync the session's warm delay-cache entry
	// from the winning candidate's already-evaluated load and Φ, so the
	// session's next BeginSession is a pure warm hit instead of a patch.
	ev.CommitSessionDecision(a, s, es, newLoad, phiChosen)
	res.Moved = true
	res.Decision = d
	res.PhiAfter = phiChosen
	return res, nil
}

// hopSessionDense is the dense reference implementation (pre-sparse
// pipeline), kept verbatim for differential testing and before/after
// benchmarking: every candidate pays a full SessionLoadOf, an O(NumAgents)
// FitsRepair scan, and a from-scratch SessionDelaysOf.
func hopSessionDense(
	a *assign.Assignment,
	s model.SessionID,
	ev *cost.Evaluator,
	ledger *cost.Ledger,
	cfg Config,
	rng *rand.Rand,
) (HopResult, error) {
	p := ev.Params()

	curLoad := p.SessionLoadOf(a, s)
	ledger.Remove(curLoad)

	phiCur := ev.SessionObjective(a, s)
	phiCurReading := phiCur
	if cfg.Noise != nil {
		phiCurReading = cfg.Noise(phiCur)
	}

	decisions := a.SessionNeighborDecisions(s)
	type candidate struct {
		d          assign.Decision
		phi        float64 // noiseless, for reporting
		phiReading float64 // possibly noisy, drives the jump
	}
	cands := make([]candidate, 0, len(decisions))
	for _, d := range decisions {
		inv, err := a.Apply(d)
		if err != nil {
			ledger.Add(curLoad)
			return HopResult{}, err
		}
		load := p.SessionLoadOf(a, s)
		if ledger.FitsRepair(load, curLoad) && cost.DelayFeasible(a, s) {
			phi := ev.SessionObjective(a, s)
			reading := phi
			if cfg.Noise != nil {
				reading = cfg.Noise(phi)
			}
			cands = append(cands, candidate{d: d, phi: phi, phiReading: reading})
		}
		if _, err := a.Apply(inv); err != nil {
			ledger.Add(curLoad)
			return HopResult{}, err
		}
	}

	res := HopResult{PhiBefore: phiCur, PhiAfter: phiCur, Feasible: len(cands)}
	candPhis := make([]float64, len(cands))
	for i, c := range cands {
		candPhis[i] = c.phi
	}
	res.rankCandidates(candPhis)
	if len(cands) == 0 {
		ledger.Add(curLoad)
		return res, nil
	}

	halfBeta := 0.5 * cfg.Beta * cfg.ObjectiveScale
	maxExp := math.Inf(-1)
	for _, c := range cands {
		if e := halfBeta * (phiCurReading - c.phiReading); e > maxExp {
			maxExp = e
		}
	}
	weights := make([]float64, len(cands))
	total := 0.0
	for i, c := range cands {
		weights[i] = math.Exp(halfBeta*(phiCurReading-c.phiReading) - maxExp)
		total += weights[i]
	}
	res.TotalRate = total * math.Exp(maxExp)

	pick := rng.Float64() * total
	chosen := len(cands) - 1
	acc := 0.0
	for i, w := range weights {
		acc += w
		if pick < acc {
			chosen = i
			break
		}
	}

	c := cands[chosen]
	if _, err := a.Apply(c.d); err != nil {
		ledger.Add(curLoad)
		return HopResult{}, err
	}
	ledger.Add(p.SessionLoadOf(a, s))
	res.Moved = true
	res.Decision = c.d
	res.PhiAfter = c.phi
	return res, nil
}

// SessionTotalRate computes R(f)/τ = Σ_{f'∈F_s} exp(½β·scale·(Φ_f − Φ_f'))
// for the session's current state without migrating: the total outgoing
// weight that determines the ExactCTMC holding time. The ledger is restored
// before returning.
func SessionTotalRate(
	a *assign.Assignment,
	s model.SessionID,
	ev *cost.Evaluator,
	ledger *cost.Ledger,
	cfg Config,
) (float64, error) {
	if cfg.DenseEval {
		return sessionTotalRateDense(a, s, ev, ledger, cfg)
	}
	scr := acquireHopScratch(ev)
	defer releaseHopScratch(scr)
	return SessionTotalRateWith(a, s, ev, ledger, cfg, scr)
}

// SessionTotalRateWith is SessionTotalRate with a caller-owned scratch.
func SessionTotalRateWith(
	a *assign.Assignment,
	s model.SessionID,
	ev *cost.Evaluator,
	ledger *cost.Ledger,
	cfg Config,
	scr *HopScratch,
) (float64, error) {
	if cfg.DenseEval {
		return sessionTotalRateDense(a, s, ev, ledger, cfg)
	}
	scr.ensure(ev)
	es := scr.eval
	es.SetDelayCacheEnabled(!cfg.RebuildDelayBase)

	be := ev.BeginSession(a, s, es)
	curLoad := es.CurLoad()
	ledger.RemoveSparse(curLoad)
	defer ledger.AddSparse(curLoad)

	halfBeta := 0.5 * cfg.Beta * cfg.ObjectiveScale
	total := 0.0
	scr.decisions = scr.appendNeighbors(a, s, cfg)
	for _, d := range scr.decisions {
		inv, err := a.Apply(d)
		if err != nil {
			return 0, err
		}
		load := ev.CandidateLoad(a, s, es)
		if ledger.FitsRepairDelta(load, curLoad) {
			if phi, ok := ev.CandidatePhi(a, s, d, es); ok {
				total += math.Exp(halfBeta * (be.Phi - phi))
			}
		}
		if _, err := a.Apply(inv); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// sessionTotalRateDense is the dense reference for SessionTotalRate.
func sessionTotalRateDense(
	a *assign.Assignment,
	s model.SessionID,
	ev *cost.Evaluator,
	ledger *cost.Ledger,
	cfg Config,
) (float64, error) {
	p := ev.Params()
	curLoad := p.SessionLoadOf(a, s)
	ledger.Remove(curLoad)
	defer ledger.Add(curLoad)

	phiCur := ev.SessionObjective(a, s)
	halfBeta := 0.5 * cfg.Beta * cfg.ObjectiveScale
	total := 0.0
	for _, d := range a.SessionNeighborDecisions(s) {
		inv, err := a.Apply(d)
		if err != nil {
			return 0, err
		}
		load := p.SessionLoadOf(a, s)
		if ledger.FitsRepair(load, curLoad) && cost.DelayFeasible(a, s) {
			total += math.Exp(halfBeta * (phiCur - ev.SessionObjective(a, s)))
		}
		if _, err := a.Apply(inv); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// holdingTime draws the time to the next hop of a session. In PaperHop mode
// it is exponential with the configured mean countdown; in ExactCTMC mode it
// is exponential with rate τ·Σ weights, which realizes the chain's exact
// transition rates (totalRate ≤ 0 falls back to the paper countdown so a
// stuck session still re-checks periodically; an infinite rate is clamped to
// a small positive holding time to avoid zero-time event loops).
func holdingTime(cfg Config, totalRate float64, rng *rand.Rand) float64 {
	mean := cfg.MeanCountdownS
	if cfg.Mode == ExactCTMC && totalRate > 0 {
		if math.IsInf(totalRate, 1) {
			mean = 1e-9
		} else {
			mean = cfg.MeanCountdownS / totalRate
		}
	}
	return rng.ExpFloat64() * mean
}
