package core

import (
	"testing"

	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/cost"
	"vconf/internal/model"
	"vconf/internal/workload"
)

// Allocation-regression tests: the steady-state hop pipeline must not
// allocate. They run the real benchmark loop via testing.Benchmark and
// assert AllocsPerOp — a future change that reintroduces dense-path
// allocations (per-candidate slices, maps, closures) fails here instead of
// silently regressing BenchmarkHopSession.

// allocFixture bootstraps a prototype-scale workload ready for hops.
func allocFixture(t *testing.T, seed int64) (*cost.Evaluator, *assign.Assignment, *cost.Ledger) {
	t.Helper()
	sc, err := workload.Generate(workload.Prototype(seed))
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultParams()
	ev, err := cost.NewEvaluator(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	a := assign.New(sc)
	ledger := cost.NewLedger(sc)
	if err := baseline.Assign(a, p, ledger); err != nil {
		t.Fatal(err)
	}
	return ev, a, ledger
}

func TestHopSessionZeroAllocs(t *testing.T) {
	// Both sparse paths — the warm delay cache (production default) and the
	// per-hop rebuild reference — must run allocation-free at steady state.
	for _, tc := range []struct {
		name    string
		rebuild bool
	}{{"warm-delay-cache", false}, {"rebuild-delay-base", true}} {
		t.Run(tc.name, func(t *testing.T) {
			ev, a, ledger := allocFixture(t, 1)
			sessions := ev.Scenario().NumSessions()
			cfg := DefaultConfig(1)
			cfg.RebuildDelayBase = tc.rebuild
			rng := newTestRNG(1)
			scr := NewHopScratch(ev)

			// Warm-up: one pass over every session sizes all buffers (and,
			// on the cached path, allocates every session's delay entry).
			for s := 0; s < sessions; s++ {
				if _, err := HopSessionWith(a, model.SessionID(s), ev, ledger, cfg, rng, scr); err != nil {
					t.Fatal(err)
				}
			}

			var hopErr error
			i := 0
			res := testing.Benchmark(func(b *testing.B) {
				for n := 0; n < b.N; n++ {
					if _, err := HopSessionWith(a, model.SessionID(i%sessions), ev, ledger, cfg, rng, scr); err != nil {
						hopErr = err
						return
					}
					i++
				}
			})
			if hopErr != nil {
				t.Fatal(hopErr)
			}
			if allocs := res.AllocsPerOp(); allocs != 0 {
				t.Errorf("HopSessionWith candidate loop allocates %d allocs/op, want 0", allocs)
			}
		})
	}
}

func TestSessionTotalRateZeroAllocs(t *testing.T) {
	ev, a, ledger := allocFixture(t, 2)
	sessions := ev.Scenario().NumSessions()
	cfg := DefaultConfig(2)
	cfg.Mode = ExactCTMC
	scr := NewHopScratch(ev)
	for s := 0; s < sessions; s++ {
		if _, err := SessionTotalRateWith(a, model.SessionID(s), ev, ledger, cfg, scr); err != nil {
			t.Fatal(err)
		}
	}
	var rateErr error
	i := 0
	res := testing.Benchmark(func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := SessionTotalRateWith(a, model.SessionID(i%sessions), ev, ledger, cfg, scr); err != nil {
				rateErr = err
				return
			}
			i++
		}
	})
	if rateErr != nil {
		t.Fatal(rateErr)
	}
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Errorf("SessionTotalRateWith allocates %d allocs/op, want 0", allocs)
	}
}

func TestFitsRepairDeltaZeroAllocs(t *testing.T) {
	ev, a, ledger := allocFixture(t, 3)
	sc := ev.Scenario()
	scr := ev.NewScratch()
	cur := ev.SessionLoadSparse(a, 0, scr)
	own := cost.NewSparseLoad(sc.NumAgents())
	own.CopyFrom(cur)
	cand := ev.CandidateLoad(a, 0, scr)

	res := testing.Benchmark(func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if !ledger.FitsRepairDelta(cand, own) {
				b.Fatal("unexpected infeasible")
			}
		}
	})
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Errorf("FitsRepairDelta allocates %d allocs/op, want 0", allocs)
	}
}

// The candidate-evaluation primitives (sparse load rebuild + delta delay Φ)
// must also stay allocation-free, independent of the hop wrapper.
func TestCandidateEvalZeroAllocs(t *testing.T) {
	ev, a, _ := allocFixture(t, 4)
	scr := ev.NewScratch()
	s := model.SessionID(0)
	ev.BeginSession(a, s, scr)
	var decisions []assign.Decision
	decisions = a.AppendSessionNeighborDecisions(decisions, s)
	if len(decisions) == 0 {
		t.Fatal("no neighbor decisions")
	}
	var evalErr error
	res := testing.Benchmark(func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			d := decisions[n%len(decisions)]
			inv, err := a.Apply(d)
			if err != nil {
				evalErr = err
				return
			}
			ev.CandidateLoad(a, s, scr)
			ev.CandidatePhi(a, s, d, scr)
			if _, err := a.Apply(inv); err != nil {
				evalErr = err
				return
			}
		}
	})
	if evalErr != nil {
		t.Fatal(evalErr)
	}
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Errorf("candidate evaluation allocates %d allocs/op, want 0", allocs)
	}
}
