package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"vconf/internal/assign"
	"vconf/internal/baseline"
	"vconf/internal/cost"
)

func newTestRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestParallelRequiresCompleteAssignment(t *testing.T) {
	sc := multiScenario(t, 3)
	ev := newEval(t, sc)
	if _, err := NewParallel(ev, DefaultConfig(1), assign.New(sc)); err == nil {
		t.Fatal("NewParallel accepted an incomplete assignment")
	}
}

func TestParallelRunImprovesAndStaysFeasible(t *testing.T) {
	sc := multiScenario(t, 6)
	ev := newEval(t, sc)
	a := assign.New(sc)
	ledger := cost.NewLedger(sc)
	if err := baseline.Assign(a, ev.Params(), ledger); err != nil {
		t.Fatal(err)
	}
	initial := ev.ReportSystem(a)

	cfg := DefaultConfig(31)
	cfg.MeanCountdownS = 5 // 5 virtual s × 1 ms/s = 5 ms mean between hops
	pe, err := NewParallel(ev, cfg, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := pe.Run(context.Background(), 400*time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	final, hops, moved := pe.Snapshot()
	if hops == 0 {
		t.Fatal("no hops executed by the concurrent engine")
	}
	if moved == 0 {
		t.Fatal("no migrations executed by the concurrent engine")
	}
	if err := ev.CheckFeasible(final); err != nil {
		t.Fatalf("concurrent run ended infeasible: %v", err)
	}
	rep := pe.Report()
	if rep.Objective > initial.Objective {
		t.Fatalf("objective rose under the concurrent engine: %v → %v",
			initial.Objective, rep.Objective)
	}
}

func TestParallelRunHonorsContextCancel(t *testing.T) {
	sc := multiScenario(t, 3)
	ev := newEval(t, sc)
	a := assign.New(sc)
	if err := baseline.Assign(a, ev.Params(), cost.NewLedger(sc)); err != nil {
		t.Fatal(err)
	}
	pe, err := NewParallel(ev, DefaultConfig(5), a)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- pe.Run(ctx, time.Minute) }()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run after cancel: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after context cancellation")
	}
}
