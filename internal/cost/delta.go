package cost

import (
	"fmt"

	"vconf/internal/assign"
	"vconf/internal/model"
)

// This file implements delta cost evaluation: the objective Φ = Σ_s Φ_s
// decomposes by session, and Φ_s depends only on session s's own decision
// variables (§IV-A-2), so any single-variable change invalidates exactly one
// session. The ObjectiveCache exploits that to answer system-wide objective
// queries after a migration in O(1 touched session) instead of O(S) — the
// property the online orchestrator's hot path relies on.

// TouchedSession returns the unique session whose objective a decision can
// change: the session of the re-subscribed user (UserMove) or of the moved
// flow's source (FlowMove).
func TouchedSession(sc *model.Scenario, d assign.Decision) (model.SessionID, error) {
	switch d.Kind {
	case assign.UserMove:
		if int(d.User) < 0 || int(d.User) >= sc.NumUsers() {
			return 0, fmt.Errorf("cost: touched session: unknown user %d", d.User)
		}
		return sc.User(d.User).Session, nil
	case assign.FlowMove:
		if int(d.Flow.Src) < 0 || int(d.Flow.Src) >= sc.NumUsers() {
			return 0, fmt.Errorf("cost: touched session: unknown flow source %d", d.Flow.Src)
		}
		return sc.User(d.Flow.Src).Session, nil
	default:
		return 0, fmt.Errorf("cost: touched session: invalid decision kind %d", d.Kind)
	}
}

// ObjectiveCache memoizes per-session objectives and loads for one evolving
// assignment. Sessions marked inactive contribute nothing; dirty sessions
// are recomputed lazily on the next query — through the sparse evaluation
// pipeline (an owned Scratch), so a refresh allocates nothing at steady
// state and cached loads are SparseLoads ready for O(touched) ledger
// accounting. Not safe for concurrent use — the orchestrator queries it only
// under its commit lock.
type ObjectiveCache struct {
	ev     *Evaluator
	phi    []float64
	load   []*SparseLoad
	dirty  []bool
	active []bool
	scr    *Scratch

	// recomputes counts lazy per-session re-evaluations, so tests and
	// benchmarks can verify the delta path avoids full-scenario work.
	recomputes int
}

// NewObjectiveCache builds an empty cache (all sessions inactive).
func NewObjectiveCache(ev *Evaluator) *ObjectiveCache {
	n := ev.Scenario().NumSessions()
	return &ObjectiveCache{
		ev:     ev,
		phi:    make([]float64, n),
		load:   make([]*SparseLoad, n),
		dirty:  make([]bool, n),
		active: make([]bool, n),
		scr:    ev.NewScratch(),
	}
}

// SetActive marks session s active (participating in the total) or inactive.
// Activation marks the session dirty; deactivation clears the cached
// objective. The session's SparseLoad object is left untouched (it is only
// reachable again through the next refresh, which overwrites it), so a load
// pointer captured before the deactivation keeps its values — same safety
// property the dense cache's nil-out provided.
func (c *ObjectiveCache) SetActive(s model.SessionID, on bool) {
	c.active[s] = on
	if on {
		c.dirty[s] = true
	} else {
		c.phi[s] = 0
		c.dirty[s] = false
		// The session is departing: its variables are about to be torn
		// down wholesale, so drop the refresh scratch's delay-cache entry —
		// a re-arrival full-rebuilds instead of patching a fully-changed
		// matrix.
		c.scr.InvalidateDelay(s)
	}
}

// Active reports whether session s is active.
func (c *ObjectiveCache) Active(s model.SessionID) bool { return c.active[s] }

// SetDelayCacheEnabled toggles the persistent delay cache on the cache's
// internal refresh scratch — control planes thread their rebuild-reference
// config bit (core.Config.RebuildDelayBase) through here so disabling the
// cache really disables it on every evaluation path, refreshes included.
func (c *ObjectiveCache) SetDelayCacheEnabled(on bool) { c.scr.SetDelayCacheEnabled(on) }

// ActiveSessions returns the active session IDs in ascending order.
func (c *ObjectiveCache) ActiveSessions() []model.SessionID {
	var out []model.SessionID
	for s, on := range c.active {
		if on {
			out = append(out, model.SessionID(s))
		}
	}
	return out
}

// NumActive returns the number of active sessions.
func (c *ObjectiveCache) NumActive() int {
	n := 0
	for _, on := range c.active {
		if on {
			n++
		}
	}
	return n
}

// Invalidate marks session s dirty: its objective and load are recomputed on
// the next query. Call it after committing any decision touching s.
func (c *ObjectiveCache) Invalidate(s model.SessionID) {
	if c.active[s] {
		c.dirty[s] = true
	}
}

// InvalidateDecision invalidates the one session the decision touches.
func (c *ObjectiveCache) InvalidateDecision(d assign.Decision) error {
	s, err := TouchedSession(c.ev.Scenario(), d)
	if err != nil {
		return err
	}
	c.Invalidate(s)
	return nil
}

// refresh recomputes session s from the assignment if dirty, via the sparse
// pipeline: the scratch computes load and Φ_s, and the result is copied into
// the session's owned SparseLoad (reused across refreshes).
func (c *ObjectiveCache) refresh(a *assign.Assignment, s model.SessionID) {
	if !c.dirty[s] {
		return
	}
	be := c.ev.BeginSession(a, s, c.scr)
	c.phi[s] = be.Phi
	if c.load[s] == nil {
		c.load[s] = NewSparseLoad(c.ev.Scenario().NumAgents())
	}
	c.load[s].CopyFrom(c.scr.CurLoad())
	c.dirty[s] = false
	c.recomputes++
}

// Prime installs a freshly evaluated objective and load for session s and
// marks it clean, without touching the assignment. The pipelined
// orchestrator's commit path feeds it from the committing worker's own
// BeginSession evaluation, so objective queries never recompute an
// in-flight session from the shared assignment. phi and load must describe
// s's committed state (they are bit-identical to what a refresh would
// compute, since Φ_s is a pure function of the session's variables).
// Inactive sessions are ignored.
func (c *ObjectiveCache) Prime(s model.SessionID, phi float64, load *SparseLoad) {
	if !c.active[s] {
		return
	}
	c.phi[s] = phi
	if c.load[s] == nil {
		c.load[s] = NewSparseLoad(c.ev.Scenario().NumAgents())
	}
	c.load[s].CopyFrom(load)
	c.dirty[s] = false
}

// SessionObjective returns Φ_s, recomputing only if s is dirty. Inactive
// sessions read as zero.
func (c *ObjectiveCache) SessionObjective(a *assign.Assignment, s model.SessionID) float64 {
	if !c.active[s] {
		return 0
	}
	c.refresh(a, s)
	return c.phi[s]
}

// SessionLoad returns session s's cached sparse load (nil when inactive).
// Callers must not mutate the returned load; it stays valid until the next
// refresh of the same session.
func (c *ObjectiveCache) SessionLoad(a *assign.Assignment, s model.SessionID) *SparseLoad {
	if !c.active[s] {
		return nil
	}
	c.refresh(a, s)
	return c.load[s]
}

// TotalObjective returns Σ over active sessions of Φ_s, recomputing only
// dirty entries.
func (c *ObjectiveCache) TotalObjective(a *assign.Assignment) float64 {
	total := 0.0
	for s, on := range c.active {
		if !on {
			continue
		}
		c.refresh(a, model.SessionID(s))
		total += c.phi[s]
	}
	return total
}

// Recomputes returns the cumulative count of per-session re-evaluations the
// cache has performed — the delta-evaluation cost meter.
func (c *ObjectiveCache) Recomputes() int { return c.recomputes }

// Clone returns a deep copy of the ledger, including usage vectors and any
// capacity scaling. Solver workers clone the shared ledger to evaluate hop
// candidates without holding the commit lock.
func (g *Ledger) Clone() *Ledger {
	out := &Ledger{
		sc:    g.sc,
		down:  append([]float64(nil), g.down...),
		up:    append([]float64(nil), g.up...),
		tasks: append([]int(nil), g.tasks...),
	}
	if g.scale != nil {
		out.scale = append([]float64(nil), g.scale...)
	}
	return out
}
