package cost

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"vconf/internal/assign"
	"vconf/internal/model"
	"vconf/internal/workload"
)

// delayCacheFixture builds a bootstrapped prototype workload with every
// session assigned (nearest-agent greedy, capacity-unchecked — evaluation
// does not need feasibility).
func delayCacheFixture(t *testing.T, seed int64) (*Evaluator, *assign.Assignment) {
	t.Helper()
	sc, err := workload.Generate(workload.Prototype(seed))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(sc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	a := assign.New(sc)
	for u := 0; u < sc.NumUsers(); u++ {
		a.SetUserAgent(model.UserID(u), sc.NearestAgent(model.UserID(u)))
	}
	for _, f := range a.Flows() {
		if err := a.SetFlowAgent(f, sc.NearestAgent(f.Src)); err != nil {
			t.Fatal(err)
		}
	}
	return ev, a
}

func sameEval(t *testing.T, step int, s model.SessionID, warm, cold SessionEval) {
	t.Helper()
	if math.Float64bits(warm.Phi) != math.Float64bits(cold.Phi) ||
		math.Float64bits(warm.MeanDelayMS) != math.Float64bits(cold.MeanDelayMS) ||
		math.Float64bits(warm.WorstMS) != math.Float64bits(cold.WorstMS) {
		t.Fatalf("step %d session %d: cached evaluation diverged from rebuild:\nwarm %+v\ncold %+v",
			step, s, warm, cold)
	}
}

// TestDelayCacheBitIdenticalToRebuild walks a long random decision sequence
// — moves applied permanently, moves applied and reverted, interleaved
// sessions — and asserts after every mutation that a cached BeginSession is
// bit-identical (Φ, delay summary, sparse load, and the full delay base) to
// a rebuild-path BeginSession on a separate scratch.
func TestDelayCacheBitIdenticalToRebuild(t *testing.T) {
	ev, a := delayCacheFixture(t, 51)
	sc := ev.Scenario()
	warm := ev.NewScratch() // delay cache on (default)
	cold := ev.NewScratch()
	cold.SetDelayCacheEnabled(false)

	rng := rand.New(rand.NewSource(51))
	var decisions []assign.Decision
	for step := 0; step < 400; step++ {
		s := model.SessionID(rng.Intn(sc.NumSessions()))
		we := ev.BeginSession(a, s, warm)
		ce := ev.BeginSession(a, s, cold)
		sameEval(t, step, s, we, ce)

		// The full base matrix (off-diagonal — the diagonal is never
		// written nor read) and the sparse load must match bitwise too.
		n := warm.n
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if math.Float64bits(warm.base[i*n+j]) != math.Float64bits(cold.base[i*n+j]) {
					t.Fatalf("step %d session %d: delay base diverged at (%d,%d): %v vs %v",
						step, s, i, j, warm.base[i*n+j], cold.base[i*n+j])
				}
			}
		}
		wl, cl := warm.CurLoad().Dense(), cold.CurLoad().Dense()
		for l := 0; l < sc.NumAgents(); l++ {
			if wl.Down[l] != cl.Down[l] || wl.Up[l] != cl.Up[l] ||
				wl.Inter[l] != cl.Inter[l] || wl.Tasks[l] != cl.Tasks[l] {
				t.Fatalf("step %d session %d: cached load diverged at agent %d", step, s, l)
			}
		}

		// Mutate: apply a random neighbor decision of this session, and
		// revert it half the time (a rejected proposal).
		decisions = a.AppendSessionNeighborDecisions(decisions[:0], s)
		if len(decisions) == 0 {
			continue
		}
		d := decisions[rng.Intn(len(decisions))]
		inv, err := a.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		if rng.Intn(2) == 0 {
			if _, err := a.Apply(inv); err != nil {
				t.Fatal(err)
			}
		}
	}
	dc := warm.DelayCacheStats()
	if dc == nil {
		t.Fatal("cached scratch never built a delay cache")
	}
	if dc.Hits() == 0 || dc.Patches() == 0 || dc.Rebuilds() == 0 {
		t.Fatalf("walk did not exercise all cache states: hits=%d patches=%d rebuilds=%d",
			dc.Hits(), dc.Patches(), dc.Rebuilds())
	}
	if cold.DelayCacheStats() != nil {
		t.Fatal("disabled scratch built a delay cache")
	}
}

// TestDelayCacheInvalidate pins the cold-entry fallback: an invalidated
// session full-rebuilds on the next BeginSession and produces identical
// results; tearing a session down (departure shape) and re-assigning it is
// also exact through the cache.
func TestDelayCacheInvalidate(t *testing.T) {
	ev, a := delayCacheFixture(t, 52)
	sc := ev.Scenario()
	warm := ev.NewScratch()
	cold := ev.NewScratch()
	cold.SetDelayCacheEnabled(false)
	s := model.SessionID(0)

	ev.BeginSession(a, s, warm)
	dc := warm.DelayCacheStats()
	if !dc.Warm(s) {
		t.Fatal("entry not warm after BeginSession")
	}
	rebuilds := dc.Rebuilds()
	warm.InvalidateDelay(s)
	if dc.Warm(s) {
		t.Fatal("entry still warm after InvalidateDelay")
	}
	sameEval(t, 0, s, ev.BeginSession(a, s, warm), ev.BeginSession(a, s, cold))
	if dc.Rebuilds() != rebuilds+1 {
		t.Fatalf("invalidated entry did not rebuild: %d rebuilds, want %d", dc.Rebuilds(), rebuilds+1)
	}

	// Departure shape: unassign everything, then re-assign elsewhere. The
	// warm entry must patch to the torn-down state (+Inf delays) and back,
	// bit-identically.
	for _, u := range sc.Session(s).Users {
		a.SetUserAgent(u, assign.Unassigned)
	}
	sameEval(t, 1, s, ev.BeginSession(a, s, warm), ev.BeginSession(a, s, cold))
	for _, u := range sc.Session(s).Users {
		a.SetUserAgent(u, model.AgentID(int(u)%sc.NumAgents()))
	}
	sameEval(t, 2, s, ev.BeginSession(a, s, warm), ev.BeginSession(a, s, cold))
}

// TestDelayCacheUnchangedSessionIsAHit pins the pure warm hit: re-evaluating
// a session whose variables did not move reuses the cached state outright.
func TestDelayCacheUnchangedSessionIsAHit(t *testing.T) {
	ev, a := delayCacheFixture(t, 53)
	scr := ev.NewScratch()
	s := model.SessionID(1)
	first := ev.BeginSession(a, s, scr)
	dc := scr.DelayCacheStats()
	hits := dc.Hits()
	second := ev.BeginSession(a, s, scr)
	if dc.Hits() != hits+1 {
		t.Fatalf("unchanged re-evaluation was not a hit: %d hits, want %d", dc.Hits(), hits+1)
	}
	sameEval(t, 0, s, second, first)
}

// TestCandidatePhiStaleScratchFailsLoudly pins the staleness contract: a
// decision referencing a user outside the session prepared by BeginSession
// must panic with a descriptive message, not a negative slice index.
func TestCandidatePhiStaleScratchFailsLoudly(t *testing.T) {
	ev, a := delayCacheFixture(t, 54)
	sc := ev.Scenario()
	scr := ev.NewScratch()
	s := model.SessionID(0)
	ev.BeginSession(a, s, scr)

	// A user from a different session.
	var foreign model.UserID = -1
	for u := 0; u < sc.NumUsers(); u++ {
		if sc.User(model.UserID(u)).Session != s {
			foreign = model.UserID(u)
			break
		}
	}
	if foreign < 0 {
		t.Fatal("fixture has a single session; cannot build a stale decision")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("CandidatePhi accepted a decision for a user outside the prepared session")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "not a member of session") {
			t.Fatalf("panic does not describe the contract violation: %v", r)
		}
	}()
	d := assign.Decision{Kind: assign.UserMove, User: foreign, To: 0}
	ev.CandidatePhi(a, s, d, scr)
}
