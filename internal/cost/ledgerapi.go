package cost

import "vconf/internal/model"

// This file defines the capacity-ledger API surface and the agent-range
// primitives the sharded backend (internal/shard) is built from. Every
// range method is the exact restriction of its whole-fleet counterpart to
// agents in [lo, hi): per-agent updates and checks are independent, so a
// partition of the agent space into ranges reproduces the global operation
// bit for bit — the property the shard equivalence tests pin.

// LedgerAPI is the capacity-ledger surface solvers and control planes
// program against: accounting (constraints (5)–(7)), feasibility queries,
// and runtime capacity degradation. Two backends satisfy it:
//
//   - *Ledger (this package): dense, single-owner, no internal locking —
//     the solver-engine and snapshot workhorse.
//   - *shard.Ledger: the same arithmetic behind P lock-striped ID-range
//     shards, safe for concurrent commit pipelines.
//
// Methods taking dense SessionLoads are control-plane-rate (bootstrap,
// departures); the sparse delta methods are the hot path.
type LedgerAPI interface {
	// Add and Remove account a dense session load in and out.
	Add(sl *SessionLoad)
	Remove(sl *SessionLoad)
	// AddSparse and RemoveSparse are the O(touched) sparse forms.
	AddSparse(sl *SparseLoad)
	RemoveSparse(sl *SparseLoad)
	// Fits reports whether the ledger plus the candidate respects every
	// capacity; nil checks the ledger alone.
	Fits(candidate *SessionLoad) bool
	// TryAdd atomically checks Fits(load) and, on success, accounts the
	// load — one critical section, so admissions racing concurrent commits
	// (the pipelined orchestrator) can never overshoot capacity the way a
	// separate Fits-then-Add could. Bootstrap policies must use it for
	// their final admission step.
	TryAdd(load *SessionLoad) bool
	// FitsRepair and FitsRepairDelta are the repair-semantics checks (see
	// Ledger.FitsRepair): replacing current with candidate must not worsen
	// any already-overloaded agent.
	FitsRepair(candidate, current *SessionLoad) bool
	FitsRepairDelta(candidate, current *SparseLoad) bool
	// FitsTouched is the strict check restricted to the candidate's touched
	// agents (callers must guard a degraded background; see sparse.go).
	FitsTouched(candidate *SparseLoad) bool
	// Violations lists agents over their (scaled) capacity.
	Violations() []model.AgentID
	// Usage returns copies of the per-agent usage vectors.
	Usage() (down, up []float64, tasks []int)
	// SetCapacityScale degrades (or restores) one agent's capacities.
	SetCapacityScale(l model.AgentID, factor float64) error
}

// Compile-time check: the dense ledger satisfies the API.
var _ LedgerAPI = (*Ledger)(nil)

// TryAdd implements the atomic check-then-add admission. The dense ledger
// is single-owner (no internal locking), so this is the two calls fused —
// kept on the interface so bootstrap code is backend-agnostic and the
// sharded backend can make the same step genuinely atomic.
func (g *Ledger) TryAdd(load *SessionLoad) bool {
	if !g.Fits(load) {
		return false
	}
	g.Add(load)
	return true
}

// Touched returns the indices of the agents the load touches, in insertion
// order. The slice is shared with the load: callers must not mutate it or
// retain it past the load's next mutation. The shard router uses it to map
// loads onto ID-range shards without copying.
func (sl *SparseLoad) Touched() []int32 { return sl.touched }

// NumAgents returns the agent-space dimension the load was sized for.
func (sl *SparseLoad) NumAgents() int { return len(sl.down) }

// AddSparseRange accumulates the load's components on agents in [lo, hi)
// into the ledger — AddSparse restricted to one shard's range. Each slot
// receives exactly the addition the unrestricted call would apply, so a
// partition of [0, NumAgents) reproduces AddSparse bit for bit.
func (g *Ledger) AddSparseRange(sl *SparseLoad, lo, hi int) {
	for _, l32 := range sl.touched {
		l := int(l32)
		if l < lo || l >= hi {
			continue
		}
		g.down[l] += sl.down[l]
		g.up[l] += sl.up[l]
		g.tasks[l] += sl.tasks[l]
	}
}

// RemoveSparseRange subtracts the load's components on agents in [lo, hi).
func (g *Ledger) RemoveSparseRange(sl *SparseLoad, lo, hi int) {
	for _, l32 := range sl.touched {
		l := int(l32)
		if l < lo || l >= hi {
			continue
		}
		g.down[l] -= sl.down[l]
		g.up[l] -= sl.up[l]
		g.tasks[l] -= sl.tasks[l]
	}
}

// FitsRepairDeltaRange is FitsRepairDelta restricted to agents in [lo, hi).
// The per-agent repair condition is independent across agents, so ANDing
// the results over a partition of the agent space equals the global check.
func (g *Ledger) FitsRepairDeltaRange(candidate, current *SparseLoad, lo, hi int) bool {
	for _, l32 := range candidate.touched {
		l := int(l32)
		if l < lo || l >= hi {
			continue
		}
		if !g.fitsRepairAt(l, candidate.down[l], candidate.up[l], candidate.tasks[l],
			current.down[l], current.up[l], current.tasks[l]) {
			return false
		}
	}
	for _, l32 := range current.touched {
		l := int(l32)
		if l < lo || l >= hi || candidate.mark[l32] {
			continue
		}
		if !g.fitsRepairAt(l, 0, 0, 0, current.down[l], current.up[l], current.tasks[l]) {
			return false
		}
	}
	return true
}

// CopyRangeFrom overwrites the [lo, hi) agent range of this ledger (usage
// and capacity scale) with src's. Both ledgers must be over the same
// scenario. Shard snapshots assemble a dense worker-local copy range by
// range, each under its shard's lock.
func (g *Ledger) CopyRangeFrom(src *Ledger, lo, hi int) {
	copy(g.down[lo:hi], src.down[lo:hi])
	copy(g.up[lo:hi], src.up[lo:hi])
	copy(g.tasks[lo:hi], src.tasks[lo:hi])
	switch {
	case src.scale == nil && g.scale == nil:
		// No degradation anywhere: nothing to copy.
	case src.scale == nil:
		for l := lo; l < hi; l++ {
			g.scale[l] = 1
		}
	default:
		if g.scale == nil {
			g.scale = make([]float64, g.sc.NumAgents())
			for i := range g.scale {
				g.scale[i] = 1
			}
		}
		copy(g.scale[lo:hi], src.scale[lo:hi])
	}
}
