package cost

import (
	"math"
	"testing"

	"vconf/internal/assign"
	"vconf/internal/model"
)

// deltaScenario builds a small two-session scenario with transcoding flows.
func deltaScenario(t *testing.T) *model.Scenario {
	t.Helper()
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r720, _ := rs.ByName("720p")
	for i := 0; i < 3; i++ {
		b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 8})
	}
	s0 := b.AddSession("s0")
	s1 := b.AddSession("s1")
	u0 := b.AddUser("u0", s0, r720, nil)
	u1 := b.AddUser("u1", s0, r720, nil)
	u2 := b.AddUser("u2", s1, r720, nil)
	u3 := b.AddUser("u3", s1, r720, nil)
	b.DemandFrom(u1, u0, r360) // transcoding flow in session 0
	b.DemandFrom(u3, u2, r720)
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func fullAssign(t *testing.T, sc *model.Scenario) *assign.Assignment {
	t.Helper()
	a := assign.New(sc)
	for u := 0; u < sc.NumUsers(); u++ {
		a.SetUserAgent(model.UserID(u), model.AgentID(u%sc.NumAgents()))
	}
	for _, f := range a.Flows() {
		if err := a.SetFlowAgent(f, 0); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func TestTouchedSession(t *testing.T) {
	sc := deltaScenario(t)
	s, err := TouchedSession(sc, assign.Decision{Kind: assign.UserMove, User: 2, To: 1})
	if err != nil || s != 1 {
		t.Fatalf("user move touched = %d, %v; want 1", s, err)
	}
	s, err = TouchedSession(sc, assign.Decision{
		Kind: assign.FlowMove, Flow: model.Flow{Src: 0, Dst: 1}, To: 2,
	})
	if err != nil || s != 0 {
		t.Fatalf("flow move touched = %d, %v; want 0", s, err)
	}
	if _, err := TouchedSession(sc, assign.Decision{}); err == nil {
		t.Fatal("invalid decision accepted")
	}
}

func TestObjectiveCacheMatchesFullEvaluation(t *testing.T) {
	sc := deltaScenario(t)
	ev, err := NewEvaluator(sc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	a := fullAssign(t, sc)
	c := NewObjectiveCache(ev)
	for s := 0; s < sc.NumSessions(); s++ {
		c.SetActive(model.SessionID(s), true)
	}
	if got, want := c.TotalObjective(a), ev.TotalObjective(a); math.Abs(got-want) > 1e-9 {
		t.Fatalf("cached total %v != full %v", got, want)
	}

	// Mutate session 1, invalidate only it, and check the cache tracks.
	d := assign.Decision{Kind: assign.UserMove, User: 2, To: 2}
	if _, err := a.Apply(d); err != nil {
		t.Fatal(err)
	}
	if err := c.InvalidateDecision(d); err != nil {
		t.Fatal(err)
	}
	if got, want := c.TotalObjective(a), ev.TotalObjective(a); math.Abs(got-want) > 1e-9 {
		t.Fatalf("after move: cached total %v != full %v", got, want)
	}
}

func TestObjectiveCacheRecomputesOnlyTouched(t *testing.T) {
	sc := deltaScenario(t)
	ev, err := NewEvaluator(sc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	a := fullAssign(t, sc)
	c := NewObjectiveCache(ev)
	for s := 0; s < sc.NumSessions(); s++ {
		c.SetActive(model.SessionID(s), true)
	}
	c.TotalObjective(a)
	base := c.Recomputes()
	if base != sc.NumSessions() {
		t.Fatalf("initial fill recomputed %d sessions, want %d", base, sc.NumSessions())
	}

	// 10 queries with one invalidation each: exactly one recompute per round.
	for i := 0; i < 10; i++ {
		d := assign.Decision{Kind: assign.UserMove, User: 2, To: model.AgentID(i % sc.NumAgents())}
		if _, err := a.Apply(d); err != nil {
			t.Fatal(err)
		}
		if err := c.InvalidateDecision(d); err != nil {
			t.Fatal(err)
		}
		c.TotalObjective(a)
	}
	if got := c.Recomputes() - base; got != 10 {
		t.Fatalf("delta path recomputed %d sessions over 10 single-session moves, want 10", got)
	}
}

func TestObjectiveCacheDeactivation(t *testing.T) {
	sc := deltaScenario(t)
	ev, err := NewEvaluator(sc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	a := fullAssign(t, sc)
	c := NewObjectiveCache(ev)
	c.SetActive(0, true)
	c.SetActive(1, true)
	total := c.TotalObjective(a)
	phi1 := c.SessionObjective(a, 1)
	c.SetActive(1, false)
	if got := c.TotalObjective(a); math.Abs(got-(total-phi1)) > 1e-9 {
		t.Fatalf("after deactivation total %v, want %v", got, total-phi1)
	}
	if c.SessionObjective(a, 1) != 0 || c.SessionLoad(a, 1) != nil {
		t.Fatal("inactive session still contributes")
	}
	if got := c.ActiveSessions(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("active sessions = %v, want [0]", got)
	}
}

func TestLedgerClone(t *testing.T) {
	sc := deltaScenario(t)
	p := DefaultParams()
	a := fullAssign(t, sc)
	g := NewLedger(sc)
	g.Add(p.SessionLoadOf(a, 0))
	if err := g.SetCapacityScale(1, 0.5); err != nil {
		t.Fatal(err)
	}
	cl := g.Clone()
	// Mutating the clone must not leak into the original.
	cl.Add(p.SessionLoadOf(a, 1))
	if err := cl.SetCapacityScale(1, 1); err != nil {
		t.Fatal(err)
	}
	d1, u1, t1 := g.Usage()
	d2, u2, t2 := cl.Usage()
	same := true
	for l := range d1 {
		if d1[l] != d2[l] || u1[l] != u2[l] || t1[l] != t2[l] {
			same = false
		}
	}
	if same {
		t.Fatal("clone shares usage with original")
	}
	if len(g.Violations()) != 0 {
		t.Fatalf("original ledger unexpectedly violated: %v", g.Violations())
	}
}
