package cost

import (
	"math/rand"
	"testing"

	"vconf/internal/assign"
	"vconf/internal/model"
)

// sparseScenario: 2 sessions × 3 users over 4 agents with transcoding flows
// and tight-but-feasible capacities.
func sparseScenario(t *testing.T) *model.Scenario {
	t.Helper()
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r720, _ := rs.ByName("720p")
	r1080, _ := rs.ByName("1080p")
	for i := 0; i < 4; i++ {
		b.AddAgent(model.Agent{Upload: 200, Download: 200, TranscodeSlots: 4,
			SigmaMS: model.UniformSigma(rs.Len(), 40)})
	}
	for s := 0; s < 2; s++ {
		sid := b.AddSession("s")
		u0 := b.AddUser("a", sid, r1080, nil)
		u1 := b.AddUser("b", sid, r720, nil)
		b.AddUser("c", sid, r720, nil)
		b.DemandFrom(u1, u0, r360)
	}
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// randomComplete assigns every variable uniformly at random.
func randomComplete(sc *model.Scenario, rng *rand.Rand) *assign.Assignment {
	a := assign.New(sc)
	for u := 0; u < sc.NumUsers(); u++ {
		a.SetUserAgent(model.UserID(u), model.AgentID(rng.Intn(sc.NumAgents())))
	}
	for _, f := range a.Flows() {
		a.SetFlowAgent(f, model.AgentID(rng.Intn(sc.NumAgents())))
	}
	return a
}

func TestSparseLoadMatchesDenseOnRandomStates(t *testing.T) {
	sc := sparseScenario(t)
	ev, err := NewEvaluator(sc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	scr := ev.NewScratch()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		a := randomComplete(sc, rng)
		for s := 0; s < sc.NumSessions(); s++ {
			sid := model.SessionID(s)
			dense := ev.Params().SessionLoadOf(a, sid)
			sparse := ev.SessionLoadSparse(a, sid, scr)
			asDense := sparse.Dense()
			for l := 0; l < sc.NumAgents(); l++ {
				if dense.Down[l] != asDense.Down[l] || dense.Up[l] != asDense.Up[l] ||
					dense.Inter[l] != asDense.Inter[l] || dense.Tasks[l] != asDense.Tasks[l] {
					t.Fatalf("trial %d session %d agent %d: sparse load differs from dense", trial, s, l)
				}
			}
			if dense.TotalInterTraffic() != sparse.TotalInterTraffic() ||
				dense.TotalTasks() != sparse.TotalTasks() {
				t.Fatalf("trial %d session %d: totals differ", trial, s)
			}
			if phi := ev.SessionObjective(a, sid); phi != ev.BeginSession(a, sid, scr).Phi {
				t.Fatalf("trial %d session %d: Φ differs: dense %v sparse %v",
					trial, s, phi, ev.BeginSession(a, sid, scr).Phi)
			}
		}
	}
}

func TestFitsDeltaChecksMatchDense(t *testing.T) {
	sc := sparseScenario(t)
	ev, err := NewEvaluator(sc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	p := ev.Params()
	scr := ev.NewScratch()
	rng := rand.New(rand.NewSource(9))
	cur := NewSparseLoad(sc.NumAgents())
	agree := map[bool]int{}
	for trial := 0; trial < 300; trial++ {
		base := randomComplete(sc, rng)
		ledger := NewLedger(sc)
		for s := 0; s < sc.NumSessions(); s++ {
			ledger.Add(p.SessionLoadOf(base, model.SessionID(s)))
		}
		// Occasionally degrade an agent so the repair branch is exercised
		// against an overloaded ledger.
		if trial%3 == 0 {
			if err := ledger.SetCapacityScale(model.AgentID(rng.Intn(sc.NumAgents())), 0.3); err != nil {
				t.Fatal(err)
			}
		}
		s := model.SessionID(rng.Intn(sc.NumSessions()))
		curDense := p.SessionLoadOf(base, s)
		cur.CopyFrom(ev.SessionLoadSparse(base, s, scr))
		ledger.Remove(curDense)

		cand := randomComplete(sc, rng)
		candDense := p.SessionLoadOf(cand, s)
		candSparse := ev.SessionLoadSparse(cand, s, scr)

		denseRepair := ledger.FitsRepair(candDense, curDense)
		sparseRepair := ledger.FitsRepairDelta(candSparse, cur)
		if denseRepair != sparseRepair {
			t.Fatalf("trial %d: FitsRepair %v vs FitsRepairDelta %v", trial, denseRepair, sparseRepair)
		}
		denseFits := ledger.Fits(candDense)
		sparseFits := ledger.Fits(nil) && ledger.FitsTouched(candSparse)
		if denseFits != sparseFits {
			t.Fatalf("trial %d: Fits %v vs FitsTouched %v", trial, denseFits, sparseFits)
		}
		agree[denseRepair]++
	}
	if agree[true] == 0 || agree[false] == 0 {
		t.Fatalf("capacity checks never exercised both outcomes: %v", agree)
	}
}

func TestSparseLoadHelpers(t *testing.T) {
	sc := sparseScenario(t)
	ev, err := NewEvaluator(sc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	a := assign.New(sc)
	for _, u := range sc.Session(0).Users {
		a.SetUserAgent(u, 1)
	}
	for _, f := range a.SessionFlows(0) {
		if err := a.SetFlowAgent(f, 2); err != nil {
			t.Fatal(err)
		}
	}
	scr := ev.NewScratch()
	sl := ev.SessionLoadSparse(a, 0, scr)

	set := make([]bool, sc.NumAgents())
	sl.MarkAgents(set)
	if !set[1] || !set[2] {
		t.Fatalf("MarkAgents missed loaded agents: %v", set)
	}
	if set[0] || set[3] {
		t.Fatalf("MarkAgents marked idle agents: %v", set)
	}
	if !sl.OverlapsAgents(set) {
		t.Fatal("load must overlap its own agent set")
	}
	other := make([]bool, sc.NumAgents())
	other[3] = true
	if sl.OverlapsAgents(other) {
		t.Fatal("load must not overlap an untouched agent")
	}

	cp := NewSparseLoad(sc.NumAgents())
	cp.CopyFrom(sl)
	if cp.TotalInterTraffic() != sl.TotalInterTraffic() || cp.TotalTasks() != sl.TotalTasks() {
		t.Fatal("CopyFrom changed totals")
	}
	down, up, inter, tasks := cp.At(2)
	d2, u2, i2, t2 := sl.At(2)
	if down != d2 || up != u2 || inter != i2 || tasks != t2 {
		t.Fatal("CopyFrom changed per-agent values")
	}
	cp.Reset()
	if cp.TotalInterTraffic() != 0 || cp.TotalTasks() != 0 {
		t.Fatal("Reset left residual load")
	}

	// Ledger round-trip: AddSparse then RemoveSparse restores emptiness.
	ledger := NewLedger(sc)
	ledger.AddSparse(sl)
	if ledger.Fits(nil) != true {
		t.Fatal("single session must fit")
	}
	ledger.RemoveSparse(sl)
	gd, gu, gt := ledger.Usage()
	for l := range gd {
		if gd[l] != 0 || gu[l] != 0 || gt[l] != 0 {
			t.Fatalf("ledger not empty after sparse round-trip at agent %d", l)
		}
	}
}

func TestObjectiveCacheServesSparseLoads(t *testing.T) {
	sc := sparseScenario(t)
	ev, err := NewEvaluator(sc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	a := randomComplete(sc, rng)
	cache := NewObjectiveCache(ev)
	cache.SetActive(0, true)
	cache.SetActive(1, true)

	for s := 0; s < 2; s++ {
		sid := model.SessionID(s)
		want := ev.Params().SessionLoadOf(a, sid)
		got := cache.SessionLoad(a, sid).Dense()
		for l := 0; l < sc.NumAgents(); l++ {
			if want.Down[l] != got.Down[l] || want.Tasks[l] != got.Tasks[l] {
				t.Fatalf("cache load differs for session %d agent %d", s, l)
			}
		}
		if cache.SessionObjective(a, sid) != ev.SessionObjective(a, sid) {
			t.Fatalf("cache Φ differs for session %d", s)
		}
	}
	// Mutate session 0, invalidate, and verify the refreshed load reuses the
	// owned buffers while reflecting the new state.
	before := cache.SessionLoad(a, 0)
	a.SetUserAgent(sc.Session(0).Users[0], model.AgentID(3))
	cache.Invalidate(0)
	after := cache.SessionLoad(a, 0)
	if before != after {
		t.Fatal("cache must reuse the owned SparseLoad across refreshes")
	}
	want := ev.Params().SessionLoadOf(a, 0)
	got := after.Dense()
	for l := 0; l < sc.NumAgents(); l++ {
		if want.Down[l] != got.Down[l] {
			t.Fatalf("refreshed load stale at agent %d", l)
		}
	}
	cache.SetActive(0, false)
	if cache.SessionLoad(a, 0) != nil {
		t.Fatal("inactive session must read nil load")
	}
}
