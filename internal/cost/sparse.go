package cost

// This file implements the sparse, allocation-free hop evaluation pipeline.
// A single-variable decision touches O(session size) agents, not the whole
// fleet, so the steady-state candidate loop of Alg. 1 must not pay O(L) per
// neighbor: SparseLoad keeps a touched-agent index list over dense scratch
// arrays, Scratch holds every reusable buffer one evaluation needs, and the
// Evaluator's BeginSession/CandidateLoad/CandidatePhi methods compute the
// load, the capacity-delta feasibility inputs, and Φ_s incrementally — only
// the flows whose endpoints moved are re-evaluated.
//
// Exactness contract: every sparse computation in this file is bit-identical
// to its dense counterpart (SessionLoadOf, SessionDelaysOf, SessionObjective,
// FitsRepair). Accumulations follow the same per-slot sequence of additions,
// and cost sums iterate touched agents in ascending agent order, which is the
// order the dense loops visit them (skipped zero entries are exact identity
// additions). The differential tests in internal/core assert the contract by
// replaying whole engine runs against the dense reference path.

import (
	"fmt"

	"vconf/internal/assign"
	"vconf/internal/model"
)

// SparseLoad is a session load (see SessionLoad) in sparse form: dense
// per-agent arrays for O(1) indexing plus the list of touched agents, so
// iteration, reset, ledger accounting, and cost sums are O(touched) instead
// of O(NumAgents). The zero value is unusable; loads are created by
// Evaluator.NewScratch, NewSparseLoad, or ObjectiveCache.
type SparseLoad struct {
	down, up, inter []float64
	tasks           []int
	touched         []int32
	mark            []bool
	sorted          bool
}

// NewSparseLoad creates an empty sparse load over numAgents agents.
func NewSparseLoad(numAgents int) *SparseLoad {
	sl := &SparseLoad{}
	sl.ensure(numAgents)
	return sl
}

func (sl *SparseLoad) ensure(numAgents int) {
	if len(sl.down) == numAgents {
		return
	}
	sl.down = make([]float64, numAgents)
	sl.up = make([]float64, numAgents)
	sl.inter = make([]float64, numAgents)
	sl.tasks = make([]int, numAgents)
	sl.mark = make([]bool, numAgents)
	sl.touched = sl.touched[:0]
	sl.sorted = true
}

// Reset clears the load in O(touched).
func (sl *SparseLoad) Reset() {
	for _, l := range sl.touched {
		sl.down[l] = 0
		sl.up[l] = 0
		sl.inter[l] = 0
		sl.tasks[l] = 0
		sl.mark[l] = false
	}
	sl.touched = sl.touched[:0]
	sl.sorted = true
}

func (sl *SparseLoad) touch(l model.AgentID) {
	if !sl.mark[l] {
		sl.mark[l] = true
		sl.touched = append(sl.touched, int32(l))
		sl.sorted = false
	}
}

func (sl *SparseLoad) addDown(l model.AgentID, w float64) {
	sl.touch(l)
	sl.down[l] += w
}

func (sl *SparseLoad) addUp(l model.AgentID, w float64) {
	sl.touch(l)
	sl.up[l] += w
}

func (sl *SparseLoad) addTask(l model.AgentID) {
	sl.touch(l)
	sl.tasks[l]++
}

// addEdge records w Mbps of inter-agent traffic src → dst, mirroring
// SessionLoad.addEdge.
func (sl *SparseLoad) addEdge(src, dst model.AgentID, w float64) {
	sl.touch(src)
	sl.touch(dst)
	sl.up[src] += w
	sl.down[dst] += w
	sl.inter[dst] += w
}

// sortTouched orders the touched list ascending so cost sums visit agents in
// the same order as the dense loops (bit-identical floating-point sums).
// Insertion sort: the list is a handful of entries.
func (sl *SparseLoad) sortTouched() {
	if sl.sorted {
		return
	}
	t := sl.touched
	for i := 1; i < len(t); i++ {
		for j := i; j > 0 && t[j-1] > t[j]; j-- {
			t[j-1], t[j] = t[j], t[j-1]
		}
	}
	sl.sorted = true
}

// CopyFrom makes sl an exact copy of src (same agent-count dimensions).
func (sl *SparseLoad) CopyFrom(src *SparseLoad) {
	sl.ensure(len(src.down))
	sl.Reset()
	for _, l := range src.touched {
		sl.mark[l] = true
		sl.down[l] = src.down[l]
		sl.up[l] = src.up[l]
		sl.inter[l] = src.inter[l]
		sl.tasks[l] = src.tasks[l]
	}
	sl.touched = append(sl.touched, src.touched...)
	sl.sorted = src.sorted
}

// At returns the load components at agent l.
func (sl *SparseLoad) At(l model.AgentID) (down, up, inter float64, tasks int) {
	return sl.down[l], sl.up[l], sl.inter[l], sl.tasks[l]
}

// TotalInterTraffic returns Σ_l x_ls, bit-identical to the dense sum.
func (sl *SparseLoad) TotalInterTraffic() float64 {
	sl.sortTouched()
	t := 0.0
	for _, l := range sl.touched {
		t += sl.inter[l]
	}
	return t
}

// TotalTasks returns Σ_l y_ls.
func (sl *SparseLoad) TotalTasks() int {
	n := 0
	for _, l := range sl.touched {
		n += sl.tasks[l]
	}
	return n
}

// Dense converts to the dense SessionLoad representation (freshly
// allocated) — bridging for callers and tests outside the hot path.
func (sl *SparseLoad) Dense() *SessionLoad {
	L := len(sl.down)
	out := &SessionLoad{
		Down:  make([]float64, L),
		Up:    make([]float64, L),
		Tasks: make([]int, L),
		Inter: make([]float64, L),
	}
	for _, l := range sl.touched {
		out.Down[l] = sl.down[l]
		out.Up[l] = sl.up[l]
		out.Inter[l] = sl.inter[l]
		out.Tasks[l] = sl.tasks[l]
	}
	return out
}

// NewSparseLoadFromDense converts a dense SessionLoad into a freshly
// allocated sparse one (touched = slots with any nonzero component, in
// ascending agent order) — the inverse bridge of Dense, for callers and
// tests that assemble loads outside the evaluation pipeline.
func NewSparseLoadFromDense(d *SessionLoad) *SparseLoad {
	sl := NewSparseLoad(len(d.Down))
	for l := range d.Down {
		if d.Down[l] == 0 && d.Up[l] == 0 && d.Inter[l] == 0 && d.Tasks[l] == 0 {
			continue
		}
		sl.touch(model.AgentID(l))
		sl.down[l] = d.Down[l]
		sl.up[l] = d.Up[l]
		sl.inter[l] = d.Inter[l]
		sl.tasks[l] = d.Tasks[l]
	}
	sl.sorted = true
	return sl
}

// AppendAgents appends the IDs of agents carrying load (MarkAgents'
// predicate) to dst in ascending order and returns it — the committed
// agent-set extraction the pipelined orchestrator's footprint index uses.
func (sl *SparseLoad) AppendAgents(dst []model.AgentID) []model.AgentID {
	sl.sortTouched()
	for _, l := range sl.touched {
		if sl.down[l] > 0 || sl.up[l] > 0 || sl.tasks[l] > 0 {
			dst = append(dst, model.AgentID(l))
		}
	}
	return dst
}

// MarkAgents sets set[l] = true for every agent carrying load (the predicate
// the orchestrator's touched-session computation uses).
func (sl *SparseLoad) MarkAgents(set []bool) {
	for _, l := range sl.touched {
		if sl.down[l] > 0 || sl.up[l] > 0 || sl.tasks[l] > 0 {
			set[l] = true
		}
	}
}

// OverlapsAgents reports whether the load touches (with nonzero usage) any
// agent marked in set.
func (sl *SparseLoad) OverlapsAgents(set []bool) bool {
	for _, l := range sl.touched {
		if set[l] && (sl.down[l] > 0 || sl.up[l] > 0 || sl.tasks[l] > 0) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Evaluation scratch

// mrKey dedups transcoding tasks of one source: a task is a distinct
// (transcoder, output representation) pair.
type mrKey struct {
	m int32
	r model.Representation
}

// edgeKey3 dedups transcoded-output edges: one copy per (transcoder,
// destination agent, representation).
type edgeKey3 struct {
	m, lv int32
	r     model.Representation
}

// delayChange is one undo-log entry of the candidate delay-delta pass.
type delayChange struct {
	pos int32
	old float64
}

// Scratch bundles every reusable buffer a session evaluation needs: the
// current and candidate sparse loads, the per-source dedup sets of the μ
// traffic terms, and the per-flow delay matrix with per-user maxima that
// CandidatePhi updates incrementally. A Scratch is not safe for concurrent
// use; pool one per worker (core and the orchestrator shard pool do).
type Scratch struct {
	sc *model.Scenario

	cur, cand SparseLoad

	// Per-source-user dedup sets of the load computation.
	transMark  []bool
	transList  []int32
	nativeMark []bool
	nativeList []int32
	taskKeys   []mrKey
	sentEdges  []edgeKey3

	// Delay state of the session prepared by BeginSession. base is the
	// active n×n flow-delay matrix (row = source member index): it aliases
	// the session's DelayCache entry when the cache is on, and ownBase —
	// the scratch-owned rebuild buffer — when it is off.
	sid     model.SessionID
	members []model.UserID
	idx     []int32 // user → member index, -1 elsewhere
	n       int
	base    []float64
	ownBase []float64
	userMax []float64
	candMax []float64
	changes []delayChange

	// dc is the persistent per-session delay cache (see delaycache.go),
	// created lazily unless disabled; movedMembers is the warm path's
	// reusable moved-member index buffer.
	dc           *DelayCache
	dcOff        bool
	movedMembers []int32
}

// NewScratch returns a Scratch sized for the evaluator's scenario.
func (e *Evaluator) NewScratch() *Scratch {
	scr := &Scratch{}
	scr.Ensure(e)
	return scr
}

// Ensure (re)binds the scratch to the evaluator's scenario, resizing buffers
// when dimensions changed. Cheap when already bound (pointer compare); call
// it when reusing pooled scratches across evaluators.
func (scr *Scratch) Ensure(e *Evaluator) {
	sc := e.Scenario()
	if scr.sc == sc {
		return
	}
	scr.sc = sc
	L := sc.NumAgents()
	scr.cur.ensure(L)
	scr.cur.Reset()
	scr.cand.ensure(L)
	scr.cand.Reset()
	scr.transMark = make([]bool, L)
	scr.transList = scr.transList[:0]
	scr.nativeMark = make([]bool, L)
	scr.nativeList = scr.nativeList[:0]
	scr.taskKeys = scr.taskKeys[:0]
	scr.sentEdges = scr.sentEdges[:0]
	scr.idx = make([]int32, sc.NumUsers())
	for i := range scr.idx {
		scr.idx[i] = -1
	}
	scr.members = nil
	scr.n = 0
	// The delay cache is dimensioned for one scenario; rebinding drops it
	// (it is rebuilt lazily against the new scenario).
	scr.dc = nil
}

// SetDelayCacheEnabled toggles the persistent per-session delay cache. On
// (the default) BeginSession reuses and patches cached delay state; off,
// it rebuilds the full delay base every call — the pre-cache reference
// path, selected by core.Config.RebuildDelayBase. Warm entries survive a
// disable/re-enable round trip (their signatures re-validate them).
func (scr *Scratch) SetDelayCacheEnabled(on bool) { scr.dcOff = !on }

// InvalidateDelay marks session s's delay-cache entry cold, if a cache
// exists. Engines and the orchestrator call it on session departure and
// re-arrival, where every variable changes and a full rebuild beats
// patching.
func (scr *Scratch) InvalidateDelay(s model.SessionID) {
	if scr.dc != nil {
		scr.dc.Invalidate(s)
	}
}

// DelayCacheStats exposes the scratch's delay cache for tests and
// benchmarks (nil when disabled or never used).
func (scr *Scratch) DelayCacheStats() *DelayCache { return scr.dc }

// delayCache returns the scratch's cache, creating it lazily, or nil when
// disabled.
func (scr *Scratch) delayCache() *DelayCache {
	if scr.dcOff {
		return nil
	}
	if scr.dc == nil {
		scr.dc = NewDelayCache(scr.sc)
	}
	return scr.dc
}

// CurLoad returns the current-state load computed by the last BeginSession
// (or SessionLoadSparse). Valid until the next call on this scratch.
func (scr *Scratch) CurLoad() *SparseLoad { return &scr.cur }

// CandLoad returns the candidate load computed by the last CandidateLoad.
func (scr *Scratch) CandLoad() *SparseLoad { return &scr.cand }

// sessionLoadSparse computes session s's load under a into dst, mirroring
// Params.SessionLoadOf term by term (see that function for the μ formula
// commentary). The per-slot accumulation sequence is identical, so results
// are bit-identical to the dense computation.
func (p Params) sessionLoadSparse(a *assign.Assignment, s model.SessionID, dst *SparseLoad, scr *Scratch) {
	sc := a.Scenario()
	dst.Reset()

	for _, u := range sc.Session(s).Users {
		k := a.UserAgent(u) // source agent of u
		if k == assign.Unassigned {
			continue
		}
		user := sc.User(u)
		upRate := sc.Reps.Bitrate(user.Upstream)
		parts := sc.Participants(u)

		// Last-mile upstream and downstream (constraints (5)/(6) first terms).
		dst.addDown(k, upRate)
		for _, v := range parts {
			dst.addUp(k, sc.Reps.Bitrate(sc.Downstream(u, v)))
		}

		// Transcoding agents of u's stream, and their ν tasks (deduped per
		// distinct (transcoder, representation) pair).
		scr.transList = scr.transList[:0]
		scr.taskKeys = scr.taskKeys[:0]
		for _, v := range parts {
			if !sc.Theta(u, v) {
				continue
			}
			f := model.Flow{Src: u, Dst: v}
			m, ok := a.FlowAgent(f)
			if !ok || m == assign.Unassigned {
				continue
			}
			if !scr.transMark[m] {
				scr.transMark[m] = true
				scr.transList = append(scr.transList, int32(m))
			}
			r := sc.DownstreamRep(f)
			dup := false
			for _, tk := range scr.taskKeys {
				if tk.m == int32(m) && tk.r == r {
					dup = true
					break
				}
			}
			if !dup {
				scr.taskKeys = append(scr.taskKeys, mrKey{m: int32(m), r: r})
				dst.addTask(m)
			}
		}

		// Term 1 of μ: one raw copy k → every transcoding agent m ≠ k.
		for _, m32 := range scr.transList {
			if m := model.AgentID(m32); m != k {
				dst.addEdge(k, m, upRate)
			}
		}

		// Term 2 of μ: raw stream k → agents hosting native-representation
		// destinations, unless the raw copy already arrived for transcoding
		// there (the (1−ν'_lu) factor).
		scr.nativeList = scr.nativeList[:0]
		for _, v := range parts {
			if sc.Theta(u, v) {
				continue
			}
			lv := a.UserAgent(v)
			if lv != assign.Unassigned && lv != k && !scr.nativeMark[lv] {
				scr.nativeMark[lv] = true
				scr.nativeList = append(scr.nativeList, int32(lv))
			}
		}
		for _, l32 := range scr.nativeList {
			if !scr.transMark[l32] {
				dst.addEdge(k, model.AgentID(l32), upRate)
			}
		}

		// Term 3 of μ: transcoded stream at rep r from transcoder m to every
		// agent hosting a destination demanding r; one copy per (m, agent, r).
		scr.sentEdges = scr.sentEdges[:0]
		for _, v := range parts {
			if !sc.Theta(u, v) {
				continue
			}
			f := model.Flow{Src: u, Dst: v}
			m, ok := a.FlowAgent(f)
			if !ok || m == assign.Unassigned {
				continue
			}
			lv := a.UserAgent(v)
			if lv == assign.Unassigned || lv == m {
				continue
			}
			if p.StrictPaperTraffic && lv == k {
				continue
			}
			r := sc.DownstreamRep(f)
			dup := false
			for _, ek := range scr.sentEdges {
				if ek.m == int32(m) && ek.lv == int32(lv) && ek.r == r {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			scr.sentEdges = append(scr.sentEdges, edgeKey3{m: int32(m), lv: int32(lv), r: r})
			dst.addEdge(m, lv, sc.Reps.Bitrate(r))
		}

		// Clear the per-user marks in O(touched).
		for _, m32 := range scr.transList {
			scr.transMark[m32] = false
		}
		for _, l32 := range scr.nativeList {
			scr.nativeMark[l32] = false
		}
	}
}

// SessionLoadSparse computes session s's load into the scratch's CurLoad
// with zero allocations, bit-identical to Params.SessionLoadOf.
func (e *Evaluator) SessionLoadSparse(a *assign.Assignment, s model.SessionID, scr *Scratch) *SparseLoad {
	scr.Ensure(e)
	e.p.sessionLoadSparse(a, s, &scr.cur, scr)
	return &scr.cur
}

// phiFromSparse assembles Φ_s from the delay mean and a sparse load exactly
// as sessionObjectiveFromLoad does from a dense one.
func (e *Evaluator) phiFromSparse(meanDelayMS float64, sl *SparseLoad) float64 {
	phi := 0.0
	if e.p.Alpha1 > 0 {
		phi += e.p.Alpha1 * meanDelayMS
	}
	if e.p.Alpha2 > 0 {
		sl.sortTouched()
		g := 0.0
		for _, l := range sl.touched {
			if x := sl.inter[l]; x > 0 {
				g += e.p.trafficCost(e.sc.Agent(model.AgentID(l)).TrafficPricePerMbps, x)
			}
		}
		phi += e.p.Alpha2 * g
	}
	if e.p.Alpha3 > 0 {
		sl.sortTouched()
		h := 0.0
		for _, l := range sl.touched {
			if y := sl.tasks[l]; y > 0 {
				h += e.p.transcodeCost(e.sc.Agent(model.AgentID(l)).TranscodePricePerTask, y)
			}
		}
		phi += e.p.Alpha3 * h
	}
	return phi
}

// SessionEval summarizes one session's objective and delay picture.
type SessionEval struct {
	// Phi is Φ_s = α1·F + α2·G + α3·H, bit-identical to SessionObjective.
	Phi float64
	// MeanDelayMS is F's argument: mean over users of max incoming delay.
	MeanDelayMS float64
	// WorstMS is the largest flow delay in the session.
	WorstMS float64
}

// DelayFeasible reports whether every flow respects the Dmax cap
// (constraint (8)).
func (se SessionEval) DelayFeasible(dMaxMS float64) bool { return se.WorstMS <= dMaxMS }

// BeginSession prepares the scratch for evaluating session s's neighborhood
// under assignment a: it computes the session's sparse load (CurLoad), fills
// the per-flow delay matrix and per-user delay maxima, and returns the
// current Φ_s and delay summary — all with zero allocations after warm-up.
//
// The hop pipeline calls BeginSession once per hop, then for each candidate:
// Apply(d) → CandidateLoad → Ledger.FitsRepairDelta → CandidatePhi →
// Apply(inverse). The base delay matrix always reflects the state a held at
// BeginSession time; CandidatePhi restores it before returning.
//
// With the delay cache enabled (the default), the delay base, load and
// summary are retained per session across calls and re-validated against
// the session's decision variables, so a warm call recomputes only the
// flows whose endpoints moved since the last evaluation — O(moved flows)
// instead of O(n²) — and a call with an unchanged session costs only the
// signature comparison. The cached and rebuild paths are bit-identical
// (see delaycache.go for the staleness contract).
func (e *Evaluator) BeginSession(a *assign.Assignment, s model.SessionID, scr *Scratch) SessionEval {
	scr.Ensure(e)

	// Rebind the member index table.
	for _, u := range scr.members {
		scr.idx[u] = -1
	}
	sc := e.sc
	scr.sid = s
	scr.members = sc.Session(s).Users
	n := len(scr.members)
	scr.n = n
	for i, u := range scr.members {
		scr.idx[u] = int32(i)
	}
	if cap(scr.userMax) < n {
		scr.userMax = make([]float64, n)
		scr.candMax = make([]float64, n)
	}
	scr.userMax = scr.userMax[:n]
	scr.candMax = scr.candMax[:n]

	if dc := scr.delayCache(); dc != nil {
		return e.beginSessionCached(a, s, scr, dc)
	}

	// Rebuild reference path (pre-cache), kept verbatim behind
	// core.Config.RebuildDelayBase / SetDelayCacheEnabled(false).
	e.p.sessionLoadSparse(a, s, &scr.cur, scr)
	if cap(scr.ownBase) < n*n {
		scr.ownBase = make([]float64, n*n)
	}
	scr.base = scr.ownBase[:n*n]

	out := SessionEval{}
	if n >= 2 {
		scr.fillDelayBase(a, e.sc)
		out.MeanDelayMS, out.WorstMS = scr.delaySummary(scr.userMax)
	} else {
		for i := range scr.userMax {
			scr.userMax[i] = 0
		}
	}
	out.Phi = e.phiFromSparse(out.MeanDelayMS, &scr.cur)
	return out
}

// fillDelayBase computes every per-flow delay of the prepared session into
// scr.base (the full rebuild both the cold cache path and the reference
// path run).
func (scr *Scratch) fillDelayBase(a *assign.Assignment, sc *model.Scenario) {
	n := scr.n
	for i, u := range scr.members {
		for _, v := range sc.Participants(u) {
			j := scr.idx[v]
			d := FlowDelayMS(a, model.Flow{Src: u, Dst: v})
			scr.base[i*n+int(j)] = d
		}
	}
}

// beginSessionCached is BeginSession's delay-cache path: bind the session's
// persistent entry as the active delay base, re-validate it against the
// live decision variables, and recompute only what moved. The member index
// table and n are already rebound by the caller.
func (e *Evaluator) beginSessionCached(a *assign.Assignment, s model.SessionID, scr *Scratch, dc *DelayCache) SessionEval {
	n := scr.n
	ent := &dc.ent[s]
	flows := a.SessionFlowsShared(s)
	flowTo := a.SessionFlowAgents(s)
	if ent.base == nil {
		ent.base = make([]float64, n*n)
		ent.userSig = make([]model.AgentID, n)
		ent.flowSig = make([]model.AgentID, len(flows))
		ent.load = NewSparseLoad(e.sc.NumAgents())
		ent.valid = false
	}
	scr.base = ent.base

	finish := func(out SessionEval) SessionEval {
		// Synchronize the entry to the evaluated state.
		ent.load.CopyFrom(&scr.cur)
		ent.phi, ent.mean, ent.worst = out.Phi, out.MeanDelayMS, out.WorstMS
		ent.valid = true
		return out
	}
	rebuild := func() SessionEval {
		e.p.sessionLoadSparse(a, s, &scr.cur, scr)
		out := SessionEval{}
		if n >= 2 {
			scr.fillDelayBase(a, e.sc)
			out.MeanDelayMS, out.WorstMS = scr.delaySummary(scr.userMax)
		} else {
			for i := range scr.userMax {
				scr.userMax[i] = 0
			}
		}
		out.Phi = e.phiFromSparse(out.MeanDelayMS, &scr.cur)
		for i, u := range scr.members {
			ent.userSig[i] = a.UserAgent(u)
		}
		copy(ent.flowSig, flowTo)
		return finish(out)
	}

	if !ent.valid {
		dc.rebuilds++
		return rebuild()
	}

	if moved := e.patchEntry(a, scr, ent, flows, flowTo); moved == 0 {
		// Unchanged signature: matrix, load, Φ_s and summary are all
		// bitwise-unchanged — reuse everything.
		dc.hits++
		scr.cur.CopyFrom(ent.load)
		return SessionEval{Phi: ent.phi, MeanDelayMS: ent.mean, WorstMS: ent.worst}
	}
	dc.patches++
	e.p.sessionLoadSparse(a, s, &scr.cur, scr)
	out := SessionEval{}
	if n >= 2 {
		out.MeanDelayMS, out.WorstMS = scr.delaySummary(scr.userMax)
	} else {
		for i := range scr.userMax {
			scr.userMax[i] = 0
		}
	}
	out.Phi = e.phiFromSparse(out.MeanDelayMS, &scr.cur)
	return finish(out)
}

// patchEntry diffs the warm entry's decision signature against the live
// assignment and recomputes exactly the delay entries whose endpoints
// moved: a moved member invalidates its row and column, a moved flow one
// entry. Returns the number of moved variables (0 = the matrix is
// bitwise-unchanged). The recomputed values come from the same pure
// FlowDelayMS a full rebuild would call, so the patched matrix is
// bit-identical to a rebuild.
func (e *Evaluator) patchEntry(a *assign.Assignment, scr *Scratch, ent *delayEntry,
	flows []model.Flow, flowTo []model.AgentID) int {
	n := scr.n
	scr.movedMembers = scr.movedMembers[:0]
	for i, u := range scr.members {
		if l := a.UserAgent(u); ent.userSig[i] != l {
			ent.userSig[i] = l
			scr.movedMembers = append(scr.movedMembers, int32(i))
		}
	}
	movedFlows := 0
	for k, l := range flowTo {
		if ent.flowSig[k] != l {
			ent.flowSig[k] = l
			f := flows[k]
			scr.base[int(scr.idx[f.Src])*n+int(scr.idx[f.Dst])] = FlowDelayMS(a, f)
			movedFlows++
		}
	}
	if len(scr.movedMembers) == 0 {
		return movedFlows
	}
	if 2*len(scr.movedMembers) >= n {
		// Patching m moved members costs 2m(n−1) flow evaluations vs
		// n(n−1) for a full refill: refill when half the session moved.
		// (The flow-moved entries above are simply overwritten again with
		// identical values.)
		scr.fillDelayBase(a, e.sc)
	} else {
		for _, i32 := range scr.movedMembers {
			i := int(i32)
			u := scr.members[i]
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				v := scr.members[j]
				scr.base[i*n+j] = FlowDelayMS(a, model.Flow{Src: u, Dst: v})
				scr.base[j*n+i] = FlowDelayMS(a, model.Flow{Src: v, Dst: u})
			}
		}
	}
	return movedFlows + len(scr.movedMembers)
}

// CommitSessionDecision is the hop pipeline's commit notification: after a
// chosen candidate is applied permanently (the assignment holds the
// committed state), the committing evaluation already has the state's
// sparse load (the winning CandidateLoad) and its Φ_s (the winning
// CandidatePhi), so the session's warm delay-cache entry can be
// re-synchronized by patching just the committed decision's flows — the
// next BeginSession for the session is then a pure warm hit instead of a
// patch. load and phi must describe the committed state exactly (they are
// bit-identical to what a fresh BeginSession would compute, since Φ_s is a
// pure function of the session's variables). No-op when the cache is off,
// cold, or the scratch is prepared for a different session.
func (e *Evaluator) CommitSessionDecision(a *assign.Assignment, s model.SessionID, scr *Scratch, load *SparseLoad, phi float64) {
	if scr.dcOff || scr.dc == nil || scr.sid != s || int(s) >= len(scr.dc.ent) {
		return
	}
	ent := &scr.dc.ent[s]
	if !ent.valid || ent.base == nil {
		return
	}
	scr.base = ent.base
	e.patchEntry(a, scr, ent, a.SessionFlowsShared(s), a.SessionFlowAgents(s))
	n := scr.n
	if n >= 2 {
		ent.mean, ent.worst = scr.delaySummary(scr.userMax)
	} else {
		ent.mean, ent.worst = 0, 0
	}
	ent.load.CopyFrom(load)
	// Canonicalize to ascending touched order — the state phiFromSparse
	// leaves behind on the rebuild path. (Every load consumer is
	// order-insensitive per slot or sorts first, so this is cosmetic for
	// exactness but keeps warm-restored loads byte-comparable.)
	ent.load.sortTouched()
	ent.phi = phi
}

// delaySummary computes per-user maxima (into maxBuf), their mean, and the
// session-wide worst delay from the base matrix, exactly as SessionDelaysOf.
func (scr *Scratch) delaySummary(maxBuf []float64) (meanOfMax, worst float64) {
	n := scr.n
	for j := 0; j < n; j++ {
		maxBuf[j] = 0
	}
	for i := 0; i < n; i++ {
		row := scr.base[i*n : i*n+n]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			d := row[j]
			if d > maxBuf[j] {
				maxBuf[j] = d
			}
			if d > worst {
				worst = d
			}
		}
	}
	sum := 0.0
	for j := 0; j < n; j++ {
		sum += maxBuf[j]
	}
	return sum / float64(n), worst
}

// CandidateLoad computes the candidate session load into CandLoad. The
// assignment must already hold the candidate state (decision applied).
func (e *Evaluator) CandidateLoad(a *assign.Assignment, s model.SessionID, scr *Scratch) *SparseLoad {
	e.p.sessionLoadSparse(a, s, &scr.cand, scr)
	return &scr.cand
}

// setBase overwrites one delay-matrix entry, logging the old value for
// revert.
func (scr *Scratch) setBase(pos int32, v float64) {
	scr.changes = append(scr.changes, delayChange{pos: pos, old: scr.base[pos]})
	scr.base[pos] = v
}

// memberIndex resolves a user to its member index in the session prepared
// by BeginSession, failing loudly on the staleness-contract violation a
// raw scr.idx lookup would turn into a confusing negative-index panic: a
// decision handed to CandidatePhi must reference only members of the
// session BeginSession last prepared on this scratch.
func (scr *Scratch) memberIndex(u model.UserID) int {
	if int(u) < 0 || int(u) >= len(scr.idx) || scr.idx[u] < 0 {
		panic(fmt.Sprintf(
			"cost: CandidatePhi: user %d is not a member of session %d prepared by BeginSession; "+
				"the scratch is stale — BeginSession must run for the decision's session before its candidates are evaluated",
			u, scr.sid))
	}
	return int(scr.idx[u])
}

// CandidatePhi evaluates the candidate state's Φ_s and delay feasibility by
// re-computing only the flows decision d moved: a UserMove re-evaluates the
// moved member's incoming and outgoing flows (2(n−1) of n(n−1)), a FlowMove
// exactly one. The assignment must hold the candidate state (d applied after
// BeginSession), and CandidateLoad must have run for the same state. The
// base delay matrix is restored before returning, so callers revert only the
// assignment. Returns ok = false (and phi 0) when the candidate violates the
// Dmax delay cap.
//
// Staleness contract: d must move a variable of the session most recently
// prepared by BeginSession on this scratch (the decision's user, or both
// flow endpoints, are members). A decision referencing any other session —
// a stale scratch, or candidates generated for the wrong session — is a
// caller bug and panics with a descriptive message instead of a negative
// slice index.
func (e *Evaluator) CandidatePhi(a *assign.Assignment, s model.SessionID, d assign.Decision, scr *Scratch) (phi float64, ok bool) {
	n := scr.n
	mean := 0.0
	if n >= 2 {
		scr.changes = scr.changes[:0]
		switch d.Kind {
		case assign.UserMove:
			iu := scr.memberIndex(d.User)
			u := scr.members[iu]
			for j := 0; j < n; j++ {
				if j == iu {
					continue
				}
				v := scr.members[j]
				scr.setBase(int32(iu*n+j), FlowDelayMS(a, model.Flow{Src: u, Dst: v}))
				scr.setBase(int32(j*n+iu), FlowDelayMS(a, model.Flow{Src: v, Dst: u}))
			}
		case assign.FlowMove:
			i, j := scr.memberIndex(d.Flow.Src), scr.memberIndex(d.Flow.Dst)
			scr.setBase(int32(i*n+j), FlowDelayMS(a, d.Flow))
		}
		var worst float64
		mean, worst = scr.delaySummary(scr.candMax)
		// Restore the base matrix to the BeginSession state.
		for i := len(scr.changes) - 1; i >= 0; i-- {
			scr.base[scr.changes[i].pos] = scr.changes[i].old
		}
		if worst > e.sc.DMaxMS {
			return 0, false
		}
	}
	return e.phiFromSparse(mean, &scr.cand), true
}

// ReportSessionWith evaluates one session like ReportSession but through the
// scratch: zero allocations, bit-identical observables.
func (e *Evaluator) ReportSessionWith(a *assign.Assignment, s model.SessionID, scr *Scratch) SessionReport {
	be := e.BeginSession(a, s, scr)
	return SessionReport{
		Session:       s,
		Objective:     be.Phi,
		InterTraffic:  scr.cur.TotalInterTraffic(),
		Tasks:         scr.cur.TotalTasks(),
		MeanDelayMS:   be.MeanDelayMS,
		WorstDelayMS:  be.WorstMS,
		DelayFeasible: be.WorstMS <= e.sc.DMaxMS,
	}
}

// ---------------------------------------------------------------------------
// Ledger sparse operations

// AddSparse accumulates a sparse session load into the ledger in O(touched).
func (g *Ledger) AddSparse(sl *SparseLoad) {
	for _, l := range sl.touched {
		g.down[l] += sl.down[l]
		g.up[l] += sl.up[l]
		g.tasks[l] += sl.tasks[l]
	}
}

// RemoveSparse subtracts a sparse session load from the ledger in
// O(touched).
func (g *Ledger) RemoveSparse(sl *SparseLoad) {
	for _, l := range sl.touched {
		g.down[l] -= sl.down[l]
		g.up[l] -= sl.up[l]
		g.tasks[l] -= sl.tasks[l]
	}
}

// fitsRepairAt is the per-agent FitsRepair condition.
func (g *Ledger) fitsRepairAt(l int, candDown, candUp float64, candTasks int, curDown, curUp float64, curTasks int) bool {
	const eps = 1e-9
	capDown, capUp, capTasks := g.effectiveCaps(l)
	newDown := g.down[l] + candDown
	newUp := g.up[l] + candUp
	newTasks := g.tasks[l] + candTasks
	oldDown := g.down[l] + curDown
	oldUp := g.up[l] + curUp
	oldTasks := g.tasks[l] + curTasks
	if newDown > capDown+eps && newDown > oldDown+eps {
		return false
	}
	if newUp > capUp+eps && newUp > oldUp+eps {
		return false
	}
	if newTasks > capTasks && newTasks > oldTasks {
		return false
	}
	return true
}

// FitsRepairDelta is FitsRepair restricted to the agents candidate or
// current touch — exact: on any other agent both loads contribute zero, so
// the repair condition (do not worsen an already-overloaded agent) holds
// trivially there regardless of the background ledger.
func (g *Ledger) FitsRepairDelta(candidate, current *SparseLoad) bool {
	for _, l32 := range candidate.touched {
		l := int(l32)
		if !g.fitsRepairAt(l, candidate.down[l], candidate.up[l], candidate.tasks[l],
			current.down[l], current.up[l], current.tasks[l]) {
			return false
		}
	}
	for _, l32 := range current.touched {
		if candidate.mark[l32] {
			continue // already checked above
		}
		l := int(l32)
		if !g.fitsRepairAt(l, 0, 0, 0, current.down[l], current.up[l], current.tasks[l]) {
			return false
		}
	}
	return true
}

// FitsTouched is the strict capacity check (constraints (5)–(7)) restricted
// to the agents the candidate touches. It equals Fits(candidate) whenever
// the background ledger alone is feasible; callers that may run over a
// degraded or overloaded ledger must check Fits(nil) once per evaluation
// round and AND it in (or use FitsRepairDelta, which needs no such guard).
func (g *Ledger) FitsTouched(candidate *SparseLoad) bool {
	const eps = 1e-9
	for _, l32 := range candidate.touched {
		l := int(l32)
		capDown, capUp, capTasks := g.effectiveCaps(l)
		if g.down[l]+candidate.down[l] > capDown+eps ||
			g.up[l]+candidate.up[l] > capUp+eps ||
			g.tasks[l]+candidate.tasks[l] > capTasks {
			return false
		}
	}
	return true
}
