package cost

import (
	"math"

	"vconf/internal/assign"
	"vconf/internal/model"
)

// FlowDelayMS computes d_uv, the end-to-end delay of the flow from user
// f.Src to user f.Dst under assignment a, in milliseconds (§III-C):
//
//	d_uv = H(λ(u),u) + H(λ(v),v)
//	     + D(λ(u),λ(v))                                if θ_uv = 0
//	     + D(λ(u),m) + D(m,λ(v)) + σ_m(r^u_u, r^d_vu)  if θ_uv = 1, γ at m
//
// Queuing delay is ignored per the paper (capacity constraints guarantee
// resource availability). Returns +Inf when any involved endpoint is still
// Unassigned, so incomplete states never look feasible.
func FlowDelayMS(a *assign.Assignment, f model.Flow) float64 {
	sc := a.Scenario()
	lu := a.UserAgent(f.Src)
	lv := a.UserAgent(f.Dst)
	if lu == assign.Unassigned || lv == assign.Unassigned {
		return math.Inf(1)
	}
	d := sc.H(lu, f.Src) + sc.H(lv, f.Dst)
	if !sc.Theta(f.Src, f.Dst) {
		return d + sc.D(lu, lv)
	}
	m, ok := a.FlowAgent(f)
	if !ok || m == assign.Unassigned {
		return math.Inf(1)
	}
	src := sc.User(f.Src)
	sigma := sc.Agent(m).Sigma(src.Upstream, sc.DownstreamRep(f))
	return d + sc.D(lu, m) + sc.D(m, lv) + sigma
}

// SessionDelays summarizes the delay picture of one session.
type SessionDelays struct {
	// PerUserMaxMS[i] is d_u for the i-th member of the session (in session
	// member order): the maximum end-to-end delay the user experiences
	// receiving streams from the other participants.
	PerUserMaxMS []float64
	// MeanOfMaxMS is F's default shape: (Σ_u d_u)/|U(s)| (§III-D example).
	MeanOfMaxMS float64
	// WorstMS is the largest flow delay in the session.
	WorstMS float64
	// WorstFlow identifies the flow achieving WorstMS.
	WorstFlow model.Flow
}

// SessionDelaysOf computes per-user maximum delays and their session mean.
// Sessions with a single user have zero delays.
func SessionDelaysOf(a *assign.Assignment, s model.SessionID) SessionDelays {
	sc := a.Scenario()
	members := sc.Session(s).Users
	out := SessionDelays{PerUserMaxMS: make([]float64, len(members))}
	if len(members) < 2 {
		return out
	}
	idx := make(map[model.UserID]int, len(members))
	for i, u := range members {
		idx[u] = i
	}
	for _, u := range members {
		for _, v := range sc.Participants(u) {
			f := model.Flow{Src: u, Dst: v}
			d := FlowDelayMS(a, f)
			if d > out.PerUserMaxMS[idx[v]] {
				out.PerUserMaxMS[idx[v]] = d
			}
			if d > out.WorstMS {
				out.WorstMS = d
				out.WorstFlow = f
			}
		}
	}
	sum := 0.0
	for _, d := range out.PerUserMaxMS {
		sum += d
	}
	out.MeanOfMaxMS = sum / float64(len(members))
	return out
}

// DelayFeasible reports whether every flow of session s satisfies
// d_uv ≤ Dmax (constraint (8)).
func DelayFeasible(a *assign.Assignment, s model.SessionID) bool {
	sc := a.Scenario()
	for _, u := range sc.Session(s).Users {
		for _, v := range sc.Participants(u) {
			if FlowDelayMS(a, model.Flow{Src: u, Dst: v}) > sc.DMaxMS {
				return false
			}
		}
	}
	return true
}

// MeanConferencingDelayMS returns the system-wide conferencing delay metric
// the paper reports: the average over all users of each user's maximum
// incoming-flow delay. Single-user sessions contribute zero.
func MeanConferencingDelayMS(a *assign.Assignment) float64 {
	sc := a.Scenario()
	total, n := 0.0, 0
	for s := 0; s < sc.NumSessions(); s++ {
		sd := SessionDelaysOf(a, model.SessionID(s))
		for _, d := range sd.PerUserMaxMS {
			total += d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}
