package cost

// This file implements the persistent per-session delay cache: the warm-hop
// complement of sparse.go's per-candidate delta evaluation. Without it,
// every BeginSession rebuilds the session's full n×n per-flow delay base —
// the one remaining O(n²) FlowDelayMS term in an otherwise O(moved-flows)
// hop pipeline. The cache retains each session's delay matrix, decision
// signature, load and summary between hops, so a warm BeginSession patches
// only the rows/columns invalidated by decisions committed since the last
// hop and is O(moved flows).
//
// Staleness contract (what makes warm reuse exact): a session's delay
// matrix is a pure function of the session's OWN decision variables — the
// member subscriptions λ_u and the session's transcoding-flow placements
// γ_f — plus immutable scenario data (H, D, σ, θ, representations). No
// other session's variables and no capacity state enter FlowDelayMS. Each
// cache entry therefore records the variable values it was computed from
// (the signature); BeginSession diffs the signature against the live
// assignment and recomputes exactly the entries whose endpoints moved:
//
//   - a changed member subscription invalidates that member's row and
//     column (2(n−1) flows, the same set CandidatePhi patches for a
//     UserMove);
//   - a changed flow placement invalidates one entry;
//   - an unchanged signature means the matrix, the session load, Φ_s and
//     the delay summary are all bitwise-unchanged and are reused outright.
//
// Every committed decision — a hop migration, an orchestrator commit, a
// bootstrap, a departure's teardown — changes the session's variables and
// is therefore picked up by the signature diff on the next BeginSession,
// regardless of which code path wrote the assignment. Explicit
// invalidation (Invalidate) exists for the state transitions where
// patching is pointless because everything changed: session departure and
// re-arrival (the engines and the orchestrator invalidate there, under
// their existing state locks), and scenario rebinding (Scratch.Ensure
// drops the cache wholesale). A cold or invalidated entry falls back to
// the full rebuild, which is kept verbatim (and selectable everywhere via
// core.Config.RebuildDelayBase for differential testing).
//
// Exactness: patched entries are recomputed by the same pure FlowDelayMS
// on the same inputs a full rebuild would use, unchanged entries are
// unchanged bits, and the summary/objective recomputations run the exact
// code and order of the rebuild path — so the warm path is bit-identical
// to the rebuild path. The differential tests in internal/core and
// internal/orchestrator replay whole runs under both settings.
//
// A DelayCache is private to its Scratch (one per worker goroutine); it is
// not safe for concurrent use and needs no locking.

import (
	"vconf/internal/model"
)

// delayEntry is one session's retained delay state.
type delayEntry struct {
	// valid marks the entry warm. Invalid entries full-rebuild on the next
	// BeginSession.
	valid bool
	// base is the session's n×n per-flow delay matrix (row = source member
	// index), exactly as BeginSession fills it.
	base []float64
	// userSig[i] is the agent member i subscribed to when base was last
	// synchronized; flowSig[k] is the transcoding agent of the session's
	// k-th flow (aligned with assign.SessionFlowsShared). Together they
	// are the complete decision state the matrix was computed from.
	userSig []model.AgentID
	flowSig []model.AgentID
	// load, phi, mean and worst capture the rest of the BeginSession
	// output at the signature state, reused outright on an unchanged
	// signature.
	load  *SparseLoad
	phi   float64
	mean  float64
	worst float64
}

// DelayCache retains per-session delay-evaluation state across hops for
// one Scratch. Entries are allocated lazily on first evaluation of a
// session; steady-state warm evaluations allocate nothing.
type DelayCache struct {
	sc  *model.Scenario
	ent []delayEntry

	hits     int // warm evaluations with an unchanged signature
	patches  int // warm evaluations that recomputed ≥1 moved flow
	rebuilds int // cold evaluations (first touch or invalidated)
}

// NewDelayCache builds an empty cache over the scenario's session set.
func NewDelayCache(sc *model.Scenario) *DelayCache {
	return &DelayCache{sc: sc, ent: make([]delayEntry, sc.NumSessions())}
}

// Invalidate marks session s's entry cold and releases its buffers: the
// next BeginSession performs a full delay-base rebuild into fresh storage.
// Call it when the session's variables are torn down or rebuilt wholesale
// (departure, re-arrival bootstrap) — patching a fully-changed matrix
// costs more than rebuilding it, and releasing keeps long-running churny
// control planes from pinning per-session matrices and fleet-sized loads
// for sessions that left.
func (dc *DelayCache) Invalidate(s model.SessionID) {
	if int(s) >= 0 && int(s) < len(dc.ent) {
		dc.ent[s] = delayEntry{}
	}
}

// InvalidateAll marks every entry cold and releases all retained buffers.
func (dc *DelayCache) InvalidateAll() {
	for i := range dc.ent {
		dc.ent[i] = delayEntry{}
	}
}

// Warm reports whether session s currently has a warm entry.
func (dc *DelayCache) Warm(s model.SessionID) bool {
	return int(s) >= 0 && int(s) < len(dc.ent) && dc.ent[s].valid
}

// Hits returns the count of warm evaluations that reused the entry with an
// unchanged signature (no flow recomputed).
func (dc *DelayCache) Hits() int { return dc.hits }

// Patches returns the count of warm evaluations that recomputed at least
// one moved flow.
func (dc *DelayCache) Patches() int { return dc.patches }

// Rebuilds returns the count of cold evaluations (full delay-base
// rebuilds).
func (dc *DelayCache) Rebuilds() int { return dc.rebuilds }
