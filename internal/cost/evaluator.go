package cost

import (
	"fmt"
	"math"

	"vconf/internal/assign"
	"vconf/internal/model"
)

// Evaluator computes objectives and feasibility for assignments over a fixed
// scenario. It is stateless and safe for concurrent use.
type Evaluator struct {
	sc *model.Scenario
	p  Params
}

// NewEvaluator builds an evaluator; the parameters are validated once here.
func NewEvaluator(sc *model.Scenario, p Params) (*Evaluator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Evaluator{sc: sc, p: p}, nil
}

// Params returns the evaluator's parameters.
func (e *Evaluator) Params() Params { return e.p }

// Scenario returns the evaluator's scenario.
func (e *Evaluator) Scenario() *model.Scenario { return e.sc }

// SessionObjective computes Φ_s = α1·F(d_s) + α2·G(x_s) + α3·H(y_s): the
// local objective of session s (§IV-A-2), which is all Alg. 1 needs to
// compute hop probabilities — the property that enables the parallel,
// per-session implementation.
func (e *Evaluator) SessionObjective(a *assign.Assignment, s model.SessionID) float64 {
	sl := e.p.SessionLoadOf(a, s)
	return e.sessionObjectiveFromLoad(a, s, sl)
}

func (e *Evaluator) sessionObjectiveFromLoad(a *assign.Assignment, s model.SessionID, sl *SessionLoad) float64 {
	phi := 0.0
	if e.p.Alpha1 > 0 {
		phi += e.p.Alpha1 * SessionDelaysOf(a, s).MeanOfMaxMS
	}
	if e.p.Alpha2 > 0 {
		g := 0.0
		for l, x := range sl.Inter {
			if x > 0 {
				g += e.p.trafficCost(e.sc.Agent(model.AgentID(l)).TrafficPricePerMbps, x)
			}
		}
		phi += e.p.Alpha2 * g
	}
	if e.p.Alpha3 > 0 {
		h := 0.0
		for l, y := range sl.Tasks {
			if y > 0 {
				h += e.p.transcodeCost(e.sc.Agent(model.AgentID(l)).TranscodePricePerTask, y)
			}
		}
		phi += e.p.Alpha3 * h
	}
	return phi
}

// TotalObjective computes Φ_f = Σ_s Φ_s for a complete assignment.
func (e *Evaluator) TotalObjective(a *assign.Assignment) float64 {
	total := 0.0
	for s := 0; s < e.sc.NumSessions(); s++ {
		total += e.SessionObjective(a, model.SessionID(s))
	}
	return total
}

// SessionReport bundles the per-session observables the experiments plot.
type SessionReport struct {
	Session       model.SessionID
	Objective     float64
	InterTraffic  float64 // Mbps, Σ_l x_ls
	Tasks         int     // Σ_l y_ls
	MeanDelayMS   float64 // F's argument: mean over users of max incoming delay
	WorstDelayMS  float64
	DelayFeasible bool
}

// ReportSession evaluates one session fully.
func (e *Evaluator) ReportSession(a *assign.Assignment, s model.SessionID) SessionReport {
	sl := e.p.SessionLoadOf(a, s)
	sd := SessionDelaysOf(a, s)
	return SessionReport{
		Session:       s,
		Objective:     e.sessionObjectiveFromLoad(a, s, sl),
		InterTraffic:  sl.TotalInterTraffic(),
		Tasks:         sl.TotalTasks(),
		MeanDelayMS:   sd.MeanOfMaxMS,
		WorstDelayMS:  sd.WorstMS,
		DelayFeasible: sd.WorstMS <= e.sc.DMaxMS,
	}
}

// SystemReport aggregates all sessions.
type SystemReport struct {
	Objective      float64
	InterTraffic   float64
	Tasks          int
	MeanDelayMS    float64
	WorstDelayMS   float64
	AllDelayOK     bool
	SessionReports []SessionReport
}

// ReportSystem evaluates the whole assignment.
func (e *Evaluator) ReportSystem(a *assign.Assignment) SystemReport {
	out := SystemReport{AllDelayOK: true}
	totalDelay, users := 0.0, 0
	for s := 0; s < e.sc.NumSessions(); s++ {
		r := e.ReportSession(a, model.SessionID(s))
		out.SessionReports = append(out.SessionReports, r)
		out.Objective += r.Objective
		out.InterTraffic += r.InterTraffic
		out.Tasks += r.Tasks
		n := e.sc.Session(model.SessionID(s)).Size()
		totalDelay += r.MeanDelayMS * float64(n)
		users += n
		if r.WorstDelayMS > out.WorstDelayMS {
			out.WorstDelayMS = r.WorstDelayMS
		}
		out.AllDelayOK = out.AllDelayOK && r.DelayFeasible
	}
	if users > 0 {
		out.MeanDelayMS = totalDelay / float64(users)
	}
	return out
}

// ---------------------------------------------------------------------------
// Global capacity ledger

// Ledger tracks global per-agent resource usage across sessions and answers
// capacity-feasibility questions incrementally. The Markov engine holds one
// Ledger; when session s considers a hop, it subtracts s's current load,
// adds the candidate load, and asks Fits.
//
// A ledger can also model runtime capacity degradation (failure injection):
// SetCapacityScale shrinks an agent's effective capacities, and FitsRepair
// lets the chain keep migrating off a newly-overloaded agent even while the
// violation persists.
type Ledger struct {
	sc    *model.Scenario
	down  []float64
	up    []float64
	tasks []int
	// scale multiplies each agent's nominal capacities (nil ⇒ all 1.0).
	scale []float64
}

// NewLedger creates an empty ledger for the scenario.
func NewLedger(sc *model.Scenario) *Ledger {
	return &Ledger{
		sc:    sc,
		down:  make([]float64, sc.NumAgents()),
		up:    make([]float64, sc.NumAgents()),
		tasks: make([]int, sc.NumAgents()),
	}
}

// EnsureScale forces allocation of the capacity-scale array (all 1.0). The
// sharded ledger calls it at construction: a first SetCapacityScale under a
// single stripe lock would otherwise publish the slice header unsynchronized
// to readers holding other stripes' locks. After this, runtime scale changes
// are per-element writes, each under its owning stripe's lock.
func (g *Ledger) EnsureScale() {
	if g.scale == nil {
		g.scale = make([]float64, g.sc.NumAgents())
		for i := range g.scale {
			g.scale[i] = 1
		}
	}
}

// SetCapacityScale degrades (or restores) agent l's effective capacities to
// factor × nominal. factor must be in [0, 1]; 1 restores full capacity.
func (g *Ledger) SetCapacityScale(l model.AgentID, factor float64) error {
	if factor < 0 || factor > 1 {
		return fmt.Errorf("cost: capacity scale %v outside [0,1]", factor)
	}
	if int(l) < 0 || int(l) >= g.sc.NumAgents() {
		return fmt.Errorf("cost: unknown agent %d", l)
	}
	if g.scale == nil {
		g.scale = make([]float64, g.sc.NumAgents())
		for i := range g.scale {
			g.scale[i] = 1
		}
	}
	g.scale[l] = factor
	return nil
}

// effectiveCaps returns agent l's scaled capacities.
func (g *Ledger) effectiveCaps(l int) (down, up float64, tasks int) {
	ag := g.sc.Agent(model.AgentID(l))
	down, up, tasks = ag.Download, ag.Upload, ag.TranscodeSlots
	if g.scale != nil {
		down *= g.scale[l]
		up *= g.scale[l]
		tasks = int(float64(tasks) * g.scale[l])
	}
	return down, up, tasks
}

// Violations lists agents whose current usage exceeds their (scaled)
// capacity — non-empty only after degradation or external load injection.
func (g *Ledger) Violations() []model.AgentID {
	const eps = 1e-9
	var out []model.AgentID
	for l := 0; l < g.sc.NumAgents(); l++ {
		capDown, capUp, capTasks := g.effectiveCaps(l)
		if g.down[l] > capDown+eps || g.up[l] > capUp+eps || g.tasks[l] > capTasks {
			out = append(out, model.AgentID(l))
		}
	}
	return out
}

// FitsRepair reports whether replacing a session's current load with the
// candidate keeps every agent within capacity OR, where an agent is already
// over its (possibly degraded) capacity, does not worsen it. This lets the
// chain execute repair migrations after a capacity degradation: strict Fits
// would freeze every session touching the overloaded agent.
func (g *Ledger) FitsRepair(candidate, current *SessionLoad) bool {
	const eps = 1e-9
	for l := 0; l < g.sc.NumAgents(); l++ {
		capDown, capUp, capTasks := g.effectiveCaps(l)
		newDown := g.down[l] + candidate.Down[l]
		newUp := g.up[l] + candidate.Up[l]
		newTasks := g.tasks[l] + candidate.Tasks[l]
		oldDown := g.down[l] + current.Down[l]
		oldUp := g.up[l] + current.Up[l]
		oldTasks := g.tasks[l] + current.Tasks[l]
		if newDown > capDown+eps && newDown > oldDown+eps {
			return false
		}
		if newUp > capUp+eps && newUp > oldUp+eps {
			return false
		}
		if newTasks > capTasks && newTasks > oldTasks {
			return false
		}
	}
	return true
}

// Add accumulates a session load into the ledger.
func (g *Ledger) Add(sl *SessionLoad) { sl.AddTo(g.down, g.up, g.tasks) }

// Remove subtracts a session load from the ledger.
func (g *Ledger) Remove(sl *SessionLoad) { sl.SubtractFrom(g.down, g.up, g.tasks) }

// Fits reports whether the ledger plus the candidate session load respects
// every agent's (scaled) download, upload and transcoding capacity
// (constraints (5)–(7)). The candidate may be nil to check the ledger alone.
func (g *Ledger) Fits(candidate *SessionLoad) bool {
	const eps = 1e-9 // float accumulation slack
	for l := 0; l < g.sc.NumAgents(); l++ {
		capDown, capUp, capTasks := g.effectiveCaps(l)
		down, up, tasks := g.down[l], g.up[l], g.tasks[l]
		if candidate != nil {
			down += candidate.Down[l]
			up += candidate.Up[l]
			tasks += candidate.Tasks[l]
		}
		if down > capDown+eps || up > capUp+eps || tasks > capTasks {
			return false
		}
	}
	return true
}

// Usage returns copies of the per-agent usage vectors.
func (g *Ledger) Usage() (down, up []float64, tasks []int) {
	return append([]float64(nil), g.down...),
		append([]float64(nil), g.up...),
		append([]int(nil), g.tasks...)
}

// CheckFeasible verifies a complete assignment against all constraints
// (1)–(8): structural completeness, capacities, and delay caps. It returns
// nil when feasible, else a descriptive error naming the violated
// constraint.
func (e *Evaluator) CheckFeasible(a *assign.Assignment) error {
	if !a.Complete() {
		return fmt.Errorf("cost: assignment incomplete (constraint (1)/(3))")
	}
	ledger := NewLedger(e.sc)
	for s := 0; s < e.sc.NumSessions(); s++ {
		ledger.Add(e.p.SessionLoadOf(a, model.SessionID(s)))
	}
	const eps = 1e-9
	for l := 0; l < e.sc.NumAgents(); l++ {
		ag := e.sc.Agent(model.AgentID(l))
		switch {
		case ledger.down[l] > ag.Download+eps:
			return fmt.Errorf("cost: agent %d download %.3f exceeds capacity %.3f (constraint (5))",
				l, ledger.down[l], ag.Download)
		case ledger.up[l] > ag.Upload+eps:
			return fmt.Errorf("cost: agent %d upload %.3f exceeds capacity %.3f (constraint (6))",
				l, ledger.up[l], ag.Upload)
		case ledger.tasks[l] > ag.TranscodeSlots:
			return fmt.Errorf("cost: agent %d runs %d transcoding tasks, capacity %d (constraint (7))",
				l, ledger.tasks[l], ag.TranscodeSlots)
		}
	}
	for s := 0; s < e.sc.NumSessions(); s++ {
		if !DelayFeasible(a, model.SessionID(s)) {
			sd := SessionDelaysOf(a, model.SessionID(s))
			return fmt.Errorf("cost: session %d flow %d→%d delay %.1f ms exceeds Dmax %.1f ms (constraint (8))",
				s, sd.WorstFlow.Src, sd.WorstFlow.Dst, sd.WorstMS, e.sc.DMaxMS)
		}
	}
	return nil
}

// Infeasible is a sentinel objective value for states that violate
// constraints; it dominates every feasible objective.
var Infeasible = math.Inf(1)
