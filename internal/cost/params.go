// Package cost evaluates assignments: the μ inter-agent traffic terms, the
// end-to-end flow delays, the capacity constraints (5)–(8), and the UAP
// objective Φ = Σ_s α1·F(d_s) + α2·G(x_s) + α3·H(y_s) of the paper, §III.
package cost

import (
	"fmt"
	"math"
)

// Params configures the objective weights and cost-function shapes.
type Params struct {
	// Alpha1 weights the delay cost F(d_s). §V-B sweeps α1 against α2.
	Alpha1 float64
	// Alpha2 weights the inter-agent bandwidth cost G(x_s).
	Alpha2 float64
	// Alpha3 weights the transcoding cost H(y_s).
	Alpha3 float64

	// TrafficExponent shapes g_l(x) = price_l · x^TrafficExponent. The paper
	// requires g_l convex increasing; 1 (linear) is the default, > 1 models
	// burst pricing.
	TrafficExponent float64
	// TranscodeExponent shapes h_l(y) = price_l · y^TranscodeExponent.
	TranscodeExponent float64

	// StrictPaperTraffic selects the μ formula exactly as printed in §III-B,
	// including the (1−λ_lu) factor in its third term, which suppresses
	// transcoded-return traffic toward the source's own agent. When false, a
	// flow-conserving variant is used that counts that traffic. Default true
	// (faithful reproduction); the ablation bench compares both.
	StrictPaperTraffic bool
}

// DefaultParams returns the α1 = α2 = α3 = 1 linear configuration used
// wherever the paper says "α1 = α2".
func DefaultParams() Params {
	return Params{
		Alpha1:             1,
		Alpha2:             1,
		Alpha3:             1,
		TrafficExponent:    1,
		TranscodeExponent:  1,
		StrictPaperTraffic: true,
	}
}

// TrafficOnlyParams is the paper's α1 = 0 column of Table II: pure
// operational-cost minimization.
func TrafficOnlyParams() Params {
	p := DefaultParams()
	p.Alpha1 = 0
	return p
}

// DelayOnlyParams is the paper's α2 = 0 column of Table II: pure
// delay minimization (transcoding cost also disabled so the objective is
// delay-only, matching the column label "delay only").
func DelayOnlyParams() Params {
	p := DefaultParams()
	p.Alpha2 = 0
	p.Alpha3 = 0
	return p
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Alpha1 < 0 || p.Alpha2 < 0 || p.Alpha3 < 0 {
		return fmt.Errorf("cost: negative objective weight")
	}
	if p.Alpha1 == 0 && p.Alpha2 == 0 && p.Alpha3 == 0 {
		return fmt.Errorf("cost: all objective weights are zero")
	}
	if p.TrafficExponent < 1 || p.TranscodeExponent < 1 {
		return fmt.Errorf("cost: cost exponents must be ≥ 1 for convexity")
	}
	return nil
}

// trafficCost evaluates g_l for one agent's incoming traffic.
func (p Params) trafficCost(pricePerMbps, mbps float64) float64 {
	if p.TrafficExponent == 1 {
		return pricePerMbps * mbps
	}
	return pricePerMbps * math.Pow(mbps, p.TrafficExponent)
}

// transcodeCost evaluates h_l for one agent's task count.
func (p Params) transcodeCost(pricePerTask float64, tasks int) float64 {
	y := float64(tasks)
	if p.TranscodeExponent == 1 {
		return pricePerTask * y
	}
	return pricePerTask * math.Pow(y, p.TranscodeExponent)
}
