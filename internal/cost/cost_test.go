package cost

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vconf/internal/assign"
	"vconf/internal/model"
)

// fixture builds the canonical hand-checkable instance:
//
//	3 agents (A=0, B=1, C=2), capacities 1000/1000 Mbps, 8 slots each,
//	D: A–B 10, A–C 20, B–C 30 ms; H[l][u] = 1 ms everywhere,
//	session 0: u0 upstream 1080p (8 Mbps), u1 upstream 720p (5 Mbps),
//	           u1 demands 360p (1 Mbps) of u0  ⇒  θ(u0,u1) = 1,
//	σ = 40 ms at every agent for every pair.
type fixture struct {
	sc *model.Scenario
	u0 model.UserID
	u1 model.UserID
	f  model.Flow
}

func newFixture(t *testing.T, extraUsers int) fixture {
	t.Helper()
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r720, _ := rs.ByName("720p")
	r1080, _ := rs.ByName("1080p")
	for i := 0; i < 3; i++ {
		b.AddAgent(model.Agent{
			Name: string(rune('A' + i)), Upload: 1000, Download: 1000, TranscodeSlots: 8,
			SigmaMS: model.UniformSigma(rs.Len(), 40),
		})
	}
	s0 := b.AddSession("s0")
	u0 := b.AddUser("u0", s0, r1080, nil)
	u1 := b.AddUser("u1", s0, r720, nil)
	b.DemandFrom(u1, u0, r360)
	for i := 0; i < extraUsers; i++ {
		b.AddUser("extra", s0, r720, nil)
	}
	b.SetInterAgentDelays([][]float64{
		{0, 10, 20},
		{10, 0, 30},
		{20, 30, 0},
	})
	h := make([][]float64, 3)
	for l := range h {
		h[l] = make([]float64, 2+extraUsers)
		for u := range h[l] {
			h[l][u] = 1
		}
	}
	b.SetAgentUserDelays(h)
	sc, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return fixture{sc: sc, u0: u0, u1: u1, f: model.Flow{Src: u0, Dst: u1}}
}

func (fx fixture) assignment(t *testing.T, agentU0, agentU1, transcoder model.AgentID) *assign.Assignment {
	t.Helper()
	a := assign.New(fx.sc)
	a.SetUserAgent(fx.u0, agentU0)
	a.SetUserAgent(fx.u1, agentU1)
	if err := a.SetFlowAgent(fx.f, transcoder); err != nil {
		t.Fatalf("SetFlowAgent: %v", err)
	}
	return a
}

func TestTrafficTranscoderPlacements(t *testing.T) {
	fx := newFixture(t, 0)
	p := DefaultParams()
	const (
		kappa1080 = 8.0
		kappa360  = 1.0
	)
	tests := []struct {
		name        string
		u0, u1, m   model.AgentID
		wantTraffic float64
		wantTasksAt model.AgentID
	}{
		// Whenever u0 and u1 sit on different agents, u1's native 720p
		// stream adds a constant 5 Mbps B→A edge (term 2) on top of the
		// transcoding-dependent edges for u0's stream.
		//
		// Transcode at source agent A: only the 1 Mbps transcoded stream
		// crosses A→B. (Term 3; term 1 vanishes because m = k.)
		{"source-side", 0, 1, 0, kappa360 + 5, 0},
		// Transcode at destination agent B: the 8 Mbps raw crosses A→B
		// (term 1); transcoded copy is local (l_v = m ⇒ no term 3).
		{"dest-side", 0, 1, 1, kappa1080 + 5, 1},
		// Tertiary agent C: raw A→C (8) plus transcoded C→B (1).
		{"tertiary", 0, 1, 2, kappa1080 + kappa360 + 5, 2},
		// Everyone co-located at A: no inter-agent traffic at all.
		{"colocated", 0, 0, 0, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := fx.assignment(t, tt.u0, tt.u1, tt.m)
			sl := p.SessionLoadOf(a, 0)
			if got := sl.TotalInterTraffic(); math.Abs(got-tt.wantTraffic) > 1e-9 {
				t.Fatalf("inter-agent traffic = %v, want %v", got, tt.wantTraffic)
			}
			if got := sl.Tasks[tt.wantTasksAt]; got != 1 {
				t.Fatalf("tasks at agent %d = %d, want 1", tt.wantTasksAt, got)
			}
			if got := sl.TotalTasks(); got != 1 {
				t.Fatalf("total tasks = %d, want 1", got)
			}
		})
	}
}

func TestTrafficIncludesReverseNativeFlow(t *testing.T) {
	// u1's 720p stream flows B→A untranscoded (u0 accepts native): term 2.
	fx := newFixture(t, 0)
	p := DefaultParams()
	a := fx.assignment(t, 0, 1, 0)
	sl := p.SessionLoadOf(a, 0)
	// Edges: A→B 1 (transcoded 360p), B→A 5 (u1's native 720p).
	if got := sl.Inter[0]; math.Abs(got-5) > 1e-9 {
		t.Fatalf("x at agent A = %v, want 5 (u1's native stream)", got)
	}
	if got := sl.Inter[1]; math.Abs(got-1) > 1e-9 {
		t.Fatalf("x at agent B = %v, want 1 (transcoded 360p)", got)
	}
}

func TestStrictVsFlowConservingTraffic(t *testing.T) {
	// Source and destination both at A, transcoder at B. Paper-strict: raw
	// A→B only (the (1−λ_lu) factor suppresses the return); flow-conserving
	// adds the 1 Mbps return B→A.
	fx := newFixture(t, 0)
	a := fx.assignment(t, 0, 0, 1)

	strict := DefaultParams()
	slStrict := strict.SessionLoadOf(a, 0)
	if got := slStrict.TotalInterTraffic(); math.Abs(got-8) > 1e-9 {
		t.Fatalf("strict traffic = %v, want 8 (raw to transcoder only)", got)
	}

	loose := DefaultParams()
	loose.StrictPaperTraffic = false
	slLoose := loose.SessionLoadOf(a, 0)
	if got := slLoose.TotalInterTraffic(); math.Abs(got-9) > 1e-9 {
		t.Fatalf("flow-conserving traffic = %v, want 9 (raw + returned 360p)", got)
	}
}

func TestLastMileAccounting(t *testing.T) {
	fx := newFixture(t, 0)
	p := DefaultParams()
	a := fx.assignment(t, 0, 1, 0)
	sl := p.SessionLoadOf(a, 0)
	// Agent A download: u0's 8 Mbps upstream + 5 Mbps incoming from B.
	if got := sl.Down[0]; math.Abs(got-13) > 1e-9 {
		t.Fatalf("Down[A] = %v, want 13", got)
	}
	// Agent A upload: u0 downloads u1's 720p (5) + transcoded edge A→B (1).
	if got := sl.Up[0]; math.Abs(got-6) > 1e-9 {
		t.Fatalf("Up[A] = %v, want 6", got)
	}
	// Agent B download: u1's 5 Mbps upstream + 1 Mbps transcoded incoming.
	if got := sl.Down[1]; math.Abs(got-6) > 1e-9 {
		t.Fatalf("Down[B] = %v, want 6", got)
	}
	// Agent B upload: u1 downloads u0-as-360p (1) + native edge B→A (5).
	if got := sl.Up[1]; math.Abs(got-6) > 1e-9 {
		t.Fatalf("Up[B] = %v, want 6", got)
	}
}

func TestTaskDeduplicationAcrossDestinations(t *testing.T) {
	// Two destinations demanding the same 360p of u0, transcoded at the same
	// agent ⇒ one ν task; a third destination demanding 480p ⇒ second task.
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r480, _ := rs.ByName("480p")
	r1080, _ := rs.ByName("1080p")
	for i := 0; i < 2; i++ {
		b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 8})
	}
	s := b.AddSession("s")
	u0 := b.AddUser("u0", s, r1080, nil)
	d1 := b.AddUser("d1", s, r1080, nil)
	d2 := b.AddUser("d2", s, r1080, nil)
	d3 := b.AddUser("d3", s, r1080, nil)
	b.DemandFrom(d1, u0, r360)
	b.DemandFrom(d2, u0, r360)
	b.DemandFrom(d3, u0, r480)
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := assign.New(sc)
	for _, u := range []model.UserID{u0, d1, d2, d3} {
		a.SetUserAgent(u, 0)
	}
	for _, f := range a.Flows() {
		if err := a.SetFlowAgent(f, 1); err != nil {
			t.Fatal(err)
		}
	}
	p := DefaultParams()
	sl := p.SessionLoadOf(a, 0)
	if got := sl.Tasks[1]; got != 2 {
		t.Fatalf("tasks at transcoder = %d, want 2 (360p + 480p)", got)
	}
	// Traffic: raw 0→1 (8 Mbps, one copy). Transcoded copies back toward
	// agent 0 are suppressed by the strict (1−λ_lu) factor since u0 is there.
	if got := sl.TotalInterTraffic(); math.Abs(got-8) > 1e-9 {
		t.Fatalf("traffic = %v, want 8", got)
	}
}

func TestFlowDelay(t *testing.T) {
	fx := newFixture(t, 0)
	tests := []struct {
		name      string
		u0, u1, m model.AgentID
		want      float64
	}{
		// H + H + D(A,m) + D(m,B) + σ = 1+1+0+10+40 (transcode at source).
		{"transcode at source", 0, 1, 0, 52},
		// 1+1+10+0+40 (transcode at destination).
		{"transcode at dest", 0, 1, 1, 52},
		// 1+1+20+30+40 via C.
		{"transcode tertiary", 0, 1, 2, 92},
		// co-located with local transcoder: 1+1+0+0+40.
		{"colocated", 0, 0, 0, 42},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := fx.assignment(t, tt.u0, tt.u1, tt.m)
			if got := FlowDelayMS(a, fx.f); math.Abs(got-tt.want) > 1e-9 {
				t.Fatalf("FlowDelayMS = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestFlowDelayNoTranscoding(t *testing.T) {
	fx := newFixture(t, 0)
	a := fx.assignment(t, 0, 1, 0)
	// u1 → u0 has no transcoding: 1 + 1 + D(B,A)=10.
	got := FlowDelayMS(a, model.Flow{Src: fx.u1, Dst: fx.u0})
	if math.Abs(got-12) > 1e-9 {
		t.Fatalf("native flow delay = %v, want 12", got)
	}
}

func TestFlowDelayUnassignedIsInfinite(t *testing.T) {
	fx := newFixture(t, 0)
	a := assign.New(fx.sc)
	if !math.IsInf(FlowDelayMS(a, fx.f), 1) {
		t.Fatal("unassigned flow should have +Inf delay")
	}
	a.SetUserAgent(fx.u0, 0)
	a.SetUserAgent(fx.u1, 1)
	// Transcoding flow without transcoder: still infinite.
	if !math.IsInf(FlowDelayMS(a, fx.f), 1) {
		t.Fatal("flow without transcoder should have +Inf delay")
	}
}

func TestSessionDelaysAndFeasibility(t *testing.T) {
	fx := newFixture(t, 0)
	a := fx.assignment(t, 0, 1, 2) // worst case: 92 ms transcoded flow
	sd := SessionDelaysOf(a, 0)
	if math.Abs(sd.WorstMS-92) > 1e-9 {
		t.Fatalf("WorstMS = %v, want 92", sd.WorstMS)
	}
	if sd.WorstFlow != fx.f {
		t.Fatalf("WorstFlow = %v, want %v", sd.WorstFlow, fx.f)
	}
	// d_u0 = max incoming = 12 (from u1); d_u1 = 92. Mean = 52.
	if math.Abs(sd.MeanOfMaxMS-52) > 1e-9 {
		t.Fatalf("MeanOfMaxMS = %v, want 52", sd.MeanOfMaxMS)
	}
	if !DelayFeasible(a, 0) {
		t.Fatal("session should satisfy the 400 ms cap")
	}
}

func TestDelayConstraintViolation(t *testing.T) {
	fx := newFixture(t, 0)
	// Shrink Dmax below the best achievable (42 ms) via a rebuilt scenario.
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r1080, _ := rs.ByName("1080p")
	b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 8,
		SigmaMS: model.UniformSigma(rs.Len(), 40)})
	s := b.AddSession("s")
	u0 := b.AddUser("u0", s, r1080, nil)
	u1 := b.AddUser("u1", s, r1080, nil)
	b.DemandFrom(u1, u0, r360)
	b.SetDelayCap(30)
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := assign.New(sc)
	a.SetUserAgent(u0, 0)
	a.SetUserAgent(u1, 0)
	if err := a.SetFlowAgent(model.Flow{Src: u0, Dst: u1}, 0); err != nil {
		t.Fatal(err)
	}
	if DelayFeasible(a, 0) {
		t.Fatal("40 ms σ should violate a 30 ms cap")
	}
	ev, err := NewEvaluator(sc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.CheckFeasible(a); err == nil {
		t.Fatal("CheckFeasible should report the delay violation")
	}
	_ = fx
}

func TestObjectiveComposition(t *testing.T) {
	fx := newFixture(t, 0)
	a := fx.assignment(t, 0, 1, 0)
	p := DefaultParams()
	ev, err := NewEvaluator(fx.sc, p)
	if err != nil {
		t.Fatal(err)
	}
	// F = mean(max incoming): u0 ← 12, u1 ← 52 ⇒ 32. G = 6 Mbps (5+1).
	// H = 1 task. Φ = 32 + 6 + 1 = 39.
	if got := ev.SessionObjective(a, 0); math.Abs(got-39) > 1e-9 {
		t.Fatalf("Φ_s = %v, want 39", got)
	}
	if got := ev.TotalObjective(a); math.Abs(got-39) > 1e-9 {
		t.Fatalf("Φ = %v, want 39", got)
	}

	// Alpha weights scale the parts.
	p2 := Params{Alpha1: 2, Alpha2: 0.5, Alpha3: 0, TrafficExponent: 1, TranscodeExponent: 1, StrictPaperTraffic: true}
	ev2, err := NewEvaluator(fx.sc, p2)
	if err != nil {
		t.Fatal(err)
	}
	if got := ev2.SessionObjective(a, 0); math.Abs(got-(2*32+0.5*6)) > 1e-9 {
		t.Fatalf("weighted Φ_s = %v, want %v", got, 2*32+0.5*6)
	}
}

func TestConvexCostExponents(t *testing.T) {
	fx := newFixture(t, 0)
	p := DefaultParams()
	p.TrafficExponent = 2
	p.TranscodeExponent = 2
	ev, err := NewEvaluator(fx.sc, p)
	if err != nil {
		t.Fatal(err)
	}
	a := fx.assignment(t, 0, 1, 0)
	// G = 5² + 1² = 26, H = 1² = 1, F = 32.
	if got := ev.SessionObjective(a, 0); math.Abs(got-(32+26+1)) > 1e-9 {
		t.Fatalf("quadratic Φ_s = %v, want 59", got)
	}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
		ok     bool
	}{
		{"default", func(p *Params) {}, true},
		{"negative alpha", func(p *Params) { p.Alpha1 = -1 }, false},
		{"all zero", func(p *Params) { p.Alpha1, p.Alpha2, p.Alpha3 = 0, 0, 0 }, false},
		{"bad exponent", func(p *Params) { p.TrafficExponent = 0.5 }, false},
		{"delay only preset", func(p *Params) { *p = DelayOnlyParams() }, true},
		{"traffic only preset", func(p *Params) { *p = TrafficOnlyParams() }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if err := p.Validate(); (err == nil) != tt.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestLedgerAddRemoveFits(t *testing.T) {
	fx := newFixture(t, 0)
	p := DefaultParams()
	a := fx.assignment(t, 0, 1, 2)
	sl := p.SessionLoadOf(a, 0)
	g := NewLedger(fx.sc)
	if !g.Fits(nil) {
		t.Fatal("empty ledger should fit")
	}
	if !g.Fits(sl) {
		t.Fatal("single session should fit 1000 Mbps agents")
	}
	g.Add(sl)
	g.Remove(sl)
	down, up, tasks := g.Usage()
	for l := range down {
		if down[l] != 0 || up[l] != 0 || tasks[l] != 0 {
			t.Fatalf("ledger not restored after add/remove at agent %d", l)
		}
	}
}

func TestLedgerRejectsOverCapacity(t *testing.T) {
	// Tiny agent: 6 Mbps capacities cannot absorb u0's 8 Mbps upstream.
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r1080, _ := rs.ByName("1080p")
	b.AddAgent(model.Agent{Upload: 6, Download: 6, TranscodeSlots: 0})
	s := b.AddSession("s")
	u0 := b.AddUser("u0", s, r1080, nil)
	u1 := b.AddUser("u1", s, r1080, nil)
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := assign.New(sc)
	a.SetUserAgent(u0, 0)
	a.SetUserAgent(u1, 0)
	p := DefaultParams()
	sl := p.SessionLoadOf(a, 0)
	g := NewLedger(sc)
	if g.Fits(sl) {
		t.Fatal("8 Mbps upstream must not fit a 6 Mbps agent")
	}
	ev, err := NewEvaluator(sc, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.CheckFeasible(a); err == nil {
		t.Fatal("CheckFeasible must reject over-capacity assignment")
	}
}

func TestCheckFeasibleTranscodeSlots(t *testing.T) {
	// One slot, two distinct transcoding tasks at the same agent.
	b := model.NewBuilder(nil)
	rs := b.Reps()
	r360, _ := rs.ByName("360p")
	r480, _ := rs.ByName("480p")
	r1080, _ := rs.ByName("1080p")
	b.AddAgent(model.Agent{Upload: 1000, Download: 1000, TranscodeSlots: 1})
	s := b.AddSession("s")
	u0 := b.AddUser("u0", s, r1080, nil)
	d1 := b.AddUser("d1", s, r1080, nil)
	d2 := b.AddUser("d2", s, r1080, nil)
	b.DemandFrom(d1, u0, r360)
	b.DemandFrom(d2, u0, r480)
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := assign.New(sc)
	for _, u := range []model.UserID{u0, d1, d2} {
		a.SetUserAgent(u, 0)
	}
	for _, f := range a.Flows() {
		if err := a.SetFlowAgent(f, 0); err != nil {
			t.Fatal(err)
		}
	}
	ev, err := NewEvaluator(sc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.CheckFeasible(a); err == nil {
		t.Fatal("two tasks must not fit one transcoding slot")
	}
}

func TestReportSystemAggregates(t *testing.T) {
	fx := newFixture(t, 1) // one extra 720p user in the session
	a := assign.New(fx.sc)
	a.SetUserAgent(fx.u0, 0)
	a.SetUserAgent(fx.u1, 1)
	a.SetUserAgent(model.UserID(2), 1)
	if err := a.SetFlowAgent(fx.f, 0); err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(fx.sc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rep := ev.ReportSystem(a)
	if len(rep.SessionReports) != 1 {
		t.Fatalf("sessions = %d, want 1", len(rep.SessionReports))
	}
	if rep.InterTraffic <= 0 {
		t.Fatal("inter-agent traffic should be positive")
	}
	if !rep.AllDelayOK {
		t.Fatal("delays must be within the 400 ms cap")
	}
	if math.Abs(rep.Objective-ev.TotalObjective(a)) > 1e-9 {
		t.Fatal("report objective disagrees with TotalObjective")
	}
	if rep.MeanDelayMS <= 0 || rep.WorstDelayMS < rep.MeanDelayMS {
		t.Fatalf("delay stats inconsistent: mean %v worst %v", rep.MeanDelayMS, rep.WorstDelayMS)
	}
	if got := MeanConferencingDelayMS(a); math.Abs(got-rep.MeanDelayMS) > 1e-9 {
		t.Fatalf("MeanConferencingDelayMS = %v, want %v", got, rep.MeanDelayMS)
	}
}

func TestIncompleteAssignmentContributesNothing(t *testing.T) {
	fx := newFixture(t, 0)
	p := DefaultParams()
	a := assign.New(fx.sc)
	sl := p.SessionLoadOf(a, 0)
	if sl.TotalInterTraffic() != 0 || sl.TotalTasks() != 0 {
		t.Fatal("unassigned session generated load")
	}
	ev, err := NewEvaluator(fx.sc, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.CheckFeasible(a); err == nil {
		t.Fatal("incomplete assignment must be infeasible")
	}
}

// Property: for random complete assignments of a random small scenario,
// (a) every load entry is non-negative,
// (b) Σ Inter equals total Up-side inter edges (conservation inside the
//
//	session-load bookkeeping),
//
// (c) ledger add/remove returns to zero,
// (d) TotalObjective equals the sum of session objectives.
func TestSessionLoadInvariantsProperty(t *testing.T) {
	p := DefaultParams()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sc := randomScenario(rng)
		ev, err := NewEvaluator(sc, p)
		if err != nil {
			return false
		}
		a := assign.New(sc)
		for u := 0; u < sc.NumUsers(); u++ {
			a.SetUserAgent(model.UserID(u), model.AgentID(rng.Intn(sc.NumAgents())))
		}
		for _, f := range a.Flows() {
			if err := a.SetFlowAgent(f, model.AgentID(rng.Intn(sc.NumAgents()))); err != nil {
				return false
			}
		}
		g := NewLedger(sc)
		sumPhi := 0.0
		for s := 0; s < sc.NumSessions(); s++ {
			sl := p.SessionLoadOf(a, model.SessionID(s))
			interSum, upSum, downSum := 0.0, 0.0, 0.0
			for l := range sl.Inter {
				if sl.Inter[l] < 0 || sl.Up[l] < 0 || sl.Down[l] < 0 || sl.Tasks[l] < 0 {
					return false
				}
				interSum += sl.Inter[l]
				upSum += sl.Up[l]
				downSum += sl.Down[l]
			}
			// Up = last-mile downstream + inter edges; Down = last-mile
			// upstream + inter edges. So Σup − Σinter and Σdown − Σinter are
			// the last-mile parts, both non-negative.
			if upSum-interSum < -1e-9 || downSum-interSum < -1e-9 {
				return false
			}
			g.Add(sl)
			sumPhi += ev.SessionObjective(a, model.SessionID(s))
		}
		if math.Abs(sumPhi-ev.TotalObjective(a)) > 1e-6 {
			return false
		}
		for s := 0; s < sc.NumSessions(); s++ {
			g.Remove(p.SessionLoadOf(a, model.SessionID(s)))
		}
		down, up, tasks := g.Usage()
		for l := range down {
			if math.Abs(down[l]) > 1e-6 || math.Abs(up[l]) > 1e-6 || tasks[l] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// randomScenario builds a random small scenario: 2–4 agents, 1–3 sessions of
// 2–4 users, random upstream reps, ~50% of flows demanding a random rep.
func randomScenario(rng *rand.Rand) *model.Scenario {
	b := model.NewBuilder(nil)
	nAgents := 2 + rng.Intn(3)
	for i := 0; i < nAgents; i++ {
		b.AddAgent(model.Agent{Upload: 1e6, Download: 1e6, TranscodeSlots: 100})
	}
	nSessions := 1 + rng.Intn(3)
	type pair struct{ u, v model.UserID }
	var demands []pair
	for s := 0; s < nSessions; s++ {
		sid := b.AddSession("s")
		n := 2 + rng.Intn(3)
		ids := make([]model.UserID, n)
		for i := 0; i < n; i++ {
			ids[i] = b.AddUser("u", sid, model.Representation(rng.Intn(4)), nil)
		}
		for _, u := range ids {
			for _, v := range ids {
				if u != v && rng.Intn(2) == 0 {
					demands = append(demands, pair{u, v})
				}
			}
		}
	}
	for _, d := range demands {
		b.DemandFrom(d.u, d.v, model.Representation(rng.Intn(4)))
	}
	sc, err := b.Build()
	if err != nil {
		panic(err)
	}
	return sc
}
