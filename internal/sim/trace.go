package sim

// Versioned JSONL trace record/replay. A trace is a header line naming the
// format, trace version and workload.Event schema version, followed by one
// record per merged-stream event: the sequence number, the event itself
// (schema-v1 wire form) and the run's decision digest for that event — the
// post-event objective Φ as IEEE-754 bits in hex (JSON numbers cannot
// carry uint64 exactly; the hex string round-trips bit-exact), the active
// session count and the event's commit count. Replaying feeds the recorded
// events back through the engine and checks each digest as the decisions
// retire: the first mismatch is reported with its sequence number and both
// Φ values.
//
// Reading is line-at-a-time (O(1) memory in trace length); the Replayer
// holds only the digests of in-flight events, so replay keeps the engine's
// O(in-flight) memory contract even through the pipelined path.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"

	"vconf/internal/workload"
)

// Trace format identifiers, embedded in (and checked against) the header.
const (
	TraceFormat  = "vconf-trace"
	TraceVersion = 1
)

// traceHeader is the first line of every trace.
type traceHeader struct {
	Format      string `json:"format"`
	Version     int    `json:"version"`
	EventSchema int    `json:"event_schema"`
}

// Digest is the per-event decision fingerprint recorded next to each
// event: enough to catch any divergence of the control plane's decisions
// (Φ folds every assignment bit in; active and commits catch admission and
// refinement drift even when objectives collide).
type Digest struct {
	// Phi is the post-event total objective.
	Phi float64
	// Active is the post-event active-session count.
	Active int
	// Commits is the event's accepted-move count.
	Commits int
}

// TraceRecord is one JSONL line of the trace body.
type TraceRecord struct {
	Seq     uint64         `json:"seq"`
	Event   workload.Event `json:"event"`
	Phi     string         `json:"phi"`
	Active  int            `json:"active,omitempty"`
	Commits int            `json:"commits,omitempty"`
}

// phiBits encodes Φ as its IEEE-754 bit pattern in hex.
func phiBits(phi float64) string {
	return strconv.FormatUint(math.Float64bits(phi), 16)
}

// parsePhi decodes a phiBits string.
func parsePhi(s string) (float64, error) {
	u, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("sim: bad phi bits %q: %w", s, err)
	}
	return math.Float64frombits(u), nil
}

// Recorder writes a versioned JSONL trace: one Record call per event of
// the merged stream, in stream order. Safe for the pipelined path's
// retire goroutine to call while the submitter pulls the sources.
type Recorder struct {
	mu  sync.Mutex
	w   *bufio.Writer
	seq uint64
	err error
}

// NewRecorder writes the trace header and returns the recorder. The caller
// owns the underlying writer; call Flush before closing it.
func NewRecorder(w io.Writer) (*Recorder, error) {
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(traceHeader{Format: TraceFormat, Version: TraceVersion, EventSchema: workload.EventSchemaVersion})
	if err != nil {
		return nil, err
	}
	if _, err := bw.Write(append(hdr, '\n')); err != nil {
		return nil, err
	}
	return &Recorder{w: bw}, nil
}

// Record appends one event and its decision digest to the trace.
func (r *Recorder) Record(ev workload.Event, d Digest) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	line, err := json.Marshal(TraceRecord{Seq: r.seq, Event: ev, Phi: phiBits(d.Phi), Active: d.Active, Commits: d.Commits})
	if err != nil {
		r.err = err
		return err
	}
	if _, err := r.w.Write(append(line, '\n')); err != nil {
		r.err = err
		return err
	}
	r.seq++
	return nil
}

// Recorded returns how many events have been written.
func (r *Recorder) Recorded() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Flush drains the buffered writer.
func (r *Recorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

// Divergence describes the first decision mismatch of a replay (or a
// trace-vs-trace comparison): the sequence number, the event's virtual
// time and kind, the differing field and both values. It satisfies error.
type Divergence struct {
	Seq   uint64
	TimeS float64
	Kind  string
	Field string
	Want  string
	Got   string
}

// Error formats the divergence with seq and both Φ-style values.
func (d *Divergence) Error() string {
	return fmt.Sprintf("divergence at seq %d (t=%.6fs %s): %s recorded %s, replayed %s",
		d.Seq, d.TimeS, d.Kind, d.Field, d.Want, d.Got)
}

// reader is the shared line-at-a-time trace scanner.
type reader struct {
	sc  *bufio.Scanner
	seq uint64
	err error
}

func newReader(r io.Reader) (*reader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("sim: empty trace")
	}
	var hdr traceHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("sim: bad trace header: %w", err)
	}
	if hdr.Format != TraceFormat {
		return nil, fmt.Errorf("sim: not a %s file (format %q)", TraceFormat, hdr.Format)
	}
	if hdr.Version != TraceVersion {
		return nil, fmt.Errorf("sim: unsupported trace version %d (have %d)", hdr.Version, TraceVersion)
	}
	if hdr.EventSchema != workload.EventSchemaVersion {
		return nil, fmt.Errorf("sim: unsupported event schema %d (have %d)", hdr.EventSchema, workload.EventSchemaVersion)
	}
	return &reader{sc: sc}, nil
}

// next reads one body record, checking the sequence numbering.
func (r *reader) next() (TraceRecord, bool) {
	if r.err != nil {
		return TraceRecord{}, false
	}
	if !r.sc.Scan() {
		r.err = r.sc.Err()
		return TraceRecord{}, false
	}
	var rec TraceRecord
	if err := json.Unmarshal(r.sc.Bytes(), &rec); err != nil {
		r.err = fmt.Errorf("sim: trace record %d: %w", r.seq, err)
		return TraceRecord{}, false
	}
	if rec.Seq != r.seq {
		r.err = fmt.Errorf("sim: trace record out of sequence: got %d, want %d", rec.Seq, r.seq)
		return TraceRecord{}, false
	}
	r.seq++
	return rec, true
}

// Replayer feeds a recorded trace back through the engine as an
// EventSource and checks each retiring decision digest against the
// recording. Next and Check may run on different goroutines (the pipelined
// path's submitter and retire loop); the pending-digest queue between them
// is bounded by the scheduler's in-flight cap.
type Replayer struct {
	mu      sync.Mutex
	r       *reader
	pending []TraceRecord
	div     *Divergence
	checked uint64
}

// NewReplayer validates the trace header and returns the replayer.
func NewReplayer(rd io.Reader) (*Replayer, error) {
	r, err := newReader(rd)
	if err != nil {
		return nil, err
	}
	return &Replayer{r: r}, nil
}

// Next returns the next recorded event, queueing its digest for Check.
func (p *Replayer) Next() (workload.Event, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rec, ok := p.r.next()
	if !ok {
		return workload.Event{}, false
	}
	p.pending = append(p.pending, rec)
	return rec.Event, true
}

// Err reports a read/decode failure.
func (p *Replayer) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.r.err
}

// Check compares the replayed decision digest of the oldest in-flight
// event against the recording. Decisions retire in stream order, so the
// queue head is always the right record. Returns the divergence (also
// retained for Divergence()) or nil.
func (p *Replayer) Check(d Digest) *Divergence {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.div != nil {
		return p.div
	}
	if len(p.pending) == 0 {
		p.div = &Divergence{Seq: p.checked, Field: "length", Want: "recorded event", Got: "extra replayed decision"}
		return p.div
	}
	rec := p.pending[0]
	p.pending = p.pending[1:]
	p.checked++
	mismatch := func(field, want, got string) *Divergence {
		p.div = &Divergence{Seq: rec.Seq, TimeS: rec.Event.TimeS, Kind: rec.Event.Kind.String(),
			Field: field, Want: want, Got: got}
		return p.div
	}
	wantPhi, err := parsePhi(rec.Phi)
	if err != nil {
		return mismatch("phi", rec.Phi, phiBits(d.Phi))
	}
	if math.Float64bits(wantPhi) != math.Float64bits(d.Phi) {
		return mismatch("phi", fmt.Sprintf("%v (bits %s)", wantPhi, rec.Phi),
			fmt.Sprintf("%v (bits %s)", d.Phi, phiBits(d.Phi)))
	}
	if rec.Active != d.Active {
		return mismatch("active", strconv.Itoa(rec.Active), strconv.Itoa(d.Active))
	}
	if rec.Commits != d.Commits {
		return mismatch("commits", strconv.Itoa(rec.Commits), strconv.Itoa(d.Commits))
	}
	return nil
}

// Divergence returns the first recorded mismatch, if any.
func (p *Replayer) Divergence() *Divergence {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.div
}

// Checked returns how many decision digests have been verified.
func (p *Replayer) Checked() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.checked
}

// CompareTraces reads two traces in lockstep (O(1) memory) and returns the
// first divergence — differing event, digest, or length — or nil when byte
// -equivalent in content. The int is the number of records compared.
func CompareTraces(a, b io.Reader) (*Divergence, uint64, error) {
	ra, err := newReader(a)
	if err != nil {
		return nil, 0, fmt.Errorf("trace A: %w", err)
	}
	rb, err := newReader(b)
	if err != nil {
		return nil, 0, fmt.Errorf("trace B: %w", err)
	}
	n := uint64(0)
	for {
		reca, oka := ra.next()
		recb, okb := rb.next()
		if ra.err != nil {
			return nil, n, fmt.Errorf("trace A: %w", ra.err)
		}
		if rb.err != nil {
			return nil, n, fmt.Errorf("trace B: %w", rb.err)
		}
		if !oka || !okb {
			if oka != okb {
				d := &Divergence{Seq: n, Field: "length"}
				if oka {
					d.TimeS, d.Kind = reca.Event.TimeS, reca.Event.Kind.String()
					d.Want = fmt.Sprintf("record %d", reca.Seq)
					d.Got = "end of trace"
				} else {
					d.TimeS, d.Kind = recb.Event.TimeS, recb.Event.Kind.String()
					d.Want = "end of trace"
					d.Got = fmt.Sprintf("record %d", recb.Seq)
				}
				return d, n, nil
			}
			return nil, n, nil
		}
		if reca.Event != recb.Event {
			return &Divergence{Seq: reca.Seq, TimeS: reca.Event.TimeS, Kind: reca.Event.Kind.String(),
				Field: "event", Want: fmt.Sprintf("%+v", reca.Event), Got: fmt.Sprintf("%+v", recb.Event)}, n, nil
		}
		if reca.Phi != recb.Phi || reca.Active != recb.Active || reca.Commits != recb.Commits {
			return &Divergence{Seq: reca.Seq, TimeS: reca.Event.TimeS, Kind: reca.Event.Kind.String(),
				Field: "digest",
				Want:  fmt.Sprintf("phi=%s active=%d commits=%d", reca.Phi, reca.Active, reca.Commits),
				Got:   fmt.Sprintf("phi=%s active=%d commits=%d", recb.Phi, recb.Active, recb.Commits)}, n, nil
		}
		n++
	}
}
