package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"vconf/internal/workload"
)

func sampleEvents() []workload.Event {
	return []workload.Event{
		{TimeS: 0.5, Kind: workload.EventArrival, Session: 0},
		{TimeS: 1.25, Kind: workload.EventAgentFail, Session: -1, Agent: 2, Region: 1, Incident: 1, Rank: workload.RankFaults},
		{TimeS: 2.75, Kind: workload.EventDeparture, Session: 0},
	}
}

func sampleDigests() []Digest {
	return []Digest{
		{Phi: 12.125, Active: 1, Commits: 2},
		{Phi: math.Pi, Active: 1, Commits: 5},
		{Phi: 0, Active: 0, Commits: 1},
	}
}

func record(t *testing.T, events []workload.Event, digests []Digest) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range events {
		if err := rec.Record(ev, digests[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceRecordReplayRoundTrip pins the record→replay identity: the
// replayer yields the recorded events bit-for-bit and accepts the exact
// digests, Φ compared on IEEE-754 bits.
func TestTraceRecordReplayRoundTrip(t *testing.T) {
	events, digests := sampleEvents(), sampleDigests()
	trace := record(t, events, digests)

	rp, err := NewReplayer(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range events {
		ev, ok := rp.Next()
		if !ok {
			t.Fatalf("replay ended at %d: %v", i, rp.Err())
		}
		if ev != want {
			t.Fatalf("event %d: got %+v want %+v", i, ev, want)
		}
		if d := rp.Check(digests[i]); d != nil {
			t.Fatalf("event %d: spurious divergence: %v", i, d)
		}
	}
	if _, ok := rp.Next(); ok {
		t.Fatal("replay yielded extra events")
	}
	if err := rp.Err(); err != nil {
		t.Fatal(err)
	}
	if rp.Divergence() != nil || rp.Checked() != uint64(len(events)) {
		t.Fatalf("divergence %v checked %d", rp.Divergence(), rp.Checked())
	}
}

// TestTraceReplayDivergence pins the checker: a single-bit Φ change is
// caught at the right sequence number with both bit patterns reported.
func TestTraceReplayDivergence(t *testing.T) {
	events, digests := sampleEvents(), sampleDigests()
	trace := record(t, events, digests)
	rp, err := NewReplayer(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if _, ok := rp.Next(); !ok {
			t.Fatal("short replay")
		}
		d := digests[i]
		if i == 1 {
			d.Phi = math.Float64frombits(math.Float64bits(d.Phi) + 1) // one ulp off
		}
		div := rp.Check(d)
		if i < 1 && div != nil {
			t.Fatalf("event %d: spurious divergence %v", i, div)
		}
		if i >= 1 && div == nil {
			t.Fatalf("event %d: divergence not caught/retained", i)
		}
	}
	div := rp.Divergence()
	if div == nil || div.Seq != 1 || div.Field != "phi" {
		t.Fatalf("wrong divergence: %+v", div)
	}
	if !strings.Contains(div.Error(), "seq 1") {
		t.Fatalf("divergence error lacks seq: %s", div.Error())
	}

	// Digest drift in active/commits is caught too.
	rp2, _ := NewReplayer(bytes.NewReader(trace))
	rp2.Next()
	d := sampleDigests()[0]
	d.Commits++
	if div := rp2.Check(d); div == nil || div.Field != "commits" {
		t.Fatalf("commit drift not caught: %+v", div)
	}
}

// TestTraceHeaderValidation pins version gating: wrong format, future
// trace versions and future event schemas are all rejected up front.
func TestTraceHeaderValidation(t *testing.T) {
	cases := []string{
		"",
		"not json\n",
		`{"format":"other","version":1,"event_schema":1}` + "\n",
		`{"format":"vconf-trace","version":99,"event_schema":1}` + "\n",
		`{"format":"vconf-trace","version":1,"event_schema":99}` + "\n",
	}
	for i, c := range cases {
		if _, err := NewReplayer(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: bad header accepted", i)
		}
	}
}

// TestCompareTraces pins the vcreport divergence reporter: identical
// traces compare clean; digest, event and length differences are localized
// to the right record.
func TestCompareTraces(t *testing.T) {
	events, digests := sampleEvents(), sampleDigests()
	a := record(t, events, digests)

	if div, n, err := CompareTraces(bytes.NewReader(a), bytes.NewReader(a)); err != nil || div != nil || n != 3 {
		t.Fatalf("self-compare: div=%v n=%d err=%v", div, n, err)
	}

	d2 := sampleDigests()
	d2[2].Active = 9
	b := record(t, events, d2)
	div, _, err := CompareTraces(bytes.NewReader(a), bytes.NewReader(b))
	if err != nil || div == nil || div.Seq != 2 || div.Field != "digest" {
		t.Fatalf("digest diff: div=%+v err=%v", div, err)
	}

	e2 := sampleEvents()
	e2[0].Session = 7
	c := record(t, e2, digests)
	div, _, err = CompareTraces(bytes.NewReader(a), bytes.NewReader(c))
	if err != nil || div == nil || div.Seq != 0 || div.Field != "event" {
		t.Fatalf("event diff: div=%+v err=%v", div, err)
	}

	short := record(t, events[:2], digests[:2])
	div, _, err = CompareTraces(bytes.NewReader(a), bytes.NewReader(short))
	if err != nil || div == nil || div.Field != "length" {
		t.Fatalf("length diff: div=%+v err=%v", div, err)
	}
}

// TestReplayerAsEngineSource replays a recorded merged stream through the
// engine and confirms the events and clock march identically.
func TestReplayerAsEngineSource(t *testing.T) {
	events, digests := sampleEvents(), sampleDigests()
	trace := record(t, events, digests)
	rp, err := NewReplayer(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	e := New(rp)
	for i, want := range events {
		ev, ok := e.Next()
		if !ok {
			t.Fatalf("engine ended at %d: %v", i, e.Err())
		}
		if ev != want || e.Now() != want.TimeS {
			t.Fatalf("event %d: got %+v now %v", i, ev, e.Now())
		}
	}
	if _, ok := e.Next(); ok || e.Err() != nil {
		t.Fatalf("engine tail: err=%v", e.Err())
	}
}
