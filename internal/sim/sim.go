// Package sim is the virtual-clock discrete-event core: a deterministic
// merge engine over pull-based lazy event sources, plus a versioned trace
// recorder/replayer. It decouples simulated load from host speed — a
// virtual day of churn is bounded by CPU, not by wall-clock pacing or by
// materializing the schedule (memory stays O(in-flight state), however
// many events the horizon holds).
//
// Determinism contract: the merged stream is a pure function of the
// sources. Events order by (TimeS, Event.Rank, source registration order,
// per-source sequence) — exactly the order the eager path gets from
// faults.Merge over pre-sorted slices, pinned by differential tests. The
// engine's Clock is the single time authority: it advances to each popped
// event's timestamp and never regresses (a source yielding out of order is
// an engine error, not a silent reorder).
package sim

import (
	"fmt"

	"vconf/internal/workload"
)

// EventSource is a pull-based, time-ordered lazy event stream. Next
// returns events in non-decreasing TimeS order and ok=false when the
// stream is exhausted; Err reports a stream failure after Next returns
// false (generators are infallible and return nil; trace replayers surface
// read/decode errors here). workload.ChurnSource, faults.Source, Engine
// itself and Replayer all satisfy it.
type EventSource interface {
	Next() (workload.Event, bool)
	Err() error
}

// Clock is the engine's virtual time authority: Now is the timestamp of
// the last event popped from the merged stream.
type Clock struct {
	now float64
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// entry is one source's lookahead event.
type entry struct {
	src  EventSource
	ev   workload.Event
	live bool
}

// Engine merges registered sources into one deterministic virtual-time
// stream. It holds exactly one lookahead event per source — the whole of
// its buffering — and linear-scans for the minimum, which beats a heap for
// the two-to-three-source shapes this repo merges (churn + faults).
type Engine struct {
	clock   Clock
	entries []entry
	seq     uint64
	err     error
}

// New builds an engine over the given sources. Registration order is the
// final tie-break rank: on equal (TimeS, Event.Rank) the earlier-registered
// source's event pops first, so register churn before faults to reproduce
// the eager merge exactly (their Rank fields already order them; the
// registration rank only matters between sources of equal Rank).
func New(sources ...EventSource) *Engine {
	e := &Engine{entries: make([]entry, len(sources))}
	for i, src := range sources {
		ev, ok := src.Next()
		e.entries[i] = entry{src: src, ev: ev, live: ok}
		if !ok {
			if err := src.Err(); err != nil && e.err == nil {
				e.err = fmt.Errorf("sim: source %d: %w", i, err)
			}
		}
	}
	return e
}

// Next pops the next event of the merged stream and advances the clock to
// its timestamp. ok=false means every source is exhausted (or the engine
// hit an error — check Err).
func (e *Engine) Next() (workload.Event, bool) {
	if e.err != nil {
		return workload.Event{}, false
	}
	min := -1
	for i := range e.entries {
		if !e.entries[i].live {
			continue
		}
		if min < 0 || e.entries[i].ev.Before(e.entries[min].ev) {
			min = i
		}
	}
	if min < 0 {
		return workload.Event{}, false
	}
	ev := e.entries[min].ev
	if ev.TimeS < e.clock.now {
		e.err = fmt.Errorf("sim: source %d regressed virtual time: %v after %v",
			min, ev.TimeS, e.clock.now)
		return workload.Event{}, false
	}
	e.clock.now = ev.TimeS
	e.seq++
	next, ok := e.entries[min].src.Next()
	e.entries[min].ev = next
	e.entries[min].live = ok
	if ok {
		if next.Before(ev) {
			e.err = fmt.Errorf("sim: source %d emitted out of order: %v(rank %d) after %v(rank %d)",
				min, next.TimeS, next.Rank, ev.TimeS, ev.Rank)
		}
	} else if err := e.entries[min].src.Err(); err != nil {
		e.err = fmt.Errorf("sim: source %d: %w", min, err)
	}
	return ev, true
}

// Err reports the first engine or source failure.
func (e *Engine) Err() error { return e.err }

// Clock returns the engine's virtual clock.
func (e *Engine) Clock() *Clock { return &e.clock }

// Now returns the current virtual time (the last popped event's timestamp).
func (e *Engine) Now() float64 { return e.clock.now }

// Popped returns how many events the engine has delivered — the merged
// stream's sequence counter, which trace records index by.
func (e *Engine) Popped() uint64 { return e.seq }

// SliceSource adapts an eager, pre-sorted event slice to the EventSource
// contract — the bridge for replay-style consumption of legacy schedules
// and for tests that pin lazy-vs-eager equivalence at the engine level.
type SliceSource struct {
	events []workload.Event
	i      int
}

// NewSliceSource wraps a time-ordered slice.
func NewSliceSource(events []workload.Event) *SliceSource {
	return &SliceSource{events: events}
}

// Next returns the next slice element.
func (s *SliceSource) Next() (workload.Event, bool) {
	if s.i >= len(s.events) {
		return workload.Event{}, false
	}
	e := s.events[s.i]
	s.i++
	return e, true
}

// Err always returns nil: slices cannot fail.
func (s *SliceSource) Err() error { return nil }
