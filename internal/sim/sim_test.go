package sim

import (
	"reflect"
	"testing"

	"vconf/internal/faults"
	"vconf/internal/workload"
)

func faultTestConfig(seed int64, horizonS float64) faults.Config {
	region := make([]int, 12)
	for a := range region {
		region[a] = a % 3
	}
	return faults.Config{
		Seed: seed, HorizonS: horizonS, NumAgents: 12, AgentRegion: region,
		AgentMTBFS: 400, AgentMTTRS: 60, RegionMTBFS: 400, RegionMTTRS: 80,
		DegradeMTBFS: 500, DegradeMTTRS: 70, DegradeFloor: 0.3,
		FlashMTBFS: 400, FlashIntensity: 3, FlashHoldS: 40,
		FlashSessions: [][]int{{20, 21}, {22, 23}, {24}},
	}
}

func drainEngine(t *testing.T, e *Engine) []workload.Event {
	t.Helper()
	var out []workload.Event
	for {
		ev, ok := e.Next()
		if !ok {
			break
		}
		if ev.TimeS < e.Now()-1e-12 || e.Now() != ev.TimeS {
			t.Fatalf("clock %v does not track popped event %v", e.Now(), ev.TimeS)
		}
		out = append(out, ev)
	}
	if err := e.Err(); err != nil {
		t.Fatalf("engine error: %v", err)
	}
	return out
}

// TestEngineMergeDifferential pins the engine against the eager pipeline:
// merging the lazy churn and fault sources must yield byte-for-byte the
// schedule faults.Merge(PoissonSchedule, Schedule) materializes.
func TestEngineMergeDifferential(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		ccfg := workload.ChurnConfig{Seed: seed, HorizonS: 500, ArrivalRatePerS: 0.5,
			MeanHoldS: 60, NumSessions: 20}
		fcfg := faultTestConfig(seed, 500)
		churn, err := workload.PoissonSchedule(ccfg)
		if err != nil {
			t.Fatal(err)
		}
		fault, err := faults.Schedule(fcfg)
		if err != nil {
			t.Fatal(err)
		}
		eager := faults.Merge(churn, fault)

		cs, err := workload.NewChurnSource(ccfg)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := faults.NewSource(fcfg)
		if err != nil {
			t.Fatal(err)
		}
		lazy := drainEngine(t, New(cs, fs))
		if !reflect.DeepEqual(eager, lazy) {
			n := len(eager)
			if len(lazy) < n {
				n = len(lazy)
			}
			for k := 0; k < n; k++ {
				if eager[k] != lazy[k] {
					t.Fatalf("seed %d: first divergence at %d: eager %+v lazy %+v",
						seed, k, eager[k], lazy[k])
				}
			}
			t.Fatalf("seed %d: lazy length %d, eager %d", seed, len(lazy), len(eager))
		}
		if got := New(NewSliceSource(churn), NewSliceSource(fault)); got != nil {
			if merged := drainEngine(t, got); !reflect.DeepEqual(eager, merged) {
				t.Fatalf("seed %d: slice-source merge diverges from faults.Merge", seed)
			}
		}
	}
}

// TestEngineTieBreak pins the equal-timestamp contract: Event.Rank first
// (churn before faults), then source registration order, then per-source
// sequence — whatever order the sources are registered in.
func TestEngineTieBreak(t *testing.T) {
	churn := []workload.Event{
		{TimeS: 5, Kind: workload.EventArrival, Session: 1, Rank: workload.RankChurn},
		{TimeS: 5, Kind: workload.EventDeparture, Session: 2, Rank: workload.RankChurn},
	}
	fault := []workload.Event{
		{TimeS: 5, Kind: workload.EventAgentFail, Session: -1, Agent: 3, Rank: workload.RankFaults},
	}
	want := []int{1, 2, -1} // both churn events (in sequence), then the fault
	for _, order := range [][2][]workload.Event{{churn, fault}, {fault, churn}} {
		e := New(NewSliceSource(order[0]), NewSliceSource(order[1]))
		got := drainEngine(t, e)
		if len(got) != 3 {
			t.Fatalf("popped %d events, want 3", len(got))
		}
		for i, s := range want {
			if got[i].Session != s {
				t.Fatalf("tie order wrong: got %+v", got)
			}
		}
	}
	// Equal (time, rank) across sources: registration order decides.
	a := []workload.Event{{TimeS: 5, Kind: workload.EventArrival, Session: 10}}
	b := []workload.Event{{TimeS: 5, Kind: workload.EventArrival, Session: 20}}
	got := drainEngine(t, New(NewSliceSource(a), NewSliceSource(b)))
	if got[0].Session != 10 || got[1].Session != 20 {
		t.Fatalf("registration tie order wrong: %+v", got)
	}
}

// TestEngineClockMonotonic pins the time-authority contract: the clock
// tracks popped timestamps, and a source that regresses time is an engine
// error, not a silent reorder.
func TestEngineClockMonotonic(t *testing.T) {
	bad := []workload.Event{
		{TimeS: 5, Kind: workload.EventArrival, Session: 1},
		{TimeS: 3, Kind: workload.EventArrival, Session: 2},
	}
	e := New(NewSliceSource(bad))
	if _, ok := e.Next(); !ok {
		t.Fatal("first event should pop")
	}
	if _, ok := e.Next(); ok {
		t.Fatal("regressed event should not pop")
	}
	if e.Err() == nil {
		t.Fatal("time regression must surface as an engine error")
	}
	if e.Now() != 5 {
		t.Fatalf("clock moved on error: %v", e.Now())
	}
}

// TestEngineEmptySources: an engine over empty sources is exhausted
// immediately, clock at zero, no error.
func TestEngineEmptySources(t *testing.T) {
	e := New(NewSliceSource(nil), NewSliceSource(nil))
	if _, ok := e.Next(); ok {
		t.Fatal("empty engine popped an event")
	}
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 0 || e.Popped() != 0 {
		t.Fatalf("empty engine state: now=%v popped=%d", e.Now(), e.Popped())
	}
}
