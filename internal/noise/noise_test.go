package noise

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewQuantizedValidation(t *testing.T) {
	if _, err := NewQuantized(-1, 3, 1); err == nil {
		t.Fatal("negative delta accepted")
	}
	if _, err := NewQuantized(1, 0, 1); err == nil {
		t.Fatal("zero levels accepted")
	}
	if _, err := NewQuantized(0, 1, 1); err != nil {
		t.Fatalf("zero delta rejected: %v", err)
	}
}

func TestPerturbBounded(t *testing.T) {
	q, err := NewQuantized(5, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if q.MaxError() != 5 {
		t.Fatalf("MaxError = %v, want 5", q.MaxError())
	}
	for i := 0; i < 1000; i++ {
		v := q.Perturb(100)
		if v < 95 || v > 105 {
			t.Fatalf("perturbed value %v outside [95,105]", v)
		}
		// Quantization: (v−100)·4/5 must be an integer in [−4,4].
		j := (v - 100) * 4 / 5
		if math.Abs(j-math.Round(j)) > 1e-9 {
			t.Fatalf("perturbation %v not on the quantization grid", v-100)
		}
	}
}

func TestPerturbZeroDeltaIsIdentity(t *testing.T) {
	q, err := NewQuantized(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := q.Perturb(float64(i)); got != float64(i) {
			t.Fatalf("Perturb(%d) = %v with zero delta", i, got)
		}
	}
}

func TestPerturbSymmetricMean(t *testing.T) {
	q, err := NewQuantized(10, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += q.Perturb(0)
	}
	mean := sum / n
	// Uniform symmetric noise has zero mean; std of the mean ≈ 10/√(3n).
	if math.Abs(mean) > 0.15 {
		t.Fatalf("noise mean %v, want ≈ 0", mean)
	}
}

func TestPerturbHitsAllLevels(t *testing.T) {
	q, err := NewQuantized(3, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[float64]bool)
	for i := 0; i < 10000; i++ {
		seen[q.Perturb(0)] = true
	}
	if len(seen) != 7 {
		t.Fatalf("saw %d distinct levels, want 7 (2n+1)", len(seen))
	}
}

// Property: perturbation magnitude never exceeds Δ for arbitrary inputs.
func TestPerturbBoundProperty(t *testing.T) {
	q, err := NewQuantized(2.5, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(phi float64) bool {
		if math.IsNaN(phi) || math.IsInf(phi, 0) {
			return true
		}
		d := q.Perturb(phi) - phi
		return d >= -2.5-1e-9 && d <= 2.5+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
