// Package noise implements the quantized measurement-perturbation model of
// Theorem 1 (§IV-A-4): a perturbed objective evaluation returns one of
//
//	Φ_f − Δ, …, Φ_f − Δ/n, Φ_f, Φ_f + Δ/n, …, Φ_f + Δ
//
// with probabilities η_j. It models inaccurate measurements of RTTs and
// transcoding latencies feeding the objective.
package noise

import (
	"fmt"
	"math/rand"
)

// Quantized draws symmetric uniform quantized noise: η_j = 1/(2n+1).
type Quantized struct {
	// Delta is the error bound Δ_f (uniform across states).
	Delta float64
	// Levels is n_f: the number of quantization levels on each side.
	Levels int

	rng *rand.Rand
}

// NewQuantized builds the noise model. Delta must be non-negative, levels
// positive.
func NewQuantized(delta float64, levels int, seed int64) (*Quantized, error) {
	if delta < 0 {
		return nil, fmt.Errorf("noise: negative delta %v", delta)
	}
	if levels < 1 {
		return nil, fmt.Errorf("noise: levels must be ≥ 1, got %d", levels)
	}
	return &Quantized{
		Delta:  delta,
		Levels: levels,
		rng:    rand.New(rand.NewSource(seed)),
	}, nil
}

// Perturb returns a noisy reading of phi: phi + (j/n)·Δ with j drawn
// uniformly from {−n, …, n}. Not safe for concurrent use; each chain owns
// its model.
func (q *Quantized) Perturb(phi float64) float64 {
	if q.Delta == 0 {
		return phi
	}
	j := q.rng.Intn(2*q.Levels+1) - q.Levels
	return phi + float64(j)*q.Delta/float64(q.Levels)
}

// MaxError returns Δ_max, the worst-case perturbation magnitude, which
// enters the Theorem-1 bound of Eq. (13).
func (q *Quantized) MaxError() float64 { return q.Delta }
