package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// DecisionRecord is the structured trace of one churn event's handling:
// what arrived, how admission went, what the re-optimization did and how
// long each phase took, how the caches behaved, and the counterfactual-k
// reading — the gap between the committed placement and the 2nd-best
// candidate at the decisive hop, captured from the already-evaluated hop
// loop at no extra evaluation cost.
type DecisionRecord struct {
	// Seq is the record's position in the full stream (assigned by the
	// recorder; stable even after the ring wraps).
	Seq int64 `json:"seq"`
	// TimeS is the event's virtual time; WallNs the wall-clock time the
	// record was emitted (Unix nanoseconds).
	TimeS  float64 `json:"time_s"`
	WallNs int64   `json:"wall_ns"`
	// Session, Kind ("arrive"/"depart") and Region identify the trigger.
	Session int    `json:"session"`
	Kind    string `json:"kind"`
	Region  int    `json:"region"`
	// Admitted is false for dropped arrivals and skipped departures.
	// Stalled marks events whose admission waited in the pipelined
	// scheduler (always false on the serial path).
	Admitted bool `json:"admitted"`
	Stalled  bool `json:"stalled"`
	// Reopt is the size of the re-optimization set; the four outcome
	// fields tally its tasks. Conflicts counts lost cross-shard commit
	// races (retries included).
	Reopt     int `json:"reopt"`
	Commits   int `json:"commits"`
	Rejects   int `json:"rejects"`
	NoChange  int `json:"no_change"`
	Conflicts int `json:"conflicts"`
	// LatencyNs is the event's re-optimization barrier latency;
	// Snapshot/Walk/CommitNs decompose the per-task time (summed over the
	// event's tasks, so they can exceed LatencyNs when tasks overlap).
	LatencyNs  int64 `json:"latency_ns"`
	SnapshotNs int64 `json:"snapshot_ns"`
	WalkNs     int64 `json:"walk_ns"`
	CommitNs   int64 `json:"commit_ns"`
	// CacheWarm/CacheCold count delay-cache evaluations served warm
	// (hit or patch) vs cold (full rebuild) during the event's tasks;
	// CacheInvalidated counts entries torn down by the event (1 on a live
	// departure).
	CacheWarm        int `json:"cache_warm"`
	CacheCold        int `json:"cache_cold"`
	CacheInvalidated int `json:"cache_invalidated"`
	// ChosenAgent is the decisive hop's target agent of the event's first
	// committed proposal (-1 when nothing committed). CfGap is
	// counterfactual-k: Φ(2nd-best candidate) − Φ(chosen candidate) at
	// that hop — positive means the chosen placement beat the runner-up by
	// that margin; CfValid is false when no second candidate existed.
	ChosenAgent int     `json:"chosen_agent"`
	CfGap       float64 `json:"cf_gap"`
	CfValid     bool    `json:"cf_valid"`
	// Objective is Σ Φ_s after the event; ObjectiveDelta its change since
	// the previous record. ActiveSessions counts live sessions.
	Objective      float64 `json:"objective"`
	ObjectiveDelta float64 `json:"objective_delta"`
	ActiveSessions int     `json:"active_sessions"`
	// Class is the trigger session's SLO class name (empty when the sink
	// has no class map); DelayMS its post-decision mean-of-max conferencing
	// delay, filled only for committed arrivals (0 otherwise).
	Class   string  `json:"class,omitempty"`
	DelayMS float64 `json:"delay_ms,omitempty"`
	// Incident is the fault schedule's incident id for fault-kind events
	// (0 for churn events); Orphans/Evacuated/EvacRejects the healing
	// outcome of that event. They make the serialized decision stream
	// self-contained for the windowed sampler, so window contents never
	// depend on racing reads of live counter shards.
	Incident    int `json:"incident,omitempty"`
	Orphans     int `json:"orphans,omitempty"`
	Evacuated   int `json:"evacuated,omitempty"`
	EvacRejects int `json:"evac_rejects,omitempty"`
}

// Recorder is a bounded ring buffer of decision records. Appends are
// mutex-guarded (one append per churn event — far off any hot path);
// when the ring is full the oldest records are overwritten and counted as
// dropped.
type Recorder struct {
	mu   sync.Mutex
	buf  []DecisionRecord
	next int64 // total records ever appended
}

// NewRecorder builds a recorder holding the last `capacity` records
// (minimum 1).
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{buf: make([]DecisionRecord, 0, capacity)}
}

// Append stores one record, assigning its Seq, and reports whether an
// older record was overwritten (the ring was full).
func (r *Recorder) Append(rec DecisionRecord) (overwrote bool) {
	r.mu.Lock()
	rec.Seq = r.next
	r.next++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[rec.Seq%int64(cap(r.buf))] = rec
		overwrote = true
	}
	r.mu.Unlock()
	return overwrote
}

// Len returns the number of records currently held.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns the number of records ever appended.
func (r *Recorder) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Dropped returns how many old records the ring overwrote.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next - int64(len(r.buf))
}

// Records returns the held records oldest-first.
func (r *Recorder) Records() []DecisionRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DecisionRecord, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) || r.next == int64(len(r.buf)) {
		return append(out, r.buf...)
	}
	start := r.next % int64(cap(r.buf))
	out = append(out, r.buf[start:]...)
	return append(out, r.buf[:start]...)
}

// WriteJSONL streams the held records oldest-first, one JSON object per
// line — the vcsim -trace-out format.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range r.Records() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one complete ("X") event of the Chrome trace-event format
// (chrome://tracing, Perfetto). Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// WriteChromeTrace renders the held records as a Chrome trace-event JSON
// array: one complete event per decision, laid out on the wall-clock axis
// with one track (tid) per region, carrying the record's counters as args.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	recs := r.Records()
	base := firstWall(recs)
	evs := make([]chromeEvent, 0, len(recs))
	for _, rec := range recs {
		dur := float64(rec.LatencyNs) / 1e3
		if dur <= 0 {
			dur = 1 // sub-µs events still need visible extent
		}
		evs = append(evs, chromeEvent{
			Name: fmt.Sprintf("%s s%d", rec.Kind, rec.Session),
			Cat:  "churn",
			Ph:   "X",
			Ts:   float64(rec.WallNs-base) / 1e3,
			Dur:  dur,
			Pid:  0,
			Tid:  rec.Region,
			Args: map[string]interface{}{
				"seq":       rec.Seq,
				"time_s":    rec.TimeS,
				"admitted":  rec.Admitted,
				"stalled":   rec.Stalled,
				"reopt":     rec.Reopt,
				"commits":   rec.Commits,
				"conflicts": rec.Conflicts,
				"cf_gap":    rec.CfGap,
				"objective": rec.Objective,
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: evs})
}

// firstWall returns the earliest wall timestamp, anchoring the trace at 0.
func firstWall(recs []DecisionRecord) int64 {
	if len(recs) == 0 {
		return 0
	}
	first := recs[0].WallNs
	for _, r := range recs[1:] {
		if r.WallNs < first {
			first = r.WallNs
		}
	}
	return first
}
