package telemetry

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"math/bits"
)

// refHist is the orchestrator's original private latency histogram, copied
// verbatim: the parity oracle for Histogram's bucketing and percentile
// semantics (the promotion must not change a single reading).
type refHist struct {
	counts [256]int
	n      int
}

func (h *refHist) add(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	idx := 0
	if ns > 0 {
		e := bits.Len64(ns) - 1
		frac := 0
		if e >= 2 {
			frac = int((ns >> uint(e-2)) & 3)
		}
		idx = e*4 + frac
		if idx >= len(h.counts) {
			idx = len(h.counts) - 1
		}
	}
	h.counts[idx]++
	h.n++
}

func (h *refHist) percentile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	target := int(q*float64(h.n) + 0.5)
	if target < 1 {
		target = 1
	}
	acc := 0
	for i, c := range h.counts {
		acc += c
		if c > 0 && acc >= target {
			if i == 0 {
				return 0
			}
			e, frac := i/4, uint64(i%4)
			base := uint64(1) << uint(e)
			if e < 2 {
				frac = 0
			}
			return time.Duration(base + base*frac/4)
		}
	}
	return 0
}

func TestHistogramParityWithLegacyLatencyHist(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	ref := &refHist{}
	samples := make([]time.Duration, 0, 20000)
	// Mix magnitudes: sub-ns zeros, ns, µs, ms, s.
	for i := 0; i < 20000; i++ {
		var d time.Duration
		switch i % 5 {
		case 0:
			d = 0
		case 1:
			d = time.Duration(rng.Intn(1000))
		case 2:
			d = time.Duration(rng.Intn(1_000_000))
		case 3:
			d = time.Duration(rng.Intn(1_000_000_000))
		default:
			d = time.Duration(rng.Int63n(int64(10 * time.Second)))
		}
		samples = append(samples, d)
		h.ObserveDuration(d)
		ref.add(d)
	}
	if got, want := h.Count(), int64(len(samples)); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1} {
		if got, want := h.PercentileDuration(q), ref.percentile(q); got != want {
			t.Errorf("q=%v: Percentile = %v, legacy = %v", q, got, want)
		}
	}
}

func TestHistogramEmptyAndEdges(t *testing.T) {
	h := NewHistogram()
	if h.PercentileDuration(0.99) != 0 {
		t.Fatalf("empty histogram percentile = %v, want 0", h.PercentileDuration(0.99))
	}
	h.Observe(0)
	h.Observe(-5)
	if got := h.PercentileDuration(0.99); got != 0 {
		t.Fatalf("all-zero histogram percentile = %v, want 0", got)
	}
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	if h.Sum() != 0 {
		t.Fatalf("Sum = %d, want 0 (non-positive samples don't accumulate)", h.Sum())
	}
	// The legacy single-sample pin: one 100µs sample reads back as the
	// quarter-octave bucket lower bound 98304ns.
	h2 := NewHistogram()
	h2.ObserveDuration(100 * time.Microsecond)
	if got := h2.PercentileDuration(0.50); got != 98304*time.Nanosecond {
		t.Fatalf("single 100µs sample p50 = %v, want 98.304µs", got)
	}
}

// TestRegistryRaceStorm hammers one registry from many goroutines and
// checks the merged readings are exact. Run under -race in CI.
func TestRegistryRaceStorm(t *testing.T) {
	const writers = 16
	const perWriter = 5000
	reg := NewRegistry(writers)
	c := reg.Counter("storm_total", "storm counter")
	g := reg.Gauge("storm_gauge", "storm gauge")
	h := reg.Histogram("storm_hist", "storm histogram")
	labeled := make([]*Counter, 4)
	for i := range labeled {
		labeled[i] = reg.Counter("storm_labeled_total", "labeled storm counter",
			Label{Key: "lane", Value: string(rune('a' + i))})
	}
	var wg sync.WaitGroup
	for wtr := 0; wtr < writers; wtr++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc(id)
				c.Add(id, 2)
				g.Set(float64(id))
				h.Observe(int64(i%1000 + 1))
				labeled[id%len(labeled)].Inc(id)
			}
		}(wtr)
	}
	wg.Wait()
	if got, want := c.Value(), int64(writers*perWriter*3); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if got, want := h.Count(), int64(writers*perWriter); got != want {
		t.Fatalf("histogram count = %d, want %d", got, want)
	}
	var labeledSum int64
	for _, lc := range labeled {
		labeledSum += lc.Value()
	}
	if want := int64(writers * perWriter); labeledSum != want {
		t.Fatalf("labeled counters sum = %d, want %d", labeledSum, want)
	}
	gv := g.Value()
	if gv < 0 || gv >= writers {
		t.Fatalf("gauge = %v, want a writer id", gv)
	}
}

func TestRegistryGetOrCreateIdentityAndMismatch(t *testing.T) {
	reg := NewRegistry(2)
	a := reg.Counter("dup_total", "dup")
	b := reg.Counter("dup_total", "dup")
	if a != b {
		t.Fatalf("same name+labels returned distinct counters")
	}
	l1 := reg.Counter("dup_total", "dup", Label{Key: "k", Value: "v"})
	if l1 == a {
		t.Fatalf("labeled counter aliased the unlabeled one")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("dup_total", "dup")
}

func TestWritePromAndJSON(t *testing.T) {
	reg := NewRegistry(2)
	reg.Counter("vconf_test_total", "a counter", Label{Key: "region", Value: "0"}).Add(0, 7)
	reg.Counter("vconf_test_total", "a counter", Label{Key: "region", Value: "1"}).Add(1, 3)
	reg.Gauge("vconf_test_gauge", "a gauge").Set(2.5)
	h := reg.Histogram("vconf_test_ns", "a histogram")
	h.Observe(1000)
	h.Observe(1_000_000)

	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP vconf_test_total a counter",
		"# TYPE vconf_test_total counter",
		`vconf_test_total{region="0"} 7`,
		`vconf_test_total{region="1"} 3`,
		"# TYPE vconf_test_gauge gauge",
		"vconf_test_gauge 2.5",
		"# TYPE vconf_test_ns histogram",
		`vconf_test_ns_bucket{le="+Inf"} 2`,
		"vconf_test_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE vconf_test_total counter") != 1 {
		t.Errorf("TYPE header repeated per label set:\n%s", out)
	}

	sb.Reset()
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	js := sb.String()
	if !strings.Contains(js, `"vconf_test_total"`) || !strings.Contains(js, `"vconf_test_gauge"`) {
		t.Errorf("json snapshot missing metrics:\n%s", js)
	}
}

func TestHistogramPromBucketsCumulative(t *testing.T) {
	reg := NewRegistry(1)
	h := reg.Histogram("cum_ns", "cumulative check")
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	h.Observe(1 << 30)
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `cum_ns_bucket{le="+Inf"} 11`) {
		t.Fatalf("+Inf bucket not cumulative:\n%s", out)
	}
	if !strings.Contains(out, "cum_ns_count 11") {
		t.Fatalf("count missing:\n%s", out)
	}
}
