package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// This file is the SLO burn-rate alert engine, evaluated Google-SRE style
// over the windowed sampler's series: each rule defines an error budget
// and a "bad event" predicate; the burn rate over the last K windows is
// (bad fraction)/(budget), and a rule fires only when BOTH a fast
// (default 5-window) and a slow (default 60-window) burn exceed the
// threshold — the fast window confirms the problem is still happening,
// the slow window filters one-off blips whose budget impact is noise. A
// firing rule resolves as soon as the fast burn drops back under the
// threshold.
//
// Everything the engine consumes is virtual-time windowed data, so the
// fire/resolve timeline is a pure function of the seed: /alerts.json is
// byte-identical across same-seed runs.

// Rule kinds.
const (
	// RuleDelay counts delay observations above TargetUS in Class (all
	// classes when Class is empty) as bad; total is the class's delay
	// observations.
	RuleDelay = "delay"
	// RuleAvailability counts dropped arrivals plus evacuation rejects as
	// bad; total is arrivals plus orphans.
	RuleAvailability = "availability"
)

// SLORule is one declarative SLO with its burn-rate alerting policy.
type SLORule struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"` // RuleDelay or RuleAvailability
	Class string `json:"class,omitempty"`
	// TargetUS is the delay cap (µs) for RuleDelay.
	TargetUS int64 `json:"target_us,omitempty"`
	// Budget is the error budget: the tolerated bad-event fraction
	// (e.g. 0.01 = 1%). Must be > 0.
	Budget float64 `json:"budget"`
	// FastWindows/SlowWindows are the two evaluation horizons in sampler
	// windows (defaults 5 and 60). FireBurn is the burn-rate threshold
	// both must exceed to fire (default 10 — bad fraction at 10× budget).
	FastWindows int     `json:"fast_windows"`
	SlowWindows int     `json:"slow_windows"`
	FireBurn    float64 `json:"fire_burn"`
}

// withDefaults fills the zero-valued policy knobs.
func (r SLORule) withDefaults() SLORule {
	if r.FastWindows <= 0 {
		r.FastWindows = 5
	}
	if r.SlowWindows <= 0 {
		r.SlowWindows = 60
	}
	if r.FireBurn <= 0 {
		r.FireBurn = 10
	}
	if r.Budget <= 0 {
		r.Budget = 0.01
	}
	return r
}

// Validate checks a rule's shape.
func (r SLORule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("telemetry: SLO rule needs a name")
	}
	switch r.Kind {
	case RuleDelay:
		if r.TargetUS <= 0 {
			return fmt.Errorf("telemetry: delay rule %q needs a positive target", r.Name)
		}
	case RuleAvailability:
	default:
		return fmt.Errorf("telemetry: rule %q has unknown kind %q", r.Name, r.Kind)
	}
	if r.Budget < 0 || r.Budget > 1 {
		return fmt.Errorf("telemetry: rule %q budget %v outside [0, 1]", r.Name, r.Budget)
	}
	return nil
}

// AlertEvent is one fire or resolve transition on the deterministic alert
// timeline. Window/TimeS index the closed window that triggered the
// transition; Incident correlates with the fault schedule's incident ids.
type AlertEvent struct {
	Seq          int     `json:"seq"`
	Rule         string  `json:"rule"`
	State        string  `json:"state"` // "fire" | "resolve"
	Window       int64   `json:"window"`
	TimeS        float64 `json:"time_s"`
	FastBurn     float64 `json:"fast_burn"`
	SlowBurn     float64 `json:"slow_burn"`
	Incident     int     `json:"incident,omitempty"`
	IncidentKind string  `json:"incident_kind,omitempty"`
}

// RuleStatus summarizes one rule's run-to-date alerting activity.
type RuleStatus struct {
	Rule          string  `json:"rule"`
	Firing        bool    `json:"firing"`
	Fires         int     `json:"fires"`
	Resolves      int     `json:"resolves"`
	FiringWindows int64   `json:"firing_windows"`
	FiringS       float64 `json:"firing_s"`
	MaxFastBurn   float64 `json:"max_fast_burn"`
}

// alertEventCap bounds the timeline (a run that trips it is misconfigured
// rather than interesting; drops are counted, not silent).
const alertEventCap = 4096

// AlertEngine evaluates a rule set over the sampler's closed windows.
type AlertEngine struct {
	mu       sync.Mutex
	interval float64
	rules    []SLORule
	firing   []bool
	status   []RuleStatus
	events   []AlertEvent
	dropped  int64

	firingGauge *Gauge
	transitions [][2]*Counter // per rule: [fire, resolve]
	shard       int

	// onFire receives every fire transition with the ring tail that
	// produced it and the then-firing rule names (the sink routes it to
	// the flight recorder). Called with the engine lock held, so the
	// callback must not call back into the engine.
	onFire func(rule SLORule, ev AlertEvent, tail []Window, active []string)
}

// newAlertEngine validates and normalizes the rule set.
func newAlertEngine(rules []SLORule, interval float64) (*AlertEngine, error) {
	e := &AlertEngine{interval: interval}
	for _, r := range rules {
		r = r.withDefaults()
		if err := r.Validate(); err != nil {
			return nil, err
		}
		e.rules = append(e.rules, r)
		e.status = append(e.status, RuleStatus{Rule: r.Name})
	}
	e.firing = make([]bool, len(e.rules))
	return e, nil
}

// maxWindows is the deepest window horizon any rule needs.
func (e *AlertEngine) maxWindows() int {
	n := 1
	for _, r := range e.rules {
		if r.SlowWindows > n {
			n = r.SlowWindows
		}
		if r.FastWindows > n {
			n = r.FastWindows
		}
	}
	return n
}

// burn computes the burn rate of rule r over the trailing k windows of
// tail: (bad fraction)/(budget), 0 when no eligible events landed.
func burn(r SLORule, tail []Window, k int) float64 {
	if k > len(tail) {
		k = len(tail)
	}
	var bad, total int64
	for i := len(tail) - k; i < len(tail); i++ {
		w := &tail[i]
		switch r.Kind {
		case RuleDelay:
			for ci := range w.Classes {
				cw := &w.Classes[ci]
				if r.Class != "" && cw.Class != r.Class {
					continue
				}
				bad += cw.AboveUS(r.TargetUS)
				total += cw.DelayN
			}
		case RuleAvailability:
			bad += w.Drops + w.EvacRejects
			total += w.Arrivals + w.Orphans
		}
	}
	if total == 0 {
		return 0
	}
	return float64(bad) / float64(total) / r.Budget
}

// observe evaluates every rule against the freshly closed window (last in
// tail). Called from the sampler's onClose hook on the retire path.
func (e *AlertEngine) observe(w *Window, tail []Window) {
	e.mu.Lock()
	defer e.mu.Unlock()
	nFiring := 0
	for i, r := range e.rules {
		fast := burn(r, tail, r.FastWindows)
		slow := burn(r, tail, r.SlowWindows)
		if fast > e.status[i].MaxFastBurn {
			e.status[i].MaxFastBurn = fast
		}
		switch {
		case !e.firing[i] && fast >= r.FireBurn && slow >= r.FireBurn:
			e.firing[i] = true
			e.status[i].Firing = true
			e.status[i].Fires++
			e.appendLocked(i, "fire", w, fast, slow, tail)
		case e.firing[i] && fast < r.FireBurn:
			e.firing[i] = false
			e.status[i].Firing = false
			e.status[i].Resolves++
			e.appendLocked(i, "resolve", w, fast, slow, nil)
		}
		if e.firing[i] {
			e.status[i].FiringWindows++
			e.status[i].FiringS = float64(e.status[i].FiringWindows) * e.interval
			nFiring++
		}
	}
	if e.firingGauge != nil {
		e.firingGauge.Set(float64(nFiring))
	}
}

// appendLocked records one transition (and routes fires to onFire).
func (e *AlertEngine) appendLocked(rule int, state string, w *Window, fast, slow float64, tail []Window) {
	ev := AlertEvent{
		Seq:          len(e.events) + int(e.dropped),
		Rule:         e.rules[rule].Name,
		State:        state,
		Window:       w.Index,
		TimeS:        w.EndS,
		FastBurn:     fast,
		SlowBurn:     slow,
		Incident:     w.Incident,
		IncidentKind: w.IncidentKind,
	}
	if len(e.events) >= alertEventCap {
		e.dropped++
	} else {
		e.events = append(e.events, ev)
	}
	if e.transitions != nil {
		k := 0
		if state == "resolve" {
			k = 1
		}
		e.transitions[rule][k].Inc(e.shard)
	}
	if state == "fire" && e.onFire != nil {
		var active []string
		for j, f := range e.firing {
			if f {
				active = append(active, e.rules[j].Name)
			}
		}
		e.onFire(e.rules[rule], ev, tail, active)
	}
}

// Events returns the transition timeline in order.
func (e *AlertEngine) Events() []AlertEvent {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]AlertEvent(nil), e.events...)
}

// Summary returns each rule's run-to-date status.
func (e *AlertEngine) Summary() []RuleStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]RuleStatus(nil), e.status...)
}

// ActiveAlerts lists the names of the currently firing rules.
func (e *AlertEngine) ActiveAlerts() []string {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for i, f := range e.firing {
		if f {
			out = append(out, e.rules[i].Name)
		}
	}
	return out
}

// AlertsDoc is the /alerts.json document shape (also what vcreport
// ingests offline).
type AlertsDoc struct {
	IntervalS float64      `json:"interval_s"`
	Rules     []SLORule    `json:"rules"`
	Status    []RuleStatus `json:"status"`
	Events    []AlertEvent `json:"events"`
	Dropped   int64        `json:"dropped,omitempty"`
}

// WriteJSON renders the rule set, per-rule status and the deterministic
// transition timeline. Works on a nil engine (empty document).
func (e *AlertEngine) WriteJSON(w io.Writer) error {
	doc := AlertsDoc{Rules: []SLORule{}, Status: []RuleStatus{}, Events: []AlertEvent{}}
	if e != nil {
		e.mu.Lock()
		doc.IntervalS = e.interval
		doc.Rules = append(doc.Rules, e.rules...)
		doc.Status = append(doc.Status, e.status...)
		doc.Events = append(doc.Events, e.events...)
		doc.Dropped = e.dropped
		e.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DefaultSLORules is the stock -slo rule set: an availability SLO over
// admission (1% budget) plus a p-high delay SLO per configured class at
// the given per-class µs targets (classes missing from targets get no
// delay rule).
func DefaultSLORules(classes []string, targetUS map[string]int64) []SLORule {
	rules := []SLORule{{
		Name:   "availability",
		Kind:   RuleAvailability,
		Budget: 0.01,
	}}
	for _, c := range classes {
		t, ok := targetUS[c]
		if !ok || t <= 0 {
			continue
		}
		rules = append(rules, SLORule{
			Name:     c + "-delay",
			Kind:     RuleDelay,
			Class:    c,
			TargetUS: t,
			Budget:   0.05,
		})
	}
	return rules
}
