package telemetry

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Append(DecisionRecord{Session: i})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	recs := r.Records()
	for i, rec := range recs {
		wantSeq := int64(6 + i)
		if rec.Seq != wantSeq || rec.Session != int(wantSeq) {
			t.Fatalf("record %d: seq=%d session=%d, want both %d (oldest-first after wrap)",
				i, rec.Seq, rec.Session, wantSeq)
		}
	}
}

func TestRecorderNoWrap(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 3; i++ {
		r.Append(DecisionRecord{Session: i})
	}
	recs := r.Records()
	if len(recs) != 3 || recs[0].Seq != 0 || recs[2].Seq != 2 {
		t.Fatalf("unexpected records %+v", recs)
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", r.Dropped())
	}
}

func TestWriteJSONLRoundTrip(t *testing.T) {
	r := NewRecorder(16)
	r.Append(DecisionRecord{TimeS: 1.5, Session: 3, Kind: "arrive", Admitted: true, Commits: 2, CfGap: 0.25, CfValid: true, Objective: 12.5})
	r.Append(DecisionRecord{TimeS: 2.0, Session: 3, Kind: "depart", Admitted: true, CacheInvalidated: 1})
	var sb strings.Builder
	if err := r.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var back []DecisionRecord
	for sc.Scan() {
		var rec DecisionRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		back = append(back, rec)
	}
	if len(back) != 2 {
		t.Fatalf("round-tripped %d records, want 2", len(back))
	}
	if back[0].Kind != "arrive" || back[0].Commits != 2 || !back[0].CfValid || back[0].CfGap != 0.25 {
		t.Fatalf("record 0 mangled: %+v", back[0])
	}
	if back[1].CacheInvalidated != 1 || back[1].Seq != 1 {
		t.Fatalf("record 1 mangled: %+v", back[1])
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewRecorder(16)
	r.Append(DecisionRecord{WallNs: 1_000_000, LatencyNs: 5_000, Kind: "arrive", Session: 1, Region: 0})
	r.Append(DecisionRecord{WallNs: 2_000_000, LatencyNs: 0, Kind: "depart", Session: 2, Region: 1})
	var sb strings.Builder
	if err := r.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(out.TraceEvents))
	}
	if out.TraceEvents[0].Ts != 0 || out.TraceEvents[0].Dur != 5 {
		t.Fatalf("event 0 = %+v, want ts=0 dur=5µs", out.TraceEvents[0])
	}
	if out.TraceEvents[1].Ts != 1000 || out.TraceEvents[1].Dur != 1 || out.TraceEvents[1].Tid != 1 {
		t.Fatalf("event 1 = %+v, want ts=1000 dur=1 tid=1", out.TraceEvents[1])
	}
	if out.TraceEvents[0].Ph != "X" {
		t.Fatalf("phase = %q, want X", out.TraceEvents[0].Ph)
	}
}
