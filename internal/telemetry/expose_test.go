package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func getWithType(t *testing.T, addr, path string) (int, string, string) {
	t.Helper()
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(b)
}

// TestServeBusyPortReturnsError pins the failure mode of a taken address:
// Serve must return an error — no panic, no half-started server — and the
// original endpoint must keep working.
func TestServeBusyPortReturnsError(t *testing.T) {
	s := New(Config{Workers: 1})
	srv, err := Serve(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := Serve(s, srv.Addr()); err == nil {
		t.Fatal("Serve on an already-bound port did not error")
	}
	if code, _, _ := getWithType(t, srv.Addr(), "/metrics"); code != 200 {
		t.Fatalf("original endpoint broken after failed rebind: %d", code)
	}
}

// TestServeContentTypes pins the Content-Type header of every exposition
// endpoint — scrapers and browsers key off them.
func TestServeContentTypes(t *testing.T) {
	s := New(Config{Workers: 1, Sample: &SamplerConfig{IntervalS: 1}})
	s.Record(DecisionRecord{TimeS: 0.5, Kind: "arrive", Admitted: true})
	s.FlushSampler()
	srv, err := Serve(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for path, wantType := range map[string]string{
		"/metrics":           "text/plain; version=0.0.4; charset=utf-8",
		"/metrics.json":      "application/json",
		"/trace.jsonl":       "application/x-ndjson",
		"/spans.jsonl":       "application/x-ndjson",
		"/timeseries.json":   "application/json",
		"/alerts.json":       "application/json",
		"/flightrec.json":    "application/json",
		"/trace.chrome.json": "application/json",
	} {
		code, ct, _ := getWithType(t, srv.Addr(), path)
		if code != 200 {
			t.Fatalf("%s: code = %d", path, code)
		}
		if ct != wantType {
			t.Fatalf("%s: Content-Type = %q, want %q", path, ct, wantType)
		}
	}
}

// TestServeUnknownPath404s pins that unmounted paths return 404, not a
// catch-all handler's output.
func TestServeUnknownPath404s(t *testing.T) {
	s := New(Config{Workers: 1})
	srv, err := Serve(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/nope", "/metrics/extra", "/alerts"} {
		if code, _, _ := getWithType(t, srv.Addr(), path); code != http.StatusNotFound {
			t.Fatalf("%s: code = %d, want 404", path, code)
		}
	}
}

// TestHealthEndpointsEmptyWithoutSampler pins that the health endpoints
// serve valid empty documents when sampling is off — scrapers need no
// feature detection.
func TestHealthEndpointsEmptyWithoutSampler(t *testing.T) {
	s := New(Config{Workers: 1})
	srv, err := Serve(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for path, marker := range map[string]string{
		"/timeseries.json": `"windows": []`,
		"/alerts.json":     `"events": []`,
		"/flightrec.json":  `"dumps": []`,
	} {
		code, _, body := getWithType(t, srv.Addr(), path)
		if code != 200 || !strings.Contains(body, marker) {
			t.Fatalf("%s: code=%d body=%q, want 200 with %q", path, code, body, marker)
		}
	}
}
