package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the sink's HTTP exposition surface:
//
//	/metrics            Prometheus text format
//	/metrics.json       JSON snapshot of every instrument
//	/trace.jsonl        the decision-record ring, one JSON object per line
//	/spans.jsonl        the span ring, one JSON object per line
//	/trace.chrome.json  records + spans merged into one Chrome trace-event
//	                    file (spans nested as a causal flame graph)
//	/timeseries.json    the windowed sampler's closed windows
//	/alerts.json        SLO rules, per-rule status and the deterministic
//	                    alert fire/resolve timeline
//	/flightrec.json     the incident flight recorder's frozen dumps
//	/debug/pprof/...    the standard runtime profiles
//
// The health-monitoring endpoints serve valid empty documents when the
// sampler/alert engine is off, so scrapers never need feature detection.
//
// Returns a 503-only handler on a nil sink, so a disabled sink can still
// be mounted unconditionally.
func (s *Sink) Handler() http.Handler {
	mux := http.NewServeMux()
	if s == nil {
		mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, "telemetry disabled", http.StatusServiceUnavailable)
		})
		return mux
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.reg.WriteProm(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace.jsonl", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := s.rec.WriteJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/spans.jsonl", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := s.spans.WriteJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace.chrome.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.WriteChromeTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/timeseries.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.sampler.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/alerts.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.alerts.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/flightrec.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.flight.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a started exposition endpoint; Close stops it.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound address (resolves ":0" picks).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve binds addr (e.g. "127.0.0.1:9464", or ":0" for an ephemeral port)
// and serves the sink's Handler on it in a background goroutine.
func Serve(s *Sink, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln}, nil
}
